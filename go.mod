module github.com/accnet/acc

go 1.22
