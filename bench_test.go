// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: one Benchmark per table/figure plus the
// DESIGN.md ablations. Run them all with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment from internal/exp
// and reports the headline quantity as a custom metric alongside the usual
// time/op. The rendered tables are printed once (first iteration) so a
// bench run doubles as a reproduction log.
package bench

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/accnet/acc/internal/exp"
	"github.com/accnet/acc/internal/perf"
	"github.com/accnet/acc/internal/simtime"
)

// benchOpts returns deterministic, laptop-scale options.
func benchOpts() exp.Options {
	return exp.Options{Seed: 1, Scale: 1}
}

var printOnce sync.Map

// runExp executes one registered experiment per benchmark iteration,
// printing the tables the first time.
func runExp(b *testing.B, id string, o exp.Options) []*exp.Table {
	b.Helper()
	var tables []*exp.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = exp.Run(id, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(id, true); !done && testing.Verbose() {
		for _, t := range tables {
			b.Log("\n" + t.String())
		}
	}
	return tables
}

// metric extracts a numeric cell (row r, column c) from a table, for
// b.ReportMetric; non-numeric cells return 0.
func metric(t *exp.Table, r, c int) float64 {
	if r >= len(t.Rows) || c >= len(t.Rows[r]) {
		return 0
	}
	v, err := strconv.ParseFloat(t.Rows[r][c], 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkFig1(b *testing.B) {
	tables := runExp(b, "fig1", benchOpts())
	// Report the queue-depth span across the threshold sweep for case (a).
	lo, hi := metric(tables[0], 0, 2), metric(tables[0], len(tables[0].Rows)-1, 2)
	b.ReportMetric(hi/lo, "queue-span(maxK/minK)")
}

func BenchmarkFig2(b *testing.B) {
	tables := runExp(b, "fig2", benchOpts())
	// SECN1-vs-SECN2 ranking flip across scenarios (paper's point).
	s1Mining := metric(tables[0], 0, 2)
	s1Search := metric(tables[0], 1, 2)
	b.ReportMetric(s1Mining, "secn1-fct-mining")
	b.ReportMetric(s1Search, "secn1-fct-search")
}

func BenchmarkFig6(b *testing.B) {
	tables := runExp(b, "fig6", benchOpts())
	sum := tables[1]
	b.ReportMetric(metric(sum, 0, 2)/metric(sum, 1, 2), "acc-vs-secn1-utilization")
}

func BenchmarkFig7(b *testing.B) {
	tables := runExp(b, "fig7", benchOpts())
	// Mean normalized FCT of SECN2 vs ACC at 60% load across rows.
	t := tables[1]
	var sum float64
	var n int
	for r := range t.Rows {
		if v := metric(t, r, 4); v > 0 {
			sum += v
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "secn2-fct-over-acc@60%")
	}
}

func BenchmarkFig8(b *testing.B) {
	tables := runExp(b, "fig8", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 2), "acc-rdma-share-2to1")
	b.ReportMetric(metric(tables[0], 3, 2), "acc-rdma-share-7to1")
}

func BenchmarkTable1(b *testing.B) {
	tables := runExp(b, "table1", benchOpts())
	b.ReportMetric(float64(len(tables[0].Rows)), "models")
}

func BenchmarkFig9(b *testing.B) {
	tables := runExp(b, "fig9", benchOpts())
	// Average ACC IOPS gain across workloads at the deepest IO depth.
	var gain float64
	for _, t := range tables {
		gain += metric(t, len(t.Rows)-1, 3)
	}
	b.ReportMetric(gain/float64(len(tables)), "acc-iops-gain@depth128")
}

func BenchmarkFig10(b *testing.B) {
	tables := runExp(b, "fig10", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 3), "acc-speed-vs-secn1-resnet")
}

func BenchmarkFig11CDFs(b *testing.B) {
	tables := runExp(b, "fig11", benchOpts())
	b.ReportMetric(float64(len(tables[0].Rows)), "websearch-knots")
	b.ReportMetric(float64(len(tables[1].Rows)), "datamining-knots")
}

func BenchmarkFig12(b *testing.B) {
	tables := runExp(b, "fig12", benchOpts())
	// SECN2 overall avg FCT vs ACC at 90% load.
	t := tables[0]
	b.ReportMetric(metric(t, len(t.Rows)-1, 3), "secn2-overall-fct-over-acc@90%")
}

func BenchmarkFig13(b *testing.B) {
	tables := runExp(b, "fig13", benchOpts())
	b.ReportMetric(metric(tables[0], 2, 2), "secn1-mice-p99-over-acc(websearch)")
}

func BenchmarkFig14(b *testing.B) {
	tables := runExp(b, "fig14", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 1), "cacc-fct-over-dacc")
}

func BenchmarkFig15(b *testing.B) {
	tables := runExp(b, "fig15", benchOpts())
	b.ReportMetric(float64(len(tables[0].Rows)), "trace-points")
}

func BenchmarkFig16(b *testing.B) {
	tables := runExp(b, "fig16", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 1), "acc-fct-over-secn1(unseen-switch)")
	b.ReportMetric(metric(tables[0], 2, 1), "acc-fct-over-secn1(return)")
}

func BenchmarkFig17(b *testing.B) {
	tables := runExp(b, "fig17", benchOpts())
	// Reward separation of small queues: step minus linear at 320KB.
	spread := tables[0]
	b.ReportMetric(metric(spread, 0, 1)-metric(spread, 2, 1), "linear-reward-spread(20KB..320KB)")
	b.ReportMetric(metric(spread, 0, 2)-metric(spread, 2, 2), "step-reward-spread(20KB..320KB)")
}

func BenchmarkResources(b *testing.B) {
	tables := runExp(b, "resources", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 1), "nn-params")
}

// ----- DESIGN.md ablation benches -----

func BenchmarkAblationHistoryK(b *testing.B) {
	tables := runExp(b, "ablation-history", benchOpts())
	b.ReportMetric(metric(tables[0], 0, 1), "k1-fct-over-k3")
	b.ReportMetric(metric(tables[0], 2, 1), "k5-fct-over-k3")
}

func BenchmarkAblationDQNvsDDQN(b *testing.B) {
	tables := runExp(b, "ablation-ddqn", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 1), "dqn-fct-over-ddqn")
}

func BenchmarkAblationGlobalReplay(b *testing.B) {
	tables := runExp(b, "ablation-exchange", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 1), "noexchange-fct-over-exchange")
}

func BenchmarkAblationBusyIdle(b *testing.B) {
	tables := runExp(b, "ablation-busyidle", benchOpts())
	t := tables[0]
	// Saved fraction is reported as a percentage string; re-derive it.
	inf := metric(t, 0, 1)
	skip := metric(t, 0, 2)
	if inf+skip > 0 {
		b.ReportMetric(skip/(inf+skip), "inference-savings-frac")
	}
}

func BenchmarkAblationActionPeriod(b *testing.B) {
	tables := runExp(b, "ablation-period", benchOpts())
	t := tables[0]
	b.ReportMetric(metric(t, len(t.Rows)-1, 1), "slowest-dt-fct-over-100us")
}

func BenchmarkAblationHillclimb(b *testing.B) {
	tables := runExp(b, "ablation-hillclimb", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 1), "hillclimb-fct-over-acc")
}

func BenchmarkHybridDesign(b *testing.B) {
	tables := runExp(b, "hybrid", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 1), "hybrid-fct-over-dacc")
	b.ReportMetric(metric(tables[0], 2, 1), "secn1-fct-over-dacc")
}

func BenchmarkStressFailure(b *testing.B) {
	tables := runExp(b, "stress-failure", benchOpts())
	b.ReportMetric(metric(tables[0], 1, 1), "secn1-fct-over-acc(failure)")
}

// BenchmarkSimulatorCore measures raw engine throughput — a leaf-spine
// fabric saturated by line-rate DCQCN flows with no experiment logic on top
// — so regressions in the per-packet/per-event hot path are visible
// independently of any figure. One op is 100µs of virtual time on the
// warmed-up fabric; events/sec and allocs/op are the headline numbers (the
// pooled hot path should keep allocs/op near zero).
func BenchmarkSimulatorCore(b *testing.B) {
	o := perf.DefaultCoreOptions()
	c := perf.NewCore(o)
	c.Warmup(o.Warmup)
	slice := 100 * simtime.Microsecond

	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		events += c.Advance(slice)
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(float64(events)/wall, "events/sec")
	}
	if b.N > 0 {
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
	}
}
