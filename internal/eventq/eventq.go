// Package eventq implements the deterministic discrete-event scheduler that
// drives the simulator.
//
// Events are ordered by virtual time with FIFO tie-breaking (a monotonically
// increasing sequence number), so two runs with the same seed replay
// identically. Events may be cancelled, which is implemented by lazy deletion:
// a cancelled event stays in the schedule but its callback is skipped when
// reached.
//
// Two scheduling paths exist:
//
//   - At/After return a *Event handle the caller may Cancel or Reset. These
//     events are never recycled, because the caller can hold the handle
//     indefinitely.
//   - CallAt/CallAfter take a pre-bound func(any) plus an argument and return
//     nothing. Their Event structs come from a per-queue free list and are
//     recycled after firing, so the per-packet hot path (serialize, propagate)
//     schedules without allocating and without capturing a closure.
//   - CallAtSeq is the CallAt fast path with an explicit, history-free
//     sequence key (KeyedSeq) instead of the monotonic counter, used for
//     packet arrivals so same-nanosecond tie-breaking is identical between
//     the sequential engine and the sharded one (internal/psim).
//
// Internally Queue is a calendar queue (an array of fixed-width time buckets
// over a rotating window, with a typed min-heap holding far-future overflow),
// specialized to *Event: no container/heap, no interface-method dispatch, no
// boxing on the scheduling path. The previous binary-heap scheduler is kept in
// this package as refQueue (reference.go); differential tests drive both
// through randomized workloads and assert identical firing order.
package eventq

import (
	"github.com/accnet/acc/internal/simtime"
)

// Calendar geometry. Each bucket covers 2^bucketShift nanoseconds of virtual
// time ("one day"), and the window spans numBuckets consecutive days, so with
// a 64ns day and 2048 buckets the calendar covers ~131µs ahead of the oldest
// pending event. At line rate the simulator schedules almost everything
// (serialization, propagation, pacing, CNP/alpha timers) well inside that
// horizon; only ms-scale timers (RTOs) live in the overflow heap.
const (
	bucketShift = 6
	numBuckets  = 1 << 11
	bucketMask  = numBuckets - 1

	// Every bucket starts with this much capacity, carved out of one shared
	// arena at init. Sparse workloads (a handful of events per bucket-day)
	// then never grow a bucket slice, so steady-state scheduling stays
	// allocation-free without a dense warmup. Dense buckets borrow larger
	// arrays from the queue's slab pool (see clearBucket/growBucket) and
	// return them when drained.
	arenaPerBucket = 4

	// Slab size classes step by 4x from the arena capacity: 16, 64, 256, ...
	// entries. numSlabClasses bounds the largest pooled array at
	// arenaPerBucket<<(2*numSlabClasses) entries — far beyond any real
	// bucket-day occupancy.
	numSlabClasses = 16
)

// slabClass maps a bucket array capacity to its slab pool index, or -1 for
// the base arena capacity.
func slabClass(c int) int {
	k := -1
	for c > arenaPerBucket {
		c >>= 2
		k++
	}
	return k
}

func dayOf(t simtime.Time) int64 { return int64(t) >> bucketShift }

// Where an event's live (current-seq) entry resides.
type loc uint8

const (
	locNone loc = iota // no live entry (unscheduled, fired, or entry consumed)
	locCal             // in a calendar bucket
	locOv              // in the overflow heap
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending timers.
type Event struct {
	at  simtime.Time
	seq uint64

	// Exactly one of fn / afn is set. afn events carry their argument in arg
	// instead of capturing it in a closure.
	fn  func()
	afn func(any)
	arg any

	q *Queue // owning queue, for live-count accounting on Cancel

	cancelled bool
	pooled    bool // afn fast path: recycle into q.free after firing
	pending   bool // a live entry for this event is scheduled
	loc       loc
}

// At returns the virtual time the event fires at.
func (e *Event) At() simtime.Time { return e.at }

// Cancel marks the event so its callback will not run. Cancelling an event
// that already fired or was cancelled is a no-op. The cancelled entry stays
// in the schedule and is skipped lazily when its time is reached.
func (e *Event) Cancel() {
	if e == nil {
		return
	}
	if e.pending {
		e.pending = false
		e.q.live--
	}
	e.cancelled = true
	e.fn = nil // release captured state early
	e.afn = nil
	e.arg = nil
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// entry is one scheduled occurrence of an event. Rescheduling (Reset) bumps
// the event's seq, so an entry whose seq no longer matches its event is
// stale: an invisible artifact that the queue discards on contact. Stale
// entries are distinct from cancelled ones — a cancelled event keeps its seq,
// stays visible to RunUntil's head check, and is skipped only when popped,
// exactly as the reference heap behaves under lazy deletion.
type entry struct {
	at  simtime.Time
	seq uint64
	ev  *Event
}

func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e entry) stale() bool { return e.seq != e.ev.seq }

// bucket holds the entries of a single day. Entries are appended unsorted;
// when the cursor reaches the bucket it is sorted once and drained in order
// from head. While draining (sorted == true), insertions keep the tail
// ordered via binary insertion, and Reset removes superseded entries in
// place. Storage starts as a base slice carved from the queue's shared arena
// and is swapped for a pooled slab array when a day's occupancy outgrows it.
type bucket struct {
	ents   []entry
	base   []entry // arena-backed slice restored on clear
	head   int
	sorted bool
}

// Queue is a discrete-event scheduler. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator is single-threaded by
// design so that runs are reproducible.
type Queue struct {
	seq       uint64
	now       simtime.Time
	processed uint64
	free      []*Event // recycled CallAt events

	buckets []bucket // calendar window, allocated on first insert
	baseDay int64    // first day covered by the window
	curDay  int64    // lower bound on the earliest calendar entry's day
	calQ    int      // entries resident in buckets (incl. cancelled/stale)

	ov      []entry // min-heap of entries beyond the window, (at, seq) order
	ovStale int     // known-stale overflow entries; triggers compaction

	// slabs[k] is a stack of free bucket arrays of capacity
	// arenaPerBucket<<(2*(k+1)), recycled between buckets. A drained bucket
	// returns its oversized array here and reverts to its arena slice, so the
	// pool's footprint tracks the number of *simultaneously* dense bucket-days
	// — a stationary quantity that saturates during warmup — rather than each
	// bucket's all-time occupancy record, which a long run keeps breaking.
	// That distinction is what makes the steady-state hot path allocation-free
	// even under bursty arrivals.
	slabs [numSlabClasses][][]entry

	live int // scheduled, non-cancelled events (see Pending)
}

// New returns an empty scheduler positioned at the simulation epoch.
func New() *Queue { return &Queue{} }

// Now returns the current virtual time.
func (q *Queue) Now() simtime.Time { return q.now }

// Len returns the number of entries resident in the schedule. This includes
// lazily-deleted work — cancelled events not yet reaped and superseded
// entries left behind by Reset — so it measures memory pressure, not work
// remaining. Use Pending for the number of events that will still fire.
func (q *Queue) Len() int { return q.calQ + len(q.ov) }

// Pending returns the number of live scheduled events: those that will fire
// unless cancelled or rescheduled. Cancelled-but-unreaped events are
// excluded.
func (q *Queue) Pending() int { return q.live }

// Processed returns the number of events executed so far.
func (q *Queue) Processed() uint64 { return q.processed }

func (q *Queue) checkTime(t simtime.Time) {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
}

// clearBucket resets a drained bucket. An array borrowed from the slab pool
// goes back for the next dense day to reuse; callers only clear fully-drained
// buckets whose elements have already been zeroed entry-by-entry, so pooled
// arrays never pin Events.
func (q *Queue) clearBucket(b *bucket) {
	if cap(b.ents) > arenaPerBucket {
		if k := slabClass(cap(b.ents)); k < numSlabClasses {
			q.slabs[k] = append(q.slabs[k], b.ents[:0])
		}
		b.ents = b.base
	} else {
		b.ents = b.ents[:0]
	}
	b.head = 0
	b.sorted = false
}

// growBucket swaps the bucket onto an array of the next size class (4x),
// preferring a pooled array over a fresh allocation, and releases the old one.
func (q *Queue) growBucket(b *bucket) {
	want := 4 * cap(b.ents)
	n := len(b.ents)
	var ents []entry
	if k := slabClass(want); k >= 0 && k < numSlabClasses && len(q.slabs[k]) > 0 {
		last := len(q.slabs[k]) - 1
		ents = q.slabs[k][last][:n]
		q.slabs[k][last] = nil
		q.slabs[k] = q.slabs[k][:last]
	} else {
		ents = make([]entry, n, want)
	}
	copy(ents, b.ents)
	old := b.ents
	b.ents = ents
	for i := range old {
		old[i] = entry{}
	}
	if cap(old) > arenaPerBucket {
		if k := slabClass(cap(old)); k < numSlabClasses {
			q.slabs[k] = append(q.slabs[k], old[:0])
		}
	}
}

// bucketPush appends ent, growing capacity in 4x steps through the slab pool.
func (q *Queue) bucketPush(b *bucket, ent entry) {
	if len(b.ents) == cap(b.ents) {
		q.growBucket(b)
	}
	b.ents = append(b.ents, ent)
}

// bucketInsertSorted places ent into the still-pending tail of a draining
// bucket.
func (q *Queue) bucketInsertSorted(b *bucket, ent entry) {
	s := b.ents[b.head:]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].before(ent) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.bucketPush(b, entry{})
	s = b.ents[b.head:]
	copy(s[lo+1:], s[lo:])
	s[lo] = ent
}

// insert places the live entry for ent.ev into the calendar or the overflow
// heap and records its location on the event.
func (q *Queue) insert(ent entry) {
	if q.buckets == nil {
		q.buckets = make([]bucket, numBuckets)
		arena := make([]entry, numBuckets*arenaPerBucket)
		for i := range q.buckets {
			off := i * arenaPerBucket
			q.buckets[i].base = arena[off : off : off+arenaPerBucket]
			q.buckets[i].ents = q.buckets[i].base
		}
		q.baseDay = dayOf(q.now)
		q.curDay = q.baseDay
	}
	d := dayOf(ent.at)
	if d >= q.baseDay+numBuckets {
		// Beyond the window. If the calendar is empty the window is free to
		// move: advance it to the present before deciding, so near-future
		// events keep using the fast path after long idle gaps.
		if q.calQ == 0 {
			q.rebase()
		}
		if d >= q.baseDay+numBuckets {
			ent.ev.loc = locOv
			q.ovPush(ent)
			return
		}
	}
	if d < q.curDay {
		q.curDay = d
	}
	ent.ev.loc = locCal
	b := &q.buckets[d&bucketMask]
	if b.sorted {
		q.bucketInsertSorted(b, ent)
	} else {
		q.bucketPush(b, ent)
	}
	q.calQ++
}

// rebase moves the window start to the current day and pulls newly-eligible
// entries out of the overflow heap. Only valid while the calendar is empty.
func (q *Queue) rebase() {
	q.baseDay = dayOf(q.now)
	q.curDay = q.baseDay
	limit := q.baseDay + numBuckets
	first := true
	for len(q.ov) > 0 {
		top := q.ov[0]
		if dayOf(top.at) >= limit {
			break
		}
		q.ovPop()
		if top.stale() {
			q.ovStale--
			continue
		}
		d := dayOf(top.at)
		top.ev.loc = locCal
		q.bucketPush(&q.buckets[d&bucketMask], top)
		q.calQ++
		if first {
			// Migration pops in (at, seq) order, so the first live entry has
			// the minimum day: start the cursor there.
			q.curDay = d
			first = false
		}
	}
}

// removeCal deletes the (at, seq) entry from its calendar bucket. Used by
// Reset so a rescheduled pending timer does not leave a superseded entry
// behind — the pattern transports hammer (pacing, RTO re-arm) stays
// allocation- and garbage-free.
func (q *Queue) removeCal(at simtime.Time, seq uint64) {
	b := &q.buckets[dayOf(at)&bucketMask]
	if b.sorted {
		s := b.ents[b.head:]
		target := entry{at: at, seq: seq}
		lo, hi := 0, len(s)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s[mid].before(target) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(s) && s[lo].seq == seq {
			copy(s[lo:], s[lo+1:])
			n := len(b.ents) - 1
			b.ents[n] = entry{}
			b.ents = b.ents[:n]
			q.calQ--
			if b.head == len(b.ents) {
				q.clearBucket(b)
			}
			return
		}
	} else {
		for i := range b.ents {
			if b.ents[i].seq == seq {
				n := len(b.ents) - 1
				b.ents[i] = b.ents[n]
				b.ents[n] = entry{}
				b.ents = b.ents[:n]
				q.calQ--
				return
			}
		}
	}
	panic("eventq: pending entry missing from calendar bucket")
}

// Overflow heap: a hand-specialized binary min-heap of entry values.

func (q *Queue) ovPush(ent entry) {
	q.ov = append(q.ov, ent)
	i := len(q.ov) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.ov[i].before(q.ov[p]) {
			break
		}
		q.ov[i], q.ov[p] = q.ov[p], q.ov[i]
		i = p
	}
}

func (q *Queue) ovPop() {
	n := len(q.ov) - 1
	q.ov[0] = q.ov[n]
	q.ov[n] = entry{}
	q.ov = q.ov[:n]
	if n > 0 {
		q.ovDown(0)
	}
}

func (q *Queue) ovDown(i int) {
	n := len(q.ov)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.ov[r].before(q.ov[l]) {
			m = r
		}
		if !q.ov[m].before(q.ov[i]) {
			break
		}
		q.ov[i], q.ov[m] = q.ov[m], q.ov[i]
		i = m
	}
}

// ovCompact filters stale entries out of the overflow heap in place and
// re-heapifies. Reset-heavy far-future churn (per-ACK RTO re-arming) strands
// one stale entry per re-arm; compacting when they reach half the heap keeps
// the cost amortized O(1) per Reset with no allocation.
func (q *Queue) ovCompact() {
	kept := q.ov[:0]
	for _, ent := range q.ov {
		if !ent.stale() {
			kept = append(kept, ent)
		}
	}
	for i := len(kept); i < len(q.ov); i++ {
		q.ov[i] = entry{}
	}
	q.ov = kept
	q.ovStale = 0
	for i := len(q.ov)/2 - 1; i >= 0; i-- {
		q.ovDown(i)
	}
}

// peek returns the earliest visible entry — live or cancelled, matching the
// reference heap's lazy-deletion view — discarding stale entries it meets.
// It leaves the queue positioned so popMin can remove the returned entry in
// O(1).
func (q *Queue) peek() (entry, bool) {
	for q.calQ > 0 {
		b := &q.buckets[q.curDay&bucketMask]
		if b.head == len(b.ents) {
			if len(b.ents) > 0 {
				q.clearBucket(b)
			}
			q.curDay++
			continue
		}
		if !b.sorted {
			sortEntries(b.ents)
			b.sorted = true
		}
		ent := b.ents[b.head]
		if ent.stale() {
			b.ents[b.head] = entry{}
			b.head++
			q.calQ--
			continue
		}
		return ent, true
	}
	for len(q.ov) > 0 {
		top := q.ov[0]
		if top.stale() {
			q.ovPop()
			q.ovStale--
			continue
		}
		return top, true
	}
	return entry{}, false
}

// popMin removes and returns the earliest visible entry. fromOv reports that
// it came from the overflow heap (the calendar was empty), which is the
// trigger for advancing the window once the clock catches up.
func (q *Queue) popMin() (ent entry, fromOv, ok bool) {
	ent, ok = q.peek()
	if !ok {
		return ent, false, false
	}
	if q.calQ > 0 {
		b := &q.buckets[q.curDay&bucketMask]
		b.ents[b.head] = entry{}
		b.head++
		q.calQ--
		if b.head == len(b.ents) {
			q.clearBucket(b)
		}
		return ent, false, true
	}
	q.ovPop()
	return ent, true, true
}

// schedule inserts a live entry for e, which must already carry (at, seq).
func (q *Queue) schedule(e *Event) {
	e.pending = true
	q.live++
	q.insert(entry{at: e.at, seq: e.seq, ev: e})
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a simulator bug and would otherwise corrupt causality.
func (q *Queue) At(t simtime.Time, fn func()) *Event {
	q.checkTime(t)
	e := &Event{at: t, seq: q.seq, fn: fn, q: q}
	q.seq++
	q.schedule(e)
	return e
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero.
func (q *Queue) After(d simtime.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), fn)
}

// CallAt schedules fn(arg) at virtual time t on a recycled event. The event
// cannot be cancelled (no handle is returned); use At for cancellable timers.
// Callers pre-bind fn once (e.g. a stored method value) so the hot path
// allocates nothing: the Event comes from the free list and a pointer-typed
// arg boxes into the any without allocating.
func (q *Queue) CallAt(t simtime.Time, fn func(any), arg any) {
	q.checkTime(t)
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{q: q}
	}
	e.at = t
	e.seq = q.seq
	e.afn = fn
	e.arg = arg
	e.pooled = true
	e.cancelled = false
	q.seq++
	q.schedule(e)
}

// CallAfter schedules fn(arg) to run d after the current time (negative d is
// clamped to zero) on a recycled event. See CallAt.
func (q *Queue) CallAfter(d simtime.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	q.CallAt(q.now.Add(d), fn, arg)
}

// Keyed scheduling.
//
// Events scheduled through At/After/CallAt take the queue's monotonic
// sequence counter, so their same-time tie order reflects *scheduling
// history* — which events happened to be created first. That is fine inside
// one queue, but it is exactly what a sharded simulation cannot reproduce:
// the same packet arrival is scheduled by different code paths (local
// propagation vs. cross-shard injection at a barrier) in different engines,
// and history-dependent tie-breaking would let executions diverge at
// same-nanosecond ties.
//
// CallAtSeq therefore accepts an explicit sequence key with the top bit set
// (see KeyedSeq). The (time, seq) total order then reads: at equal times,
// every counter-sequenced event fires before every keyed event (the counter
// never reaches 2^63), and keyed events order among themselves by their
// key — a function of *what* the event is (which link, which packet), not of
// when or where it was scheduled. Engines that schedule the same keyed event
// set at the same times execute identically, regardless of how the events
// got into the queue.
const keyedSeqBit = uint64(1) << 63

// KeyedSeq builds an explicit sequence key for CallAtSeq from a stream id
// and a per-stream sequence number. Keys order by (stream, n); all keyed
// events at a given time fire after all counter-sequenced events at that
// time. stream must fit in 31 bits.
func KeyedSeq(stream uint32, n uint32) uint64 {
	return keyedSeqBit | uint64(stream)<<32 | uint64(n)
}

// CallAtSeq schedules fn(arg) at virtual time t on a recycled event carrying
// the explicit sequence key seq (built with KeyedSeq) instead of the
// monotonic counter. Two keyed events with the same key must never be
// pending at once; callers guarantee this by deriving keys from per-stream
// counters. Like CallAt, the event cannot be cancelled and the path
// allocates nothing in steady state.
func (q *Queue) CallAtSeq(t simtime.Time, seq uint64, fn func(any), arg any) {
	if seq&keyedSeqBit == 0 {
		panic("eventq: CallAtSeq key missing keyed bit (use KeyedSeq)")
	}
	q.checkTime(t)
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{q: q}
	}
	e.at = t
	e.seq = seq
	e.afn = fn
	e.arg = arg
	e.pooled = true
	e.cancelled = false
	q.schedule(e)
}

// Reset reschedules ev to fire fn at time t, reusing its allocation: a
// pending event's entry is replaced, a fired or cancelled-and-popped one is
// scheduled anew. A nil ev allocates, so timer owners can uniformly write
//
//	f.ev = q.Reset(f.ev, t, f.fn)
//
// and the flow's timer churn (pacing, RTO re-arming) settles into a single
// Event for the lifetime of the holder. The rescheduled event takes a fresh
// sequence number, exactly as a Cancel-plus-At pair would, so FIFO
// tie-breaking — and therefore replay determinism — is unchanged.
func (q *Queue) Reset(ev *Event, t simtime.Time, fn func()) *Event {
	q.checkTime(t)
	if ev == nil || ev.pooled {
		return q.At(t, fn)
	}
	wasPending := ev.pending
	oldLoc := ev.loc
	oldAt := ev.at
	oldSeq := ev.seq
	ev.at = t
	ev.seq = q.seq
	ev.fn = fn
	ev.cancelled = false
	q.seq++
	if oldLoc == locCal {
		// Remove the superseded calendar entry eagerly: near-horizon timer
		// churn (pacing) would otherwise grow the bucket every re-arm.
		q.removeCal(oldAt, oldSeq)
	} else if oldLoc == locOv {
		// Far-horizon entries are superseded lazily; the heap compacts when
		// stale entries reach half its size.
		q.ovStale++
		if q.ovStale*2 > len(q.ov) && len(q.ov) >= 32 {
			q.ovCompact()
		}
	}
	if !wasPending {
		ev.pending = true
		q.live++
	}
	q.insert(entry{at: t, seq: ev.seq, ev: ev})
	return ev
}

// ResetAfter is Reset positioned d after the current time (negative d is
// clamped to zero).
func (q *Queue) ResetAfter(ev *Event, d simtime.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.Reset(ev, q.now.Add(d), fn)
}

// recycle returns a popped CallAt event to the free list.
func (q *Queue) recycle(e *Event) {
	e.afn = nil
	e.arg = nil
	q.free = append(q.free, e)
}

// Step executes the earliest pending event and advances the clock to it.
// It returns false when no runnable event remains.
func (q *Queue) Step() bool {
	for {
		ent, fromOv, ok := q.popMin()
		if !ok {
			return false
		}
		e := ent.ev
		e.loc = locNone
		if e.cancelled {
			if e.pooled {
				q.recycle(e)
			}
			continue
		}
		e.pending = false
		q.live--
		q.now = ent.at
		q.processed++
		if fromOv && q.calQ == 0 {
			// The clock just jumped past the calendar window; move the window
			// to the present so subsequent near-future scheduling stays on
			// the bucketed fast path.
			q.rebase()
		}
		if e.pooled {
			fn, arg := e.afn, e.arg
			q.recycle(e)
			fn(arg)
		} else {
			fn := e.fn
			e.fn = nil
			fn()
		}
		return true
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline. Events scheduled during execution are honored if they fall
// within the horizon.
func (q *Queue) RunUntil(deadline simtime.Time) {
	for {
		ent, ok := q.peek()
		if !ok || ent.at > deadline {
			break
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// RunBefore executes events with time strictly before the barrier, then
// advances the clock to the barrier. It is the conservative-sync primitive
// for sharded simulation (internal/psim): a shard runs its window
// exclusively of the barrier instant, so that cross-shard arrivals keyed at
// exactly the barrier can still be injected ahead of the local events there
// and fire in canonical (time, key) order.
func (q *Queue) RunBefore(barrier simtime.Time) {
	for {
		ent, ok := q.peek()
		if !ok {
			break
		}
		if ent.ev.cancelled {
			// Reap the lazily-deleted head here instead of handing it to
			// Step: Step skips cancelled entries and executes the next live
			// event, which may lie at or beyond the barrier — overshooting
			// the window and breaking the conservative-sync contract.
			q.popMin()
			ent.ev.loc = locNone
			if ent.ev.pooled {
				q.recycle(ent.ev)
			}
			continue
		}
		if ent.at >= barrier {
			break
		}
		q.Step()
	}
	if q.now < barrier {
		q.now = barrier
	}
}

// Run executes events until none remain.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// sortEntries orders a bucket by (at, seq): insertion sort for the common
// small bucket (appended roughly in time order, so nearly sorted), heapsort
// above the threshold. In place and allocation-free — sort.Slice would box
// the slice and a closure on every bucket rotation.
func sortEntries(s []entry) {
	if len(s) > 32 {
		for i := len(s)/2 - 1; i >= 0; i-- {
			siftDown(s, i, len(s))
		}
		for end := len(s) - 1; end > 0; end-- {
			s[0], s[end] = s[end], s[0]
			siftDown(s, 0, end)
		}
		return
	}
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 && e.before(s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// siftDown restores the max-heap property for s[:n] rooted at i.
func siftDown(s []entry, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && s[l].before(s[r]) {
			m = r
		}
		if !s[i].before(s[m]) {
			return
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}
