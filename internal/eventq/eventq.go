// Package eventq implements the deterministic discrete-event scheduler that
// drives the simulator.
//
// Events are ordered by virtual time with FIFO tie-breaking (a monotonically
// increasing sequence number), so two runs with the same seed replay
// identically. Events may be cancelled, which is implemented by lazy deletion:
// a cancelled event stays in the heap but its callback is skipped when popped.
package eventq

import (
	"container/heap"

	"github.com/accnet/acc/internal/simtime"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending timers.
type Event struct {
	at        simtime.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the virtual time the event fires at.
func (e *Event) At() simtime.Time { return e.at }

// Cancel marks the event so its callback will not run. Cancelling an event
// that already fired or was cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil // release captured state early
	}
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event scheduler. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator is single-threaded by
// design so that runs are reproducible.
type Queue struct {
	h         eventHeap
	seq       uint64
	now       simtime.Time
	processed uint64
}

// New returns an empty scheduler positioned at the simulation epoch.
func New() *Queue { return &Queue{} }

// Now returns the current virtual time.
func (q *Queue) Now() simtime.Time { return q.now }

// Len returns the number of pending events, including cancelled ones that
// have not yet been reaped.
func (q *Queue) Len() int { return len(q.h) }

// Processed returns the number of events executed so far.
func (q *Queue) Processed() uint64 { return q.processed }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a simulator bug and would otherwise corrupt causality.
func (q *Queue) At(t simtime.Time, fn func()) *Event {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
	e := &Event{at: t, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero.
func (q *Queue) After(d simtime.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), fn)
}

// Step executes the earliest pending event and advances the clock to it.
// It returns false when no runnable event remains.
func (q *Queue) Step() bool {
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*Event)
		if e.cancelled {
			continue
		}
		q.now = e.at
		fn := e.fn
		e.fn = nil
		q.processed++
		fn()
		return true
	}
	return false
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline. Events scheduled during execution are honored if they fall
// within the horizon.
func (q *Queue) RunUntil(deadline simtime.Time) {
	for len(q.h) > 0 {
		e := q.h[0]
		if e.at > deadline {
			break
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Run executes events until none remain.
func (q *Queue) Run() {
	for q.Step() {
	}
}
