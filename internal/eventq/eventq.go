// Package eventq implements the deterministic discrete-event scheduler that
// drives the simulator.
//
// Events are ordered by virtual time with FIFO tie-breaking (a monotonically
// increasing sequence number), so two runs with the same seed replay
// identically. Events may be cancelled, which is implemented by lazy deletion:
// a cancelled event stays in the heap but its callback is skipped when popped.
//
// Two scheduling paths exist:
//
//   - At/After return a *Event handle the caller may Cancel or Reset. These
//     events are never recycled, because the caller can hold the handle
//     indefinitely.
//   - CallAt/CallAfter take a pre-bound func(any) plus an argument and return
//     nothing. Their Event structs come from a per-queue free list and are
//     recycled after firing, so the per-packet hot path (serialize, propagate)
//     schedules without allocating and without capturing a closure.
package eventq

import (
	"container/heap"

	"github.com/accnet/acc/internal/simtime"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending timers.
type Event struct {
	at  simtime.Time
	seq uint64

	// Exactly one of fn / afn is set. afn events carry their argument in arg
	// instead of capturing it in a closure.
	fn  func()
	afn func(any)
	arg any

	cancelled bool
	pooled    bool // afn fast path: recycle into q.free after firing
	index     int  // heap index, -1 once popped
}

// At returns the virtual time the event fires at.
func (e *Event) At() simtime.Time { return e.at }

// Cancel marks the event so its callback will not run. Cancelling an event
// that already fired or was cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil // release captured state early
		e.afn = nil
		e.arg = nil
	}
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event scheduler. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator is single-threaded by
// design so that runs are reproducible.
type Queue struct {
	h         eventHeap
	seq       uint64
	now       simtime.Time
	processed uint64
	free      []*Event // recycled CallAt events
}

// New returns an empty scheduler positioned at the simulation epoch.
func New() *Queue { return &Queue{} }

// Now returns the current virtual time.
func (q *Queue) Now() simtime.Time { return q.now }

// Len returns the number of pending events, including cancelled ones that
// have not yet been reaped.
func (q *Queue) Len() int { return len(q.h) }

// Processed returns the number of events executed so far.
func (q *Queue) Processed() uint64 { return q.processed }

func (q *Queue) checkTime(t simtime.Time) {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
}

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it always indicates a simulator bug and would otherwise corrupt causality.
func (q *Queue) At(t simtime.Time, fn func()) *Event {
	q.checkTime(t)
	e := &Event{at: t, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero.
func (q *Queue) After(d simtime.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), fn)
}

// CallAt schedules fn(arg) at virtual time t on a recycled event. The event
// cannot be cancelled (no handle is returned); use At for cancellable timers.
// Callers pre-bind fn once (e.g. a stored method value) so the hot path
// allocates nothing: the Event comes from the free list and a pointer-typed
// arg boxes into the any without allocating.
func (q *Queue) CallAt(t simtime.Time, fn func(any), arg any) {
	q.checkTime(t)
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at = t
	e.seq = q.seq
	e.afn = fn
	e.arg = arg
	e.pooled = true
	e.cancelled = false
	q.seq++
	heap.Push(&q.h, e)
}

// CallAfter schedules fn(arg) to run d after the current time (negative d is
// clamped to zero) on a recycled event. See CallAt.
func (q *Queue) CallAfter(d simtime.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	q.CallAt(q.now.Add(d), fn, arg)
}

// Reset reschedules ev to fire fn at time t, reusing its allocation: a
// pending event is moved within the heap, a fired or cancelled-and-popped one
// is pushed back. A nil ev allocates, so timer owners can uniformly write
//
//	f.ev = q.Reset(f.ev, t, f.fn)
//
// and the flow's timer churn (pacing, RTO re-arming) settles into a single
// Event for the lifetime of the holder. The rescheduled event takes a fresh
// sequence number, exactly as a Cancel-plus-At pair would, so FIFO
// tie-breaking — and therefore replay determinism — is unchanged.
func (q *Queue) Reset(ev *Event, t simtime.Time, fn func()) *Event {
	q.checkTime(t)
	if ev == nil || ev.pooled {
		return q.At(t, fn)
	}
	ev.at = t
	ev.seq = q.seq
	ev.fn = fn
	ev.cancelled = false
	q.seq++
	if ev.index >= 0 {
		heap.Fix(&q.h, ev.index)
	} else {
		heap.Push(&q.h, ev)
	}
	return ev
}

// ResetAfter is Reset positioned d after the current time (negative d is
// clamped to zero).
func (q *Queue) ResetAfter(ev *Event, d simtime.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.Reset(ev, q.now.Add(d), fn)
}

// recycle returns a popped CallAt event to the free list.
func (q *Queue) recycle(e *Event) {
	e.afn = nil
	e.arg = nil
	q.free = append(q.free, e)
}

// Step executes the earliest pending event and advances the clock to it.
// It returns false when no runnable event remains.
func (q *Queue) Step() bool {
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*Event)
		if e.cancelled {
			if e.pooled {
				q.recycle(e)
			}
			continue
		}
		q.now = e.at
		q.processed++
		if e.pooled {
			fn, arg := e.afn, e.arg
			q.recycle(e)
			fn(arg)
		} else {
			fn := e.fn
			e.fn = nil
			fn()
		}
		return true
	}
	return false
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline. Events scheduled during execution are honored if they fall
// within the horizon.
func (q *Queue) RunUntil(deadline simtime.Time) {
	for len(q.h) > 0 {
		e := q.h[0]
		if e.at > deadline {
			break
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Run executes events until none remain.
func (q *Queue) Run() {
	for q.Step() {
	}
}
