package eventq

import (
	"math/rand"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// The differential proof: the calendar Queue and the reference heap refQueue
// are driven through the same randomized sequence of At/After/CallAt/
// CallAfter/Cancel/Reset/ResetAfter/Step/RunUntil operations, including
// callbacks that schedule more events while the queue is draining. After
// every operation the clocks and live counts must agree, and at the end the
// complete firing logs — (id, time) pairs in execution order — must be
// identical. Horizons are drawn to straddle the calendar window boundary so
// the bucketed path, the overflow heap, window rebasing, and stale-entry
// compaction are all on the tested path.

type fireRec struct {
	id int
	at simtime.Time
}

type diffHarness struct {
	q *Queue
	r *refQueue

	qLog []fireRec
	rLog []fireRec

	qTimers []*Event
	rTimers []*refEvent

	qSlots [8]*Event
	rSlots [8]*refEvent
}

// childDelay derives a deterministic nested-scheduling delay from an id.
func childDelay(id int) simtime.Duration {
	return simtime.Duration(id*37%1000) + 1
}

// qFn returns a callback for the calendar queue that logs the firing and,
// for ids divisible by 5, schedules a nested child event. rFn mirrors it for
// the reference queue; the two must stay structurally identical.
func (h *diffHarness) qFn(id int) func() {
	return func() {
		h.qLog = append(h.qLog, fireRec{id, h.q.Now()})
		if id%5 == 0 {
			h.q.After(childDelay(id), h.qFn(id*1000+1))
		}
	}
}

func (h *diffHarness) rFn(id int) func() {
	return func() {
		h.rLog = append(h.rLog, fireRec{id, h.r.Now()})
		if id%5 == 0 {
			h.r.After(childDelay(id), h.rFn(id*1000+1))
		}
	}
}

// horizon draws a scheduling delay from a mix that covers the same-bucket
// fast path, the in-window common case, the window-straddling case (the
// calendar spans numBuckets<<bucketShift ns), and far-future overflow.
func horizon(rng *rand.Rand) simtime.Duration {
	switch rng.Intn(10) {
	case 0:
		return 0 // exactly at Now()
	case 1, 2, 3:
		return simtime.Duration(rng.Intn(200)) // same/adjacent bucket
	case 4, 5, 6:
		return simtime.Duration(rng.Intn(50_000)) // well inside the window
	case 7, 8:
		return simtime.Duration(rng.Intn(2 * numBuckets << bucketShift)) // straddles
	default:
		return simtime.Duration(rng.Intn(4_000_000)) // ms-scale overflow (RTO-like)
	}
}

func (h *diffHarness) check(t *testing.T, op int) {
	t.Helper()
	if h.q.Now() != h.r.Now() {
		t.Fatalf("op %d: Now diverged: calendar=%v reference=%v", op, h.q.Now(), h.r.Now())
	}
	if h.q.Processed() != h.r.Processed() {
		t.Fatalf("op %d: Processed diverged: calendar=%d reference=%d", op, h.q.Processed(), h.r.Processed())
	}
	if h.q.Pending() != h.r.Pending() {
		t.Fatalf("op %d: Pending diverged: calendar=%d reference=%d", op, h.q.Pending(), h.r.Pending())
	}
}

func (h *diffHarness) compareLogs(t *testing.T) {
	t.Helper()
	if len(h.qLog) != len(h.rLog) {
		t.Fatalf("firing counts diverged: calendar=%d reference=%d", len(h.qLog), len(h.rLog))
	}
	for i := range h.qLog {
		if h.qLog[i] != h.rLog[i] {
			t.Fatalf("firing %d diverged: calendar=%+v reference=%+v", i, h.qLog[i], h.rLog[i])
		}
	}
}

func runDifferential(t *testing.T, seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	h := &diffHarness{q: New(), r: newRef()}
	nextID := 1

	for op := 0; op < ops; op++ {
		switch rng.Intn(14) {
		case 0, 1: // cancellable timer via At
			d := horizon(rng)
			id := nextID
			nextID++
			at := h.q.Now().Add(d)
			h.qTimers = append(h.qTimers, h.q.At(at, h.qFn(id)))
			h.rTimers = append(h.rTimers, h.r.At(at, h.rFn(id)))
		case 2: // After, sometimes with a negative (clamped) delay
			d := horizon(rng)
			if rng.Intn(8) == 0 {
				d = -d
			}
			id := nextID
			nextID++
			h.qTimers = append(h.qTimers, h.q.After(d, h.qFn(id)))
			h.rTimers = append(h.rTimers, h.r.After(d, h.rFn(id)))
		case 3, 4: // pooled fast path via CallAfter
			d := horizon(rng)
			id := nextID
			nextID++
			qfn, rfn := h.qFn(id), h.rFn(id)
			h.q.CallAfter(d, func(any) { qfn() }, nil)
			h.r.CallAfter(d, func(any) { rfn() }, nil)
		case 5: // cancel a random handle (fired, pending, or already cancelled)
			if len(h.qTimers) > 0 {
				k := rng.Intn(len(h.qTimers))
				h.qTimers[k].Cancel()
				h.rTimers[k].Cancel()
			}
		case 6, 7: // timer-slot Reset churn (pacing / RTO re-arm pattern)
			d := horizon(rng)
			k := rng.Intn(len(h.qSlots))
			id := 1_000_000 + k
			h.qSlots[k] = h.q.ResetAfter(h.qSlots[k], d, h.qFn(id))
			h.rSlots[k] = h.r.ResetAfter(h.rSlots[k], d, h.rFn(id))
		case 8: // cancel a slot timer, leaving its entry for lazy deletion
			k := rng.Intn(len(h.qSlots))
			h.qSlots[k].Cancel()
			h.rSlots[k].Cancel()
		case 9: // single step
			qok := h.q.Step()
			rok := h.r.Step()
			if qok != rok {
				t.Fatalf("op %d: Step diverged: calendar=%v reference=%v", op, qok, rok)
			}
		case 10, 11: // bounded run
			d := simtime.Duration(rng.Intn(100_000))
			deadline := h.q.Now().Add(d)
			h.q.RunUntil(deadline)
			h.r.RunUntil(deadline)
		case 12, 13: // barrier-window run (psim's conservative-sync pattern)
			d := simtime.Duration(rng.Intn(100_000))
			barrier := h.q.Now().Add(d)
			h.q.RunBefore(barrier)
			h.r.RunBefore(barrier)
		}
		h.check(t, op)
	}

	h.q.Run()
	h.r.Run()
	h.check(t, ops)
	h.compareLogs(t)
	if h.q.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", h.q.Pending())
	}
}

// TestDifferentialFiringOrder fans the property over many seeds.
func TestDifferentialFiringOrder(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		runDifferential(t, seed, 400)
	}
}

// TestDifferentialLongRun is one deep workload: enough operations for many
// full window rotations, overflow migrations, and stale compactions.
func TestDifferentialLongRun(t *testing.T) {
	runDifferential(t, 424242, 8000)
}

// TestDifferentialResetStorm pins the worst case for the calendar's stale
// handling: every ACK-like tick re-arms a far-future timer, so superseded
// entries pile into the overflow heap and must be compacted without ever
// perturbing firing order.
func TestDifferentialResetStorm(t *testing.T) {
	h := &diffHarness{q: New(), r: newRef()}
	const rto = 3_000_000 // ~3ms, far beyond the calendar window
	for i := 0; i < 5000; i++ {
		h.qSlots[0] = h.q.ResetAfter(h.qSlots[0], rto, h.qFn(7))
		h.rSlots[0] = h.r.ResetAfter(h.rSlots[0], rto, h.rFn(7))
		// An ACK-like pooled event 100ns out keeps virtual time moving.
		qfn, rfn := h.qFn(i*10+1), h.rFn(i*10+1)
		h.q.CallAfter(100, func(any) { qfn() }, nil)
		h.r.CallAfter(100, func(any) { rfn() }, nil)
		h.q.Step()
		h.r.Step()
		h.check(t, i)
	}
	h.q.Run()
	h.r.Run()
	h.check(t, -1)
	h.compareLogs(t)
}
