//go:build !race

package eventq

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// warmRotation drives the queue through more than one full calendar window
// so every bucket's entry slice has grown to its steady-state capacity. The
// alloc pins below assert the *steady-state* hot path; the one-time bucket
// growth during the first rotation is expected and amortized.
func warmRotation(q *Queue, step simtime.Duration, fn func(any), arg any) {
	span := simtime.Duration(2 * numBuckets << bucketShift)
	for d := simtime.Duration(0); d < span; d += step {
		q.CallAfter(step, fn, arg)
		q.Step()
	}
}

// TestAllocFreeCallPath pins the typed-event fast path at zero allocations:
// schedule-plus-fire through CallAfter must recycle Event structs from the
// queue's free list — and calendar bucket storage — once warmed up. This is
// the per-packet-hop path (two events per hop), so a single allocation here
// multiplies into millions per experiment.
func TestAllocFreeCallPath(t *testing.T) {
	q := New()
	fn := func(any) {}
	arg := &struct{ n int }{} // pointer arg boxes into any without allocating
	warmRotation(q, 10, fn, arg)

	avg := testing.AllocsPerRun(1000, func() {
		q.CallAfter(simtime.Duration(10), fn, arg)
		q.Step()
	})
	if avg != 0 {
		t.Fatalf("CallAfter+Step allocates %v/op, want 0", avg)
	}
}

// TestAllocFreeResetPath pins timer reuse at zero allocations: the
// Reset-based re-arm pattern (pacing, RTO) must reuse the holder's single
// Event for both the fired-and-rearmed and the pending-reschedule cases.
func TestAllocFreeResetPath(t *testing.T) {
	q := New()
	fn := func() {}
	ev := q.ResetAfter(nil, 1, fn) // initial allocation
	q.Run()
	// Warm the bucket storage across a full window rotation.
	for i := 0; i < 40000; i++ {
		ev = q.ResetAfter(ev, 10, fn)
		q.Step()
	}

	avg := testing.AllocsPerRun(1000, func() {
		ev = q.ResetAfter(ev, 10, fn)
		q.Step()
	})
	if avg != 0 {
		t.Fatalf("fired-event ResetAfter allocates %v/op, want 0", avg)
	}

	// Pending reschedule: the event never fires between resets. The
	// superseded calendar entry is removed in place, so this cannot grow the
	// bucket either.
	avg = testing.AllocsPerRun(1000, func() {
		ev = q.ResetAfter(ev, 10, fn)
	})
	if avg != 0 {
		t.Fatalf("pending-event ResetAfter allocates %v/op, want 0", avg)
	}
	q.Run()
}

// TestAllocFreeOverflowChurn pins the far-future re-arm pattern (per-ACK RTO
// reset, ~ms beyond the calendar window) at zero steady-state allocations:
// superseded entries go stale in the overflow heap and are compacted in
// place, never by reallocating.
func TestAllocFreeOverflowChurn(t *testing.T) {
	q := New()
	fn := func() {}
	afn := func(any) {}
	const rto = 3 * simtime.Millisecond
	var ev *Event
	// Warm: enough churn to reach the compaction threshold several times and
	// settle every backing array, across multiple window rebases.
	for i := 0; i < 40000; i++ {
		ev = q.ResetAfter(ev, rto, fn)
		q.CallAfter(100, afn, nil)
		q.Step()
	}

	avg := testing.AllocsPerRun(1000, func() {
		ev = q.ResetAfter(ev, rto, fn)
		q.CallAfter(100, afn, nil)
		q.Step()
	})
	if avg != 0 {
		t.Fatalf("overflow Reset churn allocates %v/op, want 0", avg)
	}
	ev.Cancel()
	q.Run()
}
