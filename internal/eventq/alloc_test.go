//go:build !race

package eventq

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// TestAllocFreeCallPath pins the typed-event fast path at zero allocations:
// schedule-plus-fire through CallAfter must recycle Event structs from the
// queue's free list once warmed up. This is the per-packet-hop path (two
// events per hop), so a single allocation here multiplies into millions per
// experiment.
func TestAllocFreeCallPath(t *testing.T) {
	q := New()
	fn := func(any) {}
	arg := &struct{ n int }{} // pointer arg boxes into any without allocating
	// Warm the free list.
	q.CallAfter(1, fn, arg)
	q.Run()

	avg := testing.AllocsPerRun(1000, func() {
		q.CallAfter(simtime.Duration(10), fn, arg)
		q.Step()
	})
	if avg != 0 {
		t.Fatalf("CallAfter+Step allocates %v/op, want 0", avg)
	}
}

// TestAllocFreeResetPath pins timer reuse at zero allocations: the
// Reset-based re-arm pattern (pacing, RTO) must reuse the holder's single
// Event for both the fired-and-rearmed and the pending-reschedule cases.
func TestAllocFreeResetPath(t *testing.T) {
	q := New()
	fn := func() {}
	ev := q.ResetAfter(nil, 1, fn) // initial allocation
	q.Run()

	avg := testing.AllocsPerRun(1000, func() {
		ev = q.ResetAfter(ev, 10, fn)
		q.Step()
	})
	if avg != 0 {
		t.Fatalf("fired-event ResetAfter allocates %v/op, want 0", avg)
	}

	// Pending reschedule: the event never fires between resets.
	avg = testing.AllocsPerRun(1000, func() {
		ev = q.ResetAfter(ev, 10, fn)
	})
	if avg != 0 {
		t.Fatalf("pending-event ResetAfter allocates %v/op, want 0", avg)
	}
	q.Run()
}
