package eventq_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// TestSnapshotRoundTrip is the encode∘decode identity property for the
// queue's snapshot surface: for randomized schedules and partial
// execution, save → restore into a fresh queue → save again must be
// byte-identical, and the restored counters must match exactly (they are
// what makes a rebuilt world assign the same (at, seq) slots the
// original did).
func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := eventq.New()
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			at := simtime.Time(rng.Int63n(int64(80 * simtime.Microsecond)))
			if rng.Intn(2) == 0 {
				q.At(at, func() {})
			} else {
				q.CallAt(at, func(any) {}, nil)
			}
		}
		for steps := rng.Intn(n); steps > 0 && q.Step(); steps-- {
		}

		w := codec.NewWriter()
		q.SaveState(w)
		img := w.Finish()

		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		q2 := eventq.New()
		q2.RestoreState(r)
		if r.Err() != nil {
			t.Fatalf("seed %d: RestoreState: %v", seed, r.Err())
		}
		if q2.Now() != q.Now() || q2.Seq() != q.Seq() || q2.Processed() != q.Processed() {
			t.Fatalf("seed %d: counters (now %v seq %d processed %d) != (now %v seq %d processed %d)",
				seed, q2.Now(), q2.Seq(), q2.Processed(), q.Now(), q.Seq(), q.Processed())
		}

		w2 := codec.NewWriter()
		q2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("seed %d: save∘restore∘save changed bytes (%d vs %d)", seed, len(img), len(img2))
		}
	}
}

// TestTimerSlotRoundTrip: SaveTimer/RestoreTimer must preserve the exact
// (at, seq) slot — pending and idle timers alike.
func TestTimerSlotRoundTrip(t *testing.T) {
	q := eventq.New()
	pending := q.At(simtime.Time(30*simtime.Microsecond), func() {})
	var idle *eventq.Event // a never-armed timer slot

	w := codec.NewWriter()
	eventq.SaveTimer(w, pending)
	eventq.SaveTimer(w, idle)
	img := w.Finish()

	r, err := codec.NewReader(img)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	q2 := eventq.New()
	got := q2.RestoreTimer(r, func() {})
	if got == nil || !got.Pending() {
		t.Fatal("pending timer did not restore as pending")
	}
	if got.Seq() != pending.Seq() {
		t.Fatalf("restored timer seq %d, want %d", got.Seq(), pending.Seq())
	}
	if idle2 := q2.RestoreTimer(r, func() {}); idle2 != nil {
		t.Fatal("idle timer restored as pending")
	}
	if r.Err() != nil {
		t.Fatalf("reader: %v", r.Err())
	}
}
