package eventq

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// Edge-case pins for the scheduler semantics the calendar rewrite must not
// change. Where the behavior is subtle (lazy deletion interacting with
// RunUntil), the test drives the reference heap too, so the assertion is
// "both implementations agree", not just "the new one does X".

// TestResetAfterFire re-arms an event that already fired and was popped: the
// same handle must fire again, with the new callback and a fresh sequence
// number.
func TestResetAfterFire(t *testing.T) {
	q := New()
	var got []int
	ev := q.At(10, func() { got = append(got, 1) })
	q.Run()
	if len(got) != 1 {
		t.Fatalf("first arm did not fire: %v", got)
	}
	seq1 := ev.seq
	ev = q.Reset(ev, 20, func() { got = append(got, 2) })
	if ev.seq <= seq1 {
		t.Fatalf("re-armed seq %d not after fired seq %d", ev.seq, seq1)
	}
	q.Run()
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("re-armed event wrong: %v", got)
	}
	if q.Now() != 20 {
		t.Fatalf("clock = %v, want 20", q.Now())
	}
}

// TestCancelAfterFire: cancelling an event that already ran is a no-op for
// scheduling state — Pending is unaffected — though the flag is set, as it
// always was.
func TestCancelAfterFire(t *testing.T) {
	q := New()
	ran := false
	ev := q.At(5, func() { ran = true })
	q.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if q.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", q.Pending())
	}
	ev.Cancel()
	if q.Pending() != 0 {
		t.Fatalf("Pending after late Cancel = %d, want 0", q.Pending())
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// And the handle is still re-armable.
	ran = false
	q.Reset(ev, 10, func() { ran = true })
	q.Run()
	if !ran {
		t.Fatal("cancel-then-reset event did not run")
	}
}

// TestScheduleExactlyAtNow: t == Now() is legal, fires without advancing the
// clock, both from outside and from within a running callback.
func TestScheduleExactlyAtNow(t *testing.T) {
	q := New()
	var got []int
	q.At(10, func() {
		got = append(got, 1)
		q.At(q.Now(), func() { got = append(got, 2) }) // nested, same instant
	})
	q.Run()
	q.At(q.Now(), func() { got = append(got, 3) }) // from outside, at the clock
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("same-instant scheduling wrong: %v", got)
	}
	if q.Now() != 10 {
		t.Fatalf("clock = %v, want 10", q.Now())
	}
}

// TestRunUntilCancelledHeadPastDeadline: a cancelled event at the head of
// the schedule with time beyond the deadline must stay put — RunUntil breaks
// on its time without reaping it.
func TestRunUntilCancelledHeadPastDeadline(t *testing.T) {
	q, r := New(), newRef()
	qe := q.At(15, func() { t.Fatal("cancelled event ran") })
	re := r.At(15, func() { t.Fatal("cancelled event ran") })
	qe.Cancel()
	re.Cancel()
	q.RunUntil(10)
	r.RunUntil(10)
	if q.Now() != 10 || r.Now() != 10 {
		t.Fatalf("Now: calendar=%v reference=%v, want 10", q.Now(), r.Now())
	}
	if q.Len() != 1 || r.Len() != 1 {
		t.Fatalf("Len: calendar=%d reference=%d, want 1 (lazy deletion)", q.Len(), r.Len())
	}
	if q.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", q.Pending())
	}
}

// TestRunUntilCancelledHeadBeforeDeadline pins the other lazy-deletion
// corner, deliberately: when the head is a cancelled event inside the
// horizon, RunUntil enters Step, which skips the tombstone and executes the
// next runnable event even if it lies past the deadline. That overshoot has
// been the scheduler's behavior since the original heap, replay logs depend
// on it, and both implementations must agree on it.
func TestRunUntilCancelledHeadBeforeDeadline(t *testing.T) {
	check := func(name string, now func() simtime.Time, fired *bool) {
		if !*fired {
			t.Errorf("%s: event past deadline not executed (lazy-deletion overshoot semantics changed)", name)
		}
		if now() != 50 {
			t.Errorf("%s: Now = %v, want 50", name, now())
		}
	}

	q := New()
	var qFired bool
	q.At(5, func() {}).Cancel()
	q.At(50, func() { qFired = true })
	q.RunUntil(10)
	check("calendar", q.Now, &qFired)

	r := newRef()
	var rFired bool
	r.At(5, func() {}).Cancel()
	r.At(50, func() { rFired = true })
	r.RunUntil(10)
	check("reference", r.Now, &rFired)
}

// TestSeqMonotonicAcrossRecycle: pooled events recycled through the free
// list must take fresh, strictly increasing sequence numbers on every
// re-schedule, or FIFO tie-breaking (and replay) would silently break.
func TestSeqMonotonicAcrossRecycle(t *testing.T) {
	q := New()
	fn := func(any) {}
	q.CallAfter(1, fn, nil)
	q.Run()
	if len(q.free) != 1 {
		t.Fatalf("free list has %d events, want 1", len(q.free))
	}
	e := q.free[0]
	last := e.seq
	for i := 0; i < 5; i++ {
		q.CallAfter(1, fn, nil)
		if len(q.free) != 0 {
			t.Fatal("free list not reused")
		}
		if e.seq <= last {
			t.Fatalf("recycled event seq %d not after %d", e.seq, last)
		}
		last = e.seq
		q.Run()
	}
	// Handles churned through Reset advance the same counter.
	ev := q.ResetAfter(nil, 1, func() {})
	if ev.seq <= last {
		t.Fatalf("Reset seq %d not after pooled seq %d", ev.seq, last)
	}
	prev := ev.seq
	ev = q.ResetAfter(ev, 2, func() {})
	if ev.seq <= prev {
		t.Fatalf("pending Reset seq %d did not advance past %d", ev.seq, prev)
	}
	q.Run()
}

// TestLenVersusPending pins the documented split: Len counts resident
// entries including cancelled tombstones, Pending counts events that will
// actually fire.
func TestLenVersusPending(t *testing.T) {
	q := New()
	a := q.At(10, func() {})
	q.At(20, func() {})
	q.At(3_000_000, func() {}) // far future: overflow-resident
	if q.Len() != 3 || q.Pending() != 3 {
		t.Fatalf("Len=%d Pending=%d, want 3/3", q.Len(), q.Pending())
	}
	a.Cancel()
	if q.Len() != 3 {
		t.Fatalf("Len=%d after Cancel, want 3 (lazy deletion)", q.Len())
	}
	if q.Pending() != 2 {
		t.Fatalf("Pending=%d after Cancel, want 2", q.Pending())
	}
	q.Run()
	if q.Len() != 0 || q.Pending() != 0 {
		t.Fatalf("Len=%d Pending=%d after drain, want 0/0", q.Len(), q.Pending())
	}
}

// TestResetAtBucketDayBoundary pins Reset behavior for events scheduled
// exactly on a bucket-day boundary — the first nanosecond of a calendar day,
// where dayOf(t) changes value. PR 4's fuzz corpus never landed a Reset on
// the seam itself, so the three boundary interactions are pinned here
// explicitly, each against the reference heap:
//
//  1. an event at the *current* day's boundary, rescheduled from within a
//     callback running at that same instant (the bucket is mid-drain and
//     sorted, so removeCal takes the binary-search path with the target at
//     the head of the pending tail);
//  2. an event at the last covered day's boundary rescheduled across the
//     window edge into the overflow heap;
//  3. an event exactly at the first uncovered boundary (overflow-resident)
//     rescheduled back inside the window.
func TestResetAtBucketDayBoundary(t *testing.T) {
	const day = 1 << bucketShift

	// The two implementations return distinct handle types, so the shared
	// scenario is expressed over function values with any-typed handles.
	run := func(
		at func(simtime.Time, func()) any,
		reset func(any, simtime.Time, func()) any,
		runAll func(),
	) []int {
		var got []int
		note := func(k int) func() { return func() { got = append(got, k) } }

		// Case 1: current-day boundary, Reset issued at the boundary instant.
		boundary := simtime.Time(2 * day)
		var ev1a, ev1b any
		at(boundary, func() {
			got = append(got, 1)
			// Both events are pending at this exact boundary time; push one
			// later within the same day, the other to the next day's boundary.
			ev1a = reset(ev1a, boundary.Add(day/2), note(2))
			ev1b = reset(ev1b, simtime.Time(3*day), note(3))
		})
		ev1a = at(boundary, func() { got = append(got, -1) })
		ev1b = at(boundary, func() { got = append(got, -11) })

		// Case 2: last covered day's boundary -> overflow. With the clock at
		// 0 the window covers days [0, numBuckets); day numBuckets-1 is the
		// last covered one.
		lastCovered := simtime.Time((numBuckets - 1) * day)
		ev2 := at(lastCovered, note(-2))
		reset(ev2, simtime.Time((numBuckets+3)*day), note(4))

		// Case 3: first uncovered boundary (overflow) -> back in window.
		firstBeyond := simtime.Time(numBuckets * day)
		ev3 := at(firstBeyond, note(-3))
		reset(ev3, lastCovered.Add(1), note(5))

		runAll()
		return got
	}

	want := []int{1, 2, 3, 5, 4}
	q := New()
	cal := run(
		func(t simtime.Time, fn func()) any { return q.At(t, fn) },
		func(ev any, t simtime.Time, fn func()) any {
			var e *Event
			if ev != nil {
				e = ev.(*Event)
			}
			return q.Reset(e, t, fn)
		},
		q.Run,
	)
	r := newRef()
	ref := run(
		func(t simtime.Time, fn func()) any { return r.At(t, fn) },
		func(ev any, t simtime.Time, fn func()) any {
			var e *refEvent
			if ev != nil {
				e = ev.(*refEvent)
			}
			return r.Reset(e, t, fn)
		},
		r.Run,
	)
	if !intsEqual(cal, want) {
		t.Errorf("calendar firing order = %v, want %v", cal, want)
	}
	if !intsEqual(ref, want) {
		t.Errorf("reference firing order = %v, want %v", ref, want)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPendingResetKeepsLenBounded: re-arming a pending near-horizon timer
// replaces its calendar entry in place, so pathological pacing churn cannot
// grow the schedule.
func TestPendingResetKeepsLenBounded(t *testing.T) {
	q := New()
	var ev *Event
	for i := 0; i < 10_000; i++ {
		ev = q.ResetAfter(ev, simtime.Duration(100+i%50), func() {})
		if q.Len() != 1 {
			t.Fatalf("iteration %d: Len=%d, want 1 (superseded entry not removed)", i, q.Len())
		}
	}
	if q.Pending() != 1 {
		t.Fatalf("Pending=%d, want 1", q.Pending())
	}
	q.Run()
}

// TestRunBeforeCancelledHead pins the conservative-sync contract of
// RunBefore against lazy deletion: a cancelled event sitting at the head of
// the schedule below the barrier must not let RunBefore execute a live event
// at or beyond the barrier. Step skips cancelled entries and runs the next
// live one, so RunBefore has to reap cancelled heads itself — otherwise a
// sharded run (internal/psim) overshoots its window and cross-shard
// injection at the barrier panics as scheduling in the past.
func TestRunBeforeCancelledHead(t *testing.T) {
	q, r := New(), newRef()
	var qFired, rFired bool
	qc := q.At(10, func() { t.Error("cancelled event fired") })
	rc := r.At(10, func() { t.Error("cancelled event fired (ref)") })
	q.At(50, func() { qFired = true })
	r.At(50, func() { rFired = true })
	qc.Cancel()
	rc.Cancel()

	q.RunBefore(50)
	r.RunBefore(50)
	if qFired || rFired {
		t.Fatalf("RunBefore(50) executed the barrier event (calendar=%v reference=%v)", qFired, rFired)
	}
	if q.Now() != 50 || r.Now() != 50 {
		t.Fatalf("clock = (%v, %v), want 50", q.Now(), r.Now())
	}
	// Scheduling exactly at the barrier must now be legal — this is the
	// cross-shard injection pattern the parallel engine relies on.
	q.At(50, func() {})
	r.At(50, func() {})

	q.RunBefore(51)
	r.RunBefore(51)
	if !qFired || !rFired {
		t.Fatalf("event at the old barrier did not fire (calendar=%v reference=%v)", qFired, rFired)
	}
	if q.Pending() != r.Pending() {
		t.Fatalf("Pending diverged: calendar=%d reference=%d", q.Pending(), r.Pending())
	}
}

// TestRunBeforeHorizonEdgeScheduledInWindow pins the horizon edge the hybrid
// fast path leans on: an event firing inside a window schedules new work at
// exactly the window's horizon (an analytic advance landing on the barrier
// instant). RunBefore is horizon-exclusive, so that work must stay pending —
// executing it would run an event at the barrier before cross-shard
// injection for that instant happened — and must then fire in the next
// window, ordered against other barrier-instant events by (time, seq).
// Asserted on the calendar queue and the reference heap alike.
func TestRunBeforeHorizonEdgeScheduledInWindow(t *testing.T) {
	const barrier = simtime.Time(50)
	q, r := New(), newRef()
	var qLog, rLog []string
	// Fires mid-window and schedules exactly at the horizon.
	q.At(10, func() { q.At(barrier, func() { qLog = append(qLog, "inner") }) })
	r.At(10, func() { r.At(barrier, func() { rLog = append(rLog, "inner") }) })

	q.RunBefore(barrier)
	r.RunBefore(barrier)
	if len(qLog) != 0 || len(rLog) != 0 {
		t.Fatalf("horizon event fired inside its scheduling window (calendar=%v reference=%v)", qLog, rLog)
	}
	if q.Now() != barrier || r.Now() != barrier {
		t.Fatalf("clock = (%v, %v), want %v", q.Now(), r.Now(), barrier)
	}
	if q.Pending() != 1 || r.Pending() != 1 {
		t.Fatalf("Pending = (%d, %d), want 1", q.Pending(), r.Pending())
	}

	// Same-instant work scheduled after the barrier (the coordinator's
	// injection pattern) carries a later seq, so the in-window event wins.
	q.At(barrier, func() { qLog = append(qLog, "injected") })
	r.At(barrier, func() { rLog = append(rLog, "injected") })
	q.RunBefore(barrier + 1)
	r.RunBefore(barrier + 1)
	want := []string{"inner", "injected"}
	for i, lg := range [][]string{qLog, rLog} {
		name := []string{"calendar", "reference"}[i]
		if len(lg) != len(want) || lg[0] != want[0] || lg[1] != want[1] {
			t.Fatalf("%s fired %v, want %v", name, lg, want)
		}
	}
}

// TestRunBeforeHorizonEdgePooled is the pooled twin: CallAt at exactly the
// horizon from inside the window (the hybrid engine's completion events ride
// the zero-alloc path), plus a re-armed window tick landing on the horizon.
// Both must hold for the conservative-sync contract regardless of which
// scheduling path carried the event.
func TestRunBeforeHorizonEdgePooled(t *testing.T) {
	const barrier = simtime.Time(40)
	q, r := New(), newRef()
	var qFired, rFired int
	bump := func(p *int) func(any) { return func(any) { *p++ } }
	q.At(7, func() { q.CallAt(barrier, bump(&qFired), nil) })
	r.At(7, func() { r.CallAt(barrier, bump(&rFired), nil) })

	q.RunBefore(barrier)
	r.RunBefore(barrier)
	if qFired != 0 || rFired != 0 {
		t.Fatalf("pooled horizon event fired inside its window (calendar=%d reference=%d)", qFired, rFired)
	}
	q.RunBefore(barrier + 10)
	r.RunBefore(barrier + 10)
	if qFired != 1 || rFired != 1 {
		t.Fatalf("pooled horizon event did not fire next window (calendar=%d reference=%d)", qFired, rFired)
	}
	if q.Pending() != r.Pending() {
		t.Fatalf("Pending diverged: calendar=%d reference=%d", q.Pending(), r.Pending())
	}
}
