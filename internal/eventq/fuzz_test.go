package eventq

import (
	"container/heap"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// Fuzz harness: interprets the input as an operation stream driven through
// the calendar queue and the reference heap simultaneously, asserting they
// agree on clock, pending count, and complete firing order. The seed corpus
// encodes the parallel engine's hot patterns — barrier windows (RunBefore)
// interleaved with keyed injection at exactly the barrier instant and timer
// cancel/reset churn below it — so the lazy-deletion interactions that bit
// the sharded engine stay pinned under mutation.

// refCallAtSeq mirrors Queue.CallAtSeq on the reference heap. It lives in
// the test, not reference.go: the reference is a frozen copy of the
// pre-calendar scheduler, and keyed scheduling only needs the heap's
// ordering, which already compares (at, seq).
func refCallAtSeq(q *refQueue, t simtime.Time, seq uint64, fn func(any), arg any) {
	q.checkTime(t)
	heap.Push(&q.h, &refEvent{at: t, seq: seq, afn: fn, arg: arg, pooled: true})
}

// fuzzOps decodes data as (op, operand) byte pairs and replays them on both
// schedulers, returning the two firing logs after a full drain.
func fuzzOps(t *testing.T, data []byte) (qLog, rLog []uint64) {
	t.Helper()
	q, r := New(), newRef()
	var qTimers []*Event
	var rTimers []*refEvent
	var streamN [8]uint32
	nextID := uint64(1)

	logQ := func(id uint64) func() { return func() { qLog = append(qLog, id) } }
	logR := func(id uint64) func() { return func() { rLog = append(rLog, id) } }

	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		d := simtime.Duration(arg) * 37 // spans in-bucket, cross-bucket, overflow
		switch op % 8 {
		case 0: // cancellable timer
			id := nextID
			nextID++
			at := q.Now().Add(d)
			qTimers = append(qTimers, q.At(at, logQ(id)))
			rTimers = append(rTimers, r.At(at, logR(id)))
		case 1: // pooled one-shot
			id := nextID
			nextID++
			qfn, rfn := logQ(id), logR(id)
			q.CallAfter(d, func(any) { qfn() }, nil)
			r.CallAfter(d, func(any) { rfn() }, nil)
		case 2: // keyed injection — d=0 lands exactly on the current barrier
			stream := uint32(arg) & 7
			key := KeyedSeq(stream, streamN[stream])
			streamN[stream]++
			at := q.Now().Add(d)
			qfn, rfn := logQ(key), logR(key)
			q.CallAtSeq(at, key, func(any) { qfn() }, nil)
			refCallAtSeq(r, at, key, func(any) { rfn() }, nil)
		case 3: // cancel (fired, pending, or repeat — all legal)
			if len(qTimers) > 0 {
				k := int(arg) % len(qTimers)
				qTimers[k].Cancel()
				rTimers[k].Cancel()
			}
		case 4: // reset churn (pacing / RTO re-arm)
			if len(qTimers) > 0 {
				k := int(arg) % len(qTimers)
				id := nextID
				nextID++
				at := q.Now().Add(d)
				qTimers[k] = q.Reset(qTimers[k], at, logQ(id))
				rTimers[k] = r.Reset(rTimers[k], at, logR(id))
			}
		case 5: // barrier window — the conservative-sync primitive
			b := q.Now().Add(d)
			q.RunBefore(b)
			r.RunBefore(b)
		case 6: // inclusive bounded run
			dl := q.Now().Add(d)
			q.RunUntil(dl)
			r.RunUntil(dl)
		case 7: // single step
			if qok, rok := q.Step(), r.Step(); qok != rok {
				t.Fatalf("op %d: Step diverged: calendar=%v reference=%v", i/2, qok, rok)
			}
		}
		if q.Now() != r.Now() {
			t.Fatalf("op %d: clock diverged: calendar=%v reference=%v", i/2, q.Now(), r.Now())
		}
		if q.Pending() != r.Pending() {
			t.Fatalf("op %d: pending diverged: calendar=%d reference=%d", i/2, q.Pending(), r.Pending())
		}
	}
	q.Run()
	r.Run()
	return qLog, rLog
}

func FuzzDifferentialSchedule(f *testing.F) {
	// psim window loop: timers below the barrier, a cancel leaving a stale
	// head, then RunBefore to the barrier and keyed injection exactly at it
	// (the TestRunBeforeCancelledHead scenario, generalized).
	f.Add([]byte{
		0, 1, // timer at +37
		0, 4, // timer at +148
		3, 0, // cancel the first — stale head below the barrier
		5, 4, // RunBefore(+148): must stop at the live event
		2, 0, // keyed injection exactly at the barrier
		5, 8, // next window fires both
	})
	// Keyed merge order: many streams injected out of order at one instant.
	f.Add([]byte{
		2, 5, 2, 3, 2, 5, 2, 1, 2, 0, 2, 7, 2, 3,
		5, 9, 5, 9,
	})
	// RTO churn: arm, re-arm far (overflow), cancel, window runs.
	f.Add([]byte{
		0, 2, 4, 0, 4, 200, 4, 0, 3, 0, 0, 3, 5, 255, 6, 10, 7, 0,
	})
	// Dense same-instant mix: counter and keyed events at one time must
	// fire counter-first, keyed in key order.
	f.Add([]byte{
		0, 0, 2, 0, 0, 0, 2, 4, 1, 0, 5, 1,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		qLog, rLog := fuzzOps(t, data)
		if len(qLog) != len(rLog) {
			t.Fatalf("fired %d events, reference fired %d", len(qLog), len(rLog))
		}
		for i := range qLog {
			if qLog[i] != rLog[i] {
				t.Fatalf("firing %d diverged: calendar=%d reference=%d", i, qLog[i], rLog[i])
			}
		}
	})
}
