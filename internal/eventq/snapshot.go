package eventq

import (
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// Snapshot support.
//
// The queue itself serializes only its counters (clock, sequence counter,
// processed count) plus a pool-prewarm hint: event *contents* are closures
// and pre-bound method values, which cannot be written to bytes. Restoring
// a snapshot therefore rebuilds the world deterministically (construction
// assigns every plan event the same (at, seq) it had originally, because
// the sequence counter starts from the same zero), clears the rebuilt
// queue, restores the counters, and re-inserts pending work through three
// typed paths:
//
//   - RestoreEvent re-inserts a construction-time handle (the closure is
//     already bound to the rebuilt world) at the (at, seq) it carries.
//   - RestoreAt / RestoreCallAt materialize a component timer or in-flight
//     packet event at an explicitly recorded (at, seq) without consuming
//     the sequence counter, so the restored schedule is bit-identical to
//     the original.
//
// See DESIGN.md "Snapshot & fork" for the full restore protocol.

// SaveState writes the queue's counters and a free-pool prewarm hint.
// The schedule contents are saved by their owners (see package comment).
func (q *Queue) SaveState(w *codec.Writer) {
	w.Tag("eventq")
	w.I64(int64(q.now))
	w.U64(q.seq)
	w.U64(q.processed)
	w.Int(len(q.free) + q.pooledLive())
}

// RestoreState clears the queue and restores the counters saved by
// SaveState, prewarming the event free list so post-restore scheduling is
// allocation-free. Owners then re-insert still-pending work via
// RestoreEvent / RestoreAt / RestoreCallAt.
func (q *Queue) RestoreState(r *codec.Reader) {
	r.Expect("eventq")
	now := simtime.Time(r.I64())
	seq := r.U64()
	processed := r.U64()
	warm := r.Int()
	if r.Err() != nil {
		return
	}
	q.Clear()
	q.now = now
	q.seq = seq
	q.processed = processed
	if q.buckets != nil {
		q.baseDay = dayOf(now)
		q.curDay = q.baseDay
	}
	q.Prewarm(warm)
}

// pooledLive counts resident pooled (CallAt-path) events, live or
// cancelled. Restore re-materializes that many from the free list, so the
// prewarm target is free + pooledLive.
func (q *Queue) pooledLive() int {
	n := 0
	for i := range q.buckets {
		b := &q.buckets[i]
		for _, ent := range b.ents[b.head:] {
			if !ent.stale() && ent.ev.pooled {
				n++
			}
		}
	}
	for _, ent := range q.ov {
		if !ent.stale() && ent.ev.pooled {
			n++
		}
	}
	return n
}

// Clear removes every entry from the schedule. Pooled events are recycled
// into the free list; handle events are detached (no longer pending) but
// keep their (at, seq) and callback, so a subsequent RestoreEvent can
// re-insert them unchanged. The clock and counters are left untouched.
func (q *Queue) Clear() {
	for i := range q.buckets {
		b := &q.buckets[i]
		for j := b.head; j < len(b.ents); j++ {
			q.clearEntry(b.ents[j])
			b.ents[j] = entry{}
		}
		b.head = len(b.ents)
		if len(b.ents) > 0 {
			q.clearBucket(b)
		}
	}
	for i, ent := range q.ov {
		q.clearEntry(ent)
		q.ov[i] = entry{}
	}
	q.ov = q.ov[:0]
	q.ovStale = 0
	q.calQ = 0
	q.live = 0
}

// clearEntry detaches one resident entry's event. Stale entries (superseded
// by a Reset) are artifacts: their event's live entry is elsewhere.
func (q *Queue) clearEntry(ent entry) {
	if ent.stale() {
		return
	}
	ev := ent.ev
	ev.pending = false
	ev.loc = locNone
	if ev.pooled {
		ev.cancelled = false
		q.recycle(ev)
	}
}

// RestoreEvent re-inserts a detached handle event at the (at, seq) it
// already carries. The event must come from the deterministic rebuild of
// the same world (its callback is bound to live objects) and must not be
// pending or cancelled.
func (q *Queue) RestoreEvent(ev *Event) {
	if ev == nil || ev.pooled {
		panic("eventq: RestoreEvent needs a handle event")
	}
	if ev.pending {
		panic("eventq: RestoreEvent on a pending event")
	}
	if ev.at < q.now {
		panic("eventq: RestoreEvent in the past")
	}
	ev.cancelled = false
	q.schedule(ev)
}

// RestoreAt schedules fn at an explicitly recorded (at, seq) and returns
// the handle, without consuming the monotonic sequence counter. It is the
// restore-side counterpart of At/Reset for component timers whose original
// sequence numbers were recorded in a snapshot.
func (q *Queue) RestoreAt(t simtime.Time, seq uint64, fn func()) *Event {
	q.checkTime(t)
	e := &Event{at: t, seq: seq, fn: fn, q: q}
	q.schedule(e)
	return e
}

// RestoreCallAt schedules fn(arg) on a recycled event at an explicitly
// recorded (at, seq) without consuming the sequence counter — the
// restore-side counterpart of CallAt/CallAfter/CallAtSeq.
func (q *Queue) RestoreCallAt(t simtime.Time, seq uint64, fn func(any), arg any) {
	q.checkTime(t)
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{q: q}
	}
	e.at = t
	e.seq = seq
	e.afn = fn
	e.arg = arg
	e.pooled = true
	e.cancelled = false
	q.schedule(e)
}

// Prewarm grows the event free list to at least n events so subsequent
// CallAt-path scheduling allocates nothing.
func (q *Queue) Prewarm(n int) {
	for len(q.free) < n {
		q.free = append(q.free, &Event{q: q})
	}
}

// SaveTimer records one handle timer's scheduling slot: a pending flag
// and, when pending, its (at, seq).
func SaveTimer(w *codec.Writer, ev *Event) {
	if ev.Pending() {
		w.Bool(true)
		w.I64(int64(ev.at))
		w.U64(ev.seq)
	} else {
		w.Bool(false)
	}
}

// RestoreTimer re-arms a timer slot recorded by SaveTimer, returning the
// new handle (nil when the timer was not pending).
func (q *Queue) RestoreTimer(r *codec.Reader, fn func()) *Event {
	if !r.Bool() || r.Err() != nil {
		return nil
	}
	at := simtime.Time(r.I64())
	seq := r.U64()
	if r.Err() != nil {
		return nil
	}
	return q.RestoreAt(at, seq, fn)
}

// Seq returns the next monotonic sequence number the queue will assign.
// Snapshot differential tests use it to assert rebuild equivalence.
func (q *Queue) Seq() uint64 { return q.seq }

// EventSeq returns the sequence number of a handle event, and EventPending
// whether it is scheduled: owners record these to re-arm timers on restore.
func (e *Event) Seq() uint64 { return e.seq }

// Pending reports whether the event is scheduled and will fire.
func (e *Event) Pending() bool { return e != nil && e.pending }

// Owner returns the queue the event was created on. Restore code uses it
// to re-insert a detached handle into the correct shard's queue.
func (e *Event) Owner() *Queue { return e.q }
