package eventq

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// TestKeyedSeqOrdering pins the total order CallAtSeq adds to the schedule:
// at equal times, counter-sequenced events fire before keyed ones, and keyed
// events order by (stream, n) — independent of the order they were
// scheduled in. This is the property the sharded engine (internal/psim)
// relies on for bit-identical merges, so it is pinned directly.
func TestKeyedSeqOrdering(t *testing.T) {
	q := New()
	var got []int
	note := func(k int) func(any) { return func(any) { got = append(got, k) } }

	// Schedule keyed events first and out of key order; counter events last.
	q.CallAtSeq(100, KeyedSeq(7, 1), note(13), nil)
	q.CallAtSeq(100, KeyedSeq(2, 9), note(11), nil)
	q.CallAtSeq(100, KeyedSeq(2, 3), note(10), nil)
	q.CallAtSeq(100, KeyedSeq(7, 0), note(12), nil)
	q.At(100, func() { got = append(got, 1) })
	q.CallAt(100, note(2), nil)
	q.Run()

	want := []int{1, 2, 10, 11, 12, 13}
	if !intsEqual(got, want) {
		t.Fatalf("firing order = %v, want %v", got, want)
	}
	if q.Now() != 100 {
		t.Fatalf("clock = %v, want 100", q.Now())
	}
}

// TestKeyedSeqHistoryFree: two queues that receive the same keyed event set
// through different scheduling histories (different insertion order, one via
// a detour through other activity) fire them identically.
func TestKeyedSeqHistoryFree(t *testing.T) {
	type arm struct {
		at     simtime.Time
		stream uint32
		n      uint32
	}
	arms := []arm{
		{50, 3, 0}, {50, 1, 2}, {50, 1, 0}, {70, 2, 0}, {50, 2, 5}, {70, 1, 1},
	}
	run := func(order []int, churn bool) []uint64 {
		q := New()
		var got []uint64
		if churn {
			// Unrelated counter-sequenced history before the keyed arms.
			for i := 0; i < 40; i++ {
				q.CallAfter(simtime.Duration(i%7), func(any) {}, nil)
			}
		}
		for _, i := range order {
			a := arms[i]
			key := KeyedSeq(a.stream, a.n)
			q.CallAtSeq(a.at, key, func(any) { got = append(got, key) }, nil)
		}
		q.Run()
		return got
	}
	base := run([]int{0, 1, 2, 3, 4, 5}, false)
	perm := run([]int{5, 3, 1, 4, 0, 2}, true)
	if len(base) != len(arms) || len(perm) != len(arms) {
		t.Fatalf("fired %d/%d keyed events, want %d", len(base), len(perm), len(arms))
	}
	for i := range base {
		if base[i] != perm[i] {
			t.Fatalf("keyed order diverged at %d: %x vs %x", i, base[i], perm[i])
		}
	}
}

// TestKeyedSeqOverflow: keyed events beyond the calendar window live in the
// overflow heap and keep their key order through migration back into the
// window.
func TestKeyedSeqOverflow(t *testing.T) {
	q := New()
	var got []int
	far := simtime.Time((numBuckets + 5) << bucketShift)
	q.CallAtSeq(far, KeyedSeq(1, 1), func(any) { got = append(got, 2) }, nil)
	q.CallAtSeq(far, KeyedSeq(1, 0), func(any) { got = append(got, 1) }, nil)
	q.At(far, func() { got = append(got, 0) })
	q.Run()
	if !intsEqual(got, []int{0, 1, 2}) {
		t.Fatalf("overflow keyed order = %v, want [0 1 2]", got)
	}
}

// TestKeyedSeqRequiresBit: CallAtSeq refuses keys without the keyed bit —
// such a key could collide with counter-assigned sequence numbers and
// silently corrupt tie-breaking.
func TestKeyedSeqRequiresBit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CallAtSeq accepted a key without the keyed bit")
		}
	}()
	New().CallAtSeq(10, 42, func(any) {}, nil)
}

// TestKeyedSeqNoAlloc: the keyed path shares the CallAt free list, so
// steady-state keyed scheduling allocates nothing.
func TestKeyedSeqNoAlloc(t *testing.T) {
	q := New()
	fn := func(any) {}
	var n uint32
	// Warm the free list and the calendar arena.
	q.CallAtSeq(q.Now().Add(1), KeyedSeq(1, n), fn, nil)
	n++
	q.Run()
	allocs := testing.AllocsPerRun(200, func() {
		q.CallAtSeq(q.Now().Add(1), KeyedSeq(1, n), fn, nil)
		n++
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("keyed scheduling allocates %.1f per op, want 0", allocs)
	}
}
