package eventq

import (
	"math/rand"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// BenchmarkScheduleAndRun measures raw scheduler throughput: the event rate
// bounds every simulation in this repository (~2 events per packet-hop).
func BenchmarkScheduleAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.After(simtime.Duration(rng.Intn(1000)), func() {})
		if q.Pending() > 1024 {
			for q.Step() {
			}
		}
	}
	for q.Step() {
	}
}

// BenchmarkCallAfterAndRun is the same workload on the pooled typed-event
// fast path — the two-events-per-packet-hop pattern the simulator actually
// uses, with no closure allocation.
func BenchmarkCallAfterAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := New()
	fn := func(any) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.CallAfter(simtime.Duration(rng.Intn(1000)), fn, nil)
		if q.Pending() > 1024 {
			for q.Step() {
			}
		}
	}
	for q.Step() {
	}
}

// BenchmarkTimerChurn measures the cancel-heavy pattern transports use
// (every ACK re-arms the RTO).
func BenchmarkTimerChurn(b *testing.B) {
	q := New()
	var ev *Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ev != nil {
			ev.Cancel()
		}
		ev = q.After(1000, func() {})
		if i%256 == 0 {
			q.RunUntil(q.Now().Add(1))
		}
	}
	q.Run()
}

// BenchmarkResetChurn measures the in-place re-arm pattern (pacing): the
// same Event handle rescheduled forever, entries replaced inside the
// calendar window.
func BenchmarkResetChurn(b *testing.B) {
	q := New()
	fn := func() {}
	var ev *Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev = q.ResetAfter(ev, 1000, fn)
		if i%4 == 0 {
			q.Step()
		}
	}
	q.Run()
}

func TestStressMixedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := New()
	var fired int
	var cancelled int
	var pending []*Event
	for i := 0; i < 20000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			pending = append(pending, q.After(simtime.Duration(rng.Intn(5000)), func() { fired++ }))
		case 2:
			if len(pending) > 0 {
				k := rng.Intn(len(pending))
				if !pending[k].Cancelled() {
					pending[k].Cancel()
					cancelled++
				}
				pending = append(pending[:k], pending[k+1:]...)
			}
		}
		if i%1000 == 999 {
			q.RunUntil(q.Now().Add(500))
		}
	}
	q.Run()
	// Some cancels target already-fired events, so we can only bound below.
	if fired == 0 || cancelled == 0 {
		t.Fatalf("stress did not exercise both paths: fired=%d cancelled=%d", fired, cancelled)
	}
	if q.Len() != 0 || q.Pending() != 0 {
		t.Fatalf("Len=%d Pending=%d after Run, want 0/0", q.Len(), q.Pending())
	}
}
