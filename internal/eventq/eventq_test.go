package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/accnet/acc/internal/simtime"
)

func TestOrdering(t *testing.T) {
	q := New()
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("clock = %v, want 30", q.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(100, func() { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	q := New()
	ran := false
	e := q.At(10, func() { ran = true })
	e.Cancel()
	q.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double cancel and nil cancel are safe.
	e.Cancel()
	var nilEv *Event
	nilEv.Cancel()
}

func TestAfterClampsNegative(t *testing.T) {
	q := New()
	q.At(5, func() {})
	q.Step()
	ran := false
	q.After(-100, func() { ran = true })
	q.Step()
	if !ran || q.Now() != 5 {
		t.Fatalf("negative After: ran=%v now=%v", ran, q.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	q := New()
	q.At(10, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	q.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	q := New()
	var got []simtime.Time
	for _, at := range []simtime.Time{5, 15, 25} {
		at := at
		q.At(at, func() { got = append(got, at) })
	}
	q.RunUntil(20)
	if len(got) != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", len(got))
	}
	if q.Now() != 20 {
		t.Fatalf("clock = %v, want 20 after RunUntil", q.Now())
	}
	q.RunUntil(30)
	if len(got) != 3 {
		t.Fatal("remaining event did not run")
	}
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled from within events must be honored within RunUntil's
	// horizon.
	q := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		q.After(10, tick)
	}
	q.At(0, tick)
	q.RunUntil(95)
	if count != 10 { // t=0,10,...,90
		t.Fatalf("ticks = %d, want 10", count)
	}
}

func TestProcessedCount(t *testing.T) {
	q := New()
	for i := 0; i < 5; i++ {
		q.At(simtime.Time(i), func() {})
	}
	e := q.At(100, func() {})
	e.Cancel()
	q.Run()
	if q.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5 (cancelled events don't count)", q.Processed())
	}
}

// TestRandomOrderProperty: regardless of insertion order, events fire in
// nondecreasing time order.
func TestRandomOrderProperty(t *testing.T) {
	f := func(times []uint16, seed int64) bool {
		if len(times) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(times), func(i, j int) { times[i], times[j] = times[j], times[i] })
		q := New()
		var fired []simtime.Time
		for _, at := range times {
			at := simtime.Time(at)
			q.At(at, func() { fired = append(fired, at) })
		}
		q.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
