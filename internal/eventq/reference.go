// Reference scheduler: the original container/heap implementation, kept as
// an executable specification of the queue's semantics. The calendar-queue
// rewrite (eventq.go) must be observationally equivalent — identical firing
// order, identical clock behavior, identical lazy-deletion quirks — and the
// differential tests prove it by driving both implementations through the
// same randomized workloads. This code is intentionally a frozen copy of the
// pre-calendar Queue; do not "improve" it, or the proof stops proving
// anything.
package eventq

import (
	"container/heap"

	"github.com/accnet/acc/internal/simtime"
)

// refEvent is the reference scheduler's event handle.
type refEvent struct {
	at  simtime.Time
	seq uint64

	fn  func()
	afn func(any)
	arg any

	cancelled bool
	pooled    bool
	index     int // heap index, -1 once popped
}

// At returns the virtual time the event fires at.
func (e *refEvent) At() simtime.Time { return e.at }

// Cancel marks the event so its callback will not run.
func (e *refEvent) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil
		e.afn = nil
		e.arg = nil
	}
}

// Cancelled reports whether the event was cancelled before firing.
func (e *refEvent) Cancelled() bool { return e.cancelled }

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// refQueue is the reference binary-heap scheduler.
type refQueue struct {
	h         refHeap
	seq       uint64
	now       simtime.Time
	processed uint64
	free      []*refEvent
}

func newRef() *refQueue { return &refQueue{} }

func (q *refQueue) Now() simtime.Time { return q.now }
func (q *refQueue) Len() int          { return len(q.h) }
func (q *refQueue) Processed() uint64 { return q.processed }

// Pending counts live events by scanning the heap; the reference
// implementation keeps no counter, which makes this an independent check of
// Queue.Pending in the differential tests.
func (q *refQueue) Pending() int {
	n := 0
	for _, e := range q.h {
		if !e.cancelled {
			n++
		}
	}
	return n
}

func (q *refQueue) checkTime(t simtime.Time) {
	if t < q.now {
		panic("eventq: scheduling event in the past")
	}
}

func (q *refQueue) At(t simtime.Time, fn func()) *refEvent {
	q.checkTime(t)
	e := &refEvent{at: t, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

func (q *refQueue) After(d simtime.Duration, fn func()) *refEvent {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), fn)
}

func (q *refQueue) CallAt(t simtime.Time, fn func(any), arg any) {
	q.checkTime(t)
	var e *refEvent
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &refEvent{}
	}
	e.at = t
	e.seq = q.seq
	e.afn = fn
	e.arg = arg
	e.pooled = true
	e.cancelled = false
	q.seq++
	heap.Push(&q.h, e)
}

func (q *refQueue) CallAfter(d simtime.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	q.CallAt(q.now.Add(d), fn, arg)
}

func (q *refQueue) Reset(ev *refEvent, t simtime.Time, fn func()) *refEvent {
	q.checkTime(t)
	if ev == nil || ev.pooled {
		return q.At(t, fn)
	}
	ev.at = t
	ev.seq = q.seq
	ev.fn = fn
	ev.cancelled = false
	q.seq++
	if ev.index >= 0 {
		heap.Fix(&q.h, ev.index)
	} else {
		heap.Push(&q.h, ev)
	}
	return ev
}

func (q *refQueue) ResetAfter(ev *refEvent, d simtime.Duration, fn func()) *refEvent {
	if d < 0 {
		d = 0
	}
	return q.Reset(ev, q.now.Add(d), fn)
}

func (q *refQueue) recycle(e *refEvent) {
	e.afn = nil
	e.arg = nil
	q.free = append(q.free, e)
}

func (q *refQueue) Step() bool {
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*refEvent)
		if e.cancelled {
			if e.pooled {
				q.recycle(e)
			}
			continue
		}
		q.now = e.at
		q.processed++
		if e.pooled {
			fn, arg := e.afn, e.arg
			q.recycle(e)
			fn(arg)
		} else {
			fn := e.fn
			e.fn = nil
			fn()
		}
		return true
	}
	return false
}

func (q *refQueue) RunUntil(deadline simtime.Time) {
	for len(q.h) > 0 {
		e := q.h[0]
		if e.at > deadline {
			break
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

func (q *refQueue) RunBefore(barrier simtime.Time) {
	for len(q.h) > 0 {
		e := q.h[0]
		if e.cancelled {
			// Reap the lazily-deleted head directly — Step would skip it
			// and run the next live event even past the barrier.
			heap.Pop(&q.h)
			if e.pooled {
				q.recycle(e)
			}
			continue
		}
		if e.at >= barrier {
			break
		}
		q.Step()
	}
	if q.now < barrier {
		q.now = barrier
	}
}

func (q *refQueue) Run() {
	for q.Step() {
	}
}
