package exp

import (
	"runtime"
	"strings"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		Title: "demo",
		Cols:  []string{"a", "bb"},
	}
	tbl.AddRow("x", 1.5)
	tbl.AddRow(2*simtime.Millisecond, "y")
	tbl.Notes = append(tbl.Notes, "a note")
	s := tbl.String()
	for _, want := range []string{"== demo ==", "a ", "bb", "1.5", "2ms", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "x,1.5\n") {
		t.Errorf("CSV rows wrong: %q", csv)
	}
}

func TestRegistryCoversPaper(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"table1", "resources",
		"ablation-history", "ablation-ddqn", "ablation-exchange",
		"ablation-busyidle", "ablation-period",
		"robust-linkfail", "robust-flap", "robust-telemetry",
	}
	have := map[string]bool{}
	for _, e := range List() {
		have[e[0]] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", DefaultOptions()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestNormalize(t *testing.T) {
	if normalize(4, 2) != 2 {
		t.Fatal("normalize wrong")
	}
	if normalize(4, 0) != 0 {
		t.Fatal("normalize by zero must be 0")
	}
}

func TestGbpsAndKB(t *testing.T) {
	if got := gbps(1250_000_000, simtime.Second); got < 9.99 || got > 10.01 {
		t.Fatalf("gbps = %v, want 10", got)
	}
	if gbps(100, 0) != 0 {
		t.Fatal("gbps zero duration")
	}
	if kb(2048) != 2 {
		t.Fatal("kb wrong")
	}
}

// TestCheapExperimentsProduceTables runs the fast deterministic experiments
// end to end.
func TestCheapExperimentsProduceTables(t *testing.T) {
	for _, id := range []string{"table1", "resources"} {
		tables, err := Run(id, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

// TestFig1SmallScale runs a miniature fig1 to exercise a full
// simulation-backed experiment in the unit-test suite.
func TestFig1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	tables, err := Run("fig1", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig1 produced %d tables, want 2", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != 6 {
			t.Fatalf("fig1 table %q has %d rows, want 6 threshold points", tbl.Title, len(tbl.Rows))
		}
	}
}

// renderTables flattens experiment output to one comparable string.
func renderTables(tables []*Table) string {
	var b strings.Builder
	for _, tbl := range tables {
		b.WriteString(tbl.String())
	}
	return b.String()
}

// TestDeterminismSameSeed is the determinism regression: the same
// experiment with the same seed must render byte-identical tables, the
// property the whole evaluation (and the faults subsystem) relies on.
func TestDeterminismSameSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	for _, id := range []string{"fig8", "robust-linkfail"} {
		run := func() string {
			tables, err := Run(id, o)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			return renderTables(tables)
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("%s: same-seed runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", id, a, b)
		}
	}
}

// TestDeterminismAcrossGOMAXPROCS pins the pooling invariant that the packet
// and event free lists are per-Network: robust-linkfail fans its policy runs
// out over forEachParallel, so if a pool were ever shared between those
// concurrent Networks, allocation order (and with it packet identity under
// reuse) would depend on worker interleaving. The rendered tables must be
// byte-identical whether the runs are serialized (GOMAXPROCS=1) or fully
// parallel.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	run := func() string {
		tables, err := Run("robust-linkfail", o)
		if err != nil {
			t.Fatal(err)
		}
		return renderTables(tables)
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(prev)
	parallel := run()
	if serial != parallel {
		t.Errorf("GOMAXPROCS=1 vs %d runs differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			prev, serial, parallel)
	}
}

// TestRobustExperimentsSmallScale exercises the robustness suite end to
// end: every robust-* experiment must produce a populated comparison table.
func TestRobustExperimentsSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	for _, id := range []string{"robust-linkfail", "robust-flap", "robust-telemetry"} {
		tables, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) != 1 || len(tables[0].Rows) < 2 {
			t.Fatalf("%s: want one table with >=2 policy rows, got %v", id, tables)
		}
		for _, row := range tables[0].Rows {
			if len(row) != len(tables[0].Cols) {
				t.Errorf("%s: row %v does not match columns %v", id, row, tables[0].Cols)
			}
		}
	}
}

// TestPoliciesConstructible sanity-checks the policy constructors.
func TestPoliciesConstructible(t *testing.T) {
	for _, p := range []Policy{secn0(), secn1(), secn2(25), vendor(), accPolicy()} {
		if p.Name == "" {
			t.Error("policy without name")
		}
		if p.Static != nil {
			if err := p.Static.Validate(); err != nil {
				t.Errorf("%s: %v", p.Name, err)
			}
		}
	}
}
