package exp

import (
	"fmt"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("ablation-history", "state history depth k in {1,3,5} (§3.3 Markov property)", runAblationHistory)
	register("ablation-ddqn", "Double DQN vs plain DQN target (§3.4)", runAblationDDQN)
	register("ablation-exchange", "global replay exchange on/off in the multi-agent system (§3.4)", runAblationExchange)
	register("ablation-busyidle", "busy/idle inference gating CPU savings (§4.2)", runAblationBusyIdle)
	register("ablation-period", "action period ΔT vs RTT (§3.3)", runAblationPeriod)
	register("ablation-hillclimb", "DRL agent vs greedy hill-climbing search over the same template", runAblationHillclimb)
	register("stress-failure", "stress test: spine link failure and recovery under load", runStressFailure)
	register("resources", "§6 resource-consumption estimate of the deployed agent", runResources)
}

// ablationScenario trains an agent online-from-scratch under a WebSearch
// load on the testbed Clos and reports the resulting FCT summary.
func ablationScenario(o Options, p Policy, dur simtime.Duration) stats.FCTSummary {
	net := newNet(o, o.Seed)
	fab := topo.TestbedClos(net, topo.DefaultConfig())
	stop := deploy(net, fab, p, o)
	var col stats.FCTCollector
	gen := workload.StartPoisson(net, workload.PoissonConfig{
		Hosts:  fab.Hosts,
		Sizes:  workload.WebSearch(),
		Load:   0.6,
		HostBW: 25 * simtime.Gbps,
		Start:  rdmaStarter(net, 25*simtime.Gbps, &col),
	})
	net.RunUntil(simtime.Time(dur))
	gen.Stop()
	net.RunUntil(simtime.Time(dur + dur/2))
	stop()
	return stats.Summarize(col.Records)
}

func runAblationHistory(o Options) []*Table {
	t := &Table{
		Title: "Ablation: state history depth k (normalized to k=3)",
		Cols:  []string{"k", "avg FCT", "p99 FCT"},
	}
	dur := o.dur(8 * simtime.Millisecond)
	var base stats.FCTSummary
	results := map[int]stats.FCTSummary{}
	for _, k := range []int{3, 1, 5} {
		p := Policy{Name: fmt.Sprintf("k=%d", k), ACC: true, HistoryK: k, FreshModel: true}
		s := ablationScenario(o, p, dur)
		results[k] = s
		if k == 3 {
			base = s
		}
	}
	for _, k := range []int{1, 3, 5} {
		s := results[k]
		t.AddRow(k, normalize(float64(s.Avg), float64(base.Avg)), normalize(float64(s.P99), float64(base.P99)))
	}
	t.Notes = append(t.Notes, "paper: k=3 suffices to summarize congestion without inflating the state space")
	return []*Table{t}
}

func runAblationDDQN(o Options) []*Table {
	t := &Table{
		Title: "Ablation: Double DQN vs plain DQN target (normalized to DDQN)",
		Cols:  []string{"variant", "avg FCT", "p99 FCT"},
	}
	dur := o.dur(8 * simtime.Millisecond)
	ddqn := ablationScenario(o, Policy{Name: "DDQN", ACC: true, FreshModel: true}, dur)
	dqn := ablationScenario(o, Policy{Name: "DQN", ACC: true, FreshModel: true, NoDoubleDQN: true}, dur)
	t.AddRow("DDQN (paper)", 1.0, 1.0)
	t.AddRow("DQN", normalize(float64(dqn.Avg), float64(ddqn.Avg)), normalize(float64(dqn.P99), float64(ddqn.P99)))
	t.Notes = append(t.Notes, "paper: DDQN reduces Q-value overestimation (§3.4)")
	return []*Table{t}
}

func runAblationExchange(o Options) []*Table {
	t := &Table{
		Title: "Ablation: global replay exchange (normalized to exchange on)",
		Cols:  []string{"variant", "avg FCT", "p99 FCT"},
	}
	dur := o.dur(8 * simtime.Millisecond)
	on := ablationScenario(o, Policy{Name: "exchange", ACC: true, FreshModel: true}, dur)
	off := ablationScenario(o, Policy{Name: "no-exchange", ACC: true, FreshModel: true, NoExchange: true}, dur)
	t.AddRow("exchange on (paper)", 1.0, 1.0)
	t.AddRow("exchange off", normalize(float64(off.Avg), float64(on.Avg)), normalize(float64(off.P99), float64(on.P99)))
	t.Notes = append(t.Notes, "paper: exchanging experiences across switches makes the learned model more stable and generalizable")
	return []*Table{t}
}

// runAblationBusyIdle measures the §4.2 optimization: inference invocations
// saved by gating idle queues, with the FCT cost (ideally none).
func runAblationBusyIdle(o Options) []*Table {
	t := &Table{
		Title: "Ablation: busy/idle inference gating (§4.2)",
		Cols:  []string{"variant", "inferences", "skipped", "saved", "avg FCT(norm)"},
	}
	dur := o.dur(8 * simtime.Millisecond)
	run := func(gate bool) (uint64, uint64, stats.FCTSummary) {
		net := newNet(o, o.Seed)
		fab := topo.TestbedClos(net, topo.DefaultConfig())
		scfg := acc.DefaultSystemConfig()
		scfg.Tuner.BusyIdle = gate
		sys := acc.NewSystem(net, fab.Switches(), PretrainedModel(o.OfflineEpisodes), scfg)
		sys.SetEpsilon(0.01)
		var col stats.FCTCollector
		gen := workload.StartPoisson(net, workload.PoissonConfig{
			Hosts:  fab.Hosts,
			Sizes:  workload.WebSearch(),
			Load:   0.6,
			HostBW: 25 * simtime.Gbps,
			Start:  rdmaStarter(net, 25*simtime.Gbps, &col),
		})
		net.RunUntil(simtime.Time(dur))
		gen.Stop()
		net.RunUntil(simtime.Time(dur + dur/2))
		sys.Stop()
		var inf, skip uint64
		for _, tn := range sys.Tuners {
			inf += tn.Inferences
			skip += tn.Skipped
		}
		return inf, skip, stats.Summarize(col.Records)
	}
	infOn, skipOn, fctOn := run(true)
	infOff, skipOff, fctOff := run(false)
	saved := float64(skipOn) / float64(infOn+skipOn)
	t.AddRow("gating on (paper)", infOn, skipOn, fmt.Sprintf("%.0f%%", saved*100), 1.0)
	t.AddRow("gating off", infOff, skipOff, "0%", normalize(float64(fctOff.Avg), float64(fctOn.Avg)))
	t.Notes = append(t.Notes, "paper: gating idle queues cut switch-CPU consumption ~10%")
	return []*Table{t}
}

func runAblationPeriod(o Options) []*Table {
	t := &Table{
		Title: "Ablation: action period ΔT (normalized to 100µs)",
		Cols:  []string{"ΔT", "avg FCT", "p99 FCT"},
	}
	dur := o.dur(8 * simtime.Millisecond)
	var base stats.FCTSummary
	for _, period := range []simtime.Duration{100 * simtime.Microsecond, 20 * simtime.Microsecond, 500 * simtime.Microsecond, 2 * simtime.Millisecond} {
		p := Policy{Name: period.String(), ACC: true, Period: period}
		s := ablationScenario(o, p, dur)
		if base.Count == 0 {
			base = s
			t.AddRow(period, 1.0, 1.0)
			continue
		}
		t.AddRow(period, normalize(float64(s.Avg), float64(base.Avg)), normalize(float64(s.P99), float64(base.P99)))
	}
	t.Notes = append(t.Notes,
		"paper: ΔT one order of magnitude above RTT avoids interfering with DCQCN's control loop; too-small ΔT fights the CC, too-large reacts slowly")
	return []*Table{t}
}

// runAblationHillclimb pits the DRL tuner against a greedy hill climber
// using the identical telemetry, template, and reward.
func runAblationHillclimb(o Options) []*Table {
	t := &Table{
		Title: "Ablation: DRL (ACC) vs hill-climbing search (normalized to ACC)",
		Cols:  []string{"tuner", "avg FCT", "p99 FCT"},
	}
	dur := o.dur(8 * simtime.Millisecond)
	accS := ablationScenario(o, accPolicy(), dur)

	// Hill climber runs on the same scenario.
	net := newNet(o, o.Seed)
	fab := topo.TestbedClos(net, topo.DefaultConfig())
	var climbers []*acc.HillClimber
	for _, sw := range fab.Switches() {
		climbers = append(climbers, acc.NewHillClimber(net, sw, acc.DefaultConfig(), 10))
	}
	var col stats.FCTCollector
	gen := workload.StartPoisson(net, workload.PoissonConfig{
		Hosts:  fab.Hosts,
		Sizes:  workload.WebSearch(),
		Load:   0.6,
		HostBW: 25 * simtime.Gbps,
		Start:  rdmaStarter(net, 25*simtime.Gbps, &col),
	})
	net.RunUntil(simtime.Time(dur))
	gen.Stop()
	net.RunUntil(simtime.Time(dur + dur/2))
	for _, c := range climbers {
		c.Stop()
	}
	hc := stats.Summarize(col.Records)

	t.AddRow("ACC (DRL)", 1.0, 1.0)
	t.AddRow("hill climber", normalize(float64(hc.Avg), float64(accS.Avg)), normalize(float64(hc.P99), float64(accS.P99)))
	t.Notes = append(t.Notes,
		"the climber probes one neighbour at a time per queue, so it adapts but cannot generalize across traffic patterns the way the DRL policy does")
	return []*Table{t}
}

// runStressFailure exercises the §2.2 "failure scenarios" stress test: a
// spine uplink dies mid-run and later recovers; ACC must keep the fabric
// stable while ECMP reconverges onto fewer paths.
func runStressFailure(o Options) []*Table {
	t := &Table{
		Title: "Stress: spine link failure at t=T/3, recovery at t=2T/3 (WebSearch 60%)",
		Cols:  []string{"policy", "avg FCT", "p99 FCT", "drops"},
	}
	dur := o.dur(9 * simtime.Millisecond)
	var base stats.FCTSummary
	for _, p := range []Policy{accPolicy(), secn1()} {
		net := newNet(o, o.Seed)
		fab := topo.LeafSpine(net, 4, 6, 2, topo.DefaultConfig())
		stop := deploy(net, fab, p, o)
		var col stats.FCTCollector
		gen := workload.StartPoisson(net, workload.PoissonConfig{
			Hosts:  fab.Hosts,
			Sizes:  workload.WebSearch(),
			Load:   0.6,
			HostBW: 25 * simtime.Gbps,
			Start:  rdmaStarter(net, 25*simtime.Gbps, &col),
		})
		// Leaf 0's first uplink (port index 6 after the 6 host ports).
		failed := fab.Leaves[0].Ports[6]
		net.Q.After(dur/3, func() { failed.SetDown(true) })
		net.Q.After(2*dur/3, func() { failed.SetDown(false) })
		net.RunUntil(simtime.Time(dur))
		gen.Stop()
		net.RunUntil(simtime.Time(dur + dur/2))
		stop()
		s := stats.Summarize(col.Records)
		var drops uint64
		for _, sw := range fab.Switches() {
			drops += sw.DropsTotal
		}
		if base.Count == 0 {
			base = s
			t.AddRow(p.Name, 1.0, 1.0, drops)
			continue
		}
		t.AddRow(p.Name, normalize(float64(s.Avg), float64(base.Avg)), normalize(float64(s.P99), float64(base.P99)), drops)
	}
	return []*Table{t}
}

// runResources reproduces the §6 resource-consumption estimate for the
// deployed network.
func runResources(o Options) []*Table {
	cfg := acc.DefaultConfig()
	m := rl.NewMLP([]int{cfg.StateDim(), 20, 40, 40, len(cfg.Template)}, netsim.New(1).Rng)
	const (
		ports    = 48
		queues   = 1      // RDMA priority queues tuned per port
		sampleHz = 2000.0 // 500µs sampling
	)
	flopsPerPort := float64(m.ForwardFlops()) * sampleHz
	memBytes := m.NumParams() * 8

	t := &Table{
		Title: "§6 resource consumption of the per-switch agent",
		Cols:  []string{"resource", "value", "paper reports"},
	}
	t.AddRow("NN architecture", fmt.Sprint(m.Sizes), "{20,40,40,20} 4-layer")
	t.AddRow("parameters", m.NumParams(), "~30KB model memory")
	t.AddRow("model memory", fmt.Sprintf("%.1fKB (float64)", float64(memBytes)/1024), "30KB")
	t.AddRow("inference FLOPs/port/s", fmt.Sprintf("%.1fM", flopsPerPort/1e6), "14M Flops/port")
	t.AddRow("inference FLOPs/switch/s", fmt.Sprintf("%.2fG", flopsPerPort*ports*queues/1e9), "~1G Flops")
	t.AddRow("telemetry bandwidth/switch", fmt.Sprintf("%.1fMB/s", float64(ports*queues)*sampleHz*(4*4+46)/1e6), "2MB/s on PCIe")
	return []*Table{t}
}
