package exp

import (
	"bytes"
	"testing"

	"github.com/accnet/acc/internal/obs"
)

// TestObsFig8Smoke runs a miniature fig8 with observability attached and
// checks the full artifact chain: the manifest is finished and carries
// engine totals, the trace holds at least one record of every hooked event
// type, the JSONL dump validates line by line, and the metrics snapshot is
// accepted by a scrape-format parser.
func TestObsFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	o.Obs = obs.NewRun(1 << 12)
	tables, err := Run("fig8", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("fig8 produced no tables")
	}

	m := o.Obs.Manifest()
	if !m.Finished || m.Experiment != "fig8" || m.Seed != o.Seed || m.Scale != 0.25 {
		t.Fatalf("manifest header wrong: %+v", m)
	}
	if m.Networks == 0 || m.EventsProcessed == 0 || m.PacketsAlloced == 0 {
		t.Fatalf("engine totals empty: networks=%d events=%d packets=%d",
			m.Networks, m.EventsProcessed, m.PacketsAlloced)
	}
	if m.TraceEmitted == 0 {
		t.Fatal("no trace records emitted")
	}
	// Every hooked event class fires in fig8's incast mix: WRED drops and
	// marks, PFC pause/resume under the burst, DCQCN CNPs and rate cuts, TCP
	// RTOs from the background flows, ACC agent steps and their template
	// actuations. (link_state needs fault injection; see the robust test.)
	for _, kind := range []string{
		"drop", "ecn_mark", "pfc_pause", "pfc_resume", "wred_update",
		"cnp", "rate_cut", "tcp_rto", "agent_step",
	} {
		if m.TraceByKind[kind] == 0 {
			t.Errorf("no %q records in fig8 trace (kinds: %v)", kind, m.TraceByKind)
		}
	}

	// Manifest round-trips through JSON.
	var buf bytes.Buffer
	if err := m.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if m2, err := obs.DecodeManifest(&buf); err != nil || m2.TraceEmitted != m.TraceEmitted {
		t.Fatalf("manifest round-trip: err=%v m2=%+v", err, m2)
	}

	// The JSONL dump is non-empty and every line parses.
	buf.Reset()
	if err := o.Obs.Tracer.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateTraceJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace JSONL invalid: %v", err)
	}
	if n == 0 || n != m.TraceResident {
		t.Fatalf("trace dump has %d lines, want resident count %d", n, m.TraceResident)
	}

	// The metrics snapshot passes a scrape-format parser and carries the
	// trace counters.
	buf.Reset()
	if err := obs.WritePrometheus(&buf, o.Obs.Tracer, o.Obs); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("metrics snapshot rejected: %v", err)
	}
	if samples[`accsim_trace_records_total{kind="ecn_mark"}`] == 0 {
		t.Fatalf("metrics missing ecn_mark counter: %v", samples)
	}
	if samples[`accsim_run_finished`] != 1 {
		t.Fatal("metrics do not report a finished run")
	}
}

// TestObsRobustLinkfailDropReasonSplit pins the per-reason drop split in a
// fault run: the cable pull must show up as link_blackhole (in-flight loss
// at the port) and route_blackhole (ECMP set exhausted at the switch)
// drops, with the reasons exactly partitioning the drop record count.
func TestObsRobustLinkfailDropReasonSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	o.Obs = obs.NewRun(0)
	if _, err := Run("robust-linkfail", o); err != nil {
		t.Fatal(err)
	}
	m := o.Obs.Manifest()
	if m.DropsByReason["link_blackhole"] == 0 {
		t.Errorf("no link_blackhole drops traced in a link-failure run: %v", m.DropsByReason)
	}
	if m.DropsByReason["route_blackhole"] == 0 {
		t.Errorf("no route_blackhole drops traced in a link-failure run: %v", m.DropsByReason)
	}
	var sum uint64
	for _, n := range m.DropsByReason {
		sum += n
	}
	if sum != m.TraceByKind["drop"] {
		t.Errorf("drop reasons sum to %d, want every drop record attributed (%d)",
			sum, m.TraceByKind["drop"])
	}
	if m.TraceByKind["link_state"] == 0 {
		t.Error("no link_state records from the injected failures")
	}
}
