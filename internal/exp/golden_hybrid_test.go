package exp

import (
	"strconv"
	"testing"

	"github.com/accnet/acc/internal/obs"
)

// fig8Shares runs fig8 with the given options and returns the throughput
// ratio table (shares in [0,1]) plus the manifest.
func fig8Shares(t *testing.T, o Options) (*Table, obs.Manifest) {
	t.Helper()
	run := obs.NewRun(0)
	o.Obs = run
	tables, err := Run("fig8", o)
	if err != nil {
		t.Fatal(err)
	}
	return tables[0], run.Manifest()
}

// TestHybridFig8Tolerance is the user-facing equivalence contract of the
// hybrid fast path: fig8 under -fidelity hybrid must reproduce the packet
// engine's class shares within one percentage point. The sustained incast
// demotes every shared link almost immediately, so virtually the whole run
// executes at packet fidelity — the tolerance absorbs the different event
// interleaving at flow-start instants, not any modeling error.
func TestHybridFig8Tolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	pkt, _ := fig8Shares(t, o)

	o.Fidelity = "hybrid"
	hyb, man := fig8Shares(t, o)

	if len(hyb.Rows) != len(pkt.Rows) {
		t.Fatalf("row count diverged: hybrid %d, packet %d", len(hyb.Rows), len(pkt.Rows))
	}
	const tol = 0.01 // one percentage point of link share
	for i, pr := range pkt.Rows {
		hr := hyb.Rows[i]
		if pr[0] != hr[0] || pr[1] != hr[1] {
			t.Fatalf("row %d keys diverged: %v vs %v", i, pr[:2], hr[:2])
		}
		for c := 2; c < 4; c++ {
			pv, err1 := strconv.ParseFloat(pr[c], 64)
			hv, err2 := strconv.ParseFloat(hr[c], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("row %d col %d not numeric: %q %q", i, c, pr[c], hr[c])
			}
			if d := hv - pv; d > tol || d < -tol {
				t.Errorf("%s/%s %s: hybrid share %.4f vs packet %.4f (|Δ| > %.2f)",
					pr[0], pr[1], pkt.Cols[c], hv, pv, tol)
			}
		}
	}

	if man.Fidelity == nil {
		t.Fatal("hybrid run did not report a fidelity summary in the manifest")
	}
	f := man.Fidelity
	if f.FlowsStarted == 0 || f.PacketFlows == 0 || f.Demotions == 0 {
		t.Fatalf("implausible fidelity summary for a congested run: %+v", f)
	}
	if man.Config["fidelity"] != "hybrid" {
		t.Fatalf("manifest config missing fidelity knob: %v", man.Config)
	}
}

// TestHybridShardedIdentity proves fidelity transitions are shard-safe at
// the experiment level: fig8 under -fidelity hybrid renders byte-identical
// tables whether events run free or in conservative barrier windows
// (Options.Shards > 1), demotions landing inside windows included.
func TestHybridShardedIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	o.Fidelity = "hybrid"
	seq, err := Run("fig8", o)
	if err != nil {
		t.Fatal(err)
	}
	o.Shards = 4
	win, err := Run("fig8", o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderTables(win), renderTables(seq); got != want {
		t.Errorf("hybrid -shards 4 diverged from the sequential hybrid run:\n--- windowed ---\n%s\n--- sequential ---\n%s", got, want)
	}
}
