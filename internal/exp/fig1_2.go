package exp

import (
	"fmt"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("fig1", "optimal static ECN threshold differs per workload (throughput & queue vs K)", runFig1)
	register("fig2", "static settings rank differently per scenario (normalized FCT of SECN0/1/2)", runFig2)
}

// continuousIncast keeps an n:1 incast alive: every sender maintains `flows`
// concurrent flows of `size` bytes, restarting each with a small jitter.
func continuousIncast(net *netsim.Network, senders []*netsim.Host, recv *netsim.Host, flows int, size int64, start func(src, dst *netsim.Host, sz int64, onDone func())) {
	for _, s := range senders {
		s := s
		for i := 0; i < flows; i++ {
			var loop func()
			loop = func() {
				start(s, recv, size, func() {
					net.Q.After(simtime.Duration(net.Rng.Int63n(int64(100*simtime.Microsecond))), loop)
				})
			}
			loop()
		}
	}
}

// runFig1 reproduces Figure 1: sweep a single marking threshold K under
// (a) 8:1 incast with 32 flows/server and (b) 15:1 incast with 8
// flows/server, reporting receiver throughput and switch queue depth.
func runFig1(o Options) []*Table {
	type kase struct {
		name    string
		senders int
		flows   int
	}
	cases := []kase{
		{"Incast(8:1), 32 flows/server", 8, 32},
		{"Incast(15:1), 8 flows/server", 15, 8},
	}
	ks := []int{50 * simtime.KB, 100 * simtime.KB, 200 * simtime.KB, 500 * simtime.KB, simtime.MB, 2 * simtime.MB}

	var tables []*Table
	for _, c := range cases {
		t := &Table{
			Title: "Figure 1: " + c.name,
			Cols:  []string{"K", "throughput(Gbps)", "avg queue(KB)"},
		}
		bestK, bestScore := 0, -1.0
		for _, k := range ks {
			net := newNet(o, o.Seed)
			fab := topo.Star(net, c.senders+1, topo.DefaultConfig())
			sw := fab.Leaves[0]
			sw.SetRED(red.Config{Kmin: k, Kmax: k, Pmax: 1})
			recv := fab.Hosts[c.senders]
			continuousIncast(net, fab.Hosts[:c.senders], recv, c.flows, simtime.MB, rdmaStarter(net, 25*simtime.Gbps, nil))

			warm := o.dur(2 * simtime.Millisecond)
			meas := o.dur(8 * simtime.Millisecond)
			hot := sw.Ports[c.senders].Queues[0]
			net.RunUntil(simtime.Time(warm))
			tx0, in0 := hot.TxBytes, hot.ByteTimeIntegral()
			net.RunUntil(simtime.Time(warm + meas))
			tput := gbps(hot.TxBytes-tx0, meas)
			avgQ := (hot.ByteTimeIntegral() - in0) / meas.Seconds()
			t.AddRow(fmt.Sprintf("%dKB", k/1024), tput, kb(avgQ))
			// Optimality per the paper's framing: high throughput with a
			// small queue (penalize queueing delay).
			score := tput - 2*avgQ/1e6
			if score > bestScore {
				bestScore, bestK = score, k
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf("best throughput/queue tradeoff at K=%dKB", bestK/1024))
		tables = append(tables, t)
	}
	return tables
}

// runFig2 reproduces Figure 2: average FCT of the three published static
// settings under a DataMining scenario and a WebSearch scenario, normalized
// to SECN0 (the DCTCP setting).
func runFig2(o Options) []*Table {
	scenarios := []struct {
		name  string
		sizes workload.CDF
	}{
		{"Scenario-1 (DataMining)", workload.DataMining()},
		{"Scenario-2 (WebSearch)", workload.WebSearch()},
	}
	policies := []Policy{secn0(), secn1(), secn2(25)}

	t := &Table{
		Title: "Figure 2: FCT under different static ECN settings (normalized to SECN0)",
		Cols:  []string{"scenario", "SECN0", "SECN1", "SECN2"},
	}
	for _, sc := range scenarios {
		avgs := make([]float64, len(policies))
		for pi, p := range policies {
			net := newNet(o, o.Seed)
			fab := topo.TestbedClos(net, topo.DefaultConfig())
			stop := deploy(net, fab, p, o)
			var col stats.FCTCollector
			gen := workload.StartPoisson(net, workload.PoissonConfig{
				Hosts:  fab.Hosts,
				Sizes:  sc.sizes,
				Load:   0.5,
				HostBW: 25 * simtime.Gbps,
				Start:  rdmaStarter(net, 25*simtime.Gbps, &col),
			})
			net.RunUntil(simtime.Time(o.dur(10 * simtime.Millisecond)))
			gen.Stop()
			stop()
			avgs[pi] = float64(stats.Summarize(col.Records).Avg)
		}
		t.AddRow(sc.name, 1.0, normalize(avgs[1], avgs[0]), normalize(avgs[2], avgs[0]))
	}
	t.Notes = append(t.Notes,
		"paper: SECN2 wins Scenario-1, SECN1 wins Scenario-2 — no static setting wins both")
	return []*Table{t}
}
