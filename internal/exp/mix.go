package exp

// mix-* experiments: the production-scale workload engine driving the
// parallel/hybrid simulation engines.
//
//	mix-spec       — expand a multi-client workload spec (or replay a trace)
//	                 and report per-SLO-class FCT tails + Jain fairness.
//	mix-replay     — run a trace, re-record it as executed, replay the
//	                 recording on a fresh engine, and assert bit-identity.
//	mix-collective — AI-fabric collectives (tree allreduce, MoE all-to-all,
//	                 pipeline waves) composed with background spec traffic
//	                 on a sequential fabric, live-recorded to a trace.
//
// All three honor -record-trace/-replay-trace; mix-spec and mix-replay run
// on the sharded engine (-shards) at either fidelity (-fidelity). Result
// tables carry FNV-64a digests of the full bit-identity surface (per-flow
// ends, per-switch marks/drops, loss aggregates, goodput series, event
// totals), so a CSV diff between a run and its replay IS the determinism
// check — CI's workload-smoke job does exactly that.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/psim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("mix-spec", "multi-client workload spec: per-SLO-class FCT tails + Jain fairness (workload engine)", runMixSpec)
	register("mix-replay", "record→replay determinism: run, re-record, replay, assert bit-identity", runMixReplay)
	register("mix-collective", "AI-fabric collectives (tree allreduce, MoE all-to-all, pipeline) over background traffic", runMixCollective)
}

const mixSamplePeriod = 20 * simtime.Microsecond

// mixResult is one engine run of a trace: the as-executed re-recording,
// per-class summaries, and a digest of the full bit-identity surface.
type mixResult struct {
	trace     *workload.Trace
	classes   []stats.ClassSummary
	jain      float64
	offered   int
	completed int
	processed uint64
	digest    uint64
}

// runMixTrace replays (or first-runs) a trace on the sharded engine at the
// requested fidelity, recording every flow's actual start via Plan.OnStart
// and emitting obs flow_start records.
func runMixTrace(o Options, tr *workload.Trace) *mixResult {
	if err := tr.Validate(); err != nil {
		panic(fmt.Sprintf("exp: mix trace: %v", err))
	}
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	tc := topo.DefaultConfig()
	e := psim.Build(psim.Config{
		NLeaf: tr.NLeaf, HostsPerLeaf: tr.HostsPerLeaf, NSpine: tr.NSpine,
		Shards: shards, Seed: tr.Seed, Topo: tc,
	})
	e.AttachObs(o.Obs)

	plan := psim.PlanFromTrace(tr, tc.HostBW)
	rec := workload.NewPlanRecorder(tr)
	var tracer *obs.Tracer
	if o.Obs != nil {
		tracer = o.Obs.Tracer
	}
	//acclint:ignore barriermut plan wiring before Apply: no shard window has started, so the registration cannot race the run
	plan.OnStart = func(i int, at simtime.Time) {
		// Runs on the shard owning the sender: the recorder slot write is
		// per-flow (race-free by disjointness), the tracer locks internally.
		rec.ObserveStart(i, at)
		f := &tr.Flows[i]
		tracer.FlowStart(at, e.Hosts[f.SrcLeaf][f.SrcHost].ID(), uint64(i+1), f.Bytes, f.Class)
	}

	smp := psim.NewSampler(e.HostPorts(), mixSamplePeriod)
	e.OnBarrier(smp.OnBarrier)

	var app *psim.Applied
	if o.Hybrid() {
		var heng *hybrid.Engine
		app, heng = e.ApplyHybrid(plan, hybrid.DefaultConfig())
		defer func() { o.Obs.AddFidelity(heng.Stats) }()
	} else {
		app = e.Apply(plan)
	}
	e.Run(tr.Horizon)

	marks, drops := e.SwitchTotals()
	snap := e.Snap()
	var recs []stats.FlowRecord
	completed := 0
	for i := range tr.Flows {
		end := app.End[i]
		if end == 0 {
			continue
		}
		completed++
		start, _ := rec.Observed(i)
		f := &tr.Flows[i]
		recs = append(recs, stats.FlowRecord{Size: f.Bytes, Start: start, End: end, Class: tr.Classes[f.Class].Name})
	}
	classes := stats.ByClass(recs)
	res := &mixResult{
		trace:     rec.Trace(),
		classes:   classes,
		jain:      stats.JainByClass(classes),
		offered:   len(tr.Flows),
		completed: completed,
		processed: e.Processed(),
	}

	// Digest the bit-identity surface: per-flow ends, per-switch counters,
	// loss aggregates, the goodput series, and the event total.
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) { binary.BigEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	for _, end := range app.End {
		w(uint64(end))
	}
	for i := range marks {
		w(marks[i])
		w(drops[i])
	}
	w(snap.Blackholed)
	w(snap.BufferDrops)
	w(snap.PFCPauses)
	for i := range smp.Times {
		w(uint64(smp.Times[i]))
		w(math.Float64bits(smp.Gbps[i]))
	}
	w(res.processed)
	res.digest = h.Sum64()
	return res
}

// traceDigest hashes a trace's canonical binary encoding.
func traceDigest(tr *workload.Trace) uint64 {
	var b bytes.Buffer
	if err := tr.EncodeBinary(&b); err != nil {
		panic(fmt.Sprintf("exp: trace digest: %v", err))
	}
	h := fnv.New64a()
	h.Write(b.Bytes())
	return h.Sum64()
}

// sloMap indexes class name → SLO label from the trace's class table.
func sloMap(tr *workload.Trace) map[string]string {
	m := make(map[string]string, len(tr.Classes))
	for _, c := range tr.Classes {
		m[c.Name] = c.SLO
	}
	return m
}

// mixClassTable renders per-class summaries plus an aggregate row carrying
// the Jain fairness index over class goodputs.
func mixClassTable(title string, classes []stats.ClassSummary, slo map[string]string, jain float64) *Table {
	t := &Table{Title: title, Cols: []string{"class", "slo", "flows", "bytes", "fct_p50", "fct_p99", "mean_gbps"}}
	var flows int
	var bytesTotal int64
	for _, c := range classes {
		t.AddRow(c.Class, slo[c.Class], c.Count, c.Bytes, c.P50, c.P99, c.MeanGbps)
		flows += c.Count
		bytesTotal += c.Bytes
	}
	t.AddRow("ALL(jain)", "", flows, bytesTotal, "", "", jain)
	return t
}

// mixSummaryTable renders run totals and the determinism digests. The
// digests live in table rows (not Notes) deliberately: Table.CSV emits only
// rows, and CI diffs the CSV of a run against its replay.
func mixSummaryTable(title string, res *mixResult) *Table {
	t := &Table{Title: title, Cols: []string{"metric", "value"}}
	t.AddRow("flows_offered", res.offered)
	t.AddRow("flows_completed", res.completed)
	t.AddRow("jain_fairness", res.jain)
	t.AddRow("events_processed", res.processed)
	t.AddRow("run_digest", fmt.Sprintf("%016x", res.digest))
	t.AddRow("trace_digest", fmt.Sprintf("%016x", traceDigest(res.trace)))
	return t
}

// setWorkloadManifest reports the per-class outcome into the obs manifest.
func setWorkloadManifest(o Options, res *mixResult, slo map[string]string, spec string) {
	if o.Obs == nil {
		return
	}
	wm := obs.WorkloadManifest{
		Spec: spec, Trace: o.RecordTrace, Replay: o.ReplayTrace,
		Flows: res.offered, Jain: res.jain,
	}
	for _, c := range res.classes {
		wm.Classes = append(wm.Classes, obs.ClassManifest{
			Name: c.Class, SLO: slo[c.Class], Flows: c.Count, Bytes: c.Bytes,
			FCTp50Ns: int64(c.P50), FCTp99Ns: int64(c.P99), MeanGbps: c.MeanGbps,
		})
	}
	o.Obs.SetWorkload(wm)
}

// mixSourceTrace resolves the run's input traffic: a replay file if given,
// else the (possibly file-loaded) spec expanded at the run seed. It returns
// the trace and the spec name ("" for replays).
func mixSourceTrace(o Options) (*workload.Trace, string) {
	if o.ReplayTrace != "" {
		tr, err := workload.ReadTraceFile(o.ReplayTrace)
		if err != nil {
			panic(fmt.Sprintf("exp: -replay-trace: %v", err))
		}
		return tr, ""
	}
	spec := workload.DefaultMixSpec()
	if o.WorkloadSpec != "" {
		s, err := workload.ReadSpecFile(o.WorkloadSpec)
		if err != nil {
			panic(fmt.Sprintf("exp: -workload-spec: %v", err))
		}
		spec = s
	}
	tr, err := spec.Generate(o.Seed)
	if err != nil {
		panic(fmt.Sprintf("exp: spec %q: %v", spec.Name, err))
	}
	return tr, spec.Name
}

func runMixSpec(o Options) []*Table {
	tr, specName := mixSourceTrace(o)
	res := runMixTrace(o, tr)
	if o.RecordTrace != "" {
		if err := res.trace.WriteFile(o.RecordTrace); err != nil {
			panic(fmt.Sprintf("exp: -record-trace: %v", err))
		}
	}
	slo := sloMap(tr)
	setWorkloadManifest(o, res, slo, specName)
	return []*Table{
		mixClassTable("mix-spec: per-class SLO summary", res.classes, slo, res.jain),
		mixSummaryTable("mix-spec: run summary", res),
	}
}

func runMixReplay(o Options) []*Table {
	tr, specName := mixSourceTrace(o)
	orig := runMixTrace(o, tr)
	replay := runMixTrace(o, orig.trace)
	if orig.digest != replay.digest {
		panic(fmt.Sprintf("exp: mix-replay divergence: original digest %016x, replay %016x", orig.digest, replay.digest))
	}
	if !orig.trace.Equal(replay.trace) {
		panic("exp: mix-replay divergence: re-recorded traces differ")
	}
	if o.RecordTrace != "" {
		if err := orig.trace.WriteFile(o.RecordTrace); err != nil {
			panic(fmt.Sprintf("exp: -record-trace: %v", err))
		}
	}
	slo := sloMap(tr)
	setWorkloadManifest(o, orig, slo, specName)
	t := &Table{Title: "mix-replay: record→replay bit-identity", Cols: []string{"metric", "original", "replay"}}
	t.AddRow("flows_offered", orig.offered, replay.offered)
	t.AddRow("flows_completed", orig.completed, replay.completed)
	t.AddRow("events_processed", orig.processed, replay.processed)
	t.AddRow("run_digest", fmt.Sprintf("%016x", orig.digest), fmt.Sprintf("%016x", replay.digest))
	t.AddRow("trace_digest", fmt.Sprintf("%016x", traceDigest(orig.trace)), fmt.Sprintf("%016x", traceDigest(replay.trace)))
	t.AddRow("identical", true, true)
	return []*Table{t}
}

func runMixCollective(o Options) []*Table {
	net := newNet(o, o.Seed)
	tc := topo.DefaultConfig()
	const nLeaf, hpl, nSpine = 4, 4, 3
	fab := topo.LeafSpine(net, nLeaf, hpl, nSpine, tc)
	horizon := simtime.Time(o.dur(800 * simtime.Microsecond))

	var tracer *obs.Tracer
	if o.Obs != nil {
		tracer = o.Obs.Tracer
	}
	loc := make(map[int][2]int, nLeaf*hpl)
	for l, hs := range fab.HostsAt {
		for i, h := range hs {
			loc[h.ID()] = [2]int{l, i}
		}
	}
	rec := workload.NewLiveRecorder("mix-collective", o.Seed, nLeaf, hpl, nSpine, horizon,
		func(id int) (int, int, bool) { c, ok := loc[id]; return c[0], c[1], ok })
	col := &stats.FCTCollector{}
	params := dcqcn.DefaultParams(tc.HostBW)

	// starter launches class-labeled DCQCN flows, live-recording each into
	// the trace recorder and the obs ring at its start instant.
	starter := func(class, slo string, classIdx int) workload.StartFlowFunc {
		return func(src, dst *netsim.Host, size int64, onDone func()) {
			now := net.Now()
			rec.RecordFlow(now, src.ID(), dst.ID(), size, class, slo, workload.TransportDCQCN)
			tracer.FlowStart(now, src.ID(), 0, size, classIdx)
			dcqcn.Start(net, src, dst, size, params, func(f *dcqcn.Flow) {
				col.AddFlow(f.Size, f.Start, f.End, class)
				if onDone != nil {
					onDone()
				}
			})
		}
	}

	// Tree all-reduce over the data-parallel half (leaves 0–1), MoE
	// all-to-all across leaves 2–3, a 4-stage pipeline diagonal (one stage
	// per leaf), and latency-class background load over every host.
	var treeNodes []*netsim.Host
	treeNodes = append(treeNodes, fab.HostsAt[0]...)
	treeNodes = append(treeNodes, fab.HostsAt[1]...)
	tree := workload.RunTreeAllReduce(net, workload.TreeAllReduceConfig{
		Nodes: treeNodes, Bytes: 64 * simtime.KB, ComputeTime: 5 * simtime.Microsecond,
		Start: starter("tree-allreduce", "bulk", 0),
	})
	var moeNodes []*netsim.Host
	moeNodes = append(moeNodes, fab.HostsAt[2]...)
	moeNodes = append(moeNodes, fab.HostsAt[3][0], fab.HostsAt[3][1])
	moe := workload.RunAllToAll(net, workload.AllToAllConfig{
		Nodes: moeNodes, Bytes: 96 * simtime.KB, ComputeTime: 5 * simtime.Microsecond,
		Start: starter("moe-alltoall", "throughput", 1),
	})
	stages := []*netsim.Host{fab.HostsAt[0][3], fab.HostsAt[1][3], fab.HostsAt[2][3], fab.HostsAt[3][3]}
	pipe := workload.RunPipeline(net, workload.PipelineConfig{
		Stages: stages, MicroBatches: 4, ActivationBytes: 32 * simtime.KB,
		ComputeTime: 10 * simtime.Microsecond,
		Start:       starter("pipeline", "bulk", 2),
	})
	bg := workload.StartPoisson(net, workload.PoissonConfig{
		Hosts: fab.Hosts, Sizes: workload.Uniform("bg", 1*simtime.KB, 16*simtime.KB),
		Load: 0.08, HostBW: tc.HostBW,
		Start: starter("background", "latency", 3),
	})

	// Generate for 3/4 of the horizon, then stop sources and drain.
	net.RunUntil(horizon - horizon/4)
	tree.Stop()
	moe.Stop()
	pipe.Stop()
	bg.Stop()
	net.RunUntil(horizon)

	if o.RecordTrace != "" {
		if err := rec.Trace().WriteFile(o.RecordTrace); err != nil {
			panic(fmt.Sprintf("exp: -record-trace: %v", err))
		}
	}

	classes := stats.ByClass(col.Records)
	jain := stats.JainByClass(classes)
	slo := map[string]string{"tree-allreduce": "bulk", "moe-alltoall": "throughput", "pipeline": "bulk", "background": "latency"}
	res := &mixResult{trace: rec.Trace(), classes: classes, jain: jain,
		offered: len(col.Records), completed: len(col.Records), processed: net.Q.Processed()}
	setWorkloadManifest(o, res, slo, "")

	ct := &Table{Title: "mix-collective: collective rates", Cols: []string{"collective", "rounds", "rounds_per_sec", "p50_round"}}
	row := func(name string, rounds int, rps float64, steps []simtime.Duration) {
		p50 := simtime.Duration(0)
		if len(steps) > 0 {
			fs := make([]float64, len(steps))
			for i, s := range steps {
				fs[i] = float64(s)
			}
			// steps arrive in completion order; Percentile wants sorted input
			sort.Float64s(fs)
			p50 = simtime.Duration(stats.Percentile(fs, 0.5))
		}
		ct.AddRow(name, rounds, rps, p50)
	}
	row("tree-allreduce", tree.Rounds, tree.RoundsPerSec(), tree.StepTimes)
	row("moe-alltoall", moe.Rounds, moe.RoundsPerSec(), moe.StepTimes)
	row("pipeline", pipe.Rounds, pipe.RoundsPerSec(), pipe.StepTimes)

	return []*Table{
		mixClassTable("mix-collective: per-class summary", classes, slo, jain),
		ct,
	}
}
