package exp

import (
	"fmt"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("fig9", "distributed storage IOPS per Table-1 workload and IO depth, ACC vs vendor SECN", runFig9)
	register("fig10", "distributed training speed (AlexNet, ResNet-50) + PFC/latency, ACC vs SECN1/2", runFig10)
	register("table1", "traffic models of the distributed storage system (input table)", runTable1)
}

// runTable1 prints the Table-1 storage models encoded in the workload
// package.
func runTable1(o Options) []*Table {
	t := &Table{
		Title: "Table 1: traffic loads in distributed storage system",
		Cols:  []string{"traffic pattern", "read-write ratio", "block size"},
	}
	for _, m := range workload.Table1() {
		t.AddRow(m.Name,
			fmtRatio(m.ReadRatio),
			fmtBlockRange(m.BlockMin, m.BlockMax))
	}
	return []*Table{t}
}

func fmtRatio(read float64) string {
	r := int(read*10 + 0.5)
	return fmt.Sprintf("%d:%d", r, 10-r)
}

func fmtBlockRange(lo, hi int64) string {
	f := func(b int64) string {
		switch {
		case b >= simtime.MB:
			return fmt.Sprintf("%dMB", b/simtime.MB)
		case b >= simtime.KB:
			return fmt.Sprintf("%dKB", b/simtime.KB)
		default:
			return fmt.Sprintf("%dB", b)
		}
	}
	if lo == hi {
		return f(lo)
	}
	return f(lo) + "-" + f(hi)
}

// runFig9 reproduces Figure 9: the §5.3.1 storage macro-benchmark —
// 18 compute + 6 storage nodes (3:1), closed-loop IO at increasing IO depth,
// comparing ACC against the vendor-suggested static setting
// (Kmin=30KB, Kmax=270KB, Pmax=10%).
func runFig9(o Options) []*Table {
	depths := []int{16, 64, 128}
	var tables []*Table
	for _, model := range workload.Table1() {
		t := &Table{
			Title: "Figure 9: " + model.Name + " IOPS (normalized to SECN at depth 16)",
			Cols:  []string{"IO depth", "SECN", "ACC", "ACC gain"},
		}
		var base float64
		for _, depth := range depths {
			depth := depth
			policies := []Policy{vendor(), accPolicy()}
			iops := make([]float64, len(policies))
			forEachParallel(len(policies), func(pi int) {
				net := newNet(o, o.Seed)
				fab := topo.TestbedClos(net, topo.DefaultConfig())
				stop := deploy(net, fab, policies[pi], o)
				cluster := workload.RunStorage(net, workload.StorageConfig{
					Compute: fab.Hosts[:18],
					Storage: fab.Hosts[18:],
					Model:   model,
					IODepth: depth,
					Start:   rdmaStarter(net, 25*simtime.Gbps, nil),
				})
				net.RunUntil(simtime.Time(o.dur(8 * simtime.Millisecond)))
				cluster.Stop()
				stop()
				iops[pi] = cluster.IOPS()
			})
			if base == 0 {
				base = iops[0]
			}
			t.AddRow(depth, normalize(iops[0], base), normalize(iops[1], base), normalize(iops[1], iops[0]))
		}
		t.Notes = append(t.Notes, "paper: ACC improves IOPS up to 30%, gap grows with IO depth")
		tables = append(tables, t)
	}
	return tables
}

// runFig10 reproduces Figure 10: the §5.3.2 GPU-training benchmark — 7
// workers + 1 parameter server training AlexNet and ResNet-50; training
// speed (images/sec) plus the PFC/latency companion panel.
func runFig10(o Options) []*Table {
	speed := &Table{
		Title: "Figure 10(a): training speed (normalized to SECN1)",
		Cols:  []string{"model", "SECN1", "SECN2", "ACC"},
	}
	panel := &Table{
		Title: "Figure 10(b): PFC pauses and queue delay with ResNet-50",
		Cols:  []string{"policy", "PFC pause events", "avg queue(KB)"},
	}
	for _, model := range []workload.TrainingModel{workload.AlexNet(), workload.ResNet50()} {
		speeds := make([]float64, 3)
		for pi, p := range []Policy{secn1(), secn2(25), accPolicy()} {
			net := newNet(o, o.Seed)
			fab := topo.Star(net, 8, topo.DefaultConfig())
			stop := deploy(net, fab, p, o)
			job := workload.RunTraining(net, workload.TrainingConfig{
				Workers:     fab.Hosts[:7],
				PS:          fab.Hosts[7],
				Model:       model,
				ComputeTime: 200 * simtime.Microsecond,
				Start:       rdmaStarter(net, 25*simtime.Gbps, nil),
				ScaleBytes:  100, // 2.4MB / 1MB per transfer after scaling
			})
			dur := o.dur(40 * simtime.Millisecond)
			net.RunUntil(simtime.Time(dur))
			job.Stop()
			stop()
			speeds[pi] = job.ImagesPerSec()

			if model.Name == "ResNet-50" {
				var pauses uint64
				var qsum, qn float64
				for _, h := range fab.Hosts {
					pauses += h.Port.PauseRxEvents
				}
				for _, port := range fab.Leaves[0].Ports {
					for _, q := range port.Queues {
						qsum += q.ByteTimeIntegral() / dur.Seconds()
						qn++
					}
				}
				panel.AddRow(p.Name, pauses, kb(qsum/qn))
			}
		}
		speed.AddRow(model.Name, 1.0, normalize(speeds[1], speeds[0]), normalize(speeds[2], speeds[0]))
	}
	speed.Notes = append(speed.Notes, "paper: ACC up to 7%/12% faster than SECN1/SECN2 on ResNet-50")
	return []*Table{speed, panel}
}
