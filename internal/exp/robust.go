package exp

import (
	"fmt"
	"sort"

	"github.com/accnet/acc/internal/faults"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

// The robustness suite answers the critique that learned ECN tuning is only
// evaluated under traffic dynamics (GraphCC, PET): it replays deterministic
// fault scenarios — hard link failures, random link flapping, and telemetry
// loss at the collector — and compares ACC against the best static setting
// on goodput, tail FCT, recovery time, and packets blackholed.
func init() {
	register("robust-linkfail", "robustness: leaf-spine link failure + brownout, ACC vs static ECN", runRobustLinkfail)
	register("robust-flap", "robustness: random link flapping (MTBF/MTTR), ACC vs static ECN", runRobustFlap)
	register("robust-telemetry", "robustness: stale/dropped ACC telemetry (switch-CPU overload)", runRobustTelemetry)
}

// robustRow is one policy's measurements from a fault scenario.
type robustRow struct {
	goodput   float64 // mean delivered Gbps while the workload ran
	p99Slow   float64 // p99 FCT slowdown vs ideal serialization
	recovery  simtime.Duration
	recovered bool
	window    faults.Snapshot // counter deltas over the fault window
	flapDowns int
	teleDrops uint64
	flows     int
}

// recoveryCell formats the recovery-time column.
func (r robustRow) recoveryCell() string {
	if !r.recovered {
		return "n/a"
	}
	return r.recovery.String()
}

// p99Slowdown computes the p99 of per-flow FCT divided by the flow's ideal
// serialization time at the host line rate — the standard slowdown metric,
// robust to the flow-size mix in a way raw FCT is not.
func p99Slowdown(recs []stats.FlowRecord, bw simtime.Rate) float64 {
	if len(recs) == 0 {
		return 0
	}
	slows := make([]float64, len(recs))
	for i, r := range recs {
		ideal := float64(r.Size) * 8 / float64(bw) // seconds
		if ideal <= 0 {
			continue
		}
		slows[i] = r.FCT().Seconds() / ideal
	}
	sort.Float64s(slows)
	return stats.Percentile(slows, 0.99)
}

// The robustness fabric: the stress-test leaf-spine pod.
const (
	robustLeaves       = 4
	robustSpines       = 2
	robustHostsPerLeaf = 6
	// leaf-spine links available to fault plans on this fabric
	robustFabricLinks = robustLeaves * robustSpines
)

func robustFabric(net *netsim.Network) *topo.Fabric {
	return topo.LeafSpine(net, robustLeaves, robustHostsPerLeaf, robustSpines, topo.DefaultConfig())
}

// runRobust drives one policy through a fault scenario on the stress
// fabric: build, deploy, bind the injector (before deployment draws from
// the RNG would diverge between policies — the injector is seeded right
// after the fabric so every policy sees the identical fault sequence),
// start traffic, inject, then measure the fault window and the recovery.
func runRobust(o Options, p Policy, plan faults.Plan, tel *faults.Telemetry, dur simtime.Duration) robustRow {
	net := newNet(o, o.Seed)
	fab := robustFabric(net)
	inj, err := faults.NewInjector(net, fab, plan)
	if err != nil {
		panic(fmt.Sprintf("exp: robust plan invalid: %v", err))
	}
	stop, sys := deployFull(net, fab, p, o)
	var tele []*faults.StaleDrop
	if tel != nil && sys != nil {
		tele = faults.ApplyTelemetry(net, sys.Tuners, *tel)
	}
	tracker := faults.Track(net, fab, dur/64)

	var col stats.FCTCollector
	hostBW := 25 * simtime.Gbps
	gen := workload.StartPoisson(net, workload.PoissonConfig{
		Hosts:  fab.Hosts,
		Sizes:  workload.WebSearch(),
		Load:   0.6,
		HostBW: hostBW,
		Start:  rdmaStarter(net, hostBW, &col),
	})

	before := faults.Snap(fab)
	inj.Start()
	net.RunUntil(simtime.Time(dur))
	gen.Stop()
	inj.Stop()
	// Drain: in-flight flows finish; flap repairs still land.
	net.RunUntil(simtime.Time(dur + dur/2))
	inj.Heal()
	tracker.Stop()
	stop()

	row := robustRow{
		goodput:   tracker.Goodput.Avg(),
		p99Slow:   p99Slowdown(col.Records, hostBW),
		window:    faults.Snap(fab).Sub(before),
		flapDowns: inj.FlapDowns,
		flows:     len(col.Records),
	}
	if inj.FirstFaultAt != 0 && inj.LastRepairAt != 0 {
		row.recovery, row.recovered = tracker.RecoveryTime(inj.FirstFaultAt, inj.LastRepairAt, 0.9, 3)
	}
	for _, f := range tele {
		row.teleDrops += f.Drops
	}
	return row
}

// robustPolicies is the comparison every robustness table reports: ACC
// against the testbed's best static setting.
func robustPolicies() []Policy { return []Policy{accPolicy(), secn1()} }

// runRobustLinkfail fails one leaf-spine uplink for the middle half of the
// run and (optionally, -fault-degrade) brownouts a second uplink over the
// same window, then reports how each policy rides through it.
func runRobustLinkfail(o Options) []*Table {
	dur := o.dur(9 * simtime.Millisecond)
	var plan faults.Plan
	plan.LinkDownUp(faults.LeafSpine, 0, dur/4, dur/2)
	degraded := "off"
	if f := o.Faults.Degrade; f > 0 && f < 1 {
		plan.Brownout(faults.LeafSpine, 1, f, dur/4, dur/2)
		degraded = fmt.Sprintf("%.0f%% of nominal", f*100)
	}
	t := &Table{
		Title: "Robustness: leaf-spine link down over [T/4,T/2] (WebSearch 60%)",
		Cols:  []string{"policy", "goodput Gbps", "p99 slowdown", "recovery", "blackholed", "PFC pauses", "flows"},
		Notes: []string{
			"recovery = time after repair until goodput sustains 90% of its pre-fault baseline",
			"brownout of a second uplink: " + degraded,
		},
	}
	policies := robustPolicies()
	rows := make([]robustRow, len(policies))
	forEachParallel(len(policies), func(i int) {
		rows[i] = runRobust(o, policies[i], plan, nil, dur)
	})
	for i, p := range policies {
		r := rows[i]
		t.AddRow(p.Name, r.goodput, r.p99Slow, r.recoveryCell(), r.window.Blackholed, r.window.PFCPauses, r.flows)
	}
	return []*Table{t}
}

// runRobustFlap runs a random flap process over the leaf-spine tier:
// -fault-links links alternate up/down with exponential MTBF/MTTR drawn
// from the seeded injector stream, so both policies face the identical
// failure trace.
func runRobustFlap(o Options) []*Table {
	dur := o.dur(9 * simtime.Millisecond)
	f := faults.Flap{
		Role:  faults.LeafSpine,
		Links: o.Faults.Links,
		MTBF:  o.Faults.MTBF,
		MTTR:  o.Faults.MTTR,
	}
	if f.Links <= 0 {
		f.Links = 2
	}
	var notes []string
	if f.Links > robustFabricLinks {
		notes = append(notes, fmt.Sprintf("-fault-links %d clamped to the fabric's %d leaf-spine links", f.Links, robustFabricLinks))
		f.Links = robustFabricLinks
	}
	if f.MTBF <= 0 {
		f.MTBF = dur / 4
	}
	if f.MTTR <= 0 {
		f.MTTR = dur / 16
	}
	plan := faults.Plan{Flaps: []faults.Flap{f}, Horizon: dur}
	t := &Table{
		Title: fmt.Sprintf("Robustness: %d leaf-spine links flapping (MTBF %v, MTTR %v)", f.Links, f.MTBF, f.MTTR),
		Cols:  []string{"policy", "goodput Gbps", "p99 slowdown", "flap downs", "blackholed", "PFC pauses", "flows"},
		Notes: notes,
	}
	policies := robustPolicies()
	rows := make([]robustRow, len(policies))
	forEachParallel(len(policies), func(i int) {
		rows[i] = runRobust(o, policies[i], plan, nil, dur)
	})
	for i, p := range policies {
		r := rows[i]
		t.AddRow(p.Name, r.goodput, r.p99Slow, r.flapDowns, r.window.Blackholed, r.window.PFCPauses, r.flows)
	}
	return []*Table{t}
}

// runRobustTelemetry starves the ACC collector path (§4.3 switch-CPU
// overload): every tuner's observations arrive -fault-stale ΔT slots late
// and each window is lost with probability -fault-drop. The links stay
// healthy — only ACC's view of them degrades — so the static rows double as
// the fault-free baseline and the table isolates what telemetry quality is
// worth.
func runRobustTelemetry(o Options) []*Table {
	dur := o.dur(9 * simtime.Millisecond)
	tel := faults.Telemetry{StaleSlots: o.Faults.Stale, DropProb: o.Faults.DropProb}
	if tel.DropProb > 1 {
		tel.DropProb = 1
	}
	if tel.StaleSlots <= 0 && tel.DropProb <= 0 {
		tel = faults.Telemetry{StaleSlots: 4, DropProb: 0.3}
	}
	t := &Table{
		Title: fmt.Sprintf("Robustness: ACC telemetry %d slots stale, %.0f%% windows lost (WebSearch 60%%)", tel.StaleSlots, tel.DropProb*100),
		Cols:  []string{"policy", "goodput Gbps", "p99 slowdown", "telemetry drops", "flows"},
	}
	policies := []Policy{accPolicy(), accPolicy(), secn1()}
	policies[0].Name = "ACC (faulted telemetry)"
	policies[1].Name = "ACC (clean)"
	tels := []*faults.Telemetry{&tel, nil, nil}
	rows := make([]robustRow, len(policies))
	forEachParallel(len(policies), func(i int) {
		rows[i] = runRobust(o, policies[i], faults.Plan{}, tels[i], dur)
	})
	for i, p := range policies {
		r := rows[i]
		t.AddRow(p.Name, r.goodput, r.p99Slow, r.teleDrops, r.flows)
	}
	return []*Table{t}
}
