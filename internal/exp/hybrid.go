package exp

import (
	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/tcp"
	"github.com/accnet/acc/internal/topo"
)

// hybridHarness wires one hybrid-fidelity engine (internal/hybrid) over an
// experiment's fabric and exposes drop-in replacements for the packet-level
// transport starters. Flow ids are pre-drawn from the Network's counter so
// a demoted flow carries exactly the id — and therefore the ECMP path —
// its packets would have had in a pure packet-level run.
type hybridHarness struct {
	Eng  *hybrid.Engine
	Mesh *hybrid.Mesh
	net  *netsim.Network
}

// newHybridHarness builds the engine over fab and starts its advance
// ticker. Call finish() after the run to fold mode accounting into the
// manifest.
func newHybridHarness(net *netsim.Network, fab *topo.Fabric) *hybridHarness {
	e := hybrid.New(hybrid.DefaultConfig(), net.Q, net.Tracer)
	m := hybrid.ForFabric(e, fab)
	e.StartTicker()
	return &hybridHarness{Eng: e, Mesh: m, net: net}
}

// finish stops the advance ticker and reports mode accounting to the run
// manifest.
func (h *hybridHarness) finish(run *obs.Run) {
	h.Eng.Stop()
	run.AddFidelity(h.Eng.Stats)
}

// rdma is the hybrid analogue of rdmaStarter: DCQCN flows fast-forward in
// closed form while their path is provably uncongested and demote to the
// real DCQCN state machine — same flow id, exact remaining bytes — the
// moment a trigger fires.
func (h *hybridHarness) rdma(bw simtime.Rate, col *stats.FCTCollector) func(src, dst *netsim.Host, size int64, onDone func()) {
	params := dcqcn.DefaultParams(bw)
	return func(src, dst *netsim.Host, size int64, onDone func()) {
		id := h.net.NextFlowID()
		done := func(f *hybrid.Flow, end simtime.Time) {
			if col != nil {
				col.AddFlow(size, f.Start, end, "rdma")
			}
			if onDone != nil {
				onDone()
			}
		}
		h.Eng.StartFlow(h.Mesh.Path(id, src, dst),
			hybrid.FlowOpts{ID: uint64(id), Size: size, Prio: params.Prio, Eligible: true},
			func(f *hybrid.Flow, remaining int64) {
				dcqcn.StartSender(h.net, id, src, dst.ID(), remaining, params)
				dcqcn.StartReceiver(id, src.ID(), dst, remaining, params, func(r *dcqcn.Receiver) {
					h.Eng.PacketDone(f)
					done(f, r.End)
				})
			},
			done)
	}
}

// tcp is the hybrid analogue of tcpStarter. TCP's slow-start dynamics are
// not representable by the fluid model, so every flow runs at packet level
// (Eligible false) — but it is still registered so its demand reservation
// makes analytic RDMA flows see TCP load on shared links immediately.
func (h *hybridHarness) tcp(col *stats.FCTCollector, ecn bool) func(src, dst *netsim.Host, size int64, onDone func()) {
	params := tcp.DefaultParams()
	params.ECN = ecn
	return func(src, dst *netsim.Host, size int64, onDone func()) {
		id := h.net.NextFlowID()
		h.Eng.StartFlow(h.Mesh.Path(id, src, dst),
			hybrid.FlowOpts{ID: uint64(id), Size: size, Prio: params.Prio},
			func(f *hybrid.Flow, remaining int64) {
				start := h.net.Now()
				tcp.StartSender(h.net, id, src, dst.ID(), remaining, params)
				tcp.StartReceiver(id, src.ID(), dst, remaining, params, func(r *tcp.Receiver) {
					h.Eng.PacketDone(f)
					if col != nil {
						col.AddFlow(size, start, r.End, "tcp")
					}
					if onDone != nil {
						onDone()
					}
				})
			},
			nil)
	}
}
