package exp

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/workload"
)

// runMix runs one mix-* experiment and returns its rendered tables.
func runMix(t *testing.T, id string, o Options) []*Table {
	t.Helper()
	tables, err := Run(id, o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return tables
}

// TestMixReplayBitIdentical is the record→replay differential: for every
// engine configuration (sequential/sharded x packet/hybrid), running the
// default spec, re-recording it as executed, and replaying the recording
// must reproduce the identical run digest. mix-replay panics internally on
// divergence; this test additionally pins that the rendered tables (which
// embed both digests) are byte-identical across shard counts at packet
// fidelity — the engine-equivalence contract extended to spec traffic.
func TestMixReplayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	var packet []string
	for _, cfg := range []struct {
		shards   int
		fidelity string
	}{
		{0, ""}, {4, ""}, {0, "hybrid"}, {4, "hybrid"},
	} {
		oc := o
		oc.Shards = cfg.shards
		oc.Fidelity = cfg.fidelity
		tables := runMix(t, "mix-replay", oc)
		out := renderTables(tables)
		if !strings.Contains(out, "identical") {
			t.Fatalf("shards=%d fidelity=%q: missing identity row:\n%s", cfg.shards, cfg.fidelity, out)
		}
		if cfg.fidelity == "" {
			packet = append(packet, out)
		}
	}
	if packet[0] != packet[1] {
		t.Errorf("packet-fidelity mix-replay differs between 1 and 4 shards:\n--- 1 ---\n%s\n--- 4 ---\n%s",
			packet[0], packet[1])
	}
}

// TestMixSpecRecordReplayRoundTrip records a run's trace to disk, replays
// the file in a fresh run, and requires byte-identical tables — the exact
// workflow CI's workload-smoke job drives through accsim.
func TestMixSpecRecordReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	for _, ext := range []string{"bin", "jsonl"} {
		path := filepath.Join(t.TempDir(), "mix."+ext)
		ro := DefaultOptions()
		ro.Shards = 4
		ro.RecordTrace = path
		recorded := renderTables(runMix(t, "mix-spec", ro))

		po := DefaultOptions()
		po.Shards = 4
		po.ReplayTrace = path
		replayed := renderTables(runMix(t, "mix-spec", po))
		if recorded != replayed {
			t.Errorf("%s: record and replay runs differ:\n--- record ---\n%s\n--- replay ---\n%s",
				ext, recorded, replayed)
		}
		// The file itself must round-trip into the identical trace.
		tr, err := workload.ReadTraceFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: recorded trace invalid: %v", ext, err)
		}
	}
}

// TestMixSpecDeterminismAcrossGOMAXPROCS pins that the spec-driven run —
// class-parallel generation, sharded execution, per-class summarization —
// renders byte-identical tables whether the shard workers are serialized or
// fully parallel.
func TestMixSpecDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Shards = 4
	run := func() string { return renderTables(runMix(t, "mix-spec", o)) }
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(prev)
	parallel := run()
	if serial != parallel {
		t.Errorf("GOMAXPROCS=1 vs %d mix-spec runs differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			prev, serial, parallel)
	}
}

// TestMixSpecClassReporting checks the acceptance shape: a >=3-class spec
// reports per-SLO-class FCT percentiles and a Jain fairness index, both in
// the tables and in the obs manifest.
func TestMixSpecClassReporting(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	run := obs.NewRun(0)
	o.Obs = run
	tables := runMix(t, "mix-spec", o)
	if len(tables) != 2 {
		t.Fatalf("mix-spec produced %d tables, want 2", len(tables))
	}
	classTable := tables[0]
	// 3 classes + the aggregate Jain row.
	if len(classTable.Rows) != 4 {
		t.Fatalf("class table has %d rows, want 4:\n%s", len(classTable.Rows), classTable)
	}
	for _, col := range []string{"class", "slo", "fct_p50", "fct_p99", "mean_gbps"} {
		found := false
		for _, c := range classTable.Cols {
			if c == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("class table missing column %q", col)
		}
	}

	m := run.Manifest()
	if m.Workload == nil {
		t.Fatal("manifest has no workload section")
	}
	if len(m.Workload.Classes) != 3 {
		t.Fatalf("manifest reports %d classes, want 3", len(m.Workload.Classes))
	}
	if m.Workload.Jain <= 0 || m.Workload.Jain > 1 {
		t.Fatalf("manifest Jain index %v outside (0,1]", m.Workload.Jain)
	}
	for _, c := range m.Workload.Classes {
		if c.Flows == 0 || c.FCTp99Ns < c.FCTp50Ns || c.SLO == "" {
			t.Fatalf("malformed class manifest: %+v", c)
		}
	}
	if sn := m.TraceByKind["flow_start"]; sn == 0 {
		t.Fatal("no flow_start records reached the obs trace")
	}
}

// TestMixCollective smoke-runs the AI-fabric collectives mix and checks
// every collective makes progress while the live recorder captures a
// valid, replayable trace.
func TestMixCollective(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	path := filepath.Join(t.TempDir(), "coll.bin")
	o := DefaultOptions()
	o.RecordTrace = path
	tables := runMix(t, "mix-collective", o)
	if len(tables) != 2 {
		t.Fatalf("mix-collective produced %d tables, want 2", len(tables))
	}
	rates := tables[1]
	if len(rates.Rows) != 3 {
		t.Fatalf("collective table has %d rows, want 3", len(rates.Rows))
	}
	for _, row := range rates.Rows {
		if row[1] == "0" {
			t.Errorf("collective %s completed no rounds", row[0])
		}
	}
	tr, err := workload.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("live-recorded trace invalid: %v", err)
	}
	if len(tr.Flows) == 0 || len(tr.Classes) < 3 {
		t.Fatalf("live trace underpopulated: %d flows, %d classes", len(tr.Flows), len(tr.Classes))
	}
	// The live-recorded collective trace replays through mix-spec.
	ro := DefaultOptions()
	ro.ReplayTrace = path
	replay := runMix(t, "mix-spec", ro)
	if len(replay) != 2 {
		t.Fatal("replaying the collective trace produced no tables")
	}
}
