package exp

import (
	"fmt"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("fig8", "RDMA/TCP weighted fair sharing (70/30 DWRR): throughput ratio, ACC vs SECN", runFig8)
}

// runFig8 reproduces Figure 8 (§5.2 "Fairness between RDMA and TCP
// Traffic"): 8 hosts with 100G NICs on one switch; DWRR allocates 70% to
// the RDMA class and 30% to TCP; 2 or 7 senders push both classes to one
// receiver. With a static ECN setting, TCP's slower control loop grabs more
// than its share; ACC restores the split.
func runFig8(o Options) []*Table {
	bw := 100 * simtime.Gbps
	ratioTbl := &Table{
		Title: "Figure 8: average throughput share of RDMA and TCP (target 70%/30%)",
		Cols:  []string{"incast", "policy", "RDMA share", "TCP share"},
	}
	latTbl := &Table{
		Title: "Figure 8 (companion): RDMA-queue delay proxy",
		Cols:  []string{"incast", "policy", "avg RDMA queue(KB)", "p99 RDMA queue(KB)"},
	}
	for _, senders := range []int{2, 7} {
		accP := accPolicy()
		accP.TunePrios = []int{3} // only the RDMA class is auto-tuned
		for _, p := range []Policy{vendor(), accP} {
			net := newNet(o, o.Seed)
			cfg := topo.DefaultConfig()
			cfg.HostBW = bw
			cfg.FabricBW = bw
			// A tight shared buffer at 100G makes the classes contend the
			// way the paper describes: TCP occupancy eats PFC headroom.
			cfg.Switch.BufferBytes = 9 * simtime.MB
			weights := make([]int, netsim.NumPrio)
			weights[0], weights[3] = 3, 7 // TCP class 0: 30%, RDMA class 3: 70%
			cfg.QueueWeights = weights
			fab := topo.Star(net, 8, cfg)
			stop := deploy(net, fab, p, o)
			recv := fab.Hosts[7]

			rdma := rdmaStarter(net, bw, nil)
			// The paper's problem scenario: drop-tail TCP "becomes more greedy
			// and may occupy the whole buffer" (§5.2).
			tcps := tcpStarter(net, nil, false)
			// Hybrid fidelity: uncongested RDMA fast-forwards in closed
			// form; the sustained incast demotes the shared links to packet
			// level almost immediately, so results track the packet engine
			// within the documented tolerance (see golden_hybrid_test.go).
			var hyb *hybridHarness
			if o.Hybrid() {
				hyb = newHybridHarness(net, fab)
				rdma = hyb.rdma(bw, nil)
				tcps = hyb.tcp(nil, false)
			}

			// Each sender runs a random 1..32 concurrent RDMA QPs (renewed
			// on completion) plus persistent TCP flows.
			for i := 0; i < senders; i++ {
				src := fab.Hosts[i]
				qps := 1 + net.Rng.Intn(32)
				for q := 0; q < qps; q++ {
					var loop func()
					loop = func() {
						rdma(src, recv, 4*simtime.MB, func() {
							net.Q.After(workload.ExpJitter(net.Rng, 20*simtime.Microsecond), loop)
						})
					}
					loop()
				}
				for q := 0; q < 4; q++ {
					var loop func()
					loop = func() {
						tcps(src, recv, 4*simtime.MB, func() {
							net.Q.After(workload.ExpJitter(net.Rng, 20*simtime.Microsecond), loop)
						})
					}
					loop()
				}
			}

			hot := fab.Leaves[0].Ports[7]
			rq := hot.Queue(3)
			tq := hot.Queue(0)
			qmon := stats.MonitorQueue(net, rq, 20*simtime.Microsecond)
			// ACC adapts online to this out-of-distribution scenario
			// (weighted queues); give it a learning warmup before measuring.
			warm := o.dur(8 * simtime.Millisecond)
			meas := o.dur(12 * simtime.Millisecond)
			net.RunUntil(simtime.Time(warm))
			r0, t0 := rq.TxBytes, tq.TxBytes
			net.RunUntil(simtime.Time(warm + meas))
			stop()
			qmon.Stop()
			if hyb != nil {
				hyb.finish(o.Obs)
			}

			rb := float64(rq.TxBytes - r0)
			tb := float64(tq.TxBytes - t0)
			total := rb + tb
			if total == 0 {
				total = 1
			}
			ratioTbl.AddRow(fmt.Sprintf("%d:1", senders), p.Name, rb/total, tb/total)
			latTbl.AddRow(fmt.Sprintf("%d:1", senders), p.Name, kb(qmon.Series.Avg()), kb(qmon.Series.Quantile(0.99)))
		}
	}
	ratioTbl.Notes = append(ratioTbl.Notes,
		"paper: with static ECN, TCP takes 10-20% more than its 30% allocation; ACC restores ~70/30")
	return []*Table{ratioTbl, latTbl}
}
