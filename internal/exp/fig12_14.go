package exp

import (
	"fmt"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("fig12", "large-scale sim, WebSearch: overall/mice/elephant FCT vs load", runFig12)
	register("fig13", "temporally & spatially heterogeneous traffic: FCT stats across workloads", runFig13)
	register("fig14", "distributed D-ACC vs centralized C-ACC vs static ECN", runFig14)
}

// simFabric builds the large-simulation fabric, scaled down by default
// (Scale>=4 restores the paper's 288-host 12x6 fabric).
func simFabric(net *netsim.Network, o Options) *topo.Fabric {
	cfg := topo.DefaultConfig()
	if o.Scale >= 4 {
		return topo.LargeSim(net, cfg)
	}
	// 48 hosts: 6 leaves x 8 hosts, 3 spines.
	return topo.LeafSpine(net, 6, 8, 3, cfg)
}

// fctRow summarizes one policy run for the fig12/13 tables.
type fctRow struct {
	overall  stats.FCTSummary
	mice     stats.FCTSummary
	elephant stats.FCTSummary
}

// runLoadScenario drives a Poisson workload over the sim fabric under a
// policy and returns size-bucketed FCT summaries.
func runLoadScenario(o Options, p Policy, sizes workload.CDF, load float64, dur simtime.Duration) fctRow {
	net := newNet(o, o.Seed)
	fab := simFabric(net, o)
	stop := deploy(net, fab, p, o)
	var col stats.FCTCollector
	gen := workload.StartPoisson(net, workload.PoissonConfig{
		Hosts:  fab.Hosts,
		Sizes:  sizes,
		Load:   load,
		HostBW: 25 * simtime.Gbps,
		Start:  rdmaStarter(net, 25*simtime.Gbps, &col),
	})
	net.RunUntil(simtime.Time(dur))
	gen.Stop()
	// Drain tail: let in-flight flows finish up to 2x duration.
	net.RunUntil(simtime.Time(2 * dur))
	stop()
	return fctRow{
		overall:  stats.Summarize(col.Records),
		mice:     stats.Summarize(col.Mice()),
		elephant: stats.Summarize(col.Elephants()),
	}
}

// runFig12 reproduces Figure 12: WebSearch workload at rising load; overall
// average FCT, mice average and p99, elephant average — ACC vs SECN1/SECN2,
// normalized to ACC.
func runFig12(o Options) []*Table {
	loads := []float64{0.6, 0.7, 0.8, 0.9}
	policies := []Policy{accPolicy(), secn1(), secn2(25)}
	dur := o.dur(6 * simtime.Millisecond)

	metrics := []struct {
		name string
		get  func(fctRow) float64
	}{
		{"overall avg", func(r fctRow) float64 { return float64(r.overall.Avg) }},
		{"mice (0,100KB] avg", func(r fctRow) float64 { return float64(r.mice.Avg) }},
		{"mice (0,100KB] p99", func(r fctRow) float64 { return float64(r.mice.P99) }},
		{"elephant [10MB,inf) avg", func(r fctRow) float64 { return float64(r.elephant.Avg) }},
	}
	tables := make([]*Table, len(metrics))
	for i, m := range metrics {
		tables[i] = &Table{
			Title: "Figure 12: WebSearch " + m.name + " FCT (normalized to ACC)",
			Cols:  []string{"load", "ACC", "SECN1", "SECN2"},
		}
	}
	for _, load := range loads {
		load := load
		rows := make([]fctRow, len(policies))
		forEachParallel(len(policies), func(pi int) {
			rows[pi] = runLoadScenario(o, policies[pi], workload.WebSearch(), load, dur)
		})
		for mi, m := range metrics {
			base := m.get(rows[0])
			tables[mi].AddRow(fmt.Sprintf("%.0f%%", load*100), 1.0,
				normalize(m.get(rows[1]), base), normalize(m.get(rows[2]), base))
		}
	}
	tables[0].Notes = append(tables[0].Notes,
		"paper: ACC 5.8% below SECN1 and 16.6% below SECN2 on overall avg FCT at 90% load")
	return tables
}

// runFig13 reproduces Figure 13: WebSearch and DataMining under random load
// in {60..90%} with random src/dst, averaged over several runs.
func runFig13(o Options) []*Table {
	policies := []Policy{accPolicy(), secn1(), secn2(25)}
	runs := 3
	dur := o.dur(6 * simtime.Millisecond)
	loads := []float64{0.6, 0.7, 0.8, 0.9}

	var tables []*Table
	for _, wl := range []workload.CDF{workload.WebSearch(), workload.DataMining()} {
		t := &Table{
			Title: "Figure 13: " + wl.Name + " FCT across random loads (normalized to ACC)",
			Cols:  []string{"metric", "ACC", "SECN1", "SECN2"},
		}
		agg := make([]fctRow, len(policies))
		sums := make([][4]float64, len(policies))
		for r := 0; r < runs; r++ {
			load := loads[r%len(loads)]
			ro := o
			ro.Seed = o.Seed + int64(r*100)
			forEachParallel(len(policies), func(pi int) {
				agg[pi] = runLoadScenario(ro, policies[pi], wl, load, dur)
			})
			for pi := range policies {
				sums[pi][0] += float64(agg[pi].overall.Avg)
				sums[pi][1] += float64(agg[pi].mice.Avg)
				sums[pi][2] += float64(agg[pi].mice.P99)
				sums[pi][3] += float64(agg[pi].elephant.Avg)
			}
		}
		for mi, name := range []string{"overall avg", "mice avg", "mice p99", "elephant avg"} {
			t.AddRow(name, 1.0, normalize(sums[1][mi], sums[0][mi]), normalize(sums[2][mi], sums[0][mi]))
		}
		tables = append(tables, t)
	}
	return tables
}

// runFig14 reproduces Figure 14: the 96-host fabric comparing the deployed
// distributed design (D-ACC) against the centralized baseline (C-ACC) and
// the static settings.
func runFig14(o Options) []*Table {
	t := &Table{
		Title: "Figure 14: distributed vs centralized design (normalized to D-ACC)",
		Cols:  []string{"policy", "avg FCT", "p99 FCT"},
	}
	policies := []Policy{
		{Name: "D-ACC", ACC: true},
		{Name: "C-ACC", CACC: true},
		secn1(),
		secn2(25),
	}
	dur := o.dur(8 * simtime.Millisecond)
	var baseAvg, baseP99 float64
	for _, p := range policies {
		net := newNet(o, o.Seed)
		var fab *topo.Fabric
		if o.Scale >= 2 {
			fab = topo.LeafSpine(net, 4, 24, 2, topo.DefaultConfig()) // paper's 96 hosts
		} else {
			fab = topo.LeafSpine(net, 4, 8, 2, topo.DefaultConfig()) // scaled: 32 hosts
		}
		stop := deploy(net, fab, p, o)
		var col stats.FCTCollector
		gen := workload.StartPoisson(net, workload.PoissonConfig{
			Hosts:  fab.Hosts,
			Sizes:  workload.WebSearch(),
			Load:   0.7,
			HostBW: 25 * simtime.Gbps,
			Start:  rdmaStarter(net, 25*simtime.Gbps, &col),
		})
		net.RunUntil(simtime.Time(dur))
		gen.Stop()
		net.RunUntil(simtime.Time(2 * dur))
		stop()
		s := stats.Summarize(col.Records)
		if baseAvg == 0 {
			baseAvg, baseP99 = float64(s.Avg), float64(s.P99)
		}
		t.AddRow(p.Name, normalize(float64(s.Avg), baseAvg), normalize(float64(s.P99), baseP99))
	}
	t.Notes = append(t.Notes,
		"paper: C-ACC beats static ECN but trails D-ACC (uniform per-layer settings mis-fit during congestion)")
	return []*Table{t}
}
