package exp

import (
	"fmt"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("fig15", "deep dive: runtime queue occupancy and applied thresholds under a burst", runFig15)
	register("fig16", "stability with unseen traffic: online training across workload switches", runFig16)
	register("fig17", "reward-design ablation: step vs linear queue-length reward", runFig17)
}

// runFig15 reproduces Figure 15: sample the hot queue and the ECN threshold
// ACC applies around a burst arrival, showing the lower-threshold reaction
// to a growing queue and the raise once the queue clears.
func runFig15(o Options) []*Table {
	net := newNet(o, o.Seed)
	fab := topo.Star(net, 9, topo.DefaultConfig())
	recv := fab.Hosts[8]
	sw := fab.Leaves[0]

	cfg := acc.DefaultConfig()
	cfg.RecordTrace = true
	model := PretrainedModel(o.OfflineEpisodes)
	ac := rl.DefaultAgentConfig(cfg.StateDim(), len(cfg.Template))
	ac.LR = 1e-4 // fine-tune only
	cfg.TrainEvery = 4
	agent := rl.NewAgent(ac, net.Rng)
	agent.Eval.CopyFrom(model)
	agent.Target.CopyFrom(model)
	agent.SetEpsilon(0.01)
	tuner := acc.NewTuner(net, sw, agent, cfg)

	start := rdmaStarter(net, 25*simtime.Gbps, nil)
	// Background long flow, then a burst at t=2ms.
	start(fab.Hosts[0], recv, 1<<40, nil)
	net.Q.After(2*simtime.Millisecond, func() {
		workload.RunIncast(net, workload.IncastConfig{
			Senders:  fab.Hosts[1:8],
			Receiver: recv,
			Flows:    8,
			Size:     512 * simtime.KB,
			Start:    start,
		}, nil)
	})

	hot := sw.Ports[8].Queues[0]
	qmon := stats.MonitorQueue(net, hot, 100*simtime.Microsecond)
	net.RunUntil(simtime.Time(o.dur(8 * simtime.Millisecond)))
	tuner.Stop()
	qmon.Stop()

	t := &Table{
		Title: "Figure 15: runtime queue occupancy and applied Kmin around a burst (t=2ms)",
		Cols:  []string{"time(ms)", "queue(KB)", "applied Kmin(KB)"},
	}
	trace := tuner.QueueTrace(8)
	kminAt := func(at simtime.Time) float64 {
		last := 0.0
		for i, tt := range trace.Times {
			if tt > at {
				break
			}
			last = trace.Values[i]
		}
		return last
	}
	for i := 0; i < qmon.Series.Len(); i += 2 {
		at := qmon.Series.Times[i]
		t.AddRow(fmt.Sprintf("%.1f", at.Seconds()*1e3), kb(qmon.Series.Values[i]), kb(kminAt(at)))
	}
	t.Notes = append(t.Notes,
		"paper: rising queue + high utilization -> lower threshold (more marking); near-empty queue -> higher threshold (avoid starving)")
	return []*Table{t}
}

// runFig16 reproduces Figure 16: an aggressive ACC model with NO offline
// training faces workload switches (WebSearch <-> DataMining). FCT degrades
// briefly after the first switch, converges, and stays good when a
// previously seen pattern returns.
func runFig16(o Options) []*Table {
	// Scaled timeline: P1 WebSearch [0,4ms), P2 DataMining [4,8ms),
	// P1 again [8,10ms), P2 again [10,12ms).
	seg := o.dur(4 * simtime.Millisecond)
	segments := []struct {
		name string
		wl   workload.CDF
		dur  simtime.Duration
	}{
		{"P1 WebSearch (cold)", workload.WebSearch(), seg},
		{"P2 DataMining (unseen switch)", workload.DataMining(), seg},
		{"P1 WebSearch (return)", workload.WebSearch(), seg / 2},
		{"P2 DataMining (return)", workload.DataMining(), seg / 2},
	}
	policies := []Policy{
		{Name: "ACC(no-offline)", ACC: true, FreshModel: true},
		secn1(),
		secn2(25),
	}
	t := &Table{
		Title: "Figure 16: FCT during online training across workload switches (per segment, normalized to SECN1)",
		Cols:  []string{"segment", "ACC(no-offline)", "SECN1", "SECN2"},
	}
	// avg FCT per policy per segment.
	avgs := make([][]float64, len(policies))
	for pi, p := range policies {
		net := newNet(o, o.Seed)
		fab := topo.TestbedClos(net, topo.DefaultConfig())
		stop := deploy(net, fab, p, o)
		avgs[pi] = make([]float64, len(segments))
		var col stats.FCTCollector
		start := rdmaStarter(net, 25*simtime.Gbps, &col)
		var at simtime.Duration
		for si, sg := range segments {
			gen := workload.StartPoisson(net, workload.PoissonConfig{
				Hosts:  fab.Hosts,
				Sizes:  sg.wl,
				Load:   0.5,
				HostBW: 25 * simtime.Gbps,
				Start:  start,
			})
			mark := len(col.Records)
			net.RunUntil(simtime.Time(at + sg.dur))
			gen.Stop()
			avgs[pi][si] = float64(stats.Summarize(col.Records[mark:]).Avg)
			at += sg.dur
		}
		stop()
	}
	for si, sg := range segments {
		base := avgs[1][si] // SECN1
		t.AddRow(sg.name, normalize(avgs[0][si], base), 1.0, normalize(avgs[2][si], base))
	}
	t.Notes = append(t.Notes,
		"paper: a brief FCT spike right after an unseen switch, then convergence below static; revisited patterns stay good",
		"paper: overall ACC 31.1%/56.2% lower avg FCT than SECN1/SECN2 during this run")
	return []*Table{t}
}

// runFig17 reproduces the appendix reward ablation (Figure 17): under a
// sustained incast, agents trained with the step reward (Design-2) converge
// to the expected aggressive marking, while the linear reward (Design-1)
// cannot differentiate actions and converges arbitrarily.
func runFig17(o Options) []*Table {
	// Figure 17(a): the analytic heart of the appendix — reward values the
	// two designs assign across queue depths. Design-1 (linear over a 10MB
	// range) barely separates the small queue depths where congestion
	// actually lives; Design-2 (step) separates them strongly.
	spread := &Table{
		Title: "Figure 17(a): queue-length reward D(L) by design",
		Cols:  []string{"avg queue", "Design-1 (linear)", "Design-2 (step)"},
	}
	for _, q := range []int{20 * simtime.KB, 80 * simtime.KB, 320 * simtime.KB, 1280 * simtime.KB, 5 * simtime.MB, 10 * simtime.MB} {
		spread.AddRow(fmt.Sprintf("%dKB", q/simtime.KB), acc.LinearReward(float64(q)), acc.StepReward(float64(q)))
	}
	spread.Notes = append(spread.Notes,
		"Design-1 assigns near-identical rewards to 20KB..1.28MB queues; Design-2 spreads them over [0.2,1.0]")

	decisions := &Table{
		Title: "Figure 17(b): converged action decisions under incast congestion",
		Cols:  []string{"reward design", "modal Kmin(KB)", "avg queue(KB)", "throughput(Gbps)"},
	}
	for _, design := range []struct {
		name string
		fn   acc.RewardFunc
	}{
		{"Design-2 (step, paper)", acc.StepReward},
		{"Design-1 (linear)", acc.LinearReward},
	} {
		net := newNet(o, o.Seed)
		fab := topo.Star(net, 9, topo.DefaultConfig())
		recv := fab.Hosts[8]
		start := rdmaStarter(net, 25*simtime.Gbps, nil)
		for i := 0; i < 8; i++ {
			start(fab.Hosts[i], recv, 1<<40, nil) // long-lived incast
		}
		cfg := acc.DefaultConfig()
		cfg.Reward = design.fn
		cfg.RecordTrace = true
		ac := rl.DefaultAgentConfig(cfg.StateDim(), len(cfg.Template))
		ac.EpsDecay = 0.995 // online-from-scratch: fast decay (§4.3)
		cfg.Agent = ac
		tuner := acc.NewTuner(net, fab.Leaves[0], nil, cfg)

		dur := o.dur(30 * simtime.Millisecond)
		hot := fab.Leaves[0].Ports[8].Queues[0]
		net.RunUntil(simtime.Time(dur / 2))
		in0, tx0 := hot.ByteTimeIntegral(), hot.TxBytes
		net.RunUntil(simtime.Time(dur))
		tuner.Stop()

		// Mode of the applied Kmin over the converged half.
		trace := tuner.QueueTrace(8)
		counts := map[float64]int{}
		for i, at := range trace.Times {
			if at >= simtime.Time(dur/2) {
				counts[trace.Values[i]]++
			}
		}
		var mode float64
		best := 0
		//acclint:ignore determinism@1 ties break on (count, then smallest value), so the result is iteration-order-independent
		for v, c := range counts {
			if c > best || (c == best && v < mode) {
				best, mode = c, v
			}
		}
		meas := (dur / 2).Seconds()
		avgQ := (hot.ByteTimeIntegral() - in0) / meas
		decisions.AddRow(design.name, kb(mode), kb(avgQ), gbps(hot.TxBytes-tx0, dur/2))
	}
	decisions.Notes = append(decisions.Notes,
		"paper: the step reward differentiates small-queue states and picks the expected action; the linear reward gives near-identical rewards to all actions")
	return []*Table{spread, decisions}
}
