// Package exp contains one runner per table/figure of the paper's
// evaluation (§2.2 motivation figures, §5 testbed and simulation figures,
// and the appendix ablation), plus the ablation studies DESIGN.md calls out.
// Each runner builds the scenario, deploys a policy (static ECN settings or
// ACC), drives the workload, and returns formatted tables whose rows mirror
// what the paper reports.
//
// Scale: runs are scaled to finish in seconds (milliseconds of virtual time,
// thousands of flows) while preserving the paper's *shape* — who wins and by
// roughly what factor. Options.Scale stretches durations and fabric sizes
// toward paper scale.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/tcp"
	"github.com/accnet/acc/internal/topo"
)

// Options tune an experiment run.
type Options struct {
	Seed int64
	// Scale multiplies experiment durations (1 = quick defaults; the paper's
	// timescales correspond to Scale >> 1).
	Scale float64
	// Shards, when > 1, drives every Network the experiment creates in
	// conservative barrier windows (netsim.SyncWindow at the topology's
	// cross-shard lookahead) — the cadence the parallel engine
	// (internal/psim) imposes on a shard. Experiment runners own one
	// Network per policy arm with workload closures bound to it, so they
	// execute sequentially either way; the flag proves the windowed driver
	// is observationally identical (byte-identical golden tables), while
	// true multi-queue sharding runs in psim and cmd/accbench -shards.
	Shards int
	// OfflineEpisodes overrides pre-training length for ACC policies
	// (0 = package default).
	OfflineEpisodes int
	// Verbose enables progress output on stdout.
	Verbose bool
	// Faults parameterizes the robust-* experiments; zero fields fall back
	// to per-experiment defaults.
	Faults FaultOptions
	// Obs, when non-nil, turns on observability for the run: every Network
	// an experiment creates gets the run's Tracer attached and registers
	// its engine totals, and exp.Run stamps the per-run manifest
	// (experiment id, seed, scale, wall time, event/packet totals). Nil —
	// the default — keeps every hook on the zero-overhead nil-tracer path.
	Obs *obs.Run
	// Fidelity selects the simulation mode: "" or "packet" is the full
	// packet-level engine (byte-identical to historical goldens), "hybrid"
	// fast-forwards uncongested traffic in closed form with deterministic
	// demotion to packet level at hotspots (internal/hybrid). Experiments
	// that have not been wired for hybrid ignore the flag.
	Fidelity string
	// WorkloadSpec is a workload-spec JSON file (workload.ParseSpec) for the
	// mix-* experiments; empty selects the built-in three-class default.
	WorkloadSpec string
	// RecordTrace, when set, writes the run's as-executed flow trace to the
	// given file (.bin selects the compact binary format, anything else
	// JSONL). Honored by the mix-* experiments.
	RecordTrace string
	// ReplayTrace, when set, replays the given flow-trace file instead of
	// generating traffic from a spec. Honored by the mix-* experiments.
	ReplayTrace string
}

// Hybrid reports whether the run requests the hybrid-fidelity fast path.
func (o Options) Hybrid() bool { return o.Fidelity == "hybrid" }

// FaultOptions surfaces the fault-injection plan knobs on the command line
// (cmd/accsim -fault-* flags). Each robust-* experiment reads the fields it
// needs and substitutes defaults for zero values.
type FaultOptions struct {
	MTBF     simtime.Duration // robust-flap: mean up time between failures
	MTTR     simtime.Duration // robust-flap: mean down time until repair
	Links    int              // robust-flap: leaf-spine links to flap
	Stale    int              // robust-telemetry: staleness in ΔT slots
	DropProb float64          // robust-telemetry: per-window loss probability
	Degrade  float64          // robust-linkfail: brownout factor in (0,1)
}

// DefaultOptions returns quick-run settings.
func DefaultOptions() Options { return Options{Seed: 1, Scale: 1} }

func (o Options) dur(base simtime.Duration) simtime.Duration {
	if o.Scale <= 0 {
		return base
	}
	return simtime.Duration(float64(base) * o.Scale)
}

// Table is a regenerated paper table/figure: column headers plus rows.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case simtime.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Cols, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner produces the tables for one experiment.
type Runner func(Options) []*Table

// registry of experiments by id (fig1, fig2, ... table1, ablation-*).
var registry = map[string]struct {
	Desc string
	Run  Runner
}{}

func register(id, desc string, r Runner) {
	registry[id] = struct {
		Desc string
		Run  Runner
	}{desc, r}
}

// Run executes the experiment with the given id. With Options.Obs set,
// the run's manifest is stamped around the runner: Begin before the first
// network exists, Finish once the last table is produced (when all the
// run's engines are idle again).
func Run(id string, o Options) ([]*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (use List)", id)
	}
	o.Obs.Begin(id, o.Seed, o.Scale, obsConfig(o))
	o.Obs.SetShards(o.Shards)
	tables := e.Run(o)
	o.Obs.Finish()
	return tables, nil
}

// obsConfig flattens the option knobs that shaped a run into the manifest's
// free-form config map.
func obsConfig(o Options) map[string]string {
	cfg := map[string]string{}
	if o.Shards != 0 {
		cfg["shards"] = fmt.Sprint(o.Shards)
	}
	if o.OfflineEpisodes != 0 {
		cfg["offline_episodes"] = fmt.Sprint(o.OfflineEpisodes)
	}
	f := o.Faults
	if f.MTBF != 0 {
		cfg["fault_mtbf"] = f.MTBF.String()
	}
	if f.MTTR != 0 {
		cfg["fault_mttr"] = f.MTTR.String()
	}
	if f.Links != 0 {
		cfg["fault_links"] = fmt.Sprint(f.Links)
	}
	if f.Stale != 0 {
		cfg["fault_stale"] = fmt.Sprint(f.Stale)
	}
	if f.DropProb != 0 {
		cfg["fault_drop"] = fmt.Sprint(f.DropProb)
	}
	if f.Degrade != 0 {
		cfg["fault_degrade"] = fmt.Sprint(f.Degrade)
	}
	if o.Fidelity != "" && o.Fidelity != "packet" {
		cfg["fidelity"] = o.Fidelity
	}
	if o.WorkloadSpec != "" {
		cfg["workload_spec"] = o.WorkloadSpec
	}
	if o.RecordTrace != "" {
		cfg["record_trace"] = o.RecordTrace
	}
	if o.ReplayTrace != "" {
		cfg["replay_trace"] = o.ReplayTrace
	}
	if len(cfg) == 0 {
		return nil
	}
	return cfg
}

// newNet creates one simulation Network wired to the run's observability:
// the shared Tracer is attached (nil stays nil — zero overhead) and the
// engine's event/packet totals are registered for the manifest. Runners
// use this instead of netsim.New so one flag lights up tracing across
// every experiment, including ones that build many Networks in parallel.
func newNet(o Options, seed int64) *netsim.Network {
	n := netsim.New(seed)
	if o.Shards > 1 {
		n.SyncWindow = topo.DefaultConfig().FabDelay
	}
	if o.Obs != nil {
		n.Tracer = o.Obs.Tracer
		o.Obs.RegisterEngine(n.Q.Processed, n.PacketsAlloced)
	}
	return n
}

// List returns the registered experiment ids and descriptions, sorted.
func List() [][2]string {
	var out [][2]string
	//acclint:ignore determinism@1 collection order is irrelevant; the sort below normalizes it
	for id, e := range registry {
		out = append(out, [2]string{id, e.Desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ----- policies -----

// Policy is one row of a comparison: a static ECN setting, distributed ACC,
// or centralized C-ACC.
type Policy struct {
	Name   string
	Static *red.Config
	ACC    bool
	CACC   bool
	// FreshModel forces ACC to start untrained (Figure 16's "aggressive
	// version without offline-training").
	FreshModel bool
	// Reward overrides the tuner reward function (Figure 17 ablation).
	Reward acc.RewardFunc
	// HistoryK overrides the tuner history depth (ablation).
	HistoryK int
	// NoDoubleDQN uses the plain DQN target (ablation).
	NoDoubleDQN bool
	// NoExchange disables the global replay exchange (ablation).
	NoExchange bool
	// NoBusyIdle disables the §4.2 inference gating (ablation).
	NoBusyIdle bool
	// Period overrides the action interval ΔT (ablation).
	Period simtime.Duration
	// TunePrios restricts ACC to specific traffic classes (fig8 tunes only
	// the RDMA class, as deployed).
	TunePrios []int
}

// Static policies used throughout the evaluation (§5.1).
func secn0() Policy { c := red.SECN0(); return Policy{Name: "SECN0", Static: &c} }
func secn1() Policy { c := red.SECN1(); return Policy{Name: "SECN1", Static: &c} }
func secn2(bwGbps float64) Policy {
	c := red.SECN2(bwGbps)
	return Policy{Name: "SECN2", Static: &c}
}
func vendor() Policy { c := red.VendorDefault(); return Policy{Name: "SECN", Static: &c} }
func accPolicy() Policy {
	return Policy{Name: "ACC", ACC: true}
}

// pretrainedMu guards the lazily trained shared model cache keyed by
// episode count.
var (
	pretrainedMu sync.Mutex
	pretrained   = map[int]*rl.MLP{}
)

// PretrainedModel returns a cached offline-trained model (§4.3). Training
// happens once per process per episode budget.
func PretrainedModel(episodes int) *rl.MLP {
	if episodes <= 0 {
		episodes = 24
	}
	pretrainedMu.Lock()
	defer pretrainedMu.Unlock()
	if m, ok := pretrained[episodes]; ok {
		return m
	}
	cfg := acc.DefaultOfflineConfig()
	cfg.Episodes = episodes
	cfg.EpisodeTime = 10 * simtime.Millisecond
	agent := acc.TrainOffline(cfg)
	pretrained[episodes] = agent.Eval
	return agent.Eval
}

// deploy applies a policy to a fabric and returns a stopper.
func deploy(net *netsim.Network, fab *topo.Fabric, p Policy, o Options) func() {
	stop, _ := deployFull(net, fab, p, o)
	return stop
}

// deployFull is deploy with access to the deployed ACC system, for
// experiments that attach telemetry faults or inspect tuners; sys is nil
// for static and centralized policies.
func deployFull(net *netsim.Network, fab *topo.Fabric, p Policy, o Options) (stop func(), sys *acc.System) {
	switch {
	case p.Static != nil:
		for _, sw := range fab.Switches() {
			sw.SetRED(*p.Static)
		}
		return func() {}, nil
	case p.CACC:
		cc := acc.DefaultCentralizedConfig()
		c := acc.NewCentralized(net, fab.Leaves, fab.Spines, cc)
		return c.Stop, nil
	case p.ACC:
		scfg := acc.DefaultSystemConfig()
		if p.Reward != nil {
			scfg.Tuner.Reward = p.Reward
		}
		if p.HistoryK > 0 {
			scfg.Tuner.HistoryK = p.HistoryK
		}
		if p.Period > 0 {
			scfg.Tuner.Period = p.Period
		}
		if p.NoBusyIdle {
			scfg.Tuner.BusyIdle = false
		}
		if p.NoExchange {
			scfg.ExchangePeriod = 0
		}
		if len(p.TunePrios) > 0 {
			scfg.Tuner.Prios = p.TunePrios
		}
		ac := rl.DefaultAgentConfig(scfg.Tuner.StateDim(), len(scfg.Tuner.Template))
		if p.NoDoubleDQN {
			ac.DoubleDQN = false
		}
		var model *rl.MLP
		if !p.FreshModel && p.HistoryK == 0 && p.Reward == nil {
			// Only the paper-shaped state/reward can reuse the shared model.
			model = PretrainedModel(o.OfflineEpisodes)
		}
		if model != nil {
			// Deploying a pre-trained model: online learning is gentle
			// fine-tuning, not re-training — large steps at simulation
			// timescales destroy the offline policy.
			ac.LR = 1e-4
			scfg.Tuner.TrainEvery = 4
		}
		scfg.Tuner.Agent = ac
		s := acc.NewSystem(net, fab.Switches(), model, scfg)
		if model != nil {
			// Pre-trained deployment keeps only a sliver of exploration
			// (§4.3: fast exponential decay to avoid unstable exploring).
			s.SetEpsilon(0.01)
		}
		return s.Stop, s
	default:
		return func() {}, nil
	}
}

// ----- transport starters -----

// rdmaStarter returns a StartFlowFunc launching DCQCN flows and recording
// completions into col (which may be nil).
func rdmaStarter(net *netsim.Network, bw simtime.Rate, col *stats.FCTCollector) func(src, dst *netsim.Host, size int64, onDone func()) {
	params := dcqcn.DefaultParams(bw)
	return func(src, dst *netsim.Host, size int64, onDone func()) {
		dcqcn.Start(net, src, dst, size, params, func(f *dcqcn.Flow) {
			if col != nil {
				col.AddFlow(f.Size, f.Start, f.End, "rdma")
			}
			if onDone != nil {
				onDone()
			}
		})
	}
}

// tcpStarter is the TCP analogue of rdmaStarter, using DCTCP on prio 0.
func tcpStarter(net *netsim.Network, col *stats.FCTCollector, ecn bool) func(src, dst *netsim.Host, size int64, onDone func()) {
	params := tcp.DefaultParams()
	params.ECN = ecn
	return func(src, dst *netsim.Host, size int64, onDone func()) {
		tcp.Start(net, src, dst, size, params, func(f *tcp.Flow) {
			if col != nil {
				col.AddFlow(f.Size, f.Start, f.End, "tcp")
			}
			if onDone != nil {
				onDone()
			}
		})
	}
}

// forEachParallel runs fn(i) for i in [0,n) across CPUs. Each experiment
// run owns an independent Network (and RNG), so cross-run parallelism keeps
// per-run determinism while cutting wall time.
func forEachParallel(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// normalize returns x/base guarding against zero.
func normalize(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x / base
}

// gbps formats a rate in Gbit/s.
func gbps(bytes uint64, d simtime.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

// kb formats bytes as KB.
func kb(b float64) float64 { return b / 1024 }
