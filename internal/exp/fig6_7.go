package exp

import (
	"fmt"
	"math/rand"

	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("fig6", "ACC adapts across traffic phase changes (queue & utilization timeline)", runFig6)
	register("fig7", "end-to-end FCT at 20%/60% load by message size; queue and ToR throughput", runFig7)
}

// runFig6 reproduces Figure 6: the incast degree and flow count change every
// phase; static settings match only some phases while ACC adapts. Reported
// per phase: average queue depth and average utilization of the hot port.
func runFig6(o Options) []*Table {
	type phase struct {
		senders, flows int
	}
	// Scaled version of "randomly change the number of flows and the number
	// of Incast senders every 100 seconds".
	phases := []phase{{4, 2}, {12, 16}, {8, 4}}
	phaseDur := o.dur(8 * simtime.Millisecond)

	policies := []Policy{accPolicy(), secn1(), secn2(25)}
	t := &Table{
		Title: "Figure 6: adaptation to heterogeneous traffic (per-phase hot-port stats)",
		Cols:  []string{"policy", "phase", "senders x flows", "avg queue(KB)", "utilization"},
	}
	summary := &Table{
		Title: "Figure 6 (summary over all phases)",
		Cols:  []string{"policy", "avg queue(KB)", "avg utilization"},
	}
	for _, p := range policies {
		net := newNet(o, o.Seed)
		fab := topo.Star(net, 13, topo.DefaultConfig())
		recv := fab.Hosts[12]
		stop := deploy(net, fab, p, o)
		start := rdmaStarter(net, 25*simtime.Gbps, nil)
		hot := fab.Leaves[0].Ports[12]
		hq := hot.Queues[0]

		// Each phase launches its incast; flows from the previous phase
		// stop being renewed (generation routines check the active phase).
		active := 0
		launch := func(idx int, ph phase) func() {
			return func() {
				active = idx
				for _, s := range fab.Hosts[:ph.senders] {
					s := s
					for i := 0; i < ph.flows; i++ {
						var loop func()
						loop = func() {
							start(s, recv, simtime.MB, func() {
								if active == idx {
									net.Q.After(workload.ExpJitter(net.Rng, 50*simtime.Microsecond), loop)
								}
							})
						}
						loop()
					}
				}
			}
		}
		var sched []workload.Phase
		for i, ph := range phases {
			sched = append(sched, workload.Phase{Duration: phaseDur, Run: launch(i, ph)})
		}
		workload.RunPhases(net, sched)

		var totalQ, totalU float64
		for i, ph := range phases {
			startT := simtime.Time(simtime.Duration(i) * phaseDur)
			net.RunUntil(startT)
			in0, tx0 := hq.ByteTimeIntegral(), hot.TxBytesTotal
			net.RunUntil(startT.Add(phaseDur))
			avgQ := (hq.ByteTimeIntegral() - in0) / phaseDur.Seconds()
			util := hot.Utilization(hot.TxBytesTotal-tx0, phaseDur)
			totalQ += avgQ
			totalU += util
			t.AddRow(p.Name, i+1, fmt.Sprintf("%dx%d", ph.senders, ph.flows), kb(avgQ), util)
		}
		summary.AddRow(p.Name, kb(totalQ/float64(len(phases))), totalU/float64(len(phases)))
		stop()
	}
	summary.Notes = append(summary.Notes,
		"paper: ACC reduces queue length by an order of magnitude and improves avg throughput 26.1%")
	return []*Table{t, summary}
}

// runFig7 reproduces Figure 7: two senders to one receiver with message
// sizes {1KB,10KB,100KB,1MB,10MB} at 20% and 60% load. Reports average and
// tail FCT per size (normalized to ACC), plus the leaf queue (7c) and ToR
// throughput (7d).
func runFig7(o Options) []*Table {
	sizes := []int64{simtime.KB, 10 * simtime.KB, 100 * simtime.KB, simtime.MB, 10 * simtime.MB}
	sizeNames := []string{"1KB", "10KB", "100KB", "1MB", "10MB"}
	loads := []float64{0.2, 0.6}
	policies := []Policy{accPolicy(), secn1(), secn2(25)}

	var tables []*Table
	queueTbl := &Table{
		Title: "Figure 7(c): leaf queue length at 60% load",
		Cols:  []string{"policy", "avg queue(KB)", "std dev(KB)"},
	}
	tputTbl := &Table{
		Title: "Figure 7(d): ToR switch throughput at 60% load",
		Cols:  []string{"policy", "throughput(Gbps)"},
	}

	for _, load := range loads {
		// summaries[size][policy]
		avg := make([][]float64, len(sizes))
		p99 := make([][]float64, len(sizes))
		p999 := make([][]float64, len(sizes))
		for i := range sizes {
			avg[i] = make([]float64, len(policies))
			p99[i] = make([]float64, len(policies))
			p999[i] = make([]float64, len(policies))
		}
		for pi, p := range policies {
			net := newNet(o, o.Seed)
			fab := topo.Star(net, 3, topo.DefaultConfig())
			stop := deploy(net, fab, p, o)
			var col stats.FCTCollector
			start := rdmaStarter(net, 25*simtime.Gbps, &col)
			recv := fab.Hosts[2]

			// Random messages from both senders, Poisson at the target load
			// of the receiver's 25G link.
			rng := rand.New(rand.NewSource(o.Seed + 77))
			var meanSize float64
			for _, s := range sizes {
				meanSize += float64(s)
			}
			meanSize /= float64(len(sizes))
			lambda := load * 25e9 / 8 / meanSize
			var arrive func()
			arrive = func() {
				src := fab.Hosts[rng.Intn(2)]
				size := sizes[rng.Intn(len(sizes))]
				start(src, recv, size, nil)
				net.Q.After(simtime.Duration(rng.ExpFloat64()/lambda*1e9), arrive)
			}
			net.Q.After(0, arrive)

			hot := fab.Leaves[0].Ports[2]
			hq := hot.Queues[0]
			var qmon *stats.QueueMonitor
			if load == 0.6 {
				qmon = stats.MonitorQueue(net, hq, 20*simtime.Microsecond)
			}
			dur := o.dur(20 * simtime.Millisecond)
			net.RunUntil(simtime.Time(dur))
			stop()

			for si, sz := range sizes {
				recs := col.Filter(func(r stats.FlowRecord) bool { return r.Size == sz })
				s := stats.Summarize(recs)
				avg[si][pi] = float64(s.Avg)
				p99[si][pi] = float64(s.P99)
				p999[si][pi] = float64(s.P999)
			}
			if load == 0.6 {
				queueTbl.AddRow(p.Name, kb(qmon.Series.Avg()), kb(qmon.Series.Std()))
				tputTbl.AddRow(p.Name, gbps(hot.TxBytesTotal, dur))
				qmon.Stop()
			}
		}
		t := &Table{
			Title: fmt.Sprintf("Figure 7: FCT at %.0f%% load (normalized to ACC)", load*100),
			Cols:  []string{"size", "metric", "ACC", "SECN1", "SECN2"},
		}
		cell := func(vals []float64, pi int) any {
			if vals[pi] == 0 || vals[0] == 0 {
				return "n/a" // no completed flows of this size for a policy
			}
			return normalize(vals[pi], vals[0])
		}
		for si := range sizes {
			if avg[si][0] == 0 {
				continue
			}
			t.AddRow(sizeNames[si], "avg", 1.0, cell(avg[si], 1), cell(avg[si], 2))
			t.AddRow(sizeNames[si], "p99", 1.0, cell(p99[si], 1), cell(p99[si], 2))
			t.AddRow(sizeNames[si], "p99.9", 1.0, cell(p999[si], 1), cell(p999[si], 2))
		}
		tables = append(tables, t)
	}
	tables = append(tables, queueTbl, tputTbl)
	return tables
}
