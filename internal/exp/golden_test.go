package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the checked-in golden tables under testdata/")

// TestGoldenTables pins the rendered fig8 and robust-linkfail tables to
// checked-in byte-exact golden files. TestDeterminismSameSeed only proves a
// run agrees with itself; this test proves the output also agrees with the
// output of every previous checkout — the property that lets the event
// scheduler (or any other engine internals) be rewritten with confidence.
// Regenerate deliberately with:
//
//	go test ./internal/exp -run TestGoldenTables -update-golden
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	for _, id := range []string{"fig8", "robust-linkfail"} {
		tables, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got := renderTables(tables)
		path := filepath.Join("testdata", id+".golden")
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (regenerate with -update-golden): %v", id, err)
		}
		if got != string(want) {
			t.Errorf("%s: output diverged from golden table:\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
		}
	}
}

// TestShardedGoldenIdentity proves `accsim -shards N` changes nothing: the
// windowed conservative driver (Options.Shards > 1 → netsim.SyncWindow at
// the cross-shard lookahead) must render byte-identical fig8 and
// robust-linkfail tables against the same goldens the sequential run is
// pinned to. Together with internal/psim's differential tests (true
// multi-queue sharding, bit-identical under GOMAXPROCS 1..N) this is the
// user-facing half of the parallel-simulation equivalence contract.
func TestShardedGoldenIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := DefaultOptions()
	o.Scale = 0.25
	o.OfflineEpisodes = 4
	o.Shards = 4
	for _, id := range []string{"fig8", "robust-linkfail"} {
		tables, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got := renderTables(tables)
		want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
		if err != nil {
			t.Fatalf("%s: missing golden (regenerate with -update-golden): %v", id, err)
		}
		if got != string(want) {
			t.Errorf("%s: -shards 4 output diverged from the sequential golden:\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
		}
	}
}
