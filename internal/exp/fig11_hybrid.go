package exp

import (
	"fmt"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

func init() {
	register("fig11", "traffic distributions used in the large-scale simulation (input CDFs)", runFig11)
	register("hybrid", "§6 extension: hybrid design (local inference, centralized training) vs D-ACC", runHybrid)
}

// runFig11 renders Figure 11: the WebSearch and DataMining flow-size CDFs
// driving the §5.4 simulations.
func runFig11(o Options) []*Table {
	var tables []*Table
	for _, c := range []workload.CDF{workload.WebSearch(), workload.DataMining()} {
		t := &Table{
			Title: "Figure 11: " + c.Name + " flow-size CDF",
			Cols:  []string{"flow size", "P(size <= x)"},
		}
		for _, pt := range c.Points {
			t.AddRow(fmtBytes(pt.Bytes), pt.Prob)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("mean flow size %.0f bytes", c.Mean()))
		tables = append(tables, t)
	}
	return tables
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.3gGB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.3gMB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.3gKB", b/1e3)
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// runHybrid evaluates the §6 future-work proposal: distributed inference
// with centralized training, against fully distributed D-ACC and static
// SECN1, on the fig14 fabric and workload.
func runHybrid(o Options) []*Table {
	t := &Table{
		Title: "§6 extension: hybrid design (normalized to D-ACC)",
		Cols:  []string{"policy", "avg FCT", "p99 FCT"},
	}
	dur := o.dur(8 * simtime.Millisecond)
	run := func(kind string) stats.FCTSummary {
		net := newNet(o, o.Seed)
		fab := topo.LeafSpine(net, 4, 8, 2, topo.DefaultConfig())
		var stop func()
		switch kind {
		case "D-ACC":
			stop = deploy(net, fab, accPolicy(), o)
		case "Hybrid":
			h := acc.NewHybrid(net, fab.Switches(), PretrainedModel(o.OfflineEpisodes), acc.DefaultHybridConfig())
			h.SetEpsilon(0.01)
			stop = h.Stop
		default:
			stop = deploy(net, fab, secn1(), o)
		}
		var col stats.FCTCollector
		gen := workload.StartPoisson(net, workload.PoissonConfig{
			Hosts:  fab.Hosts,
			Sizes:  workload.WebSearch(),
			Load:   0.7,
			HostBW: 25 * simtime.Gbps,
			Start:  rdmaStarter(net, 25*simtime.Gbps, &col),
		})
		net.RunUntil(simtime.Time(dur))
		gen.Stop()
		net.RunUntil(simtime.Time(2 * dur))
		stop()
		return stats.Summarize(col.Records)
	}
	base := run("D-ACC")
	hy := run("Hybrid")
	st := run("SECN1")
	t.AddRow("D-ACC", 1.0, 1.0)
	t.AddRow("Hybrid", normalize(float64(hy.Avg), float64(base.Avg)), normalize(float64(hy.P99), float64(base.P99)))
	t.AddRow("SECN1", normalize(float64(st.Avg), float64(base.Avg)), normalize(float64(st.P99), float64(base.P99)))
	t.Notes = append(t.Notes,
		"paper §6: hybrid keeps D-ACC's microsecond actuation while a controller owns training — a proposed refinement, not evaluated in the paper")
	return []*Table{t}
}
