package acc

import (
	"math/rand"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// HillClimber is a non-learning baseline tuner: the same telemetry and
// actuation interface as the DRL Tuner, but driven by per-queue stochastic
// hill climbing on the measured reward instead of a Q-network. It answers
// the natural question the paper leaves implicit — does ECN tuning need RL,
// or would greedy local search do? — and is benchmarked against ACC in the
// `ablation-hillclimb` experiment.
//
// Each queue keeps a current template index; every Probation intervals it
// evaluates mean reward, then either keeps the current action (if reward
// improved or stayed) or reverts and tries a random neighbour.
type HillClimber struct {
	Net    *netsim.Network
	Switch *netsim.Switch
	Cfg    Config
	// Probation is how many ΔT intervals each trial action is held.
	Probation int

	rng     *rand.Rand
	queues  []*hcQueue
	stopped bool

	Trials  uint64
	Reverts uint64
}

type hcQueue struct {
	port *netsim.Port
	q    *netsim.EgressQueue

	share        float64
	lastTx       uint64
	lastIntegral float64

	action     int     // current (trial) action
	bestAction int     // last accepted action
	bestReward float64 // its mean reward
	accum      float64 // reward accumulator over the probation window
	slots      int
}

// NewHillClimber attaches the baseline tuner to sw.
func NewHillClimber(net *netsim.Network, sw *netsim.Switch, cfg Config, probation int) *HillClimber {
	cfg = cfg.normalize()
	if probation <= 0 {
		probation = 10
	}
	h := &HillClimber{
		Net:       net,
		Switch:    sw,
		Cfg:       cfg,
		Probation: probation,
		rng:       rand.New(rand.NewSource(net.Rng.Int63())),
	}
	for _, p := range sw.Ports {
		sumW := 0
		for _, q := range p.Queues {
			sumW += q.Weight
		}
		for _, q := range p.Queues {
			if !q.ECNEnabled || !cfg.tunesPrio(q.Prio) {
				continue
			}
			share := 1.0
			if sumW > 0 {
				share = float64(q.Weight) / float64(sumW)
			}
			mid := len(cfg.Template) / 2
			hq := &hcQueue{port: p, q: q, share: share, action: mid, bestAction: mid, bestReward: -1}
			q.RED = cfg.Template[mid]
			h.queues = append(h.queues, hq)
		}
	}
	h.schedule()
	return h
}

// Stop halts the loop.
func (h *HillClimber) Stop() { h.stopped = true }

func (h *HillClimber) schedule() {
	h.Net.Q.After(h.Cfg.Period, func() {
		if h.stopped {
			return
		}
		for _, q := range h.queues {
			h.tick(q)
		}
		h.schedule()
	})
}

func (h *HillClimber) tick(hq *hcQueue) {
	txDelta := hq.q.TxBytes - hq.lastTx
	integ := hq.q.ByteTimeIntegral()
	integDelta := integ - hq.lastIntegral
	hq.lastTx = hq.q.TxBytes
	hq.lastIntegral = integ

	window := h.Cfg.Period.Seconds()
	util := clamp01(float64(txDelta) * 8 / (float64(hq.port.Bandwidth) * hq.share * window))
	avgQ := integDelta / window
	hq.accum += Reward(h.Cfg.W1, h.Cfg.W2, util, h.Cfg.Reward(avgQ))
	hq.slots++
	if hq.slots < h.Probation {
		return
	}
	mean := hq.accum / float64(hq.slots)
	hq.accum, hq.slots = 0, 0

	if mean >= hq.bestReward {
		// Accept the trial; it becomes the incumbent.
		hq.bestAction = hq.action
		hq.bestReward = mean
	} else {
		// Revert to the incumbent and decay its score so the climber keeps
		// re-validating under nonstationary traffic.
		hq.action = hq.bestAction
		hq.bestReward = 0.9*hq.bestReward + 0.1*mean
		h.Reverts++
	}
	// Propose a neighbour: ±1 or ±2 template steps.
	step := 1 + h.rng.Intn(2)
	if h.rng.Intn(2) == 0 {
		step = -step
	}
	next := hq.bestAction + step
	if next < 0 {
		next = 0
	}
	if next >= len(h.Cfg.Template) {
		next = len(h.Cfg.Template) - 1
	}
	hq.action = next
	hq.q.RED = h.Cfg.Template[next]
	h.Trials++
}

// hcDuration is a helper exposing how long one full probe cycle takes.
func (h *HillClimber) hcDuration() simtime.Duration {
	return simtime.Duration(h.Probation) * h.Cfg.Period
}
