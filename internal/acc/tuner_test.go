package acc

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// buildIncast wires a star fabric with n senders and one receiver and
// launches continuous incast traffic.
func buildIncast(seed int64, n int) (*netsim.Network, *topo.Fabric) {
	net := netsim.New(seed)
	fab := topo.Star(net, n+1, topo.DefaultConfig())
	recv := fab.Hosts[n]
	params := dcqcn.DefaultParams(25 * simtime.Gbps)
	for i := 0; i < n; i++ {
		src := fab.Hosts[i]
		var loop func(*dcqcn.Flow)
		loop = func(*dcqcn.Flow) {
			// Jittered restart: real request streams are not synchronized.
			net.Q.After(simtime.Duration(net.Rng.Int63n(int64(200*simtime.Microsecond))), func() {
				dcqcn.Start(net, src, recv, 2*simtime.MB, params, loop)
			})
		}
		dcqcn.Start(net, src, recv, 2*simtime.MB, params, loop)
	}
	return net, fab
}

func TestTunerActsAndLearns(t *testing.T) {
	net, fab := buildIncast(1, 8)
	cfg := DefaultConfig()
	cfg.RecordTrace = true
	tuner := NewTuner(net, fab.Leaves[0], nil, cfg)
	if tuner.Queues() != 9 {
		t.Fatalf("monitoring %d queues, want 9 (one per port)", tuner.Queues())
	}
	net.RunUntil(simtime.Time(20 * simtime.Millisecond))
	if tuner.Inferences == 0 {
		t.Fatal("tuner never ran inference")
	}
	if tuner.TrainRuns == 0 {
		t.Fatal("tuner never trained online")
	}
	if tuner.Agent.Memory.Len() == 0 {
		t.Fatal("no experience collected")
	}
	// The receiver-facing queue is hot: its trace must show threshold
	// changes (exploration at minimum).
	trace := tuner.QueueTrace(8)
	if trace.Len() < 10 {
		t.Fatalf("hot queue trace has only %d points", trace.Len())
	}
	changed := false
	for i := 1; i < trace.Len(); i++ {
		if trace.Values[i] != trace.Values[0] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("applied Kmin never changed")
	}
}

func TestBusyIdleGating(t *testing.T) {
	// With no traffic at all, every queue goes idle and inference stops.
	net := netsim.New(2)
	fab := topo.Star(net, 4, topo.DefaultConfig())
	cfg := DefaultConfig()
	tuner := NewTuner(net, fab.Leaves[0], nil, cfg)
	net.RunUntil(simtime.Time(5 * simtime.Millisecond))
	if tuner.Skipped == 0 {
		t.Fatal("no inference skips on an idle fabric")
	}
	// After warmup, skips should dominate inferences.
	if tuner.Skipped < tuner.Inferences {
		t.Fatalf("idle fabric: skipped=%d < inferences=%d", tuner.Skipped, tuner.Inferences)
	}

	// Control: gating disabled means zero skips.
	net2 := netsim.New(2)
	fab2 := topo.Star(net2, 4, topo.DefaultConfig())
	cfg2 := DefaultConfig()
	cfg2.BusyIdle = false
	tuner2 := NewTuner(net2, fab2.Leaves[0], nil, cfg2)
	net2.RunUntil(simtime.Time(5 * simtime.Millisecond))
	if tuner2.Skipped != 0 {
		t.Fatalf("gating disabled but %d skips", tuner2.Skipped)
	}
}

func TestBusyQueueNotGated(t *testing.T) {
	net, fab := buildIncast(3, 8)
	cfg := DefaultConfig()
	tuner := NewTuner(net, fab.Leaves[0], nil, cfg)
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	// The hot queue must keep receiving inferences: overall inference count
	// should be substantial (hot queue ticks every period).
	minTicks := uint64(10 * simtime.Millisecond / cfg.Period / 4)
	if tuner.Inferences < minTicks {
		t.Fatalf("inferences %d below %d despite persistent congestion", tuner.Inferences, minTicks)
	}
}

func TestTunerImprovesOverStaticWorstCase(t *testing.T) {
	// The paper's deployment pipeline: offline pre-training (§4.3), then
	// online operation with a small residual exploration. Under a persistent
	// 8:1 incast, ACC must keep a much shorter queue than a static
	// deep-threshold setting, without collapsing throughput.
	if testing.Short() {
		t.Skip("includes offline pre-training")
	}
	ocfg := DefaultOfflineConfig()
	ocfg.Episodes = 12
	ocfg.EpisodeTime = 8 * simtime.Millisecond
	pretrained := TrainOffline(ocfg)

	runCase := func(useACC bool) (avgQ float64, txBytes uint64) {
		// Long-lived 8:1 incast (flows outlive the experiment), so the queue
		// depth is governed purely by the marking threshold.
		net := netsim.New(4)
		fab := topo.Star(net, 9, topo.DefaultConfig())
		recv := fab.Hosts[8]
		params := dcqcn.DefaultParams(25 * simtime.Gbps)
		for i := 0; i < 8; i++ {
			dcqcn.Start(net, fab.Hosts[i], recv, 1<<40, params, nil)
		}
		sw := fab.Leaves[0]
		deep := DefaultTemplate()[19] // Kmin=10.24MB: effectively no marking
		sw.SetRED(deep)
		if useACC {
			cfg := DefaultConfig()
			agent := rl.NewAgent(rl.DefaultAgentConfig(cfg.StateDim(), len(cfg.Template)), net.Rng)
			agent.Eval.CopyFrom(pretrained.Eval)
			agent.Target.CopyFrom(pretrained.Eval)
			agent.SetEpsilon(0.05)
			NewTuner(net, sw, agent, cfg)
		}
		hot := sw.Ports[8].Queues[0]
		// Skip the warmup transient, then measure steady state.
		net.RunUntil(simtime.Time(15 * simtime.Millisecond))
		integ0, tx0 := hot.ByteTimeIntegral(), hot.TxBytes
		net.RunUntil(simtime.Time(45 * simtime.Millisecond))
		avgQ = (hot.ByteTimeIntegral() - integ0) / (30 * simtime.Millisecond).Seconds()
		return avgQ, hot.TxBytes - tx0
	}
	staticQ, staticTx := runCase(false)
	accQ, accTx := runCase(true)
	if accQ >= 0.75*staticQ {
		t.Fatalf("ACC avg queue %.0fKB not well below static deep threshold %.0fKB", accQ/1024, staticQ/1024)
	}
	if float64(accTx) < 0.7*float64(staticTx) {
		t.Fatalf("ACC throughput %.1fMB collapsed vs static %.1fMB", float64(accTx)/1e6, float64(staticTx)/1e6)
	}
}

func TestSystemExchange(t *testing.T) {
	net := netsim.New(5)
	fab := topo.LeafSpine(net, 2, 4, 2, topo.DefaultConfig())
	params := dcqcn.DefaultParams(25 * simtime.Gbps)
	// Cross-leaf incast keeps both tiers busy.
	recv := fab.HostsAt[0][0]
	for _, src := range fab.HostsAt[1] {
		src := src
		var loop func(*dcqcn.Flow)
		loop = func(*dcqcn.Flow) { dcqcn.Start(net, src, recv, simtime.MB, params, loop) }
		loop(nil)
	}
	scfg := DefaultSystemConfig()
	scfg.ExchangePeriod = simtime.Millisecond
	sys := NewSystem(net, fab.Switches(), nil, scfg)
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	if len(sys.Tuners) != 4 {
		t.Fatalf("%d tuners, want 4", len(sys.Tuners))
	}
	if sys.Exchanges == 0 {
		t.Fatal("no global replay exchanges happened")
	}
	if sys.Global.Len() == 0 {
		t.Fatal("global replay memory empty after exchanges")
	}
}

func TestSaveLoadModel(t *testing.T) {
	net, fab := buildIncast(6, 4)
	tuner := NewTuner(net, fab.Leaves[0], nil, DefaultConfig())
	net.RunUntil(simtime.Time(2 * simtime.Millisecond))

	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(path, "test", tuner.Agent, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, DefaultConfig().StateDim())
	a, b := tuner.Agent.Eval.Forward(x), m.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded model diverges: %v vs %v", a, b)
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel("/nonexistent/model.json"); err == nil {
		t.Fatal("expected error for missing file")
	}
	p := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(p, []byte("{"), 0o644)
	if _, err := LoadModel(p); err == nil {
		t.Fatal("expected error for corrupt file")
	}
	p2 := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(p2, []byte("{}"), 0o644)
	if _, err := LoadModel(p2); err == nil {
		t.Fatal("expected error for model without network")
	}
}

func TestCentralizedControllerTicks(t *testing.T) {
	net := netsim.New(7)
	fab := topo.LeafSpine(net, 2, 4, 2, topo.DefaultConfig())
	params := dcqcn.DefaultParams(25 * simtime.Gbps)
	recv := fab.HostsAt[0][0]
	for _, src := range fab.HostsAt[1] {
		src := src
		var loop func(*dcqcn.Flow)
		loop = func(*dcqcn.Flow) { dcqcn.Start(net, src, recv, simtime.MB, params, loop) }
		loop(nil)
	}
	c := NewCentralized(net, fab.Leaves, fab.Spines, DefaultCentralizedConfig())
	net.RunUntil(simtime.Time(20 * simtime.Millisecond))
	if c.Inferences == 0 {
		t.Fatal("centralized controller never inferred")
	}
	// Actuation must have reached the switches: every leaf shares one
	// config from the reduced template.
	leafRED := fab.Leaves[0].Ports[0].Queues[0].RED
	found := false
	for _, tc := range ReducedTemplate() {
		if tc == leafRED {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("leaf RED %v not from the reduced template", leafRED)
	}
	for _, leaf := range fab.Leaves {
		if got := leaf.Ports[0].Queues[0].RED; got != leafRED {
			t.Fatalf("leaves diverge: %v vs %v", got, leafRED)
		}
	}
}

func TestOfflineTrainingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("offline training is seconds-long")
	}
	cfg := DefaultOfflineConfig()
	cfg.Episodes = 4
	cfg.EpisodeTime = 5 * simtime.Millisecond
	var calls int
	cfg.Progress = func(ep int, eps float64) { calls++ }
	agent := TrainOffline(cfg)
	if agent == nil {
		t.Fatal("nil agent")
	}
	if calls != 4 {
		t.Fatalf("progress called %d times, want 4", calls)
	}
	if agent.Epsilon() >= 1 {
		t.Fatal("epsilon never decayed during offline training")
	}
	if agent.Memory.Len() == 0 {
		t.Fatal("no experience accumulated")
	}
}
