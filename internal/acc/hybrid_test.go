package acc

import (
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

func TestHybridControllerTrainsAndPushes(t *testing.T) {
	net := netsim.New(9)
	fab := topo.LeafSpine(net, 2, 4, 2, topo.DefaultConfig())
	params := dcqcn.DefaultParams(25 * simtime.Gbps)
	recv := fab.HostsAt[0][0]
	for _, src := range fab.HostsAt[1] {
		src := src
		var loop func(*dcqcn.Flow)
		loop = func(*dcqcn.Flow) { dcqcn.Start(net, src, recv, simtime.MB, params, loop) }
		loop(nil)
	}
	hc := DefaultHybridConfig()
	hc.CollectPeriod = simtime.Millisecond
	hc.PushDelay = simtime.Millisecond
	h := NewHybrid(net, fab.Switches(), nil, hc)
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	if h.TrainRuns == 0 {
		t.Fatal("controller never trained")
	}
	if h.Pushes == 0 {
		t.Fatal("controller never pushed weights")
	}
	// Switch tuners must never train locally in hybrid mode.
	for _, tn := range h.Tuners {
		if tn.TrainRuns != 0 {
			t.Fatalf("switch tuner trained locally %d times in hybrid mode", tn.TrainRuns)
		}
	}
	// After a push, switch weights equal the controller snapshot (modulo a
	// training step after the snapshot; compare across tuners instead).
	x := make([]float64, DefaultConfig().StateDim())
	a := h.Tuners[0].Agent.Eval.Forward(x)
	b := h.Tuners[1].Agent.Eval.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("switch models diverged despite centralized training: %v vs %v", a, b)
		}
	}
	h.Stop()
}

func TestHybridStop(t *testing.T) {
	net := netsim.New(10)
	fab := topo.Star(net, 4, topo.DefaultConfig())
	h := NewHybrid(net, fab.Switches(), nil, DefaultHybridConfig())
	net.RunUntil(simtime.Time(simtime.Millisecond))
	h.Stop()
	runs := h.TrainRuns
	net.RunUntil(simtime.Time(20 * simtime.Millisecond))
	if h.TrainRuns != runs {
		t.Fatal("controller kept training after Stop")
	}
}

func TestHybridSetEpsilon(t *testing.T) {
	net := netsim.New(11)
	fab := topo.Star(net, 4, topo.DefaultConfig())
	h := NewHybrid(net, fab.Switches(), nil, DefaultHybridConfig())
	h.SetEpsilon(0.123)
	for _, tn := range h.Tuners {
		if tn.Agent.Epsilon() != 0.123 {
			t.Fatalf("epsilon not applied: %v", tn.Agent.Epsilon())
		}
	}
}
