package acc

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// recordingFault counts samples and can drop every window or replace the
// observation with a canned one.
type recordingFault struct {
	calls    int
	dropAll  bool
	override *Observation
}

func (f *recordingFault) Sample(now simtime.Time, q int, obs Observation) (Observation, bool) {
	f.calls++
	if f.dropAll {
		return Observation{}, false
	}
	if f.override != nil {
		return *f.override, true
	}
	return obs, true
}

// TestTelemetryFaultDropsSuppressInference verifies a tuner whose collector
// loses every window performs no inference at all yet keeps ticking.
func TestTelemetryFaultDropsSuppressInference(t *testing.T) {
	net, fab := buildIncast(21, 4)
	cfg := DefaultConfig()
	tuner := NewTuner(net, fab.Leaves[0], nil, cfg)
	fault := &recordingFault{dropAll: true}
	tuner.SetTelemetryFault(fault)
	net.RunUntil(simtime.Time(3 * simtime.Millisecond))
	if fault.calls == 0 {
		t.Fatal("fault hook never consulted")
	}
	if tuner.TelemetryDrops == 0 {
		t.Fatal("drops not counted")
	}
	if tuner.Inferences != 0 {
		t.Fatalf("%d inferences despite a fully dropped collector", tuner.Inferences)
	}
	if tuner.Agent.Memory.Len() != 0 {
		t.Fatal("experience collected from dropped windows")
	}
}

// TestTelemetryFaultOverridesObservation verifies the delivered (possibly
// stale) observation is what the agent actually sees: an all-idle override
// on a congested fabric makes the busy/idle gate treat hot queues as idle.
func TestTelemetryFaultOverridesObservation(t *testing.T) {
	net, fab := buildIncast(22, 8)
	cfg := DefaultConfig()
	tuner := NewTuner(net, fab.Leaves[0], nil, cfg)
	idle := Observation{Slot: make([]float64, FeaturesPerSlot), Util: 0, AvgQ: 0}
	tuner.SetTelemetryFault(&recordingFault{override: &idle})
	net.RunUntil(simtime.Time(5 * simtime.Millisecond))
	// Constant zero observations give a constant reward, so the §4.2 gate
	// must eventually park every queue — even the congested one — proving
	// decisions ran on the faulted stream, not the live counters. The gate's
	// re-arm check uses the live queue depth, so the hot receiver-facing
	// queue keeps some inferences; the host-facing queues (live depth ~0)
	// must all park.
	if tuner.Skipped == 0 {
		t.Fatal("busy/idle gate never engaged on an all-idle telemetry stream")
	}
	if tuner.TelemetryDrops != 0 {
		t.Fatal("override path wrongly counted drops")
	}
}
