package acc

import (
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

func TestHillClimberProbesAndReverts(t *testing.T) {
	net, fab := buildIncast(12, 8)
	hc := NewHillClimber(net, fab.Leaves[0], DefaultConfig(), 5)
	net.RunUntil(simtime.Time(20 * simtime.Millisecond))
	hc.Stop()
	if hc.Trials == 0 {
		t.Fatal("hill climber never proposed a trial")
	}
	if hc.Reverts == 0 {
		t.Fatal("hill climber never reverted a bad trial (implausible under incast)")
	}
	// Applied config must always come from the template.
	hot := fab.Leaves[0].Ports[8].Queues[0]
	found := false
	for _, c := range DefaultConfig().Template {
		if c == hot.RED {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("applied RED %v not from template", hot.RED)
	}
}

func TestHillClimberStops(t *testing.T) {
	net := netsim.New(20)
	fab := topo.Star(net, 4, topo.DefaultConfig())
	hc := NewHillClimber(net, fab.Leaves[0], DefaultConfig(), 3)
	net.RunUntil(simtime.Time(2 * simtime.Millisecond))
	hc.Stop()
	trials := hc.Trials
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	if hc.Trials != trials {
		t.Fatal("climber kept probing after Stop")
	}
	if hc.hcDuration() != 3*DefaultConfig().Period {
		t.Fatal("probe cycle duration wrong")
	}
}

func TestTunerPrioFilter(t *testing.T) {
	net := netsim.New(21)
	cfg := topo.DefaultConfig()
	w := make([]int, netsim.NumPrio)
	w[0], w[3] = 3, 7
	cfg.QueueWeights = w
	fab := topo.Star(net, 4, cfg)
	tcfg := DefaultConfig()
	tcfg.Prios = []int{3}
	tuner := NewTuner(net, fab.Leaves[0], nil, tcfg)
	// 4 ports x 1 queue (prio 3 only).
	if tuner.Queues() != 4 {
		t.Fatalf("monitoring %d queues, want 4 (prio-3 only)", tuner.Queues())
	}
}

func TestTunerPrioritizedReplayOption(t *testing.T) {
	net, fab := buildIncast(22, 4)
	cfg := DefaultConfig()
	cfg.PrioritizedAlpha = 0.6
	tuner := NewTuner(net, fab.Leaves[0], nil, cfg)
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	if tuner.TrainRuns == 0 {
		t.Fatal("prioritized training never ran")
	}
}

func TestClosestAction(t *testing.T) {
	net := netsim.New(23)
	fab := topo.Star(net, 2, topo.DefaultConfig())
	cfg := DefaultConfig()
	// Program a RED close to template entry Kmin=160KB before attaching.
	fab.Leaves[0].SetRED(cfg.Template[6]) // Kmin=160KB Pmax=10%
	tuner := NewTuner(net, fab.Leaves[0], nil, cfg)
	// The initial action of every queue should resolve to a 160KB entry.
	for i := range tuner.queues {
		k := cfg.Template[tuner.queues[i].action].Kmin
		if k != 160*simtime.KB {
			t.Fatalf("closest action Kmin %d, want 160KB", k/simtime.KB)
		}
	}
}

func TestDWRRShareNormalization(t *testing.T) {
	net := netsim.New(24)
	cfg := topo.DefaultConfig()
	w := make([]int, netsim.NumPrio)
	w[0], w[3] = 3, 7
	cfg.QueueWeights = w
	fab := topo.Star(net, 2, cfg)
	tuner := NewTuner(net, fab.Leaves[0], nil, DefaultConfig())
	for _, qs := range tuner.queues {
		want := 0.3
		if qs.q.Prio == 3 {
			want = 0.7
		}
		if qs.share < want-1e-9 || qs.share > want+1e-9 {
			t.Fatalf("prio %d share %v, want %v", qs.q.Prio, qs.share, want)
		}
	}
}
