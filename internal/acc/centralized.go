package acc

import (
	"math/rand"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/simtime"
)

// CentralizedConfig parameterizes the C-ACC baseline of §5.4: one controller
// collects aggregated state from every switch, picks a per-layer ECN setting
// (the paper's simplification "apply the same setting for all uplink ports
// or downlink ports because of the symmetric topology"), and actuates it
// only after a control-loop delay — the centralized design's fundamental
// handicap (§3.2).
type CentralizedConfig struct {
	Period       simtime.Duration // controller decision interval
	ControlDelay simtime.Duration // collect + inference + actuation latency
	HistoryK     int

	W1, W2 float64
	Reward RewardFunc

	// Template is the reduced per-layer action set ("we sampled some of the
	// actions to further reduce action space ... to hundreds of actions").
	Template []red.Config

	Explore     bool
	TrainOnline bool
	Agent       rl.AgentConfig
}

// ReducedTemplate samples the 20-entry template down to 10 entries (5 Kmin
// levels × 2 Pmax), giving 10² = 100 joint leaf/spine actions.
func ReducedTemplate() []red.Config {
	full := DefaultTemplate()
	var out []red.Config
	for n := 0; n < ELevels; n += 2 {
		out = append(out, full[2*n], full[2*n+1])
	}
	return out
}

// DefaultCentralizedConfig mirrors the §3.2 discussion: a multi-millisecond
// control loop versus the distributed design's microseconds.
func DefaultCentralizedConfig() CentralizedConfig {
	return CentralizedConfig{
		Period:       1 * simtime.Millisecond,
		ControlDelay: 2 * simtime.Millisecond,
		HistoryK:     3,
		W1:           0.7,
		W2:           0.3,
		Reward:       StepReward,
		Template:     ReducedTemplate(),
		Explore:      true,
		TrainOnline:  true,
	}
}

// layerObs is the per-tick aggregate telemetry of one switch layer.
type layerObs struct {
	qLevel     float64 // max queue-length level across the layer, /10
	util       float64 // mean utilization of active queues
	markedRate float64
	actionNorm float64
}

// Centralized is the C-ACC controller.
type Centralized struct {
	Net    *netsim.Network
	Agent  *rl.Agent
	Cfg    CentralizedConfig
	Leaves []*netsim.Switch
	Spines []*netsim.Switch

	rng *rand.Rand

	layers [][]*netsim.Switch // [leafLayer, spineLayer]
	// Per-layer current action index into Template.
	layerAction []int
	// Telemetry deltas per queue: previous counters.
	lastTx, lastMarked map[*netsim.EgressQueue]uint64
	lastInteg          map[*netsim.EgressQueue]float64

	hist       [][]float64
	prevState  []float64
	prevAction int
	havePrev   bool

	Inferences uint64
	stopped    bool
}

// NewCentralized deploys the centralized controller over the fabric layers.
func NewCentralized(net *netsim.Network, leaves, spines []*netsim.Switch, cfg CentralizedConfig) *Centralized {
	if cfg.Period <= 0 {
		cfg.Period = simtime.Millisecond
	}
	if cfg.HistoryK <= 0 {
		cfg.HistoryK = 3
	}
	if cfg.Reward == nil {
		cfg.Reward = StepReward
	}
	if len(cfg.Template) == 0 {
		cfg.Template = ReducedTemplate()
	}
	if cfg.W1 == 0 && cfg.W2 == 0 {
		cfg.W1, cfg.W2 = 0.7, 0.3
	}
	c := &Centralized{
		Net:        net,
		Cfg:        cfg,
		Leaves:     leaves,
		Spines:     spines,
		rng:        rand.New(rand.NewSource(net.Rng.Int63())),
		layers:     [][]*netsim.Switch{leaves, spines},
		lastTx:     make(map[*netsim.EgressQueue]uint64),
		lastMarked: make(map[*netsim.EgressQueue]uint64),
		lastInteg:  make(map[*netsim.EgressQueue]float64),
	}
	c.layerAction = make([]int, len(c.layers))
	nActions := len(cfg.Template) * len(cfg.Template)
	ac := cfg.Agent
	if ac.StateDim == 0 {
		ac = rl.DefaultAgentConfig(c.stateDim(), nActions)
		// A joint action space of ~100 needs a wider network and slower
		// exploration decay to cover it.
		ac.Hidden = []int{40, 64, 64}
	}
	c.Agent = rl.NewAgent(ac, net.Rng)
	c.schedule()
	return c
}

func (c *Centralized) stateDim() int {
	return len(c.layers) * FeaturesPerSlot * c.Cfg.HistoryK
}

// Stop halts the control loop.
func (c *Centralized) Stop() { c.stopped = true }

func (c *Centralized) schedule() {
	c.Net.Q.After(c.Cfg.Period, func() {
		if c.stopped {
			return
		}
		c.tick()
		c.schedule()
	})
}

// observeLayer aggregates one layer's telemetry and per-queue rewards.
func (c *Centralized) observeLayer(li int) (layerObs, float64, int) {
	var obs layerObs
	var rewardSum float64
	var active int
	window := c.Cfg.Period.Seconds()
	count := 0
	for _, sw := range c.layers[li] {
		for _, p := range sw.Ports {
			for _, q := range p.Queues {
				if !q.ECNEnabled {
					continue
				}
				count++
				txDelta := q.TxBytes - c.lastTx[q]
				markDelta := q.TxMarkedBytes - c.lastMarked[q]
				integ := q.ByteTimeIntegral()
				integDelta := integ - c.lastInteg[q]
				c.lastTx[q] = q.TxBytes
				c.lastMarked[q] = q.TxMarkedBytes
				c.lastInteg[q] = integ

				util := clamp01(float64(txDelta) * 8 / (float64(p.Bandwidth) * window))
				marked := clamp01(float64(markDelta) * 8 / (float64(p.Bandwidth) * window))
				avgQ := integDelta / window

				if lv := float64(LevelOf(q.Bytes())) / float64(ELevels); lv > obs.qLevel {
					obs.qLevel = lv
				}
				if txDelta > 0 {
					active++
					obs.util += util
					obs.markedRate += marked
					rewardSum += Reward(c.Cfg.W1, c.Cfg.W2, util, c.Cfg.Reward(avgQ))
				}
			}
		}
	}
	if active > 0 {
		obs.util /= float64(active)
		obs.markedRate /= float64(active)
	}
	obs.actionNorm = float64(c.layerAction[li]) / float64(len(c.Cfg.Template)-1)
	return obs, rewardSum, active
}

func (c *Centralized) tick() {
	slot := make([]float64, 0, len(c.layers)*FeaturesPerSlot)
	var rewardSum float64
	var active int
	for li := range c.layers {
		obs, rs, act := c.observeLayer(li)
		slot = append(slot, obs.qLevel, obs.util, obs.markedRate, obs.actionNorm)
		rewardSum += rs
		active += act
	}
	reward := 0.5 // neutral when the fabric is silent
	if active > 0 {
		reward = rewardSum / float64(active)
	}

	c.hist = append(c.hist, slot)
	if len(c.hist) > c.Cfg.HistoryK {
		c.hist = c.hist[1:]
	}
	state := make([]float64, 0, c.stateDim())
	for i := len(c.hist); i < c.Cfg.HistoryK; i++ {
		state = append(state, make([]float64, len(c.layers)*FeaturesPerSlot)...)
	}
	for _, s := range c.hist {
		state = append(state, s...)
	}

	if c.havePrev {
		c.Agent.Observe(rl.Transition{State: c.prevState, Action: c.prevAction, Reward: reward, Next: state})
		if c.Cfg.TrainOnline {
			c.Agent.TrainStep(c.rng)
		}
	}

	var action int
	if c.Cfg.Explore {
		action = c.Agent.Act(state, c.rng)
	} else {
		action = c.Agent.ActGreedy(state)
	}
	c.Inferences++
	c.prevState, c.prevAction, c.havePrev = state, action, true

	// The centralized design's Achilles heel: actuation lands only after the
	// control-loop delay (§3.2 "long latency for collecting network state
	// and updating ECN configuration").
	leafIdx := action / len(c.Cfg.Template)
	spineIdx := action % len(c.Cfg.Template)
	c.Net.Q.After(c.Cfg.ControlDelay, func() {
		if c.stopped {
			return
		}
		c.applyLayer(0, leafIdx)
		c.applyLayer(1, spineIdx)
	})
}

func (c *Centralized) applyLayer(li, tmplIdx int) {
	c.layerAction[li] = tmplIdx
	for _, sw := range c.layers[li] {
		sw.SetRED(c.Cfg.Template[tmplIdx])
	}
}
