// Package acc implements the paper's contribution: automatic ECN-threshold
// tuning by multi-agent deep reinforcement learning. One Tuner attaches to
// each switch (the distributed D-ACC design of §3.2); it observes per-queue
// telemetry each ΔT, selects an ECN template (Kmin, Kmax, Pmax) with a
// Double-DQN agent, applies it through the switch's configuration interface,
// and learns online from the resulting reward. A System couples the tuners
// through a global replay memory (§3.4); Centralized implements the C-ACC
// baseline the paper compares against (§5.4).
package acc

import (
	"math"

	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// EAlpha is α of the paper's discretization function E(n) = α·2ⁿ KB
// (equation 1; α=20 "in our system").
const EAlpha = 20

// ELevels is the number of discrete E(n) levels (n = 0..9).
const ELevels = 10

// E returns the paper's exponential discretization E(n) = 20·2ⁿ KB in
// bytes, clamping n into [0, ELevels-1].
func E(n int) int {
	if n < 0 {
		n = 0
	}
	if n >= ELevels {
		n = ELevels - 1
	}
	return EAlpha * (1 << uint(n)) * simtime.KB
}

// LevelOf returns n = argmin_n E(n) >= bytes, or ELevels when bytes exceeds
// E(9) (the "off the scale" bucket used by the reward and by state
// discretization).
func LevelOf(bytes int) int {
	for n := 0; n < ELevels; n++ {
		if E(n) >= bytes {
			return n
		}
	}
	return ELevels
}

// KmaxChoices are the coarse high-threshold settings of §3.3 ("throughput is
// not sensitive to the high marking threshold when it is larger than 1MB").
func KmaxChoices() []int {
	return []int{1 * simtime.MB, 2 * simtime.MB, 5 * simtime.MB, 10 * simtime.MB}
}

// PmaxChoices returns the §3.3 marking-probability grid {1%, j·5%}.
func PmaxChoices() []float64 {
	out := []float64{0.01}
	for j := 1; j <= 20; j++ {
		out = append(out, float64(j)*0.05)
	}
	return out
}

// FullTemplate enumerates the complete discretized action space: every
// (Kmin=E(n), Kmax, Pmax) combination with Kmin <= Kmax. This is the space
// the paper's §3.2 sizing discussion counts; training over all of it is
// possible but slow, so DefaultTemplate curates the deployed subset.
func FullTemplate() []red.Config {
	var out []red.Config
	for _, kmax := range KmaxChoices() {
		for n := 0; n < ELevels; n++ {
			kmin := E(n)
			if kmin > kmax {
				continue
			}
			for _, p := range PmaxChoices() {
				out = append(out, red.Config{Kmin: kmin, Kmax: kmax, Pmax: p})
			}
		}
	}
	return out
}

// DefaultTemplate is the 20-entry ECN configuration template installed in
// the forwarding chip (§4.1 "configurator maps the action into ECN
// template"); its size matches the paper's 20-node output layer (§6). The
// entries sweep Kmin over all ten E(n) levels at two marking aggressiveness
// levels, with Kmax tied to Kmin but within the §3.3 coarse choices.
func DefaultTemplate() []red.Config {
	var out []red.Config
	for n := 0; n < ELevels; n++ {
		kmin := E(n)
		kmax := 8 * kmin
		if kmax < simtime.MB {
			kmax = simtime.MB
		}
		if kmax > 10*simtime.MB {
			kmax = 10 * simtime.MB
		}
		out = append(out,
			red.Config{Kmin: kmin, Kmax: kmax, Pmax: 0.10},
			red.Config{Kmin: kmin, Kmax: kmax, Pmax: 0.50},
		)
	}
	return out
}

// RewardFunc maps average queue length (bytes) to the latency term D(L) of
// the reward r = ω1·T(R) + ω2·D(L) (equation 2).
type RewardFunc func(avgQueueBytes float64) float64

// StepReward is the paper's Figure-4 mapping: D(L) = 1 − n/10 with
// n = argmin_n E(n) >= L; fine-grained at shallow depths, coarse at large
// ones (Appendix .1, Design-2).
func StepReward(avgQueueBytes float64) float64 {
	n := LevelOf(int(math.Ceil(avgQueueBytes)))
	return 1 - float64(n)/float64(ELevels)
}

// LinearReward is the Appendix's Design-1 ablation: D(L) = 1 − L/Qmax with
// Qmax = 10MB, which the paper shows fails to differentiate actions.
func LinearReward(avgQueueBytes float64) float64 {
	d := 1 - avgQueueBytes/float64(10*simtime.MB)
	if d < 0 {
		return 0
	}
	return d
}

// Reward combines link utilization and the queue-length term with the
// operator weights (ω1=0.7, ω2=0.3 recommended for storage, §3.3).
func Reward(w1, w2, utilization float64, d float64) float64 {
	if utilization > 1 {
		utilization = 1
	}
	return w1*utilization + w2*d
}
