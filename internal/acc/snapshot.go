package acc

import (
	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/snap/codec"
)

// Snapshot support. Tuners and Systems are restored by overlay: the world
// reconstructs them with the same constructor calls (drawing the same
// construction-time RNG values, assigning the same event sequence
// numbers), the restored eventq wipes the freshly armed timers, and
// RestoreState fast-forwards the tuner's private RNG stream, overlays the
// per-queue learning state, and re-arms the ΔT tick at its recorded
// (time, seq) slot.

// SaveState writes the tuner's dynamic state: RNG position, counters, tick
// timer slot, and per-queue collector/learning state. The agent is saved
// separately by its owner (System.SaveState, or the world for a standalone
// tuner) because agents may be shared across tuners.
func (t *Tuner) SaveState(w *codec.Writer) {
	w.Tag("acc-tuner")
	w.U64(t.rngSrc.Draws())
	w.Int(t.ticks)
	w.U64(t.Inferences)
	w.U64(t.Skipped)
	w.U64(t.TrainRuns)
	w.U64(t.TelemetryDrops)
	w.Bool(t.stopped)
	eventq.SaveTimer(w, t.tickEv)
	w.Int(len(t.queues))
	for _, qs := range t.queues {
		w.Int(len(qs.hist))
		for _, slot := range qs.hist {
			w.F64s(slot)
		}
		w.Bool(qs.prevState != nil)
		if qs.prevState != nil {
			w.F64s(qs.prevState)
		}
		w.Int(qs.prevAction)
		w.Int(qs.action)
		w.U64(qs.lastTx)
		w.U64(qs.lastMarked)
		w.F64(qs.lastIntegral)
		w.F64(qs.lastReward)
		w.Int(qs.sameReward)
		w.Bool(qs.idle)
		qs.KminTrace.SaveState(w)
		qs.RewardTrace.SaveState(w)
	}
}

// RestoreState overlays saved state onto a freshly constructed tuner for
// the same switch and config.
func (t *Tuner) RestoreState(r *codec.Reader) {
	r.Expect("acc-tuner")
	if err := t.rngSrc.SkipTo(r.U64()); err != nil {
		r.Fail("tuner rng: %v", err)
		return
	}
	t.ticks = r.Int()
	t.Inferences = r.U64()
	t.Skipped = r.U64()
	t.TrainRuns = r.U64()
	t.TelemetryDrops = r.U64()
	t.stopped = r.Bool()
	t.tickEv = t.Net.Q.RestoreTimer(r, t.tickFn)
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(t.queues) {
		r.Fail("tuner monitors %d queues, snapshot has %d", len(t.queues), n)
		return
	}
	for _, qs := range t.queues {
		h := r.Int()
		if r.Err() != nil || h < 0 || h > t.Cfg.HistoryK {
			r.Fail("queue history length %d out of range", h)
			return
		}
		qs.hist = qs.hist[:0]
		for i := 0; i < h; i++ {
			qs.hist = append(qs.hist, r.F64s())
		}
		if r.Bool() {
			qs.prevState = r.F64s()
		} else {
			qs.prevState = nil
		}
		qs.prevAction = r.Int()
		qs.action = r.Int()
		qs.lastTx = r.U64()
		qs.lastMarked = r.U64()
		qs.lastIntegral = r.F64()
		qs.lastReward = r.F64()
		qs.sameReward = r.Int()
		qs.idle = r.Bool()
		qs.KminTrace.RestoreState(r)
		qs.RewardTrace.RestoreState(r)
		if r.Err() != nil {
			return
		}
	}
}

// SaveState writes the whole deployment's dynamic state: the exchange
// loop, the global replay, every agent (once, when shared), and every
// tuner.
func (s *System) SaveState(w *codec.Writer) {
	w.Tag("acc-system")
	w.U64(s.Exchanges)
	w.Bool(s.stopped)
	eventq.SaveTimer(w, s.exchEv)
	s.Global.SaveState(w)
	if s.Cfg.ShareModel {
		s.Tuners[0].Agent.SaveState(w)
	} else {
		for _, t := range s.Tuners {
			t.Agent.SaveState(w)
		}
	}
	for _, t := range s.Tuners {
		t.SaveState(w)
	}
}

// RestoreState overlays saved state onto a freshly constructed System with
// the same switches and config.
func (s *System) RestoreState(r *codec.Reader) {
	r.Expect("acc-system")
	s.Exchanges = r.U64()
	s.stopped = r.Bool()
	s.exchEv = s.Net.Q.RestoreTimer(r, s.exchFn)
	s.Global.RestoreState(r)
	if s.Cfg.ShareModel {
		s.Tuners[0].Agent.RestoreState(r)
	} else {
		for _, t := range s.Tuners {
			t.Agent.RestoreState(r)
		}
	}
	for _, t := range s.Tuners {
		t.RestoreState(r)
	}
}
