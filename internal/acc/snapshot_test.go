package acc

import (
	"bytes"
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
	"github.com/accnet/acc/internal/topo"
)

// trainedSystem deploys ACC on a multi-switch fabric under incast load
// and runs long enough for tuner ticks, training, and at least one
// global experience exchange — so the saved state exercises every field.
func trainedSystem(t *testing.T, seed int64) (*netsim.Network, *System) {
	t.Helper()
	net, fab := buildIncast(seed, 6)
	sys := NewSystem(net, fab.Switches(), nil, DefaultSystemConfig())
	net.RunUntil(simtime.Time(12 * simtime.Millisecond))
	var ticks int
	for _, tn := range sys.Tuners {
		ticks += tn.ticks
	}
	if ticks == 0 {
		t.Fatal("no tuner ticks; scenario exercises nothing")
	}
	return net, sys
}

// freshSystem reconstructs the same deployment the way the world restore
// protocol does: identical constructor calls on an identical fabric.
func freshSystem(t *testing.T, seed int64) (*netsim.Network, *System) {
	t.Helper()
	net, fab := buildIncast(seed, 6)
	return net, NewSystem(net, fab.Switches(), nil, DefaultSystemConfig())
}

// TestSystemSnapshotRoundTrip is the encode∘decode identity property for
// the whole ACC deployment: agents (networks + Adam + replay), tuner
// RNG positions, per-queue learning state, tick and exchange timers.
func TestSystemSnapshotRoundTrip(t *testing.T) {
	for seed := int64(60); seed <= 62; seed++ {
		_, sys := trainedSystem(t, seed)
		w := codec.NewWriter()
		sys.SaveState(w)
		img := w.Finish()

		_, sys2 := freshSystem(t, seed)
		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		sys2.RestoreState(r)
		if r.Err() != nil {
			t.Fatalf("seed %d: RestoreState: %v", seed, r.Err())
		}
		if sys2.Exchanges != sys.Exchanges {
			t.Fatalf("seed %d: exchanges %d, want %d", seed, sys2.Exchanges, sys.Exchanges)
		}
		for i := range sys.Tuners {
			if sys2.Tuners[i].ticks != sys.Tuners[i].ticks ||
				sys2.Tuners[i].Inferences != sys.Tuners[i].Inferences {
				t.Fatalf("seed %d: tuner %d ticks/inferences diverge", seed, i)
			}
		}
		w2 := codec.NewWriter()
		sys2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("seed %d: save∘restore∘save changed bytes (%d vs %d)", seed, len(img), len(img2))
		}
	}
}

// TestTunerSnapshotRejectsMismatch: restoring onto a tuner monitoring a
// different queue count must fail loudly, not half-overlay.
func TestTunerSnapshotRejectsMismatch(t *testing.T) {
	_, sys := trainedSystem(t, 63)
	w := codec.NewWriter()
	sys.Tuners[0].SaveState(w)
	img := w.Finish()

	net2 := netsim.New(63)
	fab2 := topo.Star(net2, 2, topo.DefaultConfig())
	other := NewSystem(net2, fab2.Switches(), nil, DefaultSystemConfig())
	r, err := codec.NewReader(img)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	other.Tuners[0].RestoreState(r)
	if r.Err() == nil {
		t.Fatal("tuner with a different queue count accepted the snapshot")
	}
}
