package acc

import (
	"math/rand"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/simtime"
)

// Hybrid implements the design the paper's §6 discussion proposes as
// potentially optimal: "the RL model inference and ECN update is
// decentralized for quickest response, while online training / RL model
// update is done by a centralized controller."
//
// Each switch keeps a local agent whose inference path is untouched (same
// microsecond actuation as D-ACC), but online optimization steps run only
// in the controller, over the union of all switches' experience; refreshed
// weights are pushed back to every switch after a model-sync delay that
// models the control-channel round trip.
type Hybrid struct {
	Net    *netsim.Network
	Tuners []*Tuner
	// Trainer is the controller-side agent that owns the training loop.
	Trainer *rl.Agent
	Cfg     HybridConfig

	rng       *rand.Rand
	stopped   bool
	Pushes    uint64 // model updates pushed to switches
	TrainRuns uint64
}

// HybridConfig parameterizes the hybrid deployment.
type HybridConfig struct {
	Tuner Config
	// CollectPeriod is how often the controller pulls experience from the
	// switches and trains.
	CollectPeriod simtime.Duration
	// CollectSamples is how many transitions each switch contributes per
	// collection.
	CollectSamples int
	// TrainSteps is the number of minibatch steps per collection.
	TrainSteps int
	// PushDelay models the latency of distributing refreshed weights.
	PushDelay simtime.Duration
}

// DefaultHybridConfig scales the controller loop to simulation timescales.
func DefaultHybridConfig() HybridConfig {
	t := DefaultConfig()
	// Switches only infer; the controller trains.
	t.TrainOnline = false
	return HybridConfig{
		Tuner:          t,
		CollectPeriod:  2 * simtime.Millisecond,
		CollectSamples: 128,
		TrainSteps:     64,
		PushDelay:      2 * simtime.Millisecond,
	}
}

// NewHybrid deploys hybrid ACC on the switches. A non-nil model initializes
// both the controller and every switch agent.
func NewHybrid(net *netsim.Network, switches []*netsim.Switch, model *rl.MLP, cfg HybridConfig) *Hybrid {
	tc := cfg.Tuner.normalize()
	tc.TrainOnline = false
	ac := tc.Agent
	if ac.StateDim == 0 {
		ac = rl.DefaultAgentConfig(tc.StateDim(), len(tc.Template))
	}
	h := &Hybrid{
		Net: net,
		Cfg: cfg,
		rng: rand.New(rand.NewSource(net.Rng.Int63())),
	}
	h.Trainer = rl.NewAgent(ac, net.Rng)
	if model != nil {
		h.Trainer.Eval.CopyFrom(model)
		h.Trainer.Target.CopyFrom(model)
	}
	for _, sw := range switches {
		agent := rl.NewAgent(ac, net.Rng)
		agent.Eval.CopyFrom(h.Trainer.Eval)
		agent.Target.CopyFrom(h.Trainer.Eval)
		tcfg := tc
		h.Tuners = append(h.Tuners, NewTuner(net, sw, agent, tcfg))
	}
	h.schedule()
	return h
}

// SetEpsilon sets the exploration probability on every switch agent.
func (h *Hybrid) SetEpsilon(e float64) {
	for _, t := range h.Tuners {
		t.Agent.SetEpsilon(e)
	}
}

// Stop halts tuners and the controller loop.
func (h *Hybrid) Stop() {
	h.stopped = true
	for _, t := range h.Tuners {
		t.Stop()
	}
}

func (h *Hybrid) schedule() {
	h.Net.Q.After(h.Cfg.CollectPeriod, func() {
		if h.stopped {
			return
		}
		h.collectAndTrain()
		h.schedule()
	})
}

// collectAndTrain pulls experience from every switch, runs the training
// budget at the controller, and pushes refreshed weights back after the
// control-channel delay.
func (h *Hybrid) collectAndTrain() {
	for _, t := range h.Tuners {
		n := h.Cfg.CollectSamples
		if l := t.Agent.Memory.Len(); l < n {
			n = l
		}
		for _, tr := range t.Agent.Memory.Sample(h.rng, n) {
			h.Trainer.Observe(tr)
		}
	}
	for i := 0; i < h.Cfg.TrainSteps; i++ {
		h.Trainer.TrainStep(h.rng)
		h.TrainRuns++
	}
	// Snapshot the refreshed weights and distribute them.
	snapshot := h.Trainer.Eval.Clone()
	h.Net.Q.After(h.Cfg.PushDelay, func() {
		if h.stopped {
			return
		}
		h.Pushes++
		for _, t := range h.Tuners {
			t.Agent.Eval.CopyFrom(snapshot)
			t.Agent.Target.CopyFrom(snapshot)
		}
	})
}
