package acc

import (
	"math"
	"math/rand"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
)

// FeaturesPerSlot is the per-interval feature vector of §3.3/§4.1:
// QS_t = (qlen, txRate, txRate(m), ECN(c)), each normalized.
const FeaturesPerSlot = 4

// Observation is one ΔT collector sample for a monitored queue: the
// normalized feature slot plus the raw reward ingredients.
type Observation struct {
	Slot []float64 // FeaturesPerSlot normalized features
	Util float64   // utilization vs the class's DWRR share, for T(R)
	AvgQ float64   // average queue bytes over the interval, for D(L)
}

// TelemetryFault perturbs the collector→agent path of a tuner, modelling
// the switch-CPU overload the paper guards against in §4.2/§4.3: under
// load the on-switch collector may deliver stale counters or miss
// monitoring windows entirely. Implementations live outside this package
// (see internal/faults); a nil fault is the healthy path.
type TelemetryFault interface {
	// Sample receives the freshly measured observation for monitored queue
	// index q and returns the observation actually delivered to the agent.
	// ok=false means the window's sample was lost: the tuner skips
	// inference and learning for that queue this tick.
	Sample(now simtime.Time, q int, obs Observation) (Observation, bool)
}

// Config parameterizes one per-switch tuner.
type Config struct {
	// Period is ΔT, the monitoring/action interval — one order of magnitude
	// above the datacenter RTT (§3.3).
	Period simtime.Duration
	// HistoryK is the number of past monitoring slots in the state (§3.3
	// Markov property; k=3 suffices).
	HistoryK int

	// Reward weights ω1 (utilization) and ω2 (queue delay); ω1+ω2=1.
	W1, W2 float64
	// Reward maps average queue length to D(L); StepReward is the paper's.
	Reward RewardFunc

	// Template is the ECN configuration template (action space).
	Template []red.Config

	// Explore enables ε-greedy action selection; disable to run a frozen
	// policy greedily.
	Explore bool
	// TrainOnline runs a DDQN optimization step each interval (§4.3).
	TrainOnline bool
	// TrainEvery trains on every N-th tick (1 = every tick).
	TrainEvery int
	// PrioritizedAlpha > 0 enables the §4.3 online refinement where
	// high-reward experiences are prioritised during replay sampling;
	// 0 keeps uniform sampling.
	PrioritizedAlpha float64

	// BusyIdle enables the §4.2 optimization: queues whose length stays
	// under Kmin, or whose reward hasn't changed for IdleSlots consecutive
	// slots, skip inference.
	BusyIdle  bool
	IdleSlots int

	// RecordTrace keeps a time series of applied Kmin per queue (Figure 15).
	RecordTrace bool

	// Prios restricts tuning to the listed traffic classes (§3.2: the
	// queues assigned to RDMA traffic apply automatic ECN tuning). Nil
	// tunes every ECN-enabled queue.
	Prios []int

	// Agent overrides the default rl.AgentConfig (zero value = defaults).
	Agent rl.AgentConfig
}

// DefaultConfig returns the paper-recommended settings: ΔT=100µs (an order
// of magnitude above the ~10µs RTT), k=3, ω1=0.7/ω2=0.3, step reward, the
// 20-entry template, online training enabled.
func DefaultConfig() Config {
	return Config{
		Period:      100 * simtime.Microsecond,
		HistoryK:    3,
		W1:          0.7,
		W2:          0.3,
		Reward:      StepReward,
		Template:    DefaultTemplate(),
		Explore:     true,
		TrainOnline: true,
		TrainEvery:  1,
		BusyIdle:    true,
		IdleSlots:   3,
	}
}

// StateDim returns the agent input dimension for the config.
func (c Config) StateDim() int { return FeaturesPerSlot * c.HistoryK }

// tunesPrio reports whether the config tunes the given traffic class.
func (c Config) tunesPrio(prio int) bool {
	if len(c.Prios) == 0 {
		return true
	}
	for _, p := range c.Prios {
		if p == prio {
			return true
		}
	}
	return false
}

func (c Config) normalize() Config {
	if c.Period <= 0 {
		c.Period = 100 * simtime.Microsecond
	}
	if c.HistoryK <= 0 {
		c.HistoryK = 3
	}
	if c.Reward == nil {
		c.Reward = StepReward
	}
	if len(c.Template) == 0 {
		c.Template = DefaultTemplate()
	}
	if c.TrainEvery <= 0 {
		c.TrainEvery = 1
	}
	if c.IdleSlots <= 0 {
		c.IdleSlots = 3
	}
	if c.W1 == 0 && c.W2 == 0 {
		c.W1, c.W2 = 0.7, 0.3
	}
	return c
}

// queueState is the tuner's bookkeeping for one monitored egress queue.
type queueState struct {
	port *netsim.Port
	q    *netsim.EgressQueue

	hist       [][]float64
	prevState  []float64
	prevAction int
	action     int

	lastTx       uint64
	lastMarked   uint64
	lastIntegral float64

	share float64 // DWRR bandwidth fraction of this queue's class

	lastReward float64
	sameReward int
	idle       bool

	// Trace of applied thresholds (Figure 15) when enabled.
	KminTrace   stats.Series
	RewardTrace stats.Series
}

// Tuner is the per-switch ACC module (Figure 5): collector → data processor
// → DRL agent → configurator, on one ΔT loop.
type Tuner struct {
	Net *netsim.Network
	//acclint:ignore snapcover construction wiring: restore rebuilds the tuner on the same switch; dynamic state lives in rngSrc and queues
	Switch *netsim.Switch
	//acclint:ignore snapcover saved by its owner (System.SaveState or the world) because agents may be shared across tuners
	Agent *rl.Agent
	Cfg   Config

	//acclint:ignore snapcover wrapper over rngSrc; the saved draw count fast-forwards the source, reproducing the stream
	rng    *rand.Rand
	rngSrc *netsim.CountedSource
	queues []*queueState
	ticks  int

	// tickEv/tickFn are the ΔT loop's reusable timer handle and pre-bound
	// callback: each reschedule reuses the handle (no per-tick closure
	// allocation) and snapshots record/re-arm its (at, seq) slot.
	tickEv *eventq.Event
	tickFn func()

	// Counters mirroring the §4.2 CPU-saving discussion.
	Inferences uint64
	Skipped    uint64
	TrainRuns  uint64
	// TelemetryDrops counts monitoring windows lost to an injected
	// telemetry fault (collector overload).
	TelemetryDrops uint64

	//acclint:ignore snapcover fault-scenario wiring re-installed by Build from the Scenario; its dynamic effect is the saved TelemetryDrops
	fault   TelemetryFault
	stopped bool
}

// NewTuner attaches a tuner to every ECN-enabled egress queue of sw and
// starts its ΔT loop. A nil agent creates a fresh one from cfg.
func NewTuner(net *netsim.Network, sw *netsim.Switch, agent *rl.Agent, cfg Config) *Tuner {
	cfg = cfg.normalize()
	if agent == nil {
		ac := cfg.Agent
		if ac.StateDim == 0 {
			ac = rl.DefaultAgentConfig(cfg.StateDim(), len(cfg.Template))
		}
		agent = rl.NewAgent(ac, net.Rng)
	}
	src := netsim.NewCountedSource(rand.NewSource(net.Rng.Int63()))
	t := &Tuner{
		Net:    net,
		Switch: sw,
		Agent:  agent,
		Cfg:    cfg,
		rng:    rand.New(src),
		rngSrc: src,
	}
	t.tickFn = func() {
		if t.stopped {
			return
		}
		t.tick()
		t.schedule()
	}
	for _, p := range sw.Ports {
		sumW := 0
		for _, q := range p.Queues {
			sumW += q.Weight
		}
		for _, q := range p.Queues {
			if !q.ECNEnabled || !cfg.tunesPrio(q.Prio) {
				continue
			}
			qs := &queueState{port: p, q: q, action: t.closestAction(q.RED)}
			// Utilization is judged against the class's DWRR allocation:
			// a 70%-weighted RDMA queue reaching its share reads as 1.0.
			if sumW > 0 {
				qs.share = float64(q.Weight) / float64(sumW)
			} else {
				qs.share = 1
			}
			t.queues = append(t.queues, qs)
		}
	}
	t.schedule()
	return t
}

// Stop halts the tuning loop.
func (t *Tuner) Stop() { t.stopped = true }

// SetTelemetryFault installs (or, with nil, removes) a fault on the
// collector path. Queue indices passed to the fault are the tuner's
// monitored-queue indices, in [0, Queues()).
func (t *Tuner) SetTelemetryFault(f TelemetryFault) { t.fault = f }

// Queues returns the number of monitored queues.
func (t *Tuner) Queues() int { return len(t.queues) }

// QueueTrace returns the Kmin trace of monitored queue i (RecordTrace mode).
func (t *Tuner) QueueTrace(i int) *stats.Series { return &t.queues[i].KminTrace }

// closestAction finds the template entry nearest an existing RED config so
// the first state's ECN(c) feature reflects reality.
func (t *Tuner) closestAction(c red.Config) int {
	best, bestDist := 0, math.MaxFloat64
	for i, tc := range t.Cfg.Template {
		d := math.Abs(math.Log(float64(tc.Kmin)+1) - math.Log(float64(c.Kmin)+1))
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func (t *Tuner) schedule() {
	t.tickEv = t.Net.Q.ResetAfter(t.tickEv, t.Cfg.Period, t.tickFn)
}

// tick runs one monitoring/inference interval over all queues.
func (t *Tuner) tick() {
	t.ticks++
	for qi, qs := range t.queues {
		t.tickQueue(qi, qs)
	}
}

// features builds QS_t for a queue and returns it with the measured reward
// ingredients (utilization, average queue bytes over the interval).
func (t *Tuner) features(qs *queueState) (slot []float64, util, avgQ float64) {
	txDelta := qs.q.TxBytes - qs.lastTx
	markDelta := qs.q.TxMarkedBytes - qs.lastMarked
	integ := qs.q.ByteTimeIntegral()
	integDelta := integ - qs.lastIntegral
	qs.lastTx = qs.q.TxBytes
	qs.lastMarked = qs.q.TxMarkedBytes
	qs.lastIntegral = integ

	window := t.Cfg.Period.Seconds()
	bw := float64(qs.port.Bandwidth) * qs.share
	util = clamp01(float64(txDelta) * 8 / (bw * window))
	markedRate := clamp01(float64(markDelta) * 8 / (bw * window))
	avgQ = integDelta / window

	slot = []float64{
		float64(LevelOf(qs.q.Bytes())) / float64(ELevels),
		util,
		markedRate,
		float64(qs.action) / float64(len(t.Cfg.Template)-1),
	}
	return slot, util, avgQ
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// state flattens the last k slots, zero-padding the warmup.
func (t *Tuner) state(qs *queueState) []float64 {
	k := t.Cfg.HistoryK
	out := make([]float64, 0, k*FeaturesPerSlot)
	pad := k - len(qs.hist)
	for i := 0; i < pad; i++ {
		out = append(out, make([]float64, FeaturesPerSlot)...)
	}
	for _, s := range qs.hist {
		out = append(out, s...)
	}
	return out
}

func (t *Tuner) tickQueue(qi int, qs *queueState) {
	slot, util, avgQ := t.features(qs)

	// Injected telemetry faults intercept the collector output before it
	// reaches the data processor: the window can arrive stale or not at
	// all. Counter deltas in features() already advanced, exactly as a
	// real collector's cursor would — a lost window is lost for good.
	if t.fault != nil {
		obs, ok := t.fault.Sample(t.Net.Now(), qi, Observation{Slot: slot, Util: util, AvgQ: avgQ})
		if !ok {
			t.TelemetryDrops++
			// No sample: the agent cannot attribute the next reward to its
			// last action, so break the experience chain and keep the
			// current ECN setting.
			qs.prevState = nil
			return
		}
		slot, util, avgQ = obs.Slot, obs.Util, obs.AvgQ
	}

	qs.hist = append(qs.hist, slot)
	if len(qs.hist) > t.Cfg.HistoryK {
		qs.hist = qs.hist[1:]
	}
	state := t.state(qs)

	reward := Reward(t.Cfg.W1, t.Cfg.W2, util, t.Cfg.Reward(avgQ))
	if t.Cfg.RecordTrace {
		qs.RewardTrace.Add(t.Net.Now(), reward)
	}

	// Learn from the previous action's outcome.
	if qs.prevState != nil {
		t.Agent.Observe(rl.Transition{
			State:  qs.prevState,
			Action: qs.prevAction,
			Reward: reward,
			Next:   state,
		})
		if t.Cfg.TrainOnline && t.ticks%t.Cfg.TrainEvery == 0 {
			if t.Cfg.PrioritizedAlpha > 0 {
				t.Agent.TrainStepPrioritized(t.rng, t.Cfg.PrioritizedAlpha)
			} else {
				t.Agent.TrainStep(t.rng)
			}
			t.TrainRuns++
		}
	}

	// Busy/idle gating (§4.2).
	if t.Cfg.BusyIdle {
		if math.Abs(reward-qs.lastReward) < 1e-9 {
			qs.sameReward++
		} else {
			qs.sameReward = 0
		}
		qs.lastReward = reward
		wasIdle := qs.idle
		if qs.idle {
			// Idle until the queue grows past Kmin again.
			qs.idle = qs.q.Bytes() <= qs.q.RED.Kmin
		} else {
			qs.idle = qs.q.Bytes() < qs.q.RED.Kmin && qs.sameReward >= t.Cfg.IdleSlots
		}
		if qs.idle {
			t.Skipped++
			if !wasIdle {
				qs.prevState = nil // break the experience chain while dormant
			}
			return
		}
	}

	// Inference + actuation.
	var action int
	if t.Cfg.Explore {
		action = t.Agent.Act(state, t.rng)
	} else {
		action = t.Agent.ActGreedy(state)
	}
	t.Inferences++
	// One agent transition per interval: the state that was acted on, the
	// action chosen, and the reward measured for the *previous* action.
	t.Net.Tracer.AgentStep(t.Net.Now(), t.Switch.ID(), qi, qs.q.Prio, action, reward)
	t.apply(qs, action)
	qs.prevState = state
	qs.prevAction = action
}

// apply maps the action index into the ECN template and programs the queue.
func (t *Tuner) apply(qs *queueState, action int) {
	prev := qs.q.RED
	qs.action = action
	qs.q.RED = t.Cfg.Template[action]
	if c := qs.q.RED; c != prev {
		// Only actual template changes hit the trace: the configurator
		// writing the same registers back is not an observable event.
		t.Net.Tracer.WREDUpdate(t.Net.Now(), t.Switch.ID(), qs.port.Index, qs.q.Prio, action, c.Kmin, c.Kmax, c.Pmax)
	}
	if t.Cfg.RecordTrace {
		qs.KminTrace.Add(t.Net.Now(), float64(qs.q.RED.Kmin))
	}
}
