package acc

import (
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

func TestShareModelOption(t *testing.T) {
	net := netsim.New(51)
	fab := topo.LeafSpine(net, 2, 2, 2, topo.DefaultConfig())
	scfg := DefaultSystemConfig()
	scfg.ShareModel = true
	sys := NewSystem(net, fab.Switches(), nil, scfg)
	// All tuners share one agent object.
	for _, tn := range sys.Tuners[1:] {
		if tn.Agent != sys.Tuners[0].Agent {
			t.Fatal("ShareModel did not share the agent")
		}
	}
	// No exchange loop runs for a shared model.
	net.RunUntil(simtime.Time(20 * simtime.Millisecond))
	if sys.Exchanges != 0 {
		t.Fatal("exchange loop ran despite shared model")
	}
}

func TestSystemSetEpsilon(t *testing.T) {
	net := netsim.New(52)
	fab := topo.Star(net, 3, topo.DefaultConfig())
	sys := NewSystem(net, fab.Switches(), nil, DefaultSystemConfig())
	sys.SetEpsilon(0.31)
	for _, tn := range sys.Tuners {
		if tn.Agent.Epsilon() != 0.31 {
			t.Fatalf("epsilon %v", tn.Agent.Epsilon())
		}
	}
}

func TestSystemStopHaltsTuners(t *testing.T) {
	net, fab := buildIncast(53, 4)
	sys := NewSystem(net, fab.Switches(), nil, DefaultSystemConfig())
	net.RunUntil(simtime.Time(2 * simtime.Millisecond))
	sys.Stop()
	var inf uint64
	for _, tn := range sys.Tuners {
		inf += tn.Inferences
	}
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	var after uint64
	for _, tn := range sys.Tuners {
		after += tn.Inferences
	}
	if after != inf {
		t.Fatal("tuners kept inferring after System.Stop")
	}
}

func TestModelInitializesAgents(t *testing.T) {
	net := netsim.New(54)
	fab := topo.Star(net, 3, topo.DefaultConfig())
	// Train any model to have distinctive weights.
	donor := NewTuner(netsim.New(55), topo.Star(netsim.New(56), 2, topo.DefaultConfig()).Leaves[0], nil, DefaultConfig())
	model := donor.Agent.Eval
	sys := NewSystem(net, fab.Switches(), model, DefaultSystemConfig())
	x := make([]float64, DefaultConfig().StateDim())
	want := model.Forward(x)
	for _, tn := range sys.Tuners {
		got := tn.Agent.Eval.Forward(x)
		for i := range got {
			if got[i] != want[i] {
				t.Fatal("agent weights not initialized from the model")
			}
		}
	}
}

func TestRewardTraceRecording(t *testing.T) {
	net, fab := buildIncast(57, 4)
	cfg := DefaultConfig()
	cfg.RecordTrace = true
	tuner := NewTuner(net, fab.Leaves[0], nil, cfg)
	net.RunUntil(simtime.Time(5 * simtime.Millisecond))
	// The hot queue's reward trace must be populated and bounded in [0,1].
	rt := tuner.queues[4].RewardTrace
	if rt.Len() == 0 {
		t.Fatal("reward trace empty")
	}
	for _, v := range rt.Values {
		if v < 0 || v > 1 {
			t.Fatalf("reward %v outside [0,1]", v)
		}
	}
}

func TestCentralizedStop(t *testing.T) {
	net := netsim.New(58)
	fab := topo.LeafSpine(net, 2, 2, 1, topo.DefaultConfig())
	c := NewCentralized(net, fab.Leaves, fab.Spines, DefaultCentralizedConfig())
	net.RunUntil(simtime.Time(5 * simtime.Millisecond))
	c.Stop()
	n := c.Inferences
	net.RunUntil(simtime.Time(20 * simtime.Millisecond))
	if c.Inferences != n {
		t.Fatal("centralized controller kept inferring after Stop")
	}
}
