package acc

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/simtime"
)

// SystemConfig controls the multi-agent coupling of §3.4: a global replay
// memory that periodically exchanges experience samples with each switch's
// local memory, making the learned models more stable and generalizable.
type SystemConfig struct {
	Tuner Config
	// GlobalReplayCap is the capacity of the shared memory.
	GlobalReplayCap int
	// ExchangePeriod is how often local/global samples are swapped. The
	// paper uses several seconds in production; scaled simulations use
	// milliseconds.
	ExchangePeriod simtime.Duration
	// ExchangeSamples is how many transitions move in each direction per
	// exchange per switch.
	ExchangeSamples int
	// ShareModel makes all switches share a single agent (weights and
	// replay), instead of per-switch agents + global replay. The paper
	// deploys per-switch agents; sharing is provided for ablations.
	ShareModel bool
}

// DefaultSystemConfig scales the exchange to simulation timescales.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Tuner:           DefaultConfig(),
		GlobalReplayCap: 16384,
		ExchangePeriod:  5 * simtime.Millisecond,
		ExchangeSamples: 64,
	}
}

// System manages one ACC tuner per switch plus the global replay memory.
type System struct {
	Net    *netsim.Network
	Tuners []*Tuner
	Global *rl.Replay
	Cfg    SystemConfig

	Exchanges uint64
	stopped   bool

	// exchEv/exchFn are the exchange loop's reusable timer handle and
	// pre-bound callback (see Tuner.tickEv).
	exchEv *eventq.Event
	exchFn func()
}

// NewSystem deploys ACC on every switch. If model is non-nil its weights
// initialize every agent (the §4.3 "install the same offline training model
// for network switches" step).
func NewSystem(net *netsim.Network, switches []*netsim.Switch, model *rl.MLP, cfg SystemConfig) *System {
	if cfg.GlobalReplayCap <= 0 {
		cfg.GlobalReplayCap = 16384
	}
	if cfg.ExchangeSamples <= 0 {
		cfg.ExchangeSamples = 64
	}
	s := &System{Net: net, Global: rl.NewReplay(cfg.GlobalReplayCap), Cfg: cfg}

	var shared *rl.Agent
	for _, sw := range switches {
		var agent *rl.Agent
		if cfg.ShareModel {
			if shared == nil {
				shared = s.newAgent(net, model)
			}
			agent = shared
		} else {
			agent = s.newAgent(net, model)
		}
		s.Tuners = append(s.Tuners, NewTuner(net, sw, agent, cfg.Tuner))
	}
	s.exchFn = func() {
		if s.stopped {
			return
		}
		s.exchange()
		s.scheduleExchange()
	}
	if !cfg.ShareModel && cfg.ExchangePeriod > 0 && len(s.Tuners) > 1 {
		s.scheduleExchange()
	}
	return s
}

func (s *System) newAgent(net *netsim.Network, model *rl.MLP) *rl.Agent {
	tc := s.Cfg.Tuner.normalize()
	ac := tc.Agent
	if ac.StateDim == 0 {
		ac = rl.DefaultAgentConfig(tc.StateDim(), len(tc.Template))
	}
	a := rl.NewAgent(ac, net.Rng)
	if model != nil {
		a.Eval.CopyFrom(model)
		a.Target.CopyFrom(model)
	}
	return a
}

// Stop halts all tuners and the exchange loop.
func (s *System) Stop() {
	s.stopped = true
	for _, t := range s.Tuners {
		t.Stop()
	}
}

// SetEpsilon sets exploration on all agents (e.g. a small residual ε when
// starting from a pre-trained model, §4.3).
func (s *System) SetEpsilon(e float64) {
	for _, t := range s.Tuners {
		t.Agent.SetEpsilon(e)
	}
}

func (s *System) scheduleExchange() {
	s.exchEv = s.Net.Q.ResetAfter(s.exchEv, s.Cfg.ExchangePeriod, s.exchFn)
}

// exchange moves experience local→global and global→local for every tuner
// (§3.4: "agents at different switches can exchange experiences and explore
// different parts of the whole network environment").
func (s *System) exchange() {
	s.Exchanges++
	n := s.Cfg.ExchangeSamples
	for _, t := range s.Tuners {
		for _, tr := range t.Agent.Memory.Sample(t.rng, min(n, t.Agent.Memory.Len())) {
			s.Global.Add(tr)
		}
	}
	for _, t := range s.Tuners {
		for _, tr := range s.Global.Sample(t.rng, min(n, s.Global.Len())) {
			t.Agent.Memory.Add(tr)
		}
	}
}

// ModelFile is the on-disk format produced by SaveModel.
type ModelFile struct {
	Description string   `json:"description"`
	StateDim    int      `json:"state_dim"`
	NumActions  int      `json:"num_actions"`
	Net         *rl.MLP  `json:"net"`
	TemplateKB  []string `json:"template,omitempty"` // human-readable template
}

// SaveModel writes an agent's evaluation network to path as JSON.
func SaveModel(path, description string, agent *rl.Agent, cfg Config) error {
	cfg = cfg.normalize()
	mf := ModelFile{
		Description: description,
		StateDim:    cfg.StateDim(),
		NumActions:  len(cfg.Template),
		Net:         agent.Eval,
	}
	for _, tc := range cfg.Template {
		mf.TemplateKB = append(mf.TemplateKB, tc.String())
	}
	data, err := json.MarshalIndent(mf, "", " ")
	if err != nil {
		return fmt.Errorf("acc: encoding model: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads a model saved by SaveModel.
func LoadModel(path string) (*rl.MLP, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf ModelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("acc: decoding model %s: %w", path, err)
	}
	if mf.Net == nil {
		return nil, fmt.Errorf("acc: model file %s has no network", path)
	}
	return mf.Net, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
