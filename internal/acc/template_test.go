package acc

import (
	"testing"
	"testing/quick"

	"github.com/accnet/acc/internal/simtime"
)

func TestEDiscretization(t *testing.T) {
	// Equation 1: E(n) = 20·2^n KB.
	want := []int{20, 40, 80, 160, 320, 640, 1280, 2560, 5120, 10240}
	for n, kb := range want {
		if got := E(n); got != kb*simtime.KB {
			t.Errorf("E(%d) = %d, want %dKB", n, got, kb)
		}
	}
	// Clamping.
	if E(-1) != E(0) || E(99) != E(9) {
		t.Error("E must clamp out-of-range n")
	}
}

func TestLevelOf(t *testing.T) {
	cases := []struct {
		bytes int
		want  int
	}{
		{0, 0},
		{1, 0},
		{20 * simtime.KB, 0},
		{20*simtime.KB + 1, 1},
		{100 * simtime.KB, 3}, // E(3)=160KB is the first >= 100KB
		{10240 * simtime.KB, 9},
		{11 * simtime.MB, ELevels}, // off the scale
	}
	for _, c := range cases {
		if got := LevelOf(c.bytes); got != c.want {
			t.Errorf("LevelOf(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestLevelOfIsInverseOfE(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n) % ELevels
		return LevelOf(E(k)) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStepRewardShape(t *testing.T) {
	// Figure 4: stepwise decreasing, 1.0 at empty queue, 0 beyond E(9).
	if StepReward(0) != 1 {
		t.Fatalf("D(0) = %v, want 1", StepReward(0))
	}
	if got := StepReward(float64(30 * simtime.KB)); got != 0.9 { // level 1
		t.Fatalf("D(30KB) = %v, want 0.9", got)
	}
	if got := StepReward(float64(20 * simtime.MB)); got != 0 {
		t.Fatalf("D(20MB) = %v, want 0", got)
	}
	// Monotone nonincreasing.
	prev := 2.0
	for q := 0; q <= 12*simtime.MB; q += 64 * simtime.KB {
		d := StepReward(float64(q))
		if d > prev {
			t.Fatalf("StepReward not monotone at %d: %v > %v", q, d, prev)
		}
		prev = d
	}
}

func TestLinearRewardSimilarForNearbyQueues(t *testing.T) {
	// The appendix's critique: linear D barely separates small queues.
	a := LinearReward(float64(20 * simtime.KB))
	b := LinearReward(float64(320 * simtime.KB))
	if a-b > 0.05 {
		t.Fatalf("linear reward separates small queues too much: %v vs %v", a, b)
	}
	// Whereas the step reward separates them strongly.
	sa := StepReward(float64(20 * simtime.KB))
	sb := StepReward(float64(320 * simtime.KB))
	if sa-sb < 0.3 {
		t.Fatalf("step reward fails to separate small queues: %v vs %v", sa, sb)
	}
}

func TestDefaultTemplate(t *testing.T) {
	tpl := DefaultTemplate()
	if len(tpl) != 20 {
		t.Fatalf("template size %d, want 20 (matches the paper's 20-node output layer)", len(tpl))
	}
	for i, c := range tpl {
		if err := c.Validate(); err != nil {
			t.Errorf("template[%d]: %v", i, err)
		}
		if c.Kmax > 10*simtime.MB {
			t.Errorf("template[%d] Kmax %d above the 10MB buffer bound", i, c.Kmax)
		}
	}
}

func TestFullTemplateRespectsConstraint(t *testing.T) {
	full := FullTemplate()
	if len(full) == 0 {
		t.Fatal("empty full template")
	}
	for _, c := range full {
		if c.Kmin > c.Kmax {
			t.Fatalf("full template violates Kmin<=Kmax: %+v", c)
		}
	}
	// §3.2 sizing: 4 Kmax × 10 Kmin × 21 Pmax minus Kmin>Kmax combos.
	want := 0
	for _, kmax := range KmaxChoices() {
		for n := 0; n < ELevels; n++ {
			if E(n) <= kmax {
				want += len(PmaxChoices())
			}
		}
	}
	if len(full) != want {
		t.Fatalf("full template size %d, want %d", len(full), want)
	}
}

func TestReducedTemplateSize(t *testing.T) {
	r := ReducedTemplate()
	if len(r) != 10 {
		t.Fatalf("reduced template size %d, want 10", len(r))
	}
	if n := len(r) * len(r); n != 100 {
		t.Fatalf("joint action space %d, want 100 (\"hundreds of actions\")", n)
	}
}

func TestRewardWeights(t *testing.T) {
	// Full utilization, empty queue: reward = w1+w2 = 1.
	if r := Reward(0.7, 0.3, 1.0, 1.0); r != 1 {
		t.Fatalf("reward %v, want 1", r)
	}
	// Utilization clamps at 1.
	if r := Reward(0.7, 0.3, 1.5, 0); r != 0.7 {
		t.Fatalf("reward %v, want 0.7", r)
	}
}
