package faults

import (
	"math/rand"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// Applied records one fault action the injector actually performed, in
// order; it doubles as the determinism witness in tests.
type Applied struct {
	At   simtime.Time
	Kind Kind
	Link string
}

// Injector binds a Plan to a built fabric and drives it through the
// simulation event queue. Create it after the fabric is built and before
// (or after) traffic starts, then call Start; the point of creation fixes
// the RNG stream, so keep it at the same place across runs for
// reproducibility.
type Injector struct {
	Net  *netsim.Network
	Plan Plan

	links *LinkSet
	rng   *rand.Rand
	// nominal remembers each degraded port's pre-fault bandwidth; degraded
	// keeps the same ports in insertion order so Heal restores them
	// deterministically (a map range would replay in a different order
	// each run, reordering any events SetBandwidth-adjacent code emits).
	nominal  map[*netsim.Port]simtime.Rate
	degraded []*netsim.Port
	start    simtime.Time
	started  bool
	stopped  bool
	active   int // faults currently in effect (down or degraded links)

	// Log is every action applied, in application order.
	Log []Applied
	// FlapDowns counts failures induced by flap processes (a subset of the
	// LinkDown entries in Log).
	FlapDowns int
	// FirstFaultAt / LastRepairAt bound the observed fault window: the
	// first moment any fault took effect and the last moment the fabric
	// returned to fully healthy. Zero when no fault fired yet.
	FirstFaultAt simtime.Time
	LastRepairAt simtime.Time
}

// NewInjector validates the plan against the fabric and prepares an
// injector. The RNG stream for flap and telemetry randomness is drawn from
// the network RNG here, exactly once.
func NewInjector(net *netsim.Network, fab *topo.Fabric, plan Plan) (*Injector, error) {
	links := Links(fab)
	if err := plan.Validate(links); err != nil {
		return nil, err
	}
	return &Injector{
		Net:     net,
		Plan:    plan,
		links:   links,
		rng:     rand.New(rand.NewSource(net.Rng.Int63())),
		nominal: make(map[*netsim.Port]simtime.Rate),
	}, nil
}

// Links exposes the bound link set (for experiments that report per-link
// detail).
func (in *Injector) Links() *LinkSet { return in.links }

// Start schedules the plan's timeline and launches its flap processes,
// all relative to the current virtual time. Start is idempotent-hostile by
// design: call it once.
func (in *Injector) Start() {
	if in.started {
		panic("faults: Injector.Start called twice")
	}
	in.started = true
	in.start = in.Net.Now()
	for _, ev := range in.Plan.Sorted() {
		ev := ev
		in.Net.Q.After(ev.At, func() {
			if in.stopped {
				return
			}
			in.apply(ev)
		})
	}
	for _, f := range in.Plan.Flaps {
		for i := 0; i < f.Links; i++ {
			in.scheduleFlap(in.links.Of(f.Role)[i], f)
		}
	}
}

// Stop halts future fault actions. Links already down stay down (call
// Heal to force-repair); pending repair events still run so flapped links
// are never stranded by their own process — Stop only blocks new faults.
func (in *Injector) Stop() { in.stopped = true }

// Heal force-repairs the fabric: every downed link in the set comes up and
// every degraded port returns to nominal bandwidth.
func (in *Injector) Heal() {
	for r := Role(0); r < numRoles; r++ {
		for _, l := range in.links.Of(r) {
			if l.Down() {
				l.A.SetDown(false)
				in.record(LinkUp, l)
				in.markRepair()
			}
		}
	}
	for _, port := range in.degraded {
		port.SetBandwidth(in.nominal[port])
	}
	in.nominal = make(map[*netsim.Port]simtime.Rate)
	in.degraded = in.degraded[:0]
}

// apply performs one timeline event.
func (in *Injector) apply(ev Event) {
	l := in.links.Of(ev.Role)[ev.Index]
	switch ev.Kind {
	case LinkDown:
		if !l.Down() {
			in.markFault()
			l.A.SetDown(true)
		}
	case LinkUp:
		if l.Down() {
			l.A.SetDown(false)
			in.markRepair()
		}
	case Degrade:
		in.degrade(l, ev.Factor)
	case Restore:
		in.restore(l)
	}
	in.record(ev.Kind, l)
}

func (in *Injector) degrade(l Link, factor float64) {
	fresh := false
	for _, port := range [2]*netsim.Port{l.A, l.B} {
		if _, ok := in.nominal[port]; !ok {
			in.nominal[port] = port.Bandwidth
			in.degraded = append(in.degraded, port)
			fresh = true
		}
		port.SetBandwidth(in.nominal[port] * simtime.Rate(factor))
	}
	if fresh {
		in.markFault()
	}
}

func (in *Injector) restore(l Link) {
	restored := false
	for _, port := range [2]*netsim.Port{l.A, l.B} {
		if bw, ok := in.nominal[port]; ok {
			port.SetBandwidth(bw)
			delete(in.nominal, port)
			for i, p := range in.degraded {
				if p == port {
					in.degraded = append(in.degraded[:i], in.degraded[i+1:]...)
					break
				}
			}
			restored = true
		}
	}
	if restored {
		in.markRepair()
	}
}

// scheduleFlap arms the next failure of one flapping link.
func (in *Injector) scheduleFlap(l Link, f Flap) {
	up := simtime.Duration(in.rng.ExpFloat64() * float64(f.MTBF))
	in.Net.Q.After(up, func() {
		if in.stopped || in.pastHorizon() || l.Down() {
			return
		}
		in.markFault()
		l.A.SetDown(true)
		in.FlapDowns++
		in.record(LinkDown, l)
		down := simtime.Duration(in.rng.ExpFloat64() * float64(f.MTTR))
		in.Net.Q.After(down, func() {
			// The repair always runs — even stopped or past-horizon
			// injectors never strand a link they failed.
			l.A.SetDown(false)
			in.markRepair()
			in.record(LinkUp, l)
			if !in.stopped && !in.pastHorizon() {
				in.scheduleFlap(l, f)
			}
		})
	})
}

func (in *Injector) pastHorizon() bool {
	return in.Plan.Horizon > 0 && in.Net.Now().Sub(in.start) >= in.Plan.Horizon
}

func (in *Injector) record(k Kind, l Link) {
	in.Log = append(in.Log, Applied{At: in.Net.Now(), Kind: k, Link: l.Name()})
}

func (in *Injector) markFault() {
	if in.active == 0 && in.FirstFaultAt == 0 {
		in.FirstFaultAt = in.Net.Now()
	}
	in.active++
}

func (in *Injector) markRepair() {
	if in.active > 0 {
		in.active--
		if in.active == 0 {
			in.LastRepairAt = in.Net.Now()
		}
	}
}
