// Package faults is the deterministic fault-injection subsystem: it binds
// typed fault timelines — link failures and repairs, random link-flap
// processes, bandwidth brownouts, and telemetry loss at the ACC collector —
// to a built fabric and drives them through the simulation event queue.
//
// Everything is seed-reproducible: all randomness (flap inter-arrival
// times, telemetry drop decisions) is drawn from dedicated streams seeded
// off the network RNG, so two runs with the same seed replay the identical
// fault sequence. The package also provides the recovery metrics the
// robustness experiments report: time-to-reconverge of delivered goodput,
// packets blackholed, and PFC pauses triggered during the fault window.
//
// The motivation is the robustness critique of learned ECN tuning (GraphCC,
// PET): ACC is evaluated by its authors only under traffic dynamics, while
// production fabrics also see link failures, topology changes, and
// overloaded switch CPUs that starve the telemetry path (§4.3). This
// package makes those scenario classes first-class and repeatable.
package faults

import (
	"fmt"
	"strings"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/topo"
)

// Role classifies a link by the fabric tiers it joins. Plans address links
// as (role, index) pairs so the same plan applies to any fabric size.
type Role int

const (
	// HostLeaf links join a host NIC to its leaf/edge switch.
	HostLeaf Role = iota
	// LeafSpine links join a leaf/edge switch to a spine (or, in a
	// fat-tree, an edge switch to its pod's aggregation switches).
	LeafSpine
	// SpineCore links join two switches of the spine set (fat-tree
	// aggregation-to-core links). Two-tier fabrics have none.
	SpineCore

	numRoles
)

// String returns the flag-friendly role name.
func (r Role) String() string {
	switch r {
	case HostLeaf:
		return "host-leaf"
	case LeafSpine:
		return "leaf-spine"
	case SpineCore:
		return "spine-core"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// ParseRole parses the names produced by String.
func ParseRole(s string) (Role, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "host-leaf":
		return HostLeaf, nil
	case "leaf-spine":
		return LeafSpine, nil
	case "spine-core":
		return SpineCore, nil
	}
	return 0, fmt.Errorf("faults: unknown link role %q (host-leaf|leaf-spine|spine-core)", s)
}

// Link is one full-duplex link. A is the lower-tier end (host or leaf);
// netsim.Port.SetDown acts on both ends, so acting on A suffices.
type Link struct {
	Role Role
	A, B *netsim.Port
}

// Name renders the link as "owner<->owner" for tables and logs.
func (l Link) Name() string {
	return l.A.Owner.Name() + "<->" + l.B.Owner.Name()
}

// Down reports whether the link is currently failed.
func (l Link) Down() bool { return l.A.IsDown() }

// LinkSet is the fabric's links grouped by role, each slice in
// deterministic fabric-construction order.
type LinkSet [numRoles][]Link

// Of returns the links of one role.
func (ls *LinkSet) Of(r Role) []Link {
	if r < 0 || r >= numRoles {
		return nil
	}
	return ls[r]
}

// Total returns the number of links across all roles.
func (ls *LinkSet) Total() int {
	n := 0
	for _, links := range ls {
		n += len(links)
	}
	return n
}

// Links enumerates and classifies every link of a built fabric. Ordering
// follows the fabric's construction order (hosts, then leaves, then
// spines), so the same topology always yields the same numbering — the
// property plans rely on for reproducibility.
func Links(fab *topo.Fabric) *LinkSet {
	spines := make(map[netsim.Node]bool, len(fab.Spines))
	for _, s := range fab.Spines {
		spines[s] = true
	}
	var ls LinkSet
	for _, h := range fab.Hosts {
		if h.Port != nil && h.Port.Peer != nil {
			ls[HostLeaf] = append(ls[HostLeaf], Link{Role: HostLeaf, A: h.Port, B: h.Port.Peer})
		}
	}
	for _, leaf := range fab.Leaves {
		for _, p := range leaf.Ports {
			if p.Peer != nil && spines[p.Peer.Owner] {
				ls[LeafSpine] = append(ls[LeafSpine], Link{Role: LeafSpine, A: p, B: p.Peer})
			}
		}
	}
	// Spine-to-spine (fat-tree agg<->core): dedupe by visiting each pair
	// once; the lower-tier aggregation switch appears first in fab.Spines,
	// so its port becomes the A end.
	seen := make(map[*netsim.Port]bool)
	for _, sp := range fab.Spines {
		for _, p := range sp.Ports {
			if p.Peer == nil || seen[p] || seen[p.Peer] || !spines[p.Peer.Owner] {
				continue
			}
			ls[SpineCore] = append(ls[SpineCore], Link{Role: SpineCore, A: p, B: p.Peer})
			seen[p], seen[p.Peer] = true, true
		}
	}
	return &ls
}
