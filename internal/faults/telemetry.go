package faults

import (
	"math/rand"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// StaleDrop implements acc.TelemetryFault: it models a switch CPU too
// overloaded to serve the collector promptly (§4.3), delivering each
// queue's observation stream StaleSlots monitoring intervals late and
// losing each window independently with probability DropProb. During the
// first StaleSlots windows after attachment the oldest available
// observation is delivered (the collector's last known counters).
//
// Attach one StaleDrop per tuner: queue indices are tuner-local. All
// randomness comes from the seed passed at construction, so the fault
// sequence is reproducible.
type StaleDrop struct {
	cfg Telemetry
	rng *rand.Rand
	buf [][]acc.Observation // per-queue FIFO of pending observations

	// Drops and Delivered count windows lost and delivered (stale or not).
	Drops     uint64
	Delivered uint64
}

// NewStaleDrop builds a telemetry fault from a deterministic seed.
func NewStaleDrop(seed int64, cfg Telemetry) *StaleDrop {
	return &StaleDrop{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Sample implements acc.TelemetryFault.
func (f *StaleDrop) Sample(now simtime.Time, q int, obs acc.Observation) (acc.Observation, bool) {
	if f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb {
		f.Drops++
		return acc.Observation{}, false
	}
	if f.cfg.StaleSlots <= 0 {
		f.Delivered++
		return obs, true
	}
	for len(f.buf) <= q {
		f.buf = append(f.buf, nil)
	}
	f.buf[q] = append(f.buf[q], obs)
	f.Delivered++
	if len(f.buf[q]) <= f.cfg.StaleSlots {
		return f.buf[q][0], true // warmup: oldest known counters
	}
	out := f.buf[q][0]
	f.buf[q] = f.buf[q][1:]
	return out, true
}

// ApplyTelemetry installs an independent StaleDrop on every tuner, seeding
// each from the network RNG in tuner order (deterministic). It returns the
// installed faults so callers can read their counters.
func ApplyTelemetry(net *netsim.Network, tuners []*acc.Tuner, cfg Telemetry) []*StaleDrop {
	out := make([]*StaleDrop, len(tuners))
	for i, t := range tuners {
		out[i] = NewStaleDrop(net.Rng.Int63(), cfg)
		t.SetTelemetryFault(out[i])
	}
	return out
}
