package faults

import (
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/stats"
	"github.com/accnet/acc/internal/topo"
)

// Tracker samples fabric-wide delivered goodput (bytes arriving at host
// NICs) on a fixed period, the signal the recovery metrics are computed
// from: a link failure shows up as a goodput dip, and reconvergence as the
// return to the pre-fault baseline.
type Tracker struct {
	Period  simtime.Duration
	Goodput stats.Series // delivered Gbps per period

	net     *netsim.Network
	hosts   []*netsim.Host
	lastRx  uint64
	stopped bool
}

// Track starts sampling the fabric every period.
func Track(net *netsim.Network, fab *topo.Fabric, period simtime.Duration) *Tracker {
	tr := &Tracker{Period: period, net: net, hosts: fab.Hosts}
	tr.lastRx = tr.totalRx()
	tr.schedule()
	return tr
}

// Stop ends sampling.
func (tr *Tracker) Stop() { tr.stopped = true }

func (tr *Tracker) totalRx() uint64 {
	var sum uint64
	for _, h := range tr.hosts {
		if h.Port != nil {
			sum += h.Port.RxBytesTotal
		}
	}
	return sum
}

func (tr *Tracker) schedule() {
	tr.net.Q.After(tr.Period, func() {
		if tr.stopped {
			return
		}
		cur := tr.totalRx()
		gbps := float64(cur-tr.lastRx) * 8 / tr.Period.Seconds() / 1e9
		tr.lastRx = cur
		tr.Goodput.Add(tr.net.Now(), gbps)
		tr.schedule()
	})
}

// RecoveryTime reports how long after repairAt the fabric's goodput
// returned to frac of its pre-fault baseline and stayed there for sustain
// consecutive samples. The baseline is the mean of the last few samples
// strictly before faultAt. ok=false when the series never recovers (or has
// no pre-fault samples to form a baseline).
func (tr *Tracker) RecoveryTime(faultAt, repairAt simtime.Time, frac float64, sustain int) (simtime.Duration, bool) {
	if sustain < 1 {
		sustain = 1
	}
	base, ok := tr.baseline(faultAt)
	if !ok {
		return 0, false
	}
	target := frac * base
	run := 0
	for i := range tr.Goodput.Values {
		if tr.Goodput.Times[i] < repairAt {
			continue
		}
		if tr.Goodput.Values[i] >= target {
			run++
			if run == sustain {
				first := tr.Goodput.Times[i-(sustain-1)]
				d := first.Sub(repairAt)
				if d < 0 {
					d = 0
				}
				return d, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// baseline averages the last (up to) 10 samples before the fault.
func (tr *Tracker) baseline(faultAt simtime.Time) (float64, bool) {
	end := 0
	for end < len(tr.Goodput.Times) && tr.Goodput.Times[end] < faultAt {
		end++
	}
	if end == 0 {
		return 0, false
	}
	start := end - 10
	if start < 0 {
		start = 0
	}
	var sum float64
	for _, v := range tr.Goodput.Values[start:end] {
		sum += v
	}
	return sum / float64(end-start), true
}

// Snapshot captures the fabric's cumulative loss and back-pressure
// counters; subtract two snapshots to attribute losses to a fault window.
type Snapshot struct {
	// Blackholed counts packets lost to down links: in-flight blackholes
	// at every port plus routing blackholes (no alive ECMP candidate).
	Blackholed uint64
	// BufferDrops counts switch drops that are not routing blackholes
	// (shared-buffer overflow and WRED drops of non-ECT traffic).
	BufferDrops uint64
	// PFCPauses counts pause frames emitted by switches.
	PFCPauses uint64
}

// Snap reads the counters of every switch and host port in the fabric.
func Snap(fab *topo.Fabric) Snapshot {
	var s Snapshot
	ports := func(ps []*netsim.Port) {
		for _, p := range ps {
			s.Blackholed += p.BlackholedPackets
		}
	}
	for _, sw := range fab.Switches() {
		ports(sw.Ports)
		s.Blackholed += sw.RouteBlackholes
		s.BufferDrops += sw.DropsTotal - sw.RouteBlackholes
		for _, p := range sw.Ports {
			s.PFCPauses += p.PauseTxEvents
		}
	}
	for _, h := range fab.Hosts {
		if h.Port != nil {
			ports([]*netsim.Port{h.Port})
		}
	}
	return s
}

// Sub returns the counter deltas s - prev.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		Blackholed:  s.Blackholed - prev.Blackholed,
		BufferDrops: s.BufferDrops - prev.BufferDrops,
		PFCPauses:   s.PFCPauses - prev.PFCPauses,
	}
}
