package faults

import (
	"reflect"
	"testing"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

func leafSpine(seed int64) (*netsim.Network, *topo.Fabric) {
	net := netsim.New(seed)
	fab := topo.LeafSpine(net, 2, 3, 2, topo.DefaultConfig())
	return net, fab
}

func TestLinksByRole(t *testing.T) {
	_, fab := leafSpine(1)
	ls := Links(fab)
	if got := len(ls.Of(HostLeaf)); got != 6 {
		t.Errorf("host-leaf links = %d, want 6", got)
	}
	if got := len(ls.Of(LeafSpine)); got != 4 {
		t.Errorf("leaf-spine links = %d, want 4", got)
	}
	if got := len(ls.Of(SpineCore)); got != 0 {
		t.Errorf("spine-core links = %d, want 0", got)
	}
	if got := ls.Total(); got != 10 {
		t.Errorf("total links = %d, want 10", got)
	}
	// Every link must have both ends wired to each other.
	for r := Role(0); r < numRoles; r++ {
		for _, l := range ls.Of(r) {
			if l.A.Peer != l.B || l.B.Peer != l.A {
				t.Fatalf("%s link %s ends are not peers", r, l.Name())
			}
		}
	}
}

func TestLinksFatTreeRoles(t *testing.T) {
	net := netsim.New(1)
	fab := topo.FatTree(net, 4, topo.DefaultConfig())
	ls := Links(fab)
	// k=4: 16 hosts, 16 edge-agg links, 16 agg-core links.
	if got := len(ls.Of(HostLeaf)); got != 16 {
		t.Errorf("host-leaf links = %d, want 16", got)
	}
	if got := len(ls.Of(LeafSpine)); got != 16 {
		t.Errorf("leaf-spine links = %d, want 16", got)
	}
	if got := len(ls.Of(SpineCore)); got != 16 {
		t.Errorf("spine-core links = %d, want 16", got)
	}
}

func TestPlanSortedStable(t *testing.T) {
	var p Plan
	p.Events = []Event{
		{At: 30, Kind: LinkUp, Index: 2},
		{At: 10, Kind: LinkDown, Index: 0},
		{At: 30, Kind: LinkDown, Index: 1}, // same time as the LinkUp above
		{At: 20, Kind: Degrade, Index: 3, Factor: 0.5},
	}
	got := p.Sorted()
	wantIdx := []int{0, 3, 2, 1}
	for i, idx := range wantIdx {
		if got[i].Index != idx {
			t.Fatalf("sorted[%d].Index = %d, want %d (order %v)", i, got[i].Index, idx, got)
		}
	}
	// Ties keep insertion order: LinkUp(2) before LinkDown(1).
	if got[2].Kind != LinkUp || got[3].Kind != LinkDown {
		t.Errorf("tie at t=30 not stable: got %v then %v", got[2].Kind, got[3].Kind)
	}
	if len(p.Events) != 4 || p.Events[0].At != 30 {
		t.Errorf("Sorted mutated the plan: %v", p.Events)
	}
}

func TestPlanValidate(t *testing.T) {
	_, fab := leafSpine(1)
	ls := Links(fab)
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"good", *new(Plan).LinkDownUp(LeafSpine, 0, 0, simtime.Microsecond), true},
		{"index out of range", *new(Plan).LinkDownUp(LeafSpine, 4, 0, simtime.Microsecond), false},
		{"no spine-core links", *new(Plan).LinkDownUp(SpineCore, 0, 0, simtime.Microsecond), false},
		{"negative offset", Plan{Events: []Event{{At: -1, Kind: LinkDown, Role: HostLeaf}}}, false},
		{"degrade factor 1", Plan{Events: []Event{{Kind: Degrade, Role: HostLeaf, Factor: 1}}}, false},
		{"good brownout", *new(Plan).Brownout(HostLeaf, 2, 0.5, 0, simtime.Microsecond), true},
		{"flap too many links", Plan{Flaps: []Flap{{Role: LeafSpine, Links: 5, MTBF: 1, MTTR: 1}}}, false},
		{"flap zero mtbf", Plan{Flaps: []Flap{{Role: LeafSpine, Links: 1, MTTR: 1}}}, false},
		{"good flap", Plan{Flaps: []Flap{{Role: LeafSpine, Links: 2, MTBF: 1, MTTR: 1}}}, true},
	}
	for _, c := range cases {
		err := c.plan.Validate(ls)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestInjectorTimeline(t *testing.T) {
	net, fab := leafSpine(1)
	var plan Plan
	plan.LinkDownUp(LeafSpine, 0, 10*simtime.Microsecond, 50*simtime.Microsecond)
	plan.Brownout(HostLeaf, 1, 0.5, 20*simtime.Microsecond, 40*simtime.Microsecond)
	in, err := NewInjector(net, fab, plan)
	if err != nil {
		t.Fatal(err)
	}
	link := in.Links().Of(LeafSpine)[0]
	hostLink := in.Links().Of(HostLeaf)[1]
	nominal := hostLink.A.Bandwidth

	in.Start()
	net.RunUntil(simtime.Time(0).Add(30 * simtime.Microsecond))
	if !link.Down() {
		t.Error("leaf-spine link should be down at t=30µs")
	}
	if got := hostLink.A.Bandwidth; got != nominal/2 {
		t.Errorf("degraded bandwidth = %v, want %v", got, nominal/2)
	}
	net.Run()
	if link.Down() {
		t.Error("leaf-spine link should be repaired after the plan drains")
	}
	if got := hostLink.A.Bandwidth; got != nominal {
		t.Errorf("restored bandwidth = %v, want nominal %v", got, nominal)
	}

	wantKinds := []Kind{LinkDown, Degrade, Restore, LinkUp}
	if len(in.Log) != len(wantKinds) {
		t.Fatalf("log has %d entries, want %d: %v", len(in.Log), len(wantKinds), in.Log)
	}
	for i, k := range wantKinds {
		if in.Log[i].Kind != k {
			t.Errorf("log[%d].Kind = %v, want %v", i, in.Log[i].Kind, k)
		}
	}
	if want := simtime.Time(0).Add(10 * simtime.Microsecond); in.FirstFaultAt != want {
		t.Errorf("FirstFaultAt = %v, want %v", in.FirstFaultAt, want)
	}
	if want := simtime.Time(0).Add(50 * simtime.Microsecond); in.LastRepairAt != want {
		t.Errorf("LastRepairAt = %v, want %v", in.LastRepairAt, want)
	}
}

func flapLog(t *testing.T, seed int64) []Applied {
	t.Helper()
	net, fab := leafSpine(seed)
	plan := Plan{
		Flaps:   []Flap{{Role: LeafSpine, Links: 2, MTBF: 200 * simtime.Microsecond, MTTR: 50 * simtime.Microsecond}},
		Horizon: 5 * simtime.Millisecond,
	}
	in, err := NewInjector(net, fab, plan)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	net.Run() // horizon bounds the flap processes, so the queue drains
	return in.Log
}

func TestFlapDeterminism(t *testing.T) {
	a := flapLog(t, 7)
	b := flapLog(t, 7)
	if len(a) == 0 {
		t.Fatal("flap process produced no events over 5ms with MTBF 200µs")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed flap logs differ:\n a=%v\n b=%v", a, b)
	}
}

func TestFlapNeverStrandsLinks(t *testing.T) {
	net, fab := leafSpine(3)
	plan := Plan{
		Flaps:   []Flap{{Role: LeafSpine, Links: 4, MTBF: 100 * simtime.Microsecond, MTTR: 100 * simtime.Microsecond}},
		Horizon: 2 * simtime.Millisecond,
	}
	in, err := NewInjector(net, fab, plan)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	net.Run()
	for _, l := range in.Links().Of(LeafSpine) {
		if l.Down() {
			t.Errorf("link %s stranded down after the horizon drained", l.Name())
		}
	}
	downs, ups := 0, 0
	for _, a := range in.Log {
		switch a.Kind {
		case LinkDown:
			downs++
		case LinkUp:
			ups++
		}
	}
	if downs != ups {
		t.Errorf("unbalanced flap log: %d downs, %d ups", downs, ups)
	}
	if in.FlapDowns != downs {
		t.Errorf("FlapDowns = %d, want %d", in.FlapDowns, downs)
	}
}

func TestInjectorHeal(t *testing.T) {
	net, fab := leafSpine(1)
	var plan Plan
	plan.LinkDownUp(LeafSpine, 1, 0, simtime.Second) // repair far in the future
	plan.Brownout(HostLeaf, 0, 0.25, 0, simtime.Second)
	in, err := NewInjector(net, fab, plan)
	if err != nil {
		t.Fatal(err)
	}
	nominal := in.Links().Of(HostLeaf)[0].A.Bandwidth
	in.Start()
	net.RunUntil(simtime.Time(0).Add(simtime.Microsecond))
	if !in.Links().Of(LeafSpine)[1].Down() {
		t.Fatal("link should be down before Heal")
	}
	in.Stop()
	in.Heal()
	if in.Links().Of(LeafSpine)[1].Down() {
		t.Error("Heal left the link down")
	}
	if got := in.Links().Of(HostLeaf)[0].A.Bandwidth; got != nominal {
		t.Errorf("Heal left bandwidth %v, want %v", got, nominal)
	}
}

func TestStaleDropStaleness(t *testing.T) {
	f := NewStaleDrop(1, Telemetry{StaleSlots: 2})
	var got []float64
	for i := 1; i <= 5; i++ {
		obs, ok := f.Sample(0, 0, acc.Observation{Util: float64(i)})
		if !ok {
			t.Fatalf("sample %d dropped with DropProb=0", i)
		}
		got = append(got, obs.Util)
	}
	// Two slots of staleness: the first window is re-delivered during
	// warmup, then the stream lags by exactly two.
	want := []float64{1, 1, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stale delivery = %v, want %v", got, want)
	}
	if f.Delivered != 5 || f.Drops != 0 {
		t.Errorf("counters = %d delivered / %d drops, want 5/0", f.Delivered, f.Drops)
	}
	// Queues are independent FIFOs.
	obs, _ := f.Sample(0, 1, acc.Observation{Util: 99})
	if obs.Util != 99 {
		t.Errorf("queue 1 first sample = %v, want its own stream (99)", obs.Util)
	}
}

func TestStaleDropAllDropped(t *testing.T) {
	f := NewStaleDrop(1, Telemetry{DropProb: 1})
	for i := 0; i < 10; i++ {
		if _, ok := f.Sample(0, 0, acc.Observation{Util: 1}); ok {
			t.Fatal("DropProb=1 delivered a window")
		}
	}
	if f.Drops != 10 || f.Delivered != 0 {
		t.Errorf("counters = %d drops / %d delivered, want 10/0", f.Drops, f.Delivered)
	}
}

func TestStaleDropDeterminism(t *testing.T) {
	run := func() []bool {
		f := NewStaleDrop(42, Telemetry{DropProb: 0.5})
		var oks []bool
		for i := 0; i < 50; i++ {
			_, ok := f.Sample(0, 0, acc.Observation{Util: float64(i)})
			oks = append(oks, ok)
		}
		return oks
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("same-seed StaleDrop drop sequence differs between runs")
	}
}

func TestRecoveryTime(t *testing.T) {
	tr := &Tracker{Period: simtime.Microsecond}
	at := func(i int) simtime.Time { return simtime.Time(0).Add(simtime.Duration(i) * simtime.Microsecond) }
	// 10 samples at baseline 10, a dip to 2 during the fault, then back.
	vals := []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 2, 2, 2, 2, 9.5, 9.6, 10, 10}
	for i, v := range vals {
		tr.Goodput.Add(at(i), v)
	}
	faultAt, repairAt := at(10), at(13)
	d, ok := tr.RecoveryTime(faultAt, repairAt, 0.9, 2)
	if !ok {
		t.Fatal("recovery not detected")
	}
	// First sustained run of two samples >= 9.0 starts at t=14µs, 1µs
	// after the repair.
	if want := simtime.Microsecond; d != want {
		t.Errorf("recovery time = %v, want %v", d, want)
	}
	if _, ok := tr.RecoveryTime(faultAt, repairAt, 0.9, 10); ok {
		t.Error("recovery reported with an unsatisfiable sustain window")
	}
	if _, ok := tr.RecoveryTime(at(0), at(0), 0.9, 1); ok {
		t.Error("recovery reported with no pre-fault baseline")
	}
}
