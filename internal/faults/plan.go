package faults

import (
	"fmt"
	"sort"

	"github.com/accnet/acc/internal/simtime"
)

// Kind enumerates the typed fault actions a plan can schedule.
type Kind int

const (
	// LinkDown administratively fails a link; in-flight packets are
	// blackholed (netsim.Port.SetDown semantics) and ECMP routes around it.
	LinkDown Kind = iota
	// LinkUp repairs a previously failed link.
	LinkUp
	// Degrade multiplies the link's bandwidth by Event.Factor (a brownout:
	// an optic renegotiating a lower rate). Both directions are degraded.
	Degrade
	// Restore returns a degraded link to its nominal bandwidth.
	Restore
)

// String names the event kind for logs and tables.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "down"
	case LinkUp:
		return "up"
	case Degrade:
		return "degrade"
	case Restore:
		return "restore"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault action on one link, addressed by (Role,
// Index) into the fabric's LinkSet. At is relative to Injector.Start.
type Event struct {
	At     simtime.Duration
	Kind   Kind
	Role   Role
	Index  int
	Factor float64 // Degrade only: fraction of nominal bandwidth, in (0,1)
}

// Flap is a random failure/repair process on one link class: each of the
// first Links links of Role alternates up (exponential mean MTBF) and down
// (exponential mean MTTR), with all draws taken from the injector's RNG
// stream — the classic memoryless link-flap model.
type Flap struct {
	Role  Role
	Links int
	MTBF  simtime.Duration // mean up time between failures
	MTTR  simtime.Duration // mean down time until repair
}

// Telemetry configures collector-path faults for ACC tuners (see StaleDrop):
// observations delayed by StaleSlots monitoring intervals, and each window
// lost independently with probability DropProb.
type Telemetry struct {
	StaleSlots int
	DropProb   float64
}

// Plan is a declarative fault timeline: fixed events plus random flap
// processes. The zero value is a no-op plan.
type Plan struct {
	Events []Event
	Flaps  []Flap
	// Horizon stops flap processes from scheduling new failures beyond
	// this offset from Start (repairs still run, so links end up again).
	// Zero means no horizon.
	Horizon simtime.Duration
}

// LinkDownUp schedules a failure and its repair on one link.
func (p *Plan) LinkDownUp(role Role, index int, downAt, upAt simtime.Duration) *Plan {
	p.Events = append(p.Events,
		Event{At: downAt, Kind: LinkDown, Role: role, Index: index},
		Event{At: upAt, Kind: LinkUp, Role: role, Index: index})
	return p
}

// Brownout schedules a bandwidth degradation window on one link.
func (p *Plan) Brownout(role Role, index int, factor float64, at, until simtime.Duration) *Plan {
	p.Events = append(p.Events,
		Event{At: at, Kind: Degrade, Role: role, Index: index, Factor: factor},
		Event{At: until, Kind: Restore, Role: role, Index: index})
	return p
}

// AddFlap attaches a flap process to the plan.
func (p *Plan) AddFlap(f Flap) *Plan {
	p.Flaps = append(p.Flaps, f)
	return p
}

// Sorted returns the timeline events ordered by At, preserving insertion
// order among equal times (stable), so a plan built in any order schedules
// identically.
func (p *Plan) Sorted() []Event {
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate checks every event and flap against the fabric's links.
func (p *Plan) Validate(ls *LinkSet) error {
	for i, ev := range p.Events {
		links := ls.Of(ev.Role)
		if ev.Index < 0 || ev.Index >= len(links) {
			return fmt.Errorf("faults: event %d (%s %s) index %d out of range: fabric has %d %s links",
				i, ev.Kind, ev.Role, ev.Index, len(links), ev.Role)
		}
		if ev.At < 0 {
			return fmt.Errorf("faults: event %d (%s %s[%d]) has negative offset %v",
				i, ev.Kind, ev.Role, ev.Index, ev.At)
		}
		if ev.Kind == Degrade && (ev.Factor <= 0 || ev.Factor >= 1) {
			return fmt.Errorf("faults: event %d degrades %s[%d] by factor %v, want (0,1)",
				i, ev.Role, ev.Index, ev.Factor)
		}
	}
	for i, f := range p.Flaps {
		links := ls.Of(f.Role)
		if f.Links <= 0 || f.Links > len(links) {
			return fmt.Errorf("faults: flap %d wants %d %s links, fabric has %d",
				i, f.Links, f.Role, len(links))
		}
		if f.MTBF <= 0 || f.MTTR <= 0 {
			return fmt.Errorf("faults: flap %d needs positive MTBF/MTTR, got %v/%v", i, f.MTBF, f.MTTR)
		}
	}
	return nil
}
