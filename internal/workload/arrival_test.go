package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

func TestNewArrivalValidation(t *testing.T) {
	for _, c := range []struct {
		process     string
		rate, shape float64
	}{
		{"pareto", 1e5, 1},
		{ArrivalPoisson, 0, 1},
		{ArrivalPoisson, -3, 1},
		{ArrivalGamma, math.NaN(), 1},
		{ArrivalWeibull, math.Inf(1), 1},
		{ArrivalGamma, 1e5, -2},
	} {
		if _, err := NewArrival(c.process, c.rate, c.shape); err == nil {
			t.Errorf("NewArrival(%q, %v, %v) accepted invalid parameters", c.process, c.rate, c.shape)
		}
	}
	for _, p := range []string{ArrivalPoisson, ArrivalGamma, ArrivalWeibull} {
		if _, err := NewArrival(p, 1e5, 0.7); err != nil {
			t.Errorf("NewArrival(%q): %v", p, err)
		}
	}
}

// Two identically-seeded generators must produce identical gap sequences —
// the property per-class replay determinism rests on.
func TestArrivalGapDeterministic(t *testing.T) {
	for _, p := range []string{ArrivalPoisson, ArrivalGamma, ArrivalWeibull} {
		a, err := NewArrival(p, 2e5, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		r1 := rand.New(rand.NewSource(99))
		r2 := rand.New(rand.NewSource(99))
		for i := 0; i < 1000; i++ {
			g1, g2 := a.Gap(r1), a.Gap(r2)
			if g1 != g2 {
				t.Fatalf("%s: draw %d diverged (%v vs %v)", p, i, g1, g2)
			}
			if g1 <= 0 {
				t.Fatalf("%s: non-positive gap %v", p, g1)
			}
		}
	}
}

// All three processes are normalized to the same mean inter-arrival time:
// the empirical mean gap must approximate 1/rate regardless of shape.
func TestArrivalMeanGap(t *testing.T) {
	const rate = 1e5 // 10us mean gap
	for _, c := range []struct {
		process string
		shape   float64
	}{
		{ArrivalPoisson, 1},
		{ArrivalGamma, 0.5},
		{ArrivalGamma, 3},
		{ArrivalWeibull, 0.6},
		{ArrivalWeibull, 2},
	} {
		a, err := NewArrival(c.process, rate, c.shape)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(a.Gap(rng))
		}
		got := sum / n
		want := float64(simtime.Second) / rate
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s shape=%v: mean gap %.0fns, want ~%.0fns", c.process, c.shape, got, want)
		}
	}
}
