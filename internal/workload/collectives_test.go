package workload

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

func TestTreeAllReduceRounds(t *testing.T) {
	// 5 nodes exercises the non-power-of-two tree shape.
	net := netsimNew(11)
	fab := topoStar(net, 5)
	job := RunTreeAllReduce(net, TreeAllReduceConfig{
		Nodes:       fab.Hosts,
		Bytes:       100 * simtime.KB,
		ComputeTime: 20 * simtime.Microsecond,
		Start:       dcqcnStarterFor(net),
	})
	net.RunUntil(simtimeT(20 * simtime.Millisecond))
	job.Stop()
	if job.Rounds < 2 {
		t.Fatalf("only %d tree all-reduce rounds completed", job.Rounds)
	}
	if len(job.StepTimes) != job.Rounds {
		t.Fatal("step times not recorded per round")
	}
	if job.RoundsPerSec() <= 0 {
		t.Fatal("round rate not positive")
	}
}

func TestAllToAllRounds(t *testing.T) {
	net := netsimNew(12)
	fab := topoStar(net, 4)
	job := RunAllToAll(net, AllToAllConfig{
		Nodes:       fab.Hosts,
		Bytes:       64 * simtime.KB,
		ComputeTime: 10 * simtime.Microsecond,
		Start:       dcqcnStarterFor(net),
	})
	net.RunUntil(simtimeT(10 * simtime.Millisecond))
	job.Stop()
	if job.Rounds < 2 {
		t.Fatalf("only %d all-to-all rounds completed", job.Rounds)
	}
	if len(job.StepTimes) != job.Rounds {
		t.Fatal("step times not recorded per round")
	}
}

func TestPipelineRounds(t *testing.T) {
	net := netsimNew(13)
	fab := topoStar(net, 3)
	job := RunPipeline(net, PipelineConfig{
		Stages:          fab.Hosts,
		MicroBatches:    2,
		ActivationBytes: 32 * simtime.KB,
		ComputeTime:     10 * simtime.Microsecond,
		Start:           dcqcnStarterFor(net),
	})
	net.RunUntil(simtimeT(10 * simtime.Millisecond))
	job.Stop()
	if job.Rounds < 1 {
		t.Fatal("pipeline completed no iterations")
	}
	if len(job.StepTimes) != job.Rounds {
		t.Fatal("step times not recorded per iteration")
	}
}

// Degenerate collectives (too few nodes to communicate) must stay inert
// rather than panic or report a nonsense rate.
func TestCollectivesDegenerate(t *testing.T) {
	net := netsimNew(14)
	fab := topoStar(net, 1)
	tree := RunTreeAllReduce(net, TreeAllReduceConfig{Nodes: fab.Hosts, Bytes: 1, Start: dcqcnStarterFor(net)})
	a2a := RunAllToAll(net, AllToAllConfig{Nodes: fab.Hosts, Bytes: 1, Start: dcqcnStarterFor(net)})
	pipe := RunPipeline(net, PipelineConfig{Stages: fab.Hosts, MicroBatches: 2, ActivationBytes: 1, Start: dcqcnStarterFor(net)})
	net.RunUntil(simtimeT(simtime.Millisecond))
	for _, rps := range []float64{tree.RoundsPerSec(), a2a.RoundsPerSec(), pipe.RoundsPerSec()} {
		if rps != 0 {
			t.Fatalf("degenerate collective reports %v rounds/sec, want 0", rps)
		}
	}
}

// RoundsPerSec must return 0 — not NaN, not a division panic — both before
// any virtual time has elapsed and after time has passed with zero completed
// rounds.
func TestRoundsPerSecZeroRounds(t *testing.T) {
	net := netsimNew(15)
	fab := topoStar(net, 4)
	job := RunAllReduce(net, AllReduceConfig{
		Nodes:       fab.Hosts,
		Bytes:       400 * simtime.KB,
		ComputeTime: 50 * simtime.Microsecond,
		Start:       dcqcnStarterFor(net),
	})
	// No time elapsed yet: Rounds == 0, elapsed == 0.
	if got := job.RoundsPerSec(); got != 0 {
		t.Fatalf("RoundsPerSec before any progress = %v, want 0", got)
	}
	// Time elapsed but far too little for a 400KB x 2(N-1)-step round:
	// Rounds == 0 with elapsed > 0 must still report 0.
	net.RunUntil(simtimeT(2 * simtime.Microsecond))
	if job.Rounds != 0 {
		t.Skip("round completed faster than expected; guard untestable at this horizon")
	}
	if got := job.RoundsPerSec(); got != 0 {
		t.Fatalf("RoundsPerSec with zero rounds = %v, want 0", got)
	}
	job.Stop()
}

// StepTimes is pre-sized so steady-state rounds never grow the slice.
func TestStepTimesPresized(t *testing.T) {
	net := netsimNew(16)
	fab := topoStar(net, 2)
	job := RunAllReduce(net, AllReduceConfig{Nodes: fab.Hosts, Bytes: 1, Start: dcqcnStarterFor(net)})
	if cap(job.StepTimes) < collectiveStepCap {
		t.Fatalf("StepTimes cap %d, want >= %d", cap(job.StepTimes), collectiveStepCap)
	}
	tree := RunTreeAllReduce(net, TreeAllReduceConfig{Nodes: fab.Hosts, Bytes: 1, Start: dcqcnStarterFor(net)})
	if cap(tree.StepTimes) < collectiveStepCap {
		t.Fatalf("tree StepTimes cap %d, want >= %d", cap(tree.StepTimes), collectiveStepCap)
	}
}
