package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

func testTrace() *Trace {
	return &Trace{
		Name: "t", Seed: 7, NLeaf: 2, HostsPerLeaf: 2, NSpine: 1,
		Horizon: simtime.Time(100 * simtime.Microsecond),
		Classes: []TraceClass{{Name: "web", SLO: "latency"}, {Name: "bulk", SLO: "bulk"}},
		Flows: []TraceFlow{
			{Start: 0, SrcLeaf: 0, SrcHost: 0, DstLeaf: 1, DstHost: 1, Bytes: 1500, Class: 0, Transport: TransportDCQCN},
			{Start: simtime.Time(3 * simtime.Microsecond), SrcLeaf: 1, SrcHost: 0, DstLeaf: 0, DstHost: 1, Bytes: 1 << 20, Class: 1, Transport: TransportTCP},
			{Start: simtime.Time(9 * simtime.Microsecond), SrcLeaf: 0, SrcHost: 1, DstLeaf: 1, DstHost: 0, Bytes: 64, Class: 0, Transport: TransportDCQCN},
		},
	}
}

// Both encodings must round-trip to an Equal trace, and re-encoding the
// decoded trace must reproduce the original bytes — the canonical-encoding
// property CI's byte-diff of recorded traces relies on.
func TestTraceRoundTripCanonical(t *testing.T) {
	tr := testTrace()
	encoders := map[string]func(*Trace, *bytes.Buffer) error{
		"jsonl":  func(tr *Trace, b *bytes.Buffer) error { return tr.EncodeJSONL(b) },
		"binary": func(tr *Trace, b *bytes.Buffer) error { return tr.EncodeBinary(b) },
	}
	for name, enc := range encoders {
		var b1 bytes.Buffer
		if err := enc(tr, &b1); err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		got, err := DecodeTrace(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		if !tr.Equal(got) {
			t.Fatalf("%s round-trip changed the trace", name)
		}
		var b2 bytes.Buffer
		if err := enc(got, &b2); err != nil {
			t.Fatalf("%s re-encode: %v", name, err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("%s encoding is not canonical: re-encode differs", name)
		}
	}
}

func TestTraceWriteFileSelectsFormat(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace()
	for _, name := range []string{"t.bin", "t.jsonl"} {
		path := filepath.Join(dir, name)
		if err := tr.WriteFile(path); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		isBinary := bytes.HasPrefix(buf, traceMagic)
		if want := filepath.Ext(name) == ".bin"; isBinary != want {
			t.Fatalf("%s: binary=%v, want %v", name, isBinary, want)
		}
		got, err := ReadTraceFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !tr.Equal(got) {
			t.Fatalf("%s: file round-trip changed the trace", name)
		}
	}
}

func TestTraceValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
	}{
		{"zero geometry", func(tr *Trace) { tr.NLeaf = 0 }},
		{"zero horizon", func(tr *Trace) { tr.Horizon = 0 }},
		{"leaf out of range", func(tr *Trace) { tr.Flows[0].DstLeaf = 2 }},
		{"host out of range", func(tr *Trace) { tr.Flows[0].SrcHost = 9 }},
		{"class out of range", func(tr *Trace) { tr.Flows[1].Class = 5 }},
		{"self send", func(tr *Trace) { f := &tr.Flows[0]; f.DstLeaf, f.DstHost = f.SrcLeaf, f.SrcHost }},
		{"zero bytes", func(tr *Trace) { tr.Flows[2].Bytes = 0 }},
		{"unknown transport", func(tr *Trace) { tr.Flows[0].Transport = 9 }},
		{"start past horizon", func(tr *Trace) { tr.Flows[2].Start = tr.Horizon + 1 }},
	}
	for _, c := range cases {
		tr := testTrace()
		c.mut(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid trace", c.name)
		}
	}
	if err := testTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestParseTransport(t *testing.T) {
	for s, want := range map[string]FlowTransport{
		"": TransportDCQCN, "dcqcn": TransportDCQCN, "rdma": TransportDCQCN,
		"tcp": TransportTCP, "dctcp": TransportTCP,
	} {
		got, err := ParseTransport(s)
		if err != nil || got != want {
			t.Errorf("ParseTransport(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTransport("quic"); err == nil {
		t.Error("unknown transport accepted")
	}
}

// A plan recorder re-records the source trace with observed start times; a
// flow never observed (still queued at the horizon) is dropped.
func TestPlanRecorder(t *testing.T) {
	src := testTrace()
	rec := NewPlanRecorder(src)
	if _, ok := rec.Observed(0); ok {
		t.Fatal("unobserved flow reported as observed")
	}
	rec.ObserveStart(0, 10)
	rec.ObserveStart(2, 5) // observed out of plan order
	got := rec.Trace()
	if len(got.Flows) != 2 {
		t.Fatalf("re-recorded %d flows, want 2 (unobserved dropped)", len(got.Flows))
	}
	// Re-recorded flows sort by observed start: flow 2 (at 5) before flow 0.
	if got.Flows[0].Bytes != 64 || got.Flows[0].Start != 5 {
		t.Fatalf("first re-recorded flow = %+v, want flow 2 at t=5", got.Flows[0])
	}
	if got.Flows[1].Start != 10 {
		t.Fatalf("second re-recorded flow starts at %v, want 10", got.Flows[1].Start)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("re-recorded trace invalid: %v", err)
	}
	if len(got.Classes) != len(src.Classes) {
		t.Fatal("plan recorder must preserve the source class table")
	}
}

func TestLiveRecorder(t *testing.T) {
	// Hosts 0..3 map to a 2x2 fabric; host 99 is unlocatable.
	locate := func(id int) (int, int, bool) {
		if id < 0 || id > 3 {
			return 0, 0, false
		}
		return id / 2, id % 2, true
	}
	rec := NewLiveRecorder("live", 3, 2, 2, 1, simtime.Time(simtime.Millisecond), locate)
	rec.RecordFlow(20, 0, 3, 100, "web", "latency", TransportDCQCN)
	rec.RecordFlow(10, 2, 1, 200, "bulk", "bulk", TransportTCP)
	rec.RecordFlow(30, 99, 1, 300, "web", "latency", TransportDCQCN) // dropped
	rec.RecordFlow(40, 1, 2, 400, "web", "latency", TransportDCQCN)
	got := rec.Trace()
	if err := got.Validate(); err != nil {
		t.Fatalf("live trace invalid: %v", err)
	}
	if len(got.Flows) != 3 {
		t.Fatalf("recorded %d flows, want 3 (unlocatable host dropped)", len(got.Flows))
	}
	if got.Flows[0].Start != 10 || got.Flows[1].Start != 20 || got.Flows[2].Start != 40 {
		t.Fatalf("flows not sorted by start: %+v", got.Flows)
	}
	if len(got.Classes) != 2 {
		t.Fatalf("class table has %d entries, want 2", len(got.Classes))
	}
	// Both "web" flows must share one class index.
	if got.Flows[1].Class != got.Flows[2].Class {
		t.Fatal("same-named flows got different class indices")
	}
}
