package workload

// Deterministic flow-trace record/replay. A Trace is the engine-independent
// description of one run's offered traffic: every flow's endpoints, size,
// class, transport, and absolute start time, plus the fabric geometry and
// horizon needed to re-run it. Traces serialize to line-oriented JSON
// (human-greppable, one flow per line) or to a compact varint binary format
// (~1/6 the bytes), and convert to an engine-independent plan via
// psim.PlanFromTrace, so one captured trace replays bit-identically through
// the sequential packet engine, the sharded engine at any K, and the
// hybrid-fidelity fast path (see the differential tests in internal/exp and
// DESIGN.md "Workload engine").
//
// Recording happens from the live run: a Recorder observes each flow at the
// instant the engine actually starts it — via psim.Plan.OnStart for
// plan-driven runs, or by wrapping a StartFlowFunc for closed-loop jobs
// (collectives, Poisson generators) — so the captured trace reflects what
// the run executed, not merely what was intended.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// FlowTransport selects the protocol replaying one traced flow.
type FlowTransport uint8

const (
	// TransportDCQCN replays the flow over the RDMA rate-based transport.
	TransportDCQCN FlowTransport = iota
	// TransportTCP replays the flow over the windowed DCTCP transport.
	TransportTCP
)

func (t FlowTransport) String() string {
	if t == TransportTCP {
		return "tcp"
	}
	return "dcqcn"
}

// ParseTransport maps a spec/trace transport name to its enum.
func ParseTransport(s string) (FlowTransport, error) {
	switch s {
	case "", "dcqcn", "rdma":
		return TransportDCQCN, nil
	case "tcp", "dctcp":
		return TransportTCP, nil
	}
	return 0, fmt.Errorf("workload: unknown transport %q (want dcqcn or tcp)", s)
}

// TraceClass is one client/SLO class referenced by flows (by index), so the
// per-flow records stay fixed-size and the class table is written once.
type TraceClass struct {
	Name string `json:"name"`
	SLO  string `json:"slo,omitempty"`
}

// TraceFlow is one recorded flow. Endpoints address hosts by (leaf, host
// index under that leaf) — the same scheme as psim.HostRef — so a trace is
// meaningful on any engine building the same geometry.
type TraceFlow struct {
	Start     simtime.Time  `json:"t"`
	SrcLeaf   int           `json:"sl"`
	SrcHost   int           `json:"sh"`
	DstLeaf   int           `json:"dl"`
	DstHost   int           `json:"dh"`
	Bytes     int64         `json:"b"`
	Class     int           `json:"c"`
	Transport FlowTransport `json:"x,omitempty"`
}

// Trace is a replayable flow trace plus the run geometry it was captured on.
type Trace struct {
	Name         string       `json:"name"`
	Seed         int64        `json:"seed"`
	NLeaf        int          `json:"leaves"`
	HostsPerLeaf int          `json:"hosts_per_leaf"`
	NSpine       int          `json:"spines"`
	Horizon      simtime.Time `json:"horizon_ns"`

	Classes []TraceClass `json:"classes"`
	Flows   []TraceFlow  `json:"-"`
}

// Validate checks internal consistency: geometry positive, endpoints and
// class indices in range, sizes positive, and starts inside the horizon.
func (t *Trace) Validate() error {
	if t.NLeaf <= 0 || t.HostsPerLeaf <= 0 || t.NSpine <= 0 {
		return fmt.Errorf("workload: trace %q geometry %dx%dx%d must be positive", t.Name, t.NLeaf, t.HostsPerLeaf, t.NSpine)
	}
	if t.Horizon <= 0 {
		return fmt.Errorf("workload: trace %q horizon %v must be positive", t.Name, t.Horizon)
	}
	for i, f := range t.Flows {
		if f.SrcLeaf < 0 || f.SrcLeaf >= t.NLeaf || f.DstLeaf < 0 || f.DstLeaf >= t.NLeaf ||
			f.SrcHost < 0 || f.SrcHost >= t.HostsPerLeaf || f.DstHost < 0 || f.DstHost >= t.HostsPerLeaf {
			return fmt.Errorf("workload: trace %q flow %d endpoints (%d,%d)->(%d,%d) outside %d leaves x %d hosts",
				t.Name, i, f.SrcLeaf, f.SrcHost, f.DstLeaf, f.DstHost, t.NLeaf, t.HostsPerLeaf)
		}
		if f.SrcLeaf == f.DstLeaf && f.SrcHost == f.DstHost {
			return fmt.Errorf("workload: trace %q flow %d sends to itself", t.Name, i)
		}
		if f.Bytes <= 0 {
			return fmt.Errorf("workload: trace %q flow %d size %d must be positive", t.Name, i, f.Bytes)
		}
		if f.Class < 0 || f.Class >= len(t.Classes) {
			return fmt.Errorf("workload: trace %q flow %d class %d outside class table (%d classes)", t.Name, i, f.Class, len(t.Classes))
		}
		if f.Transport > TransportTCP {
			return fmt.Errorf("workload: trace %q flow %d unknown transport %d", t.Name, i, f.Transport)
		}
		if f.Start < 0 || f.Start >= t.Horizon {
			return fmt.Errorf("workload: trace %q flow %d start %v outside [0, horizon %v)", t.Name, i, f.Start, t.Horizon)
		}
	}
	return nil
}

// Equal reports whether two traces are identical, field for field.
func (t *Trace) Equal(o *Trace) bool {
	if t.Name != o.Name || t.Seed != o.Seed || t.NLeaf != o.NLeaf ||
		t.HostsPerLeaf != o.HostsPerLeaf || t.NSpine != o.NSpine || t.Horizon != o.Horizon ||
		len(t.Classes) != len(o.Classes) || len(t.Flows) != len(o.Flows) {
		return false
	}
	for i := range t.Classes {
		if t.Classes[i] != o.Classes[i] {
			return false
		}
	}
	for i := range t.Flows {
		if t.Flows[i] != o.Flows[i] {
			return false
		}
	}
	return true
}

// TotalBytes sums the offered bytes across all flows.
func (t *Trace) TotalBytes() int64 {
	var sum int64
	for _, f := range t.Flows {
		sum += f.Bytes
	}
	return sum
}

// ----- JSONL codec -----

// jsonHeader is the first line of the JSONL form: the trace metadata plus a
// format tag so a reader can reject foreign files with a clear error.
type jsonHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	*Trace
}

const (
	traceFormatTag   = "acc-flow-trace"
	traceJSONVersion = 1
)

// EncodeJSONL writes the trace as one header line followed by one compact
// JSON object per flow. The encoding is canonical: encoding the decode of an
// encoding reproduces the bytes exactly (the replay-artifact diff in CI
// leans on that).
func (t *Trace) EncodeJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(jsonHeader{Format: traceFormatTag, Version: traceJSONVersion, Trace: t})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for i := range t.Flows {
		line, err := json.Marshal(&t.Flows[i])
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// decodeJSONL parses the JSONL form.
func decodeJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("workload: empty trace file")
	}
	var hdr jsonHeader
	hdr.Trace = &Trace{}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if hdr.Format != traceFormatTag {
		return nil, fmt.Errorf("workload: not a flow trace (format %q, want %q)", hdr.Format, traceFormatTag)
	}
	if hdr.Version != traceJSONVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d (want %d)", hdr.Version, traceJSONVersion)
	}
	tr := hdr.Trace
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var f TraceFlow
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return nil, fmt.Errorf("workload: trace flow %d: %w", len(tr.Flows), err)
		}
		tr.Flows = append(tr.Flows, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, tr.Validate()
}

// ----- binary codec -----

// traceMagic opens the compact binary form; the trailing byte is the
// format version.
var traceMagic = []byte{'A', 'C', 'C', 'T', 1}

// EncodeBinary writes the compact varint binary form: magic, header,
// class table, then per-flow records with delta-encoded start times.
func (t *Trace) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(traceMagic)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	putVarint := func(v int64) {
		n := binary.PutVarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		bw.WriteString(s)
	}
	putString(t.Name)
	putVarint(t.Seed)
	putUvarint(uint64(t.NLeaf))
	putUvarint(uint64(t.HostsPerLeaf))
	putUvarint(uint64(t.NSpine))
	putUvarint(uint64(t.Horizon))
	putUvarint(uint64(len(t.Classes)))
	for _, c := range t.Classes {
		putString(c.Name)
		putString(c.SLO)
	}
	putUvarint(uint64(len(t.Flows)))
	prev := simtime.Time(0)
	for _, f := range t.Flows {
		putVarint(int64(f.Start - prev)) // signed: recorders need not sort
		prev = f.Start
		putUvarint(uint64(f.SrcLeaf))
		putUvarint(uint64(f.SrcHost))
		putUvarint(uint64(f.DstLeaf))
		putUvarint(uint64(f.DstHost))
		putUvarint(uint64(f.Bytes))
		putUvarint(uint64(f.Class))
		putUvarint(uint64(f.Transport))
	}
	return bw.Flush()
}

// decodeBinary parses the compact binary form (after the magic has been
// consumed by DecodeTrace's sniff).
func decodeBinary(br *bufio.Reader) (*Trace, error) {
	var err error
	getUvarint := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = binary.ReadUvarint(br)
		return v
	}
	getVarint := func() int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = binary.ReadVarint(br)
		return v
	}
	getString := func() string {
		n := getUvarint()
		if err != nil {
			return ""
		}
		if n > 1<<20 {
			err = fmt.Errorf("workload: binary trace string length %d implausible", n)
			return ""
		}
		buf := make([]byte, n)
		_, err = io.ReadFull(br, buf)
		return string(buf)
	}
	tr := &Trace{}
	tr.Name = getString()
	tr.Seed = getVarint()
	tr.NLeaf = int(getUvarint())
	tr.HostsPerLeaf = int(getUvarint())
	tr.NSpine = int(getUvarint())
	tr.Horizon = simtime.Time(getUvarint())
	nClasses := getUvarint()
	if err == nil && nClasses > 1<<16 {
		err = fmt.Errorf("workload: binary trace class count %d implausible", nClasses)
	}
	for i := uint64(0); err == nil && i < nClasses; i++ {
		tr.Classes = append(tr.Classes, TraceClass{Name: getString(), SLO: getString()})
	}
	nFlows := getUvarint()
	if err == nil && nFlows > 1<<32 {
		err = fmt.Errorf("workload: binary trace flow count %d implausible", nFlows)
	}
	if err == nil {
		tr.Flows = make([]TraceFlow, 0, nFlows)
	}
	prev := simtime.Time(0)
	for i := uint64(0); err == nil && i < nFlows; i++ {
		var f TraceFlow
		f.Start = prev + simtime.Time(getVarint())
		prev = f.Start
		f.SrcLeaf = int(getUvarint())
		f.SrcHost = int(getUvarint())
		f.DstLeaf = int(getUvarint())
		f.DstHost = int(getUvarint())
		f.Bytes = int64(getUvarint())
		f.Class = int(getUvarint())
		f.Transport = FlowTransport(getUvarint())
		tr.Flows = append(tr.Flows, f)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: binary trace: %w", err)
	}
	return tr, tr.Validate()
}

// DecodeTrace sniffs the format (binary magic vs JSON '{') and parses.
func DecodeTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(traceMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	if bytes.Equal(head, traceMagic) {
		br.Discard(len(traceMagic))
		return decodeBinary(br)
	}
	return decodeJSONL(br)
}

// WriteFile writes the trace to path, choosing the format by extension:
// ".bin" selects the compact binary form, anything else the JSONL form.
func (t *Trace) WriteFile(path string) error {
	var buf bytes.Buffer
	var err error
	if strings.HasSuffix(path, ".bin") {
		err = t.EncodeBinary(&buf)
	} else {
		err = t.EncodeJSONL(&buf)
	}
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadTraceFile reads and validates a trace in either format.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := DecodeTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// ----- recording -----

// Recorder captures the flows of a live run. Two hook styles feed it:
//
//   - ObserveStart(i, at) for plan-driven runs (wire it to psim.Plan.OnStart):
//     flow identity comes from the source trace, the recorder only stamps the
//     instant the engine actually started it. Observations land in a
//     per-flow slot, so concurrent shard workers may report without locking
//     and the recorded order is independent of goroutine interleaving.
//
//   - RecordFlow / Starter for closed-loop jobs (collectives, generators)
//     on a sequential Network: appends flows in start order under a mutex.
//
// Trace() then assembles the recorded trace, sorted stably by start time.
type Recorder struct {
	source   *Trace
	observed []simtime.Time // per source flow; -1 = never started

	mu      sync.Mutex
	classes []TraceClass
	byName  map[string]int
	flows   []TraceFlow
	locate  func(hostID int) (leaf, host int, ok bool)

	name         string
	seed         int64
	nLeaf        int
	hostsPerLeaf int
	nSpine       int
	horizon      simtime.Time
}

// NewPlanRecorder records a replay/generated-trace run: the flows of source
// are re-recorded at their observed start instants.
func NewPlanRecorder(source *Trace) *Recorder {
	obs := make([]simtime.Time, len(source.Flows))
	for i := range obs {
		obs[i] = -1
	}
	return &Recorder{source: source, observed: obs}
}

// ObserveStart stamps source flow i as started at the given instant. Safe
// for concurrent use across shard workers: each flow owns its slot.
func (r *Recorder) ObserveStart(i int, at simtime.Time) { r.observed[i] = at }

// Observed returns source flow i's recorded start instant; ok is false if
// the flow never started within the run.
func (r *Recorder) Observed(i int) (at simtime.Time, ok bool) {
	if i < 0 || i >= len(r.observed) || r.observed[i] < 0 {
		return 0, false
	}
	return r.observed[i], true
}

// NewLiveRecorder records arbitrary closed-loop traffic on a sequential
// Network. locate maps a netsim host id to its (leaf, host) coordinates —
// build it from topo.Fabric.HostsAt or psim.Engine.Hosts.
func NewLiveRecorder(name string, seed int64, nLeaf, hostsPerLeaf, nSpine int, horizon simtime.Time,
	locate func(hostID int) (leaf, host int, ok bool)) *Recorder {
	return &Recorder{
		name: name, seed: seed, nLeaf: nLeaf, hostsPerLeaf: hostsPerLeaf, nSpine: nSpine,
		horizon: horizon, locate: locate, byName: map[string]int{},
	}
}

// RecordFlow appends one live flow observation. Hosts outside the locate
// map are dropped (the run may include infrastructure traffic the trace
// format cannot address).
func (r *Recorder) RecordFlow(at simtime.Time, srcID, dstID int, size int64, class, slo string, tr FlowTransport) {
	sl, sh, ok := r.locate(srcID)
	if !ok {
		return
	}
	dl, dh, ok := r.locate(dstID)
	if !ok {
		return
	}
	r.mu.Lock()
	ci, seen := r.byName[class]
	if !seen {
		ci = len(r.classes)
		r.classes = append(r.classes, TraceClass{Name: class, SLO: slo})
		r.byName[class] = ci
	}
	r.flows = append(r.flows, TraceFlow{
		Start: at, SrcLeaf: sl, SrcHost: sh, DstLeaf: dl, DstHost: dh,
		Bytes: size, Class: ci, Transport: tr,
	})
	r.mu.Unlock()
}

// Starter wraps a transport starter so every launched flow is recorded at
// the current virtual time before it enters the engine.
func (r *Recorder) Starter(class, slo string, tr FlowTransport, start StartFlowFunc) StartFlowFunc {
	return func(src, dst *netsim.Host, size int64, onDone func()) {
		r.RecordFlow(src.Net().Now(), src.ID(), dst.ID(), size, class, slo, tr)
		start(src, dst, size, onDone)
	}
}

// Trace assembles the recorded trace: observed flows stably sorted by start
// time (ties keep recording order, which for plan runs is plan order — the
// engines' admission order at equal instants). Plan-recorder flows that
// never started (their start event lay beyond the run horizon) are dropped.
func (r *Recorder) Trace() *Trace {
	var tr *Trace
	if r.source != nil {
		tr = &Trace{
			Name: r.source.Name, Seed: r.source.Seed,
			NLeaf: r.source.NLeaf, HostsPerLeaf: r.source.HostsPerLeaf, NSpine: r.source.NSpine,
			Horizon: r.source.Horizon,
			Classes: append([]TraceClass(nil), r.source.Classes...),
		}
		for i, f := range r.source.Flows {
			if r.observed[i] < 0 {
				continue
			}
			f.Start = r.observed[i]
			tr.Flows = append(tr.Flows, f)
		}
	} else {
		r.mu.Lock()
		tr = &Trace{
			Name: r.name, Seed: r.seed,
			NLeaf: r.nLeaf, HostsPerLeaf: r.hostsPerLeaf, NSpine: r.nSpine,
			Horizon: r.horizon,
			Classes: append([]TraceClass(nil), r.classes...),
			Flows:   append([]TraceFlow(nil), r.flows...),
		}
		r.mu.Unlock()
	}
	sort.SliceStable(tr.Flows, func(i, j int) bool { return tr.Flows[i].Start < tr.Flows[j].Start })
	return tr
}
