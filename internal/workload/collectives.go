package workload

// AI-fabric collective patterns beyond the ring all-reduce (allreduce.go):
// binary-tree all-reduce (reduce up, broadcast down — latency-optimal for
// small tensors), MoE-style personalized all-to-all (every expert exchanges
// a shard with every other, the dominant pattern of mixture-of-experts
// layers), and pipeline-parallel wavefront traffic (microbatches marching
// through stages, with the fill/drain bubbles pipeline schedules exhibit).
// All are closed-loop jobs on a sequential Network, driven through the same
// StartFlowFunc seam as the generators — so they compose with background
// spec traffic and record through Recorder.Starter like any other flow
// source.

import (
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// jobStats is the common bookkeeping of a running collective loop.
type jobStats struct {
	net         *netsim.Network
	stopped     bool
	startedAt   simtime.Time
	computeTime simtime.Duration

	// Rounds counts completed collectives.
	Rounds int
	// StepTimes records each collective's duration.
	StepTimes []simtime.Duration
}

func newJobStats(net *netsim.Network) jobStats {
	return jobStats{net: net, startedAt: net.Now(), StepTimes: make([]simtime.Duration, 0, collectiveStepCap)}
}

// collectiveStepCap pre-sizes StepTimes so steady-state rounds don't grow
// the slice inside the event loop.
const collectiveStepCap = 64

// Stop ends the loop after the current round.
func (j *jobStats) Stop() { j.stopped = true }

// RoundsPerSec returns the collective rate so far; zero before the first
// round completes (and at zero elapsed virtual time).
func (j *jobStats) RoundsPerSec() float64 {
	if j.Rounds == 0 {
		return 0
	}
	el := j.net.Now().Sub(j.startedAt).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(j.Rounds) / el
}

// finishRound records one completed collective and schedules the next.
func (j *jobStats) finishRound(t0 simtime.Time, next func()) {
	j.Rounds++
	j.StepTimes = append(j.StepTimes, j.net.Now().Sub(t0))
	j.net.Q.After(j.computeTime, next)
}

// ----- tree all-reduce -----

// TreeAllReduceConfig models a binary-tree all-reduce: ceil(log2 N) reduce
// phases combining partial sums up the tree, then the mirror broadcast
// phases fanning the result back down. Versus the ring, step count is
// logarithmic but per-phase transfers carry the full tensor — the classic
// small-tensor/latency-bound trade.
type TreeAllReduceConfig struct {
	Nodes []*netsim.Host
	// Bytes is the tensor volume each edge of the tree carries.
	Bytes int64
	// ComputeTime elapses between collectives.
	ComputeTime simtime.Duration
	Start       StartFlowFunc
}

// TreeAllReduceJob is a running tree all-reduce loop.
type TreeAllReduceJob struct {
	jobStats
	cfg TreeAllReduceConfig
}

// RunTreeAllReduce starts the collective loop.
func RunTreeAllReduce(net *netsim.Network, cfg TreeAllReduceConfig) *TreeAllReduceJob {
	j := &TreeAllReduceJob{jobStats: newJobStats(net), cfg: cfg}
	j.computeTime = cfg.ComputeTime
	j.round()
	return j
}

func (j *TreeAllReduceJob) round() {
	if j.stopped || len(j.cfg.Nodes) < 2 {
		return
	}
	n := len(j.cfg.Nodes)
	bytes := j.cfg.Bytes
	if bytes < 1 {
		bytes = 1
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	t0 := j.net.Now()
	// Phases 0..levels-1 reduce: node i with i mod 2^(s+1) == 2^s sends to
	// i - 2^s. Phases levels..2*levels-1 broadcast: the mirror transfers,
	// reversed. Each phase is bulk-synchronous.
	var phase func(p int)
	phase = func(p int) {
		if j.stopped {
			return
		}
		if p == 2*levels {
			j.finishRound(t0, j.round)
			return
		}
		s := p
		reduce := true
		if p >= levels {
			s = 2*levels - 1 - p
			reduce = false
		}
		stride := 1 << s
		remaining := 0
		// Count first so a straggler finishing synchronously can't complete
		// the phase before all transfers have launched.
		for i := stride; i < n; i += 2 * stride {
			remaining++
		}
		if remaining == 0 {
			phase(p + 1)
			return
		}
		for i := stride; i < n; i += 2 * stride {
			child, parent := j.cfg.Nodes[i], j.cfg.Nodes[i-stride]
			src, dst := child, parent
			if !reduce {
				src, dst = parent, child
			}
			j.cfg.Start(src, dst, bytes, func() {
				remaining--
				if remaining == 0 {
					phase(p + 1)
				}
			})
		}
	}
	phase(0)
}

// ----- MoE all-to-all -----

// AllToAllConfig models the personalized all-to-all of mixture-of-experts
// layers: each round, every node sends a distinct 1/N shard of Bytes to
// every other node simultaneously — N(N−1) concurrent flows stressing the
// full bisection.
type AllToAllConfig struct {
	Nodes []*netsim.Host
	// Bytes is the total per-node exchange volume per round; each peer
	// receives Bytes/N of it.
	Bytes int64
	// ComputeTime elapses between rounds.
	ComputeTime simtime.Duration
	Start       StartFlowFunc
}

// AllToAllJob is a running all-to-all loop.
type AllToAllJob struct {
	jobStats
	cfg AllToAllConfig
}

// RunAllToAll starts the exchange loop.
func RunAllToAll(net *netsim.Network, cfg AllToAllConfig) *AllToAllJob {
	j := &AllToAllJob{jobStats: newJobStats(net), cfg: cfg}
	j.computeTime = cfg.ComputeTime
	j.round()
	return j
}

func (j *AllToAllJob) round() {
	if j.stopped || len(j.cfg.Nodes) < 2 {
		return
	}
	n := len(j.cfg.Nodes)
	shard := j.cfg.Bytes / int64(n)
	if shard < 1 {
		shard = 1
	}
	t0 := j.net.Now()
	remaining := n * (n - 1)
	done := func() {
		remaining--
		if remaining == 0 {
			j.finishRound(t0, j.round)
		}
	}
	for i, src := range j.cfg.Nodes {
		for k, dst := range j.cfg.Nodes {
			if k == i {
				continue
			}
			j.cfg.Start(src, dst, shard, done)
		}
	}
}

// ----- pipeline parallel -----

// PipelineConfig models pipeline-parallel training traffic: MicroBatches
// activations marching forward through the stage chain, then gradients
// marching back. Transfers advance in diagonal wavefronts (microbatch m
// crosses the s→s+1 edge in wave m+s), which reproduces the fill/drain
// bubbles of a synchronous pipeline schedule: early and late waves carry
// few transfers, peak waves carry min(M, P−1).
type PipelineConfig struct {
	// Stages are the pipeline stages, in order.
	Stages []*netsim.Host
	// MicroBatches per round (default 1).
	MicroBatches int
	// ActivationBytes cross each forward edge per microbatch.
	ActivationBytes int64
	// GradBytes cross each backward edge per microbatch (default
	// ActivationBytes).
	GradBytes int64
	// ComputeTime elapses between rounds.
	ComputeTime simtime.Duration
	Start       StartFlowFunc
}

// PipelineJob is a running pipeline-parallel loop.
type PipelineJob struct {
	jobStats
	cfg PipelineConfig
}

// RunPipeline starts the pipeline loop.
func RunPipeline(net *netsim.Network, cfg PipelineConfig) *PipelineJob {
	if cfg.MicroBatches < 1 {
		cfg.MicroBatches = 1
	}
	if cfg.GradBytes <= 0 {
		cfg.GradBytes = cfg.ActivationBytes
	}
	j := &PipelineJob{jobStats: newJobStats(net), cfg: cfg}
	j.computeTime = cfg.ComputeTime
	j.round()
	return j
}

func (j *PipelineJob) round() {
	if j.stopped || len(j.cfg.Stages) < 2 {
		return
	}
	p := len(j.cfg.Stages)
	m := j.cfg.MicroBatches
	actBytes, gradBytes := j.cfg.ActivationBytes, j.cfg.GradBytes
	if actBytes < 1 {
		actBytes = 1
	}
	if gradBytes < 1 {
		gradBytes = 1
	}
	waves := m + p - 2 // wave indices 0..m+p-3 per direction
	t0 := j.net.Now()
	// wave(d, k): direction d (0 forward, 1 backward), diagonal k. Forward
	// wave k carries microbatch m' over edge s→s+1 for every m'+s == k;
	// backward mirrors it over s+1→s.
	var wave func(d, k int)
	wave = func(d, k int) {
		if j.stopped {
			return
		}
		if k == waves {
			if d == 0 {
				wave(1, 0)
			} else {
				j.finishRound(t0, j.round)
			}
			return
		}
		remaining := 0
		for s := 0; s < p-1; s++ {
			if mb := k - s; mb >= 0 && mb < m {
				remaining++
			}
		}
		if remaining == 0 {
			wave(d, k+1)
			return
		}
		for s := 0; s < p-1; s++ {
			mb := k - s
			if mb < 0 || mb >= m {
				continue
			}
			src, dst := j.cfg.Stages[s], j.cfg.Stages[s+1]
			bytes := actBytes
			if d == 1 {
				src, dst = dst, src
				bytes = gradBytes
			}
			j.cfg.Start(src, dst, bytes, func() {
				remaining--
				if remaining == 0 {
					wave(d, k+1)
				}
			})
		}
	}
	wave(0, 0)
}
