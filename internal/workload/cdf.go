// Package workload generates the traffic the paper evaluates with:
// empirical flow-size distributions (WebSearch, DataMining — Figure 11),
// Poisson open-loop load generators, incast patterns, the Table-1
// distributed-storage models, and the parameter-server training traffic of
// §5.3.2.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// CDFPoint is one knot of an empirical CDF: P(size <= Bytes) = Prob.
type CDFPoint struct {
	Bytes float64
	Prob  float64
}

// CDF is a piecewise-linear empirical flow-size distribution.
type CDF struct {
	Name   string
	Points []CDFPoint
}

// Validate checks monotonicity and range.
func (c CDF) Validate() error {
	if len(c.Points) < 2 {
		return fmt.Errorf("workload: CDF %q needs >=2 points", c.Name)
	}
	for i, p := range c.Points {
		if p.Prob < 0 || p.Prob > 1 {
			return fmt.Errorf("workload: CDF %q point %d prob %v outside [0,1]", c.Name, i, p.Prob)
		}
		if i > 0 {
			prev := c.Points[i-1]
			if p.Bytes < prev.Bytes || p.Prob < prev.Prob {
				return fmt.Errorf("workload: CDF %q not monotone at point %d", c.Name, i)
			}
		}
	}
	if last := c.Points[len(c.Points)-1]; last.Prob != 1 {
		return fmt.Errorf("workload: CDF %q does not reach 1 (got %v)", c.Name, last.Prob)
	}
	return nil
}

// Sample draws one flow size by inverse-transform sampling with linear
// interpolation between knots. The result is at least 1 byte.
func (c CDF) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	pts := c.Points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Prob >= u })
	if i == 0 {
		return maxi64(1, int64(pts[0].Bytes))
	}
	if i >= len(pts) {
		return maxi64(1, int64(pts[len(pts)-1].Bytes))
	}
	lo, hi := pts[i-1], pts[i]
	if hi.Prob == lo.Prob {
		return maxi64(1, int64(hi.Bytes))
	}
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	return maxi64(1, int64(lo.Bytes+frac*(hi.Bytes-lo.Bytes)))
}

// Mean returns the distribution's expected flow size in bytes, integrating
// the piecewise-linear inverse CDF.
func (c CDF) Mean() float64 {
	var mean float64
	pts := c.Points
	for i := 1; i < len(pts); i++ {
		dp := pts[i].Prob - pts[i-1].Prob
		mean += dp * (pts[i].Bytes + pts[i-1].Bytes) / 2
	}
	return mean
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// WebSearch is the DCTCP-paper web-search flow-size distribution the paper
// uses in Figures 2, 12, 13 and 16 (sizes in bytes).
func WebSearch() CDF {
	return CDF{Name: "WebSearch", Points: []CDFPoint{
		{0, 0},
		{10e3, 0.15},
		{20e3, 0.20},
		{30e3, 0.30},
		{50e3, 0.40},
		{80e3, 0.53},
		{200e3, 0.60},
		{1e6, 0.70},
		{2e6, 0.80},
		{5e6, 0.90},
		{10e6, 0.97},
		{30e6, 1.00},
	}}
}

// DataMining is the VL2-paper data-mining flow-size distribution (sizes in
// bytes); heavy-tailed with most flows tiny and most bytes in giant flows.
func DataMining() CDF {
	return CDF{Name: "DataMining", Points: []CDFPoint{
		{0, 0},
		{180, 0.10},
		{216, 0.20},
		{560, 0.30},
		{900, 0.40},
		{1100, 0.50},
		{1870, 0.60},
		{3160, 0.70},
		{10e3, 0.80},
		{400e3, 0.90},
		{3.16e6, 0.95},
		{100e6, 0.98},
		{1e9, 1.00},
	}}
}

// Uniform returns a CDF uniform between lo and hi bytes.
func Uniform(name string, lo, hi int64) CDF {
	return CDF{Name: name, Points: []CDFPoint{
		{float64(lo), 0},
		{float64(hi), 1},
	}}
}

// Fixed returns a degenerate CDF always yielding size bytes.
func Fixed(name string, size int64) CDF {
	return CDF{Name: name, Points: []CDFPoint{
		{float64(size), 0},
		{float64(size), 1},
	}}
}
