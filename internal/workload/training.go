package workload

import (
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// TrainingModel summarizes a DNN for the §5.3.2 distributed-training
// benchmark: only the gradient/parameter volume matters to the network.
type TrainingModel struct {
	Name       string
	ModelBytes int64 // gradient (and parameter) bytes exchanged per iteration
	BatchSize  int   // images per worker per iteration
}

// AlexNet has ~61M float32 parameters (~240MB of gradients per iteration).
func AlexNet() TrainingModel {
	return TrainingModel{Name: "AlexNet", ModelBytes: 240 * simtime.MB, BatchSize: 64}
}

// ResNet50 has ~25.5M float32 parameters (~100MB per iteration).
func ResNet50() TrainingModel {
	return TrainingModel{Name: "ResNet-50", ModelBytes: 100 * simtime.MB, BatchSize: 64}
}

// TrainingConfig describes a parameter-server training job: every iteration
// each worker pushes its gradients to the PS, and once all pushes land the
// PS broadcasts fresh parameters back; compute time then elapses before the
// next iteration.
type TrainingConfig struct {
	Workers     []*netsim.Host
	PS          *netsim.Host
	Model       TrainingModel
	ComputeTime simtime.Duration // forward+backward pass duration per iteration
	Start       StartFlowFunc
	// ScaleBytes divides ModelBytes to shrink experiments; zero means 1.
	ScaleBytes int64
}

// TrainingJob is a running job.
type TrainingJob struct {
	cfg TrainingConfig
	net *netsim.Network

	stopped    bool
	Iterations int
	IterTimes  []simtime.Duration

	startedAt simtime.Time
}

// RunTraining starts iterating immediately.
func RunTraining(net *netsim.Network, cfg TrainingConfig) *TrainingJob {
	if cfg.ScaleBytes <= 0 {
		cfg.ScaleBytes = 1
	}
	j := &TrainingJob{cfg: cfg, net: net, startedAt: net.Now()}
	j.iterate()
	return j
}

// Stop ends the job after the current iteration.
func (j *TrainingJob) Stop() { j.stopped = true }

// ImagesPerSec returns the aggregate training speed so far.
func (j *TrainingJob) ImagesPerSec() float64 {
	el := j.net.Now().Sub(j.startedAt).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(j.Iterations*j.cfg.Model.BatchSize*len(j.cfg.Workers)) / el
}

func (j *TrainingJob) bytesPerTransfer() int64 {
	b := j.cfg.Model.ModelBytes / j.cfg.ScaleBytes
	if b < 1 {
		b = 1
	}
	return b
}

// iterate runs one push/pull round.
func (j *TrainingJob) iterate() {
	if j.stopped {
		return
	}
	t0 := j.net.Now()
	n := len(j.cfg.Workers)
	bytes := j.bytesPerTransfer()

	pushesLeft := n
	pullsLeft := n
	var pull func()
	pull = func() {
		for _, w := range j.cfg.Workers {
			j.cfg.Start(j.cfg.PS, w, bytes, func() {
				pullsLeft--
				if pullsLeft == 0 {
					j.Iterations++
					j.IterTimes = append(j.IterTimes, j.net.Now().Sub(t0))
					j.net.Q.After(j.cfg.ComputeTime, j.iterate)
				}
			})
		}
	}
	for _, w := range j.cfg.Workers {
		j.cfg.Start(w, j.cfg.PS, bytes, func() {
			pushesLeft--
			if pushesLeft == 0 {
				pull()
			}
		})
	}
}
