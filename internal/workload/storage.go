package workload

import (
	"math"
	"math/rand"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// StorageModel is one of the paper's Table-1 distributed-storage traffic
// models, identified by read-write ratio and block-size range.
type StorageModel struct {
	Name      string
	ReadRatio float64 // fraction of IOs that are reads (storage -> compute)
	BlockMin  int64   // bytes
	BlockMax  int64   // bytes
}

// Table1 reproduces the paper's Table 1.
func Table1() []StorageModel {
	return []StorageModel{
		{Name: "OLTP", ReadRatio: 0.5, BlockMin: 512, BlockMax: 64 * simtime.KB},
		{Name: "OLAP", ReadRatio: 0.5, BlockMin: 256 * simtime.KB, BlockMax: 4 * simtime.MB},
		{Name: "VDI", ReadRatio: 0.2, BlockMin: 1 * simtime.KB, BlockMax: 64 * simtime.KB},
		{Name: "ExchangeServer", ReadRatio: 0.6, BlockMin: 32 * simtime.KB, BlockMax: 512 * simtime.KB},
		{Name: "VideoStreaming", ReadRatio: 0.2, BlockMin: 64 * simtime.KB, BlockMax: 64 * simtime.KB},
		{Name: "FileBackup", ReadRatio: 0.4, BlockMin: 16 * simtime.KB, BlockMax: 64 * simtime.KB},
	}
}

// SampleBlock draws an IO size log-uniformly within the model's range,
// matching how block sizes spread over decades (e.g. OLTP's 512B–64KB).
func (m StorageModel) SampleBlock(rng *rand.Rand) int64 {
	if m.BlockMax <= m.BlockMin {
		return m.BlockMin
	}
	lo, hi := math.Log(float64(m.BlockMin)), math.Log(float64(m.BlockMax))
	return int64(math.Exp(lo + rng.Float64()*(hi-lo)))
}

// StorageConfig describes the §5.3.1 macro-benchmark: compute nodes issue
// closed-loop IO requests against storage nodes with a fixed IO depth
// (outstanding requests) per compute node.
type StorageConfig struct {
	Compute []*netsim.Host
	Storage []*netsim.Host
	Model   StorageModel
	IODepth int // outstanding IOs per compute node
	Start   StartFlowFunc
	// RequestBytes is the size of the request RPC (default 256B).
	RequestBytes int64
	// Replicate mirrors each write to a second storage node, modelling the
	// paper's "storage nodes backup data".
	Replicate bool
}

// StorageCluster is a running storage benchmark.
type StorageCluster struct {
	cfg StorageConfig
	net *netsim.Network
	rng *rand.Rand

	stopped bool

	// CompletedIOs counts finished IO operations (request + data transfer).
	CompletedIOs int64
	// BytesMoved counts data-block bytes transferred (excluding requests).
	BytesMoved int64
	// Latencies accumulates per-IO completion times.
	Latencies []simtime.Duration

	startedAt simtime.Time
}

// RunStorage starts the closed-loop benchmark: each compute node launches
// IODepth independent IO chains.
func RunStorage(net *netsim.Network, cfg StorageConfig) *StorageCluster {
	if cfg.RequestBytes <= 0 {
		cfg.RequestBytes = 256
	}
	if cfg.IODepth <= 0 {
		cfg.IODepth = 1
	}
	c := &StorageCluster{
		cfg:       cfg,
		net:       net,
		rng:       rand.New(rand.NewSource(net.Rng.Int63())),
		startedAt: net.Now(),
	}
	for _, comp := range cfg.Compute {
		for i := 0; i < cfg.IODepth; i++ {
			c.issue(comp)
		}
	}
	return c
}

// Stop ends the closed loop: outstanding IOs finish but don't renew.
func (c *StorageCluster) Stop() { c.stopped = true }

// IOPS returns completed IOs per second of virtual time since start.
func (c *StorageCluster) IOPS() float64 {
	el := c.net.Now().Sub(c.startedAt).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(c.CompletedIOs) / el
}

// issue runs one IO against a random storage node, then reissues.
func (c *StorageCluster) issue(comp *netsim.Host) {
	if c.stopped {
		return
	}
	stor := c.cfg.Storage[c.rng.Intn(len(c.cfg.Storage))]
	block := c.cfg.Model.SampleBlock(c.rng)
	isRead := c.rng.Float64() < c.cfg.Model.ReadRatio
	t0 := c.net.Now()

	finish := func() {
		c.CompletedIOs++
		c.BytesMoved += block
		c.Latencies = append(c.Latencies, c.net.Now().Sub(t0))
		c.issue(comp)
	}

	if isRead {
		// Request RPC to storage, then data back to compute.
		c.cfg.Start(comp, stor, c.cfg.RequestBytes, func() {
			c.cfg.Start(stor, comp, block, finish)
		})
	} else {
		// Write: data to storage, small ack back; optional replication to a
		// second storage node happens off the critical path.
		c.cfg.Start(comp, stor, block, func() {
			if c.cfg.Replicate && len(c.cfg.Storage) > 1 {
				other := c.cfg.Storage[c.rng.Intn(len(c.cfg.Storage))]
				if other == stor {
					other = c.cfg.Storage[(indexOf(c.cfg.Storage, stor)+1)%len(c.cfg.Storage)]
				}
				c.cfg.Start(stor, other, block, nil)
			}
			c.cfg.Start(stor, comp, c.cfg.RequestBytes, finish)
		})
	}
}

func indexOf(hs []*netsim.Host, h *netsim.Host) int {
	for i, x := range hs {
		if x == h {
			return i
		}
	}
	return 0
}
