package workload

import (
	"math/rand"
	"testing"
)

// Satellite coverage for CDF edge cases beyond the fig-11 distributions.

func TestCDFSingleKnotRejected(t *testing.T) {
	c := CDF{Name: "one", Points: []CDFPoint{{100, 1}}}
	if c.Validate() == nil {
		t.Fatal("single-knot CDF must fail validation")
	}
	if (CDF{Name: "empty"}).Validate() == nil {
		t.Fatal("empty CDF must fail validation")
	}
}

func TestCDFNonMonotoneKnotsRejected(t *testing.T) {
	byBytes := CDF{Name: "bytes", Points: []CDFPoint{{0, 0}, {100, 0.5}, {50, 1}}}
	if byBytes.Validate() == nil {
		t.Fatal("CDF with decreasing byte knots must fail validation")
	}
	byProb := CDF{Name: "prob", Points: []CDFPoint{{0, 0}, {100, 0.8}, {200, 0.5}, {300, 1}}}
	if byProb.Validate() == nil {
		t.Fatal("CDF with decreasing probability must fail validation")
	}
	outOfRange := CDF{Name: "range", Points: []CDFPoint{{0, -0.1}, {100, 1}}}
	if outOfRange.Validate() == nil {
		t.Fatal("CDF with probability outside [0,1] must fail validation")
	}
}

// A flat segment (equal probabilities at two knots) is legal and must not
// divide by zero during interpolation.
func TestCDFFlatSegmentSamples(t *testing.T) {
	c := CDF{Name: "flat", Points: []CDFPoint{{0, 0}, {100, 0.5}, {200, 0.5}, {300, 1}}}
	if err := c.Validate(); err != nil {
		t.Fatalf("flat-segment CDF rejected: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if s := c.Sample(rng); s < 1 || s > 300 {
			t.Fatalf("sample %d outside support", s)
		}
	}
}

// Two identically-seeded generators draw identical size sequences from the
// same CDF — sampling must consume randomness deterministically.
func TestCDFDeterministicSampling(t *testing.T) {
	for _, c := range []CDF{WebSearch(), DataMining(), Uniform("u", 100, 10000), Fixed("f", 77)} {
		r1 := rand.New(rand.NewSource(21))
		r2 := rand.New(rand.NewSource(21))
		for i := 0; i < 2000; i++ {
			s1, s2 := c.Sample(r1), c.Sample(r2)
			if s1 != s2 {
				t.Fatalf("%s: draw %d diverged (%d vs %d)", c.Name, i, s1, s2)
			}
		}
	}
}
