package workload

import (
	"strings"
	"testing"
)

func specJSON(s string) string { return strings.TrimSpace(s) }

func TestParseSpecRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", `{`},
		{"no classes", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"100us"}`},
		{"duplicate class", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"100us",
			"classes":[
			 {"name":"a","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"fixed","bytes":100}},
			 {"name":"a","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"fixed","bytes":100}}]}`},
		{"zero rate", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"100us",
			"classes":[{"name":"a","arrival":{"process":"poisson"},"size":{"dist":"fixed","bytes":100}}]}`},
		{"unknown process", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"100us",
			"classes":[{"name":"a","arrival":{"process":"pareto","rate":1e5},"size":{"dist":"fixed","bytes":100}}]}`},
		{"unknown size dist", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"100us",
			"classes":[{"name":"a","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"zipf","bytes":100}}]}`},
		{"unknown transport", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"100us",
			"classes":[{"name":"a","transport":"quic","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"fixed","bytes":100}}]}`},
		{"unknown placement", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"100us",
			"classes":[{"name":"a","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"fixed","bytes":100},
			 "placement":{"policy":"ring"}}]}`},
		{"incast victim out of range", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"100us",
			"classes":[{"name":"a","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"fixed","bytes":100},
			 "placement":{"policy":"incast","leaf":5,"host":0}}]}`},
		{"cross-leaf on one leaf", `{"name":"x","fabric":{"leaves":1,"hosts_per_leaf":4,"spines":1},"duration":"100us",
			"classes":[{"name":"a","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"fixed","bytes":100},
			 "placement":{"policy":"cross-leaf"}}]}`},
		{"tiny fabric", `{"name":"x","fabric":{"leaves":1,"hosts_per_leaf":1,"spines":1},"duration":"100us",
			"classes":[{"name":"a","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"fixed","bytes":100}}]}`},
		{"bad duration", `{"name":"x","fabric":{"leaves":2,"hosts_per_leaf":2,"spines":1},"duration":"fast",
			"classes":[{"name":"a","arrival":{"process":"poisson","rate":1e5},"size":{"dist":"fixed","bytes":100}}]}`},
	}
	for _, c := range cases {
		if _, err := ParseSpec([]byte(specJSON(c.json))); err == nil {
			t.Errorf("%s: ParseSpec accepted an invalid spec", c.name)
		}
	}
}

func TestDefaultMixSpecValid(t *testing.T) {
	s := DefaultMixSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if len(s.Classes) < 3 {
		t.Fatalf("default spec has %d classes, want >=3", len(s.Classes))
	}
}

// Generate is a pure function of (spec, seed): two expansions at the same
// seed are Equal, and different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	s := DefaultMixSpec()
	a, err := s.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same (spec, seed) generated different traces")
	}
	c, err := s.Generate(43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seeds generated identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	s := DefaultMixSpec()
	tr, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Classes) != len(s.Classes) {
		t.Fatalf("trace has %d classes, want %d", len(tr.Classes), len(s.Classes))
	}
	// Every class contributes flows, and starts are sorted.
	seen := make([]int, len(tr.Classes))
	for i, f := range tr.Flows {
		seen[f.Class]++
		if i > 0 && f.Start < tr.Flows[i-1].Start {
			t.Fatal("generated flows not sorted by start")
		}
	}
	for i, n := range seen {
		if n == 0 {
			t.Errorf("class %s generated no flows", tr.Classes[i].Name)
		}
	}
}

func TestGenerateIncastPlacement(t *testing.T) {
	spec := specJSON(`{"name":"inc","fabric":{"leaves":3,"hosts_per_leaf":4,"spines":2},"duration":"200us",
		"classes":[{"name":"fanin","slo":"latency",
		 "arrival":{"process":"poisson","rate":5e4},
		 "size":{"dist":"fixed","bytes":2048},
		 "placement":{"policy":"incast","leaf":1,"host":2,"fanin":5}}]}`)
	s, err := ParseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Flows) == 0 {
		t.Fatal("incast spec generated no flows")
	}
	if len(tr.Flows)%5 != 0 {
		t.Fatalf("incast generated %d flows, want a multiple of fanin=5", len(tr.Flows))
	}
	for _, f := range tr.Flows {
		if f.DstLeaf != 1 || f.DstHost != 2 {
			t.Fatalf("incast flow targets (%d,%d), want victim (1,2)", f.DstLeaf, f.DstHost)
		}
		if f.SrcLeaf == 1 && f.SrcHost == 2 {
			t.Fatal("incast victim sends to itself")
		}
	}
}

func TestClassSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 16; i++ {
		s := classSeed(1, i)
		if seen[s] {
			t.Fatalf("class seed collision at index %d", i)
		}
		seen[s] = true
	}
	if classSeed(1, 0) == classSeed(2, 0) {
		t.Fatal("run seed does not perturb class seeds")
	}
}
