package workload

// Arrival processes for the multi-client workload engine (spec.go). Every
// client class draws its flow interarrival gaps from its own seeded RNG
// stream, so the generated trace is a pure function of (spec, seed) and two
// identically-seeded generators emit identical flow sequences — the property
// the record/replay pillar (trace.go) builds on.
//
// Three families cover the production mixes ServeGen-style specs describe:
// Poisson (memoryless open-loop load, the paper's §5.4 methodology), Gamma
// (burstier-than-Poisson arrivals when shape < 1, smoother when shape > 1),
// and Weibull (heavy-tailed ON/OFF-like gaps at shape < 1).

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/accnet/acc/internal/simtime"
)

// Arrival process names accepted by ArrivalSpec.Process.
const (
	ArrivalPoisson = "poisson"
	ArrivalGamma   = "gamma"
	ArrivalWeibull = "weibull"
)

// Arrival draws successive interarrival gaps with a fixed mean. The zero
// value is invalid; build one with NewArrival.
type Arrival struct {
	process string
	mean    float64 // mean interarrival time in seconds
	shape   float64 // gamma/weibull shape parameter (1 = exponential)
}

// NewArrival validates and builds an interarrival sampler. rate is the mean
// arrival rate in flows per second; shape parameterizes the gamma and
// weibull families (ignored for poisson; shape 1 degenerates to poisson for
// both).
func NewArrival(process string, rate, shape float64) (Arrival, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Arrival{}, fmt.Errorf("workload: arrival rate %v must be a positive finite flows/sec", rate)
	}
	switch process {
	case ArrivalPoisson:
		shape = 1
	case ArrivalGamma, ArrivalWeibull:
		if shape == 0 {
			shape = 1
		}
		if shape <= 0 || math.IsNaN(shape) || math.IsInf(shape, 0) {
			return Arrival{}, fmt.Errorf("workload: %s shape %v must be a positive finite number", process, shape)
		}
	default:
		return Arrival{}, fmt.Errorf("workload: unknown arrival process %q (want %s, %s, or %s)",
			process, ArrivalPoisson, ArrivalGamma, ArrivalWeibull)
	}
	return Arrival{process: process, mean: 1 / rate, shape: shape}, nil
}

// Rate returns the configured mean arrival rate in flows per second.
func (a Arrival) Rate() float64 { return 1 / a.mean }

// Gap draws the next interarrival gap (always >= 1ns so time advances).
func (a Arrival) Gap(rng *rand.Rand) simtime.Duration {
	var x float64 // unit-mean draw
	switch a.process {
	case ArrivalGamma:
		// Gamma(k, θ) with mean kθ = 1: θ = 1/k.
		x = sampleGamma(rng, a.shape) / a.shape
	case ArrivalWeibull:
		// Weibull(k, λ) with mean λΓ(1+1/k) = 1: λ = 1/Γ(1+1/k).
		x = sampleWeibull(rng, a.shape) / math.Gamma(1+1/a.shape)
	default: // poisson
		x = rng.ExpFloat64()
	}
	d := simtime.Duration(x * a.mean * float64(simtime.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// sampleGamma draws Gamma(shape, 1) by Marsaglia–Tsang squeeze (shape >= 1)
// with the standard boost for shape < 1: Gamma(k) = Gamma(k+1)·U^(1/k).
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sampleWeibull draws Weibull(shape, 1) by inverse transform.
func sampleWeibull(rng *rand.Rand, shape float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return math.Pow(-math.Log(u), 1/shape)
}
