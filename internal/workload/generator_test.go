package workload

import (
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

func dcqcnStarter(net *netsim.Network, bw simtime.Rate) StartFlowFunc {
	p := dcqcn.DefaultParams(bw)
	return func(src, dst *netsim.Host, size int64, onDone func()) {
		dcqcn.Start(net, src, dst, size, p, func(*dcqcn.Flow) {
			if onDone != nil {
				onDone()
			}
		})
	}
}

func TestPoissonLoadAccuracy(t *testing.T) {
	net := netsim.New(1)
	fab := topo.Star(net, 8, topo.DefaultConfig())
	gen := StartPoisson(net, PoissonConfig{
		Hosts:  fab.Hosts,
		Sizes:  WebSearch(),
		Load:   0.5,
		HostBW: 25 * simtime.Gbps,
		Start:  dcqcnStarter(net, 25*simtime.Gbps),
	})
	const dur = 20 * simtime.Millisecond
	net.RunUntil(simtime.Time(dur))
	gen.Stop()
	// Offered bytes should approximate load × n × BW × T / 8.
	want := 0.5 * 8 * 25e9 / 8 * dur.Seconds()
	got := float64(gen.Bytes)
	if got < 0.6*want || got > 1.4*want {
		t.Fatalf("offered %0.f bytes, want ~%.0f (50%% load)", got, want)
	}
	if gen.Started < 50 {
		t.Fatalf("only %d flows in %v", gen.Started, dur)
	}
}

func TestPoissonPairRestriction(t *testing.T) {
	net := netsim.New(2)
	fab := topo.Star(net, 4, topo.DefaultConfig())
	var pairs [][2]int
	pairs = append(pairs, [2]int{0, 3})
	seen := map[[2]int]bool{}
	gen := StartPoisson(net, PoissonConfig{
		Hosts:  fab.Hosts,
		Sizes:  Fixed("f", 10*simtime.KB),
		Load:   0.3,
		HostBW: 25 * simtime.Gbps,
		Start:  dcqcnStarter(net, 25*simtime.Gbps),
		Pairs:  pairs,
		OnArrival: func(src, dst *netsim.Host, size int64) {
			seen[[2]int{src.ID(), dst.ID()}] = true
		},
	})
	net.RunUntil(simtime.Time(5 * simtime.Millisecond))
	gen.Stop()
	if len(seen) != 1 {
		t.Fatalf("saw %d distinct pairs, want 1", len(seen))
	}
	for k := range seen {
		if k != [2]int{fab.Hosts[0].ID(), fab.Hosts[3].ID()} {
			t.Fatalf("wrong pair %v", k)
		}
	}
}

func TestPoissonNeverSelfPair(t *testing.T) {
	net := netsim.New(3)
	fab := topo.Star(net, 3, topo.DefaultConfig())
	bad := false
	gen := StartPoisson(net, PoissonConfig{
		Hosts:  fab.Hosts,
		Sizes:  Fixed("f", simtime.KB),
		Load:   0.5,
		HostBW: 25 * simtime.Gbps,
		Start:  dcqcnStarter(net, 25*simtime.Gbps),
		OnArrival: func(src, dst *netsim.Host, size int64) {
			if src == dst {
				bad = true
			}
		},
	})
	net.RunUntil(simtime.Time(5 * simtime.Millisecond))
	gen.Stop()
	if bad {
		t.Fatal("generator produced src==dst flow")
	}
}

func TestRunIncastCompletion(t *testing.T) {
	net := netsim.New(4)
	fab := topo.Star(net, 5, topo.DefaultConfig())
	done := false
	RunIncast(net, IncastConfig{
		Senders:  fab.Hosts[:4],
		Receiver: fab.Hosts[4],
		Flows:    3,
		Size:     100 * simtime.KB,
		Start:    dcqcnStarter(net, 25*simtime.Gbps),
	}, func() { done = true })
	net.RunUntil(simtime.Time(50 * simtime.Millisecond))
	if !done {
		t.Fatal("incast never signalled completion")
	}
}

func TestRunPhases(t *testing.T) {
	net := netsim.New(5)
	var order []int
	RunPhases(net, []Phase{
		{Duration: simtime.Millisecond, Run: func() { order = append(order, 1) }},
		{Duration: simtime.Millisecond, Run: func() { order = append(order, 2) }},
		{Duration: simtime.Millisecond, Run: func() { order = append(order, 3) }},
	})
	net.RunUntil(simtime.Time(1500 * simtime.Microsecond))
	if len(order) != 2 {
		t.Fatalf("after 1.5ms: %v phases started, want 2", order)
	}
	net.RunUntil(simtime.Time(3 * simtime.Millisecond))
	if len(order) != 3 {
		t.Fatalf("phases ran: %v", order)
	}
}

func TestStorageClusterClosedLoop(t *testing.T) {
	net := netsim.New(6)
	fab := topo.Star(net, 8, topo.DefaultConfig())
	c := RunStorage(net, StorageConfig{
		Compute: fab.Hosts[:6],
		Storage: fab.Hosts[6:],
		Model:   Table1()[0], // OLTP
		IODepth: 4,
		Start:   dcqcnStarter(net, 25*simtime.Gbps),
	})
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	c.Stop()
	if c.CompletedIOs == 0 {
		t.Fatal("no IOs completed")
	}
	if c.IOPS() <= 0 {
		t.Fatal("IOPS not positive")
	}
	if len(c.Latencies) != int(c.CompletedIOs) {
		t.Fatalf("latencies %d != completed %d", len(c.Latencies), c.CompletedIOs)
	}
}

func TestStorageIODepthScalesConcurrency(t *testing.T) {
	run := func(depth int) int64 {
		net := netsim.New(7)
		fab := topo.Star(net, 8, topo.DefaultConfig())
		c := RunStorage(net, StorageConfig{
			Compute: fab.Hosts[:6],
			Storage: fab.Hosts[6:],
			Model:   Table1()[0],
			IODepth: depth,
			Start:   dcqcnStarter(net, 25*simtime.Gbps),
		})
		net.RunUntil(simtime.Time(10 * simtime.Millisecond))
		return c.CompletedIOs
	}
	// Depth 8 saturates the storage-node links, so the gain is bounded by
	// bandwidth rather than 8x; require a clear (>40%) improvement.
	if d1, d8 := run(1), run(8); float64(d8) < 1.4*float64(d1) {
		t.Fatalf("IO depth 8 completed %d IOs vs depth 1's %d; expected clear scaling", d8, d1)
	}
}

func TestTrainingJobIterates(t *testing.T) {
	net := netsim.New(8)
	fab := topo.Star(net, 8, topo.DefaultConfig())
	job := RunTraining(net, TrainingConfig{
		Workers:     fab.Hosts[:7],
		PS:          fab.Hosts[7],
		Model:       ResNet50(),
		ComputeTime: 100 * simtime.Microsecond,
		Start:       dcqcnStarter(net, 25*simtime.Gbps),
		ScaleBytes:  100, // 1MB per transfer for test speed
	})
	net.RunUntil(simtime.Time(30 * simtime.Millisecond))
	job.Stop()
	if job.Iterations < 2 {
		t.Fatalf("only %d iterations", job.Iterations)
	}
	if job.ImagesPerSec() <= 0 {
		t.Fatal("training speed not positive")
	}
	if len(job.IterTimes) != job.Iterations {
		t.Fatal("iteration times not recorded")
	}
}

// Helpers shared by appended tests.
func netsimNew(seed int64) *netsim.Network { return netsim.New(seed) }

func topoStar(net *netsim.Network, n int) *topo.Fabric {
	return topo.Star(net, n, topo.DefaultConfig())
}

func simtimeT(d simtime.Duration) simtime.Time { return simtime.Time(d) }

func dcqcnStarterFor(net *netsim.Network) StartFlowFunc {
	return dcqcnStarter(net, 25*simtime.Gbps)
}
