package workload

// Declarative multi-client workload specs. A Spec is a JSON document
// describing N client classes sharing one fabric: each class has its own
// arrival process (arrival.go), flow-size distribution (cdf.go), placement
// policy, SLO label, and transport. Generate expands a spec into a Trace —
// every random draw happens here, at generation time, from per-class seeded
// streams — so (spec, seed) fully determines the offered traffic and the
// trace replays bit-identically on any engine (see trace.go).
//
// Schema (all durations are Go duration strings, all rates flows/sec):
//
//	{
//	  "name": "prod-mix",
//	  "fabric": {"leaves": 4, "hosts_per_leaf": 4, "spines": 3},
//	  "duration": "300us",        // arrival window
//	  "drain": "1ms",             // extra horizon after the last arrival
//	  "classes": [
//	    {
//	      "name": "web", "slo": "latency", "transport": "dcqcn",
//	      "arrival": {"process": "poisson", "rate": 300000},
//	      "size": {"dist": "uniform", "min_bytes": 1024, "max_bytes": 16384},
//	      "placement": {"policy": "uniform"}
//	    }, ...
//	  ]
//	}

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/accnet/acc/internal/simtime"
)

// FabricSpec is the leaf-spine geometry a spec's traffic addresses.
type FabricSpec struct {
	Leaves       int `json:"leaves"`
	HostsPerLeaf int `json:"hosts_per_leaf"`
	Spines       int `json:"spines"`
}

// ArrivalSpec configures one class's interarrival process.
type ArrivalSpec struct {
	// Process is poisson, gamma, or weibull (arrival.go).
	Process string `json:"process"`
	// Rate is the class's aggregate arrival rate in flows per second.
	Rate float64 `json:"rate"`
	// Shape parameterizes gamma/weibull; 0 or 1 degenerates to poisson.
	Shape float64 `json:"shape,omitempty"`
}

// SizeSpec configures one class's flow-size distribution.
type SizeSpec struct {
	// Dist is websearch, datamining, uniform, fixed, or cdf.
	Dist string `json:"dist"`
	// MinBytes/MaxBytes bound the uniform distribution.
	MinBytes int64 `json:"min_bytes,omitempty"`
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// Bytes is the fixed distribution's constant size.
	Bytes int64 `json:"bytes,omitempty"`
	// Points are the knots of an inline empirical CDF (dist "cdf").
	Points []CDFPoint `json:"points,omitempty"`
}

// Placement policies.
const (
	PlaceUniform   = "uniform"    // uniform random (src, dst), src != dst
	PlaceCrossLeaf = "cross-leaf" // uniform, but src and dst on distinct leaves
	PlaceLeafLocal = "leaf-local" // uniform within one uniformly drawn leaf
	PlaceIncast    = "incast"     // uniform sources converging on one victim
)

// PlacementSpec configures where one class's flows land on the fabric.
type PlacementSpec struct {
	Policy string `json:"policy"`
	// Leaf/Host pin the incast victim (defaults to leaf 0, host 0).
	Leaf int `json:"leaf,omitempty"`
	Host int `json:"host,omitempty"`
	// Fanin is how many simultaneous flows each incast arrival launches
	// (default 1).
	Fanin int `json:"fanin,omitempty"`
}

// ClassSpec is one client class of the mix.
type ClassSpec struct {
	Name      string        `json:"name"`
	SLO       string        `json:"slo"`
	Transport string        `json:"transport,omitempty"`
	Arrival   ArrivalSpec   `json:"arrival"`
	Size      SizeSpec      `json:"size"`
	Placement PlacementSpec `json:"placement"`
}

// Spec is a declarative multi-client workload: a fabric, an arrival window,
// and the client classes offering traffic into it.
type Spec struct {
	Name     string      `json:"name"`
	Fabric   FabricSpec  `json:"fabric"`
	Duration string      `json:"duration"`
	Drain    string      `json:"drain,omitempty"`
	Classes  []ClassSpec `json:"classes"`
}

// ParseSpec decodes and validates a JSON spec document.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workload: spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ReadSpecFile loads and validates a spec from disk.
func ReadSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// parseDur parses a Go duration string ("300us") into virtual time.
func parseDur(s string) (simtime.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return simtime.Duration(d.Nanoseconds()), nil
}

// window returns the arrival window and post-window drain (default 1ms).
func (s *Spec) window() (dur, drain simtime.Duration, err error) {
	dur, err = parseDur(s.Duration)
	if err != nil {
		return 0, 0, fmt.Errorf("workload: spec %q duration: %w", s.Name, err)
	}
	if dur <= 0 {
		return 0, 0, fmt.Errorf("workload: spec %q duration %v must be positive", s.Name, dur)
	}
	drain = simtime.Millisecond
	if s.Drain != "" {
		drain, err = parseDur(s.Drain)
		if err != nil {
			return 0, 0, fmt.Errorf("workload: spec %q drain: %w", s.Name, err)
		}
		if drain < 0 {
			return 0, 0, fmt.Errorf("workload: spec %q drain %v must be non-negative", s.Name, drain)
		}
	}
	return dur, drain, nil
}

// cdfFor builds the class's size distribution.
func cdfFor(class string, sz SizeSpec) (CDF, error) {
	switch sz.Dist {
	case "websearch":
		return WebSearch(), nil
	case "datamining":
		return DataMining(), nil
	case "uniform":
		if sz.MinBytes <= 0 || sz.MaxBytes < sz.MinBytes {
			return CDF{}, fmt.Errorf("workload: class %q uniform size needs 0 < min_bytes <= max_bytes (got %d, %d)",
				class, sz.MinBytes, sz.MaxBytes)
		}
		return Uniform(class, sz.MinBytes, sz.MaxBytes), nil
	case "fixed":
		if sz.Bytes <= 0 {
			return CDF{}, fmt.Errorf("workload: class %q fixed size %d must be positive", class, sz.Bytes)
		}
		return Fixed(class, sz.Bytes), nil
	case "cdf":
		c := CDF{Name: class, Points: sz.Points}
		if err := c.Validate(); err != nil {
			return CDF{}, err
		}
		return c, nil
	}
	return CDF{}, fmt.Errorf("workload: class %q unknown size dist %q (want websearch, datamining, uniform, fixed, or cdf)",
		class, sz.Dist)
}

// Validate checks the spec is internally consistent and buildable.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	f := s.Fabric
	if f.Leaves <= 0 || f.HostsPerLeaf <= 0 || f.Spines <= 0 {
		return fmt.Errorf("workload: spec %q fabric %dx%dx%d must be positive", s.Name, f.Leaves, f.HostsPerLeaf, f.Spines)
	}
	if f.Leaves*f.HostsPerLeaf < 2 {
		return fmt.Errorf("workload: spec %q fabric has fewer than 2 hosts", s.Name)
	}
	if _, _, err := s.window(); err != nil {
		return err
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload: spec %q has no classes", s.Name)
	}
	seen := make(map[string]bool, len(s.Classes))
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("workload: spec %q class %d needs a name", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: spec %q duplicate class %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if _, err := NewArrival(c.Arrival.Process, c.Arrival.Rate, c.Arrival.Shape); err != nil {
			return fmt.Errorf("class %q: %w", c.Name, err)
		}
		if _, err := cdfFor(c.Name, c.Size); err != nil {
			return err
		}
		if _, err := ParseTransport(c.Transport); err != nil {
			return fmt.Errorf("class %q: %w", c.Name, err)
		}
		switch c.Placement.Policy {
		case PlaceUniform, PlaceLeafLocal:
		case PlaceCrossLeaf:
			if f.Leaves < 2 {
				return fmt.Errorf("workload: class %q cross-leaf placement needs >=2 leaves", c.Name)
			}
		case PlaceIncast:
			if c.Placement.Leaf < 0 || c.Placement.Leaf >= f.Leaves ||
				c.Placement.Host < 0 || c.Placement.Host >= f.HostsPerLeaf {
				return fmt.Errorf("workload: class %q incast victim (%d,%d) outside fabric %dx%d",
					c.Name, c.Placement.Leaf, c.Placement.Host, f.Leaves, f.HostsPerLeaf)
			}
			if c.Placement.Fanin < 0 {
				return fmt.Errorf("workload: class %q incast fanin %d must be non-negative", c.Name, c.Placement.Fanin)
			}
		default:
			return fmt.Errorf("workload: class %q unknown placement policy %q (want %s, %s, %s, or %s)",
				c.Name, c.Placement.Policy, PlaceUniform, PlaceCrossLeaf, PlaceLeafLocal, PlaceIncast)
		}
		if c.Placement.Policy == PlaceLeafLocal && f.HostsPerLeaf < 2 {
			return fmt.Errorf("workload: class %q leaf-local placement needs >=2 hosts per leaf", c.Name)
		}
	}
	return nil
}

// classSeed derives class i's private RNG seed from the run seed. The odd
// multiplier (golden-ratio mix) decorrelates adjacent classes and keeps the
// stream a pure function of (seed, class index).
func classSeed(seed int64, i int) int64 {
	return seed ^ (int64(i+1) * -0x61c8864680b583eb)
}

// drawPair picks one (src, dst) host pair under the class's placement
// policy from the class's own stream.
func drawPair(rng *rand.Rand, f FabricSpec, pl PlacementSpec) (sl, sh, dl, dh int) {
	switch pl.Policy {
	case PlaceCrossLeaf:
		sl = rng.Intn(f.Leaves)
		dl = rng.Intn(f.Leaves - 1)
		if dl >= sl {
			dl++
		}
		return sl, rng.Intn(f.HostsPerLeaf), dl, rng.Intn(f.HostsPerLeaf)
	case PlaceLeafLocal:
		sl = rng.Intn(f.Leaves)
		sh = rng.Intn(f.HostsPerLeaf)
		dh = rng.Intn(f.HostsPerLeaf - 1)
		if dh >= sh {
			dh++
		}
		return sl, sh, sl, dh
	case PlaceIncast:
		dl, dh = pl.Leaf, pl.Host
		for {
			sl, sh = rng.Intn(f.Leaves), rng.Intn(f.HostsPerLeaf)
			if sl != dl || sh != dh {
				return sl, sh, dl, dh
			}
		}
	default: // uniform
		n := f.Leaves * f.HostsPerLeaf
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		return src / f.HostsPerLeaf, src % f.HostsPerLeaf, dst / f.HostsPerLeaf, dst % f.HostsPerLeaf
	}
}

// Generate expands the spec into a trace: each class walks its own seeded
// arrival stream across the window, drawing sizes and placements per flow;
// the class streams are then merged by start time (stable, so equal-instant
// ties resolve by class order then arrival order — deterministically). The
// result is a pure function of (spec, seed).
func (s *Spec) Generate(seed int64) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	dur, drain, err := s.window()
	if err != nil {
		return nil, err
	}
	tr := &Trace{
		Name:         s.Name,
		Seed:         seed,
		NLeaf:        s.Fabric.Leaves,
		HostsPerLeaf: s.Fabric.HostsPerLeaf,
		NSpine:       s.Fabric.Spines,
		Horizon:      simtime.Time(dur + drain),
	}
	for ci, c := range s.Classes {
		tr.Classes = append(tr.Classes, TraceClass{Name: c.Name, SLO: c.SLO})
		arr, _ := NewArrival(c.Arrival.Process, c.Arrival.Rate, c.Arrival.Shape)
		cdf, _ := cdfFor(c.Name, c.Size)
		transport, _ := ParseTransport(c.Transport)
		fanin := 1
		if c.Placement.Policy == PlaceIncast && c.Placement.Fanin > 1 {
			fanin = c.Placement.Fanin
		}
		rng := rand.New(rand.NewSource(classSeed(seed, ci)))
		t := simtime.Time(0)
		for {
			t = t.Add(arr.Gap(rng))
			if t >= simtime.Time(dur) {
				break
			}
			for k := 0; k < fanin; k++ {
				sl, sh, dl, dh := drawPair(rng, s.Fabric, c.Placement)
				tr.Flows = append(tr.Flows, TraceFlow{
					Start: t, SrcLeaf: sl, SrcHost: sh, DstLeaf: dl, DstHost: dh,
					Bytes: cdf.Sample(rng), Class: ci, Transport: transport,
				})
			}
		}
	}
	sort.SliceStable(tr.Flows, func(i, j int) bool { return tr.Flows[i].Start < tr.Flows[j].Start })
	return tr, tr.Validate()
}

// DefaultMixSpec is the built-in three-class production mix the mix-spec
// experiment runs when no -workload-spec file is given: latency-SLO web
// request/response traffic (Poisson, small flows, DCQCN), throughput-SLO
// cache fill traffic (bursty Gamma arrivals, mid-size flows, DCTCP), and
// bulk-SLO AI batch traffic (heavy-tailed Weibull gaps, large fixed
// transfers, DCQCN), all crossing a 4-leaf fabric.
func DefaultMixSpec() *Spec {
	return &Spec{
		Name:     "mix-default",
		Fabric:   FabricSpec{Leaves: 4, HostsPerLeaf: 4, Spines: 3},
		Duration: "300us",
		Drain:    "1ms",
		Classes: []ClassSpec{
			{
				Name: "web", SLO: "latency", Transport: "dcqcn",
				Arrival:   ArrivalSpec{Process: ArrivalPoisson, Rate: 300e3},
				Size:      SizeSpec{Dist: "uniform", MinBytes: 1 * KBf, MaxBytes: 16 * KBf},
				Placement: PlacementSpec{Policy: PlaceUniform},
			},
			{
				Name: "cache", SLO: "throughput", Transport: "tcp",
				Arrival:   ArrivalSpec{Process: ArrivalGamma, Rate: 100e3, Shape: 0.7},
				Size:      SizeSpec{Dist: "uniform", MinBytes: 32 * KBf, MaxBytes: 128 * KBf},
				Placement: PlacementSpec{Policy: PlaceCrossLeaf},
			},
			{
				Name: "ai-batch", SLO: "bulk", Transport: "dcqcn",
				Arrival:   ArrivalSpec{Process: ArrivalWeibull, Rate: 40e3, Shape: 0.6},
				Size:      SizeSpec{Dist: "fixed", Bytes: 256 * KBf},
				Placement: PlacementSpec{Policy: PlaceCrossLeaf},
			},
		},
	}
}

// KBf is 1024 bytes as an int64, for spec literals.
const KBf int64 = 1024
