package workload

import (
	"math"
	"math/rand"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// StartFlowFunc launches a transport flow; transports (DCQCN, TCP) are
// plugged in by the experiment harness. onDone runs at completion.
type StartFlowFunc func(src, dst *netsim.Host, size int64, onDone func())

// PoissonConfig drives an open-loop load generator: flows arrive as a
// Poisson process sized from a CDF, with uniformly random source and
// destination hosts (src != dst), targeting a fraction of the aggregate
// host-link capacity — the standard methodology of the paper's §5.4.
type PoissonConfig struct {
	Hosts  []*netsim.Host
	Sizes  CDF
	Load   float64      // fraction of aggregate host bandwidth, e.g. 0.6
	HostBW simtime.Rate // per-host link rate
	Start  StartFlowFunc
	// Pairs restricts traffic to specific (src,dst) index pairs; nil means
	// uniform random pairs.
	Pairs [][2]int
	// OnArrival, if set, observes each generated flow.
	OnArrival func(src, dst *netsim.Host, size int64)
}

// PoissonGen is a running generator.
type PoissonGen struct {
	cfg     PoissonConfig
	net     *netsim.Network
	rng     *rand.Rand
	lambda  float64 // arrivals per second across the cluster
	stopped bool

	Started int // flows launched
	Bytes   int64
}

// StartPoisson begins generating flows immediately. The generator draws its
// own RNG stream from the network RNG so that adding monitors does not
// perturb traffic.
func StartPoisson(net *netsim.Network, cfg PoissonConfig) *PoissonGen {
	mean := cfg.Sizes.Mean()
	n := float64(len(cfg.Hosts))
	// Aggregate arrival rate: load × n × BW / (8 × mean flow size).
	lambda := cfg.Load * n * float64(cfg.HostBW) / (8 * mean)
	g := &PoissonGen{
		cfg:    cfg,
		net:    net,
		rng:    rand.New(rand.NewSource(net.Rng.Int63())),
		lambda: lambda,
	}
	g.scheduleNext()
	return g
}

// Stop halts future arrivals (in-flight flows continue).
func (g *PoissonGen) Stop() { g.stopped = true }

func (g *PoissonGen) scheduleNext() {
	gap := simtime.Duration(g.rng.ExpFloat64() / g.lambda * float64(simtime.Second))
	g.net.Q.After(gap, func() {
		if g.stopped {
			return
		}
		g.emit()
		g.scheduleNext()
	})
}

func (g *PoissonGen) emit() {
	hosts := g.cfg.Hosts
	var src, dst *netsim.Host
	if len(g.cfg.Pairs) > 0 {
		p := g.cfg.Pairs[g.rng.Intn(len(g.cfg.Pairs))]
		src, dst = hosts[p[0]], hosts[p[1]]
	} else {
		si := g.rng.Intn(len(hosts))
		di := g.rng.Intn(len(hosts) - 1)
		if di >= si {
			di++
		}
		src, dst = hosts[si], hosts[di]
	}
	size := g.cfg.Sizes.Sample(g.rng)
	g.Started++
	g.Bytes += size
	if g.cfg.OnArrival != nil {
		g.cfg.OnArrival(src, dst, size)
	}
	g.cfg.Start(src, dst, size, nil)
}

// IncastConfig describes an N-to-1 synchronized burst: each of Senders
// opens Flows flows of Size bytes to the single receiver.
type IncastConfig struct {
	Senders  []*netsim.Host
	Receiver *netsim.Host
	Flows    int // flows per sender
	Size     int64
	Start    StartFlowFunc
}

// RunIncast launches the burst at the current virtual time and invokes
// onAllDone when every flow completes.
func RunIncast(net *netsim.Network, cfg IncastConfig, onAllDone func()) {
	total := len(cfg.Senders) * cfg.Flows
	done := 0
	for _, s := range cfg.Senders {
		for i := 0; i < cfg.Flows; i++ {
			cfg.Start(s, cfg.Receiver, cfg.Size, func() {
				done++
				if done == total && onAllDone != nil {
					onAllDone()
				}
			})
		}
	}
}

// Phase describes one segment of a time-varying traffic schedule (Figure 6:
// "randomly change the number of flows and the number of Incast senders").
type Phase struct {
	Duration simtime.Duration
	Run      func() // starts the phase's traffic; previous phase's flows drain naturally
}

// RunPhases executes phases back to back.
func RunPhases(net *netsim.Network, phases []Phase) {
	var at simtime.Duration
	for _, ph := range phases {
		ph := ph
		net.Q.After(at, ph.Run)
		at += ph.Duration
	}
}

// ExpJitter returns a deterministic exponential jitter helper bound to rng.
func ExpJitter(rng *rand.Rand, mean simtime.Duration) simtime.Duration {
	d := simtime.Duration(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		d = 1
	}
	if float64(d) > 20*float64(mean) {
		d = 20 * mean
	}
	return d
}

// LoadForPairs computes the per-pair Poisson rate needed to hit load on a
// bottleneck of rate bw given mean flow size (utility for tests).
func LoadForPairs(load float64, bw simtime.Rate, meanFlow float64) float64 {
	if meanFlow <= 0 {
		return math.NaN()
	}
	return load * float64(bw) / (8 * meanFlow)
}
