package workload

import (
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// AllReduceConfig models ring all-reduce collectives (Horovod-style
// distributed training, and the dominant communication pattern of the HPC
// workloads — Linpack, Quantum Espresso — the paper's offline training set
// includes): every node simultaneously sends a chunk to its ring successor,
// for 2·(N−1) steps per collective.
type AllReduceConfig struct {
	Nodes []*netsim.Host
	// Bytes is the total gradient/tensor volume per node per collective.
	Bytes int64
	// ComputeTime elapses between collectives.
	ComputeTime simtime.Duration
	Start       StartFlowFunc
}

// AllReduceJob is a running collective loop.
type AllReduceJob struct {
	cfg AllReduceConfig
	net *netsim.Network

	stopped bool
	// Rounds counts completed all-reduce collectives.
	Rounds int
	// StepTimes records each collective's duration.
	StepTimes []simtime.Duration

	startedAt simtime.Time
}

// RunAllReduce starts the collective loop: each round performs 2(N−1)
// synchronized ring steps, then waits ComputeTime.
func RunAllReduce(net *netsim.Network, cfg AllReduceConfig) *AllReduceJob {
	j := &AllReduceJob{
		cfg: cfg, net: net, startedAt: net.Now(),
		StepTimes: make([]simtime.Duration, 0, collectiveStepCap),
	}
	j.round()
	return j
}

// Stop ends the loop after the current round.
func (j *AllReduceJob) Stop() { j.stopped = true }

// RoundsPerSec returns the collective rate so far; zero before the first
// round completes (and at zero elapsed virtual time, so a job queried at
// its start instant never divides by zero or reports a rate for no work).
func (j *AllReduceJob) RoundsPerSec() float64 {
	if j.Rounds == 0 {
		return 0
	}
	el := j.net.Now().Sub(j.startedAt).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(j.Rounds) / el
}

func (j *AllReduceJob) round() {
	if j.stopped || len(j.cfg.Nodes) < 2 {
		return
	}
	n := len(j.cfg.Nodes)
	steps := 2 * (n - 1)
	chunk := j.cfg.Bytes / int64(n)
	if chunk < 1 {
		chunk = 1
	}
	t0 := j.net.Now()
	var step func(s int)
	step = func(s int) {
		if j.stopped {
			return
		}
		if s == steps {
			j.Rounds++
			j.StepTimes = append(j.StepTimes, j.net.Now().Sub(t0))
			j.net.Q.After(j.cfg.ComputeTime, j.round)
			return
		}
		// All nodes transfer one chunk to their ring successor; the step
		// completes when every transfer lands (bulk-synchronous).
		remaining := n
		for i, src := range j.cfg.Nodes {
			dst := j.cfg.Nodes[(i+1)%n]
			j.cfg.Start(src, dst, chunk, func() {
				remaining--
				if remaining == 0 {
					step(s + 1)
				}
			})
		}
	}
	step(0)
}
