package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/accnet/acc/internal/simtime"
)

func TestCDFValidate(t *testing.T) {
	for _, c := range []CDF{WebSearch(), DataMining(), Uniform("u", 10, 20), Fixed("f", 5)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := CDF{Name: "bad", Points: []CDFPoint{{0, 0}, {10, 0.5}}}
	if bad.Validate() == nil {
		t.Error("CDF not reaching 1 must fail validation")
	}
	nonMono := CDF{Name: "nm", Points: []CDFPoint{{0, 0}, {10, 0.8}, {5, 1}}}
	if nonMono.Validate() == nil {
		t.Error("non-monotone CDF must fail validation")
	}
}

// TestFig11CDFs checks the two workload distributions of Figure 11 are
// heavy-tailed the way the paper describes.
func TestFig11CDFs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ws, dm := WebSearch(), DataMining()

	// Empirical check: sample means approximate analytic means.
	for _, c := range []CDF{ws, dm} {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(rng))
		}
		got := sum / n
		want := c.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s sample mean %.0f vs analytic %.0f", c.Name, got, want)
		}
	}

	// DataMining is far more skewed: its median is tiny vs its mean.
	var dmSmall int
	const n = 100000
	for i := 0; i < n; i++ {
		if dm.Sample(rng) <= 10*simtime.KB {
			dmSmall++
		}
	}
	if frac := float64(dmSmall) / n; frac < 0.75 {
		t.Errorf("DataMining small-flow fraction %.2f, want ~0.8", frac)
	}
	if dm.Mean() < 10*float64(dm.Points[8].Bytes) {
		t.Errorf("DataMining mean %.0f should dwarf its 80th percentile", dm.Mean())
	}
}

func TestSampleWithinSupport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, c := range []CDF{WebSearch(), DataMining()} {
			s := c.Sample(rng)
			lo := int64(1)
			hi := int64(c.Points[len(c.Points)-1].Bytes)
			if s < lo || s > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fx := Fixed("f", 4096)
	for i := 0; i < 10; i++ {
		if fx.Sample(rng) != 4096 {
			t.Fatal("Fixed CDF must always return its size")
		}
	}
	u := Uniform("u", 100, 200)
	for i := 0; i < 1000; i++ {
		s := u.Sample(rng)
		if s < 100 || s > 200 {
			t.Fatalf("uniform sample %d outside [100,200]", s)
		}
	}
}

func TestTable1Models(t *testing.T) {
	models := Table1()
	if len(models) != 6 {
		t.Fatalf("%d models, want 6 (Table 1)", len(models))
	}
	byName := map[string]StorageModel{}
	for _, m := range models {
		byName[m.Name] = m
		if m.ReadRatio < 0 || m.ReadRatio > 1 {
			t.Errorf("%s read ratio %v", m.Name, m.ReadRatio)
		}
		if m.BlockMin > m.BlockMax {
			t.Errorf("%s block range inverted", m.Name)
		}
	}
	// Paper Table 1 spot checks.
	if byName["OLTP"].BlockMin != 512 || byName["OLTP"].BlockMax != 64*simtime.KB {
		t.Error("OLTP block size range wrong")
	}
	if byName["OLAP"].BlockMax != 4*simtime.MB {
		t.Error("OLAP block size range wrong")
	}
	if byName["VDI"].ReadRatio != 0.2 {
		t.Error("VDI read-write ratio wrong (2:8)")
	}
	if byName["ExchangeServer"].ReadRatio != 0.6 {
		t.Error("Exchange read-write ratio wrong (6:4)")
	}
}

func TestSampleBlockInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range Table1() {
		for i := 0; i < 1000; i++ {
			b := m.SampleBlock(rng)
			if b < m.BlockMin || b > m.BlockMax {
				t.Fatalf("%s block %d outside [%d,%d]", m.Name, b, m.BlockMin, m.BlockMax)
			}
		}
	}
	// Degenerate range.
	vs := StorageModel{BlockMin: 64 * simtime.KB, BlockMax: 64 * simtime.KB}
	if vs.SampleBlock(rng) != 64*simtime.KB {
		t.Fatal("fixed block size must be exact")
	}
}

func TestTrainingModels(t *testing.T) {
	a, r := AlexNet(), ResNet50()
	if a.ModelBytes <= r.ModelBytes {
		t.Fatal("AlexNet gradient volume must exceed ResNet-50's")
	}
	if a.BatchSize != 64 || r.BatchSize != 64 {
		t.Fatal("paper uses batchSize=64")
	}
}

func TestLogUniformMeanProperty(t *testing.T) {
	// ExpJitter stays positive and bounded.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		d := ExpJitter(rng, simtime.Millisecond)
		if d <= 0 || d > 20*simtime.Millisecond {
			t.Fatalf("jitter %v out of bounds", d)
		}
	}
}

func TestAllReduceRounds(t *testing.T) {
	net := netsimNew(9)
	fab := topoStar(net, 4)
	job := RunAllReduce(net, AllReduceConfig{
		Nodes:       fab.Hosts,
		Bytes:       400 * simtime.KB,
		ComputeTime: 50 * simtime.Microsecond,
		Start:       dcqcnStarterFor(net),
	})
	net.RunUntil(simtimeT(20 * simtime.Millisecond))
	job.Stop()
	if job.Rounds < 2 {
		t.Fatalf("only %d all-reduce rounds completed", job.Rounds)
	}
	if len(job.StepTimes) != job.Rounds {
		t.Fatal("step times not recorded per round")
	}
	if job.RoundsPerSec() <= 0 {
		t.Fatal("round rate not positive")
	}
}

func TestAllReduceDegenerate(t *testing.T) {
	net := netsimNew(10)
	fab := topoStar(net, 2)
	// Two nodes: 2(N-1) = 2 steps per round; tiny tensors.
	job := RunAllReduce(net, AllReduceConfig{
		Nodes:       fab.Hosts,
		Bytes:       1, // chunk clamps to >=1 byte
		ComputeTime: simtime.Microsecond,
		Start:       dcqcnStarterFor(net),
	})
	net.RunUntil(simtimeT(simtime.Millisecond))
	job.Stop()
	if job.Rounds == 0 {
		t.Fatal("degenerate all-reduce made no progress")
	}
}
