package netsim

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// TestSetDownBlackholesPropagation kills a link while a packet is
// propagating: the packet must be lost and counted, never delivered.
func TestSetDownBlackholesPropagation(t *testing.T) {
	net, h1, h2, _ := rig(t, nil)
	delivered := 0
	h2.Register(1, EndpointFunc(func(p *Packet) { delivered++ }))
	h1.Send(dataPkt(h1, h2, 1, 1048))

	// First hop: ser on the NIC, then 600ns propagation to the switch.
	ser := simtime.TxTime(1048, 25*simtime.Gbps)
	net.RunUntil(simtime.Time(ser + 100)) // mid-propagation
	h1.Port.SetDown(true)
	net.Run()

	if delivered != 0 {
		t.Fatalf("%d packets delivered across a link that died mid-flight", delivered)
	}
	if h1.Port.BlackholedPackets != 1 || h1.Port.BlackholedBytes != 1048 {
		t.Fatalf("blackhole counters = %d pkts / %d bytes, want 1/1048",
			h1.Port.BlackholedPackets, h1.Port.BlackholedBytes)
	}
}

// TestSetDownBlackholesSerialization kills the switch egress link while the
// packet is on the transmitter: the packet is lost, but the shared-buffer
// accounting must still be released so the switch does not leak capacity.
func TestSetDownBlackholesSerialization(t *testing.T) {
	net, h1, h2, sw := rig(t, nil)
	delivered := 0
	h2.Register(1, EndpointFunc(func(p *Packet) { delivered++ }))
	h1.Send(dataPkt(h1, h2, 1, 1048))

	egress := sw.Ports[1] // toward h2
	ser := simtime.TxTime(1048, 25*simtime.Gbps)
	// The packet reaches the switch at ser+600 and starts serializing.
	net.RunUntil(simtime.Time(ser + 600 + ser/2))
	egress.SetDown(true)
	net.Run()

	if delivered != 0 {
		t.Fatal("packet delivered across a downed egress link")
	}
	if egress.BlackholedPackets != 1 {
		t.Fatalf("egress blackholed %d packets, want 1", egress.BlackholedPackets)
	}
	if egress.TxBytesTotal != 0 {
		t.Fatal("blackholed packet counted as transmitted")
	}
	if sw.BufferUsed() != 0 {
		t.Fatalf("switch buffer leaked %d bytes after blackhole", sw.BufferUsed())
	}
}

// TestSetDownRecoveryResumes verifies traffic flows again after repair and
// that queued (not yet serialized) packets survive the outage.
func TestSetDownRecoveryResumes(t *testing.T) {
	net, h1, h2, _ := rig(t, nil)
	delivered := 0
	h2.Register(1, EndpointFunc(func(p *Packet) { delivered++ }))

	h1.Port.SetDown(true)
	h1.Send(dataPkt(h1, h2, 1, 1000)) // parked in the NIC queue
	net.RunFor(10 * simtime.Microsecond)
	if delivered != 0 {
		t.Fatal("delivery across a down link")
	}
	h1.Port.SetDown(false)
	net.Run()
	if delivered != 1 {
		t.Fatalf("queued packet not delivered after repair (got %d)", delivered)
	}
	if h1.Port.BlackholedPackets != 0 {
		t.Fatal("queued packet wrongly blackholed")
	}
}

// TestSetBandwidthDegradesServiceRate halves the rate and checks the next
// packet's serialization takes twice as long.
func TestSetBandwidthDegradesServiceRate(t *testing.T) {
	net, h1, h2, _ := rig(t, nil)
	var arrival simtime.Time
	h2.Register(1, EndpointFunc(func(p *Packet) { arrival = net.Now() }))

	full := simtime.TxTime(1048, 25*simtime.Gbps)
	h1.Send(dataPkt(h1, h2, 1, 1048))
	net.Run()
	base := arrival // 2 serializations + 2 propagations

	// Degrade only the NIC uplink: its hop serializes 2x slower.
	h1.Port.SetBandwidth(12.5 * simtime.Gbps)
	start := net.Now()
	h1.Send(dataPkt(h1, h2, 1, 1048))
	net.Run()
	got := arrival.Sub(start)
	slow := simtime.TxTime(1048, 12.5*simtime.Gbps)
	want := base.Sub(0) + (slow - full) // slow hop replaces one fast serialization
	if got != want {
		t.Fatalf("degraded transfer took %v, want %v", got, want)
	}
}

// TestRouteBlackholeCounter checks the dedicated no-route counter.
func TestRouteBlackholeCounter(t *testing.T) {
	net, h1, h2, sw := rig(t, nil)
	sw.Ports[1].SetDown(true) // only route to h2
	h1.Send(dataPkt(h1, h2, 1, 700))
	net.Run()
	if sw.RouteBlackholes != 1 {
		t.Fatalf("RouteBlackholes = %d, want 1", sw.RouteBlackholes)
	}
	if sw.DropsTotal != 1 {
		t.Fatalf("DropsTotal = %d, want 1", sw.DropsTotal)
	}
}
