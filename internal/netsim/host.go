package netsim

import (
	"math/rand"

	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// Endpoint consumes packets addressed to a host for one flow. Transport
// implementations (DCQCN, DCTCP) register endpoints on hosts.
type Endpoint interface {
	Handle(pkt *Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(*Packet)

// Handle implements Endpoint.
func (f EndpointFunc) Handle(pkt *Packet) { f(pkt) }

// Host is an end server with a single NIC port. Transports enqueue packets
// through Send; inbound packets are dispatched to the Endpoint registered
// for their flow.
type Host struct {
	id int
	//acclint:ignore snapcover construction identity (topology naming); not part of dynamic state
	name string
	net  *Network
	//acclint:ignore snapcover per-node stream wrapper; Network.SaveState saves each stream's draw count and restore fast-forwards it
	rng  *rand.Rand // per-node stream keyed on (seed, id); see Network.nodeRng
	Port *Port

	//acclint:ignore snapcover transport registration; restore resets it (ResetEndpoints) and the rebuilt transports re-register
	endpoints map[FlowID]Endpoint

	// PauseHooks are notified when the NIC's pause state changes, letting
	// rate-based transports observe PFC back-pressure.
	PauseHooks []func(prio int, paused bool)
}

// NewHost creates a host and registers it with the network at the next free
// id.
func NewHost(net *Network, name string) *Host {
	return NewHostAt(net, name, len(net.nodes))
}

// NewHostAt creates a host registered at an explicit node id, for sharded
// builds that must reproduce the sequential build's id assignment (node ids
// double as routing addresses).
func NewHostAt(net *Network, name string, id int) *Host {
	h := &Host{name: name, net: net, endpoints: make(map[FlowID]Endpoint)}
	h.id = net.registerAt(h, id)
	h.rng = net.nodeRng(h.id)
	return h
}

// ID returns the node id (also the host's address for routing).
func (h *Host) ID() int { return h.id }

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Net returns the owning network.
func (h *Host) Net() *Network { return h.net }

// AttachPort gives the host its NIC port with the given line rate and cable
// delay. Weights configure per-priority NIC egress queues (nil = single
// queue).
func (h *Host) AttachPort(bw simtime.Rate, delay simtime.Duration, weights []int) *Port {
	h.Port = newPort(h.net, h, 0, bw, delay, weights)
	return h.Port
}

// Register binds an endpoint to a flow id for inbound dispatch.
func (h *Host) Register(f FlowID, e Endpoint) { h.endpoints[f] = e }

// Unregister removes a flow binding.
func (h *Host) Unregister(f FlowID) { delete(h.endpoints, f) }

// ResetEndpoints removes every flow binding. Snapshot restore uses it to
// discard construction-time transports the overlay supersedes (hybrid
// applications start due flows synchronously at apply time).
func (h *Host) ResetEndpoints() { clear(h.endpoints) }

// Send enqueues a packet on the NIC egress queue for its priority. The
// network owns the packet from this point on; a WRED drop at the NIC retires
// it immediately.
func (h *Host) Send(pkt *Packet) {
	if h.Port.Enqueue(pkt, h.rng) == red.Drop {
		h.net.ReleasePacket(pkt)
	}
}

// Receive implements Node: PFC frames act on the NIC transmitter; everything
// else is dispatched to the flow's endpoint. Packets for unknown flows are
// dropped silently (late packets after flow teardown). Delivery is the
// packet's terminal point: once the endpoint's Handle returns, the packet
// goes back to the pool, so endpoints must copy fields they need later.
func (h *Host) Receive(pkt *Packet, in *Port) {
	switch pkt.Kind {
	case KindPause:
		in.setPaused(pkt.PausePrio, true)
		for _, hook := range h.PauseHooks {
			hook(pkt.PausePrio, true)
		}
		h.net.ReleasePacket(pkt)
		return
	case KindResume:
		in.setPaused(pkt.PausePrio, false)
		for _, hook := range h.PauseHooks {
			hook(pkt.PausePrio, false)
		}
		h.net.ReleasePacket(pkt)
		return
	}
	if e, ok := h.endpoints[pkt.Flow]; ok {
		e.Handle(pkt)
	}
	h.net.ReleasePacket(pkt)
}
