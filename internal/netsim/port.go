package netsim

import (
	"math/rand"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// EgressQueue is one traffic-class queue at a port, with WRED/ECN marking and
// the telemetry counters ACC's collector reads (§4.1: total bytes sent,
// number of ECN-marked packets, egress queue depth).
type EgressQueue struct {
	//acclint:ignore snapcover construction config (queue identity)
	Prio int
	//acclint:ignore snapcover construction config (DWRR share)
	Weight int // DWRR weight; bandwidth share is Weight / sum(Weights)

	ECNEnabled bool
	RED        red.Config

	// InjectLimit, when positive, bounds how many bytes a host-side sender
	// may keep queued here; senders use CanInject/WhenReady to pace into the
	// NIC the way per-QP rate limiters share a real NIC port. Zero means
	// unlimited (switch egress queues).
	//acclint:ignore snapcover construction config (NIC pacing bound)
	InjectLimit int

	pkts    []*Packet // FIFO; head at index head
	head    int
	bytes   int
	waiters []Waiter // FIFO; head at index whead
	whead   int
	//acclint:ignore snapcover transient within one synchronous wakeWaiters call; false at every event boundary, and snapshots happen only between events
	serving bool // a waiter is being served: it may inject past the queue

	// restoreWaiters holds snapshot waiter identities between a port
	// restore and Network.ResolveWaiters (transports are rebuilt in
	// between); empty otherwise.
	restoreWaiters []WaiterRef

	// Byte-time integral for exact average-queue-length telemetry: consumers
	// take (integral delta)/(window) to get mean depth over a window, which
	// the paper's reward uses instead of instantaneous depth (§3.3).
	byteTime   float64 // ∫ qlen dt, in byte·seconds
	lastChange simtime.Time
	clock      func() simtime.Time

	deficit int  // DWRR deficit counter, bytes
	inTurn  bool // whether the queue was replenished for the current turn

	// Cumulative counters (monotonic; consumers take deltas).
	TxBytes         uint64 // bytes fully serialized onto the link
	AnalyticTxBytes uint64 // wire bytes fast-forwarded in closed form (internal/hybrid)
	TxPackets       uint64
	TxMarkedBytes   uint64 // bytes of packets that left with CE set
	TxMarkedPkts    uint64
	EnqBytes        uint64
	DropPackets     uint64 // WRED drops of non-ECT traffic
	DropBytes       uint64
}

// Len returns the number of queued packets.
func (q *EgressQueue) Len() int { return len(q.pkts) - q.head }

// Bytes returns the instantaneous queue depth in bytes.
func (q *EgressQueue) Bytes() int { return q.bytes }

// accrue integrates qlen·dt up to the current time.
func (q *EgressQueue) accrue() {
	if q.clock == nil {
		return
	}
	now := q.clock()
	q.byteTime += float64(q.bytes) * now.Sub(q.lastChange).Seconds()
	q.lastChange = now
}

// ByteTimeIntegral returns ∫qlen·dt in byte·seconds up to now; divide a
// delta of this by the window length to get average queue depth.
func (q *EgressQueue) ByteTimeIntegral() float64 {
	q.accrue()
	return q.byteTime
}

func (q *EgressQueue) push(p *Packet) {
	q.accrue()
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	q.EnqBytes += uint64(p.Size)
}

func (q *EgressQueue) peek() *Packet { return q.pkts[q.head] }

func (q *EgressQueue) pop() *Packet {
	q.accrue()
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	} else if q.head > 1024 && q.head*2 > len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		for i := n; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

// Port is one direction-pair attachment point of a node: it owns the egress
// queues and the transmitter that serializes packets onto the attached link.
type Port struct {
	//acclint:ignore snapcover construction wiring (owning node)
	Owner Node
	//acclint:ignore snapcover construction wiring (port slot)
	Index int // port index within the owner
	//acclint:ignore snapcover construction wiring (link far end)
	Peer *Port // remote end of the link

	Bandwidth simtime.Rate // line rate of the attached link
	//acclint:ignore snapcover construction config (link propagation)
	Delay simtime.Duration // one-way propagation delay

	Queues []*EgressQueue

	net    *Network
	busy   bool
	down   bool
	paused [NumPrio]bool
	rr     int // DWRR round-robin pointer
	//acclint:ignore snapcover derived at construction from queue weights
	quantum int // base DWRR quantum in bytes (scaled by queue weight)

	// remote, when non-nil, marks the far end of this port's link as living
	// in another shard: deliver hands finished packets to it (by value)
	// instead of scheduling a local arrival, and Peer stays nil.
	remote RemoteEnd

	// rxStream identifies the receiving (node, port) of this transmitter's
	// link — the arrival stream for eventq.KeyedSeq. txSeq counts packets
	// delivered on the link; together they give every arrival a key that
	// depends only on which link carried the packet and how many preceded it,
	// so same-nanosecond arrival ordering is identical in every engine. txSeq
	// wraps at 2^32, which only matters if that many packets of one link are
	// pending at one instant — impossible by orders of magnitude.
	//acclint:ignore snapcover derived wiring: identifies the receiving (node, port) of the link, constant for a given topology
	rxStream uint32
	txSeq    uint32

	// Snapshot bookkeeping for the two in-flight packet populations of a
	// port (see snapshot.go): the packet on the transmitter (busy implies
	// txPkt non-nil; txAt/txEvSeq are its pending txDone event's slot) and
	// the packets propagating on the wire, as a FIFO ring in arrival order.
	// A local port's ring holds its own outbound flight (arriveFn events);
	// a cross-shard port's ring holds its inbound flight injected by the
	// far shard (remoteArriveFn events). Maintenance is O(1) per packet and
	// allocation-free in steady state.
	txPkt   *Packet
	txAt    simtime.Time
	txEvSeq uint64
	flight  []flightRec
	fhead   int

	// Pre-bound callbacks for the two per-packet events (serialization done,
	// propagation done), created once in newPort so the hot path schedules
	// through eventq's recycled typed events with zero allocation.
	// remoteArriveFn is the arrival callback for packets injected by the far
	// shard of a cross-shard link; it runs on the *receiving* port.
	txDoneFn       func(any)
	arriveFn       func(any)
	remoteArriveFn func(any)

	// fidelity is the hybrid-engine bookkeeping mode; see SetFidelity.
	fidelity Fidelity

	// Cumulative counters.
	TxBytesTotal    uint64
	AnalyticTxBytes uint64 // wire bytes fast-forwarded in closed form (internal/hybrid)
	RxBytesTotal    uint64
	PauseRxEvents   uint64 // pause frames received (transmitter-side stalls)
	PauseTxEvents   uint64 // pause frames sent (receiver-side congestion)
	PausedDuration  simtime.Duration
	pausedSince     [NumPrio]simtime.Time

	// Blackhole counters: packets lost on this transmitter because the link
	// was down when they finished serializing or when they would have
	// arrived at the peer (see SetDown).
	BlackholedPackets uint64
	BlackholedBytes   uint64
}

// newPort creates a port with one egress queue per entry in weights
// (prio i gets weights[i]; zero-weight entries are skipped).
func newPort(net *Network, owner Node, index int, bw simtime.Rate, delay simtime.Duration, weights []int) *Port {
	p := &Port{
		Owner:     owner,
		Index:     index,
		Bandwidth: bw,
		Delay:     delay,
		net:       net,
		quantum:   2 * DefaultMTU,
	}
	p.txDoneFn = p.txDone
	p.arriveFn = p.arrive
	p.remoteArriveFn = p.remoteArrive
	for prio, w := range weights {
		if w <= 0 {
			continue
		}
		p.Queues = append(p.Queues, &EgressQueue{Prio: prio, Weight: w, clock: net.Q.Now})
	}
	if len(p.Queues) == 0 {
		p.Queues = append(p.Queues, &EgressQueue{Prio: 0, Weight: 1, clock: net.Q.Now})
	}
	return p
}

// Arrival-stream geometry: a stream id packs (receiving node id, receiving
// port index) into 31 bits, allowing fabrics of up to 2^20 nodes with up to
// 2^11 ports each — far beyond the 100k-host scale the roadmap targets.
const (
	arrivalPortBits = 11
	arrivalNodeBits = 20
)

// arrivalStream builds the eventq key stream for packets arriving at the
// given (node, port).
func arrivalStream(node, port int) uint32 {
	if node < 0 || node >= 1<<arrivalNodeBits || port < 0 || port >= 1<<arrivalPortBits {
		panic("netsim: node id or port index exceeds arrival-stream geometry")
	}
	return uint32(node)<<arrivalPortBits | uint32(port)
}

// Net returns the Network owning this port (for schedulers that must target
// the queue of the shard a port lives in).
func (p *Port) Net() *Network { return p.net }

// Queue returns the egress queue serving priority prio, or nil.
func (p *Port) Queue(prio int) *EgressQueue {
	for _, q := range p.Queues {
		if q.Prio == prio {
			return q
		}
	}
	return nil
}

// Paused reports whether the given priority is PFC-paused at this port's
// transmitter.
func (p *Port) Paused(prio int) bool { return p.paused[prio] }

// IsDown reports whether the port's link is administratively down.
func (p *Port) IsDown() bool { return p.down }

// SetDown marks both ends of the link up or down (failure injection, the
// "failure scenarios" of the paper's §2.2 stress testing). Packets already
// queued stay queued; the transmitter stalls while down and resumes on
// recovery. Routing (ECMP) skips down links, so traffic reconverges onto
// the surviving paths.
//
// In-flight traffic is lost, not delivered: a packet whose serialization or
// propagation completes while the link is down is blackholed — dropped and
// counted in the transmitting port's BlackholedPackets/BlackholedBytes —
// mirroring a real cable pull, where bits on the wire never reach the far
// end. Shared-buffer accounting is still released for blackholed packets,
// and transports must recover via their own timeout/retransmission path. A
// packet only survives if the link is back up by the time it would arrive.
func (p *Port) SetDown(down bool) {
	p.down = down
	p.net.Tracer.LinkState(p.net.Now(), p.Owner.ID(), p.Index, down)
	if p.Peer != nil {
		p.Peer.down = down
	}
	if !down {
		p.trySend()
		if p.Peer != nil {
			p.Peer.trySend()
		}
	}
}

// SetEndDown marks only this end of the link up or down, without touching
// the peer. Sharded runs (internal/psim) use it to apply one link fault as
// two per-end events — one in each owning shard, at the same virtual time —
// which is observably identical to SetDown's both-ends write because every
// down check reads the checking end's own flag. Sequential callers should
// keep using SetDown.
func (p *Port) SetEndDown(down bool) {
	p.down = down
	p.net.Tracer.LinkState(p.net.Now(), p.Owner.ID(), p.Index, down)
	if !down {
		p.trySend()
	}
}

// SetBandwidth changes the link rate of this transmitter at runtime
// (bandwidth-degradation faults: a flapping optic renegotiating a lower
// speed, or an oversubscribed virtual link). It affects packets whose
// serialization starts after the call; the packet currently on the wire
// keeps the timing it started with. The two directions of a link are
// independent — degrade the peer too for a symmetric brownout.
func (p *Port) SetBandwidth(r simtime.Rate) { p.Bandwidth = r }

// blackhole counts pkt as lost on the down link and retires it. Link
// blackholes get their own trace reason (distinct from WRED/overflow
// switch drops) so fault post-mortems can attribute losses to the cable
// pull rather than congestion.
func (p *Port) blackhole(pkt *Packet) {
	p.BlackholedPackets++
	p.BlackholedBytes += uint64(pkt.Size)
	p.net.Tracer.Drop(p.net.Now(), obs.DropLinkBlackhole, p.Owner.ID(), p.Index, pkt.Prio, uint64(pkt.Flow), pkt.Size)
	p.net.ReleasePacket(pkt)
}

// Utilization returns the fraction of capacity used over a window, given the
// byte delta observed by the caller.
func (p *Port) Utilization(bytesDelta uint64, window simtime.Duration) float64 {
	if window <= 0 || p.Bandwidth <= 0 {
		return 0
	}
	return float64(bytesDelta) * 8 / (float64(p.Bandwidth) * window.Seconds())
}

// Enqueue admits a data packet to the egress queue for its priority, applying
// WRED/ECN. It returns the verdict so the owning switch can release buffer
// accounting on drop. Control frames bypass Enqueue entirely.
func (p *Port) Enqueue(pkt *Packet, rng *rand.Rand) red.Verdict {
	q := p.Queue(pkt.Prio)
	if q == nil {
		// The port has no dedicated queue for this class: map the packet to
		// the default queue and normalize its priority so that downstream
		// PFC accounting and pause frames act on the class that actually
		// carries it (traffic class = egress queue).
		q = p.Queues[0]
		pkt.Prio = q.Prio
	}
	v := red.Pass
	if q.ECNEnabled {
		v = q.RED.Admit(q.bytes, pkt.ECT, rng)
	}
	switch v {
	case red.Drop:
		q.DropPackets++
		q.DropBytes += uint64(pkt.Size)
		return v
	case red.Mark:
		pkt.CE = true
	}
	q.push(pkt)
	p.trySend()
	return v
}

// Waiter is a sender parked on a full NIC queue, woken in FIFO order once
// room frees up (see WhenReady). The identity pair makes the park order
// serializable: a snapshot records (kind, flow) per waiter and restore
// re-parks the rebuilt transport objects in the same order (see
// WaiterKind and snapshot.go).
type Waiter interface {
	// NICReady is called when the waiter's turn comes; it must re-check
	// CanInject and may re-register.
	NICReady()
	// WaiterID identifies the waiter for snapshots: kind is a WaiterKind
	// constant and flow the transport's flow id.
	WaiterID() (kind uint8, flow FlowID)
}

// WaiterKind values identify Waiter implementations in snapshots.
const (
	WaiterNone  uint8 = iota // unserializable (test shims)
	WaiterDCQCN              // *dcqcn.Flow
	WaiterTCP                // *tcp.Flow
)

// WaiterFunc adapts a bare function to Waiter for tests and tools that
// never snapshot; it serializes as WaiterNone and panics on restore.
type WaiterFunc func()

// NICReady implements Waiter.
func (f WaiterFunc) NICReady() { f() }

// WaiterID implements Waiter.
func (f WaiterFunc) WaiterID() (uint8, FlowID) { return WaiterNone, 0 }

// CanInject reports whether a sender may enqueue another packet at priority
// prio. Admission is FIFO-fair: while other senders are parked in the
// waiter queue, newcomers must line up behind them even if buffer space is
// momentarily free — otherwise a fast pacer re-grabs every freed slot and
// starves the rest (per-QP arbitration in real NICs is round-robin).
func (p *Port) CanInject(prio int) bool {
	q := p.Queue(prio)
	if q == nil {
		q = p.Queues[0]
	}
	if q.InjectLimit > 0 && q.bytes >= q.InjectLimit {
		return false
	}
	return q.serving || len(q.waiters) == q.whead
}

// WhenReady parks w until the priority's queue has room and w's turn comes
// (FIFO). NICReady must re-check CanInject and may re-register.
func (p *Port) WhenReady(prio int, w Waiter) {
	q := p.Queue(prio)
	if q == nil {
		q = p.Queues[0]
	}
	q.waiters = append(q.waiters, w)
}

// wakeWaiters serves parked senders in FIFO order while the queue has room.
// Each waiter may inject one or more packets; a waiter that is still
// blocked re-registers at the tail, which ends the loop because the queue
// is full again. The slice is drained via a head index and reset to length
// zero once empty, so the steady-state park/wake cycle reuses one backing
// array instead of reallocating it.
func (p *Port) wakeWaiters(q *EgressQueue) {
	for q.whead < len(q.waiters) && (q.InjectLimit <= 0 || q.bytes < q.InjectLimit) {
		w := q.waiters[q.whead]
		q.waiters[q.whead] = nil
		q.whead++
		q.serving = true
		w.NICReady()
		q.serving = false
	}
	if q.whead == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.whead = 0
	}
}

// setPaused updates PFC pause state for a priority and kicks the transmitter
// on resume.
func (p *Port) setPaused(prio int, paused bool) {
	if p.paused[prio] == paused {
		return
	}
	p.paused[prio] = paused
	if paused {
		p.PauseRxEvents++
		p.pausedSince[prio] = p.net.Now()
	} else {
		p.PausedDuration += p.net.Now().Sub(p.pausedSince[prio])
		p.trySend()
	}
}

// nextPacket implements deficit round robin across the port's queues,
// skipping paused priorities. It returns nil when nothing is transmittable.
func (p *Port) nextPacket() (*EgressQueue, *Packet) {
	n := len(p.Queues)
	if n == 1 {
		q := p.Queues[0]
		if q.Len() == 0 || p.paused[q.Prio] {
			return nil, nil
		}
		return q, q.pop()
	}
	for i := 0; i < n; i++ {
		q := p.Queues[p.rr]
		if q.Len() > 0 && !p.paused[q.Prio] {
			if !q.inTurn {
				q.deficit += q.Weight * p.quantum
				q.inTurn = true
			}
			if head := q.peek(); q.deficit >= head.Size {
				pkt := q.pop()
				q.deficit -= pkt.Size
				if q.Len() == 0 {
					q.deficit = 0
					q.inTurn = false
					p.rr = (p.rr + 1) % n
				}
				return q, pkt
			}
		}
		q.inTurn = false
		p.rr = (p.rr + 1) % n
	}
	return nil, nil
}

// trySend starts serializing the next eligible packet if the transmitter is
// idle.
func (p *Port) trySend() {
	if p.busy || (p.Peer == nil && p.remote == nil) || p.down {
		return
	}
	q, pkt := p.nextPacket()
	if pkt == nil {
		return
	}
	p.busy = true
	p.wakeWaiters(q)
	txd := simtime.TxTime(pkt.Size, p.Bandwidth)
	p.txPkt = pkt
	p.txAt = p.net.Q.Now().Add(txd)
	p.txEvSeq = p.net.Q.Seq()
	p.net.Q.CallAfter(txd, p.txDoneFn, pkt)
}

// txDone runs when a packet finishes serializing onto the link: it frees the
// transmitter, settles shared-buffer accounting, records telemetry, and
// hands the packet to propagation.
func (p *Port) txDone(arg any) {
	pkt := arg.(*Packet)
	p.busy = false
	p.txPkt = nil
	if rel, ok := p.Owner.(bufferReleaser); ok {
		rel.releaseBuffer(pkt)
	}
	if p.down {
		// The link died mid-serialization: the partial frame never
		// reaches the peer (see SetDown).
		p.blackhole(pkt)
		return
	}
	q := p.Queue(pkt.Prio)
	p.TxBytesTotal += uint64(pkt.Size)
	q.TxBytes += uint64(pkt.Size)
	q.TxPackets++
	if pkt.CE {
		q.TxMarkedBytes += uint64(pkt.Size)
		q.TxMarkedPkts++
	}
	p.deliver(pkt)
	p.trySend()
}

// deliver propagates a serialized packet across the link to the peer node.
// A packet whose propagation ends while the link is down is blackholed
// (see SetDown). Arrivals are scheduled with an explicit (link, packet
// count) key rather than the queue's monotonic counter, so their
// same-nanosecond tie order is a property of the traffic, not of scheduling
// history — the invariant that lets a sharded engine merge cross-shard
// arrivals bit-identically (see eventq.CallAtSeq). When the far end lives in
// another shard, ownership of the packet object transfers to the receiving
// Network (see RemoteEnd); this side never touches it again.
func (p *Port) deliver(pkt *Packet) {
	at := p.net.Q.Now().Add(p.Delay)
	key := eventq.KeyedSeq(p.rxStream, p.txSeq)
	p.txSeq++
	if p.remote != nil {
		p.remote.Deliver(pkt, at, key)
		return
	}
	p.flightPush(flightRec{pkt: pkt, at: at, key: key})
	p.net.Q.CallAtSeq(at, key, p.arriveFn, pkt)
}

// flightRec is one packet on the wire, recorded so a snapshot can save and
// re-schedule the in-flight population exactly.
type flightRec struct {
	pkt *Packet
	at  simtime.Time
	key uint64
}

func (p *Port) flightPush(rec flightRec) {
	p.flight = append(p.flight, rec)
}

// flightPop removes the oldest in-flight record, which is always the one
// whose arrival fires next: a port's flight is fed by one transmitter, so
// records are pushed in (at, key) order.
func (p *Port) flightPop() {
	p.flight[p.fhead] = flightRec{}
	p.fhead++
	if p.fhead == len(p.flight) {
		p.flight = p.flight[:0]
		p.fhead = 0
	} else if p.fhead > 1024 && p.fhead*2 > len(p.flight) {
		n := copy(p.flight, p.flight[p.fhead:])
		for i := n; i < len(p.flight); i++ {
			p.flight[i] = flightRec{}
		}
		p.flight = p.flight[:n]
		p.fhead = 0
	}
}

// arrive runs when a packet finishes propagating: it delivers to the peer
// node, unless the link died in flight. Peer is immutable after Connect, so
// reading it at arrival time matches the value at transmission time.
func (p *Port) arrive(arg any) {
	pkt := arg.(*Packet)
	p.flightPop()
	if p.down {
		p.blackhole(pkt)
		return
	}
	peer := p.Peer
	peer.RxBytesTotal += uint64(pkt.Size)
	peer.Owner.Receive(pkt, peer)
}

// ScheduleRemoteArrival accepts a packet that finished propagating from a
// transmitter in another shard: it adopts the Packet object into this
// (receiving) Network — the consumer eventually releases it into this
// shard's pool — and schedules the arrival at the original time with the
// original key, allocating nothing. The sync layer guarantees at is still
// in this shard's future when injection happens (conservative lookahead),
// so the keyed event lands in exactly the schedule position it holds in a
// sequential run, and guarantees the transmitter no longer touches the
// object (see RemoteEnd).
func (p *Port) ScheduleRemoteArrival(pkt *Packet, at simtime.Time, key uint64) {
	p.flightPush(flightRec{pkt: pkt, at: at, key: key})
	p.net.Q.CallAtSeq(at, key, p.remoteArriveFn, pkt)
}

// remoteArrive is arrive for the receiving end of a cross-shard link. The
// down check reads this end's flag — equivalent to the sequential
// transmitter-side check because fault application drives both ends at the
// same virtual time — and a blackholed packet is counted on this (receiving)
// port, so fabric-wide blackhole totals match the sequential engine even
// though the attributed end differs.
func (p *Port) remoteArrive(arg any) {
	pkt := arg.(*Packet)
	p.flightPop()
	if p.down {
		p.blackhole(pkt)
		return
	}
	p.RxBytesTotal += uint64(pkt.Size)
	p.Owner.Receive(pkt, p)
}

// SendCtrl transmits a control frame (PFC pause/resume) to the peer,
// bypassing the egress queues: PFC frames are generated by the MAC and are
// not subject to data-plane queuing. Serialization of the 64-byte frame is
// folded into the propagation delay.
func (p *Port) SendCtrl(pkt *Packet) {
	if p.Peer == nil && p.remote == nil {
		p.net.ReleasePacket(pkt)
		return
	}
	p.PauseTxEvents++
	p.deliver(pkt)
}

// bufferReleaser is implemented by nodes with shared-buffer accounting
// (switches) that must release space when a packet finishes serializing.
type bufferReleaser interface {
	releaseBuffer(pkt *Packet)
}
