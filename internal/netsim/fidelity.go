package netsim

// Fidelity is the simulation mode a port's traffic is advanced under when a
// hybrid-fidelity engine (internal/hybrid) drives the run. The packet engine
// itself never reads it — every packet that reaches a port is simulated at
// full fidelity regardless — it is bookkeeping the hybrid engine maintains so
// observers (traces, manifests, tests) can see which links are currently
// fast-forwarded in closed form and which are demoted to packet level.
type Fidelity uint8

const (
	// FidelityPacket is full packet-level simulation: every frame is an
	// event. This is the default for every port and the only mode that
	// exists when no hybrid engine is attached.
	FidelityPacket Fidelity = iota
	// FidelityAnalytic marks a port whose uncongested traffic is being
	// advanced in closed form by a hybrid engine; bytes it would have
	// serialized are credited to AnalyticTxBytes instead of TxBytesTotal.
	FidelityAnalytic
)

func (f Fidelity) String() string {
	if f == FidelityAnalytic {
		return "analytic"
	}
	return "packet"
}

// SetFidelity records the simulation mode the hybrid engine currently
// advances this port's traffic under. Pure bookkeeping: packet forwarding
// through the port behaves identically in either mode.
func (p *Port) SetFidelity(f Fidelity) { p.fidelity = f }

// Fidelity returns the port's current simulation mode (FidelityPacket
// unless a hybrid engine marked it analytic).
func (p *Port) Fidelity() Fidelity { return p.fidelity }

// CreditAnalyticTx accounts wire bytes that a hybrid engine advanced across
// this port in closed form, attributed to the egress queue serving prio (if
// any). Together with the packet-level counters this keeps per-port byte
// conservation exact across fidelity transitions:
//
//	DeliveredBytes() == TxBytesTotal + AnalyticTxBytes
//
// is the total traffic the port carried regardless of how much of it was
// ever materialized as packets.
func (p *Port) CreditAnalyticTx(prio int, wireBytes uint64) {
	p.AnalyticTxBytes += wireBytes
	if q := p.Queue(prio); q != nil {
		q.AnalyticTxBytes += wireBytes
	}
}

// DeliveredBytes returns every byte the port carried: packet-level
// serialization plus closed-form analytic credit. With no hybrid engine
// attached this is exactly TxBytesTotal.
func (p *Port) DeliveredBytes() uint64 { return p.TxBytesTotal + p.AnalyticTxBytes }
