package netsim

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// Snapshot support for the packet engine.
//
// A Network snapshot is restored into a *freshly rebuilt* world: the same
// construction code (topology, plan application) runs again, so every
// closure, pre-bound method value, and routing table exists and is bound
// to live objects; RestoreState then clears the rebuilt event queue,
// restores counters and per-object dynamic state, re-materializes the
// in-flight packet population at its recorded (time, seq) slots, and
// fast-forwards every RNG stream to its recorded draw count. Because the
// streams are replayed — not replaced — the numeric sequences are exactly
// those of the uninterrupted run, which is what makes restore-then-run
// bit-identical to never having snapshotted.

// CountedSource wraps a rand.Source64 and counts draws. Int63 and Uint64
// advance the underlying generator by exactly one step each, so a stream
// is fully described by (derivation, draw count): restore rebuilds the
// source from the same derivation and fast-forwards the difference.
type CountedSource struct {
	src rand.Source64
	n   uint64
}

func NewCountedSource(s rand.Source) *CountedSource {
	return &CountedSource{src: s.(rand.Source64)}
}

func (c *CountedSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *CountedSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *CountedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// Draws returns how many values have been drawn from the stream.
func (c *CountedSource) Draws() uint64 { return c.n }

// skipTo fast-forwards the stream to the target draw count. The rebuilt
// world must be behind the snapshot (construction draws are a prefix of
// the saved run's draws); anything else means the snapshot belongs to a
// different world.
func (c *CountedSource) SkipTo(target uint64) error {
	if target < c.n {
		return fmt.Errorf("rng stream at draw %d is ahead of snapshot draw %d (snapshot from a different world?)", c.n, target)
	}
	for c.n < target {
		c.src.Uint64()
		c.n++
	}
	return nil
}

// WaiterRef identifies a parked NIC waiter in a snapshot.
type WaiterRef struct {
	Kind uint8
	Flow FlowID
}

// savePacket writes every wire-visible field of p.
func savePacket(w *codec.Writer, p *Packet) {
	w.Int(int(p.Kind))
	w.U64(uint64(p.Flow))
	w.Int(p.Src)
	w.Int(p.Dst)
	w.Int(p.Prio)
	w.Int(p.Size)
	w.I64(p.Seq)
	w.I64(p.FlowBytes)
	w.Bool(p.Last)
	w.Bool(p.Retx)
	w.Bool(p.ECT)
	w.Bool(p.CE)
	w.Bool(p.ECE)
	w.Int(p.PausePrio)
	w.Int(p.inPort)
}

// loadPacket reads a packet saved by savePacket into a pooled object.
func (n *Network) loadPacket(r *codec.Reader) *Packet {
	p := n.AllocPacket()
	p.Kind = Kind(r.Int())
	p.Flow = FlowID(r.U64())
	p.Src = r.Int()
	p.Dst = r.Int()
	p.Prio = r.Int()
	p.Size = r.Int()
	p.Seq = r.I64()
	p.FlowBytes = r.I64()
	p.Last = r.Bool()
	p.Retx = r.Bool()
	p.ECT = r.Bool()
	p.CE = r.Bool()
	p.ECE = r.Bool()
	p.PausePrio = r.Int()
	p.inPort = r.Int()
	return p
}

// SaveState writes the network's full dynamic state: event-queue counters,
// RNG draw counts, per-node buffers and counters, and every live packet
// (queued, serializing, or propagating).
func (n *Network) SaveState(w *codec.Writer) {
	w.Tag("netsim")
	n.Q.SaveState(w)
	if n.rootSrc == nil {
		panic("netsim: SaveState on a Network not built with New")
	}
	w.U64(n.rootSrc.n)
	w.U64(uint64(n.nextFlow))
	for id, node := range n.nodes {
		switch v := node.(type) {
		case *Host:
			w.Tag("host")
			w.Int(id)
			v.saveState(w)
		case *Switch:
			w.Tag("switch")
			w.Int(id)
			v.saveState(w)
		}
	}
	w.Tag("endnodes")
	w.Int(len(n.pktFree))
	w.U64(n.pktAlloced)
}

// RestoreState restores state saved by SaveState into this freshly rebuilt
// network. The rebuilt topology must match the saved one exactly; nodes are
// visited in the same id order. Transport endpoints and parked NIC waiters
// are restored separately (by their owners, then ResolveWaiters).
func (n *Network) RestoreState(r *codec.Reader) error {
	r.Expect("netsim")
	n.Q.RestoreState(r)
	if err := r.Err(); err != nil {
		return err
	}
	if err := n.rootSrc.SkipTo(r.U64()); err != nil {
		return fmt.Errorf("netsim: root rng: %w", err)
	}
	n.nextFlow = FlowID(r.U64())
	for id, node := range n.nodes {
		switch v := node.(type) {
		case *Host:
			r.Expect("host")
			if got := r.Int(); got != id && r.Err() == nil {
				return fmt.Errorf("netsim: snapshot host id %d, world has %d (layout mismatch)", got, id)
			}
			v.restoreState(r)
		case *Switch:
			r.Expect("switch")
			if got := r.Int(); got != id && r.Err() == nil {
				return fmt.Errorf("netsim: snapshot switch id %d, world has %d (layout mismatch)", got, id)
			}
			v.restoreState(r)
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
	r.Expect("endnodes")
	poolWarm := r.Int()
	alloced := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	for len(n.pktFree) < poolWarm {
		n.pktFree = append(n.pktFree, &Packet{pooled: true})
	}
	n.pktAlloced = alloced
	return nil
}

func (n *Network) saveNodeRng(w *codec.Writer, id int) {
	src := n.nodeSrc[id]
	if src == nil {
		panic("netsim: node has no counted rng stream")
	}
	w.U64(src.n)
}

func (n *Network) restoreNodeRng(r *codec.Reader, id int) {
	src := n.nodeSrc[id]
	if src == nil {
		r.Fail("node %d has no counted rng stream", id)
		return
	}
	if err := src.SkipTo(r.U64()); err != nil {
		r.Fail("node %d rng: %v", id, err)
	}
}

func (h *Host) saveState(w *codec.Writer) {
	h.net.saveNodeRng(w, h.id)
	h.Port.saveState(w)
}

func (h *Host) restoreState(r *codec.Reader) {
	h.net.restoreNodeRng(r, h.id)
	h.Port.restoreState(r)
}

func (s *Switch) saveState(w *codec.Writer) {
	s.net.saveNodeRng(w, s.id)
	w.Int(s.totalUsed)
	for pi := range s.Ports {
		for prio := 0; prio < NumPrio; prio++ {
			w.Int(s.ingUsed[pi][prio])
			w.Bool(s.pauseSent[pi][prio])
		}
	}
	w.U64(s.DropsTotal)
	w.U64(s.MarksTotal)
	w.U64(s.WREDDrops)
	w.U64(s.OverflowDrops)
	w.U64(s.RouteBlackholes)
	for _, p := range s.Ports {
		p.saveState(w)
	}
}

func (s *Switch) restoreState(r *codec.Reader) {
	s.net.restoreNodeRng(r, s.id)
	s.totalUsed = r.Int()
	for pi := range s.Ports {
		for prio := 0; prio < NumPrio; prio++ {
			s.ingUsed[pi][prio] = r.Int()
			s.pauseSent[pi][prio] = r.Bool()
		}
	}
	s.DropsTotal = r.U64()
	s.MarksTotal = r.U64()
	s.WREDDrops = r.U64()
	s.OverflowDrops = r.U64()
	s.RouteBlackholes = r.U64()
	for _, p := range s.Ports {
		p.restoreState(r)
	}
}

func (p *Port) saveState(w *codec.Writer) {
	w.Tag("port")
	w.I64(int64(p.Bandwidth))
	w.Bool(p.busy)
	w.Bool(p.down)
	for i := 0; i < NumPrio; i++ {
		w.Bool(p.paused[i])
		w.I64(int64(p.pausedSince[i]))
	}
	w.Int(p.rr)
	w.U64(uint64(p.txSeq))
	w.Int(int(p.fidelity))
	w.U64(p.TxBytesTotal)
	w.U64(p.AnalyticTxBytes)
	w.U64(p.RxBytesTotal)
	w.U64(p.PauseRxEvents)
	w.U64(p.PauseTxEvents)
	w.I64(int64(p.PausedDuration))
	w.U64(p.BlackholedPackets)
	w.U64(p.BlackholedBytes)
	w.Bool(p.txPkt != nil)
	if p.txPkt != nil {
		savePacket(w, p.txPkt)
		w.I64(int64(p.txAt))
		w.U64(p.txEvSeq)
	}
	w.Int(len(p.flight) - p.fhead)
	for _, rec := range p.flight[p.fhead:] {
		savePacket(w, rec.pkt)
		w.I64(int64(rec.at))
		w.U64(rec.key)
	}
	for _, q := range p.Queues {
		q.saveState(w)
	}
}

func (p *Port) restoreState(r *codec.Reader) {
	r.Expect("port")
	p.Bandwidth = simtime.Rate(r.I64())
	p.busy = r.Bool()
	p.down = r.Bool()
	for i := 0; i < NumPrio; i++ {
		p.paused[i] = r.Bool()
		p.pausedSince[i] = simtime.Time(r.I64())
	}
	p.rr = r.Int()
	p.txSeq = uint32(r.U64())
	p.fidelity = Fidelity(r.Int())
	p.TxBytesTotal = r.U64()
	p.AnalyticTxBytes = r.U64()
	p.RxBytesTotal = r.U64()
	p.PauseRxEvents = r.U64()
	p.PauseTxEvents = r.U64()
	p.PausedDuration = simtime.Duration(r.I64())
	p.BlackholedPackets = r.U64()
	p.BlackholedBytes = r.U64()
	if r.Bool() && r.Err() == nil {
		pkt := p.net.loadPacket(r)
		at := simtime.Time(r.I64())
		seq := r.U64()
		if r.Err() == nil {
			p.txPkt = pkt
			p.txAt = at
			p.txEvSeq = seq
			p.net.Q.RestoreCallAt(at, seq, p.txDoneFn, pkt)
		}
	}
	nFlight := r.Int()
	for i := 0; i < nFlight && r.Err() == nil; i++ {
		pkt := p.net.loadPacket(r)
		at := simtime.Time(r.I64())
		key := r.U64()
		if r.Err() != nil {
			break
		}
		p.flightPush(flightRec{pkt: pkt, at: at, key: key})
		if p.remote != nil {
			p.net.Q.RestoreCallAt(at, key, p.remoteArriveFn, pkt)
		} else {
			p.net.Q.RestoreCallAt(at, key, p.arriveFn, pkt)
		}
	}
	for _, q := range p.Queues {
		q.restoreState(r, p.net)
	}
}

func (q *EgressQueue) saveState(w *codec.Writer) {
	w.Tag("eq")
	w.Int(q.RED.Kmin)
	w.Int(q.RED.Kmax)
	w.F64(q.RED.Pmax)
	w.Bool(q.ECNEnabled)
	w.Int(q.Len())
	for _, pkt := range q.pkts[q.head:] {
		savePacket(w, pkt)
	}
	w.F64(q.byteTime)
	w.I64(int64(q.lastChange))
	w.Int(q.deficit)
	w.Bool(q.inTurn)
	w.U64(q.TxBytes)
	w.U64(q.AnalyticTxBytes)
	w.U64(q.TxPackets)
	w.U64(q.TxMarkedBytes)
	w.U64(q.TxMarkedPkts)
	w.U64(q.EnqBytes)
	w.U64(q.DropPackets)
	w.U64(q.DropBytes)
	w.Int(len(q.waiters) - q.whead)
	for _, wt := range q.waiters[q.whead:] {
		kind, flow := wt.WaiterID()
		w.U64(uint64(kind))
		w.U64(uint64(flow))
	}
}

func (q *EgressQueue) restoreState(r *codec.Reader, net *Network) {
	r.Expect("eq")
	q.RED.Kmin = r.Int()
	q.RED.Kmax = r.Int()
	q.RED.Pmax = r.F64()
	q.ECNEnabled = r.Bool()
	nPkts := r.Int()
	q.pkts = q.pkts[:0]
	q.head = 0
	q.bytes = 0
	for i := 0; i < nPkts && r.Err() == nil; i++ {
		pkt := net.loadPacket(r)
		q.pkts = append(q.pkts, pkt)
		q.bytes += pkt.Size
	}
	q.byteTime = r.F64()
	q.lastChange = simtime.Time(r.I64())
	q.deficit = r.Int()
	q.inTurn = r.Bool()
	q.TxBytes = r.U64()
	q.AnalyticTxBytes = r.U64()
	q.TxPackets = r.U64()
	q.TxMarkedBytes = r.U64()
	q.TxMarkedPkts = r.U64()
	q.EnqBytes = r.U64()
	q.DropPackets = r.U64()
	q.DropBytes = r.U64()
	nWait := r.Int()
	// Drop waiters parked by construction-time transports (hybrid rebuilds
	// start due flows at apply time); the snapshot's refs replace them.
	for i := range q.waiters {
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
	q.whead = 0
	q.restoreWaiters = q.restoreWaiters[:0]
	for i := 0; i < nWait && r.Err() == nil; i++ {
		q.restoreWaiters = append(q.restoreWaiters, WaiterRef{Kind: uint8(r.U64()), Flow: FlowID(r.U64())})
	}
}

// ResolveWaiters re-parks NIC waiters recorded in a restored snapshot,
// once the transport objects they refer to have been rebuilt. resolve maps
// a (kind, flow) identity to the live Waiter; it must succeed for every
// recorded reference.
func (n *Network) ResolveWaiters(resolve func(kind uint8, flow FlowID) Waiter) error {
	for _, node := range n.nodes {
		var ports []*Port
		switch v := node.(type) {
		case *Host:
			ports = []*Port{v.Port}
		case *Switch:
			ports = v.Ports
		default:
			continue
		}
		for _, p := range ports {
			for _, q := range p.Queues {
				for _, ref := range q.restoreWaiters {
					wt := resolve(ref.Kind, ref.Flow)
					if wt == nil {
						return fmt.Errorf("netsim: no waiter for kind %d flow %d", ref.Kind, ref.Flow)
					}
					q.waiters = append(q.waiters, wt)
				}
				q.restoreWaiters = q.restoreWaiters[:0]
			}
		}
	}
	return nil
}

// EndpointFlows returns the flow ids with endpoints registered at h, in
// ascending order — the deterministic enumeration snapshots use to save
// live transport objects.
func (h *Host) EndpointFlows() []FlowID {
	out := make([]FlowID, 0, len(h.endpoints))
	//acclint:ignore determinism@1 key collection followed by sort is iteration-order-independent
	for f := range h.endpoints {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Endpoint returns the endpoint registered for flow f, or nil.
func (h *Host) Endpoint(f FlowID) Endpoint { return h.endpoints[f] }

// SetNextFlowID forces the flow-id allocator (restore support for worlds
// that allocate flow ids outside plan order).
func (n *Network) SetNextFlowID(f FlowID) { n.nextFlow = f }
