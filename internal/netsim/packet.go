// Package netsim is a packet-level discrete-event simulator of a datacenter
// network: full-duplex links with serialization and propagation delay,
// shared-buffer switches with per-priority egress queues, WRED/ECN marking,
// priority flow control (PFC), ECMP forwarding, and hosts that carry
// transport protocols (DCQCN, DCTCP) implemented in sibling packages.
//
// The simulator is single-threaded and deterministic: all randomness flows
// from the Network's seeded RNG and events are FIFO tie-broken, so a given
// seed always replays the same run.
package netsim

import "fmt"

// FlowID identifies a transport flow end to end.
type FlowID uint64

// Kind discriminates packet roles.
type Kind uint8

// Packet kinds.
const (
	KindData   Kind = iota // transport payload
	KindAck                // TCP cumulative ACK (echoes ECN)
	KindCNP                // DCQCN congestion notification packet
	KindPause              // PFC pause frame (per priority)
	KindResume             // PFC resume frame (per priority)
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindCNP:
		return "cnp"
	case KindPause:
		return "pause"
	case KindResume:
		return "resume"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NumPrio is the number of traffic classes per port, matching the 8
// priorities of 802.1Qbb PFC.
const NumPrio = 8

// Packet is one unit on the wire. Packets come from the owning Network's
// free list (AllocPacket) and travel by pointer; switches annotate the
// in-flight packet with transient per-hop state (ingress port index) that is
// only valid within one switch. Once a packet reaches its terminal point the
// network returns it to the pool, so nodes and endpoints must copy any field
// they need past the callback that handed them the packet.
type Packet struct {
	Kind Kind
	Flow FlowID
	Src  int // source host node id
	Dst  int // destination host node id
	Prio int // traffic class, 0..NumPrio-1
	Size int // bytes on the wire, including headers

	// Transport fields.
	Seq       int64 // first payload byte offset (data) or cumulative ack
	FlowBytes int64 // total flow size in bytes, carried for FCT accounting
	Last      bool  // set on the final data packet of a flow
	Retx      bool  // retransmission (TCP)

	// ECN.
	ECT bool // ECN-capable transport
	CE  bool // congestion experienced (set by WRED marking)
	ECE bool // ECN echo on ACKs (DCTCP feedback)

	// PFC fields (Kind Pause/Resume).
	PausePrio int

	// inPort is per-switch transient state: the ingress port index at the
	// switch currently holding the packet, used for PFC buffer accounting.
	inPort int

	// pooled marks a packet currently resting in its Network's free list,
	// guarding against double release (which would otherwise silently alias
	// two in-flight packets).
	//acclint:ignore snapcover free-list bookkeeping; loadPacket allocates via AllocPacket, which manages the mark
	pooled bool
}

// AllocPacket returns a zeroed packet from the network's free list (or the
// heap when the list is empty). Transports fill in the fields and hand the
// packet to Host.Send / Port.Enqueue; ownership then rests with the network,
// which releases the packet back to the pool at its terminal point —
// delivery, WRED drop, buffer-overflow drop, route blackhole, or link
// blackhole. See DESIGN.md "Performance & memory model" for the ownership
// rules.
func (n *Network) AllocPacket() *Packet {
	n.pktAlloced++
	if last := len(n.pktFree) - 1; last >= 0 {
		p := n.pktFree[last]
		n.pktFree[last] = nil
		n.pktFree = n.pktFree[:last]
		*p = Packet{}
		return p
	}
	return &Packet{}
}

// ReleasePacket returns a packet to the free list. Releasing the same packet
// twice panics: it means two owners believed they held the packet, which
// corrupts the simulation once the struct is reused. Packets allocated
// outside the pool (tests build literals) are absorbed into it.
func (n *Network) ReleasePacket(p *Packet) {
	if p.pooled {
		panic("netsim: packet released twice")
	}
	p.pooled = true
	n.pktFree = append(n.pktFree, p)
}

// DataHeaderBytes is the protocol overhead added to each data packet's
// payload (Ethernet+IP+UDP+BTH for RoCE, or Ethernet+IP+TCP).
const DataHeaderBytes = 48

// CtrlPacketBytes is the wire size of ACK/CNP/PFC control frames.
const CtrlPacketBytes = 64

// DefaultMTU is the default maximum payload bytes per data packet.
const DefaultMTU = 1000
