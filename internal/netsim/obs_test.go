package netsim

import (
	"testing"

	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// reasonCounts runs one drop scenario and returns the tracer's per-reason
// totals plus the switch under test.
func tracerReasons(tr *obs.Tracer) map[string]uint64 { return tr.Snapshot().Drops }

// TestDropReasonSplitWRED pins that a WRED drop of non-ECT traffic is
// traced with reason "wred" and counted in Switch.WREDDrops, partitioning
// DropsTotal.
func TestDropReasonSplitWRED(t *testing.T) {
	net, h1, h2, sw := rig(t, nil)
	net.Tracer = obs.NewTracer(64)
	sw.SetRED(red.Config{Kmin: 0, Kmax: 0, Pmax: 1}) // drop/mark everything
	p := dataPkt(h1, h2, 1, 1048)
	p.ECT = false // non-ECT: WRED drops instead of marking
	h1.Send(p)
	net.Run()

	if sw.WREDDrops != 1 || sw.OverflowDrops != 0 || sw.RouteBlackholes != 0 {
		t.Fatalf("per-reason counters = wred:%d overflow:%d route:%d, want 1/0/0",
			sw.WREDDrops, sw.OverflowDrops, sw.RouteBlackholes)
	}
	if sw.DropsTotal != sw.WREDDrops+sw.OverflowDrops+sw.RouteBlackholes {
		t.Fatalf("DropsTotal %d not partitioned by per-reason counters", sw.DropsTotal)
	}
	if got := tracerReasons(net.Tracer); got["wred"] != 1 || len(got) != 1 {
		t.Fatalf("trace drop reasons = %v, want {wred:1}", got)
	}
	// SetRED on an instrumented network also leaves a template-update trail.
	if n := net.Tracer.Snapshot().ByKind["wred_update"]; n == 0 {
		t.Fatal("SetRED emitted no wred_update records")
	}
}

// TestDropReasonSplitOverflow congests a slow egress behind a tiny shared
// buffer (PFC off) and pins the "overflow" reason.
func TestDropReasonSplitOverflow(t *testing.T) {
	net := New(1)
	net.Tracer = obs.NewTracer(64)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	cfg := DefaultSwitchConfig("sw")
	cfg.BufferBytes = 3000
	cfg.PFC.Enabled = false // let the buffer overflow instead of pausing
	sw := NewSwitch(net, cfg)
	p1 := h1.AttachPort(25*simtime.Gbps, 600, nil)
	p2 := h2.AttachPort(simtime.Gbps, 600, nil)
	s1 := sw.AddPort(25*simtime.Gbps, 600, nil)
	s2 := sw.AddPort(simtime.Gbps, 600, nil) // 25:1 slowdown piles packets up
	Connect(p1, s1)
	Connect(p2, s2)
	sw.SetRoute(h1.ID(), s1)
	sw.SetRoute(h2.ID(), s2)
	h2.Register(1, EndpointFunc(func(*Packet) {}))
	for i := 0; i < 5; i++ {
		h1.Send(dataPkt(h1, h2, 1, 1048))
	}
	net.Run()

	if sw.OverflowDrops == 0 {
		t.Fatal("no overflow drops despite 5x1048B into a 3000B buffer")
	}
	if sw.WREDDrops != 0 || sw.RouteBlackholes != 0 {
		t.Fatalf("unexpected non-overflow drops: wred:%d route:%d", sw.WREDDrops, sw.RouteBlackholes)
	}
	if sw.DropsTotal != sw.OverflowDrops {
		t.Fatalf("DropsTotal %d != OverflowDrops %d", sw.DropsTotal, sw.OverflowDrops)
	}
	if got := tracerReasons(net.Tracer); got["overflow"] != sw.OverflowDrops || len(got) != 1 {
		t.Fatalf("trace drop reasons = %v, want {overflow:%d}", got, sw.OverflowDrops)
	}
}

// TestDropReasonSplitRouteBlackhole downs the only route and pins the
// "route_blackhole" reason plus the link_state trace record from SetDown.
func TestDropReasonSplitRouteBlackhole(t *testing.T) {
	net, h1, h2, sw := rig(t, nil)
	net.Tracer = obs.NewTracer(64)
	sw.Ports[1].SetDown(true) // only route to h2
	h1.Send(dataPkt(h1, h2, 1, 700))
	net.Run()

	if sw.RouteBlackholes != 1 || sw.DropsTotal != 1 {
		t.Fatalf("route blackholes %d / drops %d, want 1/1", sw.RouteBlackholes, sw.DropsTotal)
	}
	if got := tracerReasons(net.Tracer); got["route_blackhole"] != 1 || len(got) != 1 {
		t.Fatalf("trace drop reasons = %v, want {route_blackhole:1}", got)
	}
	snap := net.Tracer.Snapshot()
	if snap.ByKind["link_state"] != 1 {
		t.Fatalf("link_state records = %d, want 1 from SetDown", snap.ByKind["link_state"])
	}
}

// TestDropReasonSplitLinkBlackhole kills a link mid-propagation and pins
// the "link_blackhole" reason — distinct from every switch-side reason, and
// counted at the transmitting Port rather than in Switch.DropsTotal.
func TestDropReasonSplitLinkBlackhole(t *testing.T) {
	net, h1, h2, sw := rig(t, nil)
	net.Tracer = obs.NewTracer(64)
	h2.Register(1, EndpointFunc(func(*Packet) {}))
	h1.Send(dataPkt(h1, h2, 1, 1048))
	ser := simtime.TxTime(1048, 25*simtime.Gbps)
	net.RunUntil(simtime.Time(ser + 100)) // mid-propagation on the first hop
	h1.Port.SetDown(true)
	net.Run()

	if h1.Port.BlackholedPackets != 1 {
		t.Fatalf("BlackholedPackets = %d, want 1", h1.Port.BlackholedPackets)
	}
	if sw.DropsTotal != 0 {
		t.Fatalf("link blackhole leaked into Switch.DropsTotal (%d)", sw.DropsTotal)
	}
	if got := tracerReasons(net.Tracer); got["link_blackhole"] != 1 || len(got) != 1 {
		t.Fatalf("trace drop reasons = %v, want {link_blackhole:1}", got)
	}
}
