package netsim

import (
	"testing"

	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// rig builds two hosts joined by one switch with explicit wiring.
func rig(t *testing.T, weights []int) (*Network, *Host, *Host, *Switch) {
	t.Helper()
	net := New(1)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	sw := NewSwitch(net, DefaultSwitchConfig("sw"))
	bw := 25 * simtime.Gbps
	d := simtime.Duration(600)
	p1 := h1.AttachPort(bw, d, weights)
	p2 := h2.AttachPort(bw, d, weights)
	s1 := sw.AddPort(bw, d, weights)
	s2 := sw.AddPort(bw, d, weights)
	Connect(p1, s1)
	Connect(p2, s2)
	sw.SetRoute(h1.ID(), s1)
	sw.SetRoute(h2.ID(), s2)
	return net, h1, h2, sw
}

func dataPkt(src, dst *Host, flow FlowID, size int) *Packet {
	return &Packet{
		Kind: KindData, Flow: flow, Src: src.ID(), Dst: dst.ID(),
		Size: size, ECT: true,
	}
}

func TestPacketDelivery(t *testing.T) {
	net, h1, h2, _ := rig(t, nil)
	var got []*Packet
	h2.Register(7, EndpointFunc(func(p *Packet) { got = append(got, p) }))
	h1.Send(dataPkt(h1, h2, 7, 1048))
	net.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	// Arrival time = 2 serializations + 2 propagations.
	ser := simtime.TxTime(1048, 25*simtime.Gbps)
	want := simtime.Time(2*ser + 2*600)
	if net.Now() != want {
		t.Fatalf("arrival at %v, want %v", net.Now(), want)
	}
}

func TestUnknownFlowDropped(t *testing.T) {
	net, h1, h2, _ := rig(t, nil)
	h1.Send(dataPkt(h1, h2, 99, 500)) // no endpoint registered
	net.Run()                         // must not panic
}

func TestSwitchPanicsOnMissingRoute(t *testing.T) {
	net := New(2)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	sw := NewSwitch(net, DefaultSwitchConfig("sw"))
	p1 := h1.AttachPort(simtime.Gbps, 0, nil)
	s1 := sw.AddPort(simtime.Gbps, 0, nil)
	Connect(p1, s1)
	// Route to h2 never programmed.
	h1.Send(dataPkt(h1, h2, 1, 100))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on missing route")
		}
	}()
	net.Run()
}

func TestECNMarkingAboveKmax(t *testing.T) {
	net, h1, h2, sw := rig(t, nil)
	sw.SetRED(red.Config{Kmin: 0, Kmax: 0, Pmax: 1}) // mark everything
	n := 0
	h2.Register(1, EndpointFunc(func(p *Packet) {
		if p.CE {
			n++
		}
	}))
	for i := 0; i < 10; i++ {
		h1.Send(dataPkt(h1, h2, 1, 1000))
	}
	net.Run()
	if n != 10 {
		t.Fatalf("%d/10 packets marked with Kmax=0", n)
	}
	if sw.MarksTotal != 10 {
		t.Fatalf("switch counted %d marks", sw.MarksTotal)
	}
}

func TestNonECTDroppedAboveKmax(t *testing.T) {
	net, h1, h2, sw := rig(t, nil)
	sw.SetRED(red.Config{Kmin: 0, Kmax: 0, Pmax: 1})
	delivered := 0
	h2.Register(1, EndpointFunc(func(p *Packet) { delivered++ }))
	for i := 0; i < 5; i++ {
		p := dataPkt(h1, h2, 1, 1000)
		p.ECT = false
		h1.Send(p)
	}
	net.Run()
	if delivered != 0 {
		t.Fatalf("%d non-ECT packets delivered above Kmax", delivered)
	}
	if sw.DropsTotal != 5 {
		t.Fatalf("drop counter %d, want 5", sw.DropsTotal)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	net := New(3)
	cfg := DefaultSwitchConfig("tiny")
	cfg.BufferBytes = 10 * 1048 // room for ~10 packets
	cfg.PFC.Enabled = false
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	sw := NewSwitch(net, cfg)
	p1 := h1.AttachPort(100*simtime.Gbps, 0, nil)
	p2 := h2.AttachPort(1*simtime.Gbps, 0, nil) // slow egress
	s1 := sw.AddPort(100*simtime.Gbps, 0, nil)
	s2 := sw.AddPort(1*simtime.Gbps, 0, nil)
	Connect(p1, s1)
	Connect(p2, s2)
	sw.SetRoute(h1.ID(), s1)
	sw.SetRoute(h2.ID(), s2)
	sw.SetRED(red.Config{Kmin: 1 << 30, Kmax: 1 << 30, Pmax: 1}) // no marking
	delivered := 0
	h2.Register(1, EndpointFunc(func(p *Packet) { delivered++ }))
	for i := 0; i < 100; i++ {
		h1.Send(dataPkt(h1, h2, 1, 1048))
	}
	net.Run()
	if sw.DropsTotal == 0 {
		t.Fatal("no drops despite 10-packet buffer and 100-packet burst")
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if delivered+int(sw.DropsTotal) != 100 {
		t.Fatalf("delivered %d + dropped %d != 100", delivered, sw.DropsTotal)
	}
}

func TestPFCPausesSender(t *testing.T) {
	// Small buffer + PFC: instead of dropping, the switch pauses the host.
	net := New(4)
	cfg := DefaultSwitchConfig("sw")
	cfg.BufferBytes = 100 * 1048
	cfg.PFC = PFCConfig{Enabled: true, Alpha: 1.0 / 8, XonGap: 2 * 1048}
	cfg.DefaultRED = red.Config{Kmin: 1 << 30, Kmax: 1 << 30, Pmax: 1}
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	sw := NewSwitch(net, cfg)
	p1 := h1.AttachPort(100*simtime.Gbps, 600, nil)
	p2 := h2.AttachPort(5*simtime.Gbps, 600, nil)
	s1 := sw.AddPort(100*simtime.Gbps, 600, nil)
	s2 := sw.AddPort(5*simtime.Gbps, 600, nil)
	Connect(p1, s1)
	Connect(p2, s2)
	sw.SetRoute(h1.ID(), s1)
	sw.SetRoute(h2.ID(), s2)
	delivered := 0
	h2.Register(1, EndpointFunc(func(p *Packet) { delivered++ }))
	var pauses int
	h1.PauseHooks = append(h1.PauseHooks, func(prio int, paused bool) {
		if paused {
			pauses++
		}
	})
	for i := 0; i < 500; i++ {
		h1.Send(dataPkt(h1, h2, 1, 1048))
	}
	net.Run()
	if pauses == 0 {
		t.Fatal("PFC never paused the sender")
	}
	if sw.DropsTotal != 0 {
		t.Fatalf("%d drops despite PFC (losslessness violated)", sw.DropsTotal)
	}
	if delivered != 500 {
		t.Fatalf("delivered %d/500", delivered)
	}
	if h1.Port.PauseRxEvents == 0 {
		t.Fatal("pause events not counted at the host port")
	}
	if h1.Port.PausedDuration <= 0 {
		t.Fatal("paused duration not accounted")
	}
}

func TestDWRRWeightedSharing(t *testing.T) {
	// Two saturated queues with weights 7:3 must share ~70/30.
	net := New(5)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	sw := NewSwitch(net, DefaultSwitchConfig("sw"))
	weights := make([]int, NumPrio)
	weights[0], weights[3] = 3, 7
	bw := 10 * simtime.Gbps
	p1 := h1.AttachPort(100*simtime.Gbps, 0, weights)
	p2 := h2.AttachPort(bw, 0, weights)
	s1 := sw.AddPort(100*simtime.Gbps, 0, weights)
	s2 := sw.AddPort(bw, 0, weights)
	Connect(p1, s1)
	Connect(p2, s2)
	sw.SetRoute(h1.ID(), s1)
	sw.SetRoute(h2.ID(), s2)
	sw.SetRED(red.Config{Kmin: 1 << 30, Kmax: 1 << 30, Pmax: 1})
	h2.Register(1, EndpointFunc(func(p *Packet) {}))
	h2.Register(2, EndpointFunc(func(p *Packet) {}))
	for i := 0; i < 2000; i++ {
		pa := dataPkt(h1, h2, 1, 1048)
		pa.Prio = 0
		h1.Send(pa)
		pb := dataPkt(h1, h2, 2, 1048)
		pb.Prio = 3
		h1.Send(pb)
	}
	// Run long enough that the bottleneck stays saturated for a while, then
	// check the share mid-drain.
	net.RunUntil(simtime.Time(simtime.Millisecond))
	q0 := s2.Queue(0).TxBytes
	q3 := s2.Queue(3).TxBytes
	ratio := float64(q3) / float64(q0+q3)
	if ratio < 0.65 || ratio > 0.75 {
		t.Fatalf("DWRR share for weight-7 queue = %.2f, want ~0.70", ratio)
	}
}

func TestPriorityNormalizedToServingQueue(t *testing.T) {
	// A packet at prio 5 with no prio-5 queue must be re-classed to the
	// default queue's priority so PFC acts consistently.
	net, h1, h2, _ := rig(t, nil) // single queue at prio 0
	var gotPrio = -1
	h2.Register(1, EndpointFunc(func(p *Packet) { gotPrio = p.Prio }))
	p := dataPkt(h1, h2, 1, 500)
	p.Prio = 5
	h1.Send(p)
	net.Run()
	if gotPrio != 0 {
		t.Fatalf("packet priority %d at receiver, want normalized 0", gotPrio)
	}
}

func TestECMPStableAndBalanced(t *testing.T) {
	net := New(6)
	sw := NewSwitch(net, DefaultSwitchConfig("sw"))
	var ports []*Port
	for i := 0; i < 4; i++ {
		ports = append(ports, sw.AddPort(simtime.Gbps, 0, nil))
	}
	// Stability: same flow always hashes to the same port.
	for f := FlowID(1); f < 100; f++ {
		first := sw.ecmpPick(ports, f)
		for i := 0; i < 10; i++ {
			if sw.ecmpPick(ports, f) != first {
				t.Fatalf("ECMP unstable for flow %d", f)
			}
		}
	}
	// Balance: many flows spread across all ports.
	counts := map[*Port]int{}
	for f := FlowID(0); f < 4000; f++ {
		counts[sw.ecmpPick(ports, f)]++
	}
	for i, p := range ports {
		if counts[p] < 700 || counts[p] > 1300 {
			t.Fatalf("ECMP imbalance: port %d got %d of 4000", i, counts[p])
		}
	}
}

func TestByteTimeIntegral(t *testing.T) {
	net := New(7)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	bw := simtime.Rate(8000) // 1000 bytes/sec: 1 packet of 1000B takes 1s
	p1 := h1.AttachPort(bw, 0, nil)
	p2 := h2.AttachPort(bw, 0, nil)
	Connect(p1, p2)
	h2.Register(1, EndpointFunc(func(p *Packet) {}))
	// Two packets: the second waits one full serialization (1s) in queue.
	h1.Send(&Packet{Kind: KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(), Size: 1000})
	h1.Send(&Packet{Kind: KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(), Size: 1000})
	net.Run()
	integ := p1.Queues[0].ByteTimeIntegral()
	// Packet 2 sat in queue for 1s at 1000 bytes -> ~1000 byte-seconds.
	if integ < 900 || integ > 1100 {
		t.Fatalf("byte-time integral %v, want ~1000", integ)
	}
}

func TestUtilizationHelper(t *testing.T) {
	net := New(8)
	h := NewHost(net, "h")
	p := h.AttachPort(10*simtime.Gbps, 0, nil)
	// 1.25 GB in 1s at 10Gbps = 100%.
	if u := p.Utilization(1250000000, simtime.Second); u < 0.999 || u > 1.001 {
		t.Fatalf("utilization %v, want 1.0", u)
	}
	if u := p.Utilization(0, simtime.Second); u != 0 {
		t.Fatalf("zero bytes utilization %v", u)
	}
	if u := p.Utilization(100, 0); u != 0 {
		t.Fatalf("zero window utilization %v", u)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData: "data", KindAck: "ack", KindCNP: "cnp",
		KindPause: "pause", KindResume: "resume",
	} {
		if k.String() != want {
			t.Errorf("Kind %d string %q, want %q", k, k.String(), want)
		}
	}
}
