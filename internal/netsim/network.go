package netsim

import (
	"math/rand"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
)

// Node is anything attached to the fabric: hosts and switches.
type Node interface {
	ID() int
	Name() string
	Receive(pkt *Packet, in *Port)
}

// Network owns the event queue, the node registry, the RNG, and the wiring
// between ports. One Network is one independent, deterministic simulation.
type Network struct {
	Q   *eventq.Queue
	Rng *rand.Rand

	// Tracer receives structured observability events (drops, marks, PFC,
	// transport and agent transitions). Nil — the default — disables
	// tracing: every hook is a nil-receiver no-op, preserving the
	// zero-allocation hot-path guarantees. A non-nil Tracer may be shared
	// between Networks running on different goroutines (it locks
	// internally).
	Tracer *obs.Tracer

	nodes    []Node
	nextFlow FlowID

	// pktFree is the Packet free list backing AllocPacket/ReleasePacket. It
	// is per-Network, like the RNG: experiment runners execute independent
	// Networks in parallel (exp.forEachParallel) and must never share pools.
	pktFree []*Packet

	// pktAlloced counts AllocPacket calls, for run manifests.
	pktAlloced uint64
}

// New creates an empty network seeded deterministically.
func New(seed int64) *Network {
	return &Network{
		Q:   eventq.New(),
		Rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (n *Network) Now() simtime.Time { return n.Q.Now() }

// register adds a node and returns its id.
func (n *Network) register(node Node) int {
	id := len(n.nodes)
	n.nodes = append(n.nodes, node)
	return id
}

// Node returns the node with the given id.
func (n *Network) Node(id int) Node { return n.nodes[id] }

// Nodes returns all registered nodes.
func (n *Network) Nodes() []Node { return n.nodes }

// PacketsAlloced returns the cumulative number of packets drawn from the
// pool (manifest "packet totals"; monotonic, counts reuse).
func (n *Network) PacketsAlloced() uint64 { return n.pktAlloced }

// NextFlowID allocates a fresh globally unique flow id.
func (n *Network) NextFlowID() FlowID {
	n.nextFlow++
	return n.nextFlow
}

// Connect wires two ports as the ends of one full-duplex link. Both ports
// must have been created with matching bandwidth/delay by the caller
// (asymmetric links are permitted but unusual).
func Connect(a, b *Port) {
	a.Peer = b
	b.Peer = a
}

// Run executes events until the queue drains.
func (n *Network) Run() { n.Q.Run() }

// RunUntil executes events up to the deadline.
func (n *Network) RunUntil(t simtime.Time) { n.Q.RunUntil(t) }

// RunFor executes events for a span of virtual time from now.
func (n *Network) RunFor(d simtime.Duration) { n.Q.RunUntil(n.Now().Add(d)) }
