package netsim

import (
	"math/rand"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
)

// Node is anything attached to the fabric: hosts and switches.
type Node interface {
	ID() int
	Name() string
	Receive(pkt *Packet, in *Port)
}

// Network owns the event queue, the node registry, the RNG, and the wiring
// between ports. One Network is one independent, deterministic simulation.
type Network struct {
	Q *eventq.Queue
	//acclint:ignore snapcover wrapper over rootSrc; the saved draw count fast-forwards the source, reproducing the stream
	Rng *rand.Rand

	// Tracer receives structured observability events (drops, marks, PFC,
	// transport and agent transitions). Nil — the default — disables
	// tracing: every hook is a nil-receiver no-op, preserving the
	// zero-allocation hot-path guarantees. A non-nil Tracer may be shared
	// between Networks running on different goroutines (it locks
	// internally).
	//acclint:ignore snapcover observability wiring, shareable across Networks; re-attached at construction
	Tracer *obs.Tracer

	// SyncWindow, when nonzero, makes RunUntil/RunFor drive the queue in
	// conservative barrier windows of this width (Queue.RunBefore) — the
	// exact cadence a shard executes under in the parallel engine
	// (internal/psim). The queue fires events in (time, seq) order either
	// way, so results are bit-identical; the field lets a sequential run
	// mirror a sharded run's clock trajectory (`accsim -shards N`), which
	// the golden tests use to prove the windowed driver perturbs nothing.
	//acclint:ignore snapcover driver cadence config, not simulation state; set at construction
	SyncWindow simtime.Duration

	//acclint:ignore snapcover construction config; restore requires a Network built from the same seed (RNG derivation depends on it)
	seed     int64
	nodes    []Node
	nextFlow FlowID

	// rootSrc and nodeSrc are the counting wrappers under Rng and the
	// per-node streams. Snapshots save each stream's draw count; restore
	// rebuilds the source from the same derivation and fast-forwards it
	// (see snapshot.go), so the numeric streams — and every golden table —
	// are unchanged by snapshot support.
	rootSrc *CountedSource
	nodeSrc map[int]*CountedSource

	// pktFree is the Packet free list backing AllocPacket/ReleasePacket. It
	// is per-Network, like the RNG: experiment runners execute independent
	// Networks in parallel (exp.forEachParallel) and must never share pools.
	pktFree []*Packet

	// pktAlloced counts AllocPacket calls, for run manifests.
	pktAlloced uint64
}

// New creates an empty network seeded deterministically.
func New(seed int64) *Network {
	src := NewCountedSource(rand.NewSource(seed))
	return &Network{
		Q:       eventq.New(),
		Rng:     rand.New(src),
		seed:    seed,
		rootSrc: src,
		nodeSrc: make(map[int]*CountedSource),
	}
}

// Now returns the current virtual time.
func (n *Network) Now() simtime.Time { return n.Q.Now() }

// Seed returns the seed the network was created with.
func (n *Network) Seed() int64 { return n.seed }

// register adds a node at the next free id and returns it.
func (n *Network) register(node Node) int {
	return n.registerAt(node, len(n.nodes))
}

// registerAt adds a node at an explicit id, growing the registry as needed.
// Sharded builds (internal/psim) use explicit ids so a node carries the same
// id — and therefore the same routing address and per-node RNG stream — in
// every shard layout as in the sequential build. Registering over an
// occupied id panics.
func (n *Network) registerAt(node Node, id int) int {
	for len(n.nodes) <= id {
		n.nodes = append(n.nodes, nil)
	}
	if n.nodes[id] != nil {
		panic("netsim: node id registered twice")
	}
	n.nodes[id] = node
	return id
}

// nodeRng derives the per-node RNG stream for node id. Keying the stream on
// (network seed, node id) — never on a shared generator — makes each node's
// random decisions (WRED admission) a function of that node's own packet
// sequence alone, so they are identical whether the fabric runs in one event
// loop or sharded across several.
func (n *Network) nodeRng(id int) *rand.Rand {
	z := uint64(n.seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	src := NewCountedSource(rand.NewSource(int64(z ^ (z >> 31))))
	if n.nodeSrc != nil {
		n.nodeSrc[id] = src
	}
	return rand.New(src)
}

// Node returns the node with the given id (nil for an unoccupied id in a
// sparse shard-local registry).
func (n *Network) Node(id int) Node { return n.nodes[id] }

// Nodes returns all registered nodes. Shard-local networks are sparse: ids
// owned by other shards hold nil.
func (n *Network) Nodes() []Node { return n.nodes }

// PacketsAlloced returns the cumulative number of packets drawn from the
// pool (manifest "packet totals"; monotonic, counts reuse).
func (n *Network) PacketsAlloced() uint64 { return n.pktAlloced }

// NextFlowID allocates a fresh globally unique flow id.
func (n *Network) NextFlowID() FlowID {
	n.nextFlow++
	return n.nextFlow
}

// Connect wires two ports as the ends of one full-duplex link. Both ports
// must have been created with matching bandwidth/delay by the caller
// (asymmetric links are permitted but unusual).
func Connect(a, b *Port) {
	a.Peer = b
	b.Peer = a
	a.rxStream = arrivalStream(b.Owner.ID(), b.Index)
	b.rxStream = arrivalStream(a.Owner.ID(), a.Index)
}

// RemoteEnd is the far end of a link whose peer port lives in another
// shard's Network. The transmitting shard calls Deliver when a packet
// finishes serializing, handing over ownership of the Packet object itself;
// the implementation (internal/psim) buffers it until the next barrier and
// injects it into the receiving shard's queue with
// Port.ScheduleRemoteArrival, preserving at and key. The object is adopted
// by the receiving Network — consumed and released into its pool — so the
// steady-state cross-shard path allocates nothing and packet objects
// migrate between shard pools at exactly the rate traffic does. The
// hand-off is race-free because the sync layer orders it: the transmitting
// worker's window happens-before the coordinator's exchange, which
// happens-before the receiving worker's next window.
type RemoteEnd interface {
	Deliver(pkt *Packet, at simtime.Time, key uint64)
}

// ConnectRemote wires p as the local end of a cross-shard link. rxNode and
// rxPort identify the receiving port in the remote shard; they determine the
// arrival stream key, so a packet crossing this link is merged into the
// remote queue in exactly the position it would occupy had both ends shared
// one queue. p keeps Peer == nil.
func ConnectRemote(p *Port, re RemoteEnd, rxNode, rxPort int) {
	p.remote = re
	p.rxStream = arrivalStream(rxNode, rxPort)
}

// Run executes events until the queue drains.
func (n *Network) Run() { n.Q.Run() }

// RunUntil executes events up to the deadline (in SyncWindow-sized barrier
// windows when the windowed driver is enabled; see SyncWindow).
func (n *Network) RunUntil(t simtime.Time) {
	if n.SyncWindow > 0 {
		for b := n.Q.Now().Add(n.SyncWindow); b < t; b = b.Add(n.SyncWindow) {
			n.Q.RunBefore(b)
		}
	}
	n.Q.RunUntil(t)
}

// RunFor executes events for a span of virtual time from now.
func (n *Network) RunFor(d simtime.Duration) { n.RunUntil(n.Now().Add(d)) }
