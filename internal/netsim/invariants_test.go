package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// TestBufferAccountingDrainsToZero: after any burst pattern fully drains,
// the switch's shared-buffer accounting must return exactly to zero —
// leaks here would eventually wedge PFC.
func TestBufferAccountingDrainsToZero(t *testing.T) {
	f := func(seed int64, burstsRaw []uint8) bool {
		net := New(seed)
		h1 := NewHost(net, "h1")
		h2 := NewHost(net, "h2")
		sw := NewSwitch(net, DefaultSwitchConfig("sw"))
		p1 := h1.AttachPort(25*simtime.Gbps, 100, nil)
		p2 := h2.AttachPort(5*simtime.Gbps, 100, nil)
		s1 := sw.AddPort(25*simtime.Gbps, 100, nil)
		s2 := sw.AddPort(5*simtime.Gbps, 100, nil)
		Connect(p1, s1)
		Connect(p2, s2)
		sw.SetRoute(h1.ID(), s1)
		sw.SetRoute(h2.ID(), s2)
		h2.Register(1, EndpointFunc(func(p *Packet) {}))
		rng := rand.New(rand.NewSource(seed))
		for _, b := range burstsRaw {
			n := int(b%32) + 1
			for i := 0; i < n; i++ {
				size := 64 + rng.Intn(1400)
				pkt := &Packet{Kind: KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(), Size: size, ECT: rng.Intn(2) == 0}
				h1.Send(pkt)
			}
		}
		net.Run()
		return sw.BufferUsed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPFCAlwaysResumes: every pause must eventually be matched by a resume
// once traffic stops (no stuck pause).
func TestPFCAlwaysResumes(t *testing.T) {
	net := New(77)
	cfg := DefaultSwitchConfig("sw")
	cfg.BufferBytes = 64 * 1048
	cfg.DefaultRED = red.Config{Kmin: 1 << 30, Kmax: 1 << 30, Pmax: 1}
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	sw := NewSwitch(net, cfg)
	p1 := h1.AttachPort(100*simtime.Gbps, 100, nil)
	p2 := h2.AttachPort(1*simtime.Gbps, 100, nil)
	s1 := sw.AddPort(100*simtime.Gbps, 100, nil)
	s2 := sw.AddPort(1*simtime.Gbps, 100, nil)
	Connect(p1, s1)
	Connect(p2, s2)
	sw.SetRoute(h1.ID(), s1)
	sw.SetRoute(h2.ID(), s2)
	h2.Register(1, EndpointFunc(func(p *Packet) {}))
	for i := 0; i < 300; i++ {
		h1.Send(&Packet{Kind: KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(), Size: 1048, ECT: true})
	}
	net.Run()
	if h1.Port.PauseRxEvents == 0 {
		t.Fatal("scenario did not exercise PFC")
	}
	for prio := 0; prio < NumPrio; prio++ {
		if h1.Port.Paused(prio) {
			t.Fatalf("priority %d still paused after drain", prio)
		}
	}
}

// TestConservationOfBytes: bytes delivered + bytes dropped == bytes sent.
func TestConservationOfBytes(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		net := New(seed)
		cfg := DefaultSwitchConfig("tiny")
		cfg.BufferBytes = 8 * 1048
		cfg.PFC.Enabled = false
		cfg.DefaultRED = red.Config{Kmin: 1 << 30, Kmax: 1 << 30, Pmax: 1}
		h1 := NewHost(net, "h1")
		h2 := NewHost(net, "h2")
		sw := NewSwitch(net, cfg)
		p1 := h1.AttachPort(100*simtime.Gbps, 0, nil)
		p2 := h2.AttachPort(1*simtime.Gbps, 0, nil)
		s1 := sw.AddPort(100*simtime.Gbps, 0, nil)
		s2 := sw.AddPort(1*simtime.Gbps, 0, nil)
		Connect(p1, s1)
		Connect(p2, s2)
		sw.SetRoute(h1.ID(), s1)
		sw.SetRoute(h2.ID(), s2)
		var delivered int
		h2.Register(1, EndpointFunc(func(p *Packet) { delivered++ }))
		total := int(n) + 1
		for i := 0; i < total; i++ {
			h1.Send(&Packet{Kind: KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(), Size: 1048, ECT: true})
		}
		net.Run()
		return delivered+int(sw.DropsTotal) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDWRRConservesWork: with a single active queue, DWRR must deliver full
// line rate regardless of the other queues' weights.
func TestDWRRConservesWork(t *testing.T) {
	net := New(5)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	weights := make([]int, NumPrio)
	weights[0], weights[3] = 1, 9
	bw := 10 * simtime.Gbps
	p1 := h1.AttachPort(bw, 0, weights)
	p2 := h2.AttachPort(bw, 0, weights)
	Connect(p1, p2)
	h2.Register(1, EndpointFunc(func(p *Packet) {}))
	// Only the weight-1 queue has traffic.
	const total = 1000
	for i := 0; i < total; i++ {
		h1.Send(&Packet{Kind: KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(), Size: 1048, Prio: 0})
	}
	start := net.Now()
	net.Run()
	elapsed := net.Now().Sub(start)
	ideal := simtime.TxTime(total*1048, bw)
	if float64(elapsed) > 1.02*float64(ideal) {
		t.Fatalf("lone queue took %v, ideal %v: DWRR not work-conserving", elapsed, ideal)
	}
}

// TestFIFOInjectionFairness: many blocked senders on one NIC queue must all
// make progress (regression test for the pacer-starvation bug).
func TestFIFOInjectionFairness(t *testing.T) {
	net := New(6)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	bw := simtime.Rate(1e9)
	p1 := h1.AttachPort(bw, 0, nil)
	p2 := h2.AttachPort(bw, 0, nil)
	p1.Queues[0].InjectLimit = 4 * 1048
	Connect(p1, p2)
	h2.Register(1, EndpointFunc(func(p *Packet) {}))

	const senders = 16
	counts := make([]int, senders)
	for s := 0; s < senders; s++ {
		s := s
		var pump func()
		pump = func() {
			if !p1.CanInject(0) {
				p1.WhenReady(0, WaiterFunc(pump))
				return
			}
			h1.Send(&Packet{Kind: KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(), Size: 1048})
			counts[s]++
			net.Q.After(simtime.Microsecond, pump)
		}
		pump()
	}
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatalf("a sender was starved entirely: %v", counts)
	}
	if float64(max) > 2.0*float64(min) {
		t.Fatalf("unfair injection service: min=%d max=%d", min, max)
	}
}
