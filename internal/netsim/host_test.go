package netsim

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

func TestPauseHooksFire(t *testing.T) {
	net := New(41)
	cfg := DefaultSwitchConfig("sw")
	cfg.BufferBytes = 60 * 1048
	cfg.DefaultRED.Kmin = 1 << 30 // no marking: force PFC
	cfg.DefaultRED.Kmax = 1 << 30
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	sw := NewSwitch(net, cfg)
	p1 := h1.AttachPort(100*simtime.Gbps, 100, nil)
	p2 := h2.AttachPort(1*simtime.Gbps, 100, nil)
	s1 := sw.AddPort(100*simtime.Gbps, 100, nil)
	s2 := sw.AddPort(1*simtime.Gbps, 100, nil)
	Connect(p1, s1)
	Connect(p2, s2)
	sw.SetRoute(h1.ID(), s1)
	sw.SetRoute(h2.ID(), s2)
	h2.Register(1, EndpointFunc(func(*Packet) {}))

	var events []bool
	h1.PauseHooks = append(h1.PauseHooks, func(prio int, paused bool) {
		events = append(events, paused)
	})
	for i := 0; i < 400; i++ {
		h1.Send(&Packet{Kind: KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(), Size: 1048, ECT: true})
	}
	net.Run()
	if len(events) < 2 {
		t.Fatalf("pause hooks fired %d times, want pause+resume at least", len(events))
	}
	if !events[0] {
		t.Fatal("first hook event should be a pause")
	}
	if events[len(events)-1] {
		t.Fatal("last hook event should be a resume")
	}
}

func TestNextFlowIDMonotonic(t *testing.T) {
	net := New(42)
	prev := net.NextFlowID()
	for i := 0; i < 100; i++ {
		id := net.NextFlowID()
		if id <= prev {
			t.Fatalf("flow id %d not greater than %d", id, prev)
		}
		prev = id
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	net := New(43)
	net.RunFor(5 * simtime.Millisecond)
	if net.Now() != simtime.Time(5*simtime.Millisecond) {
		t.Fatalf("clock %v after RunFor(5ms)", net.Now())
	}
	net.RunFor(3 * simtime.Millisecond)
	if net.Now() != simtime.Time(8*simtime.Millisecond) {
		t.Fatalf("clock %v after second RunFor", net.Now())
	}
}

func TestNodeRegistry(t *testing.T) {
	net := New(44)
	h := NewHost(net, "a")
	sw := NewSwitch(net, DefaultSwitchConfig("b"))
	if net.Node(h.ID()) != Node(h) || net.Node(sw.ID()) != Node(sw) {
		t.Fatal("node registry lookup broken")
	}
	if len(net.Nodes()) != 2 {
		t.Fatalf("%d nodes registered", len(net.Nodes()))
	}
	if h.Name() != "a" || sw.Name() != "b" {
		t.Fatal("names wrong")
	}
	if h.Net() != net {
		t.Fatal("host Net() accessor wrong")
	}
}

func TestUnregisterStopsDispatch(t *testing.T) {
	net := New(45)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	p1 := h1.AttachPort(simtime.Gbps, 0, nil)
	p2 := h2.AttachPort(simtime.Gbps, 0, nil)
	Connect(p1, p2)
	got := 0
	h2.Register(9, EndpointFunc(func(*Packet) { got++ }))
	h1.Send(&Packet{Kind: KindData, Flow: 9, Src: h1.ID(), Dst: h2.ID(), Size: 100})
	net.Run()
	h2.Unregister(9)
	h1.Send(&Packet{Kind: KindData, Flow: 9, Src: h1.ID(), Dst: h2.ID(), Size: 100})
	net.Run()
	if got != 1 {
		t.Fatalf("endpoint saw %d packets, want 1 (second arrived after unregister)", got)
	}
}

func TestSwitchConfigAccessors(t *testing.T) {
	net := New(46)
	cfg := DefaultSwitchConfig("x")
	cfg.ECNPrio = []int{3}
	sw := NewSwitch(net, cfg)
	p := sw.AddPort(simtime.Gbps, 0, []int{1, 0, 0, 1})
	if sw.Config().Name != "x" {
		t.Fatal("config accessor wrong")
	}
	// Only prio 3 should be ECN-enabled.
	if p.Queue(0).ECNEnabled {
		t.Fatal("prio 0 should not be ECN-enabled")
	}
	if !p.Queue(3).ECNEnabled {
		t.Fatal("prio 3 should be ECN-enabled")
	}
}
