package netsim

import (
	"fmt"
	"math/rand"

	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// PFCConfig controls priority flow control at a switch, following the
// dynamic-threshold scheme of the paper's testbed (§5.1): with α=1/8 a pause
// is asserted when an ingress queue consumes more than α of the remaining
// free buffer (≈11.1% of the total at the margin).
type PFCConfig struct {
	Enabled bool
	Alpha   float64          // Xoff = Alpha × free buffer
	XonGap  int              // resume when usage drops XonGap bytes below Xoff
	Delay   simtime.Duration // pause frame generation+propagation extra delay
}

// DefaultPFC mirrors the testbed NIC-vendor default.
func DefaultPFC() PFCConfig {
	return PFCConfig{Enabled: true, Alpha: 1.0 / 8, XonGap: 2 * (DefaultMTU + DataHeaderBytes)}
}

// SwitchConfig parameterizes a switch instance.
type SwitchConfig struct {
	Name        string
	BufferBytes int // shared packet buffer across all ports
	PFC         PFCConfig
	// ECNPrio marks which priorities run ECN-enabled queues; nil means all.
	ECNPrio []int
	// DefaultRED is applied to every ECN-enabled queue at construction.
	DefaultRED red.Config
}

// DefaultSwitchConfig uses a 24MB shared buffer (commodity ToR chip scale)
// and the DCQCN-paper ECN setting as the initial template.
func DefaultSwitchConfig(name string) SwitchConfig {
	return SwitchConfig{
		Name:        name,
		BufferBytes: 24 * simtime.MB,
		PFC:         DefaultPFC(),
		DefaultRED:  red.SECN1(),
	}
}

// Switch is a shared-buffer output-queued switch with per-priority egress
// queues, WRED/ECN marking, PFC, and ECMP forwarding.
type Switch struct {
	id int
	//acclint:ignore snapcover construction identity (topology naming); not part of dynamic state
	name string
	net  *Network
	//acclint:ignore snapcover per-node stream wrapper; Network.SaveState saves each stream's draw count and restore fast-forwards it
	rng *rand.Rand // per-node stream keyed on (seed, id); see Network.nodeRng

	Ports []*Port

	//acclint:ignore snapcover construction config
	cfg SwitchConfig

	// routes maps destination host id -> candidate egress ports (ECMP set).
	//acclint:ignore snapcover ECMP routing wiring, rebuilt by topology construction
	routes map[int][]*Port

	// Shared-buffer accounting for PFC: bytes resident per (ingress port,
	// priority), plus the total.
	ingUsed   [][]int // [port][prio]
	totalUsed int
	pauseSent [][]bool // pause currently asserted toward upstream [port][prio]
	// DropsTotal aggregates every drop at this switch. The per-reason
	// counters below partition it: DropsTotal = WREDDrops + OverflowDrops
	// + RouteBlackholes (link blackholes are counted at the transmitting
	// Port, not here).
	DropsTotal uint64
	MarksTotal uint64 // packets CE-marked at this switch
	// WREDDrops counts WRED drops of non-ECT traffic at egress queues.
	WREDDrops uint64
	// OverflowDrops counts shared-buffer admission failures.
	OverflowDrops uint64
	// RouteBlackholes counts packets dropped because every ECMP candidate
	// link toward the destination was down (also included in DropsTotal).
	RouteBlackholes uint64
}

// NewSwitch creates a switch node and registers it with the network at the
// next free id.
func NewSwitch(net *Network, cfg SwitchConfig) *Switch {
	return NewSwitchAt(net, cfg, len(net.nodes))
}

// NewSwitchAt creates a switch registered at an explicit node id, for
// sharded builds that must reproduce the sequential build's id assignment.
func NewSwitchAt(net *Network, cfg SwitchConfig, id int) *Switch {
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 24 * simtime.MB
	}
	s := &Switch{
		name:   cfg.Name,
		net:    net,
		cfg:    cfg,
		routes: make(map[int][]*Port),
	}
	s.id = net.registerAt(s, id)
	s.rng = net.nodeRng(s.id)
	return s
}

// ID returns the node id.
func (s *Switch) ID() int { return s.id }

// Name returns the configured switch name.
func (s *Switch) Name() string { return s.name }

// Config returns the switch configuration.
func (s *Switch) Config() SwitchConfig { return s.cfg }

// BufferUsed returns the occupied shared-buffer bytes.
func (s *Switch) BufferUsed() int { return s.totalUsed }

// ecnEnabled reports whether priority prio runs ECN at this switch.
func (s *Switch) ecnEnabled(prio int) bool {
	if s.cfg.ECNPrio == nil {
		return true
	}
	for _, p := range s.cfg.ECNPrio {
		if p == prio {
			return true
		}
	}
	return false
}

// AddPort attaches a new port with the given per-priority DWRR weights
// (nil means a single priority-0 queue). It returns the port.
func (s *Switch) AddPort(bw simtime.Rate, delay simtime.Duration, weights []int) *Port {
	p := newPort(s.net, s, len(s.Ports), bw, delay, weights)
	for _, q := range p.Queues {
		if s.ecnEnabled(q.Prio) {
			q.ECNEnabled = true
			q.RED = s.cfg.DefaultRED
		}
	}
	s.Ports = append(s.Ports, p)
	s.ingUsed = append(s.ingUsed, make([]int, NumPrio))
	s.pauseSent = append(s.pauseSent, make([]bool, NumPrio))
	return p
}

// SetRoute sets the ECMP candidate ports toward destination host dst.
func (s *Switch) SetRoute(dst int, ports ...*Port) {
	s.routes[dst] = ports
}

// Routes returns the routing table (for topology validation in tests).
func (s *Switch) Routes() map[int][]*Port { return s.routes }

// SetRED applies an ECN template to every ECN-enabled queue of every port.
func (s *Switch) SetRED(c red.Config) {
	for _, p := range s.Ports {
		for _, q := range p.Queues {
			if q.ECNEnabled {
				q.RED = c
				s.net.Tracer.WREDUpdate(s.net.Now(), s.id, p.Index, q.Prio, -1, c.Kmin, c.Kmax, c.Pmax)
			}
		}
	}
}

// ecmpPick selects one port from the candidate set by hashing the flow id,
// keeping a flow on a stable path. Ports whose link is administratively
// down are excluded (failure injection); nil is returned when no candidate
// is alive.
func (s *Switch) ecmpPick(ports []*Port, f FlowID) *Port {
	alive := ports
	for _, p := range ports {
		if p.IsDown() {
			alive = nil
			break
		}
	}
	if alive == nil {
		for _, p := range ports {
			if !p.IsDown() {
				alive = append(alive, p)
			}
		}
		if len(alive) == 0 {
			return nil
		}
	}
	ports = alive
	return ports[EcmpIndex(f, s.id, len(ports))]
}

// EcmpIndex returns the candidate index ecmpPick selects for flow f at the
// switch with the given node id, when all n candidates are alive. It is
// exported so the hybrid fluid model (internal/hybrid) can replicate the
// packet engine's per-flow path choice exactly: a flow modeled analytically
// must occupy the same leaf-spine link the packet engine would carry it on,
// or the fluid utilization the demotion triggers read would be wrong.
func EcmpIndex(f FlowID, node, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(f) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	h += uint64(node) * 0x94d049bb133111eb
	return int(h % uint64(n))
}

// Receive implements Node. Data packets are forwarded; PFC frames act on the
// local transmitter state.
func (s *Switch) Receive(pkt *Packet, in *Port) {
	switch pkt.Kind {
	case KindPause:
		in.setPaused(pkt.PausePrio, true)
		s.net.ReleasePacket(pkt)
		return
	case KindResume:
		in.setPaused(pkt.PausePrio, false)
		s.net.ReleasePacket(pkt)
		return
	}

	ports, ok := s.routes[pkt.Dst]
	if !ok || len(ports) == 0 {
		//acclint:ignore hotpath@1 a route miss is a fatal topology bug; the Sprintf runs only on the panic path
		panic(fmt.Sprintf("netsim: switch %s has no route to host %d", s.name, pkt.Dst))
	}
	out := s.ecmpPick(ports, pkt.Flow)
	if out == nil {
		// Every candidate link is down: blackhole the packet.
		s.DropsTotal++
		s.RouteBlackholes++
		s.net.Tracer.Drop(s.net.Now(), obs.DropRouteBlackhole, s.id, in.Index, pkt.Prio, uint64(pkt.Flow), pkt.Size)
		s.net.ReleasePacket(pkt)
		return
	}

	// Admit to the shared buffer.
	if s.totalUsed+pkt.Size > s.cfg.BufferBytes {
		s.DropsTotal++
		s.OverflowDrops++
		s.net.Tracer.Drop(s.net.Now(), obs.DropOverflow, s.id, in.Index, pkt.Prio, uint64(pkt.Flow), pkt.Size)
		s.net.ReleasePacket(pkt)
		return
	}
	pkt.inPort = in.Index
	s.ingUsed[in.Index][pkt.Prio] += pkt.Size
	s.totalUsed += pkt.Size

	wasCE := pkt.CE
	v := out.Enqueue(pkt, s.rng)
	prio := pkt.Prio // normalized by Enqueue; pkt is invalid past a drop
	if v == red.Drop {
		// WRED dropped a non-ECT packet: release accounting immediately.
		s.releaseBuffer(pkt)
		s.DropsTotal++
		s.WREDDrops++
		s.net.Tracer.Drop(s.net.Now(), obs.DropWRED, s.id, out.Index, prio, uint64(pkt.Flow), pkt.Size)
		s.net.ReleasePacket(pkt)
	} else if pkt.CE && !wasCE {
		s.MarksTotal++
		s.net.Tracer.Mark(s.net.Now(), s.id, out.Index, prio, uint64(pkt.Flow), pkt.Size)
	}

	if s.cfg.PFC.Enabled {
		s.checkPause(in, prio)
	}
}

// checkPause asserts PFC toward the upstream device on port in when the
// ingress usage for prio exceeds the dynamic Xoff threshold.
func (s *Switch) checkPause(in *Port, prio int) {
	if s.pauseSent[in.Index][prio] {
		return
	}
	free := s.cfg.BufferBytes - s.totalUsed
	xoff := int(s.cfg.PFC.Alpha * float64(free))
	if s.ingUsed[in.Index][prio] > xoff {
		s.pauseSent[in.Index][prio] = true
		s.net.Tracer.PFC(s.net.Now(), s.id, in.Index, prio, true)
		pause := s.net.AllocPacket()
		pause.Kind, pause.PausePrio, pause.Size, pause.Src = KindPause, prio, CtrlPacketBytes, s.id
		in.SendCtrl(pause)
	}
}

// checkResume lifts a previously asserted pause once ingress usage falls
// XonGap below the (current) Xoff threshold.
func (s *Switch) checkResume(portIdx, prio int) {
	if !s.pauseSent[portIdx][prio] {
		return
	}
	free := s.cfg.BufferBytes - s.totalUsed
	xoff := int(s.cfg.PFC.Alpha * float64(free))
	if s.ingUsed[portIdx][prio] <= max(0, xoff-s.cfg.PFC.XonGap) {
		s.pauseSent[portIdx][prio] = false
		s.net.Tracer.PFC(s.net.Now(), s.id, portIdx, prio, false)
		resume := s.net.AllocPacket()
		resume.Kind, resume.PausePrio, resume.Size, resume.Src = KindResume, prio, CtrlPacketBytes, s.id
		s.Ports[portIdx].SendCtrl(resume)
	}
}

// releaseBuffer implements bufferReleaser: called when a packet finishes
// serializing out of (or is dropped inside) this switch.
func (s *Switch) releaseBuffer(pkt *Packet) {
	s.ingUsed[pkt.inPort][pkt.Prio] -= pkt.Size
	s.totalUsed -= pkt.Size
	if s.cfg.PFC.Enabled {
		s.checkResume(pkt.inPort, pkt.Prio)
	}
}
