//go:build !race

package netsim

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// TestAllocFreePacketHop pins the full per-packet pipeline at zero
// allocations in steady state: pool alloc, NIC enqueue, serialization event,
// propagation event, delivery, and release back to the pool, across two
// hosts wired back to back.
func TestAllocFreePacketHop(t *testing.T) {
	net := New(1)
	h1 := NewHost(net, "h1")
	h2 := NewHost(net, "h2")
	p1 := h1.AttachPort(25*simtime.Gbps, 600*simtime.Nanosecond, nil)
	p2 := h2.AttachPort(25*simtime.Gbps, 600*simtime.Nanosecond, nil)
	Connect(p1, p2)
	h2.Register(7, EndpointFunc(func(*Packet) {}))

	sendOne := func() {
		pkt := net.AllocPacket()
		pkt.Kind = KindData
		pkt.Flow = 7
		pkt.Src = h1.ID()
		pkt.Dst = h2.ID()
		pkt.Size = DefaultMTU + DataHeaderBytes
		pkt.ECT = true
		h1.Send(pkt)
		net.Run()
	}
	// Warm the packet pool, the event free list, and the egress queue's
	// backing array.
	for i := 0; i < 8; i++ {
		sendOne()
	}

	if avg := testing.AllocsPerRun(1000, sendOne); avg != 0 {
		t.Fatalf("one packet-hop allocates %v/op, want 0", avg)
	}
}

// TestPacketPoolReuseAndDoubleReleaseGuard checks the pool actually recycles
// and that a double release is caught instead of silently aliasing two
// in-flight packets.
func TestPacketPoolReuseAndDoubleReleaseGuard(t *testing.T) {
	net := New(1)
	p := net.AllocPacket()
	p.Size = 99
	net.ReleasePacket(p)
	if got := net.AllocPacket(); got != p {
		t.Fatal("pool did not recycle the released packet")
	} else if got.Size != 0 {
		t.Fatal("recycled packet not zeroed")
	}
	net.ReleasePacket(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	net.ReleasePacket(p)
}
