// Package topo builds the network topologies used in the paper's
// evaluation: a single-switch star (the §5.2 fairness setup), the testbed
// two-tier Clos PoD (§5.1), and the large leaf–spine fabric of the NS3
// simulations (§5.4). Builders wire ports, fill ECMP routing tables, and
// apply NIC injection limits so rate-based transports share NIC ports the
// way per-QP limiters do in hardware.
package topo

import (
	"fmt"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// Config parameterizes a fabric build.
type Config struct {
	HostBW    simtime.Rate     // host uplink rate (e.g. 25Gbps)
	FabricBW  simtime.Rate     // leaf<->spine link rate (e.g. 100Gbps)
	HostDelay simtime.Duration // host<->leaf propagation delay
	FabDelay  simtime.Duration // leaf<->spine propagation delay

	// QueueWeights lists DWRR weights per priority for every port
	// (nil = single priority-0 queue). The paper's fairness study uses
	// {0:3, 3:7} for a 30/70 TCP/RDMA split.
	QueueWeights []int

	Switch netsim.SwitchConfig // template; Name is overridden per instance

	// NICInjectLimit bounds per-priority host NIC queue bytes; zero applies
	// a default of 4 MTU-sized frames.
	NICInjectLimit int
}

// DefaultConfig mirrors the paper's testbed: 25G hosts, 100G fabric links,
// microsecond-scale delays giving an inter-rack RTT of a few microseconds.
func DefaultConfig() Config {
	return Config{
		HostBW:    25 * simtime.Gbps,
		FabricBW:  100 * simtime.Gbps,
		HostDelay: 600 * simtime.Nanosecond,
		FabDelay:  600 * simtime.Nanosecond,
		Switch:    netsim.DefaultSwitchConfig(""),
	}
}

// Fabric is a built topology.
type Fabric struct {
	Net     *netsim.Network
	Hosts   []*netsim.Host
	Leaves  []*netsim.Switch
	Spines  []*netsim.Switch
	HostsAt [][]*netsim.Host // hosts per leaf

	// Fabric link tables (leaf–spine builds only): Uplinks[l][s] is leaf
	// l's port toward spine s, Downlinks[s][l] the reverse. Consumers that
	// model paths outside the packet engine (internal/hybrid) need the
	// physical per-spine ports because ECMP hashes flows onto individual
	// uplinks — an aggregate trunk would hide hash-collision congestion.
	Uplinks   [][]*netsim.Port
	Downlinks [][]*netsim.Port
}

// Switches returns all switches, leaves first.
func (f *Fabric) Switches() []*netsim.Switch {
	out := make([]*netsim.Switch, 0, len(f.Leaves)+len(f.Spines))
	out = append(out, f.Leaves...)
	out = append(out, f.Spines...)
	return out
}

// LeafOf returns the index of the leaf switch serving host h.
func (f *Fabric) LeafOf(h *netsim.Host) int {
	for li, hs := range f.HostsAt {
		for _, hh := range hs {
			if hh == h {
				return li
			}
		}
	}
	return -1
}

func (c Config) injectLimit() int {
	if c.NICInjectLimit > 0 {
		return c.NICInjectLimit
	}
	return 4 * (netsim.DefaultMTU + netsim.DataHeaderBytes)
}

// attachHost creates a host NIC, connects it to a leaf port, and programs
// direct routes on the leaf.
func (c Config) attachHost(net *netsim.Network, leaf *netsim.Switch, name string) *netsim.Host {
	return c.AttachHostAt(net, leaf, name, len(net.Nodes()))
}

// Star builds nHosts hosts around a single switch (the paper's §5.2
// fairness topology with 8×100G hosts).
func Star(net *netsim.Network, nHosts int, c Config) *Fabric {
	sw := c.newSwitch(net, "sw0")
	f := &Fabric{Net: net, Leaves: []*netsim.Switch{sw}, HostsAt: [][]*netsim.Host{nil}}
	for i := 0; i < nHosts; i++ {
		h := c.attachHost(net, sw, fmt.Sprintf("h%d", i))
		f.Hosts = append(f.Hosts, h)
		f.HostsAt[0] = append(f.HostsAt[0], h)
	}
	return f
}

func (c Config) newSwitch(net *netsim.Network, name string) *netsim.Switch {
	return c.SwitchAt(net, name, len(net.Nodes()))
}

// LeafSpine builds a two-tier fabric: nLeaf leaf switches with hostsPerLeaf
// hosts each, and nSpine spine switches fully meshed to every leaf. Routes
// between leaves use ECMP across all spines.
func LeafSpine(net *netsim.Network, nLeaf, hostsPerLeaf, nSpine int, c Config) *Fabric {
	f := &Fabric{Net: net}
	for i := 0; i < nSpine; i++ {
		f.Spines = append(f.Spines, c.newSwitch(net, fmt.Sprintf("spine%d", i)))
	}
	f.HostsAt = make([][]*netsim.Host, nLeaf)

	uplinks := make([][]*netsim.Port, nLeaf)
	downlinks := make([][]*netsim.Port, nSpine)
	for s := range downlinks {
		downlinks[s] = make([]*netsim.Port, nLeaf)
	}

	for l := 0; l < nLeaf; l++ {
		leaf := c.newSwitch(net, fmt.Sprintf("leaf%d", l))
		f.Leaves = append(f.Leaves, leaf)
		for i := 0; i < hostsPerLeaf; i++ {
			h := c.attachHost(net, leaf, fmt.Sprintf("h%d-%d", l, i))
			f.Hosts = append(f.Hosts, h)
			f.HostsAt[l] = append(f.HostsAt[l], h)
		}
		uplinks[l] = make([]*netsim.Port, nSpine)
		for s := 0; s < nSpine; s++ {
			up := leaf.AddPort(c.FabricBW, c.FabDelay, c.QueueWeights)
			down := f.Spines[s].AddPort(c.FabricBW, c.FabDelay, c.QueueWeights)
			netsim.Connect(up, down)
			uplinks[l][s] = up
			downlinks[s][l] = down
		}
	}

	// Inter-leaf routes: ECMP over all uplinks; spine routes point at the
	// destination leaf's downlink.
	for l, leaf := range f.Leaves {
		for dl, hosts := range f.HostsAt {
			if dl == l {
				continue
			}
			for _, h := range hosts {
				leaf.SetRoute(h.ID(), uplinks[l]...)
			}
		}
		for s, spine := range f.Spines {
			for _, h := range f.HostsAt[l] {
				spine.SetRoute(h.ID(), downlinks[s][l])
			}
		}
	}
	f.Uplinks, f.Downlinks = uplinks, downlinks
	return f
}

// TestbedClos builds the paper's §5.1 testbed: 24 hosts across 4 leaves
// (6 hosts each), 2 spines, 25G host links and 100G fabric links.
func TestbedClos(net *netsim.Network, c Config) *Fabric {
	return LeafSpine(net, 4, 6, 2, c)
}

// LargeSim builds the §5.4 NS3 fabric: 288 hosts, 12 leaves × 24 hosts,
// 6 spines.
func LargeSim(net *netsim.Network, c Config) *Fabric {
	return LeafSpine(net, 12, 24, 6, c)
}
