package topo

import (
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

func TestFatTreeShape(t *testing.T) {
	net := netsim.New(1)
	f := FatTree(net, 4, DefaultConfig())
	// k=4: 16 hosts, 8 edge, 8 agg, 4 core.
	if len(f.Hosts) != 16 {
		t.Fatalf("%d hosts, want 16", len(f.Hosts))
	}
	if len(f.Leaves) != 8 {
		t.Fatalf("%d edge switches, want 8", len(f.Leaves))
	}
	if len(f.Spines) != 12 { // 8 agg + 4 core
		t.Fatalf("%d agg+core switches, want 12", len(f.Spines))
	}
	// Every edge switch must route to every host.
	for _, e := range f.Leaves {
		for _, h := range f.Hosts {
			if len(e.Routes()[h.ID()]) == 0 {
				t.Fatalf("edge %s has no route to %s", e.Name(), h.Name())
			}
		}
	}
}

func TestFatTreePanicsOnOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd k")
		}
	}()
	FatTree(netsim.New(1), 5, DefaultConfig())
}

func TestFatTreeEndToEnd(t *testing.T) {
	net := netsim.New(2)
	f := FatTree(net, 4, DefaultConfig())
	// Cross-pod transfer (host 0 in pod 0 -> last host in pod 3): traverses
	// edge->agg->core->agg->edge.
	src, dst := f.Hosts[0], f.Hosts[len(f.Hosts)-1]
	fl := dcqcn.Start(net, src, dst, simtime.MB, dcqcn.DefaultParams(25*simtime.Gbps), nil)
	net.RunUntil(simtime.Time(50 * simtime.Millisecond))
	if !fl.Done() {
		t.Fatalf("cross-pod flow incomplete: %d/%d", fl.Received(), fl.Size)
	}
	if rate := simtime.RateOf(fl.Size, fl.FCT()); rate < 15*simtime.Gbps {
		t.Fatalf("cross-pod goodput %.1fG too low", float64(rate)/1e9)
	}
}

func TestLinkFailureReroutesECMP(t *testing.T) {
	net := netsim.New(3)
	f := LeafSpine(net, 2, 2, 2, DefaultConfig())
	src := f.HostsAt[0][0]
	dst := f.HostsAt[1][0]

	// Kill leaf0's uplink to spine0 (ports beyond the 2 host ports are
	// uplinks in construction order).
	leaf0 := f.Leaves[0]
	up0 := leaf0.Ports[2]
	up0.SetDown(true)

	// Many flows: all must complete via the surviving spine.
	done := 0
	for i := 0; i < 8; i++ {
		dcqcn.Start(net, src, dst, 256*simtime.KB, dcqcn.DefaultParams(25*simtime.Gbps), func(*dcqcn.Flow) { done++ })
	}
	net.RunUntil(simtime.Time(50 * simtime.Millisecond))
	if done != 8 {
		t.Fatalf("%d/8 flows completed with one spine down", done)
	}
	if up0.TxBytesTotal != 0 {
		t.Fatal("down link transmitted data")
	}

	// Recovery: bring it back and verify it carries traffic again.
	up0.SetDown(false)
	done = 0
	for i := 0; i < 32; i++ {
		dcqcn.Start(net, src, dst, 64*simtime.KB, dcqcn.DefaultParams(25*simtime.Gbps), func(*dcqcn.Flow) { done++ })
	}
	net.RunUntil(simtime.Time(100 * simtime.Millisecond))
	if done != 32 {
		t.Fatalf("%d/32 flows completed after recovery", done)
	}
	if up0.TxBytesTotal == 0 {
		t.Fatal("recovered link carried no traffic (ECMP not using it)")
	}
}

func TestAllLinksDownBlackholes(t *testing.T) {
	net := netsim.New(4)
	f := LeafSpine(net, 2, 1, 1, DefaultConfig())
	leaf0 := f.Leaves[0]
	leaf0.Ports[1].SetDown(true) // the only uplink
	src := f.HostsAt[0][0]
	dst := f.HostsAt[1][0]
	fl := dcqcn.Start(net, src, dst, 10*simtime.KB, dcqcn.DefaultParams(25*simtime.Gbps), nil)
	net.RunUntil(simtime.Time(5 * simtime.Millisecond))
	if fl.Done() {
		t.Fatal("flow completed across a fully failed path")
	}
	if leaf0.DropsTotal == 0 {
		t.Fatal("blackholed packets not counted as drops")
	}
}
