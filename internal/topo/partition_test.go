package topo

import (
	"testing"

	"github.com/accnet/acc/internal/netsim"
)

// TestLeafSpineIDFormulas pins the Partition id and port-index formulas to
// the real sequential builder: if LeafSpine's construction order ever
// changes, this fails before the parallel engine can silently build a
// different fabric.
func TestLeafSpineIDFormulas(t *testing.T) {
	const nLeaf, hostsPerLeaf, nSpine = 4, 3, 2
	c := DefaultConfig()
	net := netsim.New(1)
	fab := LeafSpine(net, nLeaf, hostsPerLeaf, nSpine, c)
	p := PartitionLeafSpine(nLeaf, hostsPerLeaf, nSpine, 1, c)

	if got := p.NumNodes(); got != len(net.Nodes()) {
		t.Fatalf("NumNodes = %d, builder registered %d", got, len(net.Nodes()))
	}
	for s, sw := range fab.Spines {
		if sw.ID() != p.SpineID(s) {
			t.Errorf("spine %d: id %d, formula %d", s, sw.ID(), p.SpineID(s))
		}
	}
	for l, leaf := range fab.Leaves {
		if leaf.ID() != p.LeafID(l) {
			t.Errorf("leaf %d: id %d, formula %d", l, leaf.ID(), p.LeafID(l))
		}
		for i, h := range fab.HostsAt[l] {
			if h.ID() != p.HostID(l, i) {
				t.Errorf("host (%d,%d): id %d, formula %d", l, i, h.ID(), p.HostID(l, i))
			}
			if leaf.Ports[p.LeafHostPort(i)].Peer != h.Port {
				t.Errorf("leaf %d port %d does not face host (%d,%d)", l, p.LeafHostPort(i), l, i)
			}
		}
		for s, spine := range fab.Spines {
			up := leaf.Ports[p.LeafUplinkPort(s)]
			down := spine.Ports[p.SpineDownlinkPort(l)]
			if up.Peer != down || down.Peer != up {
				t.Errorf("leaf %d <-> spine %d: uplink/downlink port formulas do not peer", l, s)
			}
		}
	}
	for id := 0; id < p.NumNodes(); id++ {
		if got := p.ShardOfNode(id); got != 0 {
			t.Errorf("K=1 ShardOfNode(%d) = %d, want 0", id, got)
		}
	}
}

func TestPartitionShapes(t *testing.T) {
	c := DefaultConfig()

	// Clamping: more shards than leaves degenerates to per-leaf shards; a
	// single leaf (star-like) always collapses to one shard.
	if p := PartitionLeafSpine(4, 8, 6, 99, c); p.K != 4 {
		t.Errorf("K clamped to %d, want 4", p.K)
	}
	if p := PartitionLeafSpine(1, 8, 2, 4, c); p.K != 1 {
		t.Errorf("single leaf: K = %d, want 1", p.K)
	}
	if p := PartitionLeafSpine(4, 8, 6, 0, c); p.K != 1 {
		t.Errorf("k=0: K = %d, want 1", p.K)
	}

	// Leaves land in contiguous balanced blocks; spines round-robin; every
	// shard owns at least one leaf.
	p := PartitionLeafSpine(10, 4, 6, 4, c)
	counts := make([]int, p.K)
	prev := 0
	for l, sh := range p.LeafShard {
		if sh < prev {
			t.Fatalf("leaf %d: shard %d after shard %d — blocks not contiguous", l, sh, prev)
		}
		prev = sh
		counts[sh]++
	}
	for sh, n := range counts {
		if n == 0 {
			t.Errorf("shard %d owns no leaves", sh)
		}
	}
	for s, sh := range p.SpineShard {
		if sh != s%p.K {
			t.Errorf("spine %d on shard %d, want %d", s, sh, s%p.K)
		}
	}
	if p.Lookahead != c.FabDelay {
		t.Errorf("lookahead %v, want fabric delay %v", p.Lookahead, c.FabDelay)
	}

	// ShardOfNode agrees with the per-leaf/per-spine tables.
	for s := range p.SpineShard {
		if p.ShardOfNode(p.SpineID(s)) != p.SpineShard[s] {
			t.Errorf("spine %d: ShardOfNode mismatch", s)
		}
	}
	for l := range p.LeafShard {
		if p.ShardOfNode(p.LeafID(l)) != p.LeafShard[l] {
			t.Errorf("leaf %d: ShardOfNode mismatch", l)
		}
		for i := 0; i < p.HostsPerLeaf; i++ {
			if p.ShardOfNode(p.HostID(l, i)) != p.LeafShard[l] {
				t.Errorf("host (%d,%d): ShardOfNode mismatch", l, i)
			}
		}
	}
}
