package topo

import (
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// Partition describes a K-way sharding of a leaf–spine fabric for the
// parallel engine (internal/psim). The unit of placement is the leaf group —
// a leaf switch together with all of its hosts — because host↔leaf links are
// the tightest-coupled (lowest delay, highest event rate) and must never be
// cut. Leaves are assigned to shards in contiguous, balanced blocks (leaves
// of one pod stay together); spines are dealt round-robin so every shard
// carries a share of the core. The only links crossing a shard boundary are
// then leaf↔spine links, whose propagation delay is the fabric delay — the
// conservative-sync lookahead.
type Partition struct {
	K int // effective shard count (clamped to [1, NLeaf])

	NLeaf, HostsPerLeaf, NSpine int

	LeafShard  []int // leaf index -> shard
	SpineShard []int // spine index -> shard

	// Lookahead is the minimum propagation delay of any link that can cross
	// a shard boundary (the leaf↔spine delay). The parallel engine uses it
	// as the barrier window: an event executed inside a window can only
	// influence another shard at least one full window later, so exchanging
	// cross-shard packets at barriers loses nothing. It is a property of the
	// geometry, not of K, so every shard layout runs the same barrier
	// cadence — a prerequisite for bit-identical sampled metrics.
	Lookahead simtime.Duration
}

// PartitionLeafSpine computes the K-way partition of a LeafSpine(nLeaf,
// hostsPerLeaf, nSpine, c) fabric. k is clamped to [1, nLeaf]: a star or
// single-leaf topology degenerates to one shard (there is nothing to cut
// that would not sever a host↔leaf link).
func PartitionLeafSpine(nLeaf, hostsPerLeaf, nSpine, k int, c Config) Partition {
	if k < 1 {
		k = 1
	}
	if k > nLeaf {
		k = nLeaf
	}
	p := Partition{
		K:            k,
		NLeaf:        nLeaf,
		HostsPerLeaf: hostsPerLeaf,
		NSpine:       nSpine,
		LeafShard:    make([]int, nLeaf),
		SpineShard:   make([]int, nSpine),
		Lookahead:    c.FabDelay,
	}
	for l := 0; l < nLeaf; l++ {
		// Balanced contiguous blocks: shard i owns leaves
		// [i*nLeaf/k, (i+1)*nLeaf/k).
		p.LeafShard[l] = l * k / nLeaf
	}
	for s := 0; s < nSpine; s++ {
		p.SpineShard[s] = s % k
	}
	return p
}

// Node-id formulas mirroring LeafSpine's construction order exactly: spines
// are registered first, then per leaf the leaf switch followed by its hosts.
// Shard-local builders (psim) register nodes at these explicit ids so a node
// carries the same id — hence routing address, arrival-stream key, and
// per-node RNG stream — in every layout. TestLeafSpineIDFormulas pins the
// formulas to the real builder.

// SpineID returns the node id of spine s.
func (p Partition) SpineID(s int) int { return s }

// LeafID returns the node id of leaf l.
func (p Partition) LeafID(l int) int { return p.NSpine + l*(p.HostsPerLeaf+1) }

// HostID returns the node id of host i under leaf l.
func (p Partition) HostID(l, i int) int { return p.LeafID(l) + 1 + i }

// NumNodes returns the total node count of the fabric.
func (p Partition) NumNodes() int { return p.NSpine + p.NLeaf*(p.HostsPerLeaf+1) }

// ShardOfNode maps a node id to its owning shard.
func (p Partition) ShardOfNode(id int) int {
	if id < p.NSpine {
		return p.SpineShard[id]
	}
	return p.LeafShard[(id-p.NSpine)/(p.HostsPerLeaf+1)]
}

// Port-index formulas, also pinned by TestLeafSpineIDFormulas: a leaf's
// ports are its hosts in order (0..H-1) followed by its uplinks (H+s for
// spine s); spine s's port toward leaf l is port l; a host's NIC is port 0.

// LeafHostPort returns leaf l's port index toward its i'th host.
func (p Partition) LeafHostPort(i int) int { return i }

// LeafUplinkPort returns leaf l's port index toward spine s.
func (p Partition) LeafUplinkPort(s int) int { return p.HostsPerLeaf + s }

// SpineDownlinkPort returns spine s's port index toward leaf l.
func (p Partition) SpineDownlinkPort(l int) int { return l }

// CrossShard reports whether the leaf l ↔ spine s link crosses shards.
func (p Partition) CrossShard(l, s int) bool {
	return p.LeafShard[l] != p.SpineShard[s]
}

// SwitchAt creates a switch named name registered at an explicit node id,
// configured from the template exactly as the sequential builders configure
// theirs.
func (c Config) SwitchAt(net *netsim.Network, name string, id int) *netsim.Switch {
	sc := c.Switch
	sc.Name = name
	return netsim.NewSwitchAt(net, sc, id)
}

// AttachHostAt creates a host registered at an explicit node id, wires its
// NIC to a fresh port on leaf, and programs the leaf's direct route — the
// explicit-id twin of the sequential builders' host attachment, sharing the
// same wiring code so shard-local builds cannot drift.
func (c Config) AttachHostAt(net *netsim.Network, leaf *netsim.Switch, name string, id int) *netsim.Host {
	h := netsim.NewHostAt(net, name, id)
	hp := h.AttachPort(c.HostBW, c.HostDelay, c.QueueWeights)
	for _, q := range hp.Queues {
		q.InjectLimit = c.injectLimit()
	}
	lp := leaf.AddPort(c.HostBW, c.HostDelay, c.QueueWeights)
	netsim.Connect(hp, lp)
	leaf.SetRoute(h.ID(), lp)
	return h
}
