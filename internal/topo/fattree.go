package topo

import (
	"fmt"

	"github.com/accnet/acc/internal/netsim"
)

// FatTree builds a three-tier k-ary fat-tree (Al-Fares et al.): k pods,
// each with k/2 edge and k/2 aggregation switches, (k/2)² core switches,
// and (k/2)² hosts per pod. k must be even and >= 4.
//
// Routing is ECMP at every up-stage: edge switches spread across their
// pod's aggregation switches, aggregation switches across their core
// group; downward paths are deterministic. ACC deploys on all three tiers
// (returned via Fabric.Leaves = edge, Fabric.Spines = aggregation+core).
func FatTree(net *netsim.Network, k int, c Config) *Fabric {
	if k < 4 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree k must be even and >=4, got %d", k))
	}
	half := k / 2
	f := &Fabric{Net: net}

	// Core switches: half*half, grouped by the aggregation index they serve.
	cores := make([]*netsim.Switch, half*half)
	for i := range cores {
		cores[i] = c.newSwitch(net, fmt.Sprintf("core%d", i))
	}

	type pod struct {
		edge, agg []*netsim.Switch
		// edgeUp[e][a]: edge e's port toward agg a; aggDown[a][e] reverse.
		edgeUp  [][]*netsim.Port
		aggDown [][]*netsim.Port
		aggUp   [][]*netsim.Port // aggUp[a][j]: agg a's port toward core a*half+j
		hosts   [][]*netsim.Host // hosts[e] under edge e
	}
	pods := make([]*pod, k)

	coreDown := make([][]*netsim.Port, len(cores)) // coreDown[c][pod]
	for i := range coreDown {
		coreDown[i] = make([]*netsim.Port, k)
	}

	for p := 0; p < k; p++ {
		pd := &pod{}
		pods[p] = pd
		for a := 0; a < half; a++ {
			pd.agg = append(pd.agg, c.newSwitch(net, fmt.Sprintf("agg%d-%d", p, a)))
		}
		pd.edgeUp = make([][]*netsim.Port, half)
		pd.aggDown = make([][]*netsim.Port, half)
		pd.aggUp = make([][]*netsim.Port, half)
		pd.hosts = make([][]*netsim.Host, half)
		for a := 0; a < half; a++ {
			pd.aggDown[a] = make([]*netsim.Port, half)
		}
		for e := 0; e < half; e++ {
			edge := c.newSwitch(net, fmt.Sprintf("edge%d-%d", p, e))
			pd.edge = append(pd.edge, edge)
			for i := 0; i < half; i++ {
				h := c.attachHost(net, edge, fmt.Sprintf("h%d-%d-%d", p, e, i))
				pd.hosts[e] = append(pd.hosts[e], h)
				f.Hosts = append(f.Hosts, h)
			}
			pd.edgeUp[e] = make([]*netsim.Port, half)
			for a := 0; a < half; a++ {
				up := edge.AddPort(c.FabricBW, c.FabDelay, c.QueueWeights)
				down := pd.agg[a].AddPort(c.FabricBW, c.FabDelay, c.QueueWeights)
				netsim.Connect(up, down)
				pd.edgeUp[e][a] = up
				pd.aggDown[a][e] = down
			}
		}
		for a := 0; a < half; a++ {
			pd.aggUp[a] = make([]*netsim.Port, half)
			for j := 0; j < half; j++ {
				core := cores[a*half+j]
				up := pd.agg[a].AddPort(c.FabricBW, c.FabDelay, c.QueueWeights)
				down := core.AddPort(c.FabricBW, c.FabDelay, c.QueueWeights)
				netsim.Connect(up, down)
				pd.aggUp[a][j] = up
				coreDown[a*half+j][p] = down
			}
		}
	}

	// Routing.
	for p, pd := range pods {
		for e, edge := range pd.edge {
			for _, h := range f.Hosts {
				if local := f.hostUnder(pd.hosts[e], h); local {
					continue // direct route already set by attachHost
				}
				edge.SetRoute(h.ID(), pd.edgeUp[e]...)
			}
		}
		edgeOf := func(h *netsim.Host) (int, bool) {
			for e, hs := range pd.hosts {
				for _, x := range hs {
					if x == h {
						return e, true
					}
				}
			}
			return 0, false
		}
		for a, agg := range pd.agg {
			for _, h := range f.Hosts {
				if he, ok := edgeOf(h); ok {
					agg.SetRoute(h.ID(), pd.aggDown[a][he])
				} else {
					agg.SetRoute(h.ID(), pd.aggUp[a]...)
				}
			}
		}
		_ = p
	}
	for ci, core := range cores {
		for p, pd := range pods {
			for e := range pd.hosts {
				for _, h := range pd.hosts[e] {
					_ = e
					core.SetRoute(h.ID(), coreDown[ci][p])
				}
			}
		}
	}

	// Expose tiers: edge as Leaves, aggregation+core as Spines.
	for _, pd := range pods {
		f.Leaves = append(f.Leaves, pd.edge...)
		f.Spines = append(f.Spines, pd.agg...)
		f.HostsAt = append(f.HostsAt, flatten(pd.hosts)...)
	}
	f.Spines = append(f.Spines, cores...)
	return f
}

func (f *Fabric) hostUnder(hs []*netsim.Host, h *netsim.Host) bool {
	for _, x := range hs {
		if x == h {
			return true
		}
	}
	return false
}

func flatten(hs [][]*netsim.Host) [][]*netsim.Host { return hs }
