package topo

import (
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

func TestStarWiring(t *testing.T) {
	net := netsim.New(1)
	f := Star(net, 8, DefaultConfig())
	if len(f.Hosts) != 8 || len(f.Leaves) != 1 || len(f.Spines) != 0 {
		t.Fatalf("star shape wrong: %d hosts %d leaves %d spines", len(f.Hosts), len(f.Leaves), len(f.Spines))
	}
	sw := f.Leaves[0]
	if len(sw.Ports) != 8 {
		t.Fatalf("switch has %d ports, want 8", len(sw.Ports))
	}
	// Every host must be routable.
	for _, h := range f.Hosts {
		if ports := sw.Routes()[h.ID()]; len(ports) != 1 {
			t.Fatalf("host %d has %d route ports", h.ID(), len(ports))
		}
	}
	// NIC inject limits applied.
	for _, h := range f.Hosts {
		for _, q := range h.Port.Queues {
			if q.InjectLimit <= 0 {
				t.Fatal("NIC queue missing inject limit")
			}
		}
	}
}

func TestLeafSpineWiring(t *testing.T) {
	net := netsim.New(2)
	f := LeafSpine(net, 4, 6, 2, DefaultConfig())
	if len(f.Hosts) != 24 || len(f.Leaves) != 4 || len(f.Spines) != 2 {
		t.Fatalf("fabric shape wrong")
	}
	// Each leaf: 6 host ports + 2 uplinks.
	for _, l := range f.Leaves {
		if len(l.Ports) != 8 {
			t.Fatalf("leaf has %d ports, want 8", len(l.Ports))
		}
	}
	// Each spine: one downlink per leaf.
	for _, s := range f.Spines {
		if len(s.Ports) != 4 {
			t.Fatalf("spine has %d ports, want 4", len(s.Ports))
		}
	}
	// Routing completeness: every leaf can reach every host; local hosts via
	// one port, remote via ECMP over both spines.
	for li, l := range f.Leaves {
		for lj, hosts := range f.HostsAt {
			for _, h := range hosts {
				ports := l.Routes()[h.ID()]
				if li == lj && len(ports) != 1 {
					t.Fatalf("leaf %d local route to %d has %d ports", li, h.ID(), len(ports))
				}
				if li != lj && len(ports) != 2 {
					t.Fatalf("leaf %d remote route to %d has %d ports, want 2 (ECMP)", li, h.ID(), len(ports))
				}
			}
		}
	}
	// Spine routes: every host reachable via exactly one downlink.
	for _, s := range f.Spines {
		for _, h := range f.Hosts {
			if ports := s.Routes()[h.ID()]; len(ports) != 1 {
				t.Fatalf("spine route to %d has %d ports", h.ID(), len(ports))
			}
		}
	}
}

func TestLeafOf(t *testing.T) {
	net := netsim.New(3)
	f := LeafSpine(net, 2, 3, 1, DefaultConfig())
	for li, hosts := range f.HostsAt {
		for _, h := range hosts {
			if got := f.LeafOf(h); got != li {
				t.Fatalf("LeafOf(%s) = %d, want %d", h.Name(), got, li)
			}
		}
	}
	other := netsim.NewHost(net, "outsider")
	if f.LeafOf(other) != -1 {
		t.Fatal("LeafOf must return -1 for unknown host")
	}
}

func TestSwitchesOrder(t *testing.T) {
	net := netsim.New(4)
	f := LeafSpine(net, 2, 2, 2, DefaultConfig())
	sws := f.Switches()
	if len(sws) != 4 {
		t.Fatalf("%d switches, want 4", len(sws))
	}
	if sws[0] != f.Leaves[0] || sws[3] != f.Spines[1] {
		t.Fatal("Switches() must list leaves first")
	}
}

func TestTestbedAndLargeSimShapes(t *testing.T) {
	net := netsim.New(5)
	tb := TestbedClos(net, DefaultConfig())
	if len(tb.Hosts) != 24 || len(tb.Leaves) != 4 || len(tb.Spines) != 2 {
		t.Fatalf("testbed shape wrong: %d/%d/%d", len(tb.Hosts), len(tb.Leaves), len(tb.Spines))
	}
	net2 := netsim.New(6)
	ls := LargeSim(net2, DefaultConfig())
	if len(ls.Hosts) != 288 || len(ls.Leaves) != 12 || len(ls.Spines) != 6 {
		t.Fatalf("large-sim shape wrong: %d/%d/%d", len(ls.Hosts), len(ls.Leaves), len(ls.Spines))
	}
}

func TestQueueWeightsPropagate(t *testing.T) {
	net := netsim.New(7)
	cfg := DefaultConfig()
	w := make([]int, netsim.NumPrio)
	w[0], w[3] = 3, 7
	cfg.QueueWeights = w
	f := Star(net, 2, cfg)
	for _, h := range f.Hosts {
		if len(h.Port.Queues) != 2 {
			t.Fatalf("host NIC has %d queues, want 2", len(h.Port.Queues))
		}
	}
	for _, p := range f.Leaves[0].Ports {
		if len(p.Queues) != 2 {
			t.Fatalf("switch port has %d queues, want 2", len(p.Queues))
		}
		if p.Queue(3).Weight != 7 || p.Queue(0).Weight != 3 {
			t.Fatal("weights not propagated")
		}
	}
}

func TestFabricBandwidths(t *testing.T) {
	net := netsim.New(8)
	cfg := DefaultConfig()
	cfg.HostBW = 25 * simtime.Gbps
	cfg.FabricBW = 100 * simtime.Gbps
	f := LeafSpine(net, 2, 2, 2, cfg)
	for _, h := range f.Hosts {
		if h.Port.Bandwidth != 25*simtime.Gbps {
			t.Fatal("host bandwidth wrong")
		}
	}
	for _, s := range f.Spines {
		for _, p := range s.Ports {
			if p.Bandwidth != 100*simtime.Gbps {
				t.Fatal("fabric bandwidth wrong")
			}
		}
	}
}
