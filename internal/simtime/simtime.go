// Package simtime defines the virtual time base and unit helpers used by the
// discrete-event network simulator.
//
// All simulation clocks are expressed as integer nanoseconds (Time), which
// keeps event ordering exact and avoids floating-point drift over long runs.
// Link speeds are expressed in bits per second (Rate); buffer and packet
// sizes in bytes.
package simtime

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. The zero value is the simulation epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "1.5ms".
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration using the standard library's formatting.
func (d Duration) String() string { return time.Duration(d).String() }

// Rate is a data rate in bits per second.
type Rate float64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1e3 * BitPerSecond
	Mbps              = 1e6 * BitPerSecond
	Gbps              = 1e9 * BitPerSecond
)

// String formats the rate with an adaptive unit, e.g. "25Gbps".
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%gGbps", float64(r/Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%gMbps", float64(r/Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%gKbps", float64(r/Kbps))
	default:
		return fmt.Sprintf("%gbps", float64(r))
	}
}

// Common byte sizes.
const (
	KB = 1 << 10
	MB = 1 << 20
)

// TxTime returns the serialization delay of sending bytes at rate r.
// A zero or negative rate yields zero delay (used for ideal control links).
func TxTime(bytes int, r Rate) Duration {
	if r <= 0 {
		return 0
	}
	return Duration(float64(bytes)*8/float64(r)*float64(Second) + 0.5)
}

// BytesIn returns how many bytes rate r delivers over duration d.
func BytesIn(r Rate, d Duration) float64 {
	return float64(r) / 8 * d.Seconds()
}

// RateOf returns the rate that delivers bytes over duration d.
// A zero duration yields zero.
func RateOf(bytes int64, d Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(bytes) * 8 / d.Seconds())
}
