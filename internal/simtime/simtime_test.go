package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTxTime(t *testing.T) {
	cases := []struct {
		bytes int
		rate  Rate
		want  Duration
	}{
		{1000, 8 * Kbps, Second},              // 8000 bits at 8kbps = 1s
		{1250, 10 * Gbps, Microsecond},        // 10000 bits at 10G = 1us
		{1000, 0, 0},                          // zero rate -> ideal link
		{0, 25 * Gbps, 0},                     // empty packet
		{1 * KB, 25 * Gbps, Duration(328)},    // 8192 bits / 25e9 = 327.68ns rounded
		{1 * MB, 100 * Gbps, Duration(83886)}, // 8388608/100e9 s
	}
	for _, c := range cases {
		if got := TxTime(c.bytes, c.rate); got != c.want {
			t.Errorf("TxTime(%d, %v) = %v, want %v", c.bytes, c.rate, got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Millisecond)
	if t1.Sub(t0) != 5*Millisecond {
		t.Fatalf("Sub: got %v", t1.Sub(t0))
	}
	if t1.Seconds() != 0.005 {
		t.Fatalf("Seconds: got %v", t1.Seconds())
	}
}

func TestRateOfRoundTrip(t *testing.T) {
	// RateOf and BytesIn must be mutually consistent.
	f := func(bytes uint16, ms uint8) bool {
		if ms == 0 {
			return true
		}
		d := Duration(ms) * Millisecond
		r := RateOf(int64(bytes), d)
		back := BytesIn(r, d)
		return math.Abs(back-float64(bytes)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateOfZeroDuration(t *testing.T) {
	if RateOf(100, 0) != 0 {
		t.Fatal("RateOf with zero duration must be 0")
	}
	if RateOf(100, -Second) != 0 {
		t.Fatal("RateOf with negative duration must be 0")
	}
}

func TestRateString(t *testing.T) {
	cases := map[Rate]string{
		25 * Gbps:  "25Gbps",
		100 * Gbps: "100Gbps",
		40 * Mbps:  "40Mbps",
		5 * Kbps:   "5Kbps",
		12:         "12bps",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Rate(%v).String() = %q, want %q", float64(r), got, want)
		}
	}
}

func TestTxTimeMonotonicInBytes(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return TxTime(x, 25*Gbps) <= TxTime(y, 25*Gbps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
