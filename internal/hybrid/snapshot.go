package hybrid

import (
	"fmt"

	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// Snapshot support — barrier-driven engines only (NewBarrier). Sequential
// engines schedule their own queue events; barrier engines hold all their
// dynamic state in plain fields, so a barrier-time capture is complete.
//
// Flows serialize their path as link registration indices, not by
// re-resolving Mesh.Path on restore: a fault between a flow's admission and
// the snapshot changes what Path would return, but never what the flow
// already crossed. Link flow lists and analytic rate sums are rebuilt from
// the restored flows (both preserve registration order under removal, so
// a link's list is exactly the engine list filtered to its members).
// Callbacks cannot be serialized; RestoreState re-binds them through the
// caller's rebind function, keyed by flow id.

// SaveState writes the engine's dynamic state: mode accounting, per-link
// trigger state, and every live analytic and in-flight flow in
// registration order. Packet-mode flows are owned by their transports'
// adapters (see psim.HybridState) and saved there via SaveFlow.
func (e *Engine) SaveState(w *codec.Writer) {
	if e.q != nil {
		panic("hybrid: snapshots support barrier-driven engines only")
	}
	w.Tag("hybrid")
	w.U64(e.Stats.FlowsStarted)
	w.U64(e.Stats.AnalyticFlows)
	w.U64(e.Stats.PacketFlows)
	w.U64(e.Stats.Demotions)
	w.U64(e.Stats.Promotions)
	w.U64(e.Stats.AnalyticPayload)
	w.U64(e.Stats.Ticks)
	w.Bool(e.stopped)
	w.Int(len(e.links))
	for _, l := range e.links {
		w.Bool(l.hot)
		w.Int(l.cold)
		w.I64(int64(l.reserved))
		w.Int(l.nPacket)
		w.U64(l.lastPauseRx)
		w.Bool(l.wasDown)
	}
	w.Int(len(e.flows))
	for _, f := range e.flows {
		e.SaveFlow(w, f)
	}
	w.Int(len(e.inflight))
	for _, f := range e.inflight {
		e.SaveFlow(w, f)
	}
}

// RestoreState overlays a snapshot onto a freshly rebuilt engine with the
// same link registration (same fabric tables). rebind supplies the
// startPacket / onDone callbacks for a flow id — the same bindings the
// original StartFlow call used, so a restored flow demotes into exactly
// the transports a continuous run would have started.
func (e *Engine) RestoreState(r *codec.Reader, rebind func(id uint64) (startPacket func(*Flow, int64), onDone func(*Flow, simtime.Time))) error {
	if e.q != nil {
		panic("hybrid: snapshots support barrier-driven engines only")
	}
	r.Expect("hybrid")
	e.Stats.FlowsStarted = r.U64()
	e.Stats.AnalyticFlows = r.U64()
	e.Stats.PacketFlows = r.U64()
	e.Stats.Demotions = r.U64()
	e.Stats.Promotions = r.U64()
	e.Stats.AnalyticPayload = r.U64()
	e.Stats.Ticks = r.U64()
	e.stopped = r.Bool()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(e.links) {
		return fmt.Errorf("hybrid: snapshot has %d links, engine has %d (topology mismatch)", n, len(e.links))
	}
	for _, l := range e.links {
		l.hot = r.Bool()
		l.cold = r.Int()
		l.reserved = simtime.Rate(r.I64())
		l.nPacket = r.Int()
		l.lastPauseRx = r.U64()
		l.wasDown = r.Bool()
		l.flows = l.flows[:0]
		l.sumRate = 0
	}
	nf := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	e.flows = e.flows[:0]
	for i := 0; i < nf; i++ {
		f, err := e.RestoreFlow(r)
		if err != nil {
			return err
		}
		f.startPacket, f.onDone = rebind(f.ID)
		e.flows = append(e.flows, f)
		for _, l := range f.Path {
			l.flows = append(l.flows, f)
			l.sumRate += f.Demand
		}
	}
	ni := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	e.inflight = e.inflight[:0]
	for i := 0; i < ni; i++ {
		f, err := e.RestoreFlow(r)
		if err != nil {
			return err
		}
		f.startPacket, f.onDone = rebind(f.ID)
		e.inflight = append(e.inflight, f)
	}
	return r.Err()
}

// SaveFlow writes one flow's full dynamic state, its path encoded as link
// registration indices.
func (e *Engine) SaveFlow(w *codec.Writer, f *Flow) {
	w.Tag("hflow")
	w.U64(f.ID)
	w.I64(f.Size)
	w.Int(f.Prio)
	w.I64(int64(f.Demand))
	w.Int(len(f.Path))
	for _, l := range f.Path {
		w.Int(l.idx)
	}
	w.I64(int64(f.Start))
	w.I64(int64(f.End))
	w.Bool(f.Mode == ModePacket)
	w.I64(f.nFrames)
	w.Int(f.fullWire)
	w.Int(f.lastWire)
	w.I64(int64(f.gap))
	w.I64(int64(f.sendEnd))
	w.I64(f.frames)
	w.Bool(f.completed)
}

// RestoreFlow rebuilds one flow saved by SaveFlow, resolving its path
// against the engine's registered links. Callbacks are left nil; callers
// re-bind them (Engine.RestoreState does so through rebind; packet-mode
// flows restored by adapters need none — only PacketDone touches them).
func (e *Engine) RestoreFlow(r *codec.Reader) (*Flow, error) {
	r.Expect("hflow")
	f := e.newFlow()
	f.ID = r.U64()
	f.Size = r.I64()
	f.Prio = r.Int()
	f.Demand = simtime.Rate(r.I64())
	np := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		li := r.Int()
		if li < 0 || li >= len(e.links) {
			r.Fail("hybrid: flow path link index %d out of range", li)
			return nil, r.Err()
		}
		f.Path = append(f.Path, e.links[li])
	}
	f.Start = simtime.Time(r.I64())
	f.End = simtime.Time(r.I64())
	if r.Bool() {
		f.Mode = ModePacket
	} else {
		f.Mode = ModeAnalytic
	}
	f.nFrames = r.I64()
	f.fullWire = r.Int()
	f.lastWire = r.Int()
	f.gap = simtime.Duration(r.I64())
	f.sendEnd = simtime.Time(r.I64())
	f.frames = r.I64()
	f.completed = r.Bool()
	return f, r.Err()
}
