package hybrid

import (
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// noDemote is a startPacket spy for flows that must stay analytic.
func noDemote(t *testing.T) func(*Flow, int64) {
	return func(f *Flow, remaining int64) {
		t.Fatalf("flow %d unexpectedly demoted with %d bytes remaining", f.ID, remaining)
	}
}

// TestSoloFlowEndMatchesPacketFCT is the core exactness claim: a solo
// uncongested DCQCN flow fast-forwarded in closed form completes at the
// same instant, to the nanosecond, as the full packet-level simulation.
func TestSoloFlowEndMatchesPacketFCT(t *testing.T) {
	for _, size := range []int64{999, 1000, 1001, 64 * simtime.KB, 1 * simtime.MB} {
		// Packet-level reference.
		pnet := netsim.New(1)
		pfab := topo.Star(pnet, 2, topo.DefaultConfig())
		var ref *dcqcn.Flow
		dcqcn.Start(pnet, pfab.Hosts[0], pfab.Hosts[1], size,
			dcqcn.DefaultParams(pfab.Hosts[0].Port.Bandwidth), func(f *dcqcn.Flow) { ref = f })
		pnet.RunUntil(simtime.Time(simtime.Second))
		if ref == nil {
			t.Fatalf("size %d: packet flow did not complete", size)
		}

		// Hybrid closed form over an identical fabric.
		hnet := netsim.New(1)
		hfab := topo.Star(hnet, 2, topo.DefaultConfig())
		e := New(DefaultConfig(), hnet.Q, hnet.Tracer)
		m := ForFabric(e, hfab)
		id := hnet.NextFlowID()
		var end simtime.Time
		f := e.StartFlow(m.Path(id, hfab.Hosts[0], hfab.Hosts[1]),
			FlowOpts{ID: uint64(id), Size: size, Prio: 3, Eligible: true},
			noDemote(t),
			func(_ *Flow, at simtime.Time) { end = at })
		e.StartTicker()
		hnet.RunUntil(simtime.Time(10 * simtime.Millisecond))

		if end == 0 {
			t.Fatalf("size %d: analytic flow did not complete", size)
		}
		if end != ref.End {
			t.Fatalf("size %d: analytic end %v != packet end %v (delta %v)",
				size, end, ref.End, end.Sub(ref.End))
		}
		if got := f.AnalyticPayload(); got != size {
			t.Fatalf("size %d: analytic payload %d != size", size, got)
		}
		if e.Stats.AnalyticFlows != 1 || e.Stats.PacketFlows != 0 {
			t.Fatalf("size %d: stats %+v", size, e.Stats)
		}
	}
}

// TestSoloFlowConservesPortBytes checks the per-port wire accounting: every
// crossed port is credited exactly the flow's wire bytes, and DeliveredBytes
// matches what the packet engine would have serialized.
func TestSoloFlowConservesPortBytes(t *testing.T) {
	size := int64(1 * simtime.MB)
	net := netsim.New(1)
	fab := topo.Star(net, 2, topo.DefaultConfig())
	e := New(DefaultConfig(), net.Q, net.Tracer)
	m := ForFabric(e, fab)
	id := net.NextFlowID()
	f := e.StartFlow(m.Path(id, fab.Hosts[0], fab.Hosts[1]),
		FlowOpts{ID: uint64(id), Size: size, Prio: 3, Eligible: true},
		noDemote(t), nil)
	e.StartTicker()
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))

	wire := f.wireOf(f.nFrames)
	for _, p := range []*netsim.Port{fab.Hosts[0].Port, fab.Leaves[0].Ports[1]} {
		if p.TxBytesTotal != 0 {
			t.Fatalf("port serialized %d packet bytes in a pure analytic run", p.TxBytesTotal)
		}
		if got := p.DeliveredBytes(); got != uint64(wire) {
			t.Fatalf("port delivered %d wire bytes, want %d", got, wire)
		}
	}
	if fab.Hosts[1].Port.DeliveredBytes() != 0 {
		t.Fatal("receiver NIC egress credited bytes it never carried")
	}
}

// TestSharedBottleneckDemotesBoth: two full-demand flows into one receiver
// oversubscribe its downlink; admission of the second must demote the link
// and convert both flows with an exactly conserved byte split.
func TestSharedBottleneckDemotesBoth(t *testing.T) {
	size := int64(4 * simtime.MB)
	net := netsim.New(1)
	fab := topo.Star(net, 3, topo.DefaultConfig())
	e := New(DefaultConfig(), net.Q, net.Tracer)
	m := ForFabric(e, fab)

	handed := make(map[uint64]int64)
	spy := func(f *Flow, remaining int64) { handed[f.ID] = remaining }

	id1 := net.NextFlowID()
	f1 := e.StartFlow(m.Path(id1, fab.Hosts[0], fab.Hosts[2]),
		FlowOpts{ID: uint64(id1), Size: size, Prio: 3, Eligible: true}, spy, nil)
	net.Q.CallAt(simtime.Time(100*simtime.Microsecond), func(any) {
		id2 := net.NextFlowID()
		e.StartFlow(m.Path(id2, fab.Hosts[1], fab.Hosts[2]),
			FlowOpts{ID: uint64(id2), Size: size, Prio: 3, Eligible: true}, spy, nil)
	}, nil)
	e.StartTicker()
	net.RunUntil(simtime.Time(200 * simtime.Microsecond))

	if len(handed) != 2 {
		t.Fatalf("expected both flows demoted, got %d", len(handed))
	}
	if handed[f1.ID]+f1.AnalyticPayload() != size {
		t.Fatalf("conservation broken: analytic %d + packet %d != %d",
			f1.AnalyticPayload(), handed[f1.ID], size)
	}
	if f1.AnalyticPayload() == 0 {
		t.Fatal("first flow should have fast-forwarded some bytes before the demotion")
	}
	// The first flow's committed wire bytes must sit on its ports.
	if got := fab.Hosts[0].Port.AnalyticTxBytes; got != uint64(f1.wireOf(f1.frames)) {
		t.Fatalf("NIC analytic credit %d != committed wire %d", got, f1.wireOf(f1.frames))
	}
	if e.Stats.Demotions == 0 || e.Stats.PacketFlows != 2 {
		t.Fatalf("stats %+v", e.Stats)
	}
	if e.AnalyticFlows() != 0 {
		t.Fatalf("%d flows still analytic past a shared bottleneck", e.AnalyticFlows())
	}
}

// TestIneligibleFlowReservesDemand: a transport the fluid model cannot
// represent starts at packet level immediately, but its demand is reserved
// so analytic peers see the load; PacketDone releases it.
func TestIneligibleFlowReservesDemand(t *testing.T) {
	net := netsim.New(1)
	fab := topo.Star(net, 2, topo.DefaultConfig())
	e := New(DefaultConfig(), net.Q, net.Tracer)
	m := ForFabric(e, fab)

	var gotRemaining int64 = -1
	id := net.NextFlowID()
	path := m.Path(id, fab.Hosts[0], fab.Hosts[1])
	f := e.StartFlow(path, FlowOpts{ID: uint64(id), Size: 1 * simtime.MB, Prio: 0},
		func(_ *Flow, rem int64) { gotRemaining = rem }, nil)

	if gotRemaining != 1*simtime.MB {
		t.Fatalf("ineligible flow handed %d bytes to packet level, want full size", gotRemaining)
	}
	if path[0].reserved != f.Demand || path[0].nPacket != 1 {
		t.Fatalf("reservation not applied: reserved=%v nPacket=%d", path[0].reserved, path[0].nPacket)
	}
	e.PacketDone(f)
	if path[0].reserved != 0 || path[0].nPacket != 0 {
		t.Fatalf("reservation not released: reserved=%v nPacket=%d", path[0].reserved, path[0].nPacket)
	}
}

// TestPauseTriggerAndPromotionHysteresis: an observed PFC pause demotes the
// link; after PromoteAfter quiet windows it earns its way back.
func TestPauseTriggerAndPromotionHysteresis(t *testing.T) {
	net := netsim.New(1)
	fab := topo.Star(net, 2, topo.DefaultConfig())
	e := New(DefaultConfig(), net.Q, net.Tracer)
	m := ForFabric(e, fab)

	l := m.up[0]
	l.Port.PauseRxEvents++ // simulated PFC pause observed since last window
	e.Tick(simtime.Time(simtime.Microsecond))
	if !l.Hot() || e.Stats.Demotions != 1 {
		t.Fatalf("pause did not demote: hot=%v stats=%+v", l.Hot(), e.Stats)
	}
	if l.Port.Fidelity() != netsim.FidelityPacket {
		t.Fatal("port fidelity not marked packet after demotion")
	}
	for i := 0; i < e.Cfg.PromoteAfter; i++ {
		if !l.Hot() {
			t.Fatalf("promoted after only %d quiet windows", i)
		}
		e.Tick(simtime.Time(simtime.Duration(i+2) * simtime.Microsecond))
	}
	if l.Hot() || e.Stats.Promotions != 1 {
		t.Fatalf("hysteresis failed: hot=%v stats=%+v", l.Hot(), e.Stats)
	}
	if l.Port.Fidelity() != netsim.FidelityAnalytic {
		t.Fatal("port fidelity not restored after promotion")
	}
}

// TestEcmpGroupFaultDemotesGroup: an uplink fault re-hashes every flow of
// the ECMP group in the packet engine, so the hybrid engine must demote the
// whole group — including flows whose own uplink stayed up.
func TestEcmpGroupFaultDemotesGroup(t *testing.T) {
	net := netsim.New(1)
	fab := topo.LeafSpine(net, 2, 2, 2, topo.DefaultConfig())
	e := New(DefaultConfig(), net.Q, net.Tracer)
	m := ForFabric(e, fab)

	var handed int64 = -1
	id := net.NextFlowID()
	src, dst := fab.HostsAt[0][0], fab.HostsAt[1][0]
	path := m.Path(id, src, dst)
	f := e.StartFlow(path, FlowOpts{ID: uint64(id), Size: 64 * simtime.MB, Prio: 3, Eligible: true},
		func(_ *Flow, rem int64) { handed = rem }, nil)
	if f.Mode != ModeAnalytic {
		t.Fatal("uncongested cross-leaf flow should start analytic")
	}

	// Fail the leaf-0 uplink the flow does NOT cross.
	other := 0
	if m.uplinks[0][0] == path[1] {
		other = 1
	}
	m.uplinks[0][other].Port.SetDown(true)
	e.Tick(simtime.Time(simtime.Microsecond))

	if handed < 0 {
		t.Fatal("flow not demoted by the sibling uplink fault")
	}
	if f.AnalyticPayload()+handed != 64*simtime.MB {
		t.Fatalf("conservation broken across fault demotion: %d + %d", f.AnalyticPayload(), handed)
	}
	for _, ul := range m.uplinks[0] {
		if !ul.Hot() {
			t.Fatal("entire ECMP group should be demoted on a member fault")
		}
	}
}

// TestMeshPathAvoidsDownUplink: path resolution must mirror ecmpPick's
// alive-set filtering, hashing over the surviving uplinks only.
func TestMeshPathAvoidsDownUplink(t *testing.T) {
	net := netsim.New(1)
	fab := topo.LeafSpine(net, 2, 2, 3, topo.DefaultConfig())
	e := New(DefaultConfig(), net.Q, net.Tracer)
	m := ForFabric(e, fab)
	src, dst := fab.HostsAt[0][0], fab.HostsAt[1][0]

	// Find a flow id hashed onto spine 1, then fail that uplink.
	var id netsim.FlowID
	for {
		id = net.NextFlowID()
		if netsim.EcmpIndex(id, fab.Leaves[0].ID(), 3) == 1 {
			break
		}
	}
	fab.Uplinks[0][1].SetDown(true)
	p := m.Path(id, src, dst)
	if p[1] == m.uplinks[0][1] {
		t.Fatal("path crossed a down uplink")
	}
	// The rerouted choice must hash over the 2-member alive set {0, 2}.
	want := []int{0, 2}[netsim.EcmpIndex(id, fab.Leaves[0].ID(), 2)]
	if p[1] != m.uplinks[0][want] {
		t.Fatalf("reroute picked the wrong alive uplink")
	}
	if p[2] != m.downlinks[want][1] {
		t.Fatal("downlink does not match the rerouted spine")
	}
}

// TestBarrierModeCompletion: a barrier-driven engine (psim) detects
// completion at the first tick past End but records the exact closed-form
// End, not the tick time.
func TestBarrierModeCompletion(t *testing.T) {
	net := netsim.New(1)
	fab := topo.Star(net, 2, topo.DefaultConfig())
	now := simtime.Time(0)
	e := NewBarrier(DefaultConfig(), func() simtime.Time { return now }, net.Tracer)
	m := ForFabric(e, fab)

	id := net.NextFlowID()
	var end simtime.Time
	f := e.StartFlow(m.Path(id, fab.Hosts[0], fab.Hosts[1]),
		FlowOpts{ID: uint64(id), Size: 256 * simtime.KB, Prio: 3, Eligible: true},
		noDemote(t),
		func(_ *Flow, at simtime.Time) { end = at })

	for end == 0 {
		now = now.Add(e.Cfg.Window)
		e.Tick(now)
		if now > simtime.Time(simtime.Second) {
			t.Fatal("barrier-mode flow never completed")
		}
	}
	if end != f.End {
		t.Fatalf("completion reported %v, want exact closed-form end %v", end, f.End)
	}
	if end > now || end <= now-simtime.Time(e.Cfg.Window) {
		t.Fatalf("end %v outside the completing window ending %v", end, now)
	}
	if f.AnalyticPayload() != 256*simtime.KB {
		t.Fatalf("payload %d not fully committed", f.AnalyticPayload())
	}
}

// TestWindowCommitIsMonotonic: mid-flight windows commit whole frames only,
// and the running credit never exceeds what the pacing schedule allows.
func TestWindowCommitIsMonotonic(t *testing.T) {
	net := netsim.New(1)
	fab := topo.Star(net, 2, topo.DefaultConfig())
	now := simtime.Time(0)
	e := NewBarrier(DefaultConfig(), func() simtime.Time { return now }, net.Tracer)
	m := ForFabric(e, fab)
	id := net.NextFlowID()
	f := e.StartFlow(m.Path(id, fab.Hosts[0], fab.Hosts[1]),
		FlowOpts{ID: uint64(id), Size: 2 * simtime.MB, Prio: 3, Eligible: true},
		noDemote(t), nil)

	prev := int64(0)
	mtu := int64(e.Cfg.MTU)
	for i := 0; i < 20; i++ {
		now = now.Add(e.Cfg.Window)
		e.Tick(now)
		got := f.AnalyticPayload()
		if got < prev {
			t.Fatalf("commit went backwards: %d -> %d", prev, got)
		}
		if got%mtu != 0 && got != 2*simtime.MB {
			t.Fatalf("partial frame committed: %d", got)
		}
		// Frames paced by now: no more than elapsed/gap full frames.
		maxFrames := int64(now.Sub(f.Start) / f.gap)
		if got > maxFrames*mtu {
			t.Fatalf("committed %d bytes ahead of the pacing schedule (max %d frames)", got, maxFrames)
		}
		prev = got
	}
	if prev == 0 {
		t.Fatal("nothing committed after 20 windows")
	}
}
