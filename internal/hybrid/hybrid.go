// Package hybrid is the flow-level fast-forward engine: it advances
// uncongested traffic in closed form — max-min rate shares per link,
// frame-exact FCT and bytes-delivered integration over batched windows —
// and demotes flows to the existing packet-level engine the moment a
// deterministic trigger says packet effects (queueing, ECN marking, PFC,
// faults) could influence the outcome. The packet engine stays the source
// of truth wherever fidelity matters; the hybrid engine only skips work it
// can prove is unaffected by it.
//
// # Fluid model
//
// Every registered flow declares a demand: the rate its transport would
// pace at absent congestion feedback (for DCQCN, the sender NIC line rate —
// rc starts at InitRate = line and never moves until the first CNP). The
// engine water-fills max-min shares against link capacities, with
// packet-mode flows reserving their demand on the links they cross. Two
// deterministic facts make the fluid model *exact*, not approximate, for
// the flows it keeps:
//
//   - a flow whose max-min share equals its demand paces frames below every
//     link's capacity, so no queue builds anywhere on its path and DCQCN's
//     control loop never engages: the flow streams at exactly its demand;
//   - a flow whose share falls short of demand would build a queue at its
//     bottleneck and enter real congestion-control dynamics — it is demoted
//     on the spot, before any analytic time passes at the wrong rate.
//
// The per-link trigger adds a safety margin: a link crossed by two or more
// flows whose fluid utilization reaches DemoteUtil of capacity is demoted
// even though the fluid model says it fits, because near saturation
// packet-level frame alignment can transiently queue. Links also demote on
// observed simulated state — PFC pauses, WRED-relevant queue depth, or the
// link going administratively down — and promote back after PromoteAfter
// consecutive quiet windows. Every trigger reads simulated state only, so
// runs stay bit-reproducible and shard-safe under psim.
//
// # Conservation
//
// Analytic delivery is committed in whole frames using the same frame
// geometry the packet engine would use (MTU payload + header per frame,
// per-frame serialization rounding), so the committed payload is an exact
// integer byte count. Demotion hands the transport `Size - committed`
// bytes to send at packet level: analytic payload + packet payload == Size
// identically, and each crossed port is credited the committed wire bytes
// (netsim.Port.CreditAnalyticTx) so per-port delivered-byte totals stay
// conserved across every mode switch.
package hybrid

import (
	"math"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
)

// Mode is a flow's current fidelity.
type Mode uint8

const (
	// ModeAnalytic flows advance in closed form.
	ModeAnalytic Mode = iota
	// ModePacket flows are simulated by the packet engine; the hybrid
	// engine only tracks their demand reservation until PacketDone.
	ModePacket
)

func (m Mode) String() string {
	if m == ModeAnalytic {
		return "analytic"
	}
	return "packet"
}

// Config holds the deterministic trigger and cadence knobs.
type Config struct {
	// Window is the analytic advance cadence: committed bytes, observed
	// trigger state, and promotion hysteresis are evaluated every Window.
	Window simtime.Duration
	// DemoteUtil demotes a link shared by >=2 flows once fluid utilization
	// (analytic shares + packet-mode demand reservations) reaches this
	// fraction of capacity. Below it, paced flows cannot sustain a queue.
	DemoteUtil float64
	// QueueFrac demotes a link whose observed egress queue depth reaches
	// QueueFrac*Kmin bytes — packet traffic is approaching the WRED
	// marking region, so analytic flows sharing the port must see it.
	QueueFrac float64
	// Kmin is the WRED minimum threshold the queue trigger is scaled by,
	// in bytes (the most conservative Kmin deployed on the fabric).
	Kmin int
	// PromoteAfter is the hysteresis: a demoted link must observe this
	// many consecutive quiet windows before it serves analytic flows again.
	PromoteAfter int
	// MTU is the frame payload size the analytic frame geometry assumes;
	// it must match the transport's (netsim.DefaultMTU by default).
	MTU int
}

// DefaultConfig returns the trigger settings used by the experiments:
// 20us windows, demotion at 85% fluid utilization on shared links, queue
// trigger at half of a conservative 100KB Kmin, promotion after 3 quiet
// windows.
func DefaultConfig() Config {
	return Config{
		Window:       20 * simtime.Microsecond,
		DemoteUtil:   0.85,
		QueueFrac:    0.5,
		Kmin:         100 * simtime.KB,
		PromoteAfter: 3,
		MTU:          netsim.DefaultMTU,
	}
}

// Link is one modeled hop: a physical egress port plus the capacity the
// fluid model shares among the flows crossing it.
type Link struct {
	Port *netsim.Port

	Cap     simtime.Rate     // capacity water-filling distributes
	SerRate simtime.Rate     // per-frame serialization rate (store-and-forward)
	Delay   simtime.Duration // propagation delay of this hop

	hot  bool // demoted: no analytic admissions until promotion
	cold int  // consecutive quiet windows observed while hot

	flows    []*Flow      // analytic flows crossing, registration order
	sumRate  simtime.Rate // sum of analytic shares (== demands in equilibrium)
	reserved simtime.Rate // sum of packet-mode flows' demand reservations
	nPacket  int          // live packet-mode flows crossing

	lastPauseRx uint64 // Port.PauseRxEvents at the last trigger check
	wasDown     bool   // Port.IsDown at the last trigger check

	idx int // registration index, the snapshot codec's link identity

	// Water-filling scratch.
	avail float64
	nUn   int
}

// Hot reports whether the link is currently demoted to packet fidelity.
func (l *Link) Hot() bool { return l.hot }

// util returns fluid utilization: analytic shares plus packet reservations
// over capacity.
func (l *Link) util() float64 {
	return (float64(l.sumRate) + float64(l.reserved)) / float64(l.Cap)
}

// FlowOpts describes one flow registration.
type FlowOpts struct {
	ID   uint64 // transport flow id, for traces (0 if unassigned)
	Size int64  // payload bytes
	Prio int    // traffic class
	// Demand is the uncongested pacing rate; zero defaults to the first
	// path link's serialization rate (the sender NIC line).
	Demand simtime.Rate
	// Eligible marks the flow analytic-capable. Transports whose
	// uncongested behaviour the fluid model cannot reproduce exactly
	// (TCP slow start) must pass false: the flow runs at packet level but
	// still reserves its demand so analytic flows see its load.
	Eligible bool
}

// Flow is one registered transfer. While Mode is ModeAnalytic the engine
// owns its progress; after demotion the caller's startPacket transport owns
// it and the engine only tracks the link reservation until PacketDone.
type Flow struct {
	ID     uint64
	Size   int64
	Prio   int
	Demand simtime.Rate
	Path   []*Link

	Start simtime.Time
	// End is the closed-form completion instant (valid while analytic):
	// frame-exact sender serialization at Demand plus store-and-forward
	// latency of the last frame across the remaining hops.
	End simtime.Time

	Mode Mode

	// Frame geometry, fixed at registration.
	nFrames  int64            // ceil(Size/MTU)
	fullWire int              // MTU + header, bytes on the wire
	lastWire int              // final frame's wire bytes
	gap      simtime.Duration // full-frame pacing slot at Demand
	sendEnd  simtime.Time     // sender hands the last byte to the NIC

	frames    int64 // frames committed to the conservation ledger
	completed bool
	//acclint:ignore snapcover queue-mode completion-event mark; snapshots are taken in barrier mode (psim), which schedules no completion events
	evPending bool // a scheduled completion event still points here (queue mode)

	startPacket func(*Flow, int64)
	onDone      func(*Flow, simtime.Time)

	// Water-filling scratch.
	//acclint:ignore snapcover intra-tick water-filling scratch, recomputed from live demands at every tick
	share float64
	//acclint:ignore snapcover intra-tick water-filling scratch, recomputed from live demands at every tick
	frozen bool
}

// AnalyticPayload returns the payload bytes committed in closed form so
// far. For a demoted flow this is frozen at the demotion instant and
// satisfies AnalyticPayload() + (bytes handed to startPacket) == Size.
func (f *Flow) AnalyticPayload() int64 { return f.payloadOf(f.frames) }

// payloadOf returns the payload bytes carried by the first k frames.
func (f *Flow) payloadOf(k int64) int64 {
	if k >= f.nFrames {
		return f.Size
	}
	return k * int64(f.mtuPayload())
}

// wireOf returns the wire bytes of the first k frames.
func (f *Flow) wireOf(k int64) int64 {
	if k >= f.nFrames {
		return int64(f.nFrames-1)*int64(f.fullWire) + int64(f.lastWire)
	}
	return k * int64(f.fullWire)
}

func (f *Flow) mtuPayload() int { return f.fullWire - netsim.DataHeaderBytes }

// Engine is one hybrid-fidelity controller. It is driven either by its own
// window-batched queue events (New + StartTicker, sequential runs) or by
// explicit Tick calls at psim barriers (NewBarrier).
type Engine struct {
	//acclint:ignore snapcover construction config; restore overlays onto an engine built with the same Config
	Cfg Config

	q     *eventq.Queue
	clock func() simtime.Time

	//acclint:ignore snapcover observability wiring, re-attached at construction
	tracer *obs.Tracer

	links []*Link
	flows []*Flow // live analytic flows, registration order
	//acclint:ignore snapcover ECMP wiring registered at construction; up/down state lives on the Links
	groups [][]*Link // ECMP groups: a member's up/down flip demotes them all

	// inflight (barrier mode only) holds flows whose sender fully paced out
	// before a demotion trigger hit their path: nothing is left to hand to
	// the packet transport, so they complete analytically at End, detected
	// at ticks like every barrier-mode completion.
	inflight []*Flow

	// Stats feed the run manifest (obs.Run.AddFidelity).
	Stats obs.FidelitySummary

	// Pre-bound callbacks so window ticks and completions ride eventq's
	// pooled zero-alloc scheduling path.
	tickFn     func(any)
	completeFn func(any)
	stopped    bool

	// free recycles finished Flow objects (path capacity included) so
	// steady-state flow churn allocates nothing.
	free []*Flow
}

// New returns an engine scheduling its own advance windows and exact-time
// completions on q. Call StartTicker after registering links.
func New(cfg Config, q *eventq.Queue, tracer *obs.Tracer) *Engine {
	e := &Engine{Cfg: cfg, q: q, clock: q.Now, tracer: tracer}
	e.tickFn = e.tickEvent
	e.completeFn = e.completeEvent
	return e
}

// NewBarrier returns an engine for barrier-driven runs (psim): the caller
// invokes Tick at every barrier and clock reports the current barrier time.
// Analytic completions fire at the first tick at-or-after their exact End;
// the recorded End itself stays frame-exact.
func NewBarrier(cfg Config, clock func() simtime.Time, tracer *obs.Tracer) *Engine {
	return &Engine{Cfg: cfg, clock: clock, tracer: tracer}
}

// AddLink registers one modeled hop over a physical port, sharing the
// port's line rate at its propagation delay, and marks the port analytic.
func (e *Engine) AddLink(p *netsim.Port) *Link {
	l := &Link{Port: p, Cap: p.Bandwidth, SerRate: p.Bandwidth, Delay: p.Delay, idx: len(e.links)}
	p.SetFidelity(netsim.FidelityAnalytic)
	e.links = append(e.links, l)
	return l
}

// AddGroup registers an ECMP group: when any member link's up/down state
// flips, the packet engine re-hashes every flow of the group onto the new
// alive set, so the fluid model's per-uplink path assignments go stale. The
// engine responds by demoting the whole group — the packet engine then
// routes every affected flow with real per-packet ECMP, and the links earn
// their way back analytic through the normal promotion hysteresis.
func (e *Engine) AddGroup(links []*Link) {
	e.groups = append(e.groups, links)
}

// StartTicker arms the self-re-arming window advance event (sequential
// engines only).
func (e *Engine) StartTicker() {
	if e.q == nil {
		panic("hybrid: StartTicker on a barrier-driven engine")
	}
	e.q.CallAfter(e.Cfg.Window, e.tickFn, nil)
}

// Stop halts the ticker after the current window; completions already
// scheduled still fire.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) tickEvent(any) {
	if e.stopped {
		return
	}
	e.Tick(e.q.Now())
	e.q.CallAfter(e.Cfg.Window, e.tickFn, nil)
}

// StartFlow registers a transfer over path (copied: callers may reuse the
// slice, e.g. Mesh.Path's scratch). startPacket launches the packet-level
// transport for the given remaining payload bytes — called synchronously
// (now, or at a later trigger instant) exactly once unless the flow
// completes analytically. onDone fires only for analytic completion, at
// the flow's exact closed-form End; packet-mode completion belongs to the
// transport, which must then call PacketDone. The returned Flow may be
// recycled by a later StartFlow once it has fully completed, so callers
// must not retain it past the callback that observed completion.
func (e *Engine) StartFlow(path []*Link, o FlowOpts, startPacket func(*Flow, int64), onDone func(*Flow, simtime.Time)) *Flow {
	now := e.clock()
	mtu := e.Cfg.MTU
	if mtu <= 0 {
		mtu = netsim.DefaultMTU
	}
	demand := o.Demand
	if demand <= 0 {
		demand = path[0].SerRate
	}
	f := e.newFlow()
	f.ID, f.Size, f.Prio, f.Demand = o.ID, o.Size, o.Prio, demand
	f.Path = append(f.Path, path...)
	f.Start = now
	f.startPacket, f.onDone = startPacket, onDone
	f.nFrames = (o.Size + int64(mtu) - 1) / int64(mtu)
	if f.nFrames == 0 {
		f.nFrames = 1
	}
	f.fullWire = mtu + netsim.DataHeaderBytes
	last := o.Size - (f.nFrames-1)*int64(mtu)
	f.lastWire = int(last) + netsim.DataHeaderBytes
	f.gap = simtime.TxTime(f.fullWire, demand)
	f.sendEnd = now.Add(simtime.Duration(f.nFrames-1) * f.gap).Add(simtime.TxTime(f.lastWire, demand))
	e.Stats.FlowsStarted++

	if !o.Eligible || e.pathBlocked(path) {
		e.toPacket(f, now)
		// The new reservation may push shared links over a trigger; apply
		// it now so analytic peers demote at this instant, not a window
		// later.
		e.refill(now)
		return f
	}

	// Tentative analytic admission, then re-fill; the fill may demote this
	// flow (and any peers its arrival pushes over a trigger) immediately.
	e.flows = append(e.flows, f)
	for _, l := range path {
		l.flows = append(l.flows, f)
		l.sumRate += demand
	}
	e.refill(now)
	if f.Mode == ModeAnalytic {
		f.End = e.endTime(f)
		if e.q != nil {
			f.evPending = true
			e.q.CallAt(f.End, e.completeFn, f)
		}
	}
	return f
}

// newFlow takes a recycled Flow from the free list (path capacity
// retained) or allocates one.
func (e *Engine) newFlow() *Flow {
	if n := len(e.free); n > 0 {
		f := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		path := f.Path[:0]
		*f = Flow{Path: path}
		return f
	}
	return &Flow{}
}

// release returns a finished flow to the free list. Deferred while a
// completion event still points at the flow (a demoted flow's stale event
// must fire its no-op before the object can be reused) and until the flow
// has actually completed.
func (e *Engine) release(f *Flow) {
	if !f.completed || f.evPending {
		return
	}
	e.free = append(e.free, f)
}

// pathBlocked reports whether any hop refuses analytic admission.
func (e *Engine) pathBlocked(path []*Link) bool {
	for _, l := range path {
		if l.hot || l.Port.IsDown() {
			return true
		}
	}
	return false
}

// endTimeAt computes the closed-form completion instant: the sender
// injects frame i at start + i*gap (the transport's pacing schedule), and
// the last frame store-and-forwards across the hops. Full frames never
// queue on an analytic path (every hop serializes at least as fast as the
// pacing rate), but the smaller final frame catches up to its full-sized
// predecessor and must wait for it hop by hop — the max term. Per-frame
// TxTime rounding matches the packet engine's arithmetic exactly, so on an
// otherwise idle path this is the nanosecond the packet engine would
// deliver the last byte.
func (f *Flow) endTimeAt(start simtime.Time) simtime.Time {
	last := start.Add(simtime.Duration(f.nFrames-1) * f.gap)
	multi := f.nFrames > 1
	var full simtime.Time
	if multi {
		full = start.Add(simtime.Duration(f.nFrames-2) * f.gap)
	}
	for _, l := range f.Path {
		if multi {
			full = full.Add(simtime.TxTime(f.fullWire, l.SerRate))
			if full > last {
				last = full
			}
			full = full.Add(l.Delay)
		}
		last = last.Add(simtime.TxTime(f.lastWire, l.SerRate)).Add(l.Delay)
	}
	return last
}

func (e *Engine) endTime(f *Flow) simtime.Time { return f.endTimeAt(f.Start) }

// commitTo advances the conservation ledger to the frames the sender has
// fully paced out by time t, crediting their wire bytes to every crossed
// port. Integer frame arithmetic: the committed payload is exact.
func (e *Engine) commitTo(f *Flow, t simtime.Time) {
	var target int64
	switch {
	case t >= f.sendEnd:
		target = f.nFrames
	case t <= f.Start:
		target = 0
	default:
		target = int64(t.Sub(f.Start) / f.gap)
		if target > f.nFrames-1 {
			target = f.nFrames - 1
		}
	}
	if target <= f.frames {
		return
	}
	wire := uint64(f.wireOf(target) - f.wireOf(f.frames))
	for _, l := range f.Path {
		l.Port.CreditAnalyticTx(f.Prio, wire)
	}
	e.Stats.AnalyticPayload += uint64(f.payloadOf(target) - f.payloadOf(f.frames))
	f.frames = target
}

// completeEvent fires at a flow's exact End (sequential engines). Stale
// events — the flow demoted after scheduling — are no-ops beyond clearing
// the reuse latch.
func (e *Engine) completeEvent(arg any) {
	f := arg.(*Flow)
	f.evPending = false
	if f.Mode != ModeAnalytic || f.completed {
		e.release(f)
		return
	}
	e.complete(f, f.End)
	e.release(f)
}

func (e *Engine) complete(f *Flow, end simtime.Time) {
	f.completed = true
	e.commitTo(f, f.sendEnd)
	e.detach(f)
	e.Stats.AnalyticFlows++
	if f.onDone != nil {
		f.onDone(f, end)
	}
}

// detach removes an analytic flow from the engine and its links.
func (e *Engine) detach(f *Flow) {
	for _, l := range f.Path {
		l.sumRate -= f.Demand
		l.flows = removeFlow(l.flows, f)
	}
	e.flows = removeFlow(e.flows, f)
}

// removeFlow deletes f preserving registration order.
func removeFlow(s []*Flow, f *Flow) []*Flow {
	for i, g := range s {
		if g == f {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = nil
			return s[:len(s)-1]
		}
	}
	return s
}

// toPacket converts a flow to packet fidelity at time t: commit the
// analytic ledger, reserve the flow's demand on its links, and hand the
// transport the exact remainder. A flow whose sender already paced out
// every frame has nothing left to send — its tail is in flight on a path
// that was uncongested while it was committed — so it is not converted and
// completes analytically at its closed-form End.
func (e *Engine) toPacket(f *Flow, t simtime.Time) {
	if f.Mode == ModeAnalytic && !f.completed {
		e.commitTo(f, t)
		if f.frames >= f.nFrames {
			if e.q == nil {
				e.inflight = append(e.inflight, f)
			}
			return // completion event (queue mode) or tick scan (barrier mode)
		}
	}
	f.Mode = ModePacket
	for _, l := range f.Path {
		l.reserved += f.Demand
		l.nPacket++
	}
	e.Stats.PacketFlows++
	remaining := f.Size - f.AnalyticPayload()
	f.startPacket(f, remaining)
}

// PacketDone releases a packet-mode flow's demand reservation; transports
// call it from their completion callback. It mutates link state shared by
// every flow crossing the path, so in barrier-driven sharded runs it must
// only be called with the shards quiescent — psim.ApplyHybrid records
// completions in per-flow slots and drains them at the next barrier.
func (e *Engine) PacketDone(f *Flow) {
	if f.Mode != ModePacket || f.completed {
		return
	}
	f.completed = true
	for _, l := range f.Path {
		l.reserved -= f.Demand
		l.nPacket--
	}
	e.release(f)
}

// demoteLink demotes one link: mark it hot, then convert every analytic
// flow crossing it (in global registration order) at time t.
func (e *Engine) demoteLink(l *Link, t simtime.Time) {
	if l.hot {
		return
	}
	l.hot = true
	l.cold = 0
	l.Port.SetFidelity(netsim.FidelityPacket)
	e.Stats.Demotions++
	e.tracer.FidelityDemote(t, l.Port.Owner.ID(), l.Port.Index, len(l.flows), l.util())
	for len(l.flows) > 0 {
		f := l.flows[0]
		e.detach(f)
		e.toPacket(f, t)
	}
}

// refill recomputes max-min shares and applies the fluid demotion
// triggers, repeating until the share assignment is trigger-free: each
// demotion converts flows to packet reservations, which changes the
// water-filling problem for the flows that remain.
func (e *Engine) refill(now simtime.Time) {
	for {
		e.waterfill()
		if !e.applyFluidTriggers(now) {
			return
		}
	}
}

// waterfill computes max-min shares by progressive filling: every round
// raises all unfrozen flows by the largest uniform increment no link or
// demand permits exceeding, then freezes saturated flows.
func (e *Engine) waterfill() {
	for _, l := range e.links {
		l.avail = float64(l.Cap) - float64(l.reserved)
		if l.avail < 0 {
			l.avail = 0
		}
		l.nUn = len(l.flows)
	}
	unfrozen := 0
	for _, f := range e.flows {
		f.share = 0
		f.frozen = false
		unfrozen++
	}
	for unfrozen > 0 {
		inc := math.Inf(1)
		for _, l := range e.links {
			if l.nUn > 0 {
				if v := l.avail / float64(l.nUn); v < inc {
					inc = v
				}
			}
		}
		for _, f := range e.flows {
			if !f.frozen {
				if v := float64(f.Demand) - f.share; v < inc {
					inc = v
				}
			}
		}
		if inc < 0 {
			inc = 0
		}
		for _, f := range e.flows {
			if !f.frozen {
				f.share += inc
			}
		}
		froze := 0
		for _, f := range e.flows {
			if f.frozen {
				continue
			}
			sat := f.share >= float64(f.Demand)*(1-1e-12)
			if !sat {
				for _, l := range f.Path {
					if l.avail-inc*float64(l.nUn) <= 1e-9*float64(l.Cap) {
						sat = true
						break
					}
				}
			}
			if sat {
				f.frozen = true
				froze++
			}
		}
		for _, l := range e.links {
			if l.nUn == 0 {
				continue
			}
			l.avail -= inc * float64(l.nUn)
			if l.avail < 0 {
				l.avail = 0
			}
			n := 0
			for _, f := range l.flows {
				if !f.frozen {
					n++
				}
			}
			l.nUn = n
		}
		unfrozen -= froze
		if froze == 0 {
			// Numerical stall: freeze everything at current shares.
			for _, f := range e.flows {
				f.frozen = true
			}
			unfrozen = 0
		}
	}

}

// applyFluidTriggers demotes links the current share assignment disqualifies
// and reports whether anything changed. Link-order evaluation keeps the
// conversion sequence deterministic regardless of which condition fired.
func (e *Engine) applyFluidTriggers(now simtime.Time) bool {
	changed := false
	// Near-saturation trigger: a shared link at DemoteUtil of capacity.
	for _, l := range e.links {
		if l.hot || len(l.flows) == 0 {
			continue
		}
		if len(l.flows)+l.nPacket >= 2 && l.fluidShare()+float64(l.reserved) >= e.Cfg.DemoteUtil*float64(l.Cap) {
			e.demoteLink(l, now)
			changed = true
		}
	}
	if changed {
		return true
	}
	// Bottleneck trigger: a flow whose share fell short of demand would
	// queue at its saturated hop and enter real congestion control.
	for _, f := range e.flows {
		if f.share >= float64(f.Demand)*(1-1e-9) {
			continue
		}
		for _, l := range f.Path {
			if l.avail <= 1e-9*float64(l.Cap) {
				e.demoteLink(l, now)
				changed = true
			}
		}
		if f.Mode == ModeAnalytic {
			// No saturated hop identified (numerical stall): demote the
			// flow's first hop directly so the flow converts.
			e.demoteLink(f.Path[0], now)
			changed = true
		}
		// demoteLink compacted e.flows mid-range; shares are now stale, so
		// hand control back for a fresh water-fill before scanning further.
		return true
	}
	return changed
}

// fluidShare sums the water-filled shares of the link's analytic flows.
func (l *Link) fluidShare() float64 {
	s := 0.0
	for _, f := range l.flows {
		s += f.share
	}
	return s
}

// Tick advances one window at time now: complete flows past their End
// (barrier-driven engines), commit the conservation ledger, and evaluate
// the observed-state triggers and promotion hysteresis on every link.
func (e *Engine) Tick(now simtime.Time) {
	e.Stats.Ticks++
	// Completions first (barrier mode; sequential engines already fired
	// them as exact-time events and the guard below sees Mode/completed).
	for i := 0; i < len(e.flows); {
		f := e.flows[i]
		if !f.completed && f.End <= now {
			e.complete(f, f.End)
			e.release(f)
			continue // complete compacted e.flows
		}
		i++
	}
	for i := 0; i < len(e.inflight); {
		f := e.inflight[i]
		if !f.completed && f.End > now {
			i++
			continue
		}
		if !f.completed {
			e.complete(f, f.End)
		}
		e.inflight = removeFlow(e.inflight, f)
		e.release(f)
	}
	for _, f := range e.flows {
		e.commitTo(f, now)
	}
	// ECMP re-hash guard: any up/down flip inside a group invalidates the
	// per-uplink path assignment of every flow hashed across it (see
	// AddGroup). Runs before per-link checks so wasDown still holds the
	// previous window's state.
	for _, g := range e.groups {
		for _, l := range g {
			if l.Port.IsDown() != l.wasDown {
				for _, gl := range g {
					e.demoteLink(gl, now)
				}
				break
			}
		}
	}
	for _, l := range e.links {
		e.checkLink(l, now)
	}
}

// checkLink applies the observed-state triggers (simulated state only) and
// the promotion hysteresis to one link.
func (e *Engine) checkLink(l *Link, now simtime.Time) {
	p := l.Port
	paused := p.PauseRxEvents > l.lastPauseRx
	l.lastPauseRx = p.PauseRxEvents
	l.wasDown = p.IsDown()
	depth := 0
	for _, q := range p.Queues {
		if q.Bytes() > depth {
			depth = q.Bytes()
		}
	}
	queueHot := float64(depth) >= e.Cfg.QueueFrac*float64(e.Cfg.Kmin)
	if p.IsDown() || paused || queueHot {
		e.demoteLink(l, now)
		l.cold = 0
		return
	}
	if !l.hot {
		return
	}
	// Quiet window: fluid load below the trigger and no packet symptoms.
	if l.util() < e.Cfg.DemoteUtil {
		l.cold++
	} else {
		l.cold = 0
	}
	if l.cold >= e.Cfg.PromoteAfter {
		l.hot = false
		l.cold = 0
		p.SetFidelity(netsim.FidelityAnalytic)
		e.Stats.Promotions++
		e.tracer.FidelityPromote(now, p.Owner.ID(), p.Index, e.Cfg.PromoteAfter)
	}
}

// AnalyticFlows returns the number of live analytic flows.
func (e *Engine) AnalyticFlows() int { return len(e.flows) }

// Links returns the registered links (read-only; used by adapters/tests).
func (e *Engine) Links() []*Link { return e.links }
