package hybrid

import (
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/topo"
)

// Mesh maps a built fabric onto hybrid links and resolves per-flow paths
// with the packet engine's own ECMP hash, so a flow fast-forwarded in
// closed form crosses exactly the physical ports its packets would have
// crossed — per-spine uplinks included, because hash collisions congest
// individual uplinks and an aggregate trunk model would never see it.
type Mesh struct {
	Eng *Engine

	up        []*Link   // per host index (leaf-major): the host NIC egress
	downHost  [][]*Link // [leaf][slot]: leaf port toward that host
	uplinks   [][]*Link // [leaf][spine] (leaf-spine fabrics only)
	downlinks [][]*Link // [spine][leaf]

	leafID   []int // node id per leaf, for the ECMP hash
	hostLeaf []int // per host index: serving leaf
	hostSlot []int // per host index: position within the leaf
	hostIdx  []int // node id -> host index (-1 for switches)

	alive []int   // Path scratch: alive spine indices during a fault
	path  []*Link // Path scratch: the returned hop sequence, reused per call
}

// ForTables registers every data-path egress port of a leaf–spine fabric
// as a hybrid link, from the four physical port tables: hostUp[l][i] (host
// NIC), leafDown[l][i] (leaf port toward that host), leafUp[l][s] and
// spineDown[s][l] (nil/empty for single-switch fabrics). Both the
// sequential topo.Fabric build and the sharded psim engine expose exactly
// these tables, and both index them identically, so link registration
// order — and with it every link-ordered trigger decision — is the same in
// every engine layout. Each leaf's uplink row is registered as one ECMP
// group (see Engine.AddGroup).
func ForTables(e *Engine, hostUp, leafDown, leafUp, spineDown [][]*netsim.Port) *Mesh {
	m := &Mesh{Eng: e}
	maxID := 0
	for _, row := range hostUp {
		for _, p := range row {
			if id := p.Owner.ID(); id > maxID {
				maxID = id
			}
		}
	}
	m.hostIdx = make([]int, maxID+1)
	for i := range m.hostIdx {
		m.hostIdx[i] = -1
	}
	for l, row := range hostUp {
		for slot, p := range row {
			i := len(m.up)
			m.up = append(m.up, e.AddLink(p))
			m.hostLeaf = append(m.hostLeaf, l)
			m.hostSlot = append(m.hostSlot, slot)
			m.hostIdx[p.Owner.ID()] = i
		}
	}
	m.downHost = make([][]*Link, len(leafDown))
	m.leafID = make([]int, len(leafDown))
	for l, row := range leafDown {
		m.downHost[l] = make([]*Link, len(row))
		for slot, p := range row {
			m.leafID[l] = p.Owner.ID()
			m.downHost[l][slot] = e.AddLink(p)
		}
	}
	if len(leafUp) > 0 {
		m.uplinks = make([][]*Link, len(leafUp))
		for l, row := range leafUp {
			m.uplinks[l] = make([]*Link, len(row))
			for s, p := range row {
				m.uplinks[l][s] = e.AddLink(p)
			}
			// Each leaf's uplinks form one ECMP group: a member flipping
			// up/down re-hashes every flow crossing the group.
			e.AddGroup(m.uplinks[l])
		}
		m.downlinks = make([][]*Link, len(spineDown))
		for s, row := range spineDown {
			m.downlinks[s] = make([]*Link, len(row))
			for l, p := range row {
				m.downlinks[s][l] = e.AddLink(p)
			}
		}
	}
	return m
}

// ForFabric builds the Mesh over a sequential topo build (Star, LeafSpine,
// and derivatives) by assembling its port tables and delegating to
// ForTables.
func ForFabric(e *Engine, f *topo.Fabric) *Mesh {
	hostUp := make([][]*netsim.Port, len(f.HostsAt))
	leafDown := make([][]*netsim.Port, len(f.HostsAt))
	for l, hosts := range f.HostsAt {
		hostUp[l] = make([]*netsim.Port, len(hosts))
		leafDown[l] = make([]*netsim.Port, len(hosts))
		for i, h := range hosts {
			hostUp[l][i] = h.Port
			// Host-facing leaf ports are created in attachment order,
			// before any uplinks, so i indexes the leaf's ports directly.
			leafDown[l][i] = f.Leaves[l].Ports[i]
		}
	}
	return ForTables(e, hostUp, leafDown, f.Uplinks, f.Downlinks)
}

// Path resolves the egress-port sequence flow id would traverse from src to
// dst. Cross-leaf paths pick the spine with netsim.EcmpIndex — the packet
// engine's own hash over (flow id, source leaf node id) — so the fluid
// model loads the same physical uplink ECMP would. The returned slice is
// scratch reused by the next Path call; Engine.StartFlow copies it, so
// callers that retain a path must copy it themselves.
func (m *Mesh) Path(id netsim.FlowID, src, dst *netsim.Host) []*Link {
	si, di := m.hostIdx[src.ID()], m.hostIdx[dst.ID()]
	sl, dl := m.hostLeaf[si], m.hostLeaf[di]
	if sl == dl {
		m.path = append(m.path[:0], m.up[si], m.downHost[dl][m.hostSlot[di]])
		return m.path
	}
	// Hash over the alive uplinks only, exactly like Switch.ecmpPick: a
	// down uplink shrinks the candidate set before the modulo.
	row := m.uplinks[sl]
	m.alive = m.alive[:0]
	for s, lk := range row {
		if !lk.Port.IsDown() {
			m.alive = append(m.alive, s)
		}
	}
	var s int
	if len(m.alive) == len(row) {
		s = netsim.EcmpIndex(id, m.leafID[sl], len(row))
	} else if len(m.alive) == 0 {
		s = 0 // no alive uplink: the blocked path demotes the flow at start
	} else {
		s = m.alive[netsim.EcmpIndex(id, m.leafID[sl], len(m.alive))]
	}
	m.path = append(m.path[:0],
		m.up[si],
		m.uplinks[sl][s],
		m.downlinks[s][dl],
		m.downHost[dl][m.hostSlot[di]],
	)
	return m.path
}
