package hybrid

import (
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// TestDifferentialPerFlowFCT drives a 16-host leaf-spine permutation matrix
// through both engines and checks the tentpole's accuracy contract: every
// flow's hybrid FCT within 1% of the packet-level engine. The load is
// uncongested (each uplink carries at most three 25G flows), so the hybrid
// run keeps all flows analytic; the residual error is the packet engine's
// real store-and-forward interleaving jitter at shared fabric ports, which
// the closed form deliberately ignores below the demotion threshold.
func TestDifferentialPerFlowFCT(t *testing.T) {
	const (
		nHosts = 16
		size   = int64(1 * simtime.MB)
	)
	stagger := 5 * simtime.Microsecond

	// Packet-level reference run.
	pktFCT := make([]simtime.Duration, nHosts)
	{
		net := netsim.New(1)
		fab := topo.LeafSpine(net, 4, 4, 4, topo.DefaultConfig())
		params := dcqcn.DefaultParams(fab.Hosts[0].Port.Bandwidth)
		for i := 0; i < nHosts; i++ {
			i := i
			src, dst := fab.Hosts[i], fab.Hosts[(i+5)%nHosts]
			net.Q.CallAt(simtime.Time(simtime.Duration(i)*stagger), func(any) {
				dcqcn.Start(net, src, dst, size, params, func(f *dcqcn.Flow) {
					pktFCT[i] = f.End.Sub(f.Start)
				})
			}, nil)
		}
		net.RunUntil(simtime.Time(100 * simtime.Millisecond))
	}

	// Hybrid run: identical schedule, ids pre-drawn in the same order.
	hybFCT := make([]simtime.Duration, nHosts)
	var eng *Engine
	{
		net := netsim.New(1)
		fab := topo.LeafSpine(net, 4, 4, 4, topo.DefaultConfig())
		eng = New(DefaultConfig(), net.Q, net.Tracer)
		m := ForFabric(eng, fab)
		for i := 0; i < nHosts; i++ {
			i := i
			src, dst := fab.Hosts[i], fab.Hosts[(i+5)%nHosts]
			net.Q.CallAt(simtime.Time(simtime.Duration(i)*stagger), func(any) {
				id := net.NextFlowID()
				eng.StartFlow(m.Path(id, src, dst),
					FlowOpts{ID: uint64(id), Size: size, Prio: 3, Eligible: true},
					func(f *Flow, remaining int64) {
						t.Errorf("flow %d demoted with %d bytes left; matrix should stay analytic", i, remaining)
					},
					func(f *Flow, end simtime.Time) {
						hybFCT[i] = end.Sub(f.Start)
					})
			}, nil)
		}
		eng.StartTicker()
		net.RunUntil(simtime.Time(100 * simtime.Millisecond))
	}

	if eng.Stats.AnalyticFlows != nHosts {
		t.Fatalf("only %d/%d flows completed analytically (%+v)", eng.Stats.AnalyticFlows, nHosts, eng.Stats)
	}
	for i := 0; i < nHosts; i++ {
		if pktFCT[i] == 0 || hybFCT[i] == 0 {
			t.Fatalf("flow %d incomplete: packet %v hybrid %v", i, pktFCT[i], hybFCT[i])
		}
		err := float64(hybFCT[i]-pktFCT[i]) / float64(pktFCT[i])
		if err < 0 {
			err = -err
		}
		if err > 0.01 {
			t.Errorf("flow %d: hybrid FCT %v vs packet %v (%.3f%% > 1%%)",
				i, hybFCT[i], pktFCT[i], err*100)
		}
	}
}

// TestDifferentialConservationUnderChurn runs an oversubscribed wave on a
// star and checks fabric-wide byte conservation across every mode switch:
// each receiver gets exactly its flows' payload, and per-port delivered
// wire bytes (packet + analytic credit) account for every committed frame.
func TestDifferentialConservationUnderChurn(t *testing.T) {
	const senders = 4
	size := int64(2 * simtime.MB)
	net := netsim.New(7)
	fab := topo.Star(net, senders+1, topo.DefaultConfig())
	recv := fab.Hosts[senders]
	eng := New(DefaultConfig(), net.Q, net.Tracer)
	m := ForFabric(eng, fab)
	params := dcqcn.DefaultParams(fab.Hosts[0].Port.Bandwidth)

	done := 0
	var analyticWire uint64
	for i := 0; i < senders; i++ {
		src := fab.Hosts[i]
		// Staggered so the first flow fast-forwards alone before the wave
		// oversubscribes the receiver downlink and demotes everything.
		at := simtime.Time(simtime.Duration(i) * 50 * simtime.Microsecond)
		net.Q.CallAt(at, func(any) {
			id := net.NextFlowID()
			eng.StartFlow(m.Path(id, src, recv),
				FlowOpts{ID: uint64(id), Size: size, Prio: 3, Eligible: true},
				func(f *Flow, remaining int64) {
					if f.AnalyticPayload()+remaining != size {
						t.Errorf("split not conserved: %d + %d != %d", f.AnalyticPayload(), remaining, size)
					}
					analyticWire += uint64(f.wireOf(f.frames))
					dcqcn.StartSender(net, netsim.FlowID(f.ID), src, recv.ID(), remaining, params)
					dcqcn.StartReceiver(netsim.FlowID(f.ID), src.ID(), recv, remaining, params, func(*dcqcn.Receiver) {
						eng.PacketDone(f)
						done++
					})
				},
				func(*Flow, simtime.Time) { done++ })
		}, nil)
	}
	eng.StartTicker()
	net.RunUntil(simtime.Time(simtime.Second))

	if done != senders {
		t.Fatalf("%d/%d flows completed", done, senders)
	}
	if eng.Stats.Demotions == 0 {
		t.Fatal("wave never demoted the shared downlink; churn test proves nothing")
	}
	// The receiver downlink carried every flow: its packet bytes plus
	// analytic credit must equal the total wire bytes of all four flows.
	down := fab.Leaves[0].Ports[senders]
	if got := down.AnalyticTxBytes; got != analyticWire {
		t.Fatalf("downlink analytic credit %d != committed wire %d", got, analyticWire)
	}
	frames := (size + netsim.DefaultMTU - 1) / netsim.DefaultMTU
	perFlowWire := uint64(size + frames*netsim.DataHeaderBytes)
	if got, want := down.DeliveredBytes(), senders*perFlowWire; got != uint64(want) {
		t.Fatalf("downlink delivered %d wire bytes, want %d", got, want)
	}
}
