package stats

import (
	"math"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

func TestByClassGroupsAndSorts(t *testing.T) {
	us := func(n int64) simtime.Time { return simtime.Time(n * int64(simtime.Microsecond)) }
	recs := []FlowRecord{
		{Size: 1000, Start: us(0), End: us(10), Class: "web"},
		{Size: 2000, Start: us(0), End: us(20), Class: "bulk"},
		{Size: 3000, Start: us(5), End: us(15), Class: "web"},
	}
	classes := ByClass(recs)
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(classes))
	}
	// Deterministic order: sorted by class name.
	if classes[0].Class != "bulk" || classes[1].Class != "web" {
		t.Fatalf("classes not sorted by name: %s, %s", classes[0].Class, classes[1].Class)
	}
	if classes[1].Count != 2 || classes[1].Bytes != 4000 {
		t.Fatalf("web summary wrong: count=%d bytes=%d", classes[1].Count, classes[1].Bytes)
	}
	if classes[0].MeanGbps <= 0 {
		t.Fatal("bulk mean goodput not positive")
	}
	if ByClass(nil) != nil {
		t.Fatal("empty input must summarize to nil")
	}
}

func TestJain(t *testing.T) {
	if j := Jain([]float64{5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: Jain %v, want 1", j)
	}
	// One active user out of n: index collapses to 1/n.
	if j := Jain([]float64{9, 0, 0}); math.Abs(j-1.0/3) > 1e-12 {
		t.Fatalf("single active share: Jain %v, want 1/3", j)
	}
	if j := Jain(nil); j != 0 {
		t.Fatalf("empty shares: Jain %v, want 0", j)
	}
	if j := Jain([]float64{0, 0}); j != 0 {
		t.Fatalf("all-zero shares: Jain %v, want 0", j)
	}
	mixed := Jain([]float64{1, 2, 3})
	if mixed <= 1.0/3 || mixed >= 1 {
		t.Fatalf("mixed shares: Jain %v outside (1/3, 1)", mixed)
	}
}
