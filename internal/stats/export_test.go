package stats

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

func TestWriteSeriesCSVRoundTrip(t *testing.T) {
	var s Series
	times := []simtime.Time{0, simtime.Time(simtime.Microsecond), simtime.Time(3 * simtime.Millisecond)}
	vals := []float64{0, 12.5, 99.125}
	for i := range times {
		s.Add(times[i], vals[i])
	}
	var b strings.Builder
	if err := WriteSeriesCSV(&b, &s, "qlen_kb"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != len(times)+1 {
		t.Fatalf("got %d CSV rows, want header + %d", len(recs), len(times))
	}
	if recs[0][0] != "time_s" || recs[0][1] != "qlen_kb" {
		t.Errorf("header = %v, want [time_s qlen_kb]", recs[0])
	}
	for i := range times {
		ts, err := strconv.ParseFloat(recs[i+1][0], 64)
		if err != nil {
			t.Fatalf("row %d time %q: %v", i, recs[i+1][0], err)
		}
		if ts != times[i].Seconds() {
			t.Errorf("row %d time = %v, want %v", i, ts, times[i].Seconds())
		}
		v, err := strconv.ParseFloat(recs[i+1][1], 64)
		if err != nil {
			t.Fatalf("row %d value %q: %v", i, recs[i+1][1], err)
		}
		if v != vals[i] {
			t.Errorf("row %d value = %v, want %v", i, v, vals[i])
		}
	}
}

func TestWriteFCTCSVRoundTrip(t *testing.T) {
	in := []FlowRecord{
		{Size: 1500, Start: 0, End: simtime.Time(480 * simtime.Nanosecond), Class: "rdma"},
		{Size: 10 << 20, Start: simtime.Time(simtime.Millisecond), End: simtime.Time(4 * simtime.Millisecond), Class: "tcp"},
	}
	var b strings.Builder
	if err := WriteFCTCSV(&b, in); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != len(in)+1 {
		t.Fatalf("got %d CSV rows, want header + %d", len(recs), len(in))
	}
	want := []string{"size_bytes", "start_s", "end_s", "fct_s", "class"}
	for i, col := range want {
		if recs[0][i] != col {
			t.Errorf("header[%d] = %q, want %q", i, recs[0][i], col)
		}
	}
	for i, r := range in {
		row := recs[i+1]
		if size, _ := strconv.ParseInt(row[0], 10, 64); size != r.Size {
			t.Errorf("row %d size = %s, want %d", i, row[0], r.Size)
		}
		start, _ := strconv.ParseFloat(row[1], 64)
		end, _ := strconv.ParseFloat(row[2], 64)
		fct, _ := strconv.ParseFloat(row[3], 64)
		if start != r.Start.Seconds() || end != r.End.Seconds() {
			t.Errorf("row %d times = (%v,%v), want (%v,%v)", i, start, end, r.Start.Seconds(), r.End.Seconds())
		}
		if fct != r.FCT().Seconds() {
			t.Errorf("row %d fct = %v, want %v", i, fct, r.FCT().Seconds())
		}
		if row[4] != r.Class {
			t.Errorf("row %d class = %q, want %q", i, row[4], r.Class)
		}
	}
}

func TestWriteFCTCSVEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteFCTCSV(&b, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "size_bytes,start_s,end_s,fct_s,class" {
		t.Errorf("empty export = %q, want header only", got)
	}
}
