package stats

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
)

func TestWriteTraceSeriesCSV(t *testing.T) {
	recs := []obs.Record{
		{Time: simtime.Time(simtime.Millisecond), Kind: obs.KindWRED, Node: 3, Port: 1, Prio: 3, V1: 100 * 1024, V2: 400 * 1024, V3: 0.2},
		{Time: simtime.Time(2 * simtime.Millisecond), Kind: obs.KindAgent, Node: 3, Port: 0, Prio: 3, V1: 0.75},
		{Time: simtime.Time(3 * simtime.Millisecond), Kind: obs.KindWRED, Node: 3, Port: 1, Prio: 3, V1: 200 * 1024, V2: 800 * 1024, V3: 0.1},
		{Time: simtime.Time(4 * simtime.Millisecond), Kind: obs.KindRateCut, Node: 7, Port: -1, Prio: -1, V1: 100e9, V2: 50e9},
	}
	var b strings.Builder
	if err := WriteTraceSeriesCSV(&b, recs, obs.KindWRED, "kmin_bytes"); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 3 { // header + the two KindWRED records, other kinds skipped
		t.Fatalf("got %d rows, want 3:\n%s", len(rows), b.String())
	}
	if want := []string{"time_s", "node", "port", "prio", "kmin_bytes"}; strings.Join(rows[0], ",") != strings.Join(want, ",") {
		t.Fatalf("header = %v, want %v", rows[0], want)
	}
	if rows[1][4] != "102400" || rows[2][4] != "204800" {
		t.Fatalf("kmin values = %q,%q", rows[1][4], rows[2][4])
	}
	// Rate cuts report the new rate (V2), not V1.
	b.Reset()
	if err := WriteTraceSeriesCSV(&b, recs, obs.KindRateCut, "rate_bps"); err != nil {
		t.Fatal(err)
	}
	rows, err = csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil || len(rows) != 2 {
		t.Fatalf("rate-cut export: rows=%d err=%v", len(rows), err)
	}
	if rows[1][4] != "5e+10" {
		t.Fatalf("rate value = %q, want 5e+10 (the post-cut rate)", rows[1][4])
	}
}

func TestWriteSeriesCSVRoundTrip(t *testing.T) {
	var s Series
	times := []simtime.Time{0, simtime.Time(simtime.Microsecond), simtime.Time(3 * simtime.Millisecond)}
	vals := []float64{0, 12.5, 99.125}
	for i := range times {
		s.Add(times[i], vals[i])
	}
	var b strings.Builder
	if err := WriteSeriesCSV(&b, &s, "qlen_kb"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != len(times)+1 {
		t.Fatalf("got %d CSV rows, want header + %d", len(recs), len(times))
	}
	if recs[0][0] != "time_s" || recs[0][1] != "qlen_kb" {
		t.Errorf("header = %v, want [time_s qlen_kb]", recs[0])
	}
	for i := range times {
		ts, err := strconv.ParseFloat(recs[i+1][0], 64)
		if err != nil {
			t.Fatalf("row %d time %q: %v", i, recs[i+1][0], err)
		}
		if ts != times[i].Seconds() {
			t.Errorf("row %d time = %v, want %v", i, ts, times[i].Seconds())
		}
		v, err := strconv.ParseFloat(recs[i+1][1], 64)
		if err != nil {
			t.Fatalf("row %d value %q: %v", i, recs[i+1][1], err)
		}
		if v != vals[i] {
			t.Errorf("row %d value = %v, want %v", i, v, vals[i])
		}
	}
}

func TestWriteFCTCSVRoundTrip(t *testing.T) {
	in := []FlowRecord{
		{Size: 1500, Start: 0, End: simtime.Time(480 * simtime.Nanosecond), Class: "rdma"},
		{Size: 10 << 20, Start: simtime.Time(simtime.Millisecond), End: simtime.Time(4 * simtime.Millisecond), Class: "tcp"},
	}
	var b strings.Builder
	if err := WriteFCTCSV(&b, in); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != len(in)+1 {
		t.Fatalf("got %d CSV rows, want header + %d", len(recs), len(in))
	}
	want := []string{"size_bytes", "start_s", "end_s", "fct_s", "class"}
	for i, col := range want {
		if recs[0][i] != col {
			t.Errorf("header[%d] = %q, want %q", i, recs[0][i], col)
		}
	}
	for i, r := range in {
		row := recs[i+1]
		if size, _ := strconv.ParseInt(row[0], 10, 64); size != r.Size {
			t.Errorf("row %d size = %s, want %d", i, row[0], r.Size)
		}
		start, _ := strconv.ParseFloat(row[1], 64)
		end, _ := strconv.ParseFloat(row[2], 64)
		fct, _ := strconv.ParseFloat(row[3], 64)
		if start != r.Start.Seconds() || end != r.End.Seconds() {
			t.Errorf("row %d times = (%v,%v), want (%v,%v)", i, start, end, r.Start.Seconds(), r.End.Seconds())
		}
		if fct != r.FCT().Seconds() {
			t.Errorf("row %d fct = %v, want %v", i, fct, r.FCT().Seconds())
		}
		if row[4] != r.Class {
			t.Errorf("row %d class = %q, want %q", i, row[4], r.Class)
		}
	}
}

func TestCDFPointsEdgeCases(t *testing.T) {
	// Empty records: no curve.
	if got := CDFPoints(nil, 5); got != nil {
		t.Fatalf("CDFPoints(nil) = %v, want nil", got)
	}
	// Degenerate knot counts: a CDF needs at least two knots.
	one := []FlowRecord{{Size: 1000, Start: 0, End: simtime.Time(simtime.Millisecond)}}
	if got := CDFPoints(one, 1); got != nil {
		t.Fatalf("CDFPoints(knots=1) = %v, want nil", got)
	}
	if got := CDFPoints(one, 0); got != nil {
		t.Fatalf("CDFPoints(knots=0) = %v, want nil", got)
	}
	// Single flow: every knot collapses onto the one FCT, fractions still
	// sweep 0..1.
	pts := CDFPoints(one, 4)
	if len(pts) != 4 {
		t.Fatalf("single-flow CDF has %d knots, want 4", len(pts))
	}
	for i, pt := range pts {
		if pt[0] != 0.001 {
			t.Errorf("knot %d value = %v, want 0.001", i, pt[0])
		}
		if want := float64(i) / 3; pt[1] != want {
			t.Errorf("knot %d fraction = %v, want %v", i, pt[1], want)
		}
	}
	// More knots than records: interpolation between closest ranks keeps
	// the curve monotone in both coordinates and anchored at min/max.
	three := []FlowRecord{
		{Size: 1000, End: simtime.Time(simtime.Millisecond)},
		{Size: 1000, End: simtime.Time(2 * simtime.Millisecond)},
		{Size: 1000, End: simtime.Time(4 * simtime.Millisecond)},
	}
	pts = CDFPoints(three, 9)
	if len(pts) != 9 {
		t.Fatalf("CDF has %d knots, want 9", len(pts))
	}
	if pts[0][0] != 0.001 || pts[8][0] != 0.004 {
		t.Fatalf("CDF endpoints = %v, %v, want 0.001, 0.004", pts[0][0], pts[8][0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] <= pts[i-1][1] {
			t.Fatalf("CDF not monotone at knot %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
}

func TestSummaryRowShapes(t *testing.T) {
	// Zero-value summary (no records): all numeric columns render as 0.
	row := SummaryRow("empty", FCTSummary{})
	if len(row) != 8 {
		t.Fatalf("row has %d columns, want 8", len(row))
	}
	if row[0] != "empty" || row[1] != "0" {
		t.Fatalf("label/count = %q/%q", row[0], row[1])
	}
	for i := 2; i < 8; i++ {
		if row[i] != "0" {
			t.Errorf("column %d = %q, want 0", i, row[i])
		}
	}
	// A populated summary renders durations as seconds.
	s := Summarize([]FlowRecord{{Size: 1000, Start: 0, End: simtime.Time(2 * simtime.Millisecond)}})
	row = SummaryRow("one", s)
	if row[1] != "1" {
		t.Fatalf("count = %q, want 1", row[1])
	}
	for i := 2; i < 8; i++ { // single flow: avg and every percentile equal the FCT
		if row[i] != "0.002" {
			t.Errorf("column %d = %q, want 0.002", i, row[i])
		}
	}
}

func TestWriteFCTCSVEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteFCTCSV(&b, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "size_bytes,start_s,end_s,fct_s,class" {
		t.Errorf("empty export = %q, want header only", got)
	}
}
