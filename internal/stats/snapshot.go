package stats

import (
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// Snapshot support for the measurement layer: time series contents and the
// monitors' self-rescheduling tick slots. Restore overlays a freshly
// constructed monitor (same queue/port/period) — the constructor armed a
// first tick, the restored eventq wiped it, and RestoreState re-arms the
// recorded one.

// SaveState writes the series contents.
func (s *Series) SaveState(w *codec.Writer) {
	w.Tag("series")
	w.Int(len(s.Times))
	for _, t := range s.Times {
		w.I64(int64(t))
	}
	w.F64s(s.Values)
}

// RestoreState replaces the series contents.
func (s *Series) RestoreState(r *codec.Reader) {
	r.Expect("series")
	n := r.Int()
	if r.Err() != nil || n < 0 {
		r.Fail("series length %d invalid", n)
		return
	}
	s.Times = make([]simtime.Time, n)
	for i := range s.Times {
		s.Times[i] = simtime.Time(r.I64())
	}
	s.Values = r.F64s()
	if r.Err() == nil && len(s.Values) != n {
		r.Fail("series times/values length mismatch %d/%d", n, len(s.Values))
	}
}

// SaveState writes the monitor's samples and pending tick slot.
func (m *QueueMonitor) SaveState(w *codec.Writer) {
	w.Tag("qmon")
	m.Series.SaveState(w)
	w.Bool(m.stopped)
	w.Bool(m.nextPending)
	w.I64(int64(m.nextAt))
	w.U64(m.nextSeq)
}

// RestoreState overlays saved state onto a freshly constructed monitor and
// re-arms its tick at the recorded slot.
func (m *QueueMonitor) RestoreState(r *codec.Reader) {
	r.Expect("qmon")
	m.Series.RestoreState(r)
	m.stopped = r.Bool()
	m.nextPending = r.Bool()
	m.nextAt = simtime.Time(r.I64())
	m.nextSeq = r.U64()
	if r.Err() == nil && m.nextPending {
		m.net.Q.RestoreCallAt(m.nextAt, m.nextSeq, m.tickFn, nil)
	}
}

// SaveState writes the meter's samples, byte cursor, and pending tick slot.
func (m *ThroughputMeter) SaveState(w *codec.Writer) {
	w.Tag("tmeter")
	m.Series.SaveState(w)
	w.U64(m.lastTx)
	w.Bool(m.stopped)
	w.Bool(m.nextPending)
	w.I64(int64(m.nextAt))
	w.U64(m.nextSeq)
}

// RestoreState overlays saved state onto a freshly constructed meter and
// re-arms its tick at the recorded slot.
func (m *ThroughputMeter) RestoreState(r *codec.Reader) {
	r.Expect("tmeter")
	m.Series.RestoreState(r)
	m.lastTx = r.U64()
	m.stopped = r.Bool()
	m.nextPending = r.Bool()
	m.nextAt = simtime.Time(r.I64())
	m.nextSeq = r.U64()
	if r.Err() == nil && m.nextPending {
		m.net.Q.RestoreCallAt(m.nextAt, m.nextSeq, m.tickFn, nil)
	}
}
