package stats

// Per-class summaries and fairness for the multi-client workload engine:
// when N client classes share the fabric, ECN policies are judged on each
// class's FCT tail AND on how evenly capacity is shared across classes —
// the Jain index over per-class mean goodput is the standard scalar for
// the latter.

import (
	"sort"

	"github.com/accnet/acc/internal/simtime"
)

// ClassSummary condenses one class's completed flows.
type ClassSummary struct {
	Class string
	FCTSummary
	// Bytes is the class's total completed volume.
	Bytes int64
	// MeanGbps is the class's mean per-flow goodput (size/FCT averaged
	// over flows), the x_i of the Jain index.
	MeanGbps float64
}

// ByClass groups records by their Class label and summarizes each group.
// Classes come back sorted by name, so the result is deterministic
// regardless of completion order.
func ByClass(recs []FlowRecord) []ClassSummary {
	idx := make(map[string]int)
	var out []ClassSummary
	groups := make(map[string][]FlowRecord)
	for _, r := range recs {
		if _, ok := idx[r.Class]; !ok {
			idx[r.Class] = len(out)
			out = append(out, ClassSummary{Class: r.Class})
		}
		groups[r.Class] = append(groups[r.Class], r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	for i := range out {
		g := groups[out[i].Class]
		out[i].FCTSummary = Summarize(g)
		var bytes int64
		var gsum float64
		for _, r := range g {
			bytes += r.Size
			if fct := r.FCT(); fct > 0 {
				gsum += float64(simtime.RateOf(r.Size, fct)) / float64(simtime.Gbps)
			}
		}
		out[i].Bytes = bytes
		if len(g) > 0 {
			out[i].MeanGbps = gsum / float64(len(g))
		}
	}
	return out
}

// Jain returns the Jain fairness index (Σx)² / (n·Σx²) over the shares:
// 1.0 when all classes fare equally, 1/n when one class takes everything.
// Empty or all-zero input yields 0.
func Jain(shares []float64) float64 {
	if len(shares) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range shares {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(shares)) * sumsq)
}

// JainByClass computes the fairness index over the classes' mean goodputs.
func JainByClass(classes []ClassSummary) float64 {
	shares := make([]float64, len(classes))
	for i, c := range classes {
		shares[i] = c.MeanGbps
	}
	return Jain(shares)
}
