//go:build !race

package stats

import (
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// TestAllocFreeMonitoredTick pins the sampling path at zero allocations in
// steady state: QueueMonitor and ThroughputMeter ride the eventq typed-event
// fast path (pre-bound method values + CallAfter), so a monitored window —
// packet traffic plus several sampler ticks — must not allocate once the
// Series backing arrays are warm. Callers keep them warm with Series.Reset,
// which truncates without freeing.
func TestAllocFreeMonitoredTick(t *testing.T) {
	net := netsim.New(1)
	h1 := netsim.NewHost(net, "h1")
	h2 := netsim.NewHost(net, "h2")
	p1 := h1.AttachPort(25*simtime.Gbps, 600*simtime.Nanosecond, nil)
	p2 := h2.AttachPort(25*simtime.Gbps, 600*simtime.Nanosecond, nil)
	netsim.Connect(p1, p2)
	h2.Register(7, netsim.EndpointFunc(func(*netsim.Packet) {}))

	period := 10 * simtime.Microsecond
	qm := MonitorQueue(net, p1.Queues[0], period)
	tm := MeterPort(net, p1, period)

	window := func() {
		pkt := net.AllocPacket()
		pkt.Kind = netsim.KindData
		pkt.Flow = 7
		pkt.Src = h1.ID()
		pkt.Dst = h2.ID()
		pkt.Size = netsim.DefaultMTU + netsim.DataHeaderBytes
		pkt.ECT = true
		h1.Send(pkt)
		net.RunFor(4 * period)
		qm.Series.Reset()
		tm.Series.Reset()
	}
	// Warm the packet pool, event free list, and Series backing arrays.
	for i := 0; i < 8; i++ {
		window()
	}
	if avg := testing.AllocsPerRun(1000, window); avg != 0 {
		t.Fatalf("monitored window allocates %v/op, want 0", avg)
	}
	qm.Stop()
	tm.Stop()
}
