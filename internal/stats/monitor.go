package stats

import (
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// QueueMonitor samples an egress queue's depth on a fixed period.
type QueueMonitor struct {
	Queue  *netsim.EgressQueue
	Period simtime.Duration
	Series Series

	net     *netsim.Network
	stopped bool
}

// MonitorQueue starts sampling q every period until StopAt (zero = forever).
func MonitorQueue(net *netsim.Network, q *netsim.EgressQueue, period simtime.Duration) *QueueMonitor {
	m := &QueueMonitor{Queue: q, Period: period, net: net}
	m.schedule()
	return m
}

func (m *QueueMonitor) schedule() {
	m.net.Q.After(m.Period, func() {
		if m.stopped {
			return
		}
		m.Series.Add(m.net.Now(), float64(m.Queue.Bytes()))
		m.schedule()
	})
}

// Stop ends sampling.
func (m *QueueMonitor) Stop() { m.stopped = true }

// ThroughputMeter samples a port's transmitted bytes to produce a link
// utilization time series in [0,1].
type ThroughputMeter struct {
	Port   *netsim.Port
	Period simtime.Duration
	Series Series // utilization per period

	net     *netsim.Network
	lastTx  uint64
	stopped bool
}

// MeterPort starts sampling p's egress utilization every period.
func MeterPort(net *netsim.Network, p *netsim.Port, period simtime.Duration) *ThroughputMeter {
	m := &ThroughputMeter{Port: p, Period: period, net: net, lastTx: p.TxBytesTotal}
	m.schedule()
	return m
}

func (m *ThroughputMeter) schedule() {
	m.net.Q.After(m.Period, func() {
		if m.stopped {
			return
		}
		cur := m.Port.TxBytesTotal
		util := m.Port.Utilization(cur-m.lastTx, m.Period)
		m.lastTx = cur
		m.Series.Add(m.net.Now(), util)
		m.schedule()
	})
}

// Stop ends sampling.
func (m *ThroughputMeter) Stop() { m.stopped = true }
