package stats

import (
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// QueueMonitor samples an egress queue's depth on a fixed period.
//
// Sampling rides the eventq typed-event fast path: the monitor pre-binds
// one func(any) method value at construction and reschedules itself with
// CallAfter, so each tick reuses a pooled Event instead of allocating a
// closure. A long-running monitored simulation therefore stays
// allocation-flat apart from the Series' amortized backing-array growth
// (which callers can avoid with Series.Reset between windows).
//
// Each reschedule records the next tick's (time, seq) slot so a snapshot
// can re-arm the pooled event at exactly the position it held in the
// uninterrupted run (see snapshot.go).
type QueueMonitor struct {
	//acclint:ignore snapcover construction wiring (monitored queue)
	Queue *netsim.EgressQueue
	//acclint:ignore snapcover construction config (tick cadence)
	Period simtime.Duration
	Series Series

	net     *netsim.Network
	tickFn  func(any)
	stopped bool

	nextPending bool
	nextAt      simtime.Time
	nextSeq     uint64
}

// MonitorQueue starts sampling q every period until Stop.
func MonitorQueue(net *netsim.Network, q *netsim.EgressQueue, period simtime.Duration) *QueueMonitor {
	m := &QueueMonitor{Queue: q, Period: period, net: net}
	m.tickFn = m.tick
	m.arm()
	return m
}

func (m *QueueMonitor) arm() {
	m.nextPending = true
	m.nextAt = m.net.Now().Add(m.Period)
	m.nextSeq = m.net.Q.Seq()
	m.net.Q.CallAfter(m.Period, m.tickFn, nil)
}

func (m *QueueMonitor) tick(any) {
	m.nextPending = false
	if m.stopped {
		return
	}
	m.Series.Add(m.net.Now(), float64(m.Queue.Bytes()))
	m.arm()
}

// Stop ends sampling.
func (m *QueueMonitor) Stop() { m.stopped = true }

// ThroughputMeter samples a port's transmitted bytes to produce a link
// utilization time series in [0,1]. Like QueueMonitor, it schedules its
// ticks on the typed-event fast path with a pre-bound method value.
type ThroughputMeter struct {
	//acclint:ignore snapcover construction wiring (metered port)
	Port *netsim.Port
	//acclint:ignore snapcover construction config (tick cadence)
	Period simtime.Duration
	Series Series // utilization per period

	net     *netsim.Network
	tickFn  func(any)
	lastTx  uint64
	stopped bool

	nextPending bool
	nextAt      simtime.Time
	nextSeq     uint64
}

// MeterPort starts sampling p's egress utilization every period.
func MeterPort(net *netsim.Network, p *netsim.Port, period simtime.Duration) *ThroughputMeter {
	m := &ThroughputMeter{Port: p, Period: period, net: net, lastTx: p.TxBytesTotal}
	m.tickFn = m.tick
	m.arm()
	return m
}

func (m *ThroughputMeter) arm() {
	m.nextPending = true
	m.nextAt = m.net.Now().Add(m.Period)
	m.nextSeq = m.net.Q.Seq()
	m.net.Q.CallAfter(m.Period, m.tickFn, nil)
}

func (m *ThroughputMeter) tick(any) {
	m.nextPending = false
	if m.stopped {
		return
	}
	cur := m.Port.TxBytesTotal
	util := m.Port.Utilization(cur-m.lastTx, m.Period)
	m.lastTx = cur
	m.Series.Add(m.net.Now(), util)
	m.arm()
}

// Stop ends sampling.
func (m *ThroughputMeter) Stop() { m.stopped = true }
