package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/accnet/acc/internal/simtime"
)

func rec(size int64, fct simtime.Duration) FlowRecord {
	return FlowRecord{Size: size, Start: 0, End: simtime.Time(fct)}
}

func TestSummarize(t *testing.T) {
	var c FCTCollector
	for i := 1; i <= 100; i++ {
		c.Add(rec(1000, simtime.Duration(i)*simtime.Microsecond))
	}
	s := Summarize(c.Records)
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Avg != simtime.Duration(50500)*simtime.Nanosecond {
		t.Fatalf("avg %v", s.Avg)
	}
	if s.Max != 100*simtime.Microsecond {
		t.Fatalf("max %v", s.Max)
	}
	if s.P50 < 49*simtime.Microsecond || s.P50 > 52*simtime.Microsecond {
		t.Fatalf("p50 %v", s.P50)
	}
	if s.P99 < 98*simtime.Microsecond || s.P99 > 100*simtime.Microsecond {
		t.Fatalf("p99 %v", s.P99)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Avg != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestSizeClasses(t *testing.T) {
	var c FCTCollector
	c.Add(rec(50*simtime.KB, 1))  // mouse
	c.Add(rec(100*simtime.KB, 1)) // mouse (boundary)
	c.Add(rec(simtime.MB, 1))     // middle
	c.Add(rec(10*simtime.MB, 1))  // elephant (boundary)
	c.Add(rec(100*simtime.MB, 1)) // elephant
	if n := len(c.Mice()); n != 2 {
		t.Fatalf("mice %d, want 2", n)
	}
	if n := len(c.Elephants()); n != 2 {
		t.Fatalf("elephants %d, want 2", n)
	}
	if n := len(c.SizeRange(100*simtime.KB, 10*simtime.MB)); n != 2 {
		t.Fatalf("middle %d, want 2 (1MB and 10MB)", n)
	}
	if n := len(c.SizeRange(10*simtime.MB, 0)); n != 1 {
		t.Fatalf("unbounded range %d, want 1", n)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return math.IsNaN(Percentile(nil, 0.5))
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		sort.Float64s(raw)
		p := float64(pRaw) / 255
		v := Percentile(raw, p)
		return v >= raw[0] && v <= raw[len(raw)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileExact(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 50 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 30 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 0.25); got != 20 {
		t.Fatalf("p25 = %v", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-element percentile = %v", got)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for i, v := range []float64{2, 4, 6, 8} {
		s.Add(simtime.Time(i), v)
	}
	if s.Len() != 4 || s.Avg() != 5 || s.Max() != 8 {
		t.Fatalf("len=%d avg=%v max=%v", s.Len(), s.Avg(), s.Max())
	}
	if got := s.Std(); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("std %v, want sqrt(5)", got)
	}
	if q := s.Quantile(0.5); q != 5 {
		t.Fatalf("median %v", q)
	}
	var empty Series
	if empty.Avg() != 0 || empty.Max() != 0 || empty.Std() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("empty series stats must be zero")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var s Series
	s.Add(simtime.Time(simtime.Millisecond), 42)
	s.Add(simtime.Time(2*simtime.Millisecond), 43.5)
	var buf strings.Builder
	if err := WriteSeriesCSV(&buf, &s, "queue_bytes"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"time_s,queue_bytes", "0.001,42", "0.002,43.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFCTCSV(t *testing.T) {
	recs := []FlowRecord{{Size: 1000, Start: 0, End: simtime.Time(simtime.Microsecond), Class: "rdma"}}
	var buf strings.Builder
	if err := WriteFCTCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1000,0,1e-06,1e-06,rdma") {
		t.Fatalf("unexpected CSV:\n%s", buf.String())
	}
}

func TestCDFPoints(t *testing.T) {
	var recs []FlowRecord
	for i := 1; i <= 100; i++ {
		recs = append(recs, rec(1000, simtime.Duration(i)*simtime.Microsecond))
	}
	pts := CDFPoints(recs, 11)
	if len(pts) != 11 {
		t.Fatalf("%d knots, want 11", len(pts))
	}
	if pts[0][1] != 0 || pts[10][1] != 1 {
		t.Fatal("CDF endpoints wrong")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Fatal("CDF values not monotone")
		}
	}
	if CDFPoints(nil, 5) != nil {
		t.Fatal("empty records must return nil")
	}
}

func TestSummaryRow(t *testing.T) {
	row := SummaryRow("x", FCTSummary{Count: 2, Avg: simtime.Millisecond})
	if row[0] != "x" || row[1] != "2" || row[2] != "0.001" {
		t.Fatalf("row: %v", row)
	}
}
