package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
)

// WriteSeriesCSV streams a time series as CSV with the given value-column
// label (times in seconds).
func WriteSeriesCSV(w io.Writer, s *Series, valueLabel string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", valueLabel}); err != nil {
		return err
	}
	for i := range s.Values {
		rec := []string{
			strconv.FormatFloat(s.Times[i].Seconds(), 'g', -1, 64),
			strconv.FormatFloat(s.Values[i], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFCTCSV streams completed-flow records as CSV.
func WriteFCTCSV(w io.Writer, recs []FlowRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"size_bytes", "start_s", "end_s", "fct_s", "class"}); err != nil {
		return err
	}
	for _, r := range recs {
		rec := []string{
			strconv.FormatInt(r.Size, 10),
			strconv.FormatFloat(r.Start.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(r.End.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(r.FCT().Seconds(), 'g', -1, 64),
			r.Class,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CDFPoints returns the empirical CDF of the records' FCTs as (seconds,
// cumulative fraction) pairs, at the given resolution (number of knots).
func CDFPoints(recs []FlowRecord, knots int) [][2]float64 {
	if len(recs) == 0 || knots < 2 {
		return nil
	}
	fcts := make([]float64, len(recs))
	for i, r := range recs {
		fcts[i] = r.FCT().Seconds()
	}
	sort.Float64s(fcts)
	out := make([][2]float64, knots)
	for i := 0; i < knots; i++ {
		p := float64(i) / float64(knots-1)
		out[i] = [2]float64{Percentile(fcts, p), p}
	}
	return out
}

// WriteTraceSeriesCSV extracts the per-queue/per-agent time series hiding
// in a trace — Kmin actuations (KindWRED, value = Kmin bytes), rewards
// (KindAgent, value = reward), rate cuts (KindRateCut, value = new rate) —
// and writes them in the same (time_s, value) CSV schema as
// WriteSeriesCSV, with node/port/prio key columns so one file can carry
// every queue. Records of other kinds are skipped.
func WriteTraceSeriesCSV(w io.Writer, recs []obs.Record, kind obs.Kind, valueLabel string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "node", "port", "prio", valueLabel}); err != nil {
		return err
	}
	val := func(r obs.Record) float64 {
		switch kind {
		case obs.KindRateCut:
			return r.V2
		default:
			return r.V1
		}
	}
	for _, r := range recs {
		if r.Kind != kind {
			continue
		}
		row := []string{
			strconv.FormatFloat(r.Time.Seconds(), 'g', -1, 64),
			strconv.FormatInt(int64(r.Node), 10),
			strconv.FormatInt(int64(r.Port), 10),
			strconv.FormatInt(int64(r.Prio), 10),
			strconv.FormatFloat(val(r), 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SummaryRow renders an FCTSummary as CSV-friendly strings.
func SummaryRow(label string, s FCTSummary) []string {
	f := func(d simtime.Duration) string { return fmt.Sprintf("%g", d.Seconds()) }
	return []string{label, strconv.Itoa(s.Count), f(s.Avg), f(s.P50), f(s.P90), f(s.P99), f(s.P999), f(s.Max)}
}
