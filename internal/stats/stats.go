// Package stats collects and summarizes the measurements the paper reports:
// flow completion times (average and tail, bucketed by flow size), queue
// depth time series, link utilization, and IOPS-style application metrics.
package stats

import (
	"fmt"
	"math"
	"sort"

	"github.com/accnet/acc/internal/simtime"
)

// FlowRecord is one completed flow.
type FlowRecord struct {
	Size  int64
	Start simtime.Time
	End   simtime.Time
	Class string // optional label (e.g. "rdma", "tcp")
}

// FCT returns the record's completion time.
func (r FlowRecord) FCT() simtime.Duration { return r.End.Sub(r.Start) }

// Paper flow-size classes (§5.4): mice are (0,100KB], elephants [10MB,∞).
const (
	MiceMax     = 100 * simtime.KB
	ElephantMin = 10 * simtime.MB
)

// FCTCollector accumulates completed flows.
type FCTCollector struct {
	Records []FlowRecord
}

// Add appends a record.
func (c *FCTCollector) Add(r FlowRecord) { c.Records = append(c.Records, r) }

// AddFlow is a convenience for transports' onDone callbacks.
func (c *FCTCollector) AddFlow(size int64, start, end simtime.Time, class string) {
	c.Add(FlowRecord{Size: size, Start: start, End: end, Class: class})
}

// Filter returns records matching the predicate.
func (c *FCTCollector) Filter(keep func(FlowRecord) bool) []FlowRecord {
	var out []FlowRecord
	for _, r := range c.Records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// Mice returns flows in (0, 100KB].
func (c *FCTCollector) Mice() []FlowRecord {
	return c.Filter(func(r FlowRecord) bool { return r.Size <= MiceMax })
}

// Elephants returns flows in [10MB, ∞).
func (c *FCTCollector) Elephants() []FlowRecord {
	return c.Filter(func(r FlowRecord) bool { return r.Size >= ElephantMin })
}

// SizeRange returns flows with lo < size <= hi (hi<=0 means unbounded).
func (c *FCTCollector) SizeRange(lo, hi int64) []FlowRecord {
	return c.Filter(func(r FlowRecord) bool {
		return r.Size > lo && (hi <= 0 || r.Size <= hi)
	})
}

// FCTSummary condenses a set of records.
type FCTSummary struct {
	Count int
	Avg   simtime.Duration
	P50   simtime.Duration
	P90   simtime.Duration
	P99   simtime.Duration
	P999  simtime.Duration
	Max   simtime.Duration
}

// Summarize computes average and tail statistics over the records.
func Summarize(recs []FlowRecord) FCTSummary {
	if len(recs) == 0 {
		return FCTSummary{}
	}
	fcts := make([]float64, len(recs))
	var sum float64
	for i, r := range recs {
		f := float64(r.FCT())
		fcts[i] = f
		sum += f
	}
	sort.Float64s(fcts)
	return FCTSummary{
		Count: len(recs),
		Avg:   simtime.Duration(sum / float64(len(recs))),
		P50:   simtime.Duration(Percentile(fcts, 0.50)),
		P90:   simtime.Duration(Percentile(fcts, 0.90)),
		P99:   simtime.Duration(Percentile(fcts, 0.99)),
		P999:  simtime.Duration(Percentile(fcts, 0.999)),
		Max:   simtime.Duration(fcts[len(fcts)-1]),
	}
}

func (s FCTSummary) String() string {
	return fmt.Sprintf("n=%d avg=%v p50=%v p99=%v p99.9=%v", s.Count, s.Avg, s.P50, s.P99, s.P999)
}

// Percentile returns the p-quantile (0<=p<=1) of a sorted sample using
// linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case n == 0:
		return math.NaN()
	case n == 1:
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Series is a time series of float samples.
type Series struct {
	Times  []simtime.Time
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(t simtime.Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Reset drops all samples but keeps the backing arrays, so a long-lived
// monitor can be drained window by window without reallocating.
func (s *Series) Reset() {
	s.Times = s.Times[:0]
	s.Values = s.Values[:0]
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Avg returns the mean of the samples (0 when empty).
func (s *Series) Avg() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max returns the maximum sample (0 when empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Std returns the population standard deviation.
func (s *Series) Std() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	mean := s.Avg()
	var ss float64
	for _, v := range s.Values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.Values)))
}

// Quantile returns the q-quantile of the sample values.
func (s *Series) Quantile(q float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	cp := append([]float64(nil), s.Values...)
	sort.Float64s(cp)
	return Percentile(cp, q)
}
