// Package dcqcn implements the DCQCN congestion-control protocol (Zhu et
// al., SIGCOMM 2015) that RDMA NICs run by default in the paper's
// datacenters. It is the "plant" that ACC's ECN tuning controls: the switch
// marks packets per the (Kmin, Kmax, Pmax) template, the notification point
// (receiver) converts marks into paced CNPs, and the reaction point (sender)
// adjusts its injection rate with the published multiplicative-decrease /
// fast-recovery / additive-increase / hyper-increase state machine.
//
// Flows are rate-paced and lossless under PFC, matching RoCEv2 behaviour.
//
// The two halves are separate objects: Flow is the reaction point and lives
// with the source host's Network; Receiver is the notification point and
// lives with the destination's. In a sequential run Start wires both onto
// the same Network; a sharded run (internal/psim) starts each half in the
// shard that owns its host, and neither half ever touches the other's state
// — they communicate only through packets on the simulated wire.
package dcqcn

import (
	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// Params holds the DCQCN knobs (the "9 parameters at end-host" of the
// paper's Observation 3). Defaults follow the DCQCN paper and common NIC
// firmware settings, with rate constants scaled to the line rate.
type Params struct {
	MTU  int // payload bytes per packet
	Prio int // traffic class for data packets

	CNPInterval simtime.Duration // NP: min spacing between CNPs per flow

	G                 float64          // alpha EWMA gain
	AlphaTimer        simtime.Duration // alpha decay interval without CNPs
	IncreaseTimer     simtime.Duration // time-based rate-increase interval
	ByteCounter       int64            // byte-based rate-increase threshold
	FastRecoverySteps int              // F: stages before additive increase

	RateAI  simtime.Rate // additive increase step
	RateHAI simtime.Rate // hyper increase step
	MinRate simtime.Rate // rate floor
	// InitRate is the starting rate; zero means the NIC line rate.
	InitRate simtime.Rate
	// ClampTargetRate mirrors the CLAMP_TGT_RATE knob: when true (the
	// DCQCN paper's pseudocode, our default), every cut sets Rt=Rc; when
	// false, Rt is reset only if the flow increased since the last cut, so
	// a chain of CNPs during one burst preserves the pre-burst target and
	// fast recovery rebounds much more aggressively.
	ClampTargetRate bool
}

// DefaultParams returns DCQCN parameters scaled to the given line rate.
func DefaultParams(line simtime.Rate) Params {
	return Params{
		MTU:               netsim.DefaultMTU,
		Prio:              3,
		CNPInterval:       50 * simtime.Microsecond,
		G:                 1.0 / 256,
		AlphaTimer:        55 * simtime.Microsecond,
		IncreaseTimer:     150 * simtime.Microsecond,
		ByteCounter:       64 * simtime.KB,
		FastRecoverySteps: 5,
		RateAI:            line / 1000, // e.g. 25Mbps at 25G (DCQCN-paper scale)
		ClampTargetRate:   true,
		RateHAI:           line / 500, // e.g. 50Mbps at 25G
		MinRate:           line / 2500,
	}
}

// Flow is the reaction point of one RDMA queue pair transferring Size bytes
// from Src to the host addressed by DstID. It holds sender-side state only;
// delivery progress lives on the Receiver.
type Flow struct {
	ID    netsim.FlowID
	Src   *netsim.Host
	DstID int
	Size  int64
	P     Params

	Start simtime.Time
	//acclint:ignore snapcover zero while the sender half is live, and only live halves are saved (SaveApplied); completion re-mirrors it via the receiver callback
	End simtime.Time // mirrored from the Receiver by Start's wrapper

	net  *netsim.Network
	line simtime.Rate

	// Reaction-point state.
	rc, rt    simtime.Rate // current and target rate
	alpha     float64
	tc, bc    int   // timer / byte-counter stage counts since last cut
	incBytes  int64 // bytes since last byte-counter event
	sent      int64
	increased bool // rate increase happened since the last cut
	//acclint:ignore snapcover false while the sender half is live, and only live senders (!SenderDone) are saved
	sentAll bool // sender handed the last byte to the NIC and tore down

	paceEv  *eventq.Event
	alphaEv *eventq.Event
	incEv   *eventq.Event

	// Counters for analysis.
	CNPs     uint64 // CNPs received by the sender
	RateCuts uint64

	// rx is the paired notification point when both halves share a Network
	// (sequential Start); nil for split sharded starts.
	//acclint:ignore snapcover sequential-start accessor shortcut; restored flows take the split registry path and drivers read completion from Applied.End
	rx *Receiver

	// Pre-bound callbacks, created once in StartSender: the pacer fires per
	// packet and the alpha/increase timers fire continuously, so binding
	// method values here keeps those paths allocation-free.
	trySendFn func()
	alphaFn   func()
	incFn     func()
}

// Receiver is the notification point of one flow: it counts delivered
// bytes, converts CE marks into paced CNPs, and detects completion. It is
// owned by the destination host's Network.
type Receiver struct {
	ID    netsim.FlowID
	Dst   *netsim.Host
	SrcID int
	Size  int64
	P     Params

	Start simtime.Time
	//acclint:ignore snapcover zero while the receiver half is live, and only live receivers (!Done) are saved
	End simtime.Time // zero until complete

	net *netsim.Network

	rcvd    int64
	lastCNP simtime.Time
	cnpSent bool
	//acclint:ignore snapcover false while the receiver half is live, and only live receivers (!Done) are saved
	done bool

	// MarkedSeen counts CE-marked data packets observed at the receiver.
	MarkedSeen uint64

	onDone func(*Receiver)
}

// Rate returns the sender's current injection rate.
func (f *Flow) Rate() simtime.Rate { return f.rc }

// Alpha returns the sender's congestion estimate.
func (f *Flow) Alpha() float64 { return f.alpha }

// Sent returns bytes handed to the NIC so far.
func (f *Flow) Sent() int64 { return f.sent }

// Received returns bytes delivered so far; valid when the flow was started
// with Start (both halves on one Network). Split sharded senders report 0 —
// delivery progress belongs to the Receiver in the destination shard.
func (f *Flow) Received() int64 {
	if f.rx == nil {
		return 0
	}
	return f.rx.rcvd
}

// Done reports whether all bytes were delivered (see Received for the
// split-mode caveat).
func (f *Flow) Done() bool { return f.rx != nil && f.rx.done }

// MarkedSeen returns the receiver's count of CE-marked data packets (see
// Received for the split-mode caveat).
func (f *Flow) MarkedSeen() uint64 {
	if f.rx == nil {
		return 0
	}
	return f.rx.MarkedSeen
}

// FCT returns the flow completion time; valid once Done.
func (f *Flow) FCT() simtime.Duration { return f.End.Sub(f.Start) }

// Received returns bytes delivered so far.
func (r *Receiver) Received() int64 { return r.rcvd }

// Done reports whether all bytes were delivered.
func (r *Receiver) Done() bool { return r.done }

// FCT returns the flow completion time; valid once Done.
func (r *Receiver) FCT() simtime.Duration { return r.End.Sub(r.Start) }

// Start launches a DCQCN flow of size bytes at the current virtual time,
// with both halves on the same Network. onDone, if non-nil, runs when the
// last byte reaches the receiver.
func Start(net *netsim.Network, src, dst *netsim.Host, size int64, p Params, onDone func(*Flow)) *Flow {
	f := StartSender(net, net.NextFlowID(), src, dst.ID(), size, p)
	f.rx = StartReceiver(f.ID, src.ID(), dst, size, p, func(r *Receiver) {
		f.End = r.End
		if onDone != nil {
			onDone(f)
		}
	})
	return f
}

// StartSender launches the reaction point only, sending toward the host
// with node id dstID. Sharded runs start it in the shard owning src, paired
// with a StartReceiver carrying the same explicit flow id in the shard
// owning the destination.
func StartSender(net *netsim.Network, id netsim.FlowID, src *netsim.Host, dstID int, size int64, p Params) *Flow {
	if p.MTU <= 0 {
		p.MTU = netsim.DefaultMTU
	}
	line := src.Port.Bandwidth
	init := p.InitRate
	if init <= 0 {
		init = line
	}
	f := &Flow{
		ID:    id,
		Src:   src,
		DstID: dstID,
		Size:  size,
		P:     p,
		Start: net.Now(),
		net:   net,
		line:  line,
		rc:    init,
		rt:    init,
		alpha: 1, // per the DCQCN paper, α starts at 1: first CNP halves the rate
	}
	f.trySendFn = f.trySend
	f.alphaFn = f.alphaTick
	f.incFn = f.incTick
	src.Register(f.ID, netsim.EndpointFunc(f.senderHandle))
	f.trySend()
	return f
}

// StartReceiver launches the notification point only, on dst's Network.
// onDone, if non-nil, runs when the last byte arrives.
func StartReceiver(id netsim.FlowID, srcID int, dst *netsim.Host, size int64, p Params, onDone func(*Receiver)) *Receiver {
	if p.MTU <= 0 {
		p.MTU = netsim.DefaultMTU
	}
	r := &Receiver{
		ID:     id,
		Dst:    dst,
		SrcID:  srcID,
		Size:   size,
		P:      p,
		Start:  dst.Net().Now(),
		net:    dst.Net(),
		onDone: onDone,
	}
	dst.Register(r.ID, netsim.EndpointFunc(r.handle))
	return r
}

// trySend emits the next data packet if the NIC admits it, then re-arms the
// pacer at the current rate. The pacing timer's Event is reused across
// packets, so steady-state pacing allocates nothing.
func (f *Flow) trySend() {
	if f.sent >= f.Size {
		return
	}
	port := f.Src.Port
	if !port.CanInject(f.P.Prio) {
		port.WhenReady(f.P.Prio, f)
		return
	}
	payload := f.P.MTU
	if rem := f.Size - f.sent; int64(payload) > rem {
		payload = int(rem)
	}
	pkt := f.net.AllocPacket()
	pkt.Kind = netsim.KindData
	pkt.Flow = f.ID
	pkt.Src = f.Src.ID()
	pkt.Dst = f.DstID
	pkt.Prio = f.P.Prio
	pkt.Size = payload + netsim.DataHeaderBytes
	pkt.Seq = f.sent
	pkt.FlowBytes = f.Size
	pkt.ECT = true
	pkt.Last = f.sent+int64(payload) >= f.Size
	size := pkt.Size
	f.Src.Send(pkt)
	f.sent += int64(payload)

	// Byte-counter stage of the rate-increase machinery.
	f.incBytes += int64(size)
	if f.incBytes >= f.P.ByteCounter {
		f.incBytes = 0
		f.increase(false)
	}

	if f.sent < f.Size {
		gap := simtime.TxTime(size, f.rc)
		f.paceEv = f.net.Q.ResetAfter(f.paceEv, gap, f.trySendFn)
	} else {
		// Last byte handed to the NIC: the reaction point's remaining work
		// (rate recovery, alpha decay) can no longer influence any packet,
		// so tear the sender down now. Late CNPs hit an unregistered flow
		// and are dropped — physically identical, and it keeps sender
		// teardown a sender-shard-local act in sharded runs.
		f.senderTeardown()
	}
}

// senderHandle processes CNPs at the reaction point.
func (f *Flow) senderHandle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.KindCNP {
		return
	}
	f.CNPs++
	f.net.Tracer.CNP(f.net.Now(), f.Src.ID(), uint64(f.ID))
	f.cutRate()
}

// cutRate applies the DCQCN multiplicative decrease and resets the increase
// machinery.
func (f *Flow) cutRate() {
	f.RateCuts++
	before := f.rc
	if f.increased || f.P.ClampTargetRate {
		f.rt = f.rc
		f.increased = false
	}
	f.rc = f.rc * simtime.Rate(1-f.alpha/2)
	f.alpha = (1-f.P.G)*f.alpha + f.P.G
	if f.rc < f.P.MinRate {
		f.rc = f.P.MinRate
	}
	f.net.Tracer.RateCut(f.net.Now(), f.Src.ID(), uint64(f.ID), float64(before), float64(f.rc), f.alpha)
	f.tc, f.bc = 0, 0
	f.incBytes = 0
	f.armAlphaTimer()
	f.armIncreaseTimer()
}

func (f *Flow) armAlphaTimer() {
	f.alphaEv = f.net.Q.ResetAfter(f.alphaEv, f.P.AlphaTimer, f.alphaFn)
}

// alphaTick decays alpha toward zero while no CNPs arrive, re-arming itself
// until the estimate is negligible. The fired Event is kept on the flow for
// reuse by the next arm.
func (f *Flow) alphaTick() {
	f.alpha *= 1 - f.P.G
	if f.alpha > 1e-6 {
		f.armAlphaTimer()
	} else {
		f.alpha = 0
	}
}

func (f *Flow) armIncreaseTimer() {
	f.incEv = f.net.Q.ResetAfter(f.incEv, f.P.IncreaseTimer, f.incFn)
}

// incTick runs one timer-driven stage of the rate-recovery machinery,
// re-arming while the flow still has bytes to send or headroom to recover.
func (f *Flow) incTick() {
	f.increase(true)
	if f.sent < f.Size || f.rc < f.line {
		f.armIncreaseTimer()
	}
}

// increase runs one stage of the rate-recovery state machine. timer selects
// whether the trigger was the timer or the byte counter.
func (f *Flow) increase(timer bool) {
	if timer {
		f.tc++
	} else {
		f.bc++
	}
	fr := f.P.FastRecoverySteps
	switch {
	case f.tc > fr && f.bc > fr: // hyper increase
		i := f.tc - fr
		if f.bc-fr < i {
			i = f.bc - fr
		}
		f.rt += simtime.Rate(i) * f.P.RateHAI
	case f.tc > fr || f.bc > fr: // additive increase
		f.rt += f.P.RateAI
	default: // fast recovery: converge toward the pre-cut target
	}
	if f.rt > f.line {
		f.rt = f.line
	}
	f.increased = true
	f.rc = (f.rt + f.rc) / 2
	if f.rc > f.line {
		f.rc = f.line
	}
}

// handle is the notification point's packet entry: it counts delivered
// bytes, converts CE marks into paced CNPs, and detects completion.
func (r *Receiver) handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.KindData {
		return
	}
	r.rcvd += int64(pkt.Size - netsim.DataHeaderBytes)

	if pkt.CE {
		r.MarkedSeen++
		now := r.net.Now()
		if !r.cnpSent || now.Sub(r.lastCNP) >= r.P.CNPInterval {
			r.cnpSent = true
			r.lastCNP = now
			cnp := r.net.AllocPacket()
			cnp.Kind = netsim.KindCNP
			cnp.Flow = r.ID
			cnp.Src = r.Dst.ID()
			cnp.Dst = r.SrcID
			cnp.Prio = r.P.Prio
			cnp.Size = netsim.CtrlPacketBytes
			// CNPs ride a protected class in RoCE deployments: model
			// that by making them ECN-capable, so WRED marks rather
			// than drops them (nothing reads CE on a CNP).
			cnp.ECT = true
			r.Dst.Send(cnp)
		}
	}

	if r.rcvd >= r.Size && !r.done {
		r.done = true
		r.End = r.net.Now()
		r.Dst.Unregister(r.ID)
		if r.onDone != nil {
			r.onDone(r)
		}
	}
}

// senderTeardown cancels the reaction point's timers and unregisters the
// sender endpoint. It touches sender-shard state only.
func (f *Flow) senderTeardown() {
	f.sentAll = true
	for _, ev := range []*eventq.Event{f.paceEv, f.alphaEv, f.incEv} {
		ev.Cancel()
	}
	f.paceEv, f.alphaEv, f.incEv = nil, nil, nil
	f.Src.Unregister(f.ID)
}

// SenderDone reports whether the sender handed its last byte to the NIC and
// tore down (the sender-shard notion of completion; the receiver's Done
// lands one delivery later).
func (f *Flow) SenderDone() bool { return f.sentAll }

// NICReady implements netsim.Waiter: the parked pacer's turn came.
func (f *Flow) NICReady() { f.trySend() }

// WaiterID implements netsim.Waiter.
func (f *Flow) WaiterID() (uint8, netsim.FlowID) { return netsim.WaiterDCQCN, f.ID }
