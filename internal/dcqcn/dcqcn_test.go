package dcqcn_test

import (
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

func star(t *testing.T, n int, seed int64) (*netsim.Network, *topo.Fabric) {
	t.Helper()
	net := netsim.New(seed)
	cfg := topo.DefaultConfig()
	f := topo.Star(net, n, cfg)
	return net, f
}

// A single unmarked flow should finish at close to line rate.
func TestSingleFlowLineRate(t *testing.T) {
	net, f := star(t, 2, 1)
	size := int64(10 * simtime.MB)
	var got *dcqcn.Flow
	fl := dcqcn.Start(net, f.Hosts[0], f.Hosts[1], size, dcqcn.DefaultParams(25*simtime.Gbps), func(fl *dcqcn.Flow) { got = fl })
	net.RunUntil(simtime.Time(simtime.Second))
	if got == nil {
		t.Fatalf("flow did not complete; received %d of %d", fl.Received(), size)
	}
	// Ideal time: payload at goodput = line * MTU/(MTU+hdr) over 2 hops.
	goodput := 25 * simtime.Gbps * simtime.Rate(float64(netsim.DefaultMTU)/float64(netsim.DefaultMTU+netsim.DataHeaderBytes))
	ideal := simtime.TxTime(int(size), goodput)
	fct := got.FCT()
	if float64(fct) < 0.999*float64(ideal) {
		t.Fatalf("FCT %v faster than ideal %v", fct, ideal)
	}
	if float64(fct) > 1.1*float64(ideal) {
		t.Fatalf("FCT %v more than 10%% over ideal %v (achieved %.1fGbps)",
			fct, ideal, float64(simtime.RateOf(size, fct))/1e9)
	}
	if got.CNPs != 0 {
		t.Fatalf("uncontended flow saw %d CNPs", got.CNPs)
	}
}

// Incast: N senders to one receiver must (a) complete, (b) share fairly,
// and (c) keep a bounded queue thanks to ECN marking.
func TestIncastConvergence(t *testing.T) {
	const n = 8
	net, f := star(t, n+1, 2)
	recv := f.Hosts[n]
	size := int64(2 * simtime.MB)
	var done int
	flows := make([]*dcqcn.Flow, n)
	for i := 0; i < n; i++ {
		flows[i] = dcqcn.Start(net, f.Hosts[i], recv, size, dcqcn.DefaultParams(25*simtime.Gbps), func(*dcqcn.Flow) { done++ })
	}
	net.RunUntil(simtime.Time(100 * simtime.Millisecond))
	if done != n {
		t.Fatalf("only %d/%d flows completed", done, n)
	}
	sw := f.Leaves[0]
	if sw.MarksTotal == 0 {
		t.Fatal("incast produced no ECN marks")
	}
	if sw.DropsTotal != 0 {
		t.Fatalf("%d drops despite PFC+ECN", sw.DropsTotal)
	}
	// The aggregate should be near line rate: total bytes / last FCT.
	var last simtime.Duration
	for _, fl := range flows {
		if fl.FCT() > last {
			last = fl.FCT()
		}
		if fl.CNPs == 0 {
			t.Errorf("flow %d never received a CNP during incast", fl.ID)
		}
	}
	// SECN1's tiny Kmin (5KB) trades throughput for latency — exactly the
	// paper's Observation 2. With realistic (Mellanox-scale) rate-increase
	// constants the 8:1 burst converges well below line rate; require a
	// sane floor rather than line rate.
	agg := simtime.RateOf(size*n, last)
	if agg < 6*simtime.Gbps {
		t.Fatalf("aggregate goodput %.1fGbps < 6Gbps", float64(agg)/1e9)
	}
}

// Lower Kmin must produce shorter queues (the core ECN tradeoff the paper
// tunes, Observation 1).
func TestKminControlsQueueDepth(t *testing.T) {
	peak := func(kminKB int) int {
		net, f := star(t, 9, 3)
		sw := f.Leaves[0]
		for _, p := range sw.Ports {
			for _, q := range p.Queues {
				q.RED.Kmin = kminKB * simtime.KB
				q.RED.Kmax = kminKB * simtime.KB * 8
				q.RED.Pmax = 0.2
			}
		}
		recv := f.Hosts[8]
		for i := 0; i < 8; i++ {
			dcqcn.Start(net, f.Hosts[i], recv, 4*simtime.MB, dcqcn.DefaultParams(25*simtime.Gbps), nil)
		}
		maxQ := 0
		// Sample the egress queue to the receiver every 10us.
		rxPort := sw.Ports[8]
		var sample func()
		sample = func() {
			if b := rxPort.Queues[0].Bytes(); b > maxQ {
				maxQ = b
			}
			net.Q.After(10*simtime.Microsecond, sample)
		}
		net.Q.After(0, sample)
		net.RunUntil(simtime.Time(20 * simtime.Millisecond))
		return maxQ
	}
	small, large := peak(10), peak(400)
	if small >= large {
		t.Fatalf("peak queue with Kmin=10KB (%d) not below Kmin=400KB (%d)", small, large)
	}
}

// Determinism: identical seeds give identical results.
func TestDeterminism(t *testing.T) {
	run := func() (simtime.Duration, uint64) {
		net, f := star(t, 9, 42)
		recv := f.Hosts[8]
		var last simtime.Duration
		for i := 0; i < 8; i++ {
			dcqcn.Start(net, f.Hosts[i], recv, simtime.MB, dcqcn.DefaultParams(25*simtime.Gbps), func(fl *dcqcn.Flow) {
				if fl.FCT() > last {
					last = fl.FCT()
				}
			})
		}
		net.RunUntil(simtime.Time(simtime.Second))
		return last, f.Leaves[0].MarksTotal
	}
	f1, m1 := run()
	f2, m2 := run()
	if f1 != f2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", f1, m1, f2, m2)
	}
}

// Rate cut math: one CNP should cut the rate by alpha/2 with alpha ramping
// from g.
func TestLeafSpinePath(t *testing.T) {
	net := netsim.New(7)
	f := topo.LeafSpine(net, 2, 2, 2, topo.DefaultConfig())
	src := f.HostsAt[0][0]
	dst := f.HostsAt[1][0]
	var fl *dcqcn.Flow
	fl = dcqcn.Start(net, src, dst, simtime.MB, dcqcn.DefaultParams(25*simtime.Gbps), nil)
	net.RunUntil(simtime.Time(50 * simtime.Millisecond))
	if !fl.Done() {
		t.Fatalf("cross-leaf flow incomplete: %d/%d bytes", fl.Received(), fl.Size)
	}
	achieved := simtime.RateOf(fl.Size, fl.FCT())
	if achieved < 20*simtime.Gbps {
		t.Fatalf("cross-leaf goodput %.1fGbps < 20Gbps", float64(achieved)/1e9)
	}
}
