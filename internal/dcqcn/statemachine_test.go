package dcqcn_test

import (
	"math"
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// markAll configures the fabric to CE-mark every ECT packet.
func markAll(f *topo.Fabric) {
	for _, sw := range f.Switches() {
		sw.SetRED(red.Config{Kmin: 0, Kmax: 0, Pmax: 1})
	}
}

// TestFirstCNPHalvesRate: with α initialized to 1, the first CNP must cut
// the rate by exactly half (per the DCQCN paper).
func TestFirstCNPHalvesRate(t *testing.T) {
	net, f := star(t, 2, 31)
	markAll(f)
	line := 25 * simtime.Gbps
	fl := dcqcn.Start(net, f.Hosts[0], f.Hosts[1], 100*simtime.MB, dcqcn.DefaultParams(line), nil)
	// Run until exactly one CNP has been processed.
	for fl.CNPs == 0 && net.Q.Step() {
	}
	if fl.CNPs != 1 {
		t.Fatalf("expected to stop at first CNP, got %d", fl.CNPs)
	}
	want := float64(line) / 2
	if math.Abs(float64(fl.Rate())-want) > 1e-6*want {
		t.Fatalf("rate after first CNP %v, want %v", fl.Rate(), simtime.Rate(want))
	}
	// α update with α=1 is a fixed point: (1-g)·1+g = 1.
	if a := fl.Alpha(); a < 0.999 || a > 1.0001 {
		t.Fatalf("alpha after first CNP %v, want exactly 1", a)
	}
}

// TestRepeatedCNPsReachFloor: sustained marking must drive the rate to the
// configured floor, never below.
func TestRepeatedCNPsReachFloor(t *testing.T) {
	net, f := star(t, 2, 32)
	markAll(f)
	p := dcqcn.DefaultParams(25 * simtime.Gbps)
	fl := dcqcn.Start(net, f.Hosts[0], f.Hosts[1], 1<<40, p, nil)
	net.RunUntil(simtime.Time(5 * simtime.Millisecond))
	if fl.Rate() < p.MinRate {
		t.Fatalf("rate %v below floor %v", fl.Rate(), p.MinRate)
	}
	if fl.Rate() > 4*p.MinRate {
		t.Fatalf("rate %v not driven near floor %v under full marking", fl.Rate(), p.MinRate)
	}
	if fl.RateCuts < 10 {
		t.Fatalf("only %d cuts under sustained marking", fl.RateCuts)
	}
}

// TestAlphaDecaysWithoutCNPs: once marking stops, α must decay toward 0 via
// the 55µs timer.
func TestAlphaDecaysWithoutCNPs(t *testing.T) {
	net, f := star(t, 2, 33)
	markAll(f)
	p := dcqcn.DefaultParams(25 * simtime.Gbps)
	fl := dcqcn.Start(net, f.Hosts[0], f.Hosts[1], 1<<40, p, nil)
	net.RunUntil(simtime.Time(simtime.Millisecond))
	alphaDuring := fl.Alpha()
	// Stop marking entirely.
	for _, sw := range f.Switches() {
		sw.SetRED(red.Config{Kmin: 1 << 30, Kmax: 1 << 30, Pmax: 1})
	}
	net.RunUntil(simtime.Time(20 * simtime.Millisecond))
	if fl.Alpha() > alphaDuring/2 {
		t.Fatalf("alpha %v did not decay (was %v during marking)", fl.Alpha(), alphaDuring)
	}
}

// TestRateRecoversAfterMarkingStops: fast recovery + increase must bring
// the rate back toward line rate once the congestion signal clears.
func TestRateRecoversAfterMarkingStops(t *testing.T) {
	net, f := star(t, 2, 34)
	markAll(f)
	p := dcqcn.DefaultParams(25 * simtime.Gbps)
	fl := dcqcn.Start(net, f.Hosts[0], f.Hosts[1], 1<<40, p, nil)
	net.RunUntil(simtime.Time(2 * simtime.Millisecond))
	suppressed := float64(fl.Rate())
	for _, sw := range f.Switches() {
		sw.SetRED(red.Config{Kmin: 1 << 30, Kmax: 1 << 30, Pmax: 1})
	}
	net.RunUntil(simtime.Time(60 * simtime.Millisecond))
	if float64(fl.Rate()) < 10*suppressed && fl.Rate() < 20*simtime.Gbps {
		t.Fatalf("rate %v failed to recover from %v", fl.Rate(), simtime.Rate(suppressed))
	}
}

// TestCNPPacing: the notification point must not send CNPs faster than the
// configured interval per flow.
func TestCNPPacing(t *testing.T) {
	net, f := star(t, 2, 35)
	markAll(f)
	p := dcqcn.DefaultParams(25 * simtime.Gbps)
	fl := dcqcn.Start(net, f.Hosts[0], f.Hosts[1], 1<<40, p, nil)
	d := 5 * simtime.Millisecond
	net.RunUntil(simtime.Time(d))
	maxCNPs := uint64(d/p.CNPInterval) + 2
	if fl.CNPs > maxCNPs {
		t.Fatalf("%d CNPs in %v exceeds the %v pacing bound (%d)", fl.CNPs, d, p.CNPInterval, maxCNPs)
	}
	if fl.MarkedSeen() <= fl.CNPs {
		t.Fatalf("marked packets (%d) should exceed paced CNPs (%d) under full marking", fl.MarkedSeen(), fl.CNPs)
	}
}

// TestClampTargetRateAblation: with clamping disabled (Mellanox-style), a
// burst of CNPs preserves the pre-burst target, so recovery is faster than
// with the DCQCN-paper clamped default.
func TestClampTargetRateAblation(t *testing.T) {
	recoveryRate := func(clamp bool) simtime.Rate {
		net, f := star(t, 2, 36)
		markAll(f)
		p := dcqcn.DefaultParams(25 * simtime.Gbps)
		p.ClampTargetRate = clamp
		fl := dcqcn.Start(net, f.Hosts[0], f.Hosts[1], 1<<40, p, nil)
		net.RunUntil(simtime.Time(simtime.Millisecond))
		for _, sw := range f.Switches() {
			sw.SetRED(red.Config{Kmin: 1 << 30, Kmax: 1 << 30, Pmax: 1})
		}
		net.RunUntil(simtime.Time(3 * simtime.Millisecond))
		return fl.Rate()
	}
	clamped := recoveryRate(true)
	unclamped := recoveryRate(false)
	if unclamped <= clamped {
		t.Fatalf("unclamped recovery (%v) not faster than clamped (%v)", unclamped, clamped)
	}
}

// TestFlowTeardownReleasesEndpoints: after completion, late packets for the
// flow must be dropped without effect and new flows can reuse hosts.
func TestFlowTeardownReleasesEndpoints(t *testing.T) {
	net, f := star(t, 2, 37)
	var first *dcqcn.Flow
	first = dcqcn.Start(net, f.Hosts[0], f.Hosts[1], 10*simtime.KB, dcqcn.DefaultParams(25*simtime.Gbps), nil)
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	if !first.Done() {
		t.Fatal("first flow incomplete")
	}
	// A stray packet for the finished flow must be ignored (no panic).
	f.Hosts[1].Receive(&netsim.Packet{Kind: netsim.KindData, Flow: first.ID, Size: 100}, f.Hosts[1].Port)
	// New flow works fine.
	second := dcqcn.Start(net, f.Hosts[0], f.Hosts[1], 10*simtime.KB, dcqcn.DefaultParams(25*simtime.Gbps), nil)
	net.RunUntil(simtime.Time(20 * simtime.Millisecond))
	if !second.Done() {
		t.Fatal("second flow incomplete after teardown of the first")
	}
}
