package dcqcn

import (
	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// Snapshot support. A live Flow (reaction point) or Receiver (notification
// point) serializes its complete dynamic state; restore constructors
// rebuild the object on a freshly restored Network — registering the
// endpoint and re-arming timers at their recorded (time, seq) slots,
// without the initial trySend or any other construction side effect.
// Completed halves unregister themselves and are never enumerated, so only
// live flows appear in snapshots.

func saveParams(w *codec.Writer, p Params) {
	w.Int(p.MTU)
	w.Int(p.Prio)
	w.I64(int64(p.CNPInterval))
	w.F64(p.G)
	w.I64(int64(p.AlphaTimer))
	w.I64(int64(p.IncreaseTimer))
	w.I64(p.ByteCounter)
	w.Int(p.FastRecoverySteps)
	w.I64(int64(p.RateAI))
	w.I64(int64(p.RateHAI))
	w.I64(int64(p.MinRate))
	w.I64(int64(p.InitRate))
	w.Bool(p.ClampTargetRate)
}

func loadParams(r *codec.Reader) Params {
	var p Params
	p.MTU = r.Int()
	p.Prio = r.Int()
	p.CNPInterval = simtime.Duration(r.I64())
	p.G = r.F64()
	p.AlphaTimer = simtime.Duration(r.I64())
	p.IncreaseTimer = simtime.Duration(r.I64())
	p.ByteCounter = r.I64()
	p.FastRecoverySteps = r.Int()
	p.RateAI = simtime.Rate(r.I64())
	p.RateHAI = simtime.Rate(r.I64())
	p.MinRate = simtime.Rate(r.I64())
	p.InitRate = simtime.Rate(r.I64())
	p.ClampTargetRate = r.Bool()
	return p
}

// SaveState writes the reaction point's dynamic state.
func (f *Flow) SaveState(w *codec.Writer) {
	w.Tag("dcqcn-tx")
	w.U64(uint64(f.ID))
	w.Int(f.DstID)
	w.I64(f.Size)
	saveParams(w, f.P)
	w.I64(int64(f.Start))
	w.I64(int64(f.line))
	w.I64(int64(f.rc))
	w.I64(int64(f.rt))
	w.F64(f.alpha)
	w.Int(f.tc)
	w.Int(f.bc)
	w.I64(f.incBytes)
	w.I64(f.sent)
	w.Bool(f.increased)
	w.U64(f.CNPs)
	w.U64(f.RateCuts)
	eventq.SaveTimer(w, f.paceEv)
	eventq.SaveTimer(w, f.alphaEv)
	eventq.SaveTimer(w, f.incEv)
}

// RestoreSender rebuilds a live reaction point saved by SaveState on src,
// registering its endpoint and re-arming its timers. No packets are sent
// and no RNG is drawn.
func RestoreSender(net *netsim.Network, src *netsim.Host, r *codec.Reader) *Flow {
	r.Expect("dcqcn-tx")
	f := &Flow{Src: src, net: net}
	f.ID = netsim.FlowID(r.U64())
	f.DstID = r.Int()
	f.Size = r.I64()
	f.P = loadParams(r)
	f.Start = simtime.Time(r.I64())
	f.line = simtime.Rate(r.I64())
	f.rc = simtime.Rate(r.I64())
	f.rt = simtime.Rate(r.I64())
	f.alpha = r.F64()
	f.tc = r.Int()
	f.bc = r.Int()
	f.incBytes = r.I64()
	f.sent = r.I64()
	f.increased = r.Bool()
	f.CNPs = r.U64()
	f.RateCuts = r.U64()
	f.trySendFn = f.trySend
	f.alphaFn = f.alphaTick
	f.incFn = f.incTick
	f.paceEv = net.Q.RestoreTimer(r, f.trySendFn)
	f.alphaEv = net.Q.RestoreTimer(r, f.alphaFn)
	f.incEv = net.Q.RestoreTimer(r, f.incFn)
	if r.Err() != nil {
		return nil
	}
	src.Register(f.ID, netsim.EndpointFunc(f.senderHandle))
	return f
}

// SaveState writes the notification point's dynamic state.
func (rx *Receiver) SaveState(w *codec.Writer) {
	w.Tag("dcqcn-rx")
	w.U64(uint64(rx.ID))
	w.Int(rx.SrcID)
	w.I64(rx.Size)
	saveParams(w, rx.P)
	w.I64(int64(rx.Start))
	w.I64(rx.rcvd)
	w.I64(int64(rx.lastCNP))
	w.Bool(rx.cnpSent)
	w.U64(rx.MarkedSeen)
}

// RestoreReceiver rebuilds a live notification point on dst. onDone is the
// world's completion callback, re-bound by the caller (it cannot be
// serialized).
func RestoreReceiver(dst *netsim.Host, onDone func(*Receiver), r *codec.Reader) *Receiver {
	r.Expect("dcqcn-rx")
	rx := &Receiver{Dst: dst, net: dst.Net(), onDone: onDone}
	rx.ID = netsim.FlowID(r.U64())
	rx.SrcID = r.Int()
	rx.Size = r.I64()
	rx.P = loadParams(r)
	rx.Start = simtime.Time(r.I64())
	rx.rcvd = r.I64()
	rx.lastCNP = simtime.Time(r.I64())
	rx.cnpSent = r.Bool()
	rx.MarkedSeen = r.U64()
	if r.Err() != nil {
		return nil
	}
	dst.Register(rx.ID, netsim.EndpointFunc(rx.handle))
	return rx
}
