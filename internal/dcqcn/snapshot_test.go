package dcqcn_test

import (
	"bytes"
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// midFlight builds a congested incast and stops mid-run, returning the
// instrumented sender/receiver pair plus the network they live on. The
// contention guarantees non-trivial dynamic state: CNPs, rate cuts,
// alpha decay, armed timers.
func midFlight(t *testing.T, seed int64) (*netsim.Network, *dcqcn.Flow, *dcqcn.Receiver) {
	t.Helper()
	net, f := star(t, 6, seed)
	p := dcqcn.DefaultParams(25 * simtime.Gbps)
	size := int64(4 * simtime.MB)

	id := net.NextFlowID()
	rx := dcqcn.StartReceiver(id, f.Hosts[0].ID(), f.Hosts[5], size, p, nil)
	fl := dcqcn.StartSender(net, id, f.Hosts[0], f.Hosts[5].ID(), size, p)
	for i := 1; i < 5; i++ {
		dcqcn.Start(net, f.Hosts[i], f.Hosts[5], size, p, nil)
	}
	net.RunUntil(simtime.Time(400 * simtime.Microsecond))
	if fl.Sent() == 0 || fl.Sent() >= size {
		t.Fatalf("flow not mid-flight: sent %d of %d", fl.Sent(), size)
	}
	return net, fl, rx
}

// TestSenderSnapshotRoundTrip is the encode∘decode identity property for
// the reaction point: save a mid-flight sender, restore it onto a fresh
// fabric, save again — byte-identical, timers at their recorded slots.
func TestSenderSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		_, fl, _ := midFlight(t, seed)
		w := codec.NewWriter()
		fl.SaveState(w)
		img := w.Finish()

		net2, f2 := star(t, 6, seed)
		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		fl2 := dcqcn.RestoreSender(net2, f2.Hosts[0], r)
		if fl2 == nil || r.Err() != nil {
			t.Fatalf("seed %d: RestoreSender: %v", seed, r.Err())
		}
		if fl2.ID != fl.ID || fl2.Sent() != fl.Sent() || fl2.CNPs != fl.CNPs {
			t.Fatalf("seed %d: restored sender diverges: id %v/%v sent %d/%d cnps %d/%d",
				seed, fl2.ID, fl.ID, fl2.Sent(), fl.Sent(), fl2.CNPs, fl.CNPs)
		}
		w2 := codec.NewWriter()
		fl2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("seed %d: save∘restore∘save changed bytes (%d vs %d)", seed, len(img), len(img2))
		}
	}
}

// TestReceiverSnapshotRoundTrip: the notification point's counterpart.
func TestReceiverSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		_, _, rx := midFlight(t, seed)
		w := codec.NewWriter()
		rx.SaveState(w)
		img := w.Finish()

		_, f2 := star(t, 6, seed)
		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		rx2 := dcqcn.RestoreReceiver(f2.Hosts[5], nil, r)
		if rx2 == nil || r.Err() != nil {
			t.Fatalf("seed %d: RestoreReceiver: %v", seed, r.Err())
		}
		w2 := codec.NewWriter()
		rx2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("seed %d: save∘restore∘save changed bytes", seed)
		}
	}
}
