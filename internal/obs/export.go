package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// appendJSON renders one record as a single-line JSON object. Fields that
// are not meaningful for the record's kind (-1 indices, zero scalars) are
// omitted so traces stay compact and greppable.
func appendJSON(buf []byte, r Record) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendFloat(buf, r.Time.Seconds(), 'g', -1, 64)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, r.Kind.String()...)
	buf = append(buf, '"')
	if r.Kind == KindDrop {
		buf = append(buf, `,"reason":"`...)
		buf = append(buf, r.Reason.String()...)
		buf = append(buf, '"')
	}
	if r.Node >= 0 {
		buf = append(buf, `,"node":`...)
		buf = strconv.AppendInt(buf, int64(r.Node), 10)
	}
	if r.Shard >= 0 {
		buf = append(buf, `,"shard":`...)
		buf = strconv.AppendInt(buf, int64(r.Shard), 10)
	}
	if r.Port >= 0 {
		buf = append(buf, `,"port":`...)
		buf = strconv.AppendInt(buf, int64(r.Port), 10)
	}
	if r.Prio >= 0 {
		buf = append(buf, `,"prio":`...)
		buf = strconv.AppendInt(buf, int64(r.Prio), 10)
	}
	if r.Flow != 0 {
		buf = append(buf, `,"flow":`...)
		buf = strconv.AppendUint(buf, r.Flow, 10)
	}
	if r.Size != 0 {
		buf = append(buf, `,"size":`...)
		buf = strconv.AppendInt(buf, int64(r.Size), 10)
	}
	if r.Kind == KindAgent || r.Kind == KindWRED {
		buf = append(buf, `,"action":`...)
		buf = strconv.AppendInt(buf, int64(r.Action), 10)
	}
	if r.V1 != 0 || r.V2 != 0 || r.V3 != 0 {
		buf = append(buf, `,"v1":`...)
		buf = strconv.AppendFloat(buf, r.V1, 'g', -1, 64)
		buf = append(buf, `,"v2":`...)
		buf = strconv.AppendFloat(buf, r.V2, 'g', -1, 64)
		buf = append(buf, `,"v3":`...)
		buf = strconv.AppendFloat(buf, r.V3, 'g', -1, 64)
	}
	return append(buf, '}', '\n')
}

// WriteJSONL dumps the most recent last records (<=0 = all resident) as
// JSON Lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer, last int) error {
	if t == nil {
		return nil
	}
	recs := t.Last(last)
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, r := range recs {
		buf = appendJSON(buf[:0], r)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePrometheus renders the tracer's counters (and, when run is non-nil,
// the run's engine totals) in the Prometheus text exposition format.
func WritePrometheus(w io.Writer, t *Tracer, run *Run) error {
	bw := bufio.NewWriter(w)
	snap := t.Snapshot()
	fmt.Fprintln(bw, "# HELP accsim_trace_records_total Trace records emitted, by kind.")
	fmt.Fprintln(bw, "# TYPE accsim_trace_records_total counter")
	for k := Kind(0); k < numKinds; k++ {
		if n, ok := snap.ByKind[k.String()]; ok {
			fmt.Fprintf(bw, "accsim_trace_records_total{kind=%q} %d\n", k.String(), n)
		}
	}
	fmt.Fprintln(bw, "# HELP accsim_drops_total Packet drops traced, by reason.")
	fmt.Fprintln(bw, "# TYPE accsim_drops_total counter")
	for r := DropReason(1); r < numReasons; r++ {
		if n, ok := snap.Drops[r.String()]; ok {
			fmt.Fprintf(bw, "accsim_drops_total{reason=%q} %d\n", r.String(), n)
		}
	}
	fmt.Fprintln(bw, "# HELP accsim_trace_ring_resident Records currently resident in the trace ring.")
	fmt.Fprintln(bw, "# TYPE accsim_trace_ring_resident gauge")
	fmt.Fprintf(bw, "accsim_trace_ring_resident %d\n", t.Len())
	if run != nil {
		m := run.Manifest()
		fmt.Fprintln(bw, "# HELP accsim_run_events_processed_total Simulator events processed across the run's networks.")
		fmt.Fprintln(bw, "# TYPE accsim_run_events_processed_total counter")
		fmt.Fprintf(bw, "accsim_run_events_processed_total %d\n", m.EventsProcessed)
		fmt.Fprintln(bw, "# HELP accsim_run_packets_alloced_total Packets drawn from the per-network pools across the run.")
		fmt.Fprintln(bw, "# TYPE accsim_run_packets_alloced_total counter")
		fmt.Fprintf(bw, "accsim_run_packets_alloced_total %d\n", m.PacketsAlloced)
		fmt.Fprintln(bw, "# HELP accsim_run_finished Whether the current run's manifest is final.")
		fmt.Fprintln(bw, "# TYPE accsim_run_finished gauge")
		fin := 0
		if m.Finished {
			fin = 1
		}
		fmt.Fprintf(bw, "accsim_run_finished %d\n", fin)
	}
	return bw.Flush()
}

// ParsePrometheus validates text in the Prometheus exposition format and
// returns the sample values keyed by "name{labels}". It accepts the subset
// the scrape protocol requires — # comment lines and `name[{labels}] value`
// samples — and rejects anything else, so tests and CI can assert our
// /metrics output would survive a real scrape.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: metrics line %d: no value: %q", lineNo, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: bad value %q: %v", lineNo, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				return nil, fmt.Errorf("obs: metrics line %d: unterminated labels: %q", lineNo, line)
			}
			name = key[:i]
		}
		if !validMetricName(name) {
			return nil, fmt.Errorf("obs: metrics line %d: bad metric name %q", lineNo, name)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// ValidateTraceJSONL checks that every line of a JSONL trace parses as a
// JSON object with a "kind" field, returning the record count.
func ValidateTraceJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		n++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return n, fmt.Errorf("obs: trace line %d: %v", n, err)
		}
		if _, ok := rec["kind"].(string); !ok {
			return n, fmt.Errorf("obs: trace line %d: missing kind", n)
		}
	}
	return n, sc.Err()
}

// WriteFiles dumps the run's observability artifacts into dir using the
// given name prefix — <prefix>.manifest.json, <prefix>.trace.jsonl, and
// <prefix>.metrics.prom — then re-reads each file through the matching
// parser so a written artifact is guaranteed loadable. It returns the
// three paths.
func (r *Run) WriteFiles(dir, prefix string) (manifest, trace, metrics string, err error) {
	if err = os.MkdirAll(dir, 0o755); err != nil {
		return "", "", "", err
	}
	write := func(name string, fill func(io.Writer) error) (string, error) {
		path := filepath.Join(dir, prefix+name)
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		if err := fill(f); err != nil {
			f.Close()
			return "", err
		}
		return path, f.Close()
	}
	m := r.Manifest()
	if manifest, err = write(".manifest.json", m.EncodeJSON); err != nil {
		return "", "", "", err
	}
	if trace, err = write(".trace.jsonl", func(w io.Writer) error { return r.Tracer.WriteJSONL(w, 0) }); err != nil {
		return "", "", "", err
	}
	if metrics, err = write(".metrics.prom", func(w io.Writer) error { return WritePrometheus(w, r.Tracer, r) }); err != nil {
		return "", "", "", err
	}
	// Read-back validation: a run whose artifacts cannot be parsed should
	// fail loudly at write time, not when someone finally needs the trace.
	check := func(path string, parse func(io.Reader) error) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return parse(f)
	}
	if err = check(manifest, func(rd io.Reader) error { _, e := DecodeManifest(rd); return e }); err != nil {
		return "", "", "", err
	}
	if err = check(trace, func(rd io.Reader) error { _, e := ValidateTraceJSONL(rd); return e }); err != nil {
		return "", "", "", err
	}
	if err = check(metrics, func(rd io.Reader) error { _, e := ParsePrometheus(rd); return e }); err != nil {
		return "", "", "", err
	}
	return manifest, trace, metrics, nil
}
