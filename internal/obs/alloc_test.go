//go:build !race

package obs

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// TestNilTracerHooksAllocateNothing pins the disabled path: a nil *Tracer
// hook call must cost a nil check and nothing else, so instrumented hot
// paths keep the simulator's zero-allocation guarantees.
func TestNilTracerHooksAllocateNothing(t *testing.T) {
	var tr *Tracer
	now := simtime.Time(0)
	if avg := testing.AllocsPerRun(1000, func() {
		tr.Drop(now, DropWRED, 1, 2, 3, 4, 5)
		tr.Mark(now, 1, 2, 3, 4, 5)
		tr.PFC(now, 1, 2, 3, true)
		tr.WREDUpdate(now, 1, 2, 3, -1, 100, 400, 0.1)
		tr.CNP(now, 1, 2)
		tr.RateCut(now, 1, 2, 100e9, 50e9, 0.5)
		tr.TCPRTO(now, 1, 2, simtime.Millisecond)
		tr.AgentStep(now, 1, 2, 3, 4, 0.9)
		tr.LinkState(now, 1, 2, true)
	}); avg != 0 {
		t.Fatalf("nil-tracer hooks allocate %v/op, want 0", avg)
	}
}

// TestEnabledEmitAllocatesNothingOnceWarm pins the enabled path after the
// ring has filled: records are fixed-size values stored inline, so
// steady-state tracing costs a mutex and a copy, never an allocation.
func TestEnabledEmitAllocatesNothingOnceWarm(t *testing.T) {
	tr := NewTracer(128)
	now := simtime.Time(0)
	for i := 0; i < 256; i++ { // fill past capacity so appends become overwrites
		tr.Mark(now, 1, 2, 3, 4, 5)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		tr.Drop(now, DropOverflow, 1, 2, 3, 4, 5)
		tr.AgentStep(now, 1, 2, 3, 4, 0.9)
	}); avg != 0 {
		t.Fatalf("warm enabled-tracer emit allocates %v/op, want 0", avg)
	}
}
