// Package obs is the observability subsystem: structured event tracing,
// per-run manifests, metrics export, and live introspection for the
// simulator and the ACC tuners.
//
// The design goal is zero overhead when disabled. All hook points call
// methods on a *Tracer that may be nil; every method starts with a nil
// check and returns immediately, so the instrumented hot paths (packet
// drops, ECN marks, PFC, agent decisions) keep the repo's zero-allocation
// guarantees when tracing is off. When enabled, records are fixed-size
// structs (no pointers, no strings) appended to a pre-allocated bounded
// ring buffer under a mutex — trace appends never allocate after
// construction, and concurrent experiment runs (exp.forEachParallel) may
// share one Tracer safely.
//
// Trace records are snapshots: they copy the scalar fields they need at
// the hook point and never retain a *netsim.Packet, so tracing composes
// with the packet pool's ownership rules (see DESIGN.md "Observability").
package obs

import (
	"sync"

	"github.com/accnet/acc/internal/simtime"
)

// Kind discriminates trace record types.
type Kind uint8

// Trace record kinds, one per hooked event class.
const (
	KindDrop      Kind = iota // packet dropped (Reason says why)
	KindECNMark               // packet CE-marked by WRED at a switch
	KindPFCPause              // PFC pause asserted toward an upstream port
	KindPFCResume             // PFC pause lifted
	KindWRED                  // WRED/ECN template update on a queue
	KindCNP                   // DCQCN congestion notification received by a sender
	KindRateCut               // DCQCN multiplicative rate decrease
	KindTCPRTO                // TCP retransmission timeout fired
	KindAgent                 // ACC agent state→action→reward transition
	KindLink                  // link administrative state change (up/down)
	KindDemote                // hybrid engine demoted a link to packet fidelity
	KindPromote               // hybrid engine promoted a link back to analytic fidelity
	KindFlowStart             // workload engine launched a flow (trace recording)

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindECNMark:
		return "ecn_mark"
	case KindPFCPause:
		return "pfc_pause"
	case KindPFCResume:
		return "pfc_resume"
	case KindWRED:
		return "wred_update"
	case KindCNP:
		return "cnp"
	case KindRateCut:
		return "rate_cut"
	case KindTCPRTO:
		return "tcp_rto"
	case KindAgent:
		return "agent_step"
	case KindLink:
		return "link_state"
	case KindDemote:
		return "fidelity_demote"
	case KindPromote:
		return "fidelity_promote"
	case KindFlowStart:
		return "flow_start"
	}
	return "unknown"
}

// DropReason attributes a KindDrop record to its cause. The per-reason
// split mirrors the per-reason counters on netsim.Switch/Port.
type DropReason uint8

const (
	DropNone           DropReason = iota
	DropWRED                      // WRED dropped a non-ECT packet
	DropOverflow                  // shared-buffer overflow at a switch
	DropRouteBlackhole            // every ECMP candidate link was down
	DropLinkBlackhole             // in-flight loss on an administratively down link

	numReasons
)

func (r DropReason) String() string {
	switch r {
	case DropNone:
		return ""
	case DropWRED:
		return "wred"
	case DropOverflow:
		return "overflow"
	case DropRouteBlackhole:
		return "route_blackhole"
	case DropLinkBlackhole:
		return "link_blackhole"
	}
	return "unknown"
}

// Record is one trace event. It is a fixed-size value type — no pointers,
// no strings — so the ring buffer holds records inline and appending never
// allocates. Field meaning varies by Kind; unused fields are zero. V1..V3
// carry kind-specific scalars:
//
//	KindWRED:    V1=Kmin bytes, V2=Kmax bytes, V3=Pmax
//	KindRateCut: V1=old rate bits/s, V2=new rate bits/s, V3=alpha
//	KindTCPRTO:  V1=RTO seconds
//	KindAgent:   V1=reward, V2=utilization proxy (unused today)
//	KindLink:    V1=1 down, 0 up
//	KindDemote:  V1=analytic flows converted, V2=fluid utilization at the trigger
//	KindPromote: V1=cold windows observed before promotion
//	KindFlowStart: Action=workload class index, V1=flow bytes
type Record struct {
	Time   simtime.Time
	Kind   Kind
	Reason DropReason
	Node   int32 // node id (switch/host), -1 when not applicable
	Shard  int32 // owning shard in a sharded run (psim), -1 otherwise
	Port   int32 // port index within the node, -1 when not applicable
	Prio   int32 // traffic class, -1 when not applicable
	Action int32 // ACC template action index (KindAgent/KindWRED)
	Flow   uint64
	Size   int32 // packet bytes on the wire
	V1     float64
	V2     float64
	V3     float64
}

// Counters is a snapshot of the tracer's monotonic totals, suitable for
// metrics export and manifest embedding.
type Counters struct {
	Emitted uint64            // records emitted (including overwritten)
	ByKind  map[string]uint64 // kind name -> count
	Drops   map[string]uint64 // drop reason -> count
}

// Tracer appends typed trace records to a bounded ring buffer and keeps
// per-kind / per-drop-reason counters. A nil *Tracer is the disabled state:
// every hook method no-ops. Non-nil Tracers are safe for concurrent use;
// experiment harnesses share one Tracer across parallel Networks.
type Tracer struct {
	mu       sync.Mutex
	ring     []Record // capacity fixed at construction
	next     uint64   // total records emitted; ring index is next % cap
	kinds    [numKinds]uint64
	dropRsns [numReasons]uint64
	shardOf  func(node int32) int32 // nil when the run is not sharded
}

// DefaultRingCap is the trace ring capacity used when none is given.
const DefaultRingCap = 1 << 16

// NewTracer returns an enabled tracer whose ring holds the last ringCap
// records (ringCap <= 0 selects DefaultRingCap).
func NewTracer(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Tracer{ring: make([]Record, 0, ringCap)}
}

// Enabled reports whether tracing is on (the receiver is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetShardMap installs the node→shard labeling for a sharded run (psim).
// The map must be immutable for the tracer's lifetime — shard ownership is
// fixed at partition time — and must be installed before the run starts;
// emit stamps each record's Shard under the ring mutex. A nil shardOf (the
// default) labels every record shard -1.
func (t *Tracer) SetShardMap(shardOf func(node int32) int32) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shardOf = shardOf
	t.mu.Unlock()
}

// emit appends one record, overwriting the oldest once the ring is full.
func (t *Tracer) emit(r Record) {
	t.mu.Lock()
	r.Shard = -1
	if t.shardOf != nil && r.Node >= 0 {
		r.Shard = t.shardOf(r.Node)
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next%uint64(cap(t.ring))] = r
	}
	t.next++
	t.kinds[r.Kind]++
	if r.Kind == KindDrop {
		t.dropRsns[r.Reason]++
	}
	t.mu.Unlock()
}

// Drop records a packet drop with its reason.
func (t *Tracer) Drop(now simtime.Time, reason DropReason, node, port, prio int, flow uint64, size int) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindDrop, Reason: reason,
		Node: int32(node), Port: int32(port), Prio: int32(prio), Flow: flow, Size: int32(size)})
}

// Mark records a WRED CE mark at a switch egress queue.
func (t *Tracer) Mark(now simtime.Time, node, port, prio int, flow uint64, size int) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindECNMark,
		Node: int32(node), Port: int32(port), Prio: int32(prio), Flow: flow, Size: int32(size)})
}

// PFC records a pause asserted (pause=true) or lifted toward the upstream
// device on the given ingress port and priority.
func (t *Tracer) PFC(now simtime.Time, node, port, prio int, pause bool) {
	if t == nil {
		return
	}
	k := KindPFCResume
	if pause {
		k = KindPFCPause
	}
	t.emit(Record{Time: now, Kind: k, Node: int32(node), Port: int32(port), Prio: int32(prio)})
}

// WREDUpdate records a template change on one egress queue. action is the
// ACC template index, or -1 for static (SetRED) installs.
func (t *Tracer) WREDUpdate(now simtime.Time, node, port, prio, action int, kminBytes, kmaxBytes int, pmax float64) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindWRED,
		Node: int32(node), Port: int32(port), Prio: int32(prio), Action: int32(action),
		V1: float64(kminBytes), V2: float64(kmaxBytes), V3: pmax})
}

// CNP records a DCQCN congestion notification arriving at a sender.
func (t *Tracer) CNP(now simtime.Time, node int, flow uint64) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindCNP, Node: int32(node), Port: -1, Prio: -1, Flow: flow})
}

// RateCut records a DCQCN multiplicative decrease (rates in bits/s).
func (t *Tracer) RateCut(now simtime.Time, node int, flow uint64, oldRate, newRate, alpha float64) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindRateCut, Node: int32(node), Port: -1, Prio: -1,
		Flow: flow, V1: oldRate, V2: newRate, V3: alpha})
}

// TCPRTO records a TCP retransmission timeout firing.
func (t *Tracer) TCPRTO(now simtime.Time, node int, flow uint64, rto simtime.Duration) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindTCPRTO, Node: int32(node), Port: -1, Prio: -1,
		Flow: flow, V1: rto.Seconds()})
}

// AgentStep records one ACC tuner decision: monitored queue index, chosen
// template action, and the reward measured this interval.
func (t *Tracer) AgentStep(now simtime.Time, node, queue, prio, action int, reward float64) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindAgent,
		Node: int32(node), Port: int32(queue), Prio: int32(prio), Action: int32(action), V1: reward})
}

// FidelityDemote records a hybrid-engine link demotion: the analytic flows
// crossing the port were converted to packet level (flows of them) because a
// deterministic trigger fired at fluid utilization util.
func (t *Tracer) FidelityDemote(now simtime.Time, node, port, flows int, util float64) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindDemote,
		Node: int32(node), Port: int32(port), Prio: -1, V1: float64(flows), V2: util})
}

// FidelityPromote records a hybrid-engine link promotion back to analytic
// fidelity after cold consecutive quiet windows.
func (t *Tracer) FidelityPromote(now simtime.Time, node, port, cold int) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindPromote,
		Node: int32(node), Port: int32(port), Prio: -1, V1: float64(cold)})
}

// FlowStart records the workload engine launching one flow at its source
// host: the trace-recording hook. class is the workload class index (-1
// when classless).
func (t *Tracer) FlowStart(now simtime.Time, node int, flow uint64, bytes int64, class int) {
	if t == nil {
		return
	}
	t.emit(Record{Time: now, Kind: KindFlowStart,
		Node: int32(node), Port: -1, Prio: -1, Action: int32(class), Flow: flow, V1: float64(bytes)})
}

// LinkState records an administrative link up/down transition.
func (t *Tracer) LinkState(now simtime.Time, node, port int, down bool) {
	if t == nil {
		return
	}
	v := 0.0
	if down {
		v = 1
	}
	t.emit(Record{Time: now, Kind: KindLink, Node: int32(node), Port: int32(port), Prio: -1, V1: v})
}

// Emitted returns the total number of records emitted, including those
// already overwritten in the ring.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Len returns the number of records currently resident in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Last copies out the most recent n records in emission order (oldest
// first). n <= 0 or n > resident returns everything resident.
func (t *Tracer) Last(n int) []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	resident := len(t.ring)
	if n <= 0 || n > resident {
		n = resident
	}
	out := make([]Record, n)
	c := uint64(cap(t.ring))
	for i := 0; i < n; i++ {
		out[i] = t.ring[(t.next-uint64(n)+uint64(i))%c]
	}
	return out
}

// Snapshot returns the tracer's counter totals.
func (t *Tracer) Snapshot() Counters {
	if t == nil {
		return Counters{ByKind: map[string]uint64{}, Drops: map[string]uint64{}}
	}
	c := Counters{ByKind: map[string]uint64{}, Drops: map[string]uint64{}}
	t.mu.Lock()
	defer t.mu.Unlock()
	c.Emitted = t.next
	for k := Kind(0); k < numKinds; k++ {
		if t.kinds[k] > 0 {
			c.ByKind[k.String()] = t.kinds[k]
		}
	}
	for r := DropReason(1); r < numReasons; r++ {
		if t.dropRsns[r] > 0 {
			c.Drops[r.String()] = t.dropRsns[r]
		}
	}
	return c
}
