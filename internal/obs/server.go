package obs

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// Server is the live introspection endpoint: it serves the current Run's
// metrics, manifest, and trace tail over HTTP, plus net/http/pprof for
// profiling long simulations while they execute. The served Run can be
// swapped between experiments (accsim -exp all) with SetRun.
type Server struct {
	mu  sync.Mutex
	run *Run
}

// NewServer returns a server exposing run (which may be swapped later).
func NewServer(run *Run) *Server { return &Server{run: run} }

// SetRun atomically swaps the run being served.
func (s *Server) SetRun(run *Run) {
	s.mu.Lock()
	s.run = run
	s.mu.Unlock()
}

// Run returns the run currently being served.
func (s *Server) Run() *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run
}

// Handler returns the mux for the introspection endpoint:
//
//	/metrics       Prometheus text-format counters and gauges
//	/manifest      current run manifest as JSON (partial until finished)
//	/trace?last=N  most recent N trace records as JSON Lines (default 256)
//	/debug/pprof/  standard Go profiling endpoints
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		run := s.Run()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		var tr *Tracer
		if run != nil {
			tr = run.Tracer
		}
		_ = WritePrometheus(w, tr, run)
	})
	mux.HandleFunc("/manifest", func(w http.ResponseWriter, _ *http.Request) {
		run := s.Run()
		w.Header().Set("Content-Type", "application/json")
		m := run.Manifest()
		_ = (&m).EncodeJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		run := s.Run()
		last := 256
		if v := r.URL.Query().Get("last"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			last = n
		}
		w.Header().Set("Content-Type", "application/jsonl")
		var tr *Tracer
		if run != nil {
			tr = run.Tracer
		}
		_ = tr.WriteJSONL(w, last)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
