package obs_test

import (
	"io"
	"sync"
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// driveNetwork builds a tiny two-host/one-switch network wired to the
// shared tracer and runs a congested workload through it, emitting mark,
// drop, and wred_update records. Each goroutine owns its Network; only the
// Tracer is shared, mirroring how the parallel experiment runner fans out.
func driveNetwork(tr *obs.Tracer, seed int64, packets int) {
	net := netsim.New(seed)
	net.Tracer = tr
	h1 := netsim.NewHost(net, "h1")
	h2 := netsim.NewHost(net, "h2")
	sw := netsim.NewSwitch(net, netsim.DefaultSwitchConfig("sw"))
	bw := 25 * simtime.Gbps
	d := simtime.Duration(600)
	p1 := h1.AttachPort(bw, d, nil)
	p2 := h2.AttachPort(bw, d, nil)
	s1 := sw.AddPort(bw, d, nil)
	s2 := sw.AddPort(bw, d, nil)
	netsim.Connect(p1, s1)
	netsim.Connect(p2, s2)
	sw.SetRoute(h1.ID(), s1)
	sw.SetRoute(h2.ID(), s2)
	sw.SetRED(red.Config{Kmin: 0, Kmax: 0, Pmax: 1}) // mark ECT, drop the rest
	h2.Register(1, netsim.EndpointFunc(func(*netsim.Packet) {}))
	for i := 0; i < packets; i++ {
		p := &netsim.Packet{
			Kind: netsim.KindData, Flow: 1, Src: h1.ID(), Dst: h2.ID(),
			Size: 1048, ECT: i%2 == 0, // alternate marks and WRED drops
		}
		h1.Send(p)
	}
	net.Run()
}

// TestTracerSharedRingRace hammers one Tracer ring from several
// concurrently running Networks while reader goroutines snapshot, tail,
// and export it. Run under -race (CI does) this proves the ring's locking
// covers every public surface the live introspection server touches.
func TestTracerSharedRingRace(t *testing.T) {
	const (
		writers    = 8
		readers    = 4
		packetsPer = 200
	)
	tr := obs.NewTracer(128) // small ring so writers constantly wrap it

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = tr.Snapshot()
				_ = tr.Last(16)
				_ = tr.Len()
				_ = tr.Emitted()
				_ = tr.WriteJSONL(io.Discard, 32)
				_ = obs.WritePrometheus(io.Discard, tr, nil)
			}
		}()
	}

	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			driveNetwork(tr, seed, packetsPer)
		}(int64(w + 1))
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	// Every network saw every packet hit the zero-threshold WRED gate, so
	// the shared ring must have absorbed all of them.
	snap := tr.Snapshot()
	marks, drops := snap.ByKind["ecn_mark"], snap.ByKind["drop"]
	const want = writers * packetsPer / 2
	if marks != want || drops != want {
		t.Fatalf("shared ring counted marks=%d drops=%d, want %d each (lost events imply a race)", marks, drops, want)
	}
	if got := tr.Emitted(); got < want*2 {
		t.Fatalf("Emitted() = %d, want >= %d", got, want*2)
	}
}
