package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

func statFile(p string) (int64, error) {
	fi, err := os.Stat(p)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func at(ms int) simtime.Time {
	return simtime.Time(0).Add(simtime.Duration(ms) * simtime.Millisecond)
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Mark(at(i), i, 0, 0, uint64(100+i), 1000)
	}
	if got := tr.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10", got)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want ring cap 4", got)
	}
	recs := tr.Last(0)
	if len(recs) != 4 {
		t.Fatalf("Last(0) returned %d records, want 4", len(recs))
	}
	// The ring must hold the 4 newest records, oldest first.
	for i, r := range recs {
		if want := int32(6 + i); r.Node != want {
			t.Fatalf("recs[%d].Node = %d, want %d (oldest-first after wrap)", i, r.Node, want)
		}
	}
	// Last(n) with n < resident trims from the old end.
	recs = tr.Last(2)
	if len(recs) != 2 || recs[0].Node != 8 || recs[1].Node != 9 {
		t.Fatalf("Last(2) = %+v, want nodes 8,9", recs)
	}
	// Counters survive overwrites.
	if snap := tr.Snapshot(); snap.ByKind["ecn_mark"] != 10 {
		t.Fatalf("ByKind[ecn_mark] = %d, want 10", snap.ByKind["ecn_mark"])
	}
}

func TestNilTracerIsDisabledNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every hook must be callable on a nil receiver.
	tr.Drop(at(1), DropWRED, 1, 2, 3, 4, 5)
	tr.Mark(at(1), 1, 2, 3, 4, 5)
	tr.PFC(at(1), 1, 2, 3, true)
	tr.WREDUpdate(at(1), 1, 2, 3, -1, 100, 400, 0.1)
	tr.CNP(at(1), 1, 2)
	tr.RateCut(at(1), 1, 2, 100e9, 50e9, 0.5)
	tr.TCPRTO(at(1), 1, 2, simtime.Millisecond)
	tr.AgentStep(at(1), 1, 2, 3, 4, 0.9)
	tr.LinkState(at(1), 1, 2, true)
	if tr.Emitted() != 0 || tr.Len() != 0 || tr.Last(10) != nil {
		t.Fatal("nil tracer accumulated state")
	}
	snap := tr.Snapshot()
	if snap.Emitted != 0 || len(snap.ByKind) != 0 || len(snap.Drops) != 0 {
		t.Fatalf("nil tracer snapshot non-empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, 0); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer WriteJSONL: err=%v len=%d", err, buf.Len())
	}
	if err := WritePrometheus(&buf, tr, nil); err != nil {
		t.Fatalf("nil tracer WritePrometheus: %v", err)
	}
	if _, err := ParsePrometheus(&buf); err != nil {
		t.Fatalf("nil-tracer metrics snapshot does not parse: %v", err)
	}
}

func emitOneOfEach(tr *Tracer) {
	tr.Drop(at(1), DropWRED, 1, 0, 3, 42, 1048)
	tr.Drop(at(2), DropOverflow, 1, 1, 3, 43, 1048)
	tr.Drop(at(3), DropRouteBlackhole, 2, 0, 3, 44, 1048)
	tr.Drop(at(4), DropLinkBlackhole, 2, 1, 3, 45, 1048)
	tr.Mark(at(5), 1, 0, 3, 42, 1048)
	tr.PFC(at(6), 1, 2, 3, true)
	tr.PFC(at(7), 1, 2, 3, false)
	tr.WREDUpdate(at(8), 1, 0, 3, 5, 100*1024, 400*1024, 0.2)
	tr.CNP(at(9), 7, 42)
	tr.RateCut(at(10), 7, 42, 100e9, 50e9, 0.5)
	tr.TCPRTO(at(11), 8, 77, 4*simtime.Millisecond)
	tr.AgentStep(at(12), 1, 0, 3, 5, 0.93)
	tr.LinkState(at(13), 2, 1, true)
}

func TestJSONLValidatesAndCarriesKinds(t *testing.T) {
	tr := NewTracer(64)
	emitOneOfEach(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTraceJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace JSONL does not validate: %v", err)
	}
	if n != 13 {
		t.Fatalf("trace has %d lines, want 13", n)
	}
	// Spot-check the drop line carries its reason and the WRED line its
	// template, via real JSON decoding rather than string matching.
	var sawWRED, sawDropReason bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		switch rec["kind"] {
		case "wred_update":
			sawWRED = true
			if rec["v1"].(float64) != 100*1024 || rec["v2"].(float64) != 400*1024 {
				t.Fatalf("wred_update template wrong: %v", rec)
			}
		case "drop":
			if rec["reason"] == "link_blackhole" {
				sawDropReason = true
			}
		}
	}
	if !sawWRED || !sawDropReason {
		t.Fatalf("missing expected records: wred=%v dropReason=%v", sawWRED, sawDropReason)
	}
}

func TestPrometheusSnapshotParses(t *testing.T) {
	tr := NewTracer(64)
	emitOneOfEach(tr)
	run := NewRun(64)
	run.Tracer = tr
	run.Begin("unit", 1, 1, nil)
	evs := uint64(0)
	run.RegisterEngine(func() uint64 { evs += 123; return evs }, func() uint64 { return 45 })
	run.Finish()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, tr, run); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("metrics snapshot rejected by scrape parser: %v\n%s", err, buf.String())
	}
	checks := map[string]float64{
		`accsim_trace_records_total{kind="drop"}`:      4,
		`accsim_trace_records_total{kind="ecn_mark"}`:  1,
		`accsim_drops_total{reason="wred"}`:            1,
		`accsim_drops_total{reason="overflow"}`:        1,
		`accsim_drops_total{reason="route_blackhole"}`: 1,
		`accsim_drops_total{reason="link_blackhole"}`:  1,
		`accsim_trace_ring_resident`:                   13,
		`accsim_run_events_processed_total`:            123,
		`accsim_run_packets_alloced_total`:             45,
		`accsim_run_finished`:                          1,
	}
	for key, want := range checks {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("sample %s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"metric{unterminated 1\n",
		"1leading_digit 2\n",
		"ok 1\nbad-name 2\n",
		"metric notanumber\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", bad)
		}
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	run := NewRun(32)
	run.Begin("fig8", 7, 2.0, map[string]string{"offline_episodes": "5"})
	run.RegisterEngine(func() uint64 { return 1000 }, func() uint64 { return 200 })
	run.RegisterEngine(func() uint64 { return 500 }, nil)
	run.Tracer.Drop(at(1), DropOverflow, 1, 2, 3, 4, 5)
	run.Finish()

	var buf bytes.Buffer
	m := run.Manifest()
	if err := m.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "fig8" || got.Seed != 7 || got.Scale != 2.0 {
		t.Fatalf("header mangled: %+v", got)
	}
	if got.Config["offline_episodes"] != "5" {
		t.Fatalf("config mangled: %+v", got.Config)
	}
	if !got.Finished || got.Networks != 2 {
		t.Fatalf("finish totals wrong: finished=%v networks=%d", got.Finished, got.Networks)
	}
	if got.EventsProcessed != 1500 || got.PacketsAlloced != 200 {
		t.Fatalf("engine totals wrong: events=%d packets=%d", got.EventsProcessed, got.PacketsAlloced)
	}
	if got.TraceEmitted != 1 || got.DropsByReason["overflow"] != 1 {
		t.Fatalf("trace totals wrong: %+v", got)
	}
	if got.TraceRingCap != 32 || got.TraceResident != 1 {
		t.Fatalf("ring stats wrong: cap=%d resident=%d", got.TraceRingCap, got.TraceResident)
	}
}

func TestNilRunIsNoOp(t *testing.T) {
	var run *Run
	run.Begin("x", 1, 1, nil)
	run.RegisterEngine(func() uint64 { return 1 }, nil)
	run.Finish()
	if m := run.Manifest(); m.Experiment != "" || m.Finished {
		t.Fatalf("nil run manifest non-zero: %+v", m)
	}
}

func TestServerEndpoints(t *testing.T) {
	run := NewRun(64)
	run.Begin("unit", 1, 1, nil)
	emitOneOfEach(run.Tracer)
	run.Finish()
	srv := NewServer(nil) // starts with no run, swapped in below like accsim -exp all
	srv.SetRun(run)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/metrics"); code != 200 {
		t.Fatalf("/metrics status %d", code)
	} else if _, err := ParsePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics body does not parse: %v", err)
	}

	if code, body := get("/manifest"); code != 200 {
		t.Fatalf("/manifest status %d", code)
	} else if m, err := DecodeManifest(strings.NewReader(body)); err != nil || m.Experiment != "unit" {
		t.Fatalf("/manifest body bad: err=%v m=%+v", err, m)
	}

	if code, body := get("/trace?last=3"); code != 200 {
		t.Fatalf("/trace status %d", code)
	} else if n, err := ValidateTraceJSONL(strings.NewReader(body)); err != nil || n != 3 {
		t.Fatalf("/trace?last=3: n=%d err=%v", n, err)
	}

	if code, _ := get("/trace?last=bogus"); code != 400 {
		t.Fatalf("/trace?last=bogus status %d, want 400", code)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestWriteFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run := NewRun(64)
	run.Begin("unit", 1, 1, nil)
	emitOneOfEach(run.Tracer)
	run.Finish()
	manifest, trace, metrics, err := run.WriteFiles(dir, "unit")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{manifest, trace, metrics} {
		if fi, err := statFile(p); err != nil || fi == 0 {
			t.Fatalf("artifact %s empty or missing (size=%d err=%v)", p, fi, err)
		}
	}
}

// TestShardLabeling: once the immutable node→shard map is installed,
// records are stamped with the owning shard; without a map (sequential
// runs) and for node-less records, Shard reads -1.
func TestShardLabeling(t *testing.T) {
	tr := NewTracer(8)
	tr.Drop(1, DropOverflow, 3, 0, 0, 1, 100)
	tr.SetShardMap(func(node int32) int32 { return node % 4 })
	tr.Drop(2, DropOverflow, 5, 0, 0, 1, 100)
	tr.CNP(3, -1, 7)

	recs := tr.Last(0)
	if len(recs) != 3 {
		t.Fatalf("resident %d, want 3", len(recs))
	}
	want := []int32{-1, 1, -1}
	for i, r := range recs {
		if r.Shard != want[i] {
			t.Errorf("record %d: shard %d, want %d", i, r.Shard, want[i])
		}
	}
}
