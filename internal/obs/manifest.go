package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Manifest describes one experiment run: what was run, with which knobs,
// and the aggregate totals observed. It is written as JSON alongside the
// run's result tables so a trace/metrics snapshot can always be tied back
// to the exact configuration that produced it.
type Manifest struct {
	Experiment string            `json:"experiment"`
	Seed       int64             `json:"seed"`
	Scale      float64           `json:"scale"`
	Config     map[string]string `json:"config,omitempty"` // free-form knobs (fault plan, episodes, ...)
	StartedAt  time.Time         `json:"started_at"`
	WallTimeS  float64           `json:"wall_time_s"`
	Finished   bool              `json:"finished"`

	// Engine totals summed over every Network the run created.
	Networks        int    `json:"networks"`
	Shards          int    `json:"shards,omitempty"` // parallel-engine shard count, 0 for sequential runs
	EventsProcessed uint64 `json:"events_processed"`
	PacketsAlloced  uint64 `json:"packets_alloced"`

	// Fidelity summarizes hybrid-fidelity activity (internal/hybrid): how
	// much of the run was fast-forwarded in closed form and how often links
	// crossed the analytic/packet boundary. Nil for pure packet-level runs.
	Fidelity *FidelitySummary `json:"fidelity,omitempty"`

	// Workload summarizes a spec-driven/replayed workload-engine run: the
	// per-SLO-class FCT tails and the Jain fairness index over class
	// goodputs. Nil for runs without workload-engine traffic.
	Workload *WorkloadManifest `json:"workload,omitempty"`

	// Trace totals at finish time.
	TraceEmitted  uint64            `json:"trace_emitted"`
	TraceByKind   map[string]uint64 `json:"trace_by_kind,omitempty"`
	DropsByReason map[string]uint64 `json:"drops_by_reason,omitempty"`
	TraceRingCap  int               `json:"trace_ring_cap"`
	TraceResident int               `json:"trace_resident"`
}

// FidelitySummary aggregates one or more hybrid engines' mode accounting
// for the manifest. All fields are sums; AddFidelity merges engines.
type FidelitySummary struct {
	FlowsStarted    uint64 `json:"flows_started"`          // flows registered with a hybrid engine
	AnalyticFlows   uint64 `json:"analytic_flows"`         // flows completed entirely in closed form
	PacketFlows     uint64 `json:"packet_flows"`           // flows started at or demoted to packet level
	Demotions       uint64 `json:"demotions"`              // link analytic→packet transitions
	Promotions      uint64 `json:"promotions"`             // link packet→analytic transitions
	AnalyticPayload uint64 `json:"analytic_payload_bytes"` // payload bytes delivered in closed form
	Ticks           uint64 `json:"ticks"`                  // analytic advance windows executed
}

// AddFidelity merges one hybrid engine's summary into the manifest,
// allocating the aggregate on first use. Runs that build several engines
// (one per policy arm) report their combined totals.
func (r *Run) AddFidelity(s FidelitySummary) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.man.Fidelity == nil {
		r.man.Fidelity = &FidelitySummary{}
	}
	f := r.man.Fidelity
	f.FlowsStarted += s.FlowsStarted
	f.AnalyticFlows += s.AnalyticFlows
	f.PacketFlows += s.PacketFlows
	f.Demotions += s.Demotions
	f.Promotions += s.Promotions
	f.AnalyticPayload += s.AnalyticPayload
	f.Ticks += s.Ticks
}

// ClassManifest is one workload class's completed-flow summary.
type ClassManifest struct {
	Name     string  `json:"name"`
	SLO      string  `json:"slo,omitempty"`
	Flows    int     `json:"flows"`
	Bytes    int64   `json:"bytes"`
	FCTp50Ns int64   `json:"fct_p50_ns"`
	FCTp99Ns int64   `json:"fct_p99_ns"`
	MeanGbps float64 `json:"mean_gbps"`
}

// WorkloadManifest records what the workload engine offered and how each
// class fared. Spec/Trace/Replay describe provenance: the spec that
// generated the traffic, the trace file it was recorded to, and/or the
// trace file it was replayed from.
type WorkloadManifest struct {
	Spec    string          `json:"spec,omitempty"`
	Trace   string          `json:"trace,omitempty"`
	Replay  string          `json:"replay,omitempty"`
	Flows   int             `json:"flows"`
	Classes []ClassManifest `json:"classes,omitempty"`
	Jain    float64         `json:"jain_fairness"`
}

// SetWorkload installs the workload engine's per-class summary.
func (r *Run) SetWorkload(w WorkloadManifest) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.man.Workload = &w
	r.mu.Unlock()
}

// EncodeJSON writes the manifest as indented JSON.
func (m *Manifest) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DecodeManifest parses a manifest written by EncodeJSON.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Run ties a Tracer to the manifest of one experiment execution. The
// experiment harness calls Begin before running, RegisterEngine for every
// simulation Network it creates (engines report their event/packet totals
// lazily, so registration costs nothing during the run), and Finish after
// the last table is produced. Manifest() is safe to call while the run is
// still in flight — the live endpoint serves partial manifests.
type Run struct {
	Tracer *Tracer

	mu      sync.Mutex
	man     Manifest
	engines []engineFns
}

type engineFns struct{ events, packets func() uint64 }

// NewRun returns a run whose trace ring holds ringCap records
// (<=0 selects DefaultRingCap).
func NewRun(ringCap int) *Run {
	return &Run{Tracer: NewTracer(ringCap)}
}

// Begin stamps the manifest header for one experiment execution.
func (r *Run) Begin(experiment string, seed int64, scale float64, config map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.man = Manifest{
		Experiment: experiment,
		Seed:       seed,
		Scale:      scale,
		Config:     config,
		//acclint:ignore determinism@1 wall-clock run metadata for humans, never read back into simulation state
		StartedAt: time.Now().UTC(),
	}
	r.engines = nil
}

// SetShards records the parallel-engine shard count in the manifest. Leave
// unset (zero) for sequential runs.
func (r *Run) SetShards(k int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.man.Shards = k
	r.mu.Unlock()
}

// RegisterEngine adds one simulation engine's lazy total reporters
// (typically net.Q.Processed and net.PacketsAlloced method values). Safe
// to call from parallel experiment workers.
func (r *Run) RegisterEngine(events, packets func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.engines = append(r.engines, engineFns{events, packets})
	r.mu.Unlock()
}

// Finish stamps wall time and engine/trace totals. The registered engines
// must be idle (the experiment has returned) when Finish is called.
func (r *Run) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	//acclint:ignore determinism@1 wall-clock run metadata for humans, never read back into simulation state
	r.man.WallTimeS = time.Since(r.man.StartedAt).Seconds()
	r.man.Finished = true
	r.man.Networks = len(r.engines)
	r.man.EventsProcessed, r.man.PacketsAlloced = 0, 0
	for _, e := range r.engines {
		if e.events != nil {
			r.man.EventsProcessed += e.events()
		}
		if e.packets != nil {
			r.man.PacketsAlloced += e.packets()
		}
	}
	snap := r.Tracer.Snapshot()
	r.man.TraceEmitted = snap.Emitted
	r.man.TraceByKind = snap.ByKind
	r.man.DropsByReason = snap.Drops
	if r.Tracer != nil {
		r.man.TraceRingCap = cap(r.Tracer.ring)
		r.man.TraceResident = r.Tracer.Len()
	}
}

// Manifest returns a copy of the current manifest (partial until Finish).
func (r *Run) Manifest() Manifest {
	if r == nil {
		return Manifest{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.man
}
