// Package tcp implements a windowed transport in the DCTCP family for the
// paper's TCP/RDMA coexistence studies (§5.2). It provides:
//
//   - DCTCP mode: ECN-capable data, per-window marked-fraction estimate
//     alpha, and the cwnd ← cwnd·(1−alpha/2) reduction once per window;
//   - Reno mode (ECN disabled): drop-tail behaviour with fast retransmit and
//     multiplicative decrease, modelling the "TCP becomes greedy and may
//     occupy the whole buffer" regime the paper describes.
//
// The control loop is ACK-clocked and therefore reacts on RTT timescales —
// an order of magnitude slower than DCQCN's CNP loop — which is exactly the
// asymmetry behind the unfair buffer sharing ACC corrects in Figure 8.
package tcp

import (
	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// Params configures a TCP flow.
type Params struct {
	MTU  int
	Prio int

	ECN bool    // DCTCP marking feedback; false = Reno drop-only
	G   float64 // DCTCP alpha gain (typically 1/16)

	InitCwndPkts int
	MaxCwndPkts  int // cap on window (packets); 0 = unlimited
	RTOMin       simtime.Duration
	DupAckThresh int
}

// DefaultParams returns DCTCP-style defaults for datacenter RTTs.
func DefaultParams() Params {
	return Params{
		MTU:          netsim.DefaultMTU,
		Prio:         0,
		ECN:          true,
		G:            1.0 / 16,
		InitCwndPkts: 10,
		RTOMin:       time1ms,
		DupAckThresh: 3,
	}
}

const time1ms = simtime.Millisecond

// Flow is one TCP connection transferring Size bytes Src→Dst.
type Flow struct {
	ID   netsim.FlowID
	Src  *netsim.Host
	Dst  *netsim.Host
	Size int64
	P    Params

	Start simtime.Time
	End   simtime.Time

	net *netsim.Network

	// Sender state (bytes).
	sndUna     int64   // oldest unacknowledged
	sndNext    int64   // next new byte to send
	cwnd       float64 // congestion window, bytes
	ssthresh   float64
	inRecovery bool
	recoverEnd int64
	dupAcks    int

	// DCTCP state.
	alpha       float64
	ackedBytes  int64 // bytes acked in current observation window
	markedBytes int64
	winEnd      int64 // sndUna value that closes the observation window
	cwndCutSeq  int64 // suppress multiple cuts per window

	// RTT estimation.
	srtt, rttvar simtime.Duration
	rtoEv        *eventq.Event
	sendTimes    map[int64]simtime.Time // seq -> first-send time (for RTT)

	// Receiver state.
	rcvNext int64
	ooo     map[int64]int // out-of-order segments: seq -> payload len
	rcvdAll bool

	// Counters.
	Retransmits uint64
	Timeouts    uint64
	ECEAcks     uint64

	onDone func(*Flow)
	done   bool

	// Pre-bound callbacks, created once in Start so the per-ACK / per-packet
	// paths (NIC waiter registration, RTO re-arming) don't allocate a new
	// method-value closure every time.
	trySendFn func()
	onRTOFn   func()
}

// Done reports whether the transfer completed.
func (f *Flow) Done() bool { return f.done }

// FCT returns the completion time, valid once Done.
func (f *Flow) FCT() simtime.Duration { return f.End.Sub(f.Start) }

// Cwnd returns the congestion window in bytes.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// Alpha returns the DCTCP congestion estimate.
func (f *Flow) Alpha() float64 { return f.alpha }

// Received returns contiguous bytes delivered to the receiver.
func (f *Flow) Received() int64 { return f.rcvNext }

// Start opens a TCP flow of size bytes at the current virtual time.
func Start(net *netsim.Network, src, dst *netsim.Host, size int64, p Params, onDone func(*Flow)) *Flow {
	if p.MTU <= 0 {
		p.MTU = netsim.DefaultMTU
	}
	if p.InitCwndPkts <= 0 {
		p.InitCwndPkts = 10
	}
	if p.DupAckThresh <= 0 {
		p.DupAckThresh = 3
	}
	if p.RTOMin <= 0 {
		p.RTOMin = time1ms
	}
	f := &Flow{
		ID:        net.NextFlowID(),
		Src:       src,
		Dst:       dst,
		Size:      size,
		P:         p,
		Start:     net.Now(),
		net:       net,
		cwnd:      float64(p.InitCwndPkts * p.MTU),
		ssthresh:  1 << 40,
		sendTimes: make(map[int64]simtime.Time),
		ooo:       make(map[int64]int),
		onDone:    onDone,
	}
	if p.MaxCwndPkts > 0 {
		f.ssthresh = float64(p.MaxCwndPkts * p.MTU)
	}
	f.trySendFn = f.trySend
	f.onRTOFn = f.onRTO
	src.Register(f.ID, netsim.EndpointFunc(f.senderHandle))
	dst.Register(f.ID, netsim.EndpointFunc(f.receiverHandle))
	f.trySend()
	return f
}

func (f *Flow) maxCwnd() float64 {
	if f.P.MaxCwndPkts > 0 {
		return float64(f.P.MaxCwndPkts * f.P.MTU)
	}
	return 1 << 40
}

// trySend transmits new data while the window and the NIC admit it.
func (f *Flow) trySend() {
	if f.done {
		return
	}
	for f.sndNext < f.Size && f.sndNext < f.sndUna+int64(f.cwnd) {
		if !f.Src.Port.CanInject(f.P.Prio) {
			f.Src.Port.WhenReady(f.P.Prio, f.trySendFn)
			return
		}
		payload := f.P.MTU
		if rem := f.Size - f.sndNext; int64(payload) > rem {
			payload = int(rem)
		}
		f.emit(f.sndNext, payload, false)
		f.sndNext += int64(payload)
	}
}

// emit sends one segment.
func (f *Flow) emit(seq int64, payload int, retx bool) {
	pkt := f.net.AllocPacket()
	pkt.Kind = netsim.KindData
	pkt.Flow = f.ID
	pkt.Src = f.Src.ID()
	pkt.Dst = f.Dst.ID()
	pkt.Prio = f.P.Prio
	pkt.Size = payload + netsim.DataHeaderBytes
	pkt.Seq = seq
	pkt.FlowBytes = f.Size
	pkt.ECT = f.P.ECN
	pkt.Retx = retx
	pkt.Last = seq+int64(payload) >= f.Size
	if retx {
		f.Retransmits++
		delete(f.sendTimes, seq) // Karn: no RTT sample from retransmits
	} else if _, seen := f.sendTimes[seq]; !seen {
		f.sendTimes[seq] = f.net.Now()
	}
	f.Src.Send(pkt)
	f.armRTO()
}

// receiverHandle accepts data, reorders, and emits cumulative ACKs that echo
// per-packet CE (accurate ECN feedback, as DCTCP requires).
func (f *Flow) receiverHandle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.KindData {
		return
	}
	payload := pkt.Size - netsim.DataHeaderBytes
	if pkt.Seq == f.rcvNext {
		f.rcvNext += int64(payload)
		for {
			n, ok := f.ooo[f.rcvNext]
			if !ok {
				break
			}
			delete(f.ooo, f.rcvNext)
			f.rcvNext += int64(n)
		}
	} else if pkt.Seq > f.rcvNext {
		f.ooo[pkt.Seq] = payload
	}
	ack := f.net.AllocPacket()
	ack.Kind = netsim.KindAck
	ack.Flow = f.ID
	ack.Src = f.Dst.ID()
	ack.Dst = f.Src.ID()
	ack.Prio = f.P.Prio
	ack.Size = netsim.CtrlPacketBytes
	ack.Seq = f.rcvNext
	ack.ECE = pkt.CE
	// ACKs are ECN-capable so AQM marks rather than drops them; the
	// sender reads the explicit ECE echo, never the ACK's own CE bit.
	ack.ECT = true
	// AckSeq piggybacks the payload length this ACK acknowledges receipt of,
	// so the sender can attribute marked bytes for DCTCP's fraction.
	ack.FlowBytes = int64(payload)
	f.Dst.Send(ack)

	if f.rcvNext >= f.Size && !f.rcvdAll {
		f.rcvdAll = true
		f.finish()
	}
}

// senderHandle processes cumulative ACKs.
func (f *Flow) senderHandle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.KindAck || f.done {
		return
	}
	if pkt.ECE {
		f.ECEAcks++
	}
	// DCTCP accounting: every ACK reports one segment's worth of bytes and
	// whether that segment was CE-marked.
	f.ackedBytes += pkt.FlowBytes
	if pkt.ECE {
		f.markedBytes += pkt.FlowBytes
	}

	switch {
	case pkt.Seq > f.sndUna:
		newly := pkt.Seq - f.sndUna
		// RTT sample from the highest in-order first-transmission.
		if ts, ok := f.sendTimes[f.sndUna]; ok {
			f.updateRTT(f.net.Now().Sub(ts))
		}
		//acclint:ignore determinism deleting every key below a threshold is iteration-order-independent
		for s := range f.sendTimes {
			if s < pkt.Seq {
				delete(f.sendTimes, s)
			}
		}
		f.sndUna = pkt.Seq
		f.dupAcks = 0
		if f.inRecovery {
			if f.sndUna >= f.recoverEnd {
				f.inRecovery = false
			} else if f.sndUna < f.Size {
				// NewReno partial ACK: the next hole is also lost.
				payload := f.P.MTU
				if rem := f.Size - f.sndUna; int64(payload) > rem {
					payload = int(rem)
				}
				f.emit(f.sndUna, payload, true)
			}
		}
		f.growCwnd(float64(newly))
		f.dctcpWindowUpdate()
		f.armRTO()
	case pkt.Seq == f.sndUna && f.sndNext > f.sndUna:
		f.dupAcks++
		if f.dupAcks == f.P.DupAckThresh && !f.inRecovery {
			f.fastRetransmit()
		}
	}
	if f.P.ECN && pkt.ECE {
		f.maybeECNCut()
	}
	f.trySend()
}

// growCwnd applies slow start / congestion avoidance for newly acked bytes.
func (f *Flow) growCwnd(newly float64) {
	if f.inRecovery {
		return
	}
	mtu := float64(f.P.MTU)
	if f.cwnd < f.ssthresh {
		f.cwnd += newly // slow start
	} else {
		f.cwnd += mtu * newly / f.cwnd // ~1 MTU per RTT
	}
	if m := f.maxCwnd(); f.cwnd > m {
		f.cwnd = m
	}
}

// dctcpWindowUpdate closes an observation window once a full window of bytes
// has been acknowledged, updating alpha from the marked fraction.
func (f *Flow) dctcpWindowUpdate() {
	if !f.P.ECN || f.sndUna < f.winEnd {
		return
	}
	if f.ackedBytes > 0 {
		frac := float64(f.markedBytes) / float64(f.ackedBytes)
		f.alpha = (1-f.P.G)*f.alpha + f.P.G*frac
	}
	f.ackedBytes, f.markedBytes = 0, 0
	f.winEnd = f.sndUna + int64(f.cwnd)
}

// maybeECNCut applies DCTCP's once-per-window multiplicative decrease upon
// ECN feedback.
func (f *Flow) maybeECNCut() {
	if f.sndUna < f.cwndCutSeq {
		return
	}
	f.cwnd *= 1 - f.alpha/2
	if f.cwnd < float64(f.P.MTU) {
		f.cwnd = float64(f.P.MTU)
	}
	f.ssthresh = f.cwnd
	f.cwndCutSeq = f.sndNext
}

// fastRetransmit performs Reno-style loss recovery.
func (f *Flow) fastRetransmit() {
	f.inRecovery = true
	f.recoverEnd = f.sndNext
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < float64(f.P.MTU) {
		f.ssthresh = float64(f.P.MTU)
	}
	f.cwnd = f.ssthresh
	payload := f.P.MTU
	if rem := f.Size - f.sndUna; int64(payload) > rem {
		payload = int(rem)
	}
	f.emit(f.sndUna, payload, true)
}

// updateRTT maintains SRTT/RTTVAR (RFC 6298).
func (f *Flow) updateRTT(sample simtime.Duration) {
	if sample <= 0 {
		return
	}
	if f.srtt == 0 {
		f.srtt = sample
		f.rttvar = sample / 2
		return
	}
	diff := f.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	f.rttvar = (3*f.rttvar + diff) / 4
	f.srtt = (7*f.srtt + sample) / 8
}

// SRTT returns the smoothed RTT estimate.
func (f *Flow) SRTT() simtime.Duration { return f.srtt }

func (f *Flow) rto() simtime.Duration {
	r := f.srtt + 4*f.rttvar
	if r < f.P.RTOMin {
		r = f.P.RTOMin
	}
	return r
}

// armRTO (re)starts the retransmission timer while data is outstanding. The
// timer's Event is reused across re-arms (every ACK lands here), so the
// steady-state path allocates nothing.
func (f *Flow) armRTO() {
	if f.sndUna >= f.Size || f.done {
		if f.rtoEv != nil {
			f.rtoEv.Cancel()
		}
		return
	}
	f.rtoEv = f.net.Q.ResetAfter(f.rtoEv, f.rto(), f.onRTOFn)
}

// onRTO handles a retransmission timeout: collapse to one segment and resend
// from the hole.
func (f *Flow) onRTO() {
	if f.done {
		return
	}
	f.Timeouts++
	f.net.Tracer.TCPRTO(f.net.Now(), f.Src.ID(), uint64(f.ID), f.rto())
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < float64(f.P.MTU) {
		f.ssthresh = float64(f.P.MTU)
	}
	f.cwnd = float64(f.P.MTU)
	f.inRecovery = false
	f.dupAcks = 0
	payload := f.P.MTU
	if rem := f.Size - f.sndUna; int64(payload) > rem {
		payload = int(rem)
	}
	f.emit(f.sndUna, payload, true)
}

// finish records completion and tears down.
func (f *Flow) finish() {
	f.done = true
	f.End = f.net.Now()
	if f.rtoEv != nil {
		f.rtoEv.Cancel()
		f.rtoEv = nil
	}
	f.Src.Unregister(f.ID)
	f.Dst.Unregister(f.ID)
	if f.onDone != nil {
		f.onDone(f)
	}
}
