// Package tcp implements a windowed transport in the DCTCP family for the
// paper's TCP/RDMA coexistence studies (§5.2). It provides:
//
//   - DCTCP mode: ECN-capable data, per-window marked-fraction estimate
//     alpha, and the cwnd ← cwnd·(1−alpha/2) reduction once per window;
//   - Reno mode (ECN disabled): drop-tail behaviour with fast retransmit and
//     multiplicative decrease, modelling the "TCP becomes greedy and may
//     occupy the whole buffer" regime the paper describes.
//
// The control loop is ACK-clocked and therefore reacts on RTT timescales —
// an order of magnitude slower than DCQCN's CNP loop — which is exactly the
// asymmetry behind the unfair buffer sharing ACC corrects in Figure 8.
//
// As in package dcqcn, the sender (Flow) and receiver (Receiver) are
// separate objects, each owned by its host's Network: Start wires both onto
// one Network for sequential runs, while sharded runs (internal/psim) start
// each half in the shard owning its host. The halves communicate only
// through packets — the sender completes on the final cumulative ACK, the
// receiver on the final data byte — so neither ever reaches into the
// other's shard.
package tcp

import (
	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// Params configures a TCP flow.
type Params struct {
	MTU  int
	Prio int

	ECN bool    // DCTCP marking feedback; false = Reno drop-only
	G   float64 // DCTCP alpha gain (typically 1/16)

	InitCwndPkts int
	MaxCwndPkts  int // cap on window (packets); 0 = unlimited
	RTOMin       simtime.Duration
	DupAckThresh int
}

// DefaultParams returns DCTCP-style defaults for datacenter RTTs.
func DefaultParams() Params {
	return Params{
		MTU:          netsim.DefaultMTU,
		Prio:         0,
		ECN:          true,
		G:            1.0 / 16,
		InitCwndPkts: 10,
		RTOMin:       time1ms,
		DupAckThresh: 3,
	}
}

const time1ms = simtime.Millisecond

// Flow is the sender of one TCP connection transferring Size bytes from Src
// to the host addressed by DstID.
type Flow struct {
	ID    netsim.FlowID
	Src   *netsim.Host
	DstID int
	Size  int64
	P     Params

	Start simtime.Time
	End   simtime.Time

	net *netsim.Network

	// Sender state (bytes).
	sndUna     int64   // oldest unacknowledged
	sndNext    int64   // next new byte to send
	cwnd       float64 // congestion window, bytes
	ssthresh   float64
	inRecovery bool
	recoverEnd int64
	dupAcks    int

	// DCTCP state.
	alpha       float64
	ackedBytes  int64 // bytes acked in current observation window
	markedBytes int64
	winEnd      int64 // sndUna value that closes the observation window
	cwndCutSeq  int64 // suppress multiple cuts per window

	// RTT estimation.
	srtt, rttvar simtime.Duration
	rtoEv        *eventq.Event
	sendTimes    map[int64]simtime.Time // seq -> first-send time (for RTT)

	// Counters.
	Retransmits uint64
	Timeouts    uint64
	ECEAcks     uint64

	// acked marks sender-side completion: the cumulative ACK covering Size
	// arrived and the sender tore down. Distinct from the receiver's done —
	// the receiver finishes half an RTT earlier, on the final data byte.
	//acclint:ignore snapcover false while the sender half is live, and only live senders (!Acked) are saved
	acked bool

	// rx is the paired receiver when both halves share a Network
	// (sequential Start); nil for split sharded starts.
	//acclint:ignore snapcover sequential-start accessor shortcut; restored flows take the split registry path and drivers read completion from Applied.End
	rx *Receiver

	// Pre-bound callbacks, created once in Start so the per-ACK / per-packet
	// paths (NIC waiter registration, RTO re-arming) don't allocate a new
	// method-value closure every time.
	trySendFn func()
	onRTOFn   func()
}

// Receiver is the receiving half of one TCP connection: it reorders data,
// emits cumulative ACKs with per-packet ECN echo, and detects completion.
type Receiver struct {
	ID    netsim.FlowID
	Dst   *netsim.Host
	SrcID int
	Size  int64
	P     Params

	Start simtime.Time
	//acclint:ignore snapcover zero while the receiver half is live, and only live receivers (!Done) are saved
	End simtime.Time // zero until complete

	net *netsim.Network

	rcvNext int64
	ooo     map[int64]int // out-of-order segments: seq -> payload len
	//acclint:ignore snapcover false while the receiver half is live, and only live receivers (!Done) are saved
	done bool

	onDone func(*Receiver)
}

// Done reports whether the transfer completed (receiver view; see Received
// for the split-mode caveat).
func (f *Flow) Done() bool { return f.rx != nil && f.rx.done }

// Acked reports whether the sender saw the cumulative ACK for the whole
// transfer and tore down.
func (f *Flow) Acked() bool { return f.acked }

// FCT returns the completion time, valid once Done.
func (f *Flow) FCT() simtime.Duration { return f.End.Sub(f.Start) }

// Cwnd returns the congestion window in bytes.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// Alpha returns the DCTCP congestion estimate.
func (f *Flow) Alpha() float64 { return f.alpha }

// Received returns contiguous bytes delivered to the receiver; valid when
// the flow was started with Start (both halves on one Network). Split
// sharded senders report 0 — delivery progress belongs to the Receiver in
// the destination shard.
func (f *Flow) Received() int64 {
	if f.rx == nil {
		return 0
	}
	return f.rx.rcvNext
}

// Received returns contiguous bytes delivered.
func (r *Receiver) Received() int64 { return r.rcvNext }

// Done reports whether all bytes arrived.
func (r *Receiver) Done() bool { return r.done }

// FCT returns the completion time, valid once Done.
func (r *Receiver) FCT() simtime.Duration { return r.End.Sub(r.Start) }

// Start opens a TCP flow of size bytes at the current virtual time, with
// both halves on the same Network.
func Start(net *netsim.Network, src, dst *netsim.Host, size int64, p Params, onDone func(*Flow)) *Flow {
	f := StartSender(net, net.NextFlowID(), src, dst.ID(), size, p)
	f.rx = StartReceiver(f.ID, src.ID(), dst, size, p, func(r *Receiver) {
		f.End = r.End
		if onDone != nil {
			onDone(f)
		}
	})
	return f
}

// StartSender opens the sending half only, toward the host with node id
// dstID. Sharded runs start it in the shard owning src, paired with a
// StartReceiver carrying the same explicit flow id in the destination's
// shard.
func StartSender(net *netsim.Network, id netsim.FlowID, src *netsim.Host, dstID int, size int64, p Params) *Flow {
	if p.MTU <= 0 {
		p.MTU = netsim.DefaultMTU
	}
	if p.InitCwndPkts <= 0 {
		p.InitCwndPkts = 10
	}
	if p.DupAckThresh <= 0 {
		p.DupAckThresh = 3
	}
	if p.RTOMin <= 0 {
		p.RTOMin = time1ms
	}
	f := &Flow{
		ID:        id,
		Src:       src,
		DstID:     dstID,
		Size:      size,
		P:         p,
		Start:     net.Now(),
		net:       net,
		cwnd:      float64(p.InitCwndPkts * p.MTU),
		ssthresh:  1 << 40,
		sendTimes: make(map[int64]simtime.Time),
	}
	if p.MaxCwndPkts > 0 {
		f.ssthresh = float64(p.MaxCwndPkts * p.MTU)
	}
	f.trySendFn = f.trySend
	f.onRTOFn = f.onRTO
	src.Register(f.ID, netsim.EndpointFunc(f.senderHandle))
	f.trySend()
	return f
}

// StartReceiver opens the receiving half only, on dst's Network. onDone, if
// non-nil, runs when the final byte arrives.
func StartReceiver(id netsim.FlowID, srcID int, dst *netsim.Host, size int64, p Params, onDone func(*Receiver)) *Receiver {
	if p.MTU <= 0 {
		p.MTU = netsim.DefaultMTU
	}
	r := &Receiver{
		ID:     id,
		Dst:    dst,
		SrcID:  srcID,
		Size:   size,
		P:      p,
		Start:  dst.Net().Now(),
		net:    dst.Net(),
		ooo:    make(map[int64]int),
		onDone: onDone,
	}
	dst.Register(r.ID, netsim.EndpointFunc(r.handle))
	return r
}

func (f *Flow) maxCwnd() float64 {
	if f.P.MaxCwndPkts > 0 {
		return float64(f.P.MaxCwndPkts * f.P.MTU)
	}
	return 1 << 40
}

// trySend transmits new data while the window and the NIC admit it.
func (f *Flow) trySend() {
	if f.acked {
		return
	}
	for f.sndNext < f.Size && f.sndNext < f.sndUna+int64(f.cwnd) {
		if !f.Src.Port.CanInject(f.P.Prio) {
			f.Src.Port.WhenReady(f.P.Prio, f)
			return
		}
		payload := f.P.MTU
		if rem := f.Size - f.sndNext; int64(payload) > rem {
			payload = int(rem)
		}
		f.emit(f.sndNext, payload, false)
		f.sndNext += int64(payload)
	}
}

// emit sends one segment.
func (f *Flow) emit(seq int64, payload int, retx bool) {
	pkt := f.net.AllocPacket()
	pkt.Kind = netsim.KindData
	pkt.Flow = f.ID
	pkt.Src = f.Src.ID()
	pkt.Dst = f.DstID
	pkt.Prio = f.P.Prio
	pkt.Size = payload + netsim.DataHeaderBytes
	pkt.Seq = seq
	pkt.FlowBytes = f.Size
	pkt.ECT = f.P.ECN
	pkt.Retx = retx
	pkt.Last = seq+int64(payload) >= f.Size
	if retx {
		f.Retransmits++
		delete(f.sendTimes, seq) // Karn: no RTT sample from retransmits
	} else if _, seen := f.sendTimes[seq]; !seen {
		f.sendTimes[seq] = f.net.Now()
	}
	f.Src.Send(pkt)
	f.armRTO()
}

// handle accepts data at the receiver, reorders, and emits cumulative ACKs
// that echo per-packet CE (accurate ECN feedback, as DCTCP requires).
func (r *Receiver) handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.KindData {
		return
	}
	payload := pkt.Size - netsim.DataHeaderBytes
	if pkt.Seq == r.rcvNext {
		r.rcvNext += int64(payload)
		for {
			n, ok := r.ooo[r.rcvNext]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNext)
			r.rcvNext += int64(n)
		}
	} else if pkt.Seq > r.rcvNext {
		r.ooo[pkt.Seq] = payload
	}
	ack := r.net.AllocPacket()
	ack.Kind = netsim.KindAck
	ack.Flow = r.ID
	ack.Src = r.Dst.ID()
	ack.Dst = r.SrcID
	ack.Prio = r.P.Prio
	ack.Size = netsim.CtrlPacketBytes
	ack.Seq = r.rcvNext
	ack.ECE = pkt.CE
	// ACKs are ECN-capable so AQM marks rather than drops them; the
	// sender reads the explicit ECE echo, never the ACK's own CE bit.
	ack.ECT = true
	// AckSeq piggybacks the payload length this ACK acknowledges receipt of,
	// so the sender can attribute marked bytes for DCTCP's fraction.
	ack.FlowBytes = int64(payload)
	r.Dst.Send(ack)

	if r.rcvNext >= r.Size && !r.done {
		r.done = true
		r.End = r.net.Now()
		r.Dst.Unregister(r.ID)
		if r.onDone != nil {
			r.onDone(r)
		}
	}
}

// senderHandle processes cumulative ACKs.
func (f *Flow) senderHandle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.KindAck || f.acked {
		return
	}
	if pkt.ECE {
		f.ECEAcks++
	}
	// DCTCP accounting: every ACK reports one segment's worth of bytes and
	// whether that segment was CE-marked.
	f.ackedBytes += pkt.FlowBytes
	if pkt.ECE {
		f.markedBytes += pkt.FlowBytes
	}

	switch {
	case pkt.Seq > f.sndUna:
		newly := pkt.Seq - f.sndUna
		// RTT sample from the highest in-order first-transmission.
		if ts, ok := f.sendTimes[f.sndUna]; ok {
			f.updateRTT(f.net.Now().Sub(ts))
		}
		//acclint:ignore determinism@1 deleting every key below a threshold is iteration-order-independent
		for s := range f.sendTimes {
			if s < pkt.Seq {
				delete(f.sendTimes, s)
			}
		}
		f.sndUna = pkt.Seq
		f.dupAcks = 0
		if f.inRecovery {
			if f.sndUna >= f.recoverEnd {
				f.inRecovery = false
			} else if f.sndUna < f.Size {
				// NewReno partial ACK: the next hole is also lost.
				payload := f.P.MTU
				if rem := f.Size - f.sndUna; int64(payload) > rem {
					payload = int(rem)
				}
				f.emit(f.sndUna, payload, true)
			}
		}
		f.growCwnd(float64(newly))
		f.dctcpWindowUpdate()
		if f.sndUna >= f.Size {
			// Final cumulative ACK: the sender's job is over. Completion
			// time (End) was already mirrored from the receiver in
			// sequential runs; a split sender records its own.
			f.senderTeardown()
			return
		}
		f.armRTO()
	case pkt.Seq == f.sndUna && f.sndNext > f.sndUna:
		f.dupAcks++
		if f.dupAcks == f.P.DupAckThresh && !f.inRecovery {
			f.fastRetransmit()
		}
	}
	if f.P.ECN && pkt.ECE {
		f.maybeECNCut()
	}
	f.trySend()
}

// growCwnd applies slow start / congestion avoidance for newly acked bytes.
func (f *Flow) growCwnd(newly float64) {
	if f.inRecovery {
		return
	}
	mtu := float64(f.P.MTU)
	if f.cwnd < f.ssthresh {
		f.cwnd += newly // slow start
	} else {
		f.cwnd += mtu * newly / f.cwnd // ~1 MTU per RTT
	}
	if m := f.maxCwnd(); f.cwnd > m {
		f.cwnd = m
	}
}

// dctcpWindowUpdate closes an observation window once a full window of bytes
// has been acknowledged, updating alpha from the marked fraction.
func (f *Flow) dctcpWindowUpdate() {
	if !f.P.ECN || f.sndUna < f.winEnd {
		return
	}
	if f.ackedBytes > 0 {
		frac := float64(f.markedBytes) / float64(f.ackedBytes)
		f.alpha = (1-f.P.G)*f.alpha + f.P.G*frac
	}
	f.ackedBytes, f.markedBytes = 0, 0
	f.winEnd = f.sndUna + int64(f.cwnd)
}

// maybeECNCut applies DCTCP's once-per-window multiplicative decrease upon
// ECN feedback.
func (f *Flow) maybeECNCut() {
	if f.sndUna < f.cwndCutSeq {
		return
	}
	f.cwnd *= 1 - f.alpha/2
	if f.cwnd < float64(f.P.MTU) {
		f.cwnd = float64(f.P.MTU)
	}
	f.ssthresh = f.cwnd
	f.cwndCutSeq = f.sndNext
}

// fastRetransmit performs Reno-style loss recovery.
func (f *Flow) fastRetransmit() {
	f.inRecovery = true
	f.recoverEnd = f.sndNext
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < float64(f.P.MTU) {
		f.ssthresh = float64(f.P.MTU)
	}
	f.cwnd = f.ssthresh
	payload := f.P.MTU
	if rem := f.Size - f.sndUna; int64(payload) > rem {
		payload = int(rem)
	}
	f.emit(f.sndUna, payload, true)
}

// updateRTT maintains SRTT/RTTVAR (RFC 6298).
func (f *Flow) updateRTT(sample simtime.Duration) {
	if sample <= 0 {
		return
	}
	if f.srtt == 0 {
		f.srtt = sample
		f.rttvar = sample / 2
		return
	}
	diff := f.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	f.rttvar = (3*f.rttvar + diff) / 4
	f.srtt = (7*f.srtt + sample) / 8
}

// SRTT returns the smoothed RTT estimate.
func (f *Flow) SRTT() simtime.Duration { return f.srtt }

func (f *Flow) rto() simtime.Duration {
	r := f.srtt + 4*f.rttvar
	if r < f.P.RTOMin {
		r = f.P.RTOMin
	}
	return r
}

// armRTO (re)starts the retransmission timer while data is outstanding. The
// timer's Event is reused across re-arms (every ACK lands here), so the
// steady-state path allocates nothing.
func (f *Flow) armRTO() {
	if f.sndUna >= f.Size || f.acked {
		if f.rtoEv != nil {
			f.rtoEv.Cancel()
		}
		return
	}
	f.rtoEv = f.net.Q.ResetAfter(f.rtoEv, f.rto(), f.onRTOFn)
}

// onRTO handles a retransmission timeout: collapse to one segment and resend
// from the hole.
func (f *Flow) onRTO() {
	if f.acked {
		return
	}
	f.Timeouts++
	f.net.Tracer.TCPRTO(f.net.Now(), f.Src.ID(), uint64(f.ID), f.rto())
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < float64(f.P.MTU) {
		f.ssthresh = float64(f.P.MTU)
	}
	f.cwnd = float64(f.P.MTU)
	f.inRecovery = false
	f.dupAcks = 0
	payload := f.P.MTU
	if rem := f.Size - f.sndUna; int64(payload) > rem {
		payload = int(rem)
	}
	f.emit(f.sndUna, payload, true)
}

// NICReady implements netsim.Waiter: the NIC drained below its injection
// limit, so resume transmitting.
func (f *Flow) NICReady() { f.trySend() }

// WaiterID implements netsim.Waiter, identifying this sender for snapshots.
func (f *Flow) WaiterID() (uint8, netsim.FlowID) { return netsim.WaiterTCP, f.ID }

// senderTeardown cancels the RTO and unregisters the sender endpoint. It
// touches sender-shard state only.
func (f *Flow) senderTeardown() {
	f.acked = true
	if f.End == 0 {
		f.End = f.net.Now()
	}
	if f.rtoEv != nil {
		f.rtoEv.Cancel()
		f.rtoEv = nil
	}
	f.Src.Unregister(f.ID)
}
