package tcp

import (
	"sort"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// Snapshot support, mirroring package dcqcn: live senders and receivers
// serialize their complete dynamic state, and restore constructors rebuild
// them on a freshly restored Network without construction side effects (no
// initial trySend, no parameter re-normalization — Params were normalized
// when the flow first started and are saved verbatim). Completed halves
// unregister themselves, so only live flows appear in snapshots.

func saveParams(w *codec.Writer, p Params) {
	w.Int(p.MTU)
	w.Int(p.Prio)
	w.Bool(p.ECN)
	w.F64(p.G)
	w.Int(p.InitCwndPkts)
	w.Int(p.MaxCwndPkts)
	w.I64(int64(p.RTOMin))
	w.Int(p.DupAckThresh)
}

func loadParams(r *codec.Reader) Params {
	var p Params
	p.MTU = r.Int()
	p.Prio = r.Int()
	p.ECN = r.Bool()
	p.G = r.F64()
	p.InitCwndPkts = r.Int()
	p.MaxCwndPkts = r.Int()
	p.RTOMin = simtime.Duration(r.I64())
	p.DupAckThresh = r.Int()
	return p
}

// SaveState writes the sender's dynamic state. Maps are serialized in sorted
// key order so identical states produce identical bytes.
func (f *Flow) SaveState(w *codec.Writer) {
	w.Tag("tcp-tx")
	w.U64(uint64(f.ID))
	w.Int(f.DstID)
	w.I64(f.Size)
	saveParams(w, f.P)
	w.I64(int64(f.Start))
	w.I64(int64(f.End))
	w.I64(f.sndUna)
	w.I64(f.sndNext)
	w.F64(f.cwnd)
	w.F64(f.ssthresh)
	w.Bool(f.inRecovery)
	w.I64(f.recoverEnd)
	w.Int(f.dupAcks)
	w.F64(f.alpha)
	w.I64(f.ackedBytes)
	w.I64(f.markedBytes)
	w.I64(f.winEnd)
	w.I64(f.cwndCutSeq)
	w.I64(int64(f.srtt))
	w.I64(int64(f.rttvar))
	w.U64(f.Retransmits)
	w.U64(f.Timeouts)
	w.U64(f.ECEAcks)
	seqs := make([]int64, 0, len(f.sendTimes))
	//acclint:ignore determinism@1 key collection followed by sort is iteration-order-independent
	for s := range f.sendTimes {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	w.Int(len(seqs))
	for _, s := range seqs {
		w.I64(s)
		w.I64(int64(f.sendTimes[s]))
	}
	eventq.SaveTimer(w, f.rtoEv)
}

// RestoreSender rebuilds a live sender saved by SaveState on src,
// registering its endpoint and re-arming the RTO at its recorded slot. No
// packets are sent.
func RestoreSender(net *netsim.Network, src *netsim.Host, r *codec.Reader) *Flow {
	r.Expect("tcp-tx")
	f := &Flow{Src: src, net: net}
	f.ID = netsim.FlowID(r.U64())
	f.DstID = r.Int()
	f.Size = r.I64()
	f.P = loadParams(r)
	f.Start = simtime.Time(r.I64())
	f.End = simtime.Time(r.I64())
	f.sndUna = r.I64()
	f.sndNext = r.I64()
	f.cwnd = r.F64()
	f.ssthresh = r.F64()
	f.inRecovery = r.Bool()
	f.recoverEnd = r.I64()
	f.dupAcks = r.Int()
	f.alpha = r.F64()
	f.ackedBytes = r.I64()
	f.markedBytes = r.I64()
	f.winEnd = r.I64()
	f.cwndCutSeq = r.I64()
	f.srtt = simtime.Duration(r.I64())
	f.rttvar = simtime.Duration(r.I64())
	f.Retransmits = r.U64()
	f.Timeouts = r.U64()
	f.ECEAcks = r.U64()
	n := r.Int()
	f.sendTimes = make(map[int64]simtime.Time, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		s := r.I64()
		f.sendTimes[s] = simtime.Time(r.I64())
	}
	f.trySendFn = f.trySend
	f.onRTOFn = f.onRTO
	f.rtoEv = net.Q.RestoreTimer(r, f.onRTOFn)
	if r.Err() != nil {
		return nil
	}
	src.Register(f.ID, netsim.EndpointFunc(f.senderHandle))
	return f
}

// SaveState writes the receiver's dynamic state.
func (rx *Receiver) SaveState(w *codec.Writer) {
	w.Tag("tcp-rx")
	w.U64(uint64(rx.ID))
	w.Int(rx.SrcID)
	w.I64(rx.Size)
	saveParams(w, rx.P)
	w.I64(int64(rx.Start))
	w.I64(rx.rcvNext)
	seqs := make([]int64, 0, len(rx.ooo))
	//acclint:ignore determinism@1 key collection followed by sort is iteration-order-independent
	for s := range rx.ooo {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	w.Int(len(seqs))
	for _, s := range seqs {
		w.I64(s)
		w.Int(rx.ooo[s])
	}
}

// RestoreReceiver rebuilds a live receiver on dst. onDone is the world's
// completion callback, re-bound by the caller.
func RestoreReceiver(dst *netsim.Host, onDone func(*Receiver), r *codec.Reader) *Receiver {
	r.Expect("tcp-rx")
	rx := &Receiver{Dst: dst, net: dst.Net(), onDone: onDone}
	rx.ID = netsim.FlowID(r.U64())
	rx.SrcID = r.Int()
	rx.Size = r.I64()
	rx.P = loadParams(r)
	rx.Start = simtime.Time(r.I64())
	rx.rcvNext = r.I64()
	n := r.Int()
	rx.ooo = make(map[int64]int, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		s := r.I64()
		rx.ooo[s] = r.Int()
	}
	if r.Err() != nil {
		return nil
	}
	dst.Register(rx.ID, netsim.EndpointFunc(rx.handle))
	return rx
}
