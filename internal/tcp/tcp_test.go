package tcp_test

import (
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/tcp"
	"github.com/accnet/acc/internal/topo"
)

func starNet(seed int64, n int) (*netsim.Network, *topo.Fabric) {
	net := netsim.New(seed)
	f := topo.Star(net, n, topo.DefaultConfig())
	return net, f
}

func TestSingleTCPFlowCompletes(t *testing.T) {
	net, f := starNet(1, 2)
	var done *tcp.Flow
	tcp.Start(net, f.Hosts[0], f.Hosts[1], 4*simtime.MB, tcp.DefaultParams(), func(fl *tcp.Flow) { done = fl })
	net.RunUntil(simtime.Time(simtime.Second))
	if done == nil {
		t.Fatal("TCP flow did not complete")
	}
	rate := simtime.RateOf(done.Size, done.FCT())
	if rate < 10*simtime.Gbps {
		t.Fatalf("goodput %.1fGbps < 10Gbps", float64(rate)/1e9)
	}
	if done.Timeouts != 0 {
		t.Fatalf("%d timeouts on an uncontended path", done.Timeouts)
	}
}

func TestDCTCPKeepsQueueNearKmin(t *testing.T) {
	// Two long DCTCP flows into one port: queue should oscillate around the
	// marking threshold rather than filling the buffer.
	net, f := starNet(2, 3)
	sw := f.Leaves[0]
	kmin := 30 * simtime.KB
	sw.SetRED(red.Config{Kmin: kmin, Kmax: kmin, Pmax: 1}) // DCTCP-style step marking
	for i := 0; i < 2; i++ {
		tcp.Start(net, f.Hosts[i], f.Hosts[2], 16*simtime.MB, tcp.DefaultParams(), nil)
	}
	maxQ := 0
	rx := sw.Ports[2].Queues[0]
	var sample func()
	sample = func() {
		if b := rx.Bytes(); b > maxQ {
			maxQ = b
		}
		net.Q.After(20*simtime.Microsecond, sample)
	}
	// Start sampling after slow-start overshoot settles.
	net.Q.After(3*simtime.Millisecond, sample)
	net.RunUntil(simtime.Time(30 * simtime.Millisecond))
	if maxQ == 0 {
		t.Fatal("no queue ever built")
	}
	if maxQ > 12*kmin {
		t.Fatalf("steady-state queue peak %dKB far above Kmin %dKB", maxQ/1024, kmin/1024)
	}
}

func TestRenoRecoversFromDrops(t *testing.T) {
	// Non-ECN (Reno) flows into a tiny-buffer switch experience drops but
	// must still complete via fast retransmit / RTO.
	net := netsim.New(4)
	cfg := topo.DefaultConfig()
	cfg.Switch.BufferBytes = 150 * simtime.KB
	cfg.Switch.PFC.Enabled = false
	f := topo.Star(net, 3, cfg)
	p := tcp.DefaultParams()
	p.ECN = false
	var done int
	var flows []*tcp.Flow
	for i := 0; i < 2; i++ {
		fl := tcp.Start(net, f.Hosts[i], f.Hosts[2], 4*simtime.MB, p, func(*tcp.Flow) { done++ })
		flows = append(flows, fl)
	}
	net.RunUntil(simtime.Time(2 * simtime.Second))
	if done != 2 {
		for _, fl := range flows {
			t.Logf("flow %d: rcvd=%d cwnd=%.0f retx=%d timeouts=%d", fl.ID, fl.Received(), fl.Cwnd(), fl.Retransmits, fl.Timeouts)
		}
		t.Fatalf("%d/2 Reno flows completed", done)
	}
	if f.Leaves[0].DropsTotal == 0 {
		t.Fatal("expected drops with 150KB buffer and no PFC")
	}
	totalRetx := flows[0].Retransmits + flows[1].Retransmits
	if totalRetx == 0 {
		t.Fatal("drops occurred but no retransmissions")
	}
}

func TestTCPFairShareTwoFlows(t *testing.T) {
	// Two simultaneous DCTCP flows of equal size should finish within ~2x of
	// each other (rough fairness).
	net, f := starNet(5, 3)
	sw := f.Leaves[0]
	sw.SetRED(red.Config{Kmin: 30 * simtime.KB, Kmax: 30 * simtime.KB, Pmax: 1})
	var fcts []simtime.Duration
	for i := 0; i < 2; i++ {
		tcp.Start(net, f.Hosts[i], f.Hosts[2], 8*simtime.MB, tcp.DefaultParams(), func(fl *tcp.Flow) {
			fcts = append(fcts, fl.FCT())
		})
	}
	net.RunUntil(simtime.Time(simtime.Second))
	if len(fcts) != 2 {
		t.Fatalf("%d/2 flows completed", len(fcts))
	}
	a, b := float64(fcts[0]), float64(fcts[1])
	if a > b {
		a, b = b, a
	}
	if b/a > 2.0 {
		t.Fatalf("unfair completion: %v vs %v", fcts[0], fcts[1])
	}
}

func TestSRTTMeasurement(t *testing.T) {
	net, f := starNet(6, 2)
	fl := tcp.Start(net, f.Hosts[0], f.Hosts[1], simtime.MB, tcp.DefaultParams(), nil)
	net.RunUntil(simtime.Time(100 * simtime.Millisecond))
	if !fl.Done() {
		t.Fatal("flow incomplete")
	}
	// Physical RTT is ~2.4us plus serialization; SRTT should land in the
	// microsecond range, well under 1ms.
	if fl.SRTT() <= 0 || fl.SRTT() > simtime.Millisecond {
		t.Fatalf("SRTT %v implausible", fl.SRTT())
	}
}
