package tcp_test

import (
	"bytes"
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
	"github.com/accnet/acc/internal/tcp"
	"github.com/accnet/acc/internal/topo"
)

// tcpMidFlight builds a congested incast and stops mid-run so the
// instrumented sender carries real dynamic state: a populated
// sendTimes map, cwnd/ssthresh off their initial values, srtt samples,
// possibly recovery state; the receiver may hold out-of-order segments.
func tcpMidFlight(t *testing.T, seed int64) (*netsim.Network, *tcp.Flow, *tcp.Receiver) {
	t.Helper()
	net := netsim.New(seed)
	f := topo.Star(net, 6, topo.DefaultConfig())
	p := tcp.DefaultParams()
	size := int64(4 * simtime.MB)

	id := net.NextFlowID()
	rx := tcp.StartReceiver(id, f.Hosts[0].ID(), f.Hosts[5], size, p, nil)
	fl := tcp.StartSender(net, id, f.Hosts[0], f.Hosts[5].ID(), size, p)
	for i := 1; i < 5; i++ {
		tcp.Start(net, f.Hosts[i], f.Hosts[5], size, p, nil)
	}
	net.RunUntil(simtime.Time(600 * simtime.Microsecond))
	if rx.Done() || rx.Received() == 0 {
		t.Fatalf("flow not mid-flight: done=%v received=%d", rx.Done(), rx.Received())
	}
	return net, fl, rx
}

// TestSenderSnapshotRoundTrip is the encode∘decode identity property for
// the TCP sender, including its sorted-map serialization of sendTimes
// and the RTO timer slot.
func TestSenderSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		_, fl, _ := tcpMidFlight(t, seed)
		w := codec.NewWriter()
		fl.SaveState(w)
		img := w.Finish()

		net2 := netsim.New(seed)
		f2 := topo.Star(net2, 6, topo.DefaultConfig())
		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		fl2 := tcp.RestoreSender(net2, f2.Hosts[0], r)
		if fl2 == nil || r.Err() != nil {
			t.Fatalf("seed %d: RestoreSender: %v", seed, r.Err())
		}
		if fl2.ID != fl.ID || fl2.Cwnd() != fl.Cwnd() || fl2.Alpha() != fl.Alpha() {
			t.Fatalf("seed %d: restored sender diverges: cwnd %v/%v alpha %v/%v",
				seed, fl2.Cwnd(), fl.Cwnd(), fl2.Alpha(), fl.Alpha())
		}
		w2 := codec.NewWriter()
		fl2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("seed %d: save∘restore∘save changed bytes (%d vs %d)", seed, len(img), len(img2))
		}
	}
}

// TestReceiverSnapshotRoundTrip: the receive side, including the
// out-of-order segment map.
func TestReceiverSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		_, _, rx := tcpMidFlight(t, seed)
		w := codec.NewWriter()
		rx.SaveState(w)
		img := w.Finish()

		net2 := netsim.New(seed)
		f2 := topo.Star(net2, 6, topo.DefaultConfig())
		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		rx2 := tcp.RestoreReceiver(f2.Hosts[5], nil, r)
		if rx2 == nil || r.Err() != nil {
			t.Fatalf("seed %d: RestoreReceiver: %v", seed, r.Err())
		}
		w2 := codec.NewWriter()
		rx2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("seed %d: save∘restore∘save changed bytes", seed)
		}
	}
}
