package tcp_test

import (
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/tcp"
	"github.com/accnet/acc/internal/topo"
)

func TestTinyFlowSingleSegment(t *testing.T) {
	net, f := starNet(11, 2)
	var done *tcp.Flow
	tcp.Start(net, f.Hosts[0], f.Hosts[1], 100, tcp.DefaultParams(), func(fl *tcp.Flow) { done = fl })
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	if done == nil {
		t.Fatal("sub-MTU flow never completed")
	}
	if done.Retransmits != 0 {
		t.Fatal("unnecessary retransmissions for a lossless single segment")
	}
}

func TestRTORecoversFromTotalLoss(t *testing.T) {
	// A flow whose path is down at start must survive via RTO once the
	// link recovers.
	net := netsim.New(12)
	f := topo.Star(net, 2, topo.DefaultConfig())
	link := f.Hosts[0].Port
	link.SetDown(true)
	var done bool
	fl := tcp.Start(net, f.Hosts[0], f.Hosts[1], 50*simtime.KB, tcp.DefaultParams(), func(*tcp.Flow) { done = true })
	net.RunUntil(simtime.Time(3 * simtime.Millisecond))
	if done {
		t.Fatal("flow completed across a down link")
	}
	link.SetDown(false)
	net.RunUntil(simtime.Time(simtime.Second))
	if !done {
		t.Fatalf("flow never recovered after link repair (timeouts=%d rcvd=%d)", fl.Timeouts, fl.Received())
	}
	if fl.Timeouts == 0 {
		t.Fatal("recovery without any RTO is implausible here")
	}
}

func TestECNDisabledMeansNoECT(t *testing.T) {
	net, f := starNet(13, 3)
	// A shallow drop point: two competing Reno flows build queue past
	// Kmax=6KB, lose packets, and must recover via retransmission — while
	// never seeing an ECN echo.
	f.Leaves[0].SetRED(red.Config{Kmin: 6 * simtime.KB, Kmax: 6 * simtime.KB, Pmax: 1})
	p := tcp.DefaultParams()
	p.ECN = false
	var flows []*tcp.Flow
	for i := 0; i < 2; i++ {
		flows = append(flows, tcp.Start(net, f.Hosts[i], f.Hosts[2], 200*simtime.KB, p, nil))
	}
	net.RunUntil(simtime.Time(2 * simtime.Second))
	var retx uint64
	for _, fl := range flows {
		if fl.ECEAcks != 0 {
			t.Fatal("Reno flow received ECN echoes")
		}
		if !fl.Done() {
			t.Fatalf("Reno flow wedged: rcvd=%d retx=%d timeouts=%d", fl.Received(), fl.Retransmits, fl.Timeouts)
		}
		retx += fl.Retransmits
	}
	if retx == 0 {
		t.Fatal("competing Reno flows above a 6KB drop point recorded no retransmissions")
	}
}

func TestDCTCPAlphaTracksMarking(t *testing.T) {
	net, f := starNet(14, 3)
	f.Leaves[0].SetRED(red.Config{Kmin: 20 * simtime.KB, Kmax: 20 * simtime.KB, Pmax: 1})
	// Two competing flows force standing marks.
	fl1 := tcp.Start(net, f.Hosts[0], f.Hosts[2], 8*simtime.MB, tcp.DefaultParams(), nil)
	tcp.Start(net, f.Hosts[1], f.Hosts[2], 8*simtime.MB, tcp.DefaultParams(), nil)
	net.RunUntil(simtime.Time(10 * simtime.Millisecond))
	if fl1.Alpha() <= 0 {
		t.Fatal("DCTCP alpha stayed zero under persistent marking")
	}
	if fl1.Alpha() > 1 {
		t.Fatalf("alpha %v above 1", fl1.Alpha())
	}
	if fl1.ECEAcks == 0 {
		t.Fatal("no ECN echoes seen")
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	net, f := starNet(15, 9)
	f.Leaves[0].SetRED(red.Config{Kmin: 30 * simtime.KB, Kmax: 240 * simtime.KB, Pmax: 0.5})
	const n = 32
	done := 0
	for i := 0; i < n; i++ {
		src := f.Hosts[i%8]
		tcp.Start(net, src, f.Hosts[8], 256*simtime.KB, tcp.DefaultParams(), func(*tcp.Flow) { done++ })
	}
	net.RunUntil(simtime.Time(2 * simtime.Second))
	if done != n {
		t.Fatalf("%d/%d TCP flows completed", done, n)
	}
}

func TestCwndNeverBelowOneMTU(t *testing.T) {
	net, f := starNet(16, 2)
	f.Leaves[0].SetRED(red.Config{Kmin: 0, Kmax: 0, Pmax: 1}) // constant marking
	fl := tcp.Start(net, f.Hosts[0], f.Hosts[1], simtime.MB, tcp.DefaultParams(), nil)
	for i := 0; i < 100; i++ {
		net.RunFor(100 * simtime.Microsecond)
		if fl.Done() {
			break
		}
		if fl.Cwnd() < float64(netsim.DefaultMTU) {
			t.Fatalf("cwnd %v fell below one MTU", fl.Cwnd())
		}
	}
}
