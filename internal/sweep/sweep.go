// Package sweep is the warm-start sweep executor: it warms one world up
// to the branch instant, snapshots it, and forks every scenario variant
// from the frozen state instead of re-simulating the shared warmup per
// branch. Because a fork is bit-identical to a cold run that applied the
// same variant at the same instant (internal/snap's proof obligation),
// warm mode is a pure throughput optimization — the cold executor exists
// to prove exactly that, and CI diffs the two modes' CSVs byte-for-byte.
package sweep

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap"
)

// Matrix is one sweep: a base scenario, the instant the branches fork,
// and the variants explored from it.
type Matrix struct {
	Base snap.Scenario
	// WarmPoint is the branch instant: warm mode snapshots here, cold
	// mode re-simulates up to here per branch. Must be in (0, Horizon).
	WarmPoint simtime.Time
	Branches  []snap.Variant
}

// Validate reports whether the matrix is runnable.
func (m *Matrix) Validate() error {
	if err := m.Base.Validate(); err != nil {
		return err
	}
	if m.WarmPoint <= 0 || m.WarmPoint >= m.Base.Horizon {
		return fmt.Errorf("sweep: warm point %v outside (0, %v)", m.WarmPoint, m.Base.Horizon)
	}
	if len(m.Branches) == 0 {
		return fmt.Errorf("sweep: no branches")
	}
	seen := make(map[string]bool, len(m.Branches))
	for i, v := range m.Branches {
		if v.Name == "" {
			return fmt.Errorf("sweep: branch %d has no name", i)
		}
		if seen[v.Name] {
			return fmt.Errorf("sweep: duplicate branch name %q", v.Name)
		}
		seen[v.Name] = true
	}
	return nil
}

// BranchResult is one branch's deterministic outcome plus its obs
// artifact paths (when an obs dir was given).
type BranchResult struct {
	Name     string `json:"name"`
	Summary  snap.Summary
	Manifest string `json:"manifest,omitempty"`
}

// Result is one executor run over a matrix.
type Result struct {
	Mode     string // "warm" or "cold"
	Branches []BranchResult
}

// Options configure an executor run.
type Options struct {
	// Parallel bounds concurrent branch simulations (<=0: run branches
	// sequentially). Branch worlds are fully independent — each owns its
	// Networks, RNGs, and result slot — so concurrency cannot reorder
	// events within a branch.
	Parallel int
	// ObsDir, when non-empty, writes one obs manifest per branch
	// (sweep-<mode>-<name>.*) into the directory.
	ObsDir string
}

// runBranch simulates one branch to the horizon: from the warm image
// when img is non-nil, cold otherwise.
func runBranch(m *Matrix, v snap.Variant, img []byte, mode string, o Options) (BranchResult, error) {
	var w *snap.World
	var err error
	if img != nil {
		w, err = snap.Fork(img, v)
	} else {
		if w, err = snap.Build(m.Base); err == nil {
			w.Run(m.WarmPoint)
			err = w.ApplyVariant(v)
		}
	}
	if err != nil {
		return BranchResult{}, fmt.Errorf("sweep: branch %q: %w", v.Name, err)
	}
	var run *obs.Run
	if o.ObsDir != "" {
		run = obs.NewRun(0)
		w.AttachObs(run)
	}
	w.Run(m.Base.Horizon)
	w.Finish(run)
	w.Stop()
	br := BranchResult{Name: v.Name, Summary: w.Summarize()}
	if run != nil {
		manifest, _, _, err := run.WriteFiles(o.ObsDir, "sweep-"+mode+"-"+v.Name)
		if err != nil {
			return br, fmt.Errorf("sweep: branch %q: %w", v.Name, err)
		}
		br.Manifest = filepath.Base(manifest)
	}
	return br, nil
}

// run executes every branch, warm (img != nil) or cold, bounded by
// o.Parallel. Results land in per-branch slots, so concurrent branches
// never contend and the output order is the matrix order regardless of
// completion order.
func run(m *Matrix, img []byte, mode string, o Options) (*Result, error) {
	res := &Result{Mode: mode, Branches: make([]BranchResult, len(m.Branches))}
	errs := make([]error, len(m.Branches))
	par := o.Parallel
	if par <= 0 {
		par = 1
	}
	if par > len(m.Branches) {
		par = len(m.Branches)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i, v := range m.Branches {
		i, v := i, v
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res.Branches[i], errs[i] = runBranch(m, v, img, mode, o)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RunWarm warms the base scenario once to the branch instant, snapshots
// it, and forks every branch from the image.
func RunWarm(m Matrix, o Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	base, err := snap.Build(m.Base)
	if err != nil {
		return nil, err
	}
	base.Run(m.WarmPoint)
	img := base.Snapshot()
	base.Stop()
	return run(&m, img, "warm", o)
}

// RunCold simulates every branch from scratch — the baseline RunWarm is
// verified against and benchmarked over.
func RunCold(m Matrix, o Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return run(&m, nil, "cold", o)
}

// CSV renders the per-branch outcome surface, branches in matrix order.
// Wall-clock anything is deliberately excluded: a warm CSV and a cold
// CSV of the same matrix must be byte-identical, and CI diffs them.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("branch,flows_offered,flows_completed,marks,drops,blackholed,buffer_drops,pfc_pauses,mean_gbps,events_processed,digest\n")
	for _, br := range r.Branches {
		s := br.Summary
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d,%.6f,%d,%016x\n",
			br.Name, s.FlowsOffered, s.FlowsCompleted, s.Marks, s.Drops,
			s.Blackholed, s.BufferDrops, s.PFCPauses, s.MeanGbps, s.Processed, s.Digest)
	}
	return b.String()
}

// Equal reports whether two executor runs produced the same outcome for
// every branch, and the first differing branch name when not.
func Equal(a, b *Result) (bool, string) {
	if len(a.Branches) != len(b.Branches) {
		return false, fmt.Sprintf("branch count %d vs %d", len(a.Branches), len(b.Branches))
	}
	for i := range a.Branches {
		if a.Branches[i].Name != b.Branches[i].Name || a.Branches[i].Summary != b.Branches[i].Summary {
			return false, a.Branches[i].Name
		}
	}
	return true, ""
}

// WREDLadder builds n branches stepping the ECN template from shallow to
// deep thresholds — the canonical "what if the switch config were X"
// sweep. Deterministic in n; names sort in ladder order.
func WREDLadder(n int) []snap.Variant {
	out := make([]snap.Variant, 0, n)
	for i := 0; i < n; i++ {
		kmin := (10 + 15*i) * simtime.KB
		out = append(out, snap.Variant{
			Name: fmt.Sprintf("wred-%02d", i),
			WRED: &red.Config{Kmin: kmin, Kmax: 4 * kmin, Pmax: 0.2 + 0.05*float64(i%8)},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
