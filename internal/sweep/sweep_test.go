package sweep

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap"
)

func testMatrix(shards int, fidelity string, branches int) Matrix {
	return Matrix{
		Base: snap.Scenario{
			NLeaf: 4, HostsPerLeaf: 3, NSpine: 2, Shards: shards,
			Seed:  3,
			Flows: 48, MaxBytes: 64 * simtime.KB, Spread: 380 * simtime.Microsecond, MixTCP: true,
			Horizon:  simtime.Time(500 * simtime.Microsecond),
			Fidelity: fidelity,
		},
		WarmPoint: simtime.Time(250 * simtime.Microsecond),
		Branches:  WREDLadder(branches),
	}
}

// TestWarmEqualsCold is the executor's core guarantee: the warm-forked
// sweep and the cold sweep produce byte-identical CSVs, sequentially and
// sharded, at both fidelities, serial and parallel.
func TestWarmEqualsCold(t *testing.T) {
	cases := []struct {
		name     string
		shards   int
		fidelity string
		parallel int
	}{
		{"packet-seq-serial", 1, "packet", 0},
		{"packet-shards4-parallel", 4, "packet", 4},
		{"hybrid-shards4-parallel", 4, "hybrid", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testMatrix(tc.shards, tc.fidelity, 4)
			o := Options{Parallel: tc.parallel}
			warm, err := RunWarm(m, o)
			if err != nil {
				t.Fatalf("RunWarm: %v", err)
			}
			cold, err := RunCold(m, o)
			if err != nil {
				t.Fatalf("RunCold: %v", err)
			}
			if ok, who := Equal(warm, cold); !ok {
				t.Fatalf("warm≢cold at branch %s:\nwarm:\n%scold:\n%s", who, warm.CSV(), cold.CSV())
			}
			if warm.CSV() != cold.CSV() {
				t.Fatalf("CSV mismatch:\nwarm:\n%scold:\n%s", warm.CSV(), cold.CSV())
			}
			// Branches must actually differ from each other, or the sweep
			// explored nothing.
			digests := make(map[uint64]bool)
			for _, br := range warm.Branches {
				digests[br.Summary.Digest] = true
			}
			if len(digests) < 2 {
				t.Fatalf("all %d branches produced the same digest; variants had no effect", len(warm.Branches))
			}
		})
	}
}

// TestParallelMatchesSerial: the concurrency knob must not change any
// outcome — branch worlds are independent by construction.
func TestParallelMatchesSerial(t *testing.T) {
	m := testMatrix(4, "hybrid", 6)
	serial, err := RunWarm(m, Options{Parallel: 1})
	if err != nil {
		t.Fatalf("RunWarm serial: %v", err)
	}
	parallel, err := RunWarm(m, Options{Parallel: 6})
	if err != nil {
		t.Fatalf("RunWarm parallel: %v", err)
	}
	if ok, who := Equal(serial, parallel); !ok {
		t.Fatalf("parallel≢serial at branch %s", who)
	}
}

// TestObsManifests: per-branch obs artifacts land in the requested dir.
func TestObsManifests(t *testing.T) {
	m := testMatrix(1, "packet", 2)
	dir := t.TempDir()
	res, err := RunWarm(m, Options{ObsDir: dir})
	if err != nil {
		t.Fatalf("RunWarm: %v", err)
	}
	for _, br := range res.Branches {
		if br.Manifest == "" {
			t.Fatalf("branch %s has no manifest", br.Name)
		}
		if _, err := os.Stat(filepath.Join(dir, br.Manifest)); err != nil {
			t.Fatalf("branch %s manifest: %v", br.Name, err)
		}
	}
}

// TestMatrixValidation exercises input rejection.
func TestMatrixValidation(t *testing.T) {
	good := testMatrix(1, "packet", 2)

	m := good
	m.WarmPoint = good.Base.Horizon
	if _, err := RunWarm(m, Options{}); err == nil {
		t.Errorf("accepted warm point at the horizon")
	}
	m = good
	m.Branches = nil
	if _, err := RunCold(m, Options{}); err == nil {
		t.Errorf("accepted an empty branch list")
	}
	m = good
	m.Branches = []snap.Variant{{Name: "x"}, {Name: "x"}}
	if _, err := RunWarm(m, Options{}); err == nil {
		t.Errorf("accepted duplicate branch names")
	}
	m = good
	m.Branches = []snap.Variant{{}}
	if _, err := RunWarm(m, Options{}); err == nil {
		t.Errorf("accepted an unnamed branch")
	}
}
