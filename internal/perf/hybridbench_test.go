package perf

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// TestHybridCoreSpeedup runs the hybrid benchmark on a reduced fabric and
// checks its invariants: the packet baseline does real per-packet work, the
// hybrid run fast-forwards the overwhelming majority of it (every demotion
// is conservation-checked inside RunHybridCore — a violation panics), and
// the wall-clock win is material even at test scale. The 2304-host
// configuration asserted in ROADMAP/ISSUE acceptance runs via accbench
// -fidelity hybrid.
func TestHybridCoreSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := HybridOptions{
		Seed: 1, Leaves: 6, HostsPerLeaf: 8, Spines: 4,
		SendersPerLeaf: 4,
		FlowSize:       simtime.MB,
		Warmup:         100 * simtime.Microsecond,
		Window:         400 * simtime.Microsecond,
	}
	r := RunHybridCore(o)
	if r.Packet.Events == 0 {
		t.Fatal("packet baseline executed no events")
	}
	if r.Hybrid.Events >= r.Packet.Events/5 {
		t.Fatalf("hybrid run executed %d events vs packet %d; fast path is not fast-forwarding",
			r.Hybrid.Events, r.Packet.Events)
	}
	if r.Fidelity.FlowsStarted == 0 || r.Fidelity.AnalyticFlows == 0 {
		t.Fatalf("implausible fidelity accounting: %+v", r.Fidelity)
	}
	if r.Fidelity.AnalyticPayload == 0 {
		t.Fatal("no payload committed analytically")
	}
	if r.Speedup <= 1 {
		t.Fatalf("speedup %.2f; hybrid should beat packet fidelity outright", r.Speedup)
	}
	if r.Hosts != 48 || r.Senders != 24 {
		t.Fatalf("geometry: %d hosts, %d senders", r.Hosts, r.Senders)
	}
}
