package perf

import (
	"testing"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// TestHybridCoreSpeedup runs the hybrid benchmark on a reduced fabric and
// checks its invariants: the packet baseline does real per-packet work, the
// hybrid run fast-forwards the overwhelming majority of it (every demotion
// is conservation-checked inside RunHybridCore — a violation panics), and
// the wall-clock win is material even at test scale. The 2304-host
// configuration asserted in ROADMAP/ISSUE acceptance runs via accbench
// -fidelity hybrid.
func TestHybridCoreSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := HybridOptions{
		Seed: 1, Leaves: 6, HostsPerLeaf: 8, Spines: 4,
		SendersPerLeaf: 4,
		FlowSize:       simtime.MB,
		Warmup:         100 * simtime.Microsecond,
		Window:         400 * simtime.Microsecond,
	}
	r := RunHybridCore(o)
	if r.Packet.Events == 0 {
		t.Fatal("packet baseline executed no events")
	}
	if r.Hybrid.Events >= r.Packet.Events/5 {
		t.Fatalf("hybrid run executed %d events vs packet %d; fast path is not fast-forwarding",
			r.Hybrid.Events, r.Packet.Events)
	}
	if r.Fidelity.FlowsStarted == 0 || r.Fidelity.AnalyticFlows == 0 {
		t.Fatalf("implausible fidelity accounting: %+v", r.Fidelity)
	}
	if r.Fidelity.AnalyticPayload == 0 {
		t.Fatal("no payload committed analytically")
	}
	if r.Speedup <= 1 {
		t.Fatalf("speedup %.2f; hybrid should beat packet fidelity outright", r.Speedup)
	}
	if r.Hosts != 48 || r.Senders != 24 {
		t.Fatalf("geometry: %d hosts, %d senders", r.Hosts, r.Senders)
	}
}

// TestHybridSteadyStateAllocs pins the hybrid fast path's allocation
// regression fixed in this revision: renewals used to allocate a Flow, a
// path slice, and a fresh closure pair each (≈0.098 allocs/event in
// BENCH_hybrid.json). With the engine recycling flows and path slices and
// the bench hoisting one callback pair per sender, a steady-state window
// of pure analytic renewals performs ~0.7 amortized allocations (event
// calendar and pool growth), not one per renewal. Demotions are disabled
// (they legitimately allocate the packet transports they hand off to), so
// the measurand is exactly the renewal loop: ~29 renewals per window, so
// a per-renewal regression reads >=24 allocs/window against a budget of 2.
func TestHybridSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	cfg := topo.DefaultConfig()
	params := dcqcn.DefaultParams(cfg.HostBW)
	o := HybridOptions{
		Seed: 1, Leaves: 6, HostsPerLeaf: 8, Spines: 4,
		SendersPerLeaf: 4, FlowSize: simtime.MB,
	}
	net := netsim.New(o.Seed)
	fab := topo.LeafSpine(net, o.Leaves, o.HostsPerLeaf, o.Spines, cfg)
	hcfg := hybrid.DefaultConfig()
	hcfg.DemoteUtil = 1e9 // keep every flow analytic
	hcfg.QueueFrac = 1e9
	eng := hybrid.New(hcfg, net.Q, net.Tracer)
	mesh := hybrid.ForFabric(eng, fab)
	forEachSender(o, fab, func(src, dst *netsim.Host) {
		// The exact hoisted renewal loop RunHybridCore runs.
		var loop func()
		startPacket := func(*hybrid.Flow, int64) { panic("perf: demotion in analytic-only alloc test") }
		onDone := func(*hybrid.Flow, simtime.Time) { loop() }
		loop = func() {
			id := net.NextFlowID()
			eng.StartFlow(mesh.Path(id, src, dst),
				hybrid.FlowOpts{ID: uint64(id), Size: o.FlowSize, Prio: params.Prio, Eligible: true},
				startPacket, onDone)
		}
		loop()
	})
	eng.StartTicker()

	// Let pools, slice capacities, and the event calendar settle over a few
	// full renewal generations, then demand zero allocations per window.
	end := simtime.Time(2 * simtime.Millisecond)
	net.Q.RunBefore(end)
	window := 400 * simtime.Microsecond
	avg := testing.AllocsPerRun(20, func() {
		end = end.Add(window)
		net.Q.RunBefore(end)
	})
	if avg > 2 {
		t.Fatalf("hybrid renewal loop allocates %.2f allocs per %v window (want ~1 amortized); the fast path is allocating per renewal again", avg, window)
	}
	if eng.Stats.Demotions != 0 {
		t.Fatalf("test misconfigured: %d demotions occurred, window is not purely analytic", eng.Stats.Demotions)
	}
}
