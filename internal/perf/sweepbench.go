package perf

import (
	"fmt"
	"runtime"
	"time"

	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap"
	"github.com/accnet/acc/internal/sweep"
)

// SweepOptions configure the warm-vs-cold sweep benchmark: one matrix,
// executed once by the cold executor (every branch re-simulates the shared
// warmup) and once by the warm executor (one warmup, K forks). Parallel is
// handed to both modes equally, so the speedup isolates the warm-start
// effect rather than concurrency.
type SweepOptions struct {
	Matrix   sweep.Matrix
	Parallel int
}

// DefaultSweepOptions returns the warmup-dominated matrix the acceptance
// criterion is stated over: a congested sharded hybrid fabric run to 1 ms,
// branching 16 WRED variants at 900 us — so a cold sweep pays the 900 us
// warmup 16 times while the warm sweep pays it once and forks.
func DefaultSweepOptions(branches int) SweepOptions {
	if branches <= 0 {
		branches = 16
	}
	return SweepOptions{
		Matrix: sweep.Matrix{
			Base: snap.Scenario{
				NLeaf: 6, HostsPerLeaf: 4, NSpine: 3, Shards: 4,
				Seed:  1,
				Flows: 192, MaxBytes: 128 * simtime.KB, Spread: 800 * simtime.Microsecond, MixTCP: true,
				Horizon:  simtime.Time(simtime.Millisecond),
				Fidelity: "hybrid",
			},
			WarmPoint: simtime.Time(900 * simtime.Microsecond),
			Branches:  sweep.WREDLadder(branches),
		},
		Parallel: runtime.GOMAXPROCS(0),
	}
}

// SweepModeResult is one executor mode's wall-clock surface.
type SweepModeResult struct {
	WallSeconds     float64 `json:"wall_seconds"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
}

// SweepResult records the warm-vs-cold comparison. Identical is always
// true in a returned result — RunSweep fails instead of reporting a
// speedup over wrong answers.
type SweepResult struct {
	Branches    int             `json:"branches"`
	Shards      int             `json:"shards"`
	Fidelity    string          `json:"fidelity"`
	WarmPointUs float64         `json:"warm_point_usec"`
	HorizonUs   float64         `json:"horizon_usec"`
	Parallel    int             `json:"parallel"`
	MaxProcs    int             `json:"maxprocs"`
	Cold        SweepModeResult `json:"cold"`
	Warm        SweepModeResult `json:"warm"`
	Speedup     float64         `json:"speedup"`
	Identical   bool            `json:"identical"`
	BranchCSV   string          `json:"-"`
}

// RunSweep executes the matrix cold then warm, verifies the two modes'
// per-branch outcomes are identical (returning an error otherwise — a
// fast wrong sweep is worthless), and reports scenarios/sec for each.
func RunSweep(o SweepOptions) (SweepResult, error) {
	m := o.Matrix
	opts := sweep.Options{Parallel: o.Parallel}
	n := len(m.Branches)

	start := time.Now()
	cold, err := sweep.RunCold(m, opts)
	if err != nil {
		return SweepResult{}, fmt.Errorf("perf: cold sweep: %w", err)
	}
	coldWall := time.Since(start).Seconds()

	start = time.Now()
	warm, err := sweep.RunWarm(m, opts)
	if err != nil {
		return SweepResult{}, fmt.Errorf("perf: warm sweep: %w", err)
	}
	warmWall := time.Since(start).Seconds()

	if ok, who := sweep.Equal(warm, cold); !ok {
		return SweepResult{}, fmt.Errorf("perf: warm sweep diverged from cold at branch %s", who)
	}

	res := SweepResult{
		Branches:    n,
		Shards:      m.Base.Shards,
		Fidelity:    m.Base.Fidelity,
		WarmPointUs: float64(m.WarmPoint) / float64(simtime.Microsecond),
		HorizonUs:   float64(m.Base.Horizon) / float64(simtime.Microsecond),
		Parallel:    o.Parallel,
		MaxProcs:    runtime.GOMAXPROCS(0),
		Cold:        SweepModeResult{WallSeconds: coldWall},
		Warm:        SweepModeResult{WallSeconds: warmWall},
		Identical:   true,
		BranchCSV:   warm.CSV(),
	}
	if coldWall > 0 {
		res.Cold.ScenariosPerSec = float64(n) / coldWall
	}
	if warmWall > 0 {
		res.Warm.ScenariosPerSec = float64(n) / warmWall
		res.Speedup = coldWall / warmWall
	}
	return res, nil
}
