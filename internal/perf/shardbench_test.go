package perf

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// TestShardedCoreMatchesSequential runs the sharded benchmark on a reduced
// fabric and checks its built-in equivalence invariant: the K-shard engine
// must execute exactly as many events as the sequential engine over the
// same warmup and window (RunShardedCore panics on mismatch), and both
// engines must actually do work.
func TestShardedCoreMatchesSequential(t *testing.T) {
	o := ShardOptions{
		Seed: 1, Leaves: 6, HostsPerLeaf: 8, Spines: 4, Shards: 4,
		Warmup: 100 * simtime.Microsecond,
		Window: 50 * simtime.Microsecond,
	}
	r := RunShardedCore(o)
	if r.Sharded.Events == 0 {
		t.Fatal("sharded window executed no events")
	}
	if r.Sharded.Events != r.Sequential.Events {
		t.Fatalf("event totals diverged: sharded %d, sequential %d", r.Sharded.Events, r.Sequential.Events)
	}
	if r.Hosts != 48 || r.Shards != 4 {
		t.Fatalf("geometry: %d hosts, %d shards", r.Hosts, r.Shards)
	}
	if r.Speedup <= 0 {
		t.Fatalf("speedup %v not positive", r.Speedup)
	}
}
