package perf

import (
	"testing"

	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap"
	"github.com/accnet/acc/internal/sweep"
)

// TestRunSweep runs a reduced warmup-dominated matrix and checks the
// benchmark's invariants: both modes agree (RunSweep errors otherwise)
// and the warm executor beats the cold one outright even at test scale.
// The full 16-branch acceptance configuration runs via accbench -sweep.
func TestRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	o := SweepOptions{
		Matrix: sweep.Matrix{
			Base: snap.Scenario{
				NLeaf: 4, HostsPerLeaf: 3, NSpine: 2, Shards: 4,
				Seed:  1,
				Flows: 64, MaxBytes: 96 * simtime.KB, Spread: 500 * simtime.Microsecond, MixTCP: true,
				Horizon:  simtime.Time(600 * simtime.Microsecond),
				Fidelity: "hybrid",
			},
			WarmPoint: simtime.Time(540 * simtime.Microsecond),
			Branches:  sweep.WREDLadder(8),
		},
		Parallel: 2,
	}
	r, err := RunSweep(o)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if !r.Identical {
		t.Fatal("result not marked identical")
	}
	if r.Branches != 8 || r.Shards != 4 || r.Fidelity != "hybrid" {
		t.Fatalf("result metadata: %+v", r)
	}
	if r.Warm.ScenariosPerSec <= 0 || r.Cold.ScenariosPerSec <= 0 {
		t.Fatalf("missing throughput: warm %v cold %v", r.Warm, r.Cold)
	}
	if r.Speedup <= 1 {
		t.Fatalf("warm sweep speedup %.2f; warm start should win a warmup-dominated matrix outright", r.Speedup)
	}
	if r.BranchCSV == "" {
		t.Fatal("no branch CSV recorded")
	}
}
