package perf

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/simtime"
)

// Scheduler microbenchmarks: the eventq hot path isolated from the network
// model, across the regimes the simulator actually produces. ns/op here is
// the per-event scheduler overhead that multiplies into every figure and
// every RL rollout.
//
// CI runs these with -benchtime=1x as a smoke test; locally use
//
//	go test -bench BenchmarkSched -benchtime=2s ./internal/perf

// BenchmarkSchedPending holds N pending events in steady state (hold-model
// workload: pop the earliest, schedule a replacement at a random horizon).
// The sweep from 1e2 to 1e6 pending events exposes how scheduling cost
// scales with queue depth — the binary heap's O(log n) pointer-chasing is
// exactly what the calendar's O(1) bucket insert replaces.
func BenchmarkSchedPending(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			q := eventq.New()
			fn := func(any) {}
			// Mean inter-event spacing of ~50ns keeps bucket occupancy in
			// the line-rate regime regardless of N.
			horizon := 100 * n
			for i := 0; i < n; i++ {
				q.CallAfter(simtime.Duration(rng.Intn(horizon)), fn, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Step()
				q.CallAfter(simtime.Duration(rng.Intn(horizon)), fn, nil)
			}
			b.StopTimer()
			q.Run()
		})
	}
}

// BenchmarkSchedCancelHeavy is the cancel-dominated mix: most scheduled
// timers are cancelled before firing (speculative timeouts), leaving
// tombstones the scheduler must reap lazily.
func BenchmarkSchedCancelHeavy(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	q := eventq.New()
	var pend []*eventq.Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pend = append(pend, q.After(simtime.Duration(1000+rng.Intn(10_000)), func() {}))
		if len(pend) >= 64 {
			// Cancel three quarters, let the rest fire.
			for k, ev := range pend {
				if k%4 != 0 {
					ev.Cancel()
				}
			}
			pend = pend[:0]
			q.RunUntil(q.Now().Add(2000))
		}
	}
	q.Run()
}

// BenchmarkSchedResetHeavy is the re-arm-dominated mix: a fleet of timers
// that are rescheduled far more often than they fire, half near-horizon
// (pacing-like, inside the calendar window) and half far-horizon (RTO-like,
// in the overflow structure).
func BenchmarkSchedResetHeavy(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	q := eventq.New()
	fn := func() {}
	const slots = 64
	var evs [slots]*eventq.Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := rng.Intn(slots)
		var d simtime.Duration
		if k%2 == 0 {
			d = simtime.Duration(500 + rng.Intn(5_000)) // near: calendar
		} else {
			d = simtime.Duration(1_000_000 + rng.Intn(3_000_000)) // far: overflow
		}
		evs[k] = q.ResetAfter(evs[k], d, fn)
		if i%16 == 0 {
			q.RunUntil(q.Now().Add(100))
		}
	}
	q.Run()
}
