package perf

import (
	"fmt"
	"runtime"

	"github.com/accnet/acc/internal/psim"
	"github.com/accnet/acc/internal/topo"
	"github.com/accnet/acc/internal/workload"
)

// WorkloadOptions drives the workload-engine benchmark: a multi-client spec
// (internal/workload) expanded into a flow trace and pushed through the
// sharded engine end to end. Unlike the synthetic line-rate core benchmark,
// this measures the engine under production-shaped load — heavy-tailed flow
// sizes, bursty arrivals, several traffic classes at once.
type WorkloadOptions struct {
	Seed int64
	// Spec is a workload spec file path, or "" for the built-in default
	// three-class mix (workload.DefaultMixSpec).
	Spec   string
	Shards int
}

// DefaultWorkloadOptions returns the standard workload benchmark: the
// built-in three-class mix at 4 shards.
func DefaultWorkloadOptions() WorkloadOptions {
	return WorkloadOptions{Seed: 1, Shards: 4}
}

// WorkloadResult reports one spec-driven run. Completed counts flows that
// finished inside the spec horizon (generation window + drain).
type WorkloadResult struct {
	Spec      string `json:"spec"`
	Hosts     int    `json:"hosts"`
	Shards    int    `json:"shards"`
	MaxProcs  int    `json:"maxprocs"`
	Flows     int    `json:"flows"`
	Completed int    `json:"completed"`
	Bytes     int64  `json:"bytes"`

	Result CoreResult `json:"result"`
}

// RunWorkload expands the spec at the given seed and runs the resulting
// trace to its horizon on the sharded engine, measuring the full span (no
// warmup: flow churn IS the workload being measured).
func RunWorkload(o WorkloadOptions) (WorkloadResult, error) {
	spec := workload.DefaultMixSpec()
	if o.Spec != "" {
		s, err := workload.ReadSpecFile(o.Spec)
		if err != nil {
			return WorkloadResult{}, err
		}
		spec = s
	}
	tr, err := spec.Generate(o.Seed)
	if err != nil {
		return WorkloadResult{}, fmt.Errorf("spec %q: %w", spec.Name, err)
	}
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	cfg := topo.DefaultConfig()
	eng := psim.Build(psim.Config{
		NLeaf: tr.NLeaf, HostsPerLeaf: tr.HostsPerLeaf, NSpine: tr.NSpine,
		Shards: shards, Seed: tr.Seed, Topo: cfg,
	})
	plan := psim.PlanFromTrace(tr, cfg.HostBW)
	app := eng.Apply(plan)
	horizon := tr.Horizon.Sub(0)
	res := measure(0, horizon, eng.Run, eng.Processed)

	completed := 0
	for _, end := range app.End {
		if end != 0 {
			completed++
		}
	}
	return WorkloadResult{
		Spec:      spec.Name,
		Hosts:     tr.NLeaf * tr.HostsPerLeaf,
		Shards:    eng.Part.K,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Flows:     len(tr.Flows),
		Completed: completed,
		Bytes:     tr.TotalBytes(),
		Result:    res,
	}, nil
}
