package perf

import (
	"fmt"
	"runtime"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// HybridOptions sizes the hybrid-fidelity benchmark: an uncongested
// cross-leaf workload on a 2304-host fabric, run once at pure packet
// fidelity and once through the flow-level fast-forward engine
// (internal/hybrid), over the identical span of virtual time.
type HybridOptions struct {
	Seed         int64
	Leaves       int
	HostsPerLeaf int
	Spines       int

	// SendersPerLeaf hosts per leaf each drive a renewing stream of FlowSize
	// transfers to the same-indexed host on the next leaf. Kept well below
	// the oversubscription point so the fluid model keeps (nearly) all
	// traffic analytic — the scenario the fast path exists for.
	SendersPerLeaf int
	FlowSize       int64

	Warmup simtime.Duration
	Window simtime.Duration
}

// DefaultHybridOptions returns the standard configuration: the 2304-host
// fabric of the sharded benchmark (24 leaves x 96 hosts, 12 spines), 8
// senders per leaf renewing 1 MB flows — 192 concurrent line-rate transfers
// whose paths stay under every demotion trigger except the occasional
// unlucky ECMP pile-up. The window spans a full flow lifetime (~335us at
// 25G) plus renewal churn.
func DefaultHybridOptions() HybridOptions {
	return HybridOptions{
		Seed:           1,
		Leaves:         24,
		HostsPerLeaf:   96,
		Spines:         12,
		SendersPerLeaf: 8,
		FlowSize:       simtime.MB,
		Warmup:         100 * simtime.Microsecond,
		Window:         400 * simtime.Microsecond,
	}
}

// HybridResult compares one packet-fidelity and one hybrid-fidelity
// execution of the identical workload over the identical virtual window.
// Speedup is packet wall time over hybrid wall time; EquivEventsPerSec is
// the ISSUE metric — the packet-level event count (the work the fast path
// made unnecessary) divided by the hybrid run's wall time, i.e. the rate at
// which hybrid simulates packet-equivalent traffic.
type HybridResult struct {
	Hosts    int `json:"hosts"`
	Senders  int `json:"senders"`
	MaxProcs int `json:"maxprocs"`

	Packet CoreResult `json:"packet"`
	Hybrid CoreResult `json:"hybrid"`

	Speedup           float64 `json:"speedup"`
	EquivEventsPerSec float64 `json:"equiv_events_per_sec"`

	// Fidelity is the hybrid engine's mode accounting for the run: how much
	// traffic fast-forwarded and how often triggers demoted a hotspot (ECMP
	// pile-ups are possible at any load — renewals re-hash).
	Fidelity obs.FidelitySummary `json:"fidelity"`
}

// hybridWorkload starts the renewing sender set on any fabric; start is
// called once per (src, dst, renewal) and must arrange its own renewal.
func forEachSender(o HybridOptions, fab *topo.Fabric, start func(src, dst *netsim.Host)) {
	for l := 0; l < o.Leaves; l++ {
		for s := 0; s < o.SendersPerLeaf; s++ {
			start(fab.HostsAt[l][s], fab.HostsAt[(l+1)%o.Leaves][s])
		}
	}
}

// RunHybridCore executes the hybrid benchmark: the identical renewing
// workload at packet and hybrid fidelity, reporting both engine measurements
// and their ratio. The hybrid run checks byte conservation at every
// demotion (panic on violation) — the benchmark doubles as a correctness
// sweep at a scale the unit tests don't reach.
func RunHybridCore(o HybridOptions) HybridResult {
	cfg := topo.DefaultConfig()
	params := dcqcn.DefaultParams(cfg.HostBW)

	// Packet-fidelity baseline.
	pktNet := netsim.New(o.Seed)
	pktFab := topo.LeafSpine(pktNet, o.Leaves, o.HostsPerLeaf, o.Spines, cfg)
	forEachSender(o, pktFab, func(src, dst *netsim.Host) {
		var loop func()
		loop = func() {
			dcqcn.Start(pktNet, src, dst, o.FlowSize, params, func(*dcqcn.Flow) { loop() })
		}
		loop()
	})
	pkt := measure(o.Warmup, o.Window, pktNet.Q.RunBefore, pktNet.Q.Processed)

	// Hybrid fidelity: same fabric, same senders, flows registered with the
	// fast-forward engine and demoted to real DCQCN only when a trigger
	// fires.
	hybNet := netsim.New(o.Seed)
	hybFab := topo.LeafSpine(hybNet, o.Leaves, o.HostsPerLeaf, o.Spines, cfg)
	eng := hybrid.New(hybrid.DefaultConfig(), hybNet.Q, hybNet.Tracer)
	mesh := hybrid.ForFabric(eng, hybFab)
	forEachSender(o, hybFab, func(src, dst *netsim.Host) {
		// One closure pair per sender, shared across renewals: the callbacks
		// recover the renewal's flow id from f.ID instead of capturing it, so
		// the steady-state loop performs zero allocations per renewal (the
		// engine recycles Flow objects and path slices; pinned by
		// TestHybridSteadyStateAllocs). Only a demotion — rare by design —
		// allocates, for the packet transports it hands off to.
		var loop func()
		startPacket := func(f *hybrid.Flow, remaining int64) {
			if f.AnalyticPayload()+remaining != o.FlowSize {
				panic(fmt.Sprintf("perf: conservation violated at demotion: %d + %d != %d",
					f.AnalyticPayload(), remaining, o.FlowSize))
			}
			id := netsim.FlowID(f.ID)
			dcqcn.StartReceiver(id, src.ID(), dst, remaining, params, func(*dcqcn.Receiver) {
				eng.PacketDone(f)
				loop()
			})
			dcqcn.StartSender(hybNet, id, src, dst.ID(), remaining, params)
		}
		onDone := func(*hybrid.Flow, simtime.Time) { loop() }
		loop = func() {
			id := hybNet.NextFlowID()
			eng.StartFlow(mesh.Path(id, src, dst),
				hybrid.FlowOpts{ID: uint64(id), Size: o.FlowSize, Prio: params.Prio, Eligible: true},
				startPacket, onDone)
		}
		loop()
	})
	eng.StartTicker()
	hyb := measure(o.Warmup, o.Window, hybNet.Q.RunBefore, hybNet.Q.Processed)

	res := HybridResult{
		Hosts:    o.Leaves * o.HostsPerLeaf,
		Senders:  o.Leaves * o.SendersPerLeaf,
		MaxProcs: runtime.GOMAXPROCS(0),
		Packet:   pkt,
		Hybrid:   hyb,
		Fidelity: eng.Stats,
	}
	if hyb.WallSeconds > 0 {
		res.Speedup = pkt.WallSeconds / hyb.WallSeconds
		res.EquivEventsPerSec = float64(pkt.Events) / hyb.WallSeconds
	}
	return res
}
