// Package perf drives the discrete-event engine at line rate on a raw
// leaf-spine fabric, with no experiment logic or ACC control loop on top.
// It is the shared core behind BenchmarkSimulatorCore and cmd/accbench: the
// numbers it produces (events/sec, ns/event, allocations/event) isolate the
// engine hot path — eventq scheduling, port serialization/propagation,
// switch forwarding, and transport pacing — from everything an experiment
// adds, so engine regressions are visible independently of any figure.
package perf

import (
	"runtime"
	"time"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// CoreOptions sizes the raw-fabric benchmark.
type CoreOptions struct {
	Seed         int64
	Leaves       int
	HostsPerLeaf int
	Spines       int

	// Warmup is virtual time run before measuring, letting flows ramp, the
	// packet/event pools fill, and queues reach steady state.
	Warmup simtime.Duration
	// Window is the measured span of virtual time.
	Window simtime.Duration
}

// DefaultCoreOptions returns the standard configuration: a 16-host
// leaf-spine fabric with every host driving a cross-leaf DCQCN flow at line
// rate, warmed up for 2ms and measured over 1ms of virtual time. The warmup
// spans many calendar-window rotations of the scheduler, so the event pools
// and bucket slab pool reach their high-water marks before measurement and
// the steady-state window reads exactly zero allocations.
func DefaultCoreOptions() CoreOptions {
	return CoreOptions{
		Seed:         1,
		Leaves:       4,
		HostsPerLeaf: 4,
		Spines:       2,
		Warmup:       2 * simtime.Millisecond,
		Window:       simtime.Millisecond,
	}
}

// CoreResult is one measurement of the engine hot path.
type CoreResult struct {
	Events       uint64  `json:"events"`       // events executed in the window
	VirtualUsec  float64 `json:"virtual_usec"` // measured virtual time
	WallSeconds  float64 `json:"wall_seconds"` // wall time for the window
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	// Allocation pressure per event, from runtime.MemStats deltas around the
	// measured window. In steady state the pooled hot path keeps this near
	// zero; a regression shows up here before it shows up in wall time.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// Core is a warmed-up raw fabric ready to advance in measured slices.
type Core struct {
	Net *netsim.Network
	Fab *topo.Fabric
}

// NewCore builds the fabric and starts one long-lived line-rate DCQCN flow
// per host toward the same-indexed host on the next leaf, so every flow
// crosses the spine layer and every link stays saturated. Flow sizes are
// effectively infinite: the benchmark measures the steady per-packet path,
// not flow churn.
func NewCore(o CoreOptions) *Core {
	net := netsim.New(o.Seed)
	cfg := topo.DefaultConfig()
	fab := topo.LeafSpine(net, o.Leaves, o.HostsPerLeaf, o.Spines, cfg)
	params := dcqcn.DefaultParams(cfg.HostBW)
	n := len(fab.Hosts)
	per := o.HostsPerLeaf
	for i, src := range fab.Hosts {
		dst := fab.Hosts[(i+per)%n] // same index, next leaf
		dcqcn.Start(net, src, dst, 1<<40, params, nil)
	}
	return &Core{Net: net, Fab: fab}
}

// Warmup advances virtual time so the fabric reaches steady state.
func (c *Core) Warmup(d simtime.Duration) {
	c.Net.RunFor(d)
}

// Advance runs one measured slice of virtual time and returns the number of
// events executed in it.
func (c *Core) Advance(d simtime.Duration) uint64 {
	before := c.Net.Q.Processed()
	c.Net.RunFor(d)
	return c.Net.Q.Processed() - before
}

// RunCore executes the full benchmark — build, warm up, measure — and
// returns the engine metrics. It is what cmd/accbench snapshots into
// BENCH_core.json.
func RunCore(o CoreOptions) CoreResult {
	c := NewCore(o)
	c.Warmup(o.Warmup)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	events := c.Advance(o.Window)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	r := CoreResult{
		Events:      events,
		VirtualUsec: o.Window.Seconds() * 1e6,
		WallSeconds: wall,
	}
	if events > 0 {
		r.EventsPerSec = float64(events) / wall
		r.NsPerEvent = wall * 1e9 / float64(events)
		r.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		r.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	return r
}
