package perf

import (
	"runtime"
	"time"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/psim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// ShardOptions sizes the sharded-engine benchmark: the same line-rate
// all-hosts workload as the core benchmark, but on a fabric an order of
// magnitude past the paper's 288-host testbed, run once on the sequential
// engine and once on the K-shard parallel engine (internal/psim).
type ShardOptions struct {
	Seed         int64
	Leaves       int
	HostsPerLeaf int
	Spines       int
	Shards       int

	// Warmup is virtual time run before measuring; Window is the measured
	// span. Both engines execute the identical schedule, so the event
	// totals must agree exactly — the benchmark doubles as an equivalence
	// check at scale.
	Warmup simtime.Duration
	Window simtime.Duration
}

// DefaultShardOptions returns the standard sharded benchmark: a 2304-host
// fabric (24 leaves x 96 hosts, 12 spines) — 8x the paper's 288-host NS3
// evaluation — at 4 shards. The window is short because the fabric is
// enormous: ~150 virtual microseconds at line rate is tens of millions of
// events.
func DefaultShardOptions() ShardOptions {
	return ShardOptions{
		Seed:         1,
		Leaves:       24,
		HostsPerLeaf: 96,
		Spines:       12,
		Shards:       4,
		Warmup:       200 * simtime.Microsecond,
		Window:       100 * simtime.Microsecond,
	}
}

// ShardResult compares one sequential and one sharded execution of the
// identical workload. Speedup is sequential wall time over sharded wall
// time for the measured window; MaxProcs records how many OS threads the
// sharded run could actually use, which bounds the achievable speedup — a
// single-core machine reports the sync overhead, not the scaling.
type ShardResult struct {
	Hosts    int     `json:"hosts"`
	Shards   int     `json:"shards"`
	MaxProcs int     `json:"maxprocs"`
	Speedup  float64 `json:"speedup"`

	// Note is non-empty when the measurement conditions undermine the
	// headline number — currently when MaxProcs is 1, where "speedup" can
	// only measure synchronization overhead, never parallel scaling.
	Note string `json:"note,omitempty"`

	Sequential CoreResult `json:"sequential"`
	Sharded    CoreResult `json:"sharded"`
}

// shardPlan builds the line-rate workload: every host drives one
// effectively-infinite DCQCN flow to the same-indexed host on the next
// leaf, so all traffic crosses the spine layer (and, at K>1, the shard
// cuts).
func shardPlan(o ShardOptions, cfg topo.Config) *psim.Plan {
	p := psim.NewPlan(cfg.HostBW)
	for l := 0; l < o.Leaves; l++ {
		for h := 0; h < o.HostsPerLeaf; h++ {
			//acclint:ignore barriermut pre-apply plan construction: the plan is private to this builder until Apply
			p.Flows = append(p.Flows, psim.FlowSpec{
				Src:  psim.HostRef{Leaf: l, Host: h},
				Dst:  psim.HostRef{Leaf: (l + 1) % o.Leaves, Host: h},
				Size: 1 << 40,
			})
		}
	}
	return p
}

// measure runs warmup then the measured window via run(horizon), using
// events(), and returns the window's engine metrics.
func measure(warmup, window simtime.Duration, run func(simtime.Time), events func() uint64) CoreResult {
	run(simtime.Time(0).Add(warmup))

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ev0 := events()
	start := time.Now()
	run(simtime.Time(0).Add(warmup + window))
	wall := time.Since(start).Seconds()
	ev := events() - ev0
	runtime.ReadMemStats(&after)

	r := CoreResult{
		Events:      ev,
		VirtualUsec: window.Seconds() * 1e6,
		WallSeconds: wall,
	}
	if ev > 0 {
		r.EventsPerSec = float64(ev) / wall
		r.NsPerEvent = wall * 1e9 / float64(ev)
		r.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(ev)
		r.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(ev)
	}
	return r
}

// RunShardedCore executes the sharded-engine benchmark: the identical
// line-rate workload on the sequential engine and on the K-shard parallel
// engine, reporting both measurements and their wall-clock ratio. The two
// engines' event totals must match exactly (the schedules are bit-identical
// by psim's differential proof); a mismatch panics rather than reporting a
// meaningless speedup.
func RunShardedCore(o ShardOptions) ShardResult {
	cfg := topo.DefaultConfig()
	plan := shardPlan(o, cfg)

	// Sequential baseline: one Network, one queue, one bounded sweep per
	// phase. RunBefore (horizon-exclusive) rather than RunUntil, to match
	// the sharded engine's window semantics event-for-event.
	seqNet := netsim.New(o.Seed)
	seqFab := topo.LeafSpine(seqNet, o.Leaves, o.HostsPerLeaf, o.Spines, cfg)
	psim.ApplyToFabric(seqFab, o.HostsPerLeaf, plan)
	seq := measure(o.Warmup, o.Window, seqNet.Q.RunBefore, seqNet.Q.Processed)

	// Sharded engine: K shard-local queues under conservative barrier sync.
	eng := psim.Build(psim.Config{
		NLeaf: o.Leaves, HostsPerLeaf: o.HostsPerLeaf, NSpine: o.Spines,
		Shards: o.Shards, Seed: o.Seed, Topo: cfg,
	})
	eng.Apply(plan)
	shr := measure(o.Warmup, o.Window, eng.Run, eng.Processed)

	if shr.Events != seq.Events {
		panic("perf: sharded engine executed a different event count than the sequential engine")
	}
	res := ShardResult{
		Hosts:      o.Leaves * o.HostsPerLeaf,
		Shards:     eng.Part.K,
		MaxProcs:   runtime.GOMAXPROCS(0),
		Sequential: seq,
		Sharded:    shr,
	}
	if res.MaxProcs == 1 {
		res.Note = "maxprocs=1: shards ran time-sliced on one thread; speedup measures synchronization overhead, not parallel scaling"
	}
	if shr.WallSeconds > 0 {
		res.Speedup = seq.WallSeconds / shr.WallSeconds
	}
	return res
}
