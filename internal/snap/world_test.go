package snap

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/accnet/acc/internal/psim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
)

// testScenario is a small congested fabric: enough flows per host pair to
// build queues (marks, PFC), a flapping leaf-spine link, and a mixed
// TCP/DCQCN population.
func testScenario(shards int, fidelity string) Scenario {
	return Scenario{
		NLeaf: 4, HostsPerLeaf: 3, NSpine: 2, Shards: shards,
		Seed:  7,
		Flows: 48, MaxBytes: 96 * simtime.KB, Spread: 150 * simtime.Microsecond, MixTCP: true,
		FaultLinks: 1, MTBF: 200 * simtime.Microsecond, MTTR: 40 * simtime.Microsecond, FaultSeed: 11,
		Horizon:  simtime.Time(600 * simtime.Microsecond),
		Fidelity: fidelity,
	}
}

// runCold builds and runs a scenario straight to its horizon.
func runCold(t *testing.T, sc Scenario) Summary {
	t.Helper()
	w, err := Build(sc)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Run(sc.Horizon)
	return w.Summarize()
}

// TestRestoreContinuity is the tentpole proof obligation: run to a
// mid-run instant, snapshot, restore into a fresh world, run to the
// horizon — and get the bit-identical outcome surface of the
// uninterrupted run. Sequential and sharded, both fidelities, with and
// without ACC.
func TestRestoreContinuity(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"packet-seq", func(sc *Scenario) { sc.Shards = 1 }},
		{"packet-shards4", func(sc *Scenario) { sc.Shards = 4 }},
		{"hybrid-seq", func(sc *Scenario) { sc.Shards = 1; sc.Fidelity = "hybrid" }},
		{"hybrid-shards4", func(sc *Scenario) { sc.Shards = 4; sc.Fidelity = "hybrid" }},
		{"acc-shards4", func(sc *Scenario) {
			sc.Shards = 4
			sc.ACC = true
			sc.WRED = &red.Config{Kmin: 40 * simtime.KB, Kmax: 160 * simtime.KB, Pmax: 0.2}
		}},
		{"wred-packet-seq", func(sc *Scenario) {
			sc.Shards = 1
			sc.WRED = &red.Config{Kmin: 20 * simtime.KB, Kmax: 80 * simtime.KB, Pmax: 0.5}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := testScenario(1, "packet")
			tc.mut(&sc)
			cold := runCold(t, sc)
			if cold.FlowsCompleted == 0 {
				t.Fatalf("scenario completed no flows; test exercises nothing")
			}

			warm, err := Build(sc)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			mid := sc.Horizon / 2
			warm.Run(mid)
			img := warm.Snapshot()

			resumed, err := Restore(img)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if resumed.Now() != warm.Now() {
				t.Fatalf("restored clock %v, want %v", resumed.Now(), warm.Now())
			}
			resumed.Run(sc.Horizon)
			got := resumed.Summarize()
			if got != cold {
				t.Fatalf("restore≢continuous:\n cold   %+v\n resumed %+v", cold, got)
			}
		})
	}
}

// TestSnapshotIsRepeatable: snapshotting must not perturb the world — the
// snapshotted run continues to the same outcome as the cold run, and a
// second snapshot of a restored world equals a snapshot of the original
// at the same instant.
func TestSnapshotIsRepeatable(t *testing.T) {
	sc := testScenario(4, "hybrid")
	cold := runCold(t, sc)

	w, err := Build(sc)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mid := sc.Horizon / 2
	w.Run(mid)
	img := w.Snapshot()
	w.Run(sc.Horizon) // the snapshotted world keeps running
	if got := w.Summarize(); got != cold {
		t.Fatalf("snapshotting perturbed the run:\n cold %+v\n got  %+v", cold, got)
	}

	r1, err := Restore(img)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	img2 := r1.Snapshot()
	if string(img) != string(img2) {
		t.Fatalf("restore→snapshot is not byte-identical to the original snapshot (%d vs %d bytes)", len(img), len(img2))
	}
}

// TestForkMatchesColdRun: every branch forked from a warm snapshot must be
// bit-identical to a cold run that applied the same variant at the same
// instant — the property that lets sweeps share one warmup.
func TestForkMatchesColdRun(t *testing.T) {
	for _, fidelity := range []string{"packet", "hybrid"} {
		t.Run(fidelity, func(t *testing.T) {
			sc := testScenario(4, fidelity)
			branch := sc.Horizon / 2
			variants := []Variant{
				{Name: "wred-shallow", WRED: &red.Config{Kmin: 10 * simtime.KB, Kmax: 40 * simtime.KB, Pmax: 0.8}},
				{Name: "fault-burst", Faults: []psim.FaultEvent{
					{At: branch.Add(20 * simtime.Microsecond), Link: psim.LeafSpineLink(1, 1), Down: true},
					{At: branch.Add(120 * simtime.Microsecond), Link: psim.LeafSpineLink(1, 1), Down: false},
				}},
				{Name: "baseline"},
			}

			warm, err := Build(sc)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			warm.Run(branch)
			img := warm.Snapshot()

			for _, v := range variants {
				forked, err := Fork(img, v)
				if err != nil {
					t.Fatalf("Fork(%s): %v", v.Name, err)
				}
				forked.Run(sc.Horizon)
				got := forked.Summarize()

				coldW, err := Build(sc)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				coldW.Run(branch)
				if err := coldW.ApplyVariant(v); err != nil {
					t.Fatalf("ApplyVariant(%s): %v", v.Name, err)
				}
				coldW.Run(sc.Horizon)
				want := coldW.Summarize()

				if got != want {
					t.Fatalf("fork≢cold for %s:\n cold %+v\n fork %+v", v.Name, want, got)
				}
			}
		})
	}
}

// TestKillResumeFile: the crash-resume path — snapshot to a file, rebuild
// from the file alone (the scenario rides inside), and reach the cold
// run's outcome.
func TestKillResumeFile(t *testing.T) {
	sc := testScenario(4, "hybrid")
	sc.ACC = true
	cold := runCold(t, sc)

	w, err := Build(sc)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Run(sc.Horizon / 2)
	path := filepath.Join(t.TempDir(), "world.accsnap")
	if err := WriteFile(path, w.Snapshot()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	data, got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got != sc {
		t.Fatalf("embedded scenario %+v differs from %+v", got, sc)
	}
	resumed, err := Restore(data)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	resumed.Run(sc.Horizon)
	if got := resumed.Summarize(); got != cold {
		t.Fatalf("kill-resume≢continuous:\n cold    %+v\n resumed %+v", cold, got)
	}
}

// TestRestoreRejectsCorruption: flipped bytes and truncation must fail
// loudly, never restore a half-world.
func TestRestoreRejectsCorruption(t *testing.T) {
	sc := testScenario(1, "packet")
	w, err := Build(sc)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Run(sc.Horizon / 2)
	img := w.Snapshot()

	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Restore(flipped); err == nil {
		t.Fatalf("Restore accepted a corrupted stream")
	}
	if _, err := Restore(img[:len(img)-6]); err == nil {
		t.Fatalf("Restore accepted a truncated stream")
	}
	if _, err := Peek([]byte("not a snapshot")); err == nil {
		t.Fatalf("Peek accepted garbage")
	}
}

// TestVariantValidation: rewinding faults and out-of-range links are
// configuration errors, not silent schedule corruption.
func TestVariantValidation(t *testing.T) {
	sc := testScenario(1, "packet")
	w, err := Build(sc)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Run(simtime.Time(100 * simtime.Microsecond))
	past := Variant{Faults: []psim.FaultEvent{{At: simtime.Time(10 * simtime.Microsecond), Link: psim.LeafSpineLink(0, 0), Down: true}}}
	if err := w.ApplyVariant(past); err == nil {
		t.Fatalf("ApplyVariant accepted a fault before the branch instant")
	}
	oob := Variant{Faults: []psim.FaultEvent{{At: simtime.Time(200 * simtime.Microsecond), Link: psim.LeafSpineLink(99, 0), Down: true}}}
	if err := w.ApplyVariant(oob); err == nil {
		t.Fatalf("ApplyVariant accepted an out-of-range link")
	}
	bad := Variant{WRED: &red.Config{Kmin: 100, Kmax: 50, Pmax: 0.5}}
	if err := w.ApplyVariant(bad); err == nil {
		t.Fatalf("ApplyVariant accepted an invalid WRED template")
	}
}

// TestScenarioValidation exercises Build's input rejection.
func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{NLeaf: 1, HostsPerLeaf: 1, NSpine: 1, Horizon: 1},
		{NLeaf: 2, HostsPerLeaf: 1, NSpine: 1},
		{NLeaf: 2, HostsPerLeaf: 1, NSpine: 1, Horizon: 1, Fidelity: "fluid"},
		{NLeaf: 2, HostsPerLeaf: 1, NSpine: 1, Horizon: 1, FaultLinks: 1},
		{NLeaf: 2, HostsPerLeaf: 1, NSpine: 1, Horizon: 1, WRED: &red.Config{Kmin: 2, Kmax: 1, Pmax: 0.1}},
	}
	for i, sc := range bad {
		if _, err := Build(sc); err == nil {
			t.Errorf("case %d: Build accepted invalid scenario %+v", i, sc)
		}
	}
	if _, err := os.Stat("/nonexistent-snap-dir/x.accsnap"); err == nil {
		t.Skip("unexpected path exists")
	}
	if _, _, err := ReadFile("/nonexistent-snap-dir/x.accsnap"); err == nil {
		t.Errorf("ReadFile accepted a missing path")
	}
}
