// Package codec is the versioned binary encoding underneath snapshot
// files (internal/snap): unsigned LEB128 varints, zigzag signed varints,
// IEEE-754 float64 bits, length-prefixed byte strings, and named section
// tags, wrapped in a magic/version header and an IEEE CRC-32 trailer.
//
// The codec is deliberately dependency-free so every engine package
// (eventq, netsim, dcqcn, tcp, rl, acc, stats, hybrid, psim) can expose
// SaveState/RestoreState methods over it without import cycles.
//
// Error handling is sticky on the read side: the first malformed field
// latches Reader.Err and every later accessor returns a zero value, so
// restore code can decode a whole section and check the error once.
package codec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies a snapshot byte stream.
const Magic = "ACCSNAP\x01"

// Version is the current snapshot format version. Readers refuse streams
// with a newer major version; the version is available to restore code so
// future minor revisions can keep decoding old streams.
const Version uint16 = 1

// Writer accumulates a snapshot byte stream.
type Writer struct {
	buf []byte
}

// NewWriter starts a stream with the magic and format version.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, Magic...)
	w.U64(uint64(Version))
	return w
}

// Finish appends the CRC-32 trailer and returns the complete stream.
// The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	sum := crc32.ChecksumIEEE(w.buf)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	w.buf = append(w.buf, tail[:]...)
	return w.buf
}

// Len returns the number of bytes written so far (header included).
func (w *Writer) Len() int { return len(w.buf) }

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

// I64 writes a zigzag-encoded signed varint.
func (w *Writer) I64(v int64) { w.U64(uint64(v<<1) ^ uint64(v>>63)) }

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 writes a float64 as its IEEE-754 bit pattern (exact round trip).
func (w *Writer) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.buf = append(w.buf, b[:]...)
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Tag writes a named section marker. Readers consume it with Expect,
// which turns any encode/decode skew into an immediate, located error
// instead of silently misaligned fields.
func (w *Writer) Tag(name string) { w.String(name) }

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(xs []float64) {
	w.U64(uint64(len(xs)))
	for _, x := range xs {
		w.F64(x)
	}
}

// Reader decodes a snapshot byte stream produced by Writer.
type Reader struct {
	buf []byte
	pos int
	err error

	// Version is the format version of the stream being decoded.
	Version uint16
}

// NewReader validates the magic, version, and CRC-32 trailer of data and
// returns a reader positioned after the header.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(Magic)+4 {
		return nil, fmt.Errorf("snapshot: truncated stream (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic (not a snapshot file)")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch (file corrupt): got %08x want %08x", got, want)
	}
	r := &Reader{buf: body, pos: len(Magic)}
	v := r.U64()
	if r.err != nil {
		return nil, r.err
	}
	if uint16(v) > Version {
		return nil, fmt.Errorf("snapshot: format version %d is newer than supported %d", v, Version)
	}
	r.Version = uint16(v)
	return r, nil
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail latches a caller-detected restore error (state inconsistency rather
// than malformed bytes) so it surfaces through the same sticky-error path.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format+" at offset %d", append(args, r.pos)...)
	}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for {
		if r.pos >= len(r.buf) {
			r.fail("truncated varint")
			return 0
		}
		b := r.buf[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
		if shift >= 64 {
			r.fail("varint overflow")
			return 0
		}
	}
}

// I64 reads a zigzag-encoded signed varint.
func (r *Reader) I64() int64 {
	u := r.U64()
	return int64(u>>1) ^ -int64(u&1)
}

// Int reads an int written with Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.buf) {
		r.fail("truncated bool")
		return false
	}
	b := r.buf[r.pos]
	r.pos++
	if b > 1 {
		r.fail("invalid bool byte %d", b)
		return false
	}
	return b == 1
}

// F64 reads a float64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v
}

// Bytes reads a length-prefixed byte string. The returned slice aliases
// the input buffer; callers that keep it must copy.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail("byte string length %d exceeds remaining %d", n, len(r.buf)-r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Expect consumes a section tag and errors unless it matches name.
func (r *Reader) Expect(name string) {
	got := r.String()
	if r.err == nil && got != name {
		r.fail("section tag mismatch: got %q want %q", got, name)
	}
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos)/8 {
		r.fail("float64 slice length %d exceeds remaining bytes", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}
