package snap

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Summary is the deterministic outcome surface of one world: everything
// the sweep CSVs report and the bit-identity checks compare. Two runs of
// the same scenario (cold, resumed, or forked with the same variant)
// produce byte-identical Summaries.
type Summary struct {
	FlowsOffered   int
	FlowsCompleted int
	Marks, Drops   uint64
	Blackholed     uint64
	BufferDrops    uint64
	PFCPauses      uint64
	MeanGbps       float64
	Processed      uint64
	Digest         uint64
}

// Summarize collects the world's outcome surface and its FNV-64a digest:
// per-flow completion times, per-switch mark/drop counters, fabric loss
// aggregates, the goodput series, and the event total — the same surface
// the mix experiments hash, so a CSV diff is a determinism check.
func (w *World) Summarize() Summary {
	marks, drops := w.E.SwitchTotals()
	snap := w.E.Snap()

	var s Summary
	s.FlowsOffered = len(w.App.End)
	s.FlowsCompleted = w.App.DoneCount()
	for i := range marks {
		s.Marks += marks[i]
		s.Drops += drops[i]
	}
	s.Blackholed = snap.Blackholed
	s.BufferDrops = snap.BufferDrops
	s.PFCPauses = snap.PFCPauses
	if n := len(w.Smp.Gbps); n > 0 {
		var sum float64
		for _, g := range w.Smp.Gbps {
			sum += g
		}
		s.MeanGbps = sum / float64(n)
	}
	s.Processed = w.E.Processed()

	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) { binary.BigEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	for _, end := range w.App.End {
		put(uint64(end))
	}
	for i := range marks {
		put(marks[i])
		put(drops[i])
	}
	put(snap.Blackholed)
	put(snap.BufferDrops)
	put(snap.PFCPauses)
	for i := range w.Smp.Times {
		put(uint64(w.Smp.Times[i]))
		put(math.Float64bits(w.Smp.Gbps[i]))
	}
	put(s.Processed)
	s.Digest = h.Sum64()
	return s
}

// Digest returns just the bit-identity digest (see Summarize).
func (w *World) Digest() uint64 { return w.Summarize().Digest }
