// Package snap is the snapshot/fork engine: full-state capture of a
// running sharded simulation — event calendar, switch buffers and
// in-flight packets, transport state machines, ACC agents and their
// optimizer state, RNG streams, samplers — behind a versioned binary
// codec (internal/snap/codec), plus the warm-start branching that makes
// parameter sweeps cheap.
//
// The restore protocol is rebuild-then-overlay: a snapshot is restored
// into a world rebuilt by the *same construction code* (Build runs again
// with the Scenario recorded in the stream), so every closure, routing
// table, and pre-bound method value exists and is bound to live objects;
// the overlay then clears the rebuilt event queues, restores counters and
// per-object dynamic state, re-materializes pending events at their
// recorded (time, seq) slots, and fast-forwards every RNG stream to its
// recorded draw count. Because the streams are replayed rather than
// replaced, restore-then-run is bit-identical to never having
// snapshotted, and a branch forked from a warm snapshot is bit-identical
// to a cold run that applied the same variant at the same instant
// (TestRestoreContinuity, TestForkMatchesColdRun).
package snap

import (
	"fmt"

	"github.com/accnet/acc/internal/acc"
	"github.com/accnet/acc/internal/faults"
	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/psim"
	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// Scenario is the complete, self-contained recipe for one world: every
// input Build consumes. It is serialized into the snapshot stream, so a
// snapshot file alone is enough to rebuild the world it was taken from —
// crash-resume needs no side channel.
type Scenario struct {
	// Topology: a leaf–spine fabric sharded Shards ways (clamped to
	// [1, NLeaf] by the partitioner).
	NLeaf, HostsPerLeaf, NSpine, Shards int

	// Seed drives every RNG stream in the world (per-node streams are
	// keyed on (Seed, node id); the flow plan draws from Seed+1).
	Seed int64

	// Workload: Flows random cross-fabric transfers, sizes uniform in
	// [1 KB, MaxBytes], starts uniform in [0, Spread); every third flow
	// runs TCP when MixTCP is set.
	Flows    int
	MaxBytes int64
	Spread   simtime.Duration
	MixTCP   bool

	// Faults: FaultLinks leaf–spine links flap with exponential up/down
	// times (mean MTBF/MTTR) expanded at plan time from FaultSeed.
	FaultLinks int
	MTBF, MTTR simtime.Duration
	FaultSeed  int64

	// Horizon bounds the run (and the fault expansion).
	Horizon simtime.Time

	// Fidelity selects the engine: "packet" (or "") for pure
	// packet-level, "hybrid" for the flow-level fast-forward overlay.
	Fidelity string

	// WRED, when non-nil, overrides every switch's ECN template at build
	// time (and scales the hybrid queue trigger to its Kmin).
	WRED *red.Config

	// ACC deploys one acc.System per shard over that shard's local
	// switches. Snapshots of ACC worlds are layout-specific either way;
	// per-shard deployment keeps every tuner on the queue that owns its
	// switch.
	ACC bool

	// SamplePeriod is the goodput sampler cadence (0 = 20µs).
	SamplePeriod simtime.Duration
}

// Validate reports whether the scenario can be built.
func (sc *Scenario) Validate() error {
	if sc.NLeaf < 2 || sc.HostsPerLeaf < 1 || sc.NSpine < 1 {
		return fmt.Errorf("snap: topology %dx%dx%d needs >=2 leaves, >=1 host/leaf, >=1 spine",
			sc.NLeaf, sc.HostsPerLeaf, sc.NSpine)
	}
	if sc.Horizon <= 0 {
		return fmt.Errorf("snap: horizon must be positive")
	}
	switch sc.Fidelity {
	case "", "packet", "hybrid":
	default:
		return fmt.Errorf("snap: unknown fidelity %q (want 'packet' or 'hybrid')", sc.Fidelity)
	}
	if sc.FaultLinks > 0 && (sc.MTBF <= 0 || sc.MTTR <= 0) {
		return fmt.Errorf("snap: fault links need positive MTBF and MTTR")
	}
	if sc.WRED != nil {
		if err := sc.WRED.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// hybridFidelity reports whether the scenario runs the hybrid overlay.
func (sc *Scenario) hybridFidelity() bool { return sc.Fidelity == "hybrid" }

// World is one live simulation built from a Scenario: the sharded engine,
// the applied plan, the optional hybrid overlay and ACC deployments, and
// the goodput sampler. All of it is captured by Snapshot and rebuilt by
// Restore.
type World struct {
	Sc   Scenario
	E    *psim.Engine
	Plan *psim.Plan
	App  *psim.Applied
	Hyb  *hybrid.Engine // nil at packet fidelity
	ACC  []*acc.System  // one per shard when Sc.ACC; nil otherwise
	Smp  *psim.Sampler
}

// Build constructs a world from the scenario. Construction is a pure
// function of the scenario: running it twice produces identical worlds
// (same node ids, same event sequence numbers, same RNG stream
// positions), which is the property the restore overlay depends on.
func Build(sc Scenario) (*World, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	tc := topo.DefaultConfig()
	e := psim.Build(psim.Config{
		NLeaf: sc.NLeaf, HostsPerLeaf: sc.HostsPerLeaf, NSpine: sc.NSpine,
		Shards: sc.Shards, Seed: sc.Seed, Topo: tc,
	})
	if sc.WRED != nil {
		for _, sw := range e.Leaves {
			sw.SetRED(*sc.WRED)
		}
		for _, sw := range e.Spines {
			sw.SetRED(*sc.WRED)
		}
	}

	plan := psim.NewPlan(tc.HostBW).
		RandomFlows(sc.NLeaf, sc.HostsPerLeaf, sc.Flows, sc.MaxBytes, sc.Spread, sc.MixTCP, sc.Seed+1)
	for k := 0; k < sc.FaultLinks; k++ {
		plan.Flap(psim.LeafSpineLink(k%sc.NLeaf, k%sc.NSpine), sc.MTBF, sc.MTTR, sc.Horizon, sc.FaultSeed+int64(k))
	}

	w := &World{Sc: sc, E: e, Plan: plan}
	if sc.hybridFidelity() {
		hcfg := hybrid.DefaultConfig()
		if sc.WRED != nil {
			hcfg.Kmin = sc.WRED.Kmin
		}
		w.App, w.Hyb = e.ApplyHybrid(plan, hcfg)
	} else {
		w.App = e.Apply(plan)
	}

	if sc.ACC {
		for _, sh := range e.Shards {
			sws := append(append([]*netsim.Switch{}, sh.Leaves...), sh.Spines...)
			if len(sws) == 0 {
				continue
			}
			w.ACC = append(w.ACC, acc.NewSystem(sh.Net, sws, nil, acc.DefaultSystemConfig()))
		}
	}

	period := sc.SamplePeriod
	if period <= 0 {
		period = 20 * simtime.Microsecond
	}
	w.Smp = psim.NewSampler(e.HostPorts(), period)
	e.OnBarrier(w.Smp.OnBarrier)
	return w, nil
}

// AttachObs mirrors the engine's drop/mark/fault telemetry into an obs
// run. Call before Run; safe with a nil run.
func (w *World) AttachObs(run *obs.Run) { w.E.AttachObs(run) }

// Run advances the world to the given virtual time (a whole number of
// barrier windows past it, like psim.Engine.Run). After Run returns the
// engine is quiescent, which is when Snapshot may be called.
func (w *World) Run(until simtime.Time) { w.E.Run(until) }

// Now returns the last barrier the world has reached.
func (w *World) Now() simtime.Time { return w.E.Now() }

// Finish folds end-of-run accounting (hybrid fidelity counters) into the
// obs run. Safe with a nil run.
func (w *World) Finish(run *obs.Run) {
	if run != nil && w.Hyb != nil {
		run.AddFidelity(w.Hyb.Stats)
	}
}

// Variant is one branch overlay applied to a restored (or warm) world at
// the branch instant: the scenario knobs a sweep explores without paying
// for a fresh warmup.
type Variant struct {
	// Name labels the branch in results and artifact file names.
	Name string

	// WRED, when non-nil, retunes every switch's ECN template at the
	// branch instant (the static analogue of one ACC action).
	WRED *red.Config

	// Faults are extra link events injected at or after the branch
	// instant, on top of the scenario's own fault plan.
	Faults []psim.FaultEvent

	// Epsilon, when non-nil, overrides every ACC agent's exploration
	// rate (ACC scenarios only).
	Epsilon *float64
}

// linkEnds resolves a LinkRef to its two port ends, exactly as plan
// application does.
func (w *World) linkEnds(l psim.LinkRef) (aEnd, bEnd *netsim.Port, err error) {
	switch l.Role {
	case faults.HostLeaf:
		if l.A < 0 || l.A >= len(w.E.HostUp) || l.B < 0 || l.B >= len(w.E.HostUp[l.A]) {
			return nil, nil, fmt.Errorf("snap: host-leaf link (%d,%d) outside topology", l.A, l.B)
		}
		return w.E.HostUp[l.A][l.B], w.E.LeafDown[l.A][l.B], nil
	case faults.LeafSpine:
		if l.A < 0 || l.A >= len(w.E.LeafUp) || l.B < 0 || l.B >= len(w.E.LeafUp[l.A]) {
			return nil, nil, fmt.Errorf("snap: leaf-spine link (%d,%d) outside topology", l.A, l.B)
		}
		return w.E.LeafUp[l.A][l.B], w.E.SpineDown[l.B][l.A], nil
	}
	return nil, nil, fmt.Errorf("snap: unsupported link role %v", l.Role)
}

// ApplyVariant overlays a branch variant on the world at the current
// instant. Apply it at the same virtual time on a warm fork and on a cold
// run and the two branches stay bit-identical: the restored event-queue
// counters put the variant's events at the same (time, seq) slots in
// both.
func (w *World) ApplyVariant(v Variant) error {
	now := w.E.Now()
	if v.WRED != nil {
		if err := v.WRED.Validate(); err != nil {
			return err
		}
		for _, sw := range w.E.Leaves {
			sw.SetRED(*v.WRED)
		}
		for _, sw := range w.E.Spines {
			sw.SetRED(*v.WRED)
		}
	}
	for _, fe := range v.Faults {
		if fe.At < now {
			return fmt.Errorf("snap: variant %q fault at %v is before the branch instant %v", v.Name, fe.At, now)
		}
		aEnd, bEnd, err := w.linkEnds(fe.Link)
		if err != nil {
			return err
		}
		down := fe.Down
		aEnd.Net().Q.At(fe.At, func() { aEnd.SetEndDown(down) })
		bEnd.Net().Q.At(fe.At, func() { bEnd.SetEndDown(down) })
	}
	if v.Epsilon != nil {
		for _, s := range w.ACC {
			s.SetEpsilon(*v.Epsilon)
		}
	}
	return nil
}

// Stop halts the world's periodic machinery (ACC tick/exchange loops) so
// a finished world stops scheduling work.
func (w *World) Stop() {
	for _, s := range w.ACC {
		s.Stop()
	}
}
