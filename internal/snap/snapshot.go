package snap

// The snapshot stream layout (after the codec's magic/version header):
//
//	"snap-world"
//	  "scenario"     — the Scenario, so Restore rebuilds from the stream alone
//	  "psim"         — barrier clock + every shard's network (internal/psim)
//	  hybrid flag    — fidelity cross-check against the scenario
//	  ["psim-hybrid"]— fast-forward engine + hybrid bookkeeping
//	  "applied"      — live transports + completion table
//	  "sampler"      — goodput series
//	  ACC count, ["acc-system"]... — per-shard deployments, shard order
//
// plus the codec's CRC-32 trailer. Restore ordering is load-bearing and
// documented on Restore.

import (
	"fmt"
	"os"

	"github.com/accnet/acc/internal/red"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
)

// saveScenario writes the scenario section.
func saveScenario(w *codec.Writer, sc *Scenario) {
	w.Tag("scenario")
	w.Int(sc.NLeaf)
	w.Int(sc.HostsPerLeaf)
	w.Int(sc.NSpine)
	w.Int(sc.Shards)
	w.I64(sc.Seed)
	w.Int(sc.Flows)
	w.I64(sc.MaxBytes)
	w.I64(int64(sc.Spread))
	w.Bool(sc.MixTCP)
	w.Int(sc.FaultLinks)
	w.I64(int64(sc.MTBF))
	w.I64(int64(sc.MTTR))
	w.I64(sc.FaultSeed)
	w.I64(int64(sc.Horizon))
	w.String(sc.Fidelity)
	w.Bool(sc.WRED != nil)
	if sc.WRED != nil {
		w.Int(sc.WRED.Kmin)
		w.Int(sc.WRED.Kmax)
		w.F64(sc.WRED.Pmax)
	}
	w.Bool(sc.ACC)
	w.I64(int64(sc.SamplePeriod))
}

// loadScenario reads the scenario section.
func loadScenario(r *codec.Reader) (Scenario, error) {
	var sc Scenario
	r.Expect("scenario")
	sc.NLeaf = r.Int()
	sc.HostsPerLeaf = r.Int()
	sc.NSpine = r.Int()
	sc.Shards = r.Int()
	sc.Seed = r.I64()
	sc.Flows = r.Int()
	sc.MaxBytes = r.I64()
	sc.Spread = simtime.Duration(r.I64())
	sc.MixTCP = r.Bool()
	sc.FaultLinks = r.Int()
	sc.MTBF = simtime.Duration(r.I64())
	sc.MTTR = simtime.Duration(r.I64())
	sc.FaultSeed = r.I64()
	sc.Horizon = simtime.Time(r.I64())
	sc.Fidelity = r.String()
	if r.Bool() {
		sc.WRED = &red.Config{Kmin: r.Int(), Kmax: r.Int(), Pmax: r.F64()}
	}
	sc.ACC = r.Bool()
	sc.SamplePeriod = simtime.Duration(r.I64())
	if err := r.Err(); err != nil {
		return sc, err
	}
	return sc, sc.Validate()
}

// Snapshot captures the world's complete dynamic state. Call with the
// engine quiescent: after Run returned, or from a barrier hook. The
// returned stream is self-contained (it embeds the Scenario) and
// CRC-protected.
func (w *World) Snapshot() []byte {
	enc := codec.NewWriter()
	enc.Tag("snap-world")
	saveScenario(enc, &w.Sc)
	w.E.SaveState(enc)
	enc.Bool(w.App.Hybrid != nil)
	if w.App.Hybrid != nil {
		w.App.Hybrid.SaveState(enc)
	}
	w.E.SaveApplied(enc, w.App)
	w.Smp.SaveState(enc)
	enc.Int(len(w.ACC))
	for _, s := range w.ACC {
		s.SaveState(enc)
	}
	return enc.Finish()
}

// Restore rebuilds the world a snapshot was taken from and overlays the
// saved state, returning a world that continues bit-identically to the
// uninterrupted run. The overlay order is load-bearing:
//
//  1. Build — reconstructs every object, closure, and routing table; the
//     hybrid apply path starts due flows synchronously, and ACC arms its
//     tick timers, exactly as the original construction did.
//  2. Engine.RestoreState — clears every rebuilt queue, restores clocks,
//     counters, RNG draw positions, buffers, and in-flight packets.
//  3. Applied.RestorePending — re-inserts still-pending plan events
//     (their rebuilt handles carry the original (time, seq) slots).
//  4. HybridState.RestoreState — overlays the fast-forward engine and
//     re-binds flow callbacks (hybrid worlds only; before step 5 so
//     mid-window completion marks land on restored bookkeeping).
//  5. Engine.RestoreApplied — discards construction-time transports,
//     rebuilds the live ones, re-parks NIC waiters.
//  6. Sampler and ACC overlays — series, agents, optimizer state, and
//     timer re-arming onto the restored queues.
func Restore(data []byte) (*World, error) {
	r, err := codec.NewReader(data)
	if err != nil {
		return nil, err
	}
	r.Expect("snap-world")
	sc, err := loadScenario(r)
	if err != nil {
		return nil, err
	}
	w, err := Build(sc)
	if err != nil {
		return nil, err
	}
	if err := w.E.RestoreState(r); err != nil {
		return nil, err
	}
	w.App.RestorePending()
	if hyb := r.Bool(); hyb != (w.App.Hybrid != nil) {
		return nil, fmt.Errorf("snap: stream fidelity disagrees with scenario %q", sc.Fidelity)
	}
	if w.App.Hybrid != nil {
		if err := w.App.Hybrid.RestoreState(r); err != nil {
			return nil, err
		}
	}
	if err := w.E.RestoreApplied(r, w.App); err != nil {
		return nil, err
	}
	if err := w.Smp.RestoreState(r); err != nil {
		return nil, err
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n != len(w.ACC) {
		return nil, fmt.Errorf("snap: stream has %d ACC deployments, world has %d", n, len(w.ACC))
	}
	for _, s := range w.ACC {
		s.RestoreState(r)
	}
	return w, r.Err()
}

// Fork restores a snapshot and applies a branch variant at the restored
// instant: the warm-start primitive. A forked branch is bit-identical to
// a cold run of the same scenario that applied the same variant at the
// same virtual time.
func Fork(data []byte, v Variant) (*World, error) {
	w, err := Restore(data)
	if err != nil {
		return nil, err
	}
	if err := w.ApplyVariant(v); err != nil {
		return nil, err
	}
	return w, nil
}

// WriteFile writes a snapshot stream to path.
func WriteFile(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	return nil
}

// ReadFile reads a snapshot file and validates its header, CRC trailer,
// and embedded scenario without building anything — the preflight the
// CLIs run before committing to a resume.
func ReadFile(path string) ([]byte, Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Scenario{}, fmt.Errorf("snap: %w", err)
	}
	sc, err := Peek(data)
	if err != nil {
		return nil, Scenario{}, fmt.Errorf("snap: %s: %w", path, err)
	}
	return data, sc, nil
}

// Peek decodes just the scenario header of a snapshot stream.
func Peek(data []byte) (Scenario, error) {
	r, err := codec.NewReader(data)
	if err != nil {
		return Scenario{}, err
	}
	r.Expect("snap-world")
	return loadScenario(r)
}
