package psim

import (
	"runtime"
	"testing"

	"github.com/accnet/acc/internal/simtime"
)

// TestGOMAXPROCSDeterminism runs one faulted 4-shard workload twice — pinned
// to a single OS thread, then with full parallelism — and requires
// bit-identical results. The barrier protocol's only ordering authority is
// the (time, key) schedule inside each shard plus the coordinator's fixed
// exchange order, so goroutine interleaving must be unobservable. CI runs
// this under -race as the determinism gate.
func TestGOMAXPROCSDeterminism(t *testing.T) {
	const nLeaf, hostsPerLeaf, nSpine = 4, 4, 3
	horizon := simtime.Time(0).Add(2 * simtime.Millisecond)

	cfg := testConfig(nLeaf, hostsPerLeaf, nSpine, 4, 99)
	plan := NewPlan(cfg.Topo.HostBW).
		RandomFlows(nLeaf, hostsPerLeaf, 24, 32<<10, 200*simtime.Microsecond, true, 321)
	plan.Flap(LeafSpineLink(0, 1), 250*simtime.Microsecond, 100*simtime.Microsecond,
		simtime.Time(0).Add(1500*simtime.Microsecond), 99)

	prev := runtime.GOMAXPROCS(1)
	pinned := runSharded(cfg, plan, horizon)
	runtime.GOMAXPROCS(4)
	wide := runSharded(cfg, plan, horizon)
	runtime.GOMAXPROCS(prev)

	diffResults(t, "GOMAXPROCS 1 vs 4", pinned, wide)
}
