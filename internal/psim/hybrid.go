package psim

// Hybrid-fidelity plans: the flow-level fast-forward engine (internal/hybrid)
// running over a sharded fabric. The hybrid engine is coordinator state — it
// is built over the global port tables and driven exclusively from a barrier
// hook, where all shards are quiescent, so its triggers read cross-shard
// state races-free and its demotions may start packet transports on the
// owning shards' queues synchronously (see Engine.OnBarrier). Everything the
// engine consumes is barrier-sampled simulated state, and the barrier
// cadence is a property of the topology, not of the shard count
// (topo.Partition.Lookahead), so every layout sees identical trigger
// decisions at identical instants: hybrid runs stay bit-identical across
// layouts just like pure packet runs (TestHybridLayoutIdentity).

import (
	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/faults"
	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/tcp"
)

// ApplyHybrid instantiates the plan with hybrid fidelity: DCQCN flows
// register analytic-eligible and fast-forward in closed form until a trigger
// demotes them into the real transport with the exact remaining bytes; TCP
// flows run at packet level but reserve their demand so analytic flows see
// their load. Flow ids are position-implied (netsim.FlowID(i+1)), exactly as
// in Apply, so a demoted flow ECMP-hashes onto the same uplink its packets
// use in a pure packet run.
//
// Because the hybrid engine only acts at barriers, flow starts are quantized
// to the first barrier at-or-after FlowSpec.Start (specs due at or before
// the current barrier start immediately, in plan order). That cadence is
// layout-invariant, so quantization never breaks cross-layout identity —
// but Applied.End values are comparable to Apply's only within one window.
//
// Call after Build and before Run; returns the Applied results and the
// hybrid engine for stats/assertions. Faults are scheduled exactly as in
// Apply.
func (e *Engine) ApplyHybrid(p *Plan, cfg hybrid.Config) (*Applied, *hybrid.Engine) {
	eng := hybrid.NewBarrier(cfg, e.Now, e.Shards[0].Net.Tracer)
	mesh := hybrid.ForTables(eng, e.HostUp, e.LeafDown, e.LeafUp, e.SpineDown)

	n := len(p.Flows)
	res := &Applied{
		Plan:      p,
		DCQCNSend: make([]*dcqcn.Flow, n),
		DCQCNRecv: make([]*dcqcn.Receiver, n),
		TCPSend:   make([]*tcp.Flow, n),
		TCPRecv:   make([]*tcp.Receiver, n),
		End:       make([]simtime.Time, n),
	}

	// Packet-mode completions fire on the shard that owns the receiver,
	// mid-window, while other shards are still running — but PacketDone
	// mutates link state shared across shards (demand reservations, packet
	// counts). So completion callbacks only mark a per-flow slot (disjoint
	// indices, race-free like res.End), and the reservations are released at
	// the next barrier with the shards quiescent. The decrements commute, so
	// batching them at the barrier leaves every Tick-time observable
	// (utilization, promotion hysteresis) exactly as the synchronous release
	// would have.
	hflows := make([]*hybrid.Flow, n)
	packetDone := make([]bool, n)
	drainDone := func() {
		for i, f := range hflows {
			if packetDone[i] && f != nil {
				packetDone[i] = false
				hflows[i] = nil
				eng.PacketDone(f)
			}
		}
	}

	start := func(i int) {
		fs := p.Flows[i]
		if p.OnStart != nil {
			// e.Now() is the admission instant: the current barrier inside
			// OnBarrier hooks, the epoch for specs due at apply time. That is
			// the time a recorded trace must carry for the flow, because
			// replaying it re-quantizes to the same barrier (see trace.go).
			p.OnStart(i, e.Now())
		}
		id := netsim.FlowID(i + 1)
		src, dst := e.Hosts[fs.Src.Leaf][fs.Src.Host], e.Hosts[fs.Dst.Leaf][fs.Dst.Host]
		path := mesh.Path(id, src, dst)
		switch fs.Transport {
		case TransportDCQCN:
			eng.StartFlow(path,
				hybrid.FlowOpts{ID: uint64(id), Size: fs.Size, Prio: p.DCQCN.Prio, Eligible: true},
				func(f *hybrid.Flow, remaining int64) {
					// Receiver first, then sender — applyPlan's fixed order.
					hflows[i] = f
					res.DCQCNRecv[i] = dcqcn.StartReceiver(id, src.ID(), dst, remaining, p.DCQCN, func(r *dcqcn.Receiver) {
						res.End[i] = r.End
						packetDone[i] = true
					})
					res.DCQCNSend[i] = dcqcn.StartSender(src.Net(), id, src, dst.ID(), remaining, p.DCQCN)
				},
				func(f *hybrid.Flow, end simtime.Time) { res.End[i] = end })
		case TransportTCP:
			eng.StartFlow(path,
				hybrid.FlowOpts{ID: uint64(id), Size: fs.Size, Prio: p.TCP.Prio},
				func(f *hybrid.Flow, remaining int64) {
					hflows[i] = f
					res.TCPRecv[i] = tcp.StartReceiver(id, src.ID(), dst, remaining, p.TCP, func(r *tcp.Receiver) {
						res.End[i] = r.End
						packetDone[i] = true
					})
					res.TCPSend[i] = tcp.StartSender(src.Net(), id, src, dst.ID(), remaining, p.TCP)
				},
				nil)
		}
	}

	// pending holds plan indices not yet started, in plan order; each barrier
	// starts every spec that has come due, preserving that order.
	pending := make([]int, 0, n)
	now := e.Now()
	for i, fs := range p.Flows {
		if fs.Start <= now {
			start(i)
		} else {
			pending = append(pending, i)
		}
	}
	e.OnBarrier(func(b simtime.Time) {
		// Release the window's packet-mode completions, then advance the
		// engine: completions past their End and trigger checks see the
		// world before this barrier's admissions.
		drainDone()
		eng.Tick(b)
		kept := pending[:0]
		for _, i := range pending {
			if p.Flows[i].Start <= b {
				start(i)
			} else {
				kept = append(kept, i)
			}
		}
		pending = kept
	})

	for _, fe := range p.Faults {
		var aEnd, bEnd *netsim.Port
		switch fe.Link.Role {
		default:
			panic("psim: unsupported link role in plan")
		case faults.HostLeaf:
			aEnd, bEnd = e.HostUp[fe.Link.A][fe.Link.B], e.LeafDown[fe.Link.A][fe.Link.B]
		case faults.LeafSpine:
			aEnd, bEnd = e.LeafUp[fe.Link.A][fe.Link.B], e.SpineDown[fe.Link.B][fe.Link.A]
		}
		down := fe.Down
		aEnd.Net().Q.At(fe.At, func() { aEnd.SetEndDown(down) })
		bEnd.Net().Q.At(fe.At, func() { bEnd.SetEndDown(down) })
	}
	return res, eng
}
