package psim

// Hybrid-fidelity plans: the flow-level fast-forward engine (internal/hybrid)
// running over a sharded fabric. The hybrid engine is coordinator state — it
// is built over the global port tables and driven exclusively from a barrier
// hook, where all shards are quiescent, so its triggers read cross-shard
// state races-free and its demotions may start packet transports on the
// owning shards' queues synchronously (see Engine.OnBarrier). Everything the
// engine consumes is barrier-sampled simulated state, and the barrier
// cadence is a property of the topology, not of the shard count
// (topo.Partition.Lookahead), so every layout sees identical trigger
// decisions at identical instants: hybrid runs stay bit-identical across
// layouts just like pure packet runs (TestHybridLayoutIdentity).

import (
	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/faults"
	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/tcp"
)

// HybridState is the retained bookkeeping of one hybrid-fidelity plan
// instantiation: which plan specs have not started yet, which hybrid flows
// are live at packet fidelity, and which of those completed mid-window.
// It lives on Applied.Hybrid so snapshots can capture it — it is exactly
// the state that used to hide in ApplyHybrid's closures.
type HybridState struct {
	// Eng is the hybrid fast-forward engine driving this instantiation.
	Eng *hybrid.Engine

	e *Engine
	//acclint:ignore snapcover derived topology view: RestoreApplied rebuilds the mesh from the fabric before reconstructing HybridState, mirroring ApplyHybrid's construction order
	mesh *hybrid.Mesh
	p    *Plan
	res  *Applied

	// hflows[i] is flow i's hybrid registration while it runs at packet
	// fidelity — held from the demotion that started the transport until
	// the barrier that drains its completion into Eng.PacketDone.
	hflows []*hybrid.Flow
	// packetDone[i] marks a packet-mode completion observed mid-window.
	// Completions fire on the shard that owns the receiver while other
	// shards are still running — but PacketDone mutates link state shared
	// across shards (demand reservations, packet counts). So completion
	// callbacks only mark a per-flow slot (disjoint indices, race-free like
	// res.End), and the reservations are released at the next barrier with
	// the shards quiescent. The decrements commute, so batching them at the
	// barrier leaves every Tick-time observable (utilization, promotion
	// hysteresis) exactly as the synchronous release would have.
	packetDone []bool
	// pending holds plan indices not yet started, in plan order; each
	// barrier starts every spec that has come due, preserving that order.
	pending []int
}

// ApplyHybrid instantiates the plan with hybrid fidelity: DCQCN flows
// register analytic-eligible and fast-forward in closed form until a trigger
// demotes them into the real transport with the exact remaining bytes; TCP
// flows run at packet level but reserve their demand so analytic flows see
// their load. Flow ids are position-implied (netsim.FlowID(i+1)), exactly as
// in Apply, so a demoted flow ECMP-hashes onto the same uplink its packets
// use in a pure packet run.
//
// Because the hybrid engine only acts at barriers, flow starts are quantized
// to the first barrier at-or-after FlowSpec.Start (specs due at or before
// the current barrier start immediately, in plan order). That cadence is
// layout-invariant, so quantization never breaks cross-layout identity —
// but Applied.End values are comparable to Apply's only within one window.
//
// Call after Build and before Run; returns the Applied results and the
// hybrid engine for stats/assertions. Faults are scheduled exactly as in
// Apply, with their event handles retained for snapshot restore.
func (e *Engine) ApplyHybrid(p *Plan, cfg hybrid.Config) (*Applied, *hybrid.Engine) {
	eng := hybrid.NewBarrier(cfg, e.Now, e.Shards[0].Net.Tracer)
	mesh := hybrid.ForTables(eng, e.HostUp, e.LeafDown, e.LeafUp, e.SpineDown)

	n := len(p.Flows)
	res := &Applied{
		Plan:      p,
		DCQCNSend: make([]*dcqcn.Flow, n),
		DCQCNRecv: make([]*dcqcn.Receiver, n),
		TCPSend:   make([]*tcp.Flow, n),
		TCPRecv:   make([]*tcp.Receiver, n),
		End:       make([]simtime.Time, n),
	}
	h := &HybridState{
		Eng:        eng,
		e:          e,
		mesh:       mesh,
		p:          p,
		res:        res,
		hflows:     make([]*hybrid.Flow, n),
		packetDone: make([]bool, n),
		pending:    make([]int, 0, n),
	}
	res.Hybrid = h

	now := e.Now()
	for i, fs := range p.Flows {
		if fs.Start <= now {
			h.start(i)
		} else {
			h.pending = append(h.pending, i)
		}
	}
	e.OnBarrier(h.barrier)

	for _, fe := range p.Faults {
		var aEnd, bEnd *netsim.Port
		switch fe.Link.Role {
		default:
			panic("psim: unsupported link role in plan")
		case faults.HostLeaf:
			aEnd, bEnd = e.HostUp[fe.Link.A][fe.Link.B], e.LeafDown[fe.Link.A][fe.Link.B]
		case faults.LeafSpine:
			aEnd, bEnd = e.LeafUp[fe.Link.A][fe.Link.B], e.SpineDown[fe.Link.B][fe.Link.A]
		}
		down := fe.Down
		res.evs = append(res.evs, aEnd.Net().Q.At(fe.At, func() { aEnd.SetEndDown(down) }))
		res.evs = append(res.evs, bEnd.Net().Q.At(fe.At, func() { bEnd.SetEndDown(down) }))
	}
	return res, eng
}

// bind returns flow i's packet-transition and analytic-completion
// callbacks. ApplyHybrid admissions and snapshot restore use the same
// binding, so a restored flow demotes into exactly the transports a
// continuous run would have started.
func (h *HybridState) bind(i int) (startPacket func(*hybrid.Flow, int64), onDone func(*hybrid.Flow, simtime.Time)) {
	fs := h.p.Flows[i]
	id := netsim.FlowID(i + 1)
	src, dst := h.e.Hosts[fs.Src.Leaf][fs.Src.Host], h.e.Hosts[fs.Dst.Leaf][fs.Dst.Host]
	switch fs.Transport {
	case TransportTCP:
		return func(f *hybrid.Flow, remaining int64) {
			h.hflows[i] = f
			h.res.TCPRecv[i] = tcp.StartReceiver(id, src.ID(), dst, remaining, h.p.TCP, func(r *tcp.Receiver) {
				h.res.End[i] = r.End
				h.packetDone[i] = true
			})
			h.res.TCPSend[i] = tcp.StartSender(src.Net(), id, src, dst.ID(), remaining, h.p.TCP)
		}, nil
	default: // TransportDCQCN
		return func(f *hybrid.Flow, remaining int64) {
			// Receiver first, then sender — applyPlan's fixed order.
			h.hflows[i] = f
			h.res.DCQCNRecv[i] = dcqcn.StartReceiver(id, src.ID(), dst, remaining, h.p.DCQCN, func(r *dcqcn.Receiver) {
				h.res.End[i] = r.End
				h.packetDone[i] = true
			})
			h.res.DCQCNSend[i] = dcqcn.StartSender(src.Net(), id, src, dst.ID(), remaining, h.p.DCQCN)
		}, func(f *hybrid.Flow, end simtime.Time) { h.res.End[i] = end }
	}
}

// start admits plan flow i to the hybrid engine at the current barrier.
func (h *HybridState) start(i int) {
	fs := h.p.Flows[i]
	if h.p.OnStart != nil {
		// e.Now() is the admission instant: the current barrier inside
		// OnBarrier hooks, the epoch for specs due at apply time. That is
		// the time a recorded trace must carry for the flow, because
		// replaying it re-quantizes to the same barrier (see trace.go).
		h.p.OnStart(i, h.e.Now())
	}
	id := netsim.FlowID(i + 1)
	src, dst := h.e.Hosts[fs.Src.Leaf][fs.Src.Host], h.e.Hosts[fs.Dst.Leaf][fs.Dst.Host]
	startPacket, onDone := h.bind(i)
	opts := hybrid.FlowOpts{ID: uint64(id), Size: fs.Size}
	switch fs.Transport {
	case TransportTCP:
		opts.Prio = h.p.TCP.Prio
	default:
		opts.Prio, opts.Eligible = h.p.DCQCN.Prio, true
	}
	h.Eng.StartFlow(h.mesh.Path(id, src, dst), opts, startPacket, onDone)
}

// drainDone releases the window's packet-mode completions with the shards
// quiescent (see HybridState.packetDone).
func (h *HybridState) drainDone() {
	for i, f := range h.hflows {
		if h.packetDone[i] && f != nil {
			h.packetDone[i] = false
			h.hflows[i] = nil
			h.Eng.PacketDone(f)
		}
	}
}

// barrier is the per-window hook: release completions, then advance the
// engine — completions past their End and trigger checks see the world
// before this barrier's admissions — then start every spec that has come
// due.
func (h *HybridState) barrier(b simtime.Time) {
	h.drainDone()
	h.Eng.Tick(b)
	kept := h.pending[:0]
	for _, i := range h.pending {
		if h.p.Flows[i].Start <= b {
			h.start(i)
		} else {
			kept = append(kept, i)
		}
	}
	h.pending = kept
}
