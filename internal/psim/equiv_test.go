package psim

import (
	"fmt"
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// runResult captures everything the bit-identity contract compares between
// engines: per-flow receiver completion times, per-switch mark/drop
// counters, fabric-wide loss aggregates, the sampled goodput series, total
// events executed, and sender-side completion.
type runResult struct {
	ends       []simtime.Time
	marks      []uint64
	drops      []uint64
	blackholed uint64
	bufDrops   uint64
	pfcPauses  uint64
	goodTimes  []simtime.Time
	goodGbps   []float64
	processed  uint64
	sendersUp  int // senders not yet torn down at the horizon
}

const samplePeriod = 20 * simtime.Microsecond

// runSharded executes plan on a K-shard engine to the horizon.
func runSharded(cfg Config, plan *Plan, horizon simtime.Time) runResult {
	e := Build(cfg)
	app := e.Apply(plan)
	smp := NewSampler(e.HostPorts(), samplePeriod)
	e.OnBarrier(smp.OnBarrier)
	e.Run(horizon)

	snap := e.Snap()
	marks, drops := e.SwitchTotals()
	res := runResult{
		ends:       app.End,
		marks:      marks,
		drops:      drops,
		blackholed: snap.Blackholed,
		bufDrops:   snap.BufferDrops,
		pfcPauses:  snap.PFCPauses,
		goodTimes:  smp.Times,
		goodGbps:   smp.Gbps,
		processed:  e.Processed(),
	}
	for i := range plan.Flows {
		if f := app.DCQCNSend[i]; f != nil && !f.SenderDone() {
			res.sendersUp++
		}
		if f := app.TCPSend[i]; f != nil && !f.Acked() {
			res.sendersUp++
		}
	}
	return res
}

// runSequential executes the same plan on a plain topo.LeafSpine fabric in
// one event loop, driven at the identical barrier cadence.
func runSequential(cfg Config, plan *Plan, horizon simtime.Time) runResult {
	net := netsim.New(cfg.Seed)
	fab := topo.LeafSpine(net, cfg.NLeaf, cfg.HostsPerLeaf, cfg.NSpine, cfg.Topo)
	app := ApplyToFabric(fab, cfg.HostsPerLeaf, plan)

	var ports []*netsim.Port
	for _, h := range fab.Hosts {
		ports = append(ports, h.Port)
	}
	smp := NewSampler(ports, samplePeriod)
	part := topo.PartitionLeafSpine(cfg.NLeaf, cfg.HostsPerLeaf, cfg.NSpine, 1, cfg.Topo)
	RunWindows(net.Q, horizon, part.Lookahead, smp.OnBarrier)

	var marks, drops []uint64
	for _, sw := range fab.Switches() {
		marks = append(marks, sw.MarksTotal)
		drops = append(drops, sw.DropsTotal)
	}
	var blackholed, pfc, buf uint64
	for _, sw := range fab.Switches() {
		blackholed += sw.RouteBlackholes
		buf += sw.DropsTotal - sw.RouteBlackholes
		for _, p := range sw.Ports {
			blackholed += p.BlackholedPackets
			pfc += p.PauseTxEvents
		}
	}
	for _, h := range fab.Hosts {
		blackholed += h.Port.BlackholedPackets
	}
	res := runResult{
		ends:       app.End,
		marks:      marks,
		drops:      drops,
		blackholed: blackholed,
		bufDrops:   buf,
		pfcPauses:  pfc,
		goodTimes:  smp.Times,
		goodGbps:   smp.Gbps,
		processed:  net.Q.Processed(),
	}
	for i := range plan.Flows {
		if f := app.DCQCNSend[i]; f != nil && !f.SenderDone() {
			res.sendersUp++
		}
		if f := app.TCPSend[i]; f != nil && !f.Acked() {
			res.sendersUp++
		}
	}
	return res
}

func diffResults(t *testing.T, label string, want, got runResult) {
	t.Helper()
	for i := range want.ends {
		if want.ends[i] != got.ends[i] {
			t.Errorf("%s: flow %d end %v, want %v", label, i, got.ends[i], want.ends[i])
		}
	}
	for i := range want.marks {
		if want.marks[i] != got.marks[i] {
			t.Errorf("%s: switch %d marks %d, want %d", label, i, got.marks[i], want.marks[i])
		}
		if want.drops[i] != got.drops[i] {
			t.Errorf("%s: switch %d drops %d, want %d", label, i, got.drops[i], want.drops[i])
		}
	}
	if want.blackholed != got.blackholed || want.bufDrops != got.bufDrops || want.pfcPauses != got.pfcPauses {
		t.Errorf("%s: aggregates (blackholed %d, bufdrops %d, pfc %d), want (%d, %d, %d)",
			label, got.blackholed, got.bufDrops, got.pfcPauses,
			want.blackholed, want.bufDrops, want.pfcPauses)
	}
	if len(want.goodTimes) != len(got.goodTimes) {
		t.Fatalf("%s: %d goodput samples, want %d", label, len(got.goodTimes), len(want.goodTimes))
	}
	for i := range want.goodTimes {
		if want.goodTimes[i] != got.goodTimes[i] || want.goodGbps[i] != got.goodGbps[i] {
			t.Errorf("%s: sample %d = (%v, %v), want (%v, %v)", label, i,
				got.goodTimes[i], got.goodGbps[i], want.goodTimes[i], want.goodGbps[i])
		}
	}
	if want.processed != got.processed {
		t.Errorf("%s: %d events processed, want %d", label, got.processed, want.processed)
	}
	if want.sendersUp != got.sendersUp {
		t.Errorf("%s: %d senders alive at horizon, want %d", label, got.sendersUp, want.sendersUp)
	}
}

// TestShardEquivalence is the tentpole differential proof: for several seeds
// and a mixed DCQCN/TCP workload, the sequential engine and 1-, 2-, and
// 4-shard layouts produce bit-identical per-flow completion times, per-switch
// counters, sampled goodput, and total event counts.
func TestShardEquivalence(t *testing.T) {
	const nLeaf, hostsPerLeaf, nSpine = 4, 4, 3
	horizon := simtime.Time(0).Add(3 * simtime.Millisecond)

	for _, seed := range []int64{1, 7, 23} {
		cfg := testConfig(nLeaf, hostsPerLeaf, nSpine, 1, seed)
		plan := NewPlan(cfg.Topo.HostBW).
			RandomFlows(nLeaf, hostsPerLeaf, 36, 48<<10, 300*simtime.Microsecond, true, seed*1000+9)

		want := runSequential(cfg, plan, horizon)
		done := 0
		for _, e := range want.ends {
			if e != 0 {
				done++
			}
		}
		if done != len(plan.Flows) {
			t.Fatalf("seed %d: only %d/%d flows completed sequentially — horizon too small for a meaningful diff", seed, done, len(plan.Flows))
		}
		if want.sendersUp != 0 {
			t.Fatalf("seed %d: %d senders never tore down", seed, want.sendersUp)
		}

		for _, k := range []int{1, 2, 4} {
			cfg.Shards = k
			got := runSharded(cfg, plan, horizon)
			diffResults(t, labelKS(seed, k), want, got)
		}
	}
}

func labelKS(seed int64, k int) string {
	return fmt.Sprintf("seed %d shards %d", seed, k)
}

// TestShardEquivalenceUnderFaults repeats the differential proof with link
// faults in the plan: a hard down/up on a host-leaf link plus flaps on two
// leaf-spine links (one of which crosses shards in every K>1 layout).
func TestShardEquivalenceUnderFaults(t *testing.T) {
	const nLeaf, hostsPerLeaf, nSpine = 4, 4, 3
	horizon := simtime.Time(0).Add(3 * simtime.Millisecond)

	for _, seed := range []int64{5, 11} {
		cfg := testConfig(nLeaf, hostsPerLeaf, nSpine, 1, seed)
		plan := NewPlan(cfg.Topo.HostBW).
			RandomFlows(nLeaf, hostsPerLeaf, 30, 48<<10, 300*simtime.Microsecond, true, seed*77+1)
		plan.DownUp(HostLeafLink(0, 1),
			simtime.Time(0).Add(100*simtime.Microsecond),
			simtime.Time(0).Add(400*simtime.Microsecond))
		// leaf0-spine1 is cross-shard at K∈{2,4} (leaf 0 → shard 0,
		// spine 1 → shard 1); leaf3-spine0 is cross-shard at K=4.
		plan.Flap(LeafSpineLink(0, 1), 300*simtime.Microsecond, 150*simtime.Microsecond,
			simtime.Time(0).Add(2*simtime.Millisecond), seed)
		plan.Flap(LeafSpineLink(3, 0), 400*simtime.Microsecond, 100*simtime.Microsecond,
			simtime.Time(0).Add(2*simtime.Millisecond), seed+1)

		want := runSequential(cfg, plan, horizon)
		if want.blackholed == 0 {
			t.Fatalf("seed %d: fault plan produced no losses — not exercising the fault path", seed)
		}
		for _, k := range []int{1, 2, 4} {
			cfg.Shards = k
			got := runSharded(cfg, plan, horizon)
			diffResults(t, labelKS(seed, k), want, got)
		}
	}
}
