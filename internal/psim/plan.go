package psim

import (
	"math/rand"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/eventq"
	"github.com/accnet/acc/internal/faults"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/tcp"
	"github.com/accnet/acc/internal/topo"
)

// Transport selects the protocol driving one planned flow.
type Transport int

const (
	// TransportDCQCN is the RDMA rate-based transport (internal/dcqcn).
	TransportDCQCN Transport = iota
	// TransportTCP is the windowed DCTCP-family transport (internal/tcp).
	TransportTCP
)

// HostRef addresses a host by (leaf index, host index under that leaf).
type HostRef struct{ Leaf, Host int }

// LinkRef addresses a link by tier: for faults.HostLeaf, A is the leaf and B
// the host index; for faults.LeafSpine, A is the leaf and B the spine.
type LinkRef struct {
	Role faults.Role
	A, B int
}

// HostLeafLink addresses the link between leaf l and its i'th host.
func HostLeafLink(l, i int) LinkRef { return LinkRef{Role: faults.HostLeaf, A: l, B: i} }

// LeafSpineLink addresses the link between leaf l and spine s.
func LeafSpineLink(l, s int) LinkRef { return LinkRef{Role: faults.LeafSpine, A: l, B: s} }

// FlowSpec is one planned transfer. Flow ids are implied by position: the
// i'th spec is netsim.FlowID(i+1) in every engine.
type FlowSpec struct {
	Src, Dst  HostRef
	Size      int64
	Start     simtime.Time
	Transport Transport
}

// FaultEvent is one per-link state change at an absolute virtual time.
// Appliers turn it into two netsim.Port.SetEndDown events — one per link
// end, each on the queue owning that end — so shard layouts and the
// sequential engine all execute the identical event set.
type FaultEvent struct {
	At   simtime.Time
	Link LinkRef
	Down bool
}

// Plan is a precomputed, engine-independent workload and fault trace. All
// randomness (flow draws, flap expansion) happens at plan-build time from
// explicit seeds, never during simulation, which is what makes one plan
// replayable bit-identically across shard layouts. Appliers iterate Flows
// then Faults in slice order; that order is part of the trace.
type Plan struct {
	Flows  []FlowSpec
	Faults []FaultEvent

	DCQCN dcqcn.Params
	TCP   tcp.Params

	// OnStart, when set, observes flow i at the instant the engine actually
	// launches it (the trace recorder's hook — see workload.Recorder). It is
	// invoked inside the existing start event, never as an event of its own,
	// so recording does not perturb the schedule. Under the sharded engine it
	// fires on the shard owning the sender; implementations must be safe for
	// that (per-flow slot writes, no shared appends).
	OnStart func(i int, at simtime.Time)
}

// NewPlan returns an empty plan with transport parameter defaults for the
// given host line rate.
func NewPlan(hostBW simtime.Rate) *Plan {
	return &Plan{DCQCN: dcqcn.DefaultParams(hostBW), TCP: tcp.DefaultParams()}
}

// RandomFlows appends n random cross-fabric transfers: uniform source and
// destination hosts (never equal), sizes uniform in [1 KB, maxBytes], start
// times uniform in [0, spread). When mixTCP is set every third flow runs
// TCP, exercising the sender/receiver split of both transports.
func (p *Plan) RandomFlows(nLeaf, hostsPerLeaf, n int, maxBytes int64, spread simtime.Duration, mixTCP bool, seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	if maxBytes < 1024 {
		maxBytes = 1024
	}
	for i := 0; i < n; i++ {
		src := HostRef{rng.Intn(nLeaf), rng.Intn(hostsPerLeaf)}
		dst := src
		for dst == src {
			dst = HostRef{rng.Intn(nLeaf), rng.Intn(hostsPerLeaf)}
		}
		fs := FlowSpec{
			Src:   src,
			Dst:   dst,
			Size:  1024 + rng.Int63n(maxBytes-1023),
			Start: simtime.Time(rng.Int63n(int64(spread) + 1)),
		}
		if mixTCP && i%3 == 2 {
			fs.Transport = TransportTCP
		}
		p.Flows = append(p.Flows, fs)
	}
	return p
}

// DownUp appends a failure and its repair on one link.
func (p *Plan) DownUp(link LinkRef, downAt, upAt simtime.Time) *Plan {
	p.Faults = append(p.Faults,
		FaultEvent{At: downAt, Link: link, Down: true},
		FaultEvent{At: upAt, Link: link, Down: false})
	return p
}

// Flap expands a memoryless link-flap process (exponential up times with
// mean MTBF, exponential down times with mean MTTR) into explicit events up
// to the horizon. Failures stop at the horizon; the final repair always
// lands, so the link ends up. This is the offline twin of
// faults.Flap/Injector.scheduleFlap — the draws happen here, at plan time,
// from the plan's own stream.
func (p *Plan) Flap(link LinkRef, mtbf, mttr simtime.Duration, horizon simtime.Time, seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	t := simtime.Time(0)
	for {
		t = t.Add(simtime.Duration(rng.ExpFloat64() * float64(mtbf)))
		if t >= horizon {
			return p
		}
		down := simtime.Duration(rng.ExpFloat64() * float64(mttr))
		p.DownUp(link, t, t.Add(down))
		t = t.Add(down)
	}
}

// Applied tracks the live transport objects and results of one plan
// instantiation. Slices are indexed by flow position in the plan; entries
// for the other transport are nil.
type Applied struct {
	Plan *Plan

	DCQCNSend []*dcqcn.Flow
	DCQCNRecv []*dcqcn.Receiver
	TCPSend   []*tcp.Flow
	TCPRecv   []*tcp.Receiver

	// End[i] is the receiver completion time of flow i (zero while
	// incomplete). The bit-identity contract compares these across layouts.
	End []simtime.Time

	// Hybrid is the hybrid-fidelity bookkeeping when the plan was applied
	// via ApplyHybrid; nil for pure packet instantiations.
	Hybrid *HybridState

	// evs holds every plan-scheduled event handle (flow starts in plan
	// order — receiver then sender — followed by fault ends). Snapshot
	// restore rebuilds the world (re-creating these handles with their
	// original (at, seq) because construction order is deterministic),
	// clears the queues, and re-inserts the still-pending ones via
	// RestorePending.
	//acclint:ignore snapcover rebuilt by construction (same deterministic handles) and re-armed by RestorePending, restore step 3 - not part of the codec stream
	evs []*eventq.Event
}

// RestorePending re-inserts plan events that were still pending at the
// restored clock — those scheduled at or after the snapshot barrier
// (RunBefore fires everything strictly before it).
func (a *Applied) RestorePending() {
	for _, ev := range a.evs {
		if q := ev.Owner(); ev.At() >= q.Now() {
			q.RestoreEvent(ev)
		}
	}
}

// FCT returns flow i's completion time, or (0, false) while incomplete.
func (a *Applied) FCT(i int) (simtime.Duration, bool) {
	if a.End[i] == 0 {
		return 0, false
	}
	return a.End[i].Sub(a.Plan.Flows[i].Start), true
}

// DoneCount returns how many flows have completed.
func (a *Applied) DoneCount() int {
	n := 0
	for _, e := range a.End {
		if e != 0 {
			n++
		}
	}
	return n
}

// applyPlan schedules every planned flow and fault onto the queues owning
// the respective endpoints. host resolves a HostRef; link resolves a LinkRef
// to its two port ends (A-side, B-side). Scheduling happens immediately, in
// plan order, flows before faults — the same relative order on every queue
// in every layout, so same-instant ties resolve identically everywhere.
func applyPlan(p *Plan, host func(HostRef) *netsim.Host, link func(LinkRef) (aEnd, bEnd *netsim.Port)) *Applied {
	n := len(p.Flows)
	res := &Applied{
		Plan:      p,
		DCQCNSend: make([]*dcqcn.Flow, n),
		DCQCNRecv: make([]*dcqcn.Receiver, n),
		TCPSend:   make([]*tcp.Flow, n),
		TCPRecv:   make([]*tcp.Receiver, n),
		End:       make([]simtime.Time, n),
	}
	for i, fs := range p.Flows {
		id := netsim.FlowID(i + 1)
		src, dst := host(fs.Src), host(fs.Dst)
		// Receiver first, then sender: both fire at fs.Start, and keeping
		// one fixed relative order on a shared queue keeps the sequential
		// and sharded schedules aligned.
		switch fs.Transport {
		case TransportDCQCN:
			res.evs = append(res.evs, dst.Net().Q.At(fs.Start, func() {
				res.DCQCNRecv[i] = dcqcn.StartReceiver(id, src.ID(), dst, fs.Size, p.DCQCN, func(r *dcqcn.Receiver) {
					res.End[i] = r.End
				})
			}))
			res.evs = append(res.evs, src.Net().Q.At(fs.Start, func() {
				if p.OnStart != nil {
					p.OnStart(i, src.Net().Now())
				}
				res.DCQCNSend[i] = dcqcn.StartSender(src.Net(), id, src, dst.ID(), fs.Size, p.DCQCN)
			}))
		case TransportTCP:
			res.evs = append(res.evs, dst.Net().Q.At(fs.Start, func() {
				res.TCPRecv[i] = tcp.StartReceiver(id, src.ID(), dst, fs.Size, p.TCP, func(r *tcp.Receiver) {
					res.End[i] = r.End
				})
			}))
			res.evs = append(res.evs, src.Net().Q.At(fs.Start, func() {
				if p.OnStart != nil {
					p.OnStart(i, src.Net().Now())
				}
				res.TCPSend[i] = tcp.StartSender(src.Net(), id, src, dst.ID(), fs.Size, p.TCP)
			}))
		}
	}
	for _, fe := range p.Faults {
		aEnd, bEnd := link(fe.Link)
		down := fe.Down
		res.evs = append(res.evs, aEnd.Net().Q.At(fe.At, func() { aEnd.SetEndDown(down) }))
		res.evs = append(res.evs, bEnd.Net().Q.At(fe.At, func() { bEnd.SetEndDown(down) }))
	}
	return res
}

// Apply instantiates the plan on the sharded engine: senders start in the
// shard owning the source host, receivers in the shard owning the
// destination, fault ends on the shards owning each port.
func (e *Engine) Apply(p *Plan) *Applied {
	return applyPlan(p,
		func(r HostRef) *netsim.Host { return e.Hosts[r.Leaf][r.Host] },
		func(l LinkRef) (*netsim.Port, *netsim.Port) {
			switch l.Role {
			case faults.HostLeaf:
				return e.HostUp[l.A][l.B], e.LeafDown[l.A][l.B]
			case faults.LeafSpine:
				return e.LeafUp[l.A][l.B], e.SpineDown[l.B][l.A]
			}
			panic("psim: unsupported link role in plan")
		})
}

// ApplyToFabric instantiates the same plan on a sequential topo.LeafSpine
// build — the single-threaded baseline of the differential tests. It
// schedules the identical event set (including per-end SetEndDown pairs for
// faults) so a sequential run driven by RunWindows is comparable
// bit-for-bit.
func ApplyToFabric(fab *topo.Fabric, hostsPerLeaf int, p *Plan) *Applied {
	return applyPlan(p,
		func(r HostRef) *netsim.Host { return fab.HostsAt[r.Leaf][r.Host] },
		func(l LinkRef) (*netsim.Port, *netsim.Port) {
			switch l.Role {
			case faults.HostLeaf:
				hp := fab.HostsAt[l.A][l.B].Port
				return hp, hp.Peer
			case faults.LeafSpine:
				up := fab.Leaves[l.A].Ports[hostsPerLeaf+l.B]
				return up, up.Peer
			}
			panic("psim: unsupported link role in plan")
		})
}
