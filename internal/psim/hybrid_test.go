package psim

import (
	"testing"

	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// hybridPlan builds a workload that forces every fidelity transition the
// hybrid engine implements, at instants that land inside barrier windows:
// solo cross-leaf flows that stay analytic end-to-end, an incast wave that
// demotes the shared downlink mid-flight (converting an in-progress analytic
// flow to DCQCN with its exact remainder), a late flow that arrives after
// the hotspot drains (exercising promotion hysteresis), a TCP flow that
// registers ineligible, and one uplink flap that trips the ECMP-group
// demotion rule.
func hybridPlan(hostBW simtime.Rate) *Plan {
	p := NewPlan(hostBW)
	p.Flows = []FlowSpec{
		// Wave 1 (t=0): uncontended singles — and one into the future hotspot.
		{Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Size: 512 * simtime.KB},
		{Src: HostRef{2, 0}, Dst: HostRef{3, 0}, Size: 512 * simtime.KB},
		{Src: HostRef{3, 1}, Dst: HostRef{0, 1}, Size: 512 * simtime.KB},
		// Wave 2 (t=20us): incast on host (1,0) while flow 0 is mid-flight.
		{Src: HostRef{2, 1}, Dst: HostRef{1, 0}, Size: 256 * simtime.KB, Start: simtime.Time(20 * simtime.Microsecond)},
		{Src: HostRef{3, 0}, Dst: HostRef{1, 0}, Size: 256 * simtime.KB, Start: simtime.Time(20 * simtime.Microsecond)},
		// Wave 3 (t=900us): after the incast drains; analytic again iff the
		// hotspot links have promoted — identical either way across layouts.
		{Src: HostRef{0, 1}, Dst: HostRef{1, 0}, Size: 256 * simtime.KB, Start: simtime.Time(900 * simtime.Microsecond)},
		// Ineligible transport: packet-level from the start, demand reserved.
		{Src: HostRef{1, 1}, Dst: HostRef{2, 0}, Size: 128 * simtime.KB, Transport: TransportTCP},
	}
	// A leaf-2 uplink flap: any member flip re-hashes the group, so the
	// hybrid engine must demote all of leaf 2's uplinks at the next barrier.
	p.DownUp(LeafSpineLink(2, 0),
		simtime.Time(200*simtime.Microsecond), simtime.Time(400*simtime.Microsecond))
	return p
}

// hybridRun executes the plan at the given shard count and returns the
// Applied results, the engine stats, and a flat per-port counter snapshot.
func hybridRun(t *testing.T, shards int, horizon simtime.Time) (*Applied, *hybrid.Engine, []uint64) {
	t.Helper()
	cfg := Config{NLeaf: 4, HostsPerLeaf: 2, NSpine: 2, Shards: shards, Seed: 1, Topo: topo.DefaultConfig()}
	e := Build(cfg)
	res, eng := e.ApplyHybrid(hybridPlan(cfg.Topo.HostBW), hybrid.DefaultConfig())
	e.Run(horizon)

	var counters []uint64
	snap := func(rows [][]*netsim.Port) {
		for _, row := range rows {
			for _, p := range row {
				counters = append(counters, p.DeliveredBytes(), p.AnalyticTxBytes, uint64(p.Fidelity()))
			}
		}
	}
	snap(e.HostUp)
	snap(e.LeafDown)
	snap(e.LeafUp)
	snap(e.SpineDown)
	return res, eng, counters
}

// TestHybridLayoutIdentity is the tentpole's shard-safety contract at the
// engine level: a hybrid-fidelity plan — demotions mid-flight, an ECMP-group
// fault, promotions, mixed transports — completes bit-identically on 1, 2,
// and 4 shards: same per-flow completion instants, same fidelity accounting,
// same per-port byte counters.
func TestHybridLayoutIdentity(t *testing.T) {
	horizon := simtime.Time(2 * simtime.Millisecond)
	ref, refEng, refCounters := hybridRun(t, 1, horizon)

	if got := ref.DoneCount(); got != len(ref.Plan.Flows) {
		t.Fatalf("reference run completed %d/%d flows: %v", got, len(ref.Plan.Flows), ref.End)
	}
	st := refEng.Stats
	if st.Demotions == 0 {
		t.Fatalf("incast never demoted a link; stats %+v", st)
	}
	if st.Promotions == 0 {
		t.Fatalf("hotspot never promoted back after draining; stats %+v", st)
	}
	if st.AnalyticFlows == 0 || st.PacketFlows == 0 {
		t.Fatalf("plan should split between modes; stats %+v", st)
	}

	for _, k := range []int{2, 4} {
		res, eng, counters := hybridRun(t, k, horizon)
		for i, end := range res.End {
			if end != ref.End[i] {
				t.Errorf("shards=%d flow %d: End %v != sequential %v", k, i, end, ref.End[i])
			}
		}
		if eng.Stats != st {
			t.Errorf("shards=%d fidelity stats diverged: %+v != %+v", k, eng.Stats, st)
		}
		if len(counters) != len(refCounters) {
			t.Fatalf("shards=%d snapshot size %d != %d", k, len(counters), len(refCounters))
		}
		for i := range counters {
			if counters[i] != refCounters[i] {
				t.Errorf("shards=%d port counter %d diverged: %d != %d", k, i, counters[i], refCounters[i])
			}
		}
	}
}

// TestHybridBarrierQuantization pins ApplyHybrid's documented start
// semantics: a spec due strictly inside a window starts at the next barrier,
// so its analytic Start — and therefore its closed-form End — sits on the
// quantized instant in every layout.
func TestHybridBarrierQuantization(t *testing.T) {
	runOne := func(start simtime.Time) simtime.Time {
		cfg := Config{NLeaf: 2, HostsPerLeaf: 2, NSpine: 2, Shards: 1, Seed: 1, Topo: topo.DefaultConfig()}
		e := Build(cfg)
		p := NewPlan(cfg.Topo.HostBW)
		p.Flows = []FlowSpec{
			{Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Size: 64 * simtime.KB, Start: start},
		}
		res, eng := e.ApplyHybrid(p, hybrid.DefaultConfig())
		e.Run(simtime.Time(1 * simtime.Millisecond))
		if res.End[0] == 0 {
			t.Fatalf("flow starting at %v never completed", start)
		}
		if eng.Stats.AnalyticFlows != 1 || eng.Stats.PacketFlows != 0 {
			t.Fatalf("solo flow should complete analytically: %+v", eng.Stats)
		}
		return res.End[0]
	}

	window := topo.DefaultConfig().FabDelay
	base := runOne(0)
	// Due strictly inside window 2 → starts at barrier 2. The closed form is
	// shift-invariant on an idle path, so End must move by exactly two whole
	// windows; an unquantized anchor would shift it by the fractional offset.
	mid := simtime.Time(window) + simtime.Time(window)/3
	if got, want := runOne(mid), base.Add(2*window); got != want {
		t.Fatalf("quantized End %v, want %v (t=0 End %v + 2 windows)", got, want, base)
	}
}
