// Package psim is the deterministic parallel simulation engine: it shards a
// leaf–spine fabric across cores as a conservative parallel discrete-event
// simulation, producing results bit-identical to the single-threaded engine.
//
// # Partitioning
//
// The fabric is cut along leaf↔spine links only (topo.PartitionLeafSpine):
// each shard owns a contiguous block of leaf groups (leaf switch + hosts)
// plus a round-robin share of the spines, and runs them on its own private
// netsim.Network and eventq.Queue. Host↔leaf links never cross shards.
//
// # Conservative lookahead sync
//
// All shards advance in lockstep through windows of length L — the minimum
// propagation delay of any cross-shard link (topo.Partition.Lookahead).
// Within a window [W, W+L) a shard runs its queue exclusively of the barrier
// (eventq.Queue.RunBefore); a packet finishing serialization at u ∈ [W, W+L)
// on a cross-shard link arrives at u+L ≥ W+L, i.e. never inside the window
// that produced it, so exchanging buffered cross-shard packets at the
// barrier is complete: no shard can receive an event in its past.
//
// # Bit-identical merging
//
// Cross-shard packets carry the arrival key the transmitting port computed —
// eventq.KeyedSeq(rx stream, per-link packet count) — which depends only on
// which link carried the packet and how many preceded it. Injection
// (netsim.Port.ScheduleRemoteArrival) schedules the arrival at the original
// time under the original key, so the receiving queue orders it exactly
// where a single shared queue would have: same-instant local events (small
// counter keys) first, then arrivals in fixed (stream, count) order. The
// exchange order between shards therefore cannot influence execution order,
// and every shard layout — including K=1 and the sequential engine driven at
// the same barrier cadence (RunWindows) — replays the identical event
// sequence. DESIGN.md "Parallel simulation" gives the induction proof.
package psim

import (
	"fmt"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// Config describes a sharded leaf–spine build.
type Config struct {
	NLeaf, HostsPerLeaf, NSpine int

	// Shards requests a shard count; the effective count is clamped by the
	// partitioner to [1, NLeaf].
	Shards int

	// Seed seeds every shard's Network identically. Per-node RNG streams are
	// keyed on (seed, node id), so a node draws the same stream no matter
	// which shard hosts it.
	Seed int64

	Topo topo.Config
}

// Shard is one logical process: a private Network owning a subset of the
// fabric's nodes, registered at their global ids (the shard-local registry
// is sparse).
type Shard struct {
	ID  int
	Net *netsim.Network

	Leaves []*netsim.Switch // local leaves, in global leaf order
	Spines []*netsim.Switch // local spines, in global spine order
	Hosts  []*netsim.Host   // local hosts, in global host order
}

// crossPkt is one packet buffered between shards: the receiving port, the
// packet object (ownership transferred from the transmitting Network; see
// netsim.RemoteEnd), and the arrival (time, key) computed by the
// transmitter. Records live in the per-direction outbox rows, which are
// reset to length zero at every exchange, so the rows' backing arrays — and
// the packet objects they point at — recycle without allocation in steady
// state.
type crossPkt struct {
	port *netsim.Port
	pkt  *netsim.Packet
	at   simtime.Time
	key  uint64
}

// outboxEnd implements netsim.RemoteEnd for one direction of one cross-shard
// link: Deliver buffers the packet in the transmitting shard's outbox row,
// which only that shard's worker touches during a window.
type outboxEnd struct {
	eng      *Engine
	src, dst int
	port     *netsim.Port // receiving port, in shard dst
}

func (o *outboxEnd) Deliver(pkt *netsim.Packet, at simtime.Time, key uint64) {
	box := &o.eng.outbox[o.src][o.dst]
	*box = append(*box, crossPkt{port: o.port, pkt: pkt, at: at, key: key})
}

// Engine is a sharded fabric plus its synchronization state.
type Engine struct {
	//acclint:ignore snapcover construction config; restore requires an engine built with the same Config
	Cfg Config
	//acclint:ignore snapcover construction config (partition layout; snapshots are layout-specific)
	Part topo.Partition

	Shards []*Shard
	//acclint:ignore snapcover derived at construction from Part.Lookahead
	Window simtime.Duration // barrier window = Part.Lookahead

	// Global views, indexed exactly like the sequential topo.Fabric build:
	// Hosts[l][i], Leaves[l], Spines[s]. Pointers reach into the owning
	// shard's Network; mutate only through scheduled events on that shard.
	//acclint:ignore snapcover topology wiring into the shard Networks; node state is saved by each shard Net.SaveState
	Leaves []*netsim.Switch
	//acclint:ignore snapcover topology wiring into the shard Networks; node state is saved by each shard Net.SaveState
	Spines []*netsim.Switch
	//acclint:ignore snapcover topology wiring into the shard Networks; node state is saved by each shard Net.SaveState
	Hosts [][]*netsim.Host

	// Link port tables for fault targeting. HostUp[l][i] is the host NIC,
	// LeafDown[l][i] the leaf-side port of the same link; LeafUp[l][s] and
	// SpineDown[s][l] are the two ends of the leaf l ↔ spine s link.
	//acclint:ignore snapcover fault-targeting port table, construction wiring; port state is saved by the owning shard Network
	HostUp [][]*netsim.Port
	//acclint:ignore snapcover fault-targeting port table, construction wiring; port state is saved by the owning shard Network
	LeafDown [][]*netsim.Port
	//acclint:ignore snapcover fault-targeting port table, construction wiring; port state is saved by the owning shard Network
	LeafUp [][]*netsim.Port
	//acclint:ignore snapcover fault-targeting port table, construction wiring; port state is saved by the owning shard Network
	SpineDown [][]*netsim.Port

	// outbox[src][dst] buffers cross-shard packets transmitted by shard src
	// toward shard dst during the current window. Written only by src's
	// worker while running, drained only by the coordinator at barriers.
	//acclint:ignore snapcover drained at every barrier; empty whenever a snapshot is legal (barriers only)
	outbox [][][]crossPkt

	// hooks run at every barrier, on the coordinator, with all shards
	// quiescent at exactly the barrier time.
	hooks []func(barrier simtime.Time)

	now simtime.Time // last barrier reached
}

// Build constructs the sharded fabric. The construction mirrors
// topo.LeafSpine exactly — same node ids, same port index order, same
// routing tables — with cross-shard leaf↔spine links wired through outboxes
// instead of port peering (see TestShardParity).
func Build(cfg Config) *Engine {
	part := topo.PartitionLeafSpine(cfg.NLeaf, cfg.HostsPerLeaf, cfg.NSpine, cfg.Shards, cfg.Topo)
	e := &Engine{
		Cfg:    cfg,
		Part:   part,
		Window: part.Lookahead,
	}
	if e.Window <= 0 {
		panic("psim: topology has a non-positive fabric delay; no conservative lookahead exists")
	}
	for k := 0; k < part.K; k++ {
		e.Shards = append(e.Shards, &Shard{ID: k, Net: netsim.New(cfg.Seed)})
	}
	e.outbox = make([][][]crossPkt, part.K)
	for i := range e.outbox {
		e.outbox[i] = make([][]crossPkt, part.K)
	}

	c := cfg.Topo

	// Spines first, as in topo.LeafSpine.
	for s := 0; s < cfg.NSpine; s++ {
		sh := e.Shards[part.SpineShard[s]]
		sw := c.SwitchAt(sh.Net, fmt.Sprintf("spine%d", s), part.SpineID(s))
		sh.Spines = append(sh.Spines, sw)
		e.Spines = append(e.Spines, sw)
	}

	e.Hosts = make([][]*netsim.Host, cfg.NLeaf)
	e.HostUp = make([][]*netsim.Port, cfg.NLeaf)
	e.LeafDown = make([][]*netsim.Port, cfg.NLeaf)
	e.LeafUp = make([][]*netsim.Port, cfg.NLeaf)
	e.SpineDown = make([][]*netsim.Port, cfg.NSpine)
	for s := range e.SpineDown {
		e.SpineDown[s] = make([]*netsim.Port, cfg.NLeaf)
	}

	for l := 0; l < cfg.NLeaf; l++ {
		sh := e.Shards[part.LeafShard[l]]
		leaf := c.SwitchAt(sh.Net, fmt.Sprintf("leaf%d", l), part.LeafID(l))
		sh.Leaves = append(sh.Leaves, leaf)
		e.Leaves = append(e.Leaves, leaf)
		for i := 0; i < cfg.HostsPerLeaf; i++ {
			h := c.AttachHostAt(sh.Net, leaf, fmt.Sprintf("h%d-%d", l, i), part.HostID(l, i))
			sh.Hosts = append(sh.Hosts, h)
			e.Hosts[l] = append(e.Hosts[l], h)
			e.HostUp[l] = append(e.HostUp[l], h.Port)
			e.LeafDown[l] = append(e.LeafDown[l], leaf.Ports[part.LeafHostPort(i)])
		}
		e.LeafUp[l] = make([]*netsim.Port, cfg.NSpine)
		for s := 0; s < cfg.NSpine; s++ {
			spine := e.Spines[s]
			up := leaf.AddPort(c.FabricBW, c.FabDelay, c.QueueWeights)
			down := spine.AddPort(c.FabricBW, c.FabDelay, c.QueueWeights)
			e.LeafUp[l][s] = up
			e.SpineDown[s][l] = down
			if !part.CrossShard(l, s) {
				netsim.Connect(up, down)
				continue
			}
			lsh, ssh := part.LeafShard[l], part.SpineShard[s]
			netsim.ConnectRemote(up, &outboxEnd{eng: e, src: lsh, dst: ssh, port: down},
				part.SpineID(s), part.SpineDownlinkPort(l))
			netsim.ConnectRemote(down, &outboxEnd{eng: e, src: ssh, dst: lsh, port: up},
				part.LeafID(l), part.LeafUplinkPort(s))
		}
	}

	// Routing, exactly as topo.LeafSpine: inter-leaf traffic ECMPs over all
	// of the leaf's uplinks; each spine points at the destination leaf's
	// downlink. Every table references only ports local to the node.
	for l, leaf := range e.Leaves {
		for dl := range e.Hosts {
			if dl == l {
				continue
			}
			for _, h := range e.Hosts[dl] {
				leaf.SetRoute(h.ID(), e.LeafUp[l]...)
			}
		}
		for s, spine := range e.Spines {
			for _, h := range e.Hosts[l] {
				spine.SetRoute(h.ID(), e.SpineDown[s][l])
			}
		}
	}
	return e
}

// OnBarrier registers a hook to run at every barrier with all shards
// quiescent at exactly the barrier time. Hooks may read any shard's state,
// and may mutate it synchronously: workers resume only after every hook
// returns, so hook-side mutations are ordered by the same channel
// alternation that orders the packet exchange, and RunBefore has advanced
// each shard queue's clock to the barrier, so events a hook schedules land
// at barrier-relative times identical in every shard layout. The hybrid
// fast path depends on this — a fidelity demotion at a barrier starts
// packet transports on the owning shards' queues (see ApplyHybrid).
// Mutations at arbitrary virtual times still belong in scheduled events.
func (e *Engine) OnBarrier(h func(barrier simtime.Time)) { e.hooks = append(e.hooks, h) }

// Now returns the last barrier every shard has reached.
func (e *Engine) Now() simtime.Time { return e.now }

// HostPorts returns every host NIC port in global host order (sampling).
func (e *Engine) HostPorts() []*netsim.Port {
	var out []*netsim.Port
	for _, hs := range e.HostUp {
		out = append(out, hs...)
	}
	return out
}

// AttachObs wires the run's observability into the sharded engine: every
// shard Network shares the run's Tracer (it locks internally — the same
// shared-ring contract exp.forEachParallel relies on), trace records are
// stamped with the partition's node→shard labeling, the manifest learns
// the shard count, and each shard's event/packet totals are registered.
// Call before Run.
func (e *Engine) AttachObs(run *obs.Run) {
	if run == nil {
		return
	}
	run.SetShards(e.Part.K)
	part := e.Part
	run.Tracer.SetShardMap(func(node int32) int32 { return int32(part.ShardOfNode(int(node))) })
	for _, sh := range e.Shards {
		sh.Net.Tracer = run.Tracer
		run.RegisterEngine(sh.Net.Q.Processed, sh.Net.PacketsAlloced)
	}
}

// Processed sums events processed across all shard queues. A K-shard run
// executes exactly the same events as the sequential engine — a cross-shard
// hand-off is a buffered function call on the transmit side and one arrival
// event on the receive side, just like a local delivery — so this total is
// part of the differential-equality contract.
func (e *Engine) Processed() uint64 {
	var sum uint64
	for _, sh := range e.Shards {
		sum += sh.Net.Q.Processed()
	}
	return sum
}

// Drained reports whether every shard queue is empty of live events and
// every outbox has been exchanged.
func (e *Engine) Drained() bool {
	for _, sh := range e.Shards {
		if sh.Net.Q.Pending() > 0 {
			return false
		}
	}
	for _, row := range e.outbox {
		for _, box := range row {
			if len(box) > 0 {
				return false
			}
		}
	}
	return true
}
