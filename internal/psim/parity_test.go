package psim

import (
	"testing"

	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/topo"
)

func testConfig(nLeaf, hostsPerLeaf, nSpine, shards int, seed int64) Config {
	return Config{
		NLeaf: nLeaf, HostsPerLeaf: hostsPerLeaf, NSpine: nSpine,
		Shards: shards, Seed: seed, Topo: topo.DefaultConfig(),
	}
}

// TestShardParity proves the sharded builder reproduces the sequential
// build: with K=1 every node, name, port, route, and link peering must match
// topo.LeafSpine exactly; with K>1 the same holds per node, with cut links
// remote-wired to the correct far (node, port).
func TestShardParity(t *testing.T) {
	const nLeaf, hostsPerLeaf, nSpine = 4, 3, 2
	cfg := testConfig(nLeaf, hostsPerLeaf, nSpine, 1, 42)
	seqNet := netsim.New(42)
	fab := topo.LeafSpine(seqNet, nLeaf, hostsPerLeaf, nSpine, cfg.Topo)

	for _, k := range []int{1, 2, 4} {
		cfg.Shards = k
		e := Build(cfg)
		if e.Part.K != k {
			t.Fatalf("K=%d: partitioner clamped to %d", k, e.Part.K)
		}

		// Every sequential node exists in exactly one shard, same id, name.
		total := 0
		for _, sh := range e.Shards {
			for _, n := range sh.Net.Nodes() {
				if n == nil {
					continue
				}
				total++
				seq := seqNet.Node(n.ID())
				if seq == nil || seq.Name() != n.Name() {
					t.Fatalf("K=%d: node %d %q has no sequential twin", k, n.ID(), n.Name())
				}
			}
		}
		if total != len(seqNet.Nodes()) {
			t.Fatalf("K=%d: %d nodes built, sequential has %d", k, total, len(seqNet.Nodes()))
		}

		// Switch port geometry and routing tables match port-for-port.
		seqSwitches := fab.Switches()
		for si, sw := range append(append([]*netsim.Switch{}, e.Leaves...), e.Spines...) {
			seq := seqSwitches[si]
			if sw.ID() != seq.ID() || len(sw.Ports) != len(seq.Ports) {
				t.Fatalf("K=%d: switch %q geometry mismatch", k, sw.Name())
			}
			if len(sw.Routes()) != len(seq.Routes()) {
				t.Fatalf("K=%d: switch %q has %d routes, want %d", k, sw.Name(), len(sw.Routes()), len(seq.Routes()))
			}
			for dst, ports := range sw.Routes() {
				want := seq.Routes()[dst]
				if len(ports) != len(want) {
					t.Fatalf("K=%d: switch %q route to %d: %d candidates, want %d", k, sw.Name(), dst, len(ports), len(want))
				}
				got, exp := portIdxs(ports), portIdxs(want)
				for i := range got {
					if got[i] != exp[i] {
						t.Fatalf("K=%d: switch %q route to %d uses ports %v, want %v", k, sw.Name(), dst, got, exp)
					}
				}
			}
		}

		// Link wiring: intra-shard links peer; cross-shard links are
		// remote-wired (Peer == nil) on both ends.
		for l := 0; l < nLeaf; l++ {
			for s := 0; s < nSpine; s++ {
				up, down := e.LeafUp[l][s], e.SpineDown[s][l]
				if e.Part.CrossShard(l, s) {
					if up.Peer != nil || down.Peer != nil {
						t.Fatalf("K=%d: cross-shard link leaf%d-spine%d has a local peer", k, l, s)
					}
				} else if up.Peer != down || down.Peer != up {
					t.Fatalf("K=%d: intra-shard link leaf%d-spine%d not peered", k, l, s)
				}
			}
		}
	}
}

// portIdxs returns candidate port indices in table order — ECMP hashes into
// the slice by position, so candidate order is part of parity.
func portIdxs(ps []*netsim.Port) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.Index
	}
	return out
}
