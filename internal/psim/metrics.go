package psim

import (
	"github.com/accnet/acc/internal/faults"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
)

// Sampler records fabric-wide delivered goodput (bytes arriving at host
// NICs) at barrier instants, the sharded twin of faults.Tracker: hook its
// OnBarrier into Engine.OnBarrier — or pass it to RunWindows for the
// sequential baseline — and the same plan yields the same series at every
// shard count, because barriers fall at identical virtual times regardless
// of K.
type Sampler struct {
	//acclint:ignore snapcover construction config (sampling cadence)
	Period simtime.Duration

	Times []simtime.Time
	Gbps  []float64

	//acclint:ignore snapcover construction wiring (sampled host ports)
	ports  []*netsim.Port
	last   uint64
	lastT  simtime.Time
	nextAt simtime.Time
}

// NewSampler samples the given host NIC ports every period (rounded up to
// the next barrier).
func NewSampler(ports []*netsim.Port, period simtime.Duration) *Sampler {
	s := &Sampler{Period: period, ports: ports, nextAt: simtime.Time(0).Add(period)}
	s.last = s.totalRx()
	return s
}

func (s *Sampler) totalRx() uint64 {
	var sum uint64
	for _, p := range s.ports {
		sum += p.RxBytesTotal
	}
	return sum
}

// OnBarrier takes a sample when a period boundary has been reached. All
// shards are quiescent at barrier time, so reading cross-shard counters here
// is race-free.
func (s *Sampler) OnBarrier(b simtime.Time) {
	if b < s.nextAt {
		return
	}
	cur := s.totalRx()
	elapsed := b.Sub(s.lastT)
	gbps := 0.0
	if elapsed > 0 {
		gbps = float64(cur-s.last) * 8 / elapsed.Seconds() / 1e9
	}
	s.last, s.lastT = cur, b
	s.Times = append(s.Times, b)
	s.Gbps = append(s.Gbps, gbps)
	s.nextAt = b.Add(s.Period)
}

// Snap aggregates the engine's loss and back-pressure counters into the
// same shape as faults.Snap over a sequential fabric. Per-end attribution
// of link blackholes differs across layouts (a cross-shard in-flight loss
// is counted at the receiving end), but the fabric-wide sums compared here
// are identical.
func (e *Engine) Snap() faults.Snapshot {
	var s faults.Snapshot
	swPorts := func(sw *netsim.Switch) {
		for _, p := range sw.Ports {
			s.Blackholed += p.BlackholedPackets
			s.PFCPauses += p.PauseTxEvents
		}
		s.Blackholed += sw.RouteBlackholes
		s.BufferDrops += sw.DropsTotal - sw.RouteBlackholes
	}
	for _, sw := range e.Leaves {
		swPorts(sw)
	}
	for _, sw := range e.Spines {
		swPorts(sw)
	}
	for _, hs := range e.HostUp {
		for _, p := range hs {
			s.Blackholed += p.BlackholedPackets
		}
	}
	return s
}

// SwitchTotals returns per-switch (marks, drops) in global switch order
// (leaves then spines) — per-node counters the differential tests compare
// exactly across layouts.
func (e *Engine) SwitchTotals() (marks, drops []uint64) {
	for _, sw := range append(append([]*netsim.Switch{}, e.Leaves...), e.Spines...) {
		marks = append(marks, sw.MarksTotal)
		drops = append(drops, sw.DropsTotal)
	}
	return
}
