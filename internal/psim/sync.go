package psim

// Barrier-window synchronization. This file is the only concurrent code in
// the package — and, by design, the only place where goroutines touch
// simulation state. The protocol is a strict alternation:
//
//	phase A (parallel):  every shard worker runs its queue exclusively of
//	                     the barrier (RunBefore), buffering cross-shard
//	                     packets in its own outbox rows;
//	barrier:             workers report done (channel receive);
//	phase B (coordinator): the coordinator alone injects buffered packets
//	                     into receiving shards, then runs barrier hooks.
//
// Every shard-state access is therefore totally ordered by channel
// operations: a worker's window happens-before the coordinator's exchange,
// which happens-before the next window. Determinism does not depend on
// goroutine scheduling at all — the merge position of an injected arrival is
// fixed by its (time, key), not by injection order — so the loop produces
// bit-identical results at any GOMAXPROCS, including 1.
// internal/lint/config.go carries the audited allowlist entry for this
// file's goroutines and channels.

import (
	"fmt"

	"github.com/accnet/acc/internal/simtime"
)

// Run advances all shards to exactly the horizon, exchanging cross-shard
// packets at every barrier. Barriers fall at multiples of the window with a
// final (shorter, still conservative) window ending at the horizon. It may
// be called repeatedly to extend a run.
func (e *Engine) Run(horizon simtime.Time) {
	if horizon <= e.now {
		return
	}
	starts := make([]chan simtime.Time, len(e.Shards))
	done := make(chan int, len(e.Shards))
	for i := range e.Shards {
		starts[i] = make(chan simtime.Time, 1)
		go func(i int) {
			for b := range starts[i] {
				e.Shards[i].Net.Q.RunBefore(b)
				done <- i
			}
		}(i)
	}
	defer func() {
		for _, c := range starts {
			close(c)
		}
	}()

	for e.now < horizon {
		b := e.now.Add(e.Window)
		if b > horizon {
			b = horizon
		}
		for i := range starts {
			starts[i] <- b
		}
		for range starts {
			<-done
		}
		e.now = b
		e.exchange()
		for _, h := range e.hooks {
			h(b)
		}
	}
}

// exchange drains every outbox into the receiving shards. All workers are
// quiescent at the barrier, so the coordinator owns all shard state here.
// Drain order is fixed (dst-major, then src) but irrelevant to the result:
// each injected arrival lands at its keyed schedule position regardless of
// injection order.
func (e *Engine) exchange() {
	for dst := range e.Shards {
		for src := range e.Shards {
			box := e.outbox[src][dst]
			for i := range box {
				cp := &box[i]
				if cp.at < e.now {
					// A packet older than the barrier would be an event in
					// the receiving shard's past: the lookahead invariant
					// (window ≤ min cross-shard delay) is broken.
					panic(fmt.Sprintf("psim: conservative lookahead violated: arrival at %v behind barrier %v", cp.at, e.now))
				}
				cp.port.ScheduleRemoteArrival(cp.pkt, cp.at, cp.key)
			}
			e.outbox[src][dst] = box[:0]
		}
	}
}

// RunWindows drives a sequential engine's queue at the same barrier cadence
// as Engine.Run, invoking hooks at each barrier. Differential tests and the
// sequential baselines of sharded experiments use it so sampled metrics are
// taken at identical instants with identical run-to-barrier semantics.
func RunWindows(q interface {
	RunBefore(simtime.Time)
	Now() simtime.Time
}, horizon simtime.Time, window simtime.Duration, hooks ...func(barrier simtime.Time)) {
	for now := q.Now(); now < horizon; {
		b := now.Add(window)
		if b > horizon {
			b = horizon
		}
		q.RunBefore(b)
		now = b
		for _, h := range hooks {
			h(b)
		}
	}
}
