package psim

import (
	"testing"

	"github.com/accnet/acc/internal/obs"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/topo"
)

// TestShardLabeledTrace proves the obs wiring for sharded runs: a single
// shared tracer collects records from every shard, each record carrying a
// node id is stamped with the partition's owning shard, and the manifest
// reports the shard count plus event totals summed over all shard engines.
func TestShardLabeledTrace(t *testing.T) {
	cfg := Config{
		NLeaf: 4, HostsPerLeaf: 4, NSpine: 3,
		Shards: 4, Seed: 7,
		Topo: topo.DefaultConfig(),
	}
	horizon := simtime.Time(2 * simtime.Millisecond)
	plan := NewPlan(cfg.Topo.HostBW).
		RandomFlows(cfg.NLeaf, cfg.HostsPerLeaf, 24, 200_000, 100*simtime.Microsecond, true, 7).
		Flap(LeafSpineLink(0, 1), 250*simtime.Microsecond, 100*simtime.Microsecond, horizon, 7)

	e := Build(cfg)
	run := obs.NewRun(0)
	run.Begin("psim-obs", cfg.Seed, 1, nil)
	e.AttachObs(run)
	e.Apply(plan)
	e.Run(horizon)
	run.Finish()

	recs := run.Tracer.Last(0)
	if len(recs) == 0 {
		t.Fatal("sharded faulted run emitted no trace records")
	}
	labeled := 0
	for i, r := range recs {
		switch {
		case r.Node >= 0:
			want := int32(e.Part.ShardOfNode(int(r.Node)))
			if r.Shard != want {
				t.Fatalf("record %d (%s at node %d): shard %d, want %d",
					i, r.Kind, r.Node, r.Shard, want)
			}
			labeled++
		case r.Shard != -1:
			t.Fatalf("record %d (%s) has no node but shard %d", i, r.Kind, r.Shard)
		}
	}
	if labeled == 0 {
		t.Fatal("no node-bearing records to check shard labels on")
	}

	m := run.Manifest()
	if m.Shards != cfg.Shards {
		t.Fatalf("manifest shards = %d, want %d", m.Shards, cfg.Shards)
	}
	if m.Networks != cfg.Shards {
		t.Fatalf("manifest networks = %d, want %d (one per shard)", m.Networks, cfg.Shards)
	}
	if m.EventsProcessed != e.Processed() {
		t.Fatalf("manifest events %d != engine total %d", m.EventsProcessed, e.Processed())
	}
	if m.EventsProcessed == 0 {
		t.Fatal("manifest recorded zero events for a run that completed flows")
	}
}
