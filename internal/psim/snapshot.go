package psim

import (
	"fmt"

	"github.com/accnet/acc/internal/dcqcn"
	"github.com/accnet/acc/internal/hybrid"
	"github.com/accnet/acc/internal/netsim"
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/snap/codec"
	"github.com/accnet/acc/internal/tcp"
)

// Engine snapshots are taken at barriers only: every shard is quiescent at
// exactly the barrier time, all outboxes have been exchanged (an in-flight
// cross-shard packet lives as an arrival event in the receiving shard's
// queue, captured by its port's flight ring), and barrier hooks see the
// same state in every shard layout. Engine.SaveState inside an OnBarrier
// hook is therefore a complete, layout-portable capture of the fabric.

// SaveState writes the engine's barrier clock and every shard's network
// state. Call only from a barrier hook (or with the engine quiescent after
// Run returned).
func (e *Engine) SaveState(w *codec.Writer) {
	w.Tag("psim")
	w.I64(int64(e.now))
	w.Int(len(e.Shards))
	for _, sh := range e.Shards {
		sh.Net.SaveState(w)
	}
}

// RestoreState restores a snapshot into a freshly built engine with the
// same Config. Plan events and transports are restored separately (see
// Applied.RestorePending and Engine.RestoreApplied).
func (e *Engine) RestoreState(r *codec.Reader) error {
	r.Expect("psim")
	e.now = simtime.Time(r.I64())
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(e.Shards) {
		return fmt.Errorf("psim: snapshot has %d shards, engine has %d (layout mismatch — snapshots are layout-specific)", n, len(e.Shards))
	}
	for _, sh := range e.Shards {
		if err := sh.Net.RestoreState(r); err != nil {
			return err
		}
	}
	return nil
}

// SaveApplied writes the live transport population of one plan
// instantiation: per flow, the sender and receiver halves that are still
// registered (completed halves tore themselves down and are rebuilt as
// completed by the End table), plus the completion table.
func (e *Engine) SaveApplied(w *codec.Writer, a *Applied) {
	w.Tag("applied")
	w.Int(len(a.Plan.Flows))
	for i, fs := range a.Plan.Flows {
		var sendLive, recvLive bool
		switch fs.Transport {
		case TransportDCQCN:
			sendLive = a.DCQCNSend[i] != nil && !a.DCQCNSend[i].SenderDone()
			recvLive = a.DCQCNRecv[i] != nil && !a.DCQCNRecv[i].Done()
		case TransportTCP:
			sendLive = a.TCPSend[i] != nil && !a.TCPSend[i].Acked()
			recvLive = a.TCPRecv[i] != nil && !a.TCPRecv[i].Done()
		}
		w.Bool(sendLive)
		if sendLive {
			switch fs.Transport {
			case TransportDCQCN:
				a.DCQCNSend[i].SaveState(w)
			case TransportTCP:
				a.TCPSend[i].SaveState(w)
			}
		}
		w.Bool(recvLive)
		if recvLive {
			switch fs.Transport {
			case TransportDCQCN:
				a.DCQCNRecv[i].SaveState(w)
			case TransportTCP:
				a.TCPRecv[i].SaveState(w)
			}
		}
		w.I64(int64(a.End[i]))
	}
}

// RestoreApplied rebuilds the live transports saved by SaveApplied onto
// the rebuilt engine, re-registering endpoints and re-arming timers, then
// re-parks NIC waiters. Call after Engine.RestoreState and
// Applied.RestorePending.
func (e *Engine) RestoreApplied(r *codec.Reader, a *Applied) error {
	r.Expect("applied")
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(a.Plan.Flows) {
		return fmt.Errorf("psim: snapshot has %d flows, plan has %d", n, len(a.Plan.Flows))
	}
	// Discard construction-time transports before the overlay: a hybrid
	// rebuild starts due flows synchronously at apply time, registering
	// endpoints the snapshot supersedes.
	for _, row := range e.Hosts {
		for _, h := range row {
			h.ResetEndpoints()
		}
	}
	for i, fs := range a.Plan.Flows {
		i := i
		src := e.Hosts[fs.Src.Leaf][fs.Src.Host]
		dst := e.Hosts[fs.Dst.Leaf][fs.Dst.Host]
		a.DCQCNSend[i], a.DCQCNRecv[i] = nil, nil
		a.TCPSend[i], a.TCPRecv[i] = nil, nil
		if r.Bool() {
			switch fs.Transport {
			case TransportDCQCN:
				a.DCQCNSend[i] = dcqcn.RestoreSender(src.Net(), src, r)
			case TransportTCP:
				a.TCPSend[i] = tcp.RestoreSender(src.Net(), src, r)
			}
		}
		if r.Bool() {
			switch fs.Transport {
			case TransportDCQCN:
				a.DCQCNRecv[i] = dcqcn.RestoreReceiver(dst, func(rx *dcqcn.Receiver) {
					a.End[i] = rx.End
					if a.Hybrid != nil {
						a.Hybrid.packetDone[i] = true
					}
				}, r)
			case TransportTCP:
				a.TCPRecv[i] = tcp.RestoreReceiver(dst, func(rx *tcp.Receiver) {
					a.End[i] = rx.End
					if a.Hybrid != nil {
						a.Hybrid.packetDone[i] = true
					}
				}, r)
			}
		}
		a.End[i] = simtime.Time(r.I64())
		if err := r.Err(); err != nil {
			return err
		}
	}
	for _, sh := range e.Shards {
		err := sh.Net.ResolveWaiters(func(kind uint8, flow netsim.FlowID) netsim.Waiter {
			idx := int(flow) - 1
			if idx < 0 || idx >= len(a.Plan.Flows) {
				return nil
			}
			switch kind {
			case netsim.WaiterDCQCN:
				if f := a.DCQCNSend[idx]; f != nil {
					return f
				}
			case netsim.WaiterTCP:
				if f := a.TCPSend[idx]; f != nil {
					return f
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// SaveState writes the sampler's accumulated goodput series and the
// baseline counters the next sample will difference against.
func (s *Sampler) SaveState(w *codec.Writer) {
	w.Tag("sampler")
	w.Int(len(s.Times))
	for i := range s.Times {
		w.I64(int64(s.Times[i]))
		w.F64(s.Gbps[i])
	}
	w.U64(s.last)
	w.I64(int64(s.lastT))
	w.I64(int64(s.nextAt))
}

// RestoreState overlays a saved series onto a freshly constructed sampler
// over the same ports, so the resumed run extends the series exactly as the
// uninterrupted run would have.
func (s *Sampler) RestoreState(r *codec.Reader) error {
	r.Expect("sampler")
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("psim: sampler series length %d negative", n)
	}
	s.Times, s.Gbps = s.Times[:0], s.Gbps[:0]
	for i := 0; i < n; i++ {
		s.Times = append(s.Times, simtime.Time(r.I64()))
		s.Gbps = append(s.Gbps, r.F64())
	}
	s.last = r.U64()
	s.lastT = simtime.Time(r.I64())
	s.nextAt = simtime.Time(r.I64())
	return r.Err()
}

// SaveState writes the hybrid bookkeeping: the fast-forward engine's full
// state, the not-yet-started plan indices, and the per-flow packet-mode
// registrations with their mid-window completion marks. Call alongside
// SaveApplied (the transports themselves live there).
func (h *HybridState) SaveState(w *codec.Writer) {
	w.Tag("psim-hybrid")
	h.Eng.SaveState(w)
	w.Int(len(h.pending))
	for _, i := range h.pending {
		w.Int(i)
	}
	for i, f := range h.hflows {
		w.Bool(h.packetDone[i])
		w.Bool(f != nil)
		if f != nil {
			h.Eng.SaveFlow(w, f)
		}
	}
}

// RestoreState overlays the hybrid bookkeeping onto a freshly rebuilt
// ApplyHybrid instantiation, re-binding flow callbacks through the same
// bind path the original admissions used. Call after Engine.RestoreState
// (queues cleared, clocks restored) and before RestoreApplied.
func (h *HybridState) RestoreState(r *codec.Reader) error {
	r.Expect("psim-hybrid")
	err := h.Eng.RestoreState(r, func(id uint64) (func(*hybrid.Flow, int64), func(*hybrid.Flow, simtime.Time)) {
		return h.bind(int(id) - 1)
	})
	if err != nil {
		return err
	}
	np := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if np < 0 || np > len(h.p.Flows) {
		return fmt.Errorf("psim: hybrid snapshot has %d pending flows, plan has %d", np, len(h.p.Flows))
	}
	h.pending = h.pending[:0]
	for i := 0; i < np; i++ {
		h.pending = append(h.pending, r.Int())
	}
	for i := range h.hflows {
		h.packetDone[i] = r.Bool()
		h.hflows[i] = nil
		if r.Bool() {
			f, err := h.Eng.RestoreFlow(r)
			if err != nil {
				return err
			}
			h.hflows[i] = f
		}
	}
	return r.Err()
}
