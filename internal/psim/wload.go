package psim

// Bridge from the workload engine's flow traces to engine-independent
// plans. This lives in psim (not workload) because psim already sits above
// workload in the import order (via internal/acc).

import (
	"github.com/accnet/acc/internal/simtime"
	"github.com/accnet/acc/internal/workload"
)

// PlanFromTrace converts a recorded/generated flow trace into a plan: trace
// flow i becomes plan flow i (and therefore netsim.FlowID(i+1) in every
// engine), preserving order exactly — the order is part of the trace, and
// it is what keeps equal-instant admissions identical between a run and its
// replay.
func PlanFromTrace(t *workload.Trace, hostBW simtime.Rate) *Plan {
	p := NewPlan(hostBW)
	p.Flows = make([]FlowSpec, 0, len(t.Flows))
	for _, f := range t.Flows {
		fs := FlowSpec{
			Src:   HostRef{Leaf: f.SrcLeaf, Host: f.SrcHost},
			Dst:   HostRef{Leaf: f.DstLeaf, Host: f.DstHost},
			Size:  f.Bytes,
			Start: f.Start,
		}
		if f.Transport == workload.TransportTCP {
			fs.Transport = TransportTCP
		}
		p.Flows = append(p.Flows, fs)
	}
	return p
}

// RecordPlan wires a plan recorder for the trace onto the plan: every flow
// start is observed at its actual launch instant, and Trace() after the run
// returns the as-executed trace (see workload.Recorder).
func RecordPlan(p *Plan, source *workload.Trace) *workload.Recorder {
	rec := workload.NewPlanRecorder(source)
	p.OnStart = rec.ObserveStart
	return rec
}
