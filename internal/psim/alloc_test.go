package psim

import (
	"testing"

	"github.com/accnet/acc/internal/topo"
)

// TestRemoteArrivalZeroAlloc pins the cross-shard hot path at zero
// steady-state allocations: outboxEnd.Deliver transfers packet-object
// ownership into the outbox row (no copy, no release/realloc pair) and
// ScheduleRemoteArrival injects the same object into the receiving queue's
// pooled event path. The barrier cycle is driven inline — RunBefore per
// shard, then exchange — rather than through Engine.Run, so AllocsPerRun
// sees only the simulation path, not worker-goroutine setup.
func TestRemoteArrivalZeroAlloc(t *testing.T) {
	cfg := Config{NLeaf: 2, HostsPerLeaf: 2, NSpine: 1, Shards: 2, Seed: 1, Topo: topo.DefaultConfig()}
	e := Build(cfg)
	p := NewPlan(cfg.Topo.HostBW)
	// Line-rate flows in both directions across the shard cut, effectively
	// infinite so the measured windows sit in steady state. Symmetric
	// traffic keeps the migrating packet objects balanced between pools.
	for h := 0; h < cfg.HostsPerLeaf; h++ {
		p.Flows = append(p.Flows,
			FlowSpec{Src: HostRef{0, h}, Dst: HostRef{1, h}, Size: 1 << 40},
			FlowSpec{Src: HostRef{1, h}, Dst: HostRef{0, h}, Size: 1 << 40})
	}
	e.Apply(p)

	step := func() {
		b := e.now.Add(e.Window)
		for _, sh := range e.Shards {
			sh.Net.Q.RunBefore(b)
		}
		e.now = b
		e.exchange()
	}
	// Warm up past pool/slab high-water marks: ~1.2ms of virtual time.
	for i := 0; i < 2000; i++ {
		step()
	}
	crossed0 := crossCount(e)
	if avg := testing.AllocsPerRun(500, step); avg != 0 {
		t.Fatalf("cross-shard barrier cycle allocates %.4f allocs/run in steady state, want 0", avg)
	}
	if crossed := crossCount(e) - crossed0; crossed == 0 {
		t.Fatal("measured windows carried no cross-shard packets; the test exercised nothing")
	}
}

// crossCount sums packets received over the shard cut (spine-side downlink
// receive totals), proving the measured windows actually exercised
// ScheduleRemoteArrival.
func crossCount(e *Engine) uint64 {
	var sum uint64
	for _, row := range e.SpineDown {
		for _, p := range row {
			sum += p.RxBytesTotal
		}
	}
	for _, row := range e.LeafUp {
		for _, p := range row {
			sum += p.RxBytesTotal
		}
	}
	return sum
}
