package rl

import (
	"math/rand"
	"testing"
)

func TestSamplePrioritizedBias(t *testing.T) {
	r := NewReplay(100)
	// One high-reward transition among 99 zero-reward ones.
	for i := 0; i < 99; i++ {
		r.Add(Transition{Action: 0, Reward: 0})
	}
	r.Add(Transition{Action: 1, Reward: 1})
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	hits := 0
	for _, tr := range r.SamplePrioritized(rng, n, RewardPriority, 1) {
		if tr.Action == 1 {
			hits++
		}
	}
	// With proportional priorities the high-reward item should dominate
	// (~100% minus the epsilon floor), far above the uniform 1%.
	if frac := float64(hits) / n; frac < 0.5 {
		t.Fatalf("high-priority transition sampled %.1f%%, want >>1%%", frac*100)
	}
}

func TestSamplePrioritizedAlphaZeroIsUniform(t *testing.T) {
	r := NewReplay(10)
	for i := 0; i < 10; i++ {
		r.Add(Transition{Action: i, Reward: float64(i)})
	}
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 10)
	const n = 20000
	for _, tr := range r.SamplePrioritized(rng, n, RewardPriority, 0) {
		counts[tr.Action]++
	}
	for a, c := range counts {
		frac := float64(c) / n
		if frac < 0.07 || frac > 0.13 {
			t.Fatalf("alpha=0 not uniform: action %d sampled %.1f%%", a, frac*100)
		}
	}
}

func TestSamplePrioritizedEdgeCases(t *testing.T) {
	r := NewReplay(4)
	rng := rand.New(rand.NewSource(3))
	if got := r.SamplePrioritized(rng, 5, RewardPriority, 1); got != nil {
		t.Fatal("empty replay must return nil")
	}
	r.Add(Transition{Reward: -1}) // negative priority clamped
	out := r.SamplePrioritized(rng, 3, RewardPriority, 1)
	if len(out) != 3 {
		t.Fatalf("got %d samples, want 3", len(out))
	}
}

func TestTrainStepPrioritizedLearns(t *testing.T) {
	cfg := DefaultAgentConfig(2, 2)
	cfg.Hidden = []int{16}
	cfg.Gamma = 0
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(cfg, rng)
	ctx := func(i int) []float64 {
		if i == 0 {
			return []float64{1, 0}
		}
		return []float64{0, 1}
	}
	for step := 0; step < 1500; step++ {
		c := rng.Intn(2)
		act := a.Act(ctx(c), rng)
		rew := 0.0
		if act == c {
			rew = 1
		}
		a.Observe(Transition{State: ctx(c), Action: act, Reward: rew, Next: ctx(rng.Intn(2)), Terminal: true})
		a.TrainStepPrioritized(rng, 0.6)
	}
	for c := 0; c < 2; c++ {
		if a.ActGreedy(ctx(c)) != c {
			t.Fatalf("prioritized training failed to solve the bandit for context %d", c)
		}
	}
}
