package rl

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMLPShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{12, 20, 40, 40, 20}, rng)
	out := m.Forward(make([]float64, 12))
	if len(out) != 20 {
		t.Fatalf("output dim %d, want 20", len(out))
	}
	// Paper §6: the {20,40,40,20} net costs on the order of a few K params.
	if p := m.NumParams(); p < 2000 || p > 6000 {
		t.Fatalf("param count %d implausible for paper net", p)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP([]int{2, 16, 16, 1}, rng)
	data := [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	var batch []Sample
	for _, d := range data {
		batch = append(batch, Sample{X: []float64{d[0], d[1]}, Action: 0, Target: d[2]})
	}
	var loss float64
	for i := 0; i < 3000; i++ {
		loss = m.TrainBatch(batch, 5e-3)
	}
	if loss > 0.01 {
		t.Fatalf("XOR loss %v after training, want < 0.01", loss)
	}
	for _, d := range data {
		got := m.Forward([]float64{d[0], d[1]})[0]
		if math.Abs(got-d[2]) > 0.2 {
			t.Errorf("XOR(%v,%v) = %v, want %v", d[0], d[1], got, d[2])
		}
	}
}

func TestMLPTrainOnlyUpdatesChosenAction(t *testing.T) {
	// Gradient masking: training action 0 must not directly fit action 1's
	// output toward the target.
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{2, 8, 2}, rng)
	x := []float64{0.5, -0.25}
	before := m.Forward(x)
	for i := 0; i < 200; i++ {
		m.TrainBatch([]Sample{{X: x, Action: 0, Target: 3}}, 1e-2)
	}
	after := m.Forward(x)
	if math.Abs(after[0]-3) > 0.1 {
		t.Fatalf("action 0 output %v, want ~3", after[0])
	}
	// Action 1 moves only via shared hidden layers; it must not converge to
	// the target too.
	if math.Abs(after[1]-3) < 0.5 && math.Abs(before[1]-3) > 1 {
		t.Fatalf("action 1 output %v followed the target; masking broken", after[1])
	}
}

func TestMLPSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{4, 8, 3}, rng)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 MLP
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	a, b := m.Forward(x), m2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output mismatch after round trip: %v vs %v", a, b)
		}
	}
}

func TestMLPUnmarshalRejectsMalformed(t *testing.T) {
	var m MLP
	if err := json.Unmarshal([]byte(`{"sizes":[2],"w":[],"b":[]}`), &m); err == nil {
		t.Fatal("expected error for single-layer network")
	}
	if err := json.Unmarshal([]byte(`{"sizes":[2,3],"w":[],"b":[]}`), &m); err == nil {
		t.Fatal("expected error for mismatched weight count")
	}
}

func TestReplayRingBuffer(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Transition{Action: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3", r.Len())
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[r.At(i).Action] = true
	}
	// Oldest (0,1) must be evicted.
	if seen[0] || seen[1] {
		t.Fatalf("old transitions not evicted: %v", seen)
	}
	for _, want := range []int{2, 3, 4} {
		if !seen[want] {
			t.Fatalf("transition %d missing: %v", want, seen)
		}
	}
}

func TestReplaySampleProperty(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		r := NewReplay(64)
		for i := 0; i < int(n); i++ {
			r.Add(Transition{Action: i})
		}
		rng := rand.New(rand.NewSource(int64(k)))
		s := r.Sample(rng, int(k))
		if r.Len() == 0 {
			return s == nil
		}
		if len(s) != int(k) {
			return false
		}
		for _, tr := range s {
			// Every sampled transition must be one that was added.
			if tr.Action < 0 || tr.Action >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Fatal("argmax wrong")
	}
	if Argmax([]float64{5}) != 0 {
		t.Fatal("single-element argmax wrong")
	}
	if Argmax([]float64{2, 2, 2}) != 0 {
		t.Fatal("tie must pick first")
	}
}

func TestEpsilonDecay(t *testing.T) {
	cfg := DefaultAgentConfig(4, 3)
	cfg.EpsStart, cfg.EpsEnd, cfg.EpsDecay = 1, 0.1, 0.9
	rng := rand.New(rand.NewSource(5))
	a := NewAgent(cfg, rng)
	state := make([]float64, 4)
	for i := 0; i < 200; i++ {
		a.Act(state, rng)
	}
	if a.Epsilon() > cfg.EpsEnd*1.01 {
		t.Fatalf("epsilon %v, want ~floor %v", a.Epsilon(), cfg.EpsEnd)
	}
	if a.Epsilon() < cfg.EpsEnd {
		t.Fatalf("epsilon %v dropped below floor %v", a.Epsilon(), cfg.EpsEnd)
	}
}

// TestAgentSolvesBandit: a contextual two-armed bandit where the optimal arm
// flips with the (one-hot) context. DDQN should learn it comfortably.
func TestAgentSolvesBandit(t *testing.T) {
	cfg := DefaultAgentConfig(2, 2)
	cfg.Hidden = []int{16}
	cfg.EpsDecay = 0.995
	cfg.Gamma = 0 // pure bandit
	rng := rand.New(rand.NewSource(6))
	a := NewAgent(cfg, rng)

	ctx := func(i int) []float64 {
		if i == 0 {
			return []float64{1, 0}
		}
		return []float64{0, 1}
	}
	reward := func(c, arm int) float64 {
		if c == arm {
			return 1
		}
		return 0
	}
	for step := 0; step < 2000; step++ {
		c := rng.Intn(2)
		s := ctx(c)
		act := a.Act(s, rng)
		a.Observe(Transition{State: s, Action: act, Reward: reward(c, act), Next: ctx(rng.Intn(2)), Terminal: true})
		a.TrainStep(rng)
	}
	for c := 0; c < 2; c++ {
		if got := a.ActGreedy(ctx(c)); got != c {
			t.Fatalf("context %d: greedy action %d, want %d", c, got, c)
		}
	}
}

// TestDDQNTargetUsesEvalSelection ensures the double-DQN path differs from
// plain DQN when the two networks disagree.
func TestDDQNvsDQNTargets(t *testing.T) {
	cfg := DefaultAgentConfig(1, 2)
	cfg.Hidden = []int{4}
	cfg.BatchSize = 1
	cfg.TargetSync = 1 << 30 // never sync during the test
	rng := rand.New(rand.NewSource(7))
	a := NewAgent(cfg, rng)
	// Make eval and target disagree by training eval only.
	for i := 0; i < 400; i++ {
		a.Eval.TrainBatch([]Sample{{X: []float64{1}, Action: 0, Target: 10}, {X: []float64{1}, Action: 1, Target: -10}}, 1e-2)
	}
	evalQ := a.Eval.Forward([]float64{1})
	targQ := a.Target.Forward([]float64{1})
	if Argmax(evalQ) == Argmax(targQ) && math.Abs(targQ[0]-evalQ[0]) < 1 {
		t.Skip("networks did not diverge; seed-dependent setup failed")
	}
	// DDQN bootstraps target[argmax(eval)]; DQN bootstraps max(target).
	ddqn := targQ[Argmax(evalQ)]
	dqn := targQ[Argmax(targQ)]
	if ddqn == dqn {
		t.Skip("selection coincided")
	}
	// Sanity: max(target) >= target[argmax(eval)] always.
	if dqn < ddqn {
		t.Fatalf("max(target)=%v < target[argmax(eval)]=%v", dqn, ddqn)
	}
}

func TestTargetSyncHappens(t *testing.T) {
	cfg := DefaultAgentConfig(2, 2)
	cfg.Hidden = []int{8}
	cfg.BatchSize = 4
	cfg.TargetSync = 10
	rng := rand.New(rand.NewSource(8))
	a := NewAgent(cfg, rng)
	for i := 0; i < 64; i++ {
		a.Observe(Transition{State: []float64{1, 0}, Action: i % 2, Reward: float64(i % 2), Next: []float64{0, 1}})
	}
	for i := 0; i < 10; i++ {
		a.TrainStep(rng)
	}
	// Right after a sync the two nets must agree exactly.
	x := []float64{1, 0}
	e, tg := a.Eval.Forward(x), a.Target.Forward(x)
	for i := range e {
		if e[i] != tg[i] {
			t.Fatalf("after %d steps with sync=10, eval %v != target %v", a.TrainSteps(), e, tg)
		}
	}
}

// TestGradientsMatchNumerical verifies backprop against central-difference
// numerical gradients on a small network.
func TestGradientsMatchNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP([]int{3, 5, 2}, rng)
	batch := []Sample{
		{X: []float64{0.2, -0.4, 0.7}, Action: 0, Target: 0.3},
		{X: []float64{-0.1, 0.9, 0.5}, Action: 1, Target: -0.8},
	}
	loss := func() float64 {
		var l float64
		for _, s := range batch {
			out := m.Forward(s.X)
			d := out[s.Action] - s.Target
			l += d * d
		}
		return l / float64(len(batch))
	}
	gW, gB, _ := m.gradients(batch)
	const eps = 1e-6
	check := func(ptr *float64, analytic float64, what string) {
		orig := *ptr
		*ptr = orig + eps
		lp := loss()
		*ptr = orig - eps
		lm := loss()
		*ptr = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("%s: numeric %v vs analytic %v", what, numeric, analytic)
		}
	}
	for l := range m.W {
		for o := range m.W[l] {
			for i := range m.W[l][o] {
				check(&m.W[l][o][i], gW[l][o][i], "weight")
			}
			check(&m.B[l][o], gB[l][o], "bias")
		}
	}
}

// TestSGDMomentumLearns checks the alternative optimizer converges on a
// simple regression task.
func TestSGDMomentumLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewMLP([]int{1, 8, 1}, rng)
	var batch []Sample
	for x := -1.0; x <= 1.0; x += 0.25 {
		batch = append(batch, Sample{X: []float64{x}, Action: 0, Target: 0.5 * x})
	}
	var loss float64
	for i := 0; i < 2000; i++ {
		loss = m.TrainBatchSGD(batch, 1e-2, 0.9)
	}
	if loss > 1e-3 {
		t.Fatalf("SGD loss %v after training, want < 1e-3", loss)
	}
}

func TestBoltzmannTemperatureLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultAgentConfig(2, 3)
	cfg.Hidden = []int{8}
	a := NewAgent(cfg, rng)
	// Push a clear Q-ordering into the network.
	for i := 0; i < 600; i++ {
		a.Eval.TrainBatch([]Sample{
			{X: []float64{1, 0}, Action: 0, Target: 5},
			{X: []float64{1, 0}, Action: 1, Target: 0},
			{X: []float64{1, 0}, Action: 2, Target: -5},
		}, 1e-2)
	}
	s := []float64{1, 0}
	// T→0: always greedy.
	for i := 0; i < 50; i++ {
		if got := a.ActBoltzmann(s, 0, rng); got != 0 {
			t.Fatalf("zero temperature chose %d, want greedy 0", got)
		}
	}
	// Low T: mostly the best action.
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[a.ActBoltzmann(s, 0.5, rng)]++
	}
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Fatalf("softmax ordering violated: %v", counts)
	}
	if float64(counts[0])/3000 < 0.9 {
		t.Fatalf("low temperature insufficiently greedy: %v", counts)
	}
	// High T: near uniform.
	counts = make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[a.ActBoltzmann(s, 1000, rng)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("high temperature not near uniform: action %d got %d/3000", i, c)
		}
	}
}
