package rl

import (
	"github.com/accnet/acc/internal/snap/codec"
)

// Snapshot support: unlike the JSON model files (weights only, for
// deployment), snapshots must resume training bit-identically, so they
// carry the full optimizer state (Adam first/second moments and step
// count), the exploration schedule, and the replay memory contents.

// SaveState writes the network's weights and complete Adam state.
func (m *MLP) SaveState(w *codec.Writer) {
	w.Tag("mlp")
	w.Int(len(m.Sizes))
	for _, s := range m.Sizes {
		w.Int(s)
	}
	save3(w, m.W)
	save2(w, m.B)
	save3(w, m.mW)
	save3(w, m.vW)
	save2(w, m.mB)
	save2(w, m.vB)
	w.Int(m.adamT)
}

// RestoreMLP rebuilds a network saved with SaveState, including optimizer
// state, with fresh scratch buffers.
func RestoreMLP(r *codec.Reader) *MLP {
	r.Expect("mlp")
	n := r.Int()
	if r.Err() != nil || n < 2 || n > 64 {
		r.Fail("mlp layer count %d out of range", n)
		return nil
	}
	m := &MLP{Sizes: make([]int, n)}
	for i := range m.Sizes {
		m.Sizes[i] = r.Int()
	}
	m.W = load3(r)
	m.B = load2(r)
	m.mW = load3(r)
	m.vW = load3(r)
	m.mB = load2(r)
	m.vB = load2(r)
	m.adamT = r.Int()
	if r.Err() != nil {
		return nil
	}
	m.initScratch()
	return m
}

func save3(w *codec.Writer, x [][][]float64) {
	w.Int(len(x))
	for _, l := range x {
		save2(w, l)
	}
}

func save2(w *codec.Writer, x [][]float64) {
	w.Int(len(x))
	for _, row := range x {
		w.F64s(row)
	}
}

func load3(r *codec.Reader) [][][]float64 {
	n := r.Int()
	if r.Err() != nil || n < 0 || n > 1<<20 {
		r.Fail("tensor dim %d out of range", n)
		return nil
	}
	out := make([][][]float64, n)
	for i := range out {
		out[i] = load2(r)
	}
	return out
}

func load2(r *codec.Reader) [][]float64 {
	n := r.Int()
	if r.Err() != nil || n < 0 || n > 1<<20 {
		r.Fail("tensor dim %d out of range", n)
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = r.F64s()
	}
	return out
}

func saveTransition(w *codec.Writer, t Transition) {
	w.F64s(t.State)
	w.Int(t.Action)
	w.F64(t.Reward)
	w.F64s(t.Next)
	w.Bool(t.Terminal)
}

func loadTransition(r *codec.Reader) Transition {
	var t Transition
	t.State = r.F64s()
	t.Action = r.Int()
	t.Reward = r.F64()
	t.Next = r.F64s()
	t.Terminal = r.Bool()
	return t
}

// SaveState writes the replay memory's full contents and ring position.
func (rp *Replay) SaveState(w *codec.Writer) {
	w.Tag("replay")
	w.Int(rp.cap)
	w.Int(rp.next)
	w.Bool(rp.full)
	w.Int(len(rp.buf))
	for _, t := range rp.buf {
		saveTransition(w, t)
	}
}

// RestoreState replaces rp's contents with a state saved by SaveState.
func (rp *Replay) RestoreState(r *codec.Reader) {
	r.Expect("replay")
	rp.cap = r.Int()
	rp.next = r.Int()
	rp.full = r.Bool()
	n := r.Int()
	if r.Err() != nil || n < 0 || n > rp.cap {
		r.Fail("replay length %d exceeds capacity %d", n, rp.cap)
		return
	}
	rp.buf = make([]Transition, 0, rp.cap)
	for i := 0; i < n && r.Err() == nil; i++ {
		rp.buf = append(rp.buf, loadTransition(r))
	}
}

// SaveState writes the agent's networks, optimizer state, exploration
// schedule, and replay memory. Cfg is construction-time configuration and
// is not serialized — the restoring side rebuilds the agent from the same
// scenario and then overlays this state.
func (a *Agent) SaveState(w *codec.Writer) {
	w.Tag("agent")
	a.Eval.SaveState(w)
	a.Target.SaveState(w)
	a.Memory.SaveState(w)
	w.F64(a.eps)
	w.Int(a.trainSteps)
}

// RestoreState overlays a state saved by SaveState onto a freshly
// constructed agent (same Cfg).
func (a *Agent) RestoreState(r *codec.Reader) {
	r.Expect("agent")
	if ev := RestoreMLP(r); ev != nil {
		a.Eval = ev
	}
	if tg := RestoreMLP(r); tg != nil {
		a.Target = tg
	}
	a.Memory.RestoreState(r)
	a.eps = r.F64()
	a.trainSteps = r.Int()
}
