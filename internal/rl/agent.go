package rl

import (
	"math"
	"math/rand"
)

// Transition is one experience tuple {S_t, a_t, r_t, S_t+1} (Algorithm 1,
// line 6). Terminal is true when S_t+1 ends an episode (no bootstrap).
type Transition struct {
	State    []float64 `json:"s"`
	Action   int       `json:"a"`
	Reward   float64   `json:"r"`
	Next     []float64 `json:"s2"`
	Terminal bool      `json:"t,omitempty"`
}

// Replay is a fixed-capacity ring-buffer experience memory sampled
// uniformly, as in DQN.
type Replay struct {
	buf  []Transition
	cap  int
	next int
	full bool
}

// NewReplay creates a replay memory holding up to capacity transitions.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{buf: make([]Transition, 0, capacity), cap: capacity}
}

// Add stores one transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.full = true
	r.buf[r.next] = t
	r.next = (r.next + 1) % r.cap
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(rng *rand.Rand, n int) []Transition {
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(len(r.buf))]
	}
	return out
}

// At returns the i-th stored transition (test/exchange use).
func (r *Replay) At(i int) Transition { return r.buf[i] }

// AgentConfig parameterizes a DQN/DDQN agent.
type AgentConfig struct {
	StateDim   int
	NumActions int
	Hidden     []int // hidden layer widths; paper §6 uses {20,40,40}

	Gamma      float64 // discount factor
	LR         float64 // Adam learning rate
	BatchSize  int
	ReplayCap  int
	TargetSync int // train steps between target-network syncs (Alg.1 line 9)

	// ε-greedy exploration with exponential decay (§4.3: "fast exponential
	// decay of the exploration probability online").
	EpsStart float64
	EpsEnd   float64
	EpsDecay float64 // per-act multiplicative decay toward EpsEnd

	DoubleDQN bool // decouple selection/evaluation (§3.4, equation 3)
}

// DefaultAgentConfig returns the paper-shaped configuration for a given
// state dimension and action-template size.
func DefaultAgentConfig(stateDim, numActions int) AgentConfig {
	return AgentConfig{
		StateDim:   stateDim,
		NumActions: numActions,
		Hidden:     []int{20, 40, 40},
		Gamma:      0.95,
		LR:         1e-3,
		BatchSize:  32,
		ReplayCap:  4096,
		TargetSync: 100,
		EpsStart:   1.0,
		EpsEnd:     0.02,
		EpsDecay:   0.999,
		DoubleDQN:  true,
	}
}

// Agent is a (Double-)DQN learner.
type Agent struct {
	//acclint:ignore snapcover construction config; restore overlays onto an agent built with the same AgentConfig
	Cfg    AgentConfig
	Eval   *MLP // θ: evaluation network
	Target *MLP // θ': target network
	Memory *Replay

	eps        float64
	trainSteps int
}

// NewAgent builds an agent with freshly initialized networks.
func NewAgent(cfg AgentConfig, rng *rand.Rand) *Agent {
	sizes := append([]int{cfg.StateDim}, cfg.Hidden...)
	sizes = append(sizes, cfg.NumActions)
	eval := NewMLP(sizes, rng)
	return &Agent{
		Cfg:    cfg,
		Eval:   eval,
		Target: eval.Clone(),
		Memory: NewReplay(cfg.ReplayCap),
		eps:    cfg.EpsStart,
	}
}

// Epsilon returns the current exploration probability.
func (a *Agent) Epsilon() float64 { return a.eps }

// SetEpsilon overrides the exploration probability (used when loading a
// pre-trained model for online operation).
func (a *Agent) SetEpsilon(e float64) { a.eps = e }

// Act selects an action ε-greedily and decays ε.
func (a *Agent) Act(state []float64, rng *rand.Rand) int {
	defer a.decay()
	if rng.Float64() < a.eps {
		return rng.Intn(a.Cfg.NumActions)
	}
	return Argmax(a.Eval.Forward(state))
}

// ActGreedy selects the best action without exploring or decaying.
func (a *Agent) ActGreedy(state []float64) int {
	return Argmax(a.Eval.Forward(state))
}

func (a *Agent) decay() {
	if a.eps > a.Cfg.EpsEnd {
		a.eps = a.Cfg.EpsEnd + (a.eps-a.Cfg.EpsEnd)*a.Cfg.EpsDecay
		if a.eps < a.Cfg.EpsEnd {
			a.eps = a.Cfg.EpsEnd
		}
	}
}

// Observe stores a transition in the replay memory.
func (a *Agent) Observe(t Transition) { a.Memory.Add(t) }

// TrainStep samples one minibatch and performs an optimization step
// (Algorithm 1, lines 7–9). It returns the batch loss, or NaN when the
// memory has fewer transitions than a batch.
func (a *Agent) TrainStep(rng *rand.Rand) float64 {
	if a.Memory.Len() < a.Cfg.BatchSize {
		return math.NaN()
	}
	batch := a.Memory.Sample(rng, a.Cfg.BatchSize)
	samples := make([]Sample, len(batch))
	for i, t := range batch {
		y := t.Reward
		if !t.Terminal {
			var q float64
			if a.Cfg.DoubleDQN {
				// DDQN target: evaluation net selects, target net evaluates.
				sel := Argmax(a.Eval.Forward(t.Next))
				q = a.Target.Forward(t.Next)[sel]
			} else {
				tq := a.Target.Forward(t.Next)
				q = tq[Argmax(tq)]
			}
			y += a.Cfg.Gamma * q
		}
		samples[i] = Sample{X: t.State, Action: t.Action, Target: y}
	}
	loss := a.Eval.TrainBatch(samples, a.Cfg.LR)
	a.trainSteps++
	if a.Cfg.TargetSync > 0 && a.trainSteps%a.Cfg.TargetSync == 0 {
		a.Target.CopyFrom(a.Eval)
	}
	return loss
}

// TrainSteps returns how many optimization steps have run.
func (a *Agent) TrainSteps() int { return a.trainSteps }
