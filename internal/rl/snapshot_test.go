package rl_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/accnet/acc/internal/rl"
	"github.com/accnet/acc/internal/snap/codec"
)

func randTransition(rng *rand.Rand, stateDim, numActions int) rl.Transition {
	vec := func() []float64 {
		v := make([]float64, stateDim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	return rl.Transition{
		State:    vec(),
		Action:   rng.Intn(numActions),
		Reward:   rng.NormFloat64(),
		Next:     vec(),
		Terminal: rng.Intn(8) == 0,
	}
}

// TestMLPSnapshotRoundTrip: encode∘decode identity for a trained network,
// including the full Adam state.
func TestMLPSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := rl.NewMLP([]int{4, 16, 8, 3}, rng)
		for step := 0; step < 10; step++ {
			batch := make([]rl.Sample, 8)
			for i := range batch {
				x := make([]float64, 4)
				for j := range x {
					x[j] = rng.NormFloat64()
				}
				batch[i] = rl.Sample{X: x, Action: rng.Intn(3), Target: rng.NormFloat64()}
			}
			m.TrainBatch(batch, 1e-3)
		}

		w := codec.NewWriter()
		m.SaveState(w)
		img := w.Finish()

		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		m2 := rl.RestoreMLP(r)
		if m2 == nil || r.Err() != nil {
			t.Fatalf("seed %d: RestoreMLP: %v", seed, r.Err())
		}

		w2 := codec.NewWriter()
		m2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("seed %d: save∘restore∘save changed bytes", seed)
		}
	}
}

// TestReplaySnapshotRoundTrip covers the ring buffer in every phase:
// empty, partially filled, and wrapped.
func TestReplaySnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, adds := range []int{0, 7, 16, 41} {
		rp := rl.NewReplay(16)
		for i := 0; i < adds; i++ {
			rp.Add(randTransition(rng, 3, 4))
		}
		w := codec.NewWriter()
		rp.SaveState(w)
		img := w.Finish()

		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("adds=%d: NewReader: %v", adds, err)
		}
		rp2 := rl.NewReplay(16)
		rp2.RestoreState(r)
		if r.Err() != nil {
			t.Fatalf("adds=%d: RestoreState: %v", adds, r.Err())
		}
		if rp2.Len() != rp.Len() {
			t.Fatalf("adds=%d: restored length %d, want %d", adds, rp2.Len(), rp.Len())
		}
		w2 := codec.NewWriter()
		rp2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("adds=%d: save∘restore∘save changed bytes", adds)
		}
	}
}

// TestAgentSnapshotRoundTrip: the whole agent — both networks, optimizer
// state, exploration schedule, replay memory — survives a round trip
// byte-identically when overlaid on a freshly constructed agent.
func TestAgentSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := rl.DefaultAgentConfig(6, 4)
		rng := rand.New(rand.NewSource(seed))
		a := rl.NewAgent(cfg, rng)
		for i := 0; i < 200; i++ {
			a.Observe(randTransition(rng, 6, 4))
		}
		for i := 0; i < 20; i++ {
			a.TrainStep(rng)
		}

		w := codec.NewWriter()
		a.SaveState(w)
		img := w.Finish()

		// Overlay onto a fresh agent built with a different init RNG: every
		// restored field must come from the stream, not the construction.
		a2 := rl.NewAgent(cfg, rand.New(rand.NewSource(seed+1000)))
		r, err := codec.NewReader(img)
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		a2.RestoreState(r)
		if r.Err() != nil {
			t.Fatalf("seed %d: RestoreState: %v", seed, r.Err())
		}
		if a2.Epsilon() != a.Epsilon() || a2.TrainSteps() != a.TrainSteps() {
			t.Fatalf("seed %d: eps/steps (%v, %d) != (%v, %d)",
				seed, a2.Epsilon(), a2.TrainSteps(), a.Epsilon(), a.TrainSteps())
		}
		w2 := codec.NewWriter()
		a2.SaveState(w2)
		if img2 := w2.Finish(); !bytes.Equal(img, img2) {
			t.Fatalf("seed %d: save∘restore∘save changed bytes", seed)
		}
	}
}
