package rl

// TrainBatchSGD performs one SGD-with-momentum step on the batch's mean
// squared error and returns the batch loss. It reuses the Adam moment
// buffers as velocity storage, so a given network should stick to one
// optimizer for the duration of training.
func (m *MLP) TrainBatchSGD(batch []Sample, lr, momentum float64) float64 {
	if len(batch) == 0 {
		return 0
	}
	gW, gB, loss := m.gradients(batch)
	for l := range m.W {
		for o := range m.W[l] {
			for i := range m.W[l][o] {
				m.mW[l][o][i] = momentum*m.mW[l][o][i] + gW[l][o][i]
				m.W[l][o][i] -= lr * m.mW[l][o][i]
			}
			m.mB[l][o] = momentum*m.mB[l][o] + gB[l][o]
			m.B[l][o] -= lr * m.mB[l][o]
		}
	}
	return loss
}

// gradients computes mean-squared-error gradients over a batch, shared by
// the Adam and SGD optimizers. The returned slices are the instance's
// gradW/gradB scratch, zeroed here and valid until the next gradients call.
func (m *MLP) gradients(batch []Sample) ([][][]float64, [][]float64, float64) {
	gW, gB := m.gradW, m.gradB
	for l := range gW {
		for o := range gW[l] {
			clear(gW[l][o])
		}
		clear(gB[l])
	}
	var loss float64
	inv := 1 / float64(len(batch))

	for _, s := range batch {
		acts := m.forwardTrace(s.X)
		out := acts[len(acts)-1]
		err := out[s.Action] - s.Target
		loss += err * err

		// delta[l] backs layer l's output deltas. The backprop below reads
		// the layer's input activations from acts[l], which the delta write
		// for layer l-1 would clobber if they shared storage — they don't:
		// delta is its own scratch.
		delta := m.delta[len(m.W)-1]
		clear(delta)
		delta[s.Action] = 2 * err * inv

		for l := len(m.W) - 1; l >= 0; l-- {
			in := acts[l]
			var prev []float64
			if l > 0 {
				prev = m.delta[l-1]
				clear(prev)
			}
			for o, row := range m.W[l] {
				d := delta[o]
				if d == 0 {
					continue
				}
				gB[l][o] += d
				grow := gW[l][o]
				for i, w := range row {
					grow[i] += d * in[i]
					if l > 0 {
						prev[i] += d * w
					}
				}
			}
			if l > 0 {
				for i, a := range in {
					if a <= 0 {
						prev[i] = 0
					}
				}
				delta = prev
			}
		}
	}
	return gW, gB, loss * inv
}
