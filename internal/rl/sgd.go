package rl

// TrainBatchSGD performs one SGD-with-momentum step on the batch's mean
// squared error and returns the batch loss. It reuses the Adam moment
// buffers as velocity storage, so a given network should stick to one
// optimizer for the duration of training.
func (m *MLP) TrainBatchSGD(batch []Sample, lr, momentum float64) float64 {
	if len(batch) == 0 {
		return 0
	}
	gW, gB, loss := m.gradients(batch)
	for l := range m.W {
		for o := range m.W[l] {
			for i := range m.W[l][o] {
				m.mW[l][o][i] = momentum*m.mW[l][o][i] + gW[l][o][i]
				m.W[l][o][i] -= lr * m.mW[l][o][i]
			}
			m.mB[l][o] = momentum*m.mB[l][o] + gB[l][o]
			m.B[l][o] -= lr * m.mB[l][o]
		}
	}
	return loss
}

// gradients computes mean-squared-error gradients over a batch, shared by
// the Adam and SGD optimizers.
func (m *MLP) gradients(batch []Sample) ([][][]float64, [][]float64, float64) {
	gW := zerosLike3(m.W)
	gB := zerosLike2(m.B)
	var loss float64
	inv := 1 / float64(len(batch))

	for _, s := range batch {
		acts := m.forwardTrace(s.X)
		out := acts[len(acts)-1]
		err := out[s.Action] - s.Target
		loss += err * err

		delta := make([]float64, len(out))
		delta[s.Action] = 2 * err * inv

		for l := len(m.W) - 1; l >= 0; l-- {
			in := acts[l]
			var prev []float64
			if l > 0 {
				prev = make([]float64, len(in))
			}
			for o, row := range m.W[l] {
				d := delta[o]
				if d == 0 {
					continue
				}
				gB[l][o] += d
				grow := gW[l][o]
				for i, w := range row {
					grow[i] += d * in[i]
					if l > 0 {
						prev[i] += d * w
					}
				}
			}
			if l > 0 {
				for i, a := range in {
					if a <= 0 {
						prev[i] = 0
					}
				}
				delta = prev
			}
		}
	}
	return gW, gB, loss * inv
}
