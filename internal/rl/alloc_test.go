//go:build !race

package rl

import (
	"math/rand"
	"testing"
)

// TestAllocFreeForward pins inference at zero allocations: every ΔT tuner
// step runs MLP.Forward, so the scratch activation buffers must absorb the
// whole pass.
func TestAllocFreeForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{12, 20, 40, 40, 20}, rng)
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.Float64()
	}
	m.Forward(x) // warm any lazy state

	if avg := testing.AllocsPerRun(1000, func() { m.Forward(x) }); avg != 0 {
		t.Fatalf("Forward allocates %v/op, want 0", avg)
	}
}

// TestAllocFreeTrainBatch pins the backprop/optimizer step at zero
// allocations once the gradient scratch is in place.
func TestAllocFreeTrainBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP([]int{12, 20, 20, 4}, rng)
	batch := make([]Sample, 16)
	for i := range batch {
		x := make([]float64, 12)
		for j := range x {
			x[j] = rng.Float64()
		}
		batch[i] = Sample{X: x, Action: i % 4, Target: rng.Float64()}
	}
	m.TrainBatch(batch, 1e-3)

	if avg := testing.AllocsPerRun(100, func() { m.TrainBatch(batch, 1e-3) }); avg != 0 {
		t.Fatalf("TrainBatch allocates %v/op, want 0", avg)
	}
}

// TestForwardScratchMatchesFreshNetwork guards against scratch-buffer
// aliasing: repeated Forward calls on the same instance must match a fresh
// clone bit for bit.
func TestForwardScratchMatchesFreshNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{6, 10, 10, 3}, rng)
	xs := make([][]float64, 8)
	for i := range xs {
		xs[i] = make([]float64, 6)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
	}
	c := m.Clone()
	for _, x := range xs {
		got := m.Forward(x)
		want := c.Forward(x)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("scratch Forward diverged: got %v want %v", got, want)
			}
		}
		// Interleave a second input on m only, then recheck the first: the
		// clone's buffers must not be disturbed by m's, and vice versa.
		m.Forward(xs[0])
	}
}
