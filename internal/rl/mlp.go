// Package rl is the deep-reinforcement-learning substrate ACC builds on: a
// feed-forward neural network trained by backpropagation (SGD or Adam), a
// uniform experience-replay memory, and DQN / Double-DQN agents with
// ε-greedy exploration and periodic target-network synchronization — the
// algorithmic stack of the paper's §3.4.
//
// Everything is pure Go over float64 slices; no external tensor library is
// used (or available) — the paper's network is four small dense layers
// ({20,40,40,20} nodes, §6 "Resource Consumption"), for which this is ample.
package rl

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// MLP is a fully connected network with ReLU hidden activations and a
// linear output layer (Q-values are unbounded).
//
// An MLP owns per-instance scratch buffers so Forward and TrainBatch
// allocate nothing in steady state: the slice returned by Forward is valid
// only until the next Forward/TrainBatch call on the same instance, and an
// MLP must not be used from multiple goroutines concurrently (each parallel
// experiment run builds its own agents; shared pre-trained models are only
// read via CopyFrom).
type MLP struct {
	Sizes []int         // layer widths, input first
	W     [][][]float64 // W[l][out][in]
	B     [][]float64   // B[l][out]

	// Adam optimizer state (not serialized).
	mW, vW [][][]float64
	mB, vB [][]float64
	adamT  int

	// Scratch buffers (not serialized; rebuilt alongside the optimizer
	// state). fwd holds per-layer activations for Forward; acts/delta back
	// the forward trace and backprop deltas; gradW/gradB accumulate batch
	// gradients, zeroed at the start of each gradients call.
	fwd   [][]float64
	acts  [][]float64 // acts[0] aliases the caller's input per trace
	delta [][]float64
	gradW [][][]float64
	gradB [][]float64
}

// NewMLP builds a network with He-initialized weights.
func NewMLP(sizes []int, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("rl: MLP needs at least input and output layers")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2 / float64(in))
		wl := make([][]float64, out)
		for o := range wl {
			row := make([]float64, in)
			for i := range row {
				row[i] = rng.NormFloat64() * scale
			}
			wl[o] = row
		}
		m.W = append(m.W, wl)
		m.B = append(m.B, make([]float64, out))
	}
	m.initAdam()
	return m
}

func (m *MLP) initAdam() {
	m.mW, m.vW = zerosLike3(m.W), zerosLike3(m.W)
	m.mB, m.vB = zerosLike2(m.B), zerosLike2(m.B)
	m.adamT = 0
	m.initScratch()
}

func (m *MLP) initScratch() {
	m.fwd = zerosLike2(m.B)
	m.acts = make([][]float64, len(m.W)+1)
	for l := range m.W {
		m.acts[l+1] = make([]float64, len(m.B[l]))
	}
	m.delta = zerosLike2(m.B)
	m.gradW = zerosLike3(m.W)
	m.gradB = zerosLike2(m.B)
}

func zerosLike3(w [][][]float64) [][][]float64 {
	out := make([][][]float64, len(w))
	for l := range w {
		out[l] = make([][]float64, len(w[l]))
		for o := range w[l] {
			out[l][o] = make([]float64, len(w[l][o]))
		}
	}
	return out
}

func zerosLike2(b [][]float64) [][]float64 {
	out := make([][]float64, len(b))
	for l := range b {
		out[l] = make([]float64, len(b[l]))
	}
	return out
}

// NumParams returns the number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		for o := range m.W[l] {
			n += len(m.W[l][o])
		}
		n += len(m.B[l])
	}
	return n
}

// ForwardFlops estimates multiply-accumulate operations for one inference.
func (m *MLP) ForwardFlops() int {
	n := 0
	for l := 0; l < len(m.Sizes)-1; l++ {
		n += 2 * m.Sizes[l] * m.Sizes[l+1]
	}
	return n
}

// Forward computes the network output for input x into the instance's
// scratch buffers. The returned slice is owned by the MLP and only valid
// until the next Forward/TrainBatch call; callers that need the values
// longer must copy them.
func (m *MLP) Forward(x []float64) []float64 {
	a := x
	for l := range m.W {
		m.layerForward(l, a, m.fwd[l], l < len(m.W)-1)
		a = m.fwd[l]
	}
	return a
}

func (m *MLP) layerForward(l int, in, out []float64, relu bool) {
	for o, row := range m.W[l] {
		s := m.B[l][o]
		for i, w := range row {
			s += w * in[i]
		}
		if relu && s < 0 {
			s = 0
		}
		out[o] = s
	}
}

// forwardTrace runs a forward pass keeping activations per layer for
// backprop in the acts scratch. acts[0] aliases the input; acts[len(W)] is
// the output.
func (m *MLP) forwardTrace(x []float64) [][]float64 {
	m.acts[0] = x
	for l := range m.W {
		m.layerForward(l, m.acts[l], m.acts[l+1], l < len(m.W)-1)
	}
	return m.acts
}

// Sample is one supervised regression target on a single output unit —
// exactly the shape Q-learning needs (fit Q(s,a) for the taken action only).
type Sample struct {
	X      []float64
	Action int
	Target float64
}

// TrainBatch performs one Adam step on the mean squared error of the batch
// and returns the batch loss.
func (m *MLP) TrainBatch(batch []Sample, lr float64) float64 {
	if len(batch) == 0 {
		return 0
	}
	gW, gB, loss := m.gradients(batch)
	m.adamStep(gW, gB, lr)
	return loss
}

// adamStep applies the Adam update with standard hyperparameters.
func (m *MLP) adamStep(gW [][][]float64, gB [][]float64, lr float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	m.adamT++
	bc1 := 1 - math.Pow(beta1, float64(m.adamT))
	bc2 := 1 - math.Pow(beta2, float64(m.adamT))
	for l := range m.W {
		for o := range m.W[l] {
			for i := range m.W[l][o] {
				g := gW[l][o][i]
				m.mW[l][o][i] = beta1*m.mW[l][o][i] + (1-beta1)*g
				m.vW[l][o][i] = beta2*m.vW[l][o][i] + (1-beta2)*g*g
				m.W[l][o][i] -= lr * (m.mW[l][o][i] / bc1) / (math.Sqrt(m.vW[l][o][i]/bc2) + eps)
			}
			g := gB[l][o]
			m.mB[l][o] = beta1*m.mB[l][o] + (1-beta1)*g
			m.vB[l][o] = beta2*m.vB[l][o] + (1-beta2)*g*g
			m.B[l][o] -= lr * (m.mB[l][o] / bc1) / (math.Sqrt(m.vB[l][o]/bc2) + eps)
		}
	}
}

// Clone returns a deep copy (optimizer state reset).
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	c.W = zerosLike3(m.W)
	c.B = zerosLike2(m.B)
	c.CopyFrom(m)
	c.initAdam()
	return c
}

// CopyFrom copies weights from other (shapes must match).
func (m *MLP) CopyFrom(other *MLP) {
	for l := range m.W {
		for o := range m.W[l] {
			copy(m.W[l][o], other.W[l][o])
		}
		copy(m.B[l], other.B[l])
	}
}

// mlpJSON is the serialized form.
type mlpJSON struct {
	Sizes []int         `json:"sizes"`
	W     [][][]float64 `json:"w"`
	B     [][]float64   `json:"b"`
}

// MarshalJSON serializes the architecture and weights.
func (m *MLP) MarshalJSON() ([]byte, error) {
	return json.Marshal(mlpJSON{Sizes: m.Sizes, W: m.W, B: m.B})
}

// UnmarshalJSON restores a network saved with MarshalJSON.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var j mlpJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Sizes) < 2 || len(j.W) != len(j.Sizes)-1 || len(j.B) != len(j.W) {
		return fmt.Errorf("rl: malformed MLP JSON")
	}
	m.Sizes, m.W, m.B = j.Sizes, j.W, j.B
	m.initAdam()
	return nil
}

// Argmax returns the index of the largest value (first on ties).
func Argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
