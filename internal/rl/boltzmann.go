package rl

import (
	"math"
	"math/rand"
)

// ActBoltzmann selects an action by softmax (Boltzmann) exploration over
// the Q-values at the given temperature: an alternative to ε-greedy that
// explores *plausible* actions more than clearly bad ones — useful when a
// single random ECN template can cost milliseconds of queueing (the
// unstable-exploration concern of §4.3). Temperature → 0 approaches
// greedy; large temperatures approach uniform.
func (a *Agent) ActBoltzmann(state []float64, temperature float64, rng *rand.Rand) int {
	q := a.Eval.Forward(state)
	if temperature <= 0 {
		return Argmax(q)
	}
	// Softmax with max-subtraction for numerical stability.
	maxQ := q[Argmax(q)]
	var sum float64
	probs := make([]float64, len(q))
	for i, v := range q {
		p := math.Exp((v - maxQ) / temperature)
		probs[i] = p
		sum += p
	}
	u := rng.Float64() * sum
	var acc float64
	for i, p := range probs {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(q) - 1
}
