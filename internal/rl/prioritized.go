package rl

import (
	"math"
	"math/rand"
	"sort"
)

// SamplePrioritized draws n transitions with probability proportional to
// priority(t)^alpha — the §4.3 online-training refinement where "actions
// resulting large reward will be prioritised". alpha=0 degenerates to
// uniform sampling; larger alpha sharpens the preference.
func (r *Replay) SamplePrioritized(rng *rand.Rand, n int, priority func(Transition) float64, alpha float64) []Transition {
	if len(r.buf) == 0 || n <= 0 {
		return nil
	}
	// Prefix sums of priorities.
	prefix := make([]float64, len(r.buf)+1)
	for i, t := range r.buf {
		p := priority(t)
		if p < 0 || math.IsNaN(p) {
			p = 0
		}
		prefix[i+1] = prefix[i] + math.Pow(p+1e-9, alpha)
	}
	total := prefix[len(r.buf)]
	out := make([]Transition, n)
	for i := range out {
		u := rng.Float64() * total
		idx := sort.SearchFloat64s(prefix[1:], u)
		if idx >= len(r.buf) {
			idx = len(r.buf) - 1
		}
		out[i] = r.buf[idx]
	}
	return out
}

// RewardPriority is the paper's §4.3 heuristic: a transition's priority is
// its immediate reward (shifted to be positive over the [0,1] reward range).
func RewardPriority(t Transition) float64 { return t.Reward }

// TrainStepPrioritized is TrainStep with reward-prioritized minibatch
// sampling. Half of each batch is drawn uniformly so the agent still
// trains on low-reward (cautionary) experience — pure reward priority
// would never show it the consequences of bad actions. It returns the
// batch loss, or NaN when the memory has fewer transitions than a batch.
func (a *Agent) TrainStepPrioritized(rng *rand.Rand, alpha float64) float64 {
	if a.Memory.Len() < a.Cfg.BatchSize {
		return math.NaN()
	}
	half := a.Cfg.BatchSize / 2
	batch := a.Memory.SamplePrioritized(rng, a.Cfg.BatchSize-half, RewardPriority, alpha)
	batch = append(batch, a.Memory.Sample(rng, half)...)
	samples := make([]Sample, len(batch))
	for i, t := range batch {
		y := t.Reward
		if !t.Terminal {
			var q float64
			if a.Cfg.DoubleDQN {
				sel := Argmax(a.Eval.Forward(t.Next))
				q = a.Target.Forward(t.Next)[sel]
			} else {
				tq := a.Target.Forward(t.Next)
				q = tq[Argmax(tq)]
			}
			y += a.Cfg.Gamma * q
		}
		samples[i] = Sample{X: t.State, Action: t.Action, Target: y}
	}
	loss := a.Eval.TrainBatch(samples, a.Cfg.LR)
	a.trainSteps++
	if a.Cfg.TargetSync > 0 && a.trainSteps%a.Cfg.TargetSync == 0 {
		a.Target.CopyFrom(a.Eval)
	}
	return loss
}
