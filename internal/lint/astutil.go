package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the static callee of a call expression, or nil for
// dynamic calls (function values, interface methods) and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvNamed returns the named receiver type of a method, unwrapping one
// level of pointer. ok is false for plain functions and anonymous
// receivers.
func recvNamed(fn *types.Func) (pkgPath, typeName string, ok bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// funcMatchKey renders fn in the Config.HotRoots grammar:
// "importpath.Func" for functions, "importpath.Type.Method" for methods
// (pointer-ness of the receiver erased).
func funcMatchKey(fn *types.Func) string {
	if pkgPath, typeName, ok := recvNamed(fn); ok {
		return funcKey(pkgPath, typeName, fn.Name())
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return funcKey(fn.Pkg().Path(), "", fn.Name())
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// isIdentNamed reports whether e is an identifier with the given name.
func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}
