package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/accnet/acc/internal/lint"
)

// writeTree materializes a map of relative path -> contents under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", rel, err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("write %s: %v", rel, err)
		}
	}
}

// TestLoadDirBuildTagExcluded pins that the loader honors build
// constraints: a file excluded by its //go:build tag is neither parsed
// nor type-checked, even when it would not compile.
func TestLoadDirBuildTagExcluded(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"ok.go": "package p\n\nconst A = 1\n",
		"excluded.go": "//go:build neverbuildme\n\npackage p\n\n" +
			"const B = thisIdentifierDoesNotExist\n",
	})
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "acclint/fixture/tagexcluded")
	if err != nil {
		t.Fatalf("LoadDir with tag-excluded file: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (excluded.go must be skipped)", len(pkg.Files))
	}
}

// TestLoadSkipsTestOnlyDirs pins the ./... expansion contract: a
// directory holding only _test.go files is not a buildable package and
// must be skipped, exactly like the go tool skips it.
func TestLoadSkipsTestOnlyDirs(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":        "module example.com/m\n\ngo 1.21\n",
		"a/a.go":        "package a\n\nconst A = 1\n",
		"b/b_test.go":   "package b\n\nimport \"testing\"\n\nfunc TestB(t *testing.T) {}\n",
		"c/sub/sub.go":  "package sub\n\nconst C = 3\n",
		"testdata/x.go": "package x\n\nconst X = 9\n",
	})
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	prog, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	var got []string
	for _, p := range prog.Pkgs {
		got = append(got, p.ImportPath)
	}
	want := []string{"example.com/m/a", "example.com/m/c/sub"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Load ./... = %v, want %v (test-only and testdata dirs skipped)", got, want)
	}

	// Loading the test-only directory directly is an error: LoadDir sees
	// no buildable non-test Go files.
	if _, err := loader.LoadDir(filepath.Join(root, "b"), "example.com/m/b"); err == nil {
		t.Errorf("LoadDir on a _test.go-only directory succeeded, want error")
	}
}

// TestFindModuleFailures pins both findModule error paths, surfaced
// through NewLoader: no go.mod anywhere above the start directory, and a
// go.mod that lacks a module directive.
func TestFindModuleFailures(t *testing.T) {
	bare := t.TempDir()
	if _, err := lint.NewLoader(bare); err == nil {
		t.Errorf("NewLoader in a module-less tree succeeded, want error")
	} else if !strings.Contains(err.Error(), "no go.mod found above") {
		t.Errorf("NewLoader error = %q, want it to mention the missing go.mod", err)
	}

	nomod := t.TempDir()
	writeTree(t, nomod, map[string]string{
		"go.mod": "// a go.mod with no module directive\ngo 1.21\n",
	})
	if _, err := lint.NewLoader(nomod); err == nil {
		t.Errorf("NewLoader with directive-less go.mod succeeded, want error")
	} else if !strings.Contains(err.Error(), "no module directive") {
		t.Errorf("NewLoader error = %q, want it to mention the missing module directive", err)
	}
}

// TestLoadTypeErrorSurfaced pins that type errors in a loaded package are
// reported as errors rather than producing a half-checked Program.
func TestLoadTypeErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"broken.go": "package p\n\nvar V = undefinedIdentifier\n",
	})
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.LoadDir(dir, "acclint/fixture/broken"); err == nil {
		t.Errorf("LoadDir on a package with type errors succeeded, want error")
	} else if !strings.Contains(err.Error(), "type errors") {
		t.Errorf("LoadDir error = %q, want it to mention type errors", err)
	}
}
