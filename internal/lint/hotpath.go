package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath proves the zero-allocation per-packet invariant at the source
// level:
//
//   - In Config.EnginePkgs, function-literal arguments to the scheduling
//     methods of Config.QueueTypes (At, After, CallAt, CallAfter, Reset,
//     ResetAfter) are forbidden. A closure capture allocates per call; the
//     engine must pre-bind method values once and ride the typed pooled
//     fast path (CallAt/CallAfter with a pooled Event, Reset/ResetAfter
//     reusing the timer's Event in place).
//
//   - In any function statically reachable from the per-packet pipeline
//     roots (Config.HotRoots), fmt.Sprintf/Sprint/Sprintln/Errorf and
//     non-constant string concatenation are forbidden: each allocates on
//     a path executed millions of times per simulated second. Fatal
//     paths (panic messages) that genuinely need formatting carry an
//     //acclint:ignore annotation.
//
// Reachability is computed over the static call graph (direct calls and
// method calls on concrete receivers). Dynamic dispatch — stored func
// values, interface methods — is handled by listing the concrete handler
// methods themselves as roots.
type Hotpath struct{}

// Name implements Checker.
func (Hotpath) Name() string { return "hotpath" }

// Rev is the audit revision for //acclint:ignore hotpath@rev pins.
func (Hotpath) Rev() int { return 1 }

// schedMethods are the eventq.Queue scheduling entry points covered by
// the function-literal rule.
var schedMethods = map[string]bool{
	"At": true, "After": true, "CallAt": true, "CallAfter": true,
	"Reset": true, "ResetAfter": true,
}

// sprintfFuncs are the fmt allocation sinks flagged on the hot path.
var sprintfFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// Check implements Checker.
func (h Hotpath) Check(prog *Program, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, h.checkFuncLits(prog, cfg)...)
	diags = append(diags, h.checkReachable(prog, cfg)...)
	return diags
}

// checkFuncLits flags closures handed to the scheduler in engine packages.
func (Hotpath) checkFuncLits(prog *Program, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	engine := stringSet(cfg.EnginePkgs)
	queueTypes := stringSet(cfg.QueueTypes)
	for _, pkg := range prog.Pkgs {
		if !engine[pkg.ImportPath] {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || !schedMethods[fn.Name()] {
					return true
				}
				pkgPath, typeName, ok := recvNamed(fn)
				if !ok || !queueTypes[typeKey(pkgPath, typeName)] {
					return true
				}
				for _, arg := range call.Args {
					if lit, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
						diags = append(diags, Diagnostic{
							Pos:   prog.Fset.Position(lit.Pos()),
							Check: "hotpath",
							Msg: fmt.Sprintf("function literal passed to %s.%s in an engine package: closures allocate per call — pre-bind a method value once and use the typed pooled fast path",
								typeName, fn.Name()),
						})
					}
				}
				return true
			})
		}
	}
	return diags
}

// funcNode ties a *types.Func to the syntax and package that define it.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// checkReachable builds the static call graph, walks it from the
// configured pipeline roots, and flags allocation sinks in every function
// the pipeline can reach.
func (Hotpath) checkReachable(prog *Program, cfg *Config) []Diagnostic {
	index := map[*types.Func]*funcNode{}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					index[fn] = &funcNode{fn: fn, decl: fd, pkg: pkg}
				}
			}
		}
	}

	callees := func(n *funcNode) []*types.Func {
		var out []*types.Func
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok {
				if fn := calleeFunc(n.pkg.Info, call); fn != nil {
					out = append(out, fn)
				}
			}
			return true
		})
		return out
	}

	roots := stringSet(cfg.HotRoots)
	// reached maps each reachable function to the root that first reached
	// it, so diagnostics can say *why* a function is hot.
	reached := map[*types.Func]string{}
	var queue []*types.Func
	for fn := range index {
		if key := funcMatchKey(fn); roots[key] {
			reached[fn] = key
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := index[fn]
		if node == nil {
			continue // declared outside the loaded program (stdlib)
		}
		for _, callee := range callees(node) {
			if _, seen := reached[callee]; !seen {
				reached[callee] = reached[fn]
				queue = append(queue, callee)
			}
		}
	}

	var diags []Diagnostic
	for fn, root := range reached {
		node := index[fn]
		if node == nil {
			continue
		}
		diags = append(diags, flagAllocSinks(prog, node, root)...)
	}
	return diags
}

// flagAllocSinks reports fmt formatting and non-constant string
// concatenation inside one hot function body.
func flagAllocSinks(prog *Program, node *funcNode, root string) []Diagnostic {
	var diags []Diagnostic
	where := fmt.Sprintf("in %s (reachable from hot-path root %s)", node.fn.Name(), root)
	info := node.pkg.Info
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "fmt" && sprintfFuncs[fn.Name()] {
				diags = append(diags, Diagnostic{
					Pos:   prog.Fset.Position(n.Pos()),
					Check: "hotpath",
					Msg:   fmt.Sprintf("fmt.%s allocates %s — format off the packet path, or annotate a fatal path with //acclint:ignore", fn.Name(), where),
				})
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			t := info.TypeOf(n)
			if t == nil || !isStringType(t) {
				return true
			}
			if tv, ok := info.Types[n]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			diags = append(diags, Diagnostic{
				Pos:   prog.Fset.Position(n.Pos()),
				Check: "hotpath",
				Msg:   "string concatenation allocates " + where,
			})
			return false // one diagnostic per concat chain
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := info.TypeOf(n.Lhs[0]); t != nil && isStringType(t) {
					diags = append(diags, Diagnostic{
						Pos:   prog.Fset.Position(n.Pos()),
						Check: "hotpath",
						Msg:   "string += allocates " + where,
					})
				}
			}
		}
		return true
	})
	return diags
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
