package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/accnet/acc/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the expected.golden files from the current checker output")

// fixturePath is the synthetic import-path prefix fixture packages load
// under; it never collides with the real module.
const fixturePrefix = "acclint/fixture/"

// fixtureCase wires one testdata package to the narrow Config its checkers
// run under. Each config names only the fixture package, so the real
// module's defaults never leak into the corpus.
type fixtureCase struct {
	name string
	cfg  func(ipath string) *lint.Config
}

func fixtureCases() []fixtureCase {
	deterministic := func(ipath string) *lint.Config {
		return &lint.Config{DeterministicPkgs: []string{ipath}}
	}
	hotpath := func(ipath string) *lint.Config {
		return &lint.Config{
			EnginePkgs: []string{ipath},
			QueueTypes: []string{ipath + ".Queue"},
			HotRoots:   []string{ipath + ".Deliver"},
		}
	}
	tracer := func(ipath string) *lint.Config {
		return &lint.Config{TracerTypes: []string{ipath + ".Tracer"}}
	}
	codec := func(ipath string) *lint.Config {
		return &lint.Config{
			CodecWriterType: ipath + ".Writer",
			CodecReaderType: ipath + ".Reader",
		}
	}
	snapcover := func(ipath string) *lint.Config {
		cfg := codec(ipath)
		cfg.SnapSaveFuncs = []string{ipath + ".saveParams"}
		return cfg
	}
	barrier := func(ipath string) *lint.Config {
		return &lint.Config{
			BarrierOwnedTypes: []string{ipath + ".Coord"},
			BarrierSlotFields: []string{ipath + ".Coord.slots"},
			BarrierRoots:      []string{ipath + ".Run"},
			BarrierMutMethods: []string{ipath + ".Coord.Stop"},
		}
	}
	return []fixtureCase{
		{"determinism_bad", deterministic},
		{"determinism_ok", func(ipath string) *lint.Config {
			cfg := deterministic(ipath)
			cfg.Allow = []lint.AllowEntry{{
				Check:  "determinism",
				Pkg:    ipath,
				Func:   "allowedSpawn",
				Reason: "fixture mirror of the parallel experiment runner allowlist",
			}}
			return cfg
		}},
		{"hotpath_bad", hotpath},
		{"hotpath_ok", hotpath},
		{"tracerguard_bad", tracer},
		{"tracerguard_ok", tracer},
		{"codecsym_bad", codec},
		{"codecsym_ok", codec},
		{"snapcover_bad", snapcover},
		{"snapcover_ok", snapcover},
		{"barriermut_bad", barrier},
		{"barriermut_ok", barrier},
		{"ignore_bad", deterministic},
		{"ignore_ok", deterministic},
	}
}

// loadFixture typechecks one testdata package through the same loader the
// CLI uses.
func loadFixture(t *testing.T, name string) *lint.Program {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", name), fixturePrefix+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return &lint.Program{Fset: loader.Fset, Pkgs: []*lint.Package{pkg}}
}

// render flattens diagnostics to the golden format: one
// "file:line:col: check: message" line per finding, with paths reduced to
// their base name so the corpus is location-independent.
func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Msg)
	}
	return b.String()
}

func TestFixtureCorpus(t *testing.T) {
	for _, fc := range fixtureCases() {
		t.Run(fc.name, func(t *testing.T) {
			prog := loadFixture(t, fc.name)
			cfg := fc.cfg(fixturePrefix + fc.name)
			got := render(lint.Run(prog, cfg, lint.AllCheckers()))

			goldenPath := filepath.Join("testdata", fc.name, "expected.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", fc.name, got, want)
			}
		})
	}
}

// TestBadFixturesFire is a belt-and-braces check independent of the golden
// files: every *_bad fixture must produce at least one diagnostic and every
// *_ok fixture must produce none.
func TestBadFixturesFire(t *testing.T) {
	for _, fc := range fixtureCases() {
		t.Run(fc.name, func(t *testing.T) {
			prog := loadFixture(t, fc.name)
			diags := lint.Run(prog, fc.cfg(fixturePrefix+fc.name), lint.AllCheckers())
			broken := strings.HasSuffix(fc.name, "_bad")
			if broken && len(diags) == 0 {
				t.Errorf("%s: expected diagnostics, got none", fc.name)
			}
			if !broken && len(diags) != 0 {
				t.Errorf("%s: expected a clean run, got %d diagnostics:\n%s",
					fc.name, len(diags), render(diags))
			}
		})
	}
}

// TestIgnoreSemantics pins the escape-hatch contract promised in DESIGN.md
// without going through golden files: misused annotations are themselves
// build-failing diagnostics under the unsuppressible "acclint" check.
func TestIgnoreSemantics(t *testing.T) {
	prog := loadFixture(t, "ignore_bad")
	cfg := &lint.Config{DeterministicPkgs: []string{fixturePrefix + "ignore_bad"}}
	diags := lint.Run(prog, cfg, lint.AllCheckers())

	byCheck := map[string]int{}
	for _, d := range diags {
		byCheck[d.Check]++
	}
	// wrongName, noReason, crossCheck, rottenPin, and badPin each leave
	// their time.Now() diagnostic un-suppressed — a rotten or unparsable
	// revision pin stops suppressing.
	if byCheck["determinism"] != 5 {
		t.Errorf("determinism diagnostics surviving misuse = %d, want 5\n%s",
			byCheck["determinism"], render(diags))
	}
	// Unknown check, missing reason, stale, stale-cross-check, malformed,
	// rotten pin, unparsable pin.
	if byCheck["acclint"] != 7 {
		t.Errorf("acclint misuse diagnostics = %d, want 7\n%s", byCheck["acclint"], render(diags))
	}

	var msgs []string
	for _, d := range diags {
		if d.Check == "acclint" {
			msgs = append(msgs, d.Msg)
		}
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"unknown check", "needs a reason", "stale //acclint:ignore", "malformed annotation", "rotten //acclint:ignore"} {
		if !strings.Contains(joined, want) {
			t.Errorf("acclint misuse messages missing %q:\n%s", want, joined)
		}
	}
}

// TestIgnoreSubsetRun pins the `acclint -checks` contract: an annotation
// for a checker that exists but was deselected this run is neither an
// unknown check nor provably stale, so a subset run over an annotated tree
// stays clean.
func TestIgnoreSubsetRun(t *testing.T) {
	prog := loadFixture(t, "ignore_ok")
	cfg := &lint.Config{DeterministicPkgs: []string{fixturePrefix + "ignore_ok"}}
	diags := lint.Run(prog, cfg, []lint.Checker{lint.Hotpath{}})
	if len(diags) != 0 {
		t.Errorf("subset run flagged deselected-check annotations:\n%s", render(diags))
	}
}

// TestSelfLint runs the shipped configuration over the real module: the
// tree must stay clean, which is the same gate CI enforces.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecking the full module is slow; skipped in -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	prog, err := loader.Load(loader.ModRoot, "./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if diags := lint.Run(prog, lint.DefaultConfig(), lint.AllCheckers()); len(diags) > 0 {
		t.Errorf("module is not lint-clean (%d diagnostics):\n%s", len(diags), render(diags))
	}
}
