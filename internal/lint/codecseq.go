package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// This file is the shared save/load analysis behind the codecsym and
// snapcover checkers. It models every function that touches the snapshot
// codec as an ordered tree of stream operations:
//
//   - data ops: the codec.Writer / codec.Reader primitives (Tag, Expect,
//     U64, I64, Int, Bool, F64, F64s, Bytes, String), with the tag literal
//     when it is a string constant and a best-effort field-name hint
//     (w.I64(int64(f.sent)) hints "sent"; f.sent = r.I64() hints "sent").
//   - call ops: calls that pass the stream to another function
//     (saveParams(w, f.P), eventq.SaveTimer(w, f.paceEv)).
//   - loop / branch / opt nodes wrapping the ops of for/range bodies and
//     if/switch alternatives, so conditional sections line up structurally.
//
// Sequences are normalized (empty alternatives pruned, guard-style
// branches rewritten as optional runs, early returns folded into
// alternatives) and then save roots — functions whose first op is
// w.Tag("...") — are paired with the load functions whose first op is
// r.Expect of the same literal. A pair matches when the two op trees
// mirror one-to-one: Tag against Expect with equal literals, primitive
// against same-kind primitive (with field hints agreeing when both sides
// have one), helper call against helper call with the helpers' own
// sequences matching recursively, loops against loops, and branches
// against branches alternative by alternative.
//
// Err()/Fail()/Len()/Finish() are bookkeeping, not stream data, and are
// invisible here. Function literals are skipped: a closure's body does not
// execute at its definition point in the stream.

// writerDataOps and readerDataOps are the codec primitives, by method name.
var writerDataOps = map[string]bool{
	"Tag": true, "U64": true, "I64": true, "Int": true, "Bool": true,
	"F64": true, "F64s": true, "Bytes": true, "String": true,
}

var readerDataOps = map[string]bool{
	"Expect": true, "U64": true, "I64": true, "Int": true, "Bool": true,
	"F64": true, "F64s": true, "Bytes": true, "String": true,
}

// Structural node kinds, disjoint from the data-op method names.
const (
	opCall   = "call"
	opLoop   = "loop"
	opBranch = "branch"
	opOpt    = "opt"
)

// sop is one node of a stream-operation tree.
type sop struct {
	kind   string      // data-op method name or a structural kind
	lit    string      // Tag/Expect literal when constant
	hint   string      // field-name hint for transposition detection
	callee *types.Func // static callee for opCall; nil = dynamic
	pos    token.Pos
	alts   [][]sop // opBranch: one per alternative; opLoop/opOpt: alts[0]
}

func isDataOp(kind string) bool {
	switch kind {
	case opCall, opLoop, opBranch, opOpt:
		return false
	}
	return true
}

// Stream sides. A function's side is the union of the ops it contains;
// pure save helpers are sideWriter, pure load helpers sideReader.
const (
	sideNone   = 0
	sideWriter = 1
	sideReader = 2
)

// namedKey renders the "importpath.TypeName" key of t, unwrapping one
// pointer level; "" for unnamed or builtin types.
func namedKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return typeKey(n.Obj().Pkg().Path(), n.Obj().Name())
}

// shortFuncName renders fn compactly for diagnostics: pkg.Type.Method.
func shortFuncName(fn *types.Func) string {
	if _, typeName, ok := recvNamed(fn); ok && fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + typeName + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// declFuncs returns every function declaration with a body, in
// deterministic (package, file, declaration) order.
func declFuncs(prog *Program) []*funcNode {
	var out []*funcNode
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out = append(out, &funcNode{fn: fn, decl: fd, pkg: pkg})
				}
			}
		}
	}
	return out
}

// fieldHint extracts the rightmost field selector from an expression, the
// heuristic identity used to catch transposed same-type reads: it unwraps
// conversions, unary ops, indexing, and dereferences, and stops at the
// first selector that is not a package qualifier. "" when the expression
// carries no field identity (locals, len(...), arithmetic).
func fieldHint(info *types.Info, e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.CallExpr:
			// Unwrap single-argument conversions only; builtin and helper
			// calls hide the field identity.
			if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
				e = v.Args[0]
				continue
			}
			return ""
		case *ast.SelectorExpr:
			if id, ok := v.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return ""
				}
			}
			return v.Sel.Name
		default:
			return ""
		}
	}
}

// seqExtractor builds the raw op tree of one function body.
type seqExtractor struct {
	pkg       *Package
	writerKey string // "importpath.Type" of the codec writer
	readerKey string
	side      int // accumulated stream sides seen
}

func (x *seqExtractor) streamSide(t types.Type) int {
	switch namedKey(t) {
	case x.writerKey:
		return sideWriter
	case x.readerKey:
		return sideReader
	}
	return sideNone
}

// stmts extracts a statement list. A guard of the form
//
//	if cond { ...; return }   // or panic/break/continue
//	rest...
//
// is folded into branch{[then], [rest]}: on the guard path the trailing
// ops never execute, which is exactly what a reader early-return on a
// false presence flag means.
func (x *seqExtractor) stmts(list []ast.Stmt) []sop {
	var out []sop
	for i, s := range list {
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && terminates(ifs.Body) {
			out = append(out, x.optStmt(ifs.Init)...)
			out = append(out, x.nodeOps(ifs.Cond)...)
			thenOps := x.stmts(ifs.Body.List)
			restOps := x.stmts(list[i+1:])
			return append(out, sop{kind: opBranch, pos: ifs.Pos(), alts: [][]sop{thenOps, restOps}})
		}
		out = append(out, x.stmt(s)...)
	}
	return out
}

// terminates reports whether the block ends by leaving the enclosing
// statement list: return, panic, break, continue, or goto.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isIdentNamed(call.Fun, "panic")
	}
	return false
}

func (x *seqExtractor) optStmt(s ast.Stmt) []sop {
	if s == nil {
		return nil
	}
	return x.stmt(s)
}

func (x *seqExtractor) stmt(s ast.Stmt) []sop {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return x.stmts(s.List)
	case *ast.IfStmt:
		out := x.optStmt(s.Init)
		out = append(out, x.nodeOps(s.Cond)...)
		thenOps := x.stmts(s.Body.List)
		var elseOps []sop
		if s.Else != nil {
			elseOps = x.stmt(s.Else)
		}
		return append(out, sop{kind: opBranch, pos: s.Pos(), alts: [][]sop{thenOps, elseOps}})
	case *ast.ForStmt:
		out := x.optStmt(s.Init)
		out = append(out, x.nodeOps(s.Cond)...)
		body := x.stmts(s.Body.List)
		body = append(body, x.optStmt(s.Post)...)
		return append(out, sop{kind: opLoop, pos: s.Pos(), alts: [][]sop{body}})
	case *ast.RangeStmt:
		out := x.nodeOps(s.X)
		return append(out, sop{kind: opLoop, pos: s.Pos(), alts: [][]sop{x.stmts(s.Body.List)}})
	case *ast.SwitchStmt:
		out := x.optStmt(s.Init)
		out = append(out, x.nodeOps(s.Tag)...)
		return append(out, x.caseAlts(s.Pos(), s.Body.List, true)...)
	case *ast.TypeSwitchStmt:
		out := x.optStmt(s.Init)
		out = append(out, x.optStmt(s.Assign)...)
		return append(out, x.caseAlts(s.Pos(), s.Body.List, false)...)
	case *ast.LabeledStmt:
		return x.stmt(s.Stmt)
	case *ast.AssignStmt:
		return x.assignOps(s)
	default:
		return x.nodeOps(s)
	}
}

// caseAlts turns switch clauses into a branch node; a switch without a
// default gains an implicit empty alternative (execution may skip it).
func (x *seqExtractor) caseAlts(pos token.Pos, clauses []ast.Stmt, withExprs bool) []sop {
	var alts [][]sop
	hasDefault := false
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		var alt []sop
		if withExprs {
			for _, e := range cc.List {
				alt = append(alt, x.nodeOps(e)...)
			}
		}
		alt = append(alt, x.stmts(cc.Body)...)
		alts = append(alts, alt)
	}
	if !hasDefault {
		alts = append(alts, nil)
	}
	return []sop{{kind: opBranch, pos: pos, alts: alts}}
}

// assignOps extracts an assignment and, for a single-target assignment
// whose right side produced exactly one data op, stamps the target's
// field name onto it: f.sent = r.I64() reads *into* sent.
func (x *seqExtractor) assignOps(s *ast.AssignStmt) []sop {
	ops := x.nodeOps(s)
	if len(s.Lhs) != 1 {
		return ops
	}
	hint := fieldHint(x.pkg.Info, s.Lhs[0])
	if hint == "" {
		return ops
	}
	di, n := -1, 0
	for i := range ops {
		if isDataOp(ops[i].kind) {
			di, n = i, n+1
		}
	}
	if n == 1 && ops[di].hint == "" {
		ops[di].hint = hint
	}
	return ops
}

// nodeOps collects the stream ops of an arbitrary node in source order,
// skipping function-literal bodies.
func (x *seqExtractor) nodeOps(n ast.Node) []sop {
	if n == nil {
		return nil
	}
	var out []sop
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if op, ok := x.callOp(call); ok {
				out = append(out, op)
			}
		}
		return true
	})
	return out
}

// callOp classifies one call: a codec data op, a helper call that the
// stream flows into, or neither.
func (x *seqExtractor) callOp(call *ast.CallExpr) (sop, bool) {
	info := x.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return sop{}, false // conversion
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if side := x.streamSide(info.TypeOf(sel.X)); side != sideNone {
			name := sel.Sel.Name
			ops := writerDataOps
			if side == sideReader {
				ops = readerDataOps
			}
			if !ops[name] {
				return sop{}, false // Err, Fail, Len, Finish: not stream data
			}
			x.side |= side
			op := sop{kind: name, pos: call.Pos()}
			if (name == "Tag" || name == "Expect") && len(call.Args) == 1 {
				if bl, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && bl.Kind == token.STRING {
					if s, err := strconv.Unquote(bl.Value); err == nil {
						op.lit = s
					}
				}
			}
			if side == sideWriter && name != "Tag" && len(call.Args) == 1 {
				op.hint = fieldHint(info, call.Args[0])
			}
			return op, true
		}
	}
	for _, a := range call.Args {
		if side := x.streamSide(info.TypeOf(a)); side != sideNone {
			x.side |= side
			return sop{kind: opCall, callee: calleeFunc(info, call), pos: call.Pos()}, true
		}
	}
	return sop{}, false
}

// normalizeSeq prunes empty structure so that shape comparison sees only
// op-bearing control flow.
func normalizeSeq(s []sop) []sop {
	var out []sop
	for _, op := range s {
		switch op.kind {
		case opBranch:
			alts := make([][]sop, len(op.alts))
			for i, a := range op.alts {
				alts[i] = normalizeSeq(a)
			}
			out = appendBranch(out, op.pos, alts)
		case opLoop:
			body := normalizeSeq(op.alts[0])
			if len(body) > 0 {
				out = append(out, sop{kind: opLoop, pos: op.pos, alts: [][]sop{body}})
			}
		default:
			out = append(out, op)
		}
	}
	return out
}

// appendBranch normalizes one branch node: common leading ops shared by
// every alternative are hoisted out (the write-flag-then-payload idiom),
// alternatives left empty vanish, and a branch where only some
// alternatives carry ops becomes an optional run.
func appendBranch(out []sop, pos token.Pos, alts [][]sop) []sop {
	for {
		head, ok := commonHead(alts)
		if !ok {
			break
		}
		out = append(out, head)
		for i := range alts {
			alts[i] = alts[i][1:]
		}
	}
	total := len(alts)
	var nonEmpty [][]sop
	for _, a := range alts {
		if len(a) > 0 {
			nonEmpty = append(nonEmpty, a)
		}
	}
	switch {
	case len(nonEmpty) == 0:
		return out
	case len(nonEmpty) == total && total == 1:
		return append(out, nonEmpty[0]...)
	case len(nonEmpty) == total:
		return append(out, sop{kind: opBranch, pos: pos, alts: nonEmpty})
	case len(nonEmpty) == 1:
		return append(out, sop{kind: opOpt, pos: pos, alts: nonEmpty})
	default:
		inner := sop{kind: opBranch, pos: pos, alts: nonEmpty}
		return append(out, sop{kind: opOpt, pos: pos, alts: [][]sop{{inner}}})
	}
}

// commonHead reports the identical first op shared by every alternative,
// if there is one.
func commonHead(alts [][]sop) (sop, bool) {
	if len(alts) < 2 {
		return sop{}, false
	}
	for _, a := range alts {
		if len(a) == 0 {
			return sop{}, false
		}
	}
	h := alts[0][0]
	if !isDataOp(h.kind) && h.kind != opCall {
		return sop{}, false
	}
	for _, a := range alts[1:] {
		o := a[0]
		if o.kind != h.kind || o.lit != h.lit {
			return sop{}, false
		}
		if h.kind == opCall && o.callee != h.callee {
			return sop{}, false
		}
		if o.hint != h.hint {
			h.hint = ""
		}
	}
	return h, true
}

// seqWeight counts the nodes of a tree, used to pick the full-coverage
// load candidate when several loads expect the same tag (a complete
// Restore plus a header-only Peek).
func seqWeight(s []sop) int {
	n := 0
	for _, op := range s {
		n++
		for _, a := range op.alts {
			n += seqWeight(a)
		}
	}
	return n
}

// mm is one mismatch found while aligning a save/load pair.
type mm struct {
	pos token.Pos
	msg string
}

// Pair-verification memo states.
const (
	pairUnknown = iota
	pairInProgress
	pairOK
	pairBad
)

// codecAnalysis is the shared result consumed by the codecsym and
// snapcover checkers.
type codecAnalysis struct {
	prog   *Program
	nodes  map[*types.Func]*funcNode
	order  []*funcNode
	seqs   map[*types.Func][]sop
	side   map[*types.Func]int
	pairs  map[*types.Func]*types.Func // verified save -> load counterpart
	memo   map[[2]*types.Func]int
	memoMM map[[2]*types.Func]*mm
	diags  []Diagnostic
	seen   map[string]bool // diagnostic dedup
}

// analyzeCodec extracts and pairs every save/load function in the
// program. With no codec types configured it returns an empty analysis.
func analyzeCodec(prog *Program, cfg *Config) *codecAnalysis {
	a := &codecAnalysis{
		prog:   prog,
		nodes:  map[*types.Func]*funcNode{},
		seqs:   map[*types.Func][]sop{},
		side:   map[*types.Func]int{},
		pairs:  map[*types.Func]*types.Func{},
		memo:   map[[2]*types.Func]int{},
		memoMM: map[[2]*types.Func]*mm{},
		seen:   map[string]bool{},
	}
	if cfg.CodecWriterType == "" || cfg.CodecReaderType == "" {
		return a
	}
	a.order = declFuncs(prog)
	for _, n := range a.order {
		a.nodes[n.fn] = n
	}
	for _, n := range a.order {
		// The codec's own methods are the primitives, not users of them.
		if pkgPath, typeName, ok := recvNamed(n.fn); ok {
			k := typeKey(pkgPath, typeName)
			if k == cfg.CodecWriterType || k == cfg.CodecReaderType {
				continue
			}
		}
		x := &seqExtractor{pkg: n.pkg, writerKey: cfg.CodecWriterType, readerKey: cfg.CodecReaderType}
		seq := normalizeSeq(x.stmts(n.decl.Body.List))
		if len(seq) == 0 {
			continue
		}
		a.seqs[n.fn] = seq
		a.side[n.fn] = x.side
	}
	a.pairRoots()
	return a
}

func (a *codecAnalysis) addDiag(pos token.Pos, msg string) {
	p := a.prog.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, msg)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.diags = append(a.diags, Diagnostic{Pos: p, Check: "codecsym", Msg: msg})
}

// pairRoots matches tagged save roots against the loads expecting the
// same tag. When several loads share a tag, the heaviest must mirror the
// save completely; the others may consume a prefix (header peeking).
func (a *codecAnalysis) pairRoots() {
	saveByTag := map[string][]*types.Func{}
	loadByTag := map[string][]*types.Func{}
	var saveTags []string
	for _, n := range a.order {
		// The root op may sit under leading optional structure: a decode
		// error guard before the first Expect folds the whole body into an
		// opt, but the function is still a tagged root.
		first := firstRealOp(a.seqs[n.fn])
		if first == nil || first.lit == "" {
			continue
		}
		switch {
		case first.kind == "Tag" && a.side[n.fn] == sideWriter:
			if saveByTag[first.lit] == nil {
				saveTags = append(saveTags, first.lit)
			}
			saveByTag[first.lit] = append(saveByTag[first.lit], n.fn)
		case first.kind == "Expect" && a.side[n.fn] == sideReader:
			loadByTag[first.lit] = append(loadByTag[first.lit], n.fn)
		}
	}
	for _, tag := range saveTags {
		loads := loadByTag[tag]
		if len(loads) == 0 {
			for _, sf := range saveByTag[tag] {
				a.addDiag(firstRealOp(a.seqs[sf]).pos, fmt.Sprintf(
					"%s writes tag %q but no load function expects it — state saved here can never be restored",
					shortFuncName(sf), tag))
			}
			continue
		}
		sorted := append([]*types.Func(nil), loads...)
		sort.SliceStable(sorted, func(i, j int) bool {
			return seqWeight(a.seqs[sorted[i]]) > seqWeight(a.seqs[sorted[j]])
		})
		for _, sf := range saveByTag[tag] {
			for k, lf := range sorted {
				if k == 0 {
					if m := a.verifyPair(sf, lf); m != nil {
						a.addDiag(m.pos, fmt.Sprintf("codec asymmetry between %s and %s (tag %q): %s",
							shortFuncName(sf), shortFuncName(lf), tag, m.msg))
					}
				} else if m := a.matchSeq(a.seqs[sf], a.seqs[lf], true); m != nil {
					a.addDiag(m.pos, fmt.Sprintf("codec asymmetry between %s and partial load %s (tag %q): %s",
						shortFuncName(sf), shortFuncName(lf), tag, m.msg))
				}
			}
		}
	}
	for _, n := range a.order {
		first := firstRealOp(a.seqs[n.fn])
		if first != nil && first.kind == "Expect" && first.lit != "" &&
			a.side[n.fn] == sideReader && len(saveByTag[first.lit]) == 0 {
			a.addDiag(first.pos, fmt.Sprintf(
				"%s expects tag %q but no save function writes it", shortFuncName(n.fn), first.lit))
		}
	}
}

// firstRealOp returns the first operation of a sequence, descending through
// leading optional wrappers (early-return guards fold the body they
// precede into an opt).
func firstRealOp(seq []sop) *sop {
	for len(seq) > 0 && seq[0].kind == opOpt {
		seq = seq[0].alts[0]
	}
	if len(seq) == 0 {
		return nil
	}
	return &seq[0]
}

// verifyPair checks that save fn sf and load fn lf mirror each other,
// memoized so shared helpers are verified once and recursion through
// mutually-calling pairs terminates.
func (a *codecAnalysis) verifyPair(sf, lf *types.Func) *mm {
	key := [2]*types.Func{sf, lf}
	switch a.memo[key] {
	case pairOK, pairInProgress:
		return nil
	case pairBad:
		return a.memoMM[key]
	}
	ss, sok := a.seqs[sf]
	ls, lok := a.seqs[lf]
	if !sok || !lok {
		// One side is out of program or op-free; nothing to compare.
		a.memo[key] = pairOK
		return nil
	}
	a.memo[key] = pairInProgress
	if m := a.matchSeq(ss, ls, false); m != nil {
		a.memo[key] = pairBad
		a.memoMM[key] = m
		return m
	}
	a.memo[key] = pairOK
	if _, dup := a.pairs[sf]; !dup {
		a.pairs[sf] = lf
	}
	return nil
}

// isNoopCall reports whether op is a call to an in-program function that
// itself performs no stream ops (the stream merely passes through).
func (a *codecAnalysis) isNoopCall(op sop) bool {
	if op.kind != opCall || op.callee == nil {
		return false
	}
	_, inProg := a.nodes[op.callee]
	_, hasOps := a.seqs[op.callee]
	return inProg && !hasOps
}

// kindsCorrespond reports whether a save-side op kind is mirrored by a
// load-side op kind.
func kindsCorrespond(saveKind, loadKind string) bool {
	if saveKind == "Tag" {
		return loadKind == "Expect"
	}
	return saveKind == loadKind
}

func opDesc(op sop) string {
	switch op.kind {
	case opCall:
		if op.callee != nil {
			return "a call to " + op.callee.Name()
		}
		return "a dynamic save/load call"
	case opLoop:
		return "a repeated block"
	case opBranch, opOpt:
		return "a conditional block"
	}
	if op.lit != "" {
		return fmt.Sprintf("%s(%q)", op.kind, op.lit)
	}
	if op.hint != "" {
		return fmt.Sprintf("%s(.%s)", op.kind, op.hint)
	}
	return op.kind
}

// matchSeq aligns a save sequence against a load sequence. shortLoad
// permits the load side to stop early (partial header readers).
func (a *codecAnalysis) matchSeq(save, load []sop, shortLoad bool) *mm {
	i, j := 0, 0
	for {
		for i < len(save) && a.isNoopCall(save[i]) {
			i++
		}
		for j < len(load) && a.isNoopCall(load[j]) {
			j++
		}
		if shortLoad && j >= len(load) {
			return nil
		}
		if i >= len(save) && j >= len(load) {
			return nil
		}
		// Optional runs have two readings — present (body inlined) or
		// absent — and the two sides' optionals need not cover the same
		// extent (a load-side decode-error guard folds the entire tail
		// into one opt, while the save side's presence conditional wraps a
		// single call). Backtrack over both readings, preferring the
		// present one's error when neither aligns.
		if i < len(save) && save[i].kind == opOpt {
			present := a.matchSeq(spliceOpt(save[i:], 0), load[j:], shortLoad)
			if present == nil {
				return nil
			}
			if a.matchSeq(save[i+1:], load[j:], shortLoad) == nil {
				return nil
			}
			return present
		}
		if j < len(load) && load[j].kind == opOpt {
			present := a.matchSeq(save[i:], spliceOpt(load[j:], 0), shortLoad)
			if present == nil {
				return nil
			}
			if a.matchSeq(save[i:], load[j+1:], shortLoad) == nil {
				return nil
			}
			return present
		}
		if i >= len(save) {
			return &mm{pos: load[j].pos, msg: fmt.Sprintf(
				"load reads %s past the end of what save writes", opDesc(load[j]))}
		}
		if j >= len(load) {
			return &mm{pos: save[i].pos, msg: fmt.Sprintf(
				"save writes %s that the load side never reads", opDesc(save[i]))}
		}
		s, l := save[i], load[j]
		switch {
		case isDataOp(s.kind) && isDataOp(l.kind):
			if !kindsCorrespond(s.kind, l.kind) {
				return &mm{pos: s.pos, msg: fmt.Sprintf(
					"type mismatch: save writes %s but load reads %s", opDesc(s), opDesc(l))}
			}
			if s.lit != "" && l.lit != "" && s.lit != l.lit {
				return &mm{pos: s.pos, msg: fmt.Sprintf(
					"tag mismatch: save writes %q but load expects %q", s.lit, l.lit)}
			}
			if s.hint != "" && l.hint != "" && s.hint != l.hint {
				return &mm{pos: s.pos, msg: fmt.Sprintf(
					"transposed fields: save writes .%s at this position but load assigns .%s", s.hint, l.hint)}
			}
		case s.kind == opCall && l.kind == opCall:
			if s.callee != nil && l.callee != nil {
				if m := a.verifyPair(s.callee, l.callee); m != nil {
					return &mm{pos: m.pos, msg: fmt.Sprintf(
						"inside %s / %s: %s", s.callee.Name(), l.callee.Name(), m.msg)}
				}
			}
		case s.kind == opLoop && l.kind == opLoop:
			if m := a.matchSeq(s.alts[0], l.alts[0], false); m != nil {
				return m
			}
		case s.kind == opBranch && l.kind == opBranch:
			if m := a.matchBranch(s, l); m != nil {
				return m
			}
		default:
			return &mm{pos: s.pos, msg: fmt.Sprintf(
				"shape mismatch: save has %s where load has %s", opDesc(s), opDesc(l))}
		}
		i, j = i+1, j+1
	}
}

// matchBranch aligns two branch nodes: alternatives pair up in source
// order, with a permutation fallback for switches whose cases are listed
// in different orders on the two sides.
func (a *codecAnalysis) matchBranch(s, l sop) *mm {
	if len(s.alts) != len(l.alts) {
		return &mm{pos: s.pos, msg: fmt.Sprintf(
			"conditional shape mismatch: save has %d alternatives, load has %d", len(s.alts), len(l.alts))}
	}
	var first *mm
	ok := true
	for k := range s.alts {
		if m := a.matchSeq(s.alts[k], l.alts[k], false); m != nil {
			ok, first = false, m
			break
		}
	}
	if ok {
		return nil
	}
	used := make([]bool, len(l.alts))
	for k := range s.alts {
		found := false
		for j := range l.alts {
			if !used[j] && a.matchSeq(s.alts[k], l.alts[j], false) == nil {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return first
		}
	}
	return nil
}

// spliceOpt replaces the opt node at index k with its body.
func spliceOpt(s []sop, k int) []sop {
	out := make([]sop, 0, len(s)+len(s[k].alts[0])-1)
	out = append(out, s[:k]...)
	out = append(out, s[k].alts[0]...)
	out = append(out, s[k+1:]...)
	return out
}
